// Developer tool: run one benchmark query and print its phase breakdown.
#include <chrono>
#include <cstdio>
#include <cstring>
#include "bench/bench_util.h"

using namespace paradise;

int main(int argc, char** argv) {
  bench::BenchConfig cfg = bench::BenchConfig::FromArgs(argc, argv);
  int nodes = 4, scale = 1, query = 2;
  bool decluster = false;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--nodes=", 8) == 0) nodes = atoi(argv[i] + 8);
    if (strncmp(argv[i], "--scale=", 8) == 0) scale = atoi(argv[i] + 8);
    if (strncmp(argv[i], "--query=", 8) == 0) query = atoi(argv[i] + 8);
    if (strcmp(argv[i], "--decluster") == 0) decluster = true;
  }
  bench::LoadedDb l = bench::LoadDb(cfg, nodes, scale, decluster);
  auto wall_start = std::chrono::steady_clock::now();
  auto r = benchmark::RunQueryByNumber(l.db.get(), query);
  auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
  if (!r.ok()) {
    fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  printf("query %d on %d nodes (S=%d): %.4f s, %zu rows (wall %lld ms)\n",
         query, nodes, scale, r->seconds, r->rows.size(),
         static_cast<long long>(wall_ms));
  for (const auto& p : r->phases) {
    printf("  %-24s %s  contributes %.4f s (max-node %.4f, total-work %.4f)\n",
           p.name.c_str(), p.sequential ? "[seq]" : "     ", p.seconds,
           p.max_node_seconds, p.total_node_seconds);
  }
  return 0;
}
