// Ablation for Section 2.5.2: the pull model for large attributes. An
// operator on node 0 clips a raster resident on node 1. "Pull" fetches
// only the tiles the clip overlaps; "push" ships the entire image. Sweep
// the clipped fraction: pull wins while the fraction is small; once the
// clip covers most of the image, pull's per-tile operator start-up and
// random seeks erode the advantage — the overhead the paper says it
// "concluded ... was acceptable relative to the size of the objects".

#include <cstdio>

#include "array/raster.h"
#include "bench/bench_util.h"
#include "core/pull.h"

namespace {

using paradise::ByteBuffer;
using paradise::bench::BenchConfig;
using paradise::core::Cluster;
using paradise::core::PullTileSource;
using paradise::geom::Box;

double Seconds(Cluster* cluster) {
  double worst = 0;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    worst = std::max(worst, cluster->cost_model().Seconds(
                                cluster->node(n).clock()->EndPhase()));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  Cluster cluster(2);

  // A raster on node 1 (512x512 x 16-bit = 512 KB, 8 KB tiles).
  uint32_t size = std::max<uint32_t>(cfg.raster_size, 256) * 2;
  std::vector<uint16_t> pixels(static_cast<size_t>(size) * size);
  for (size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = static_cast<uint16_t>((i / 97) % 4096);
  }
  auto raster = paradise::array::MakeRaster(
      pixels, size, size, Box(0, 0, 1, 1), cluster.node(1).lob_store(),
      cluster.node(1).clock(), 8192, /*owner_node=*/1);
  if (!raster.ok()) return 1;

  std::printf(
      "== Ablation: pull vs push for a remote %ux%u raster clip ==\n\n",
      size, size);
  std::printf("%14s %12s %12s %12s %10s\n", "clip fraction", "pull (s)",
              "push (s)", "tiles pulled", "winner");

  for (double frac : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    // --- pull: read only the overlapping tiles across the network ---
    cluster.ResetForQuery();
    PullTileSource pull(&cluster, 0);
    double side = std::sqrt(frac);
    paradise::array::Raster::PixelRegion region =
        raster->RegionForBox(Box(0, 0, side, side));
    auto pulled = paradise::array::ReadRegion(
        raster->handle, &pull, {region.row_lo, region.col_lo},
        {region.row_hi, region.col_hi});
    if (!pulled.ok()) return 1;
    double pull_seconds = Seconds(&cluster);
    int64_t tiles = pull.tiles_pulled();

    // --- push: the owner reads + ships the whole image, the consumer
    // clips locally ---
    cluster.ResetForQuery();
    auto whole = paradise::array::ReadFull(
        raster->handle, cluster.node(1).local_tile_source());
    if (!whole.ok()) return 1;
    cluster.ChargeTransfer(1, 0, static_cast<int64_t>(whole->size()));
    double push_seconds = Seconds(&cluster);

    std::printf("%14.2f %12.4f %12.4f %12lld %10s\n", frac, pull_seconds,
                push_seconds, static_cast<long long>(tiles),
                pull_seconds <= push_seconds ? "pull" : "push");
  }
  std::printf(
      "\nexpected shape: pull wins decisively for small clips and converges "
      "toward (or past) push at full coverage.\n");
  return 0;
}
