// Multi-client throughput benchmark: N concurrent client streams submit a
// mix of benchmark queries (scan-heavy Q2, point-select Q5, region-select
// Q7) through the admission controller and deterministic scheduler of
// core::WorkloadSession. Reports QPS and p50/p99 client-observed modeled
// latency for 1/2/4/8 streams, plus the scan-sharing and result-cache
// counters. All reported times are modeled seconds — bit-identical at any
// PARADISE_THREADS setting — so the table measures the *policies*
// (admission, contention charging, scan sharing, caching), not the host.
//
// Flags: --streams=a,b,c  client counts to sweep (default 1,2,4,8)
//        --queries=N      queries per stream (default 8)
//        --mix=a,b,c      query numbers the streams draw from (default 2,5,7)
//        --think=S        mean client think seconds (default 0.1)
//        --pool-frames=N  buffer-pool frames per node (default 16; small
//                         enough that repeated scans miss, so the sharing
//                         and contention paths are actually exercised)
//        --no-scan-sharing  ablation: disable readahead-window attach
//        --no-cache         ablation: disable the keyed result cache
//        --json <path>    machine-readable report for the CI perf gate
//        plus the usual sizing flags of BenchConfig (--quick etc.)

#include <chrono>
#include <cstring>

#include "bench/bench_util.h"
#include "benchmark/workload.h"

namespace {

using paradise::bench::BenchConfig;
using paradise::bench::LoadedDb;
using paradise::bench::QueryPerfSample;
using paradise::benchmark::RunWorkload;
using paradise::benchmark::WorkloadOptions;
using paradise::benchmark::WorkloadReport;

struct ThroughputArgs {
  std::vector<int> streams = {1, 2, 4, 8};
  std::vector<int> mix = {2, 5, 7};
  int queries_per_stream = 8;
  double mean_think_seconds = 0.1;
  size_t pool_frames = 16;
  bool scan_sharing = true;
  bool result_cache = true;

  static ThroughputArgs FromArgs(int argc, char** argv) {
    ThroughputArgs a;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--streams=", 10) == 0) {
        a.streams.clear();
        for (const char* p = arg + 10; *p != '\0';) {
          a.streams.push_back(std::atoi(p));
          while (*p != '\0' && *p != ',') ++p;
          if (*p == ',') ++p;
        }
      } else if (std::strncmp(arg, "--queries=", 10) == 0) {
        a.queries_per_stream = std::atoi(arg + 10);
      } else if (std::strncmp(arg, "--mix=", 6) == 0) {
        a.mix.clear();
        for (const char* p = arg + 6; *p != '\0';) {
          a.mix.push_back(std::atoi(p));
          while (*p != '\0' && *p != ',') ++p;
          if (*p == ',') ++p;
        }
      } else if (std::strncmp(arg, "--think=", 8) == 0) {
        a.mean_think_seconds = std::atof(arg + 8);
      } else if (std::strncmp(arg, "--pool-frames=", 14) == 0) {
        a.pool_frames = static_cast<size_t>(std::atoll(arg + 14));
      } else if (std::strcmp(arg, "--no-scan-sharing") == 0) {
        a.scan_sharing = false;
      } else if (std::strcmp(arg, "--no-cache") == 0) {
        a.result_cache = false;
      }
    }
    return a;
  }
};

/// LoadDb with a custom per-node buffer-pool size. The stock 32 MB pool
/// swallows the whole benchmark raster, so repeated Q2 scans would do no
/// I/O at all — a throughput benchmark wants the steady state where the
/// scan working set exceeds the pool.
paradise::bench::LoadedDb LoadSmallPoolDb(const BenchConfig& cfg,
                                          size_t pool_frames) {
  paradise::bench::LoadedDb out;
  paradise::core::Cluster::Options copts;
  copts.buffer_pool_frames = pool_frames;
  out.cluster = std::make_unique<paradise::core::Cluster>(4, copts);
  paradise::datagen::GlobalDataSet ds =
      paradise::datagen::GenerateGlobalDataSet(cfg.MakeOptions(1));
  paradise::benchmark::LoadOptions lopts;
  lopts.tile_bytes = cfg.tile_bytes;
  auto db = paradise::benchmark::BenchmarkDatabase::Load(out.cluster.get(),
                                                         ds, lopts);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  out.db = std::move(*db);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = paradise::bench::ExtractJsonPathArg(&argc, argv);
  ThroughputArgs targs = ThroughputArgs::FromArgs(argc, argv);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  // Default to the bench_micro query-section sizing: small enough that the
  // whole sweep runs in seconds, large enough that Q2's scan issues many
  // readahead windows (the scan-sharing substrate).
  cfg.fraction = 1.0 / 512;
  cfg.dates = 16;
  cfg.raster_size = 128;

  std::string mix_str;
  for (size_t i = 0; i < targs.mix.size(); ++i) {
    mix_str += (i > 0 ? "," : "") + std::to_string(targs.mix[i]);
  }
  std::printf(
      "throughput sweep: 4 nodes, %d queries/stream, mix {%s}, "
      "%zu pool frames/node, scan sharing %s, result cache %s\n",
      targs.queries_per_stream, mix_str.c_str(), targs.pool_frames,
      targs.scan_sharing ? "on" : "off", targs.result_cache ? "on" : "off");
  std::printf("%-8s %8s %10s %10s %10s %6s %6s %9s %9s  %s\n", "streams",
              "qps", "p50_s", "p99_s", "makespan", "hits", "miss",
              "ra_batch", "shared_w", "digest");

  std::vector<QueryPerfSample> samples;
  for (int streams : targs.streams) {
    // Fresh database per client count: every sweep point starts from the
    // same cold state, so rows/digests are comparable across runs.
    LoadedDb loaded = LoadSmallPoolDb(cfg, targs.pool_frames);

    WorkloadOptions wopts;
    wopts.num_streams = streams;
    wopts.mix = targs.mix;
    wopts.queries_per_stream = targs.queries_per_stream;
    wopts.seed = cfg.seed;
    wopts.mean_think_seconds = targs.mean_think_seconds;
    wopts.session.scan_sharing = targs.scan_sharing;
    wopts.session.result_cache = targs.result_cache;

    auto t0 = std::chrono::steady_clock::now();
    auto report = RunWorkload(loaded.db.get(), wopts);
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!report.ok()) {
      std::fprintf(stderr, "workload (%d streams) failed: %s\n", streams,
                   report.status().ToString().c_str());
      return 1;
    }
    const WorkloadReport& r = *report;
    std::printf(
        "%-8d %8.3f %10.4f %10.4f %10.4f %6lld %6lld %9lld %9lld  %016llx\n",
        streams, r.qps(), r.LatencyPercentile(0.50),
        r.LatencyPercentile(0.99), r.makespan_seconds,
        static_cast<long long>(r.cache_hits),
        static_cast<long long>(r.cache_misses),
        static_cast<long long>(r.readahead_batches),
        static_cast<long long>(r.scan_shared_windows),
        static_cast<unsigned long long>(r.Digest()));

    // wall_seconds feeds the host-perf ratio gate; modeled_seconds (the
    // workload makespan) feeds the cost-model drift gate.
    samples.push_back({"streams_" + std::to_string(streams), wall,
                       r.makespan_seconds});
  }

  if (!json_path.empty()) {
    paradise::bench::WriteBenchJson(json_path, "bench_throughput", samples);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
