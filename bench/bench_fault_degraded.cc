// Degraded-mode experiment: modeled times for Queries 2 and 5 on an
// 8-node cluster, fault-free versus three failure scenarios driven by the
// seeded fault injector:
//
//   transient  — disk read errors + torn pages at the configured rates,
//                healed by checksum-verified retries (modeled backoff);
//   recover    — one recoverable node crash at the first phase barrier
//                (detection timeout + ARIES restart + cold re-reads);
//   degraded   — one permanent node loss at query start: the dead node's
//                fragments are redeclustered over the survivors and the
//                query completes at N-1.
//
// Every run delivers the same rows; the table shows what each failure
// honestly costs in modeled seconds.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/table.h"
#include "sim/fault_injector.h"

namespace {

using paradise::Status;
using paradise::bench::BenchConfig;
using paradise::bench::LoadDb;
using paradise::bench::LoadedDb;
using paradise::bench::RunQuerySeconds;
using paradise::benchmark::BenchmarkDatabase;
using paradise::core::ParallelTable;
using paradise::sim::FaultInjector;

constexpr int kNodes = 8;
constexpr int kCrashNode = 3;

void InstallLossHandler(BenchmarkDatabase* db) {
  db->cluster()->set_node_loss_handler([db](int dead) -> Status {
    ParallelTable* tables[] = {&db->places(), &db->roads(), &db->drainage(),
                               &db->land_cover(), &db->raster()};
    for (ParallelTable* t : tables) {
      PARADISE_RETURN_IF_ERROR(t->RedeclusterAfterLoss(db->cluster(), dead));
    }
    return Status::OK();
  });
}

enum class Scenario { kFaultFree, kTransient, kRecover, kDegraded };

double RunScenario(const BenchConfig& cfg, int query, Scenario s) {
  // Each scenario gets a fresh load: a permanent loss mutates the tables,
  // and even a recoverable crash leaves the pools cold.
  LoadedDb l = LoadDb(cfg, kNodes, /*scale=*/1);
  FaultInjector inj(cfg.seed);
  switch (s) {
    case Scenario::kFaultFree:
      return RunQuerySeconds(l.db.get(), query);
    case Scenario::kTransient:
      inj.set_transient_read_rate(0.02);
      inj.set_torn_read_rate(0.01);
      break;
    case Scenario::kRecover:
      inj.ScheduleCrash(/*barrier=*/1, kCrashNode, /*permanent=*/false);
      break;
    case Scenario::kDegraded:
      inj.ScheduleCrash(/*barrier=*/0, kCrashNode, /*permanent=*/true);
      InstallLossHandler(l.db.get());
      break;
  }
  l.cluster->SetFaultInjector(&inj);
  double seconds = RunQuerySeconds(l.db.get(), query);
  l.cluster->SetFaultInjector(nullptr);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  const int queries[2] = {2, 5};
  const Scenario scenarios[4] = {Scenario::kFaultFree, Scenario::kTransient,
                                 Scenario::kRecover, Scenario::kDegraded};
  double results[2][4];

  for (int q = 0; q < 2; ++q) {
    for (int s = 0; s < 4; ++s) {
      std::fprintf(stderr, "query %d scenario %d...\n", queries[q], s);
      results[q][s] = RunScenario(cfg, queries[q], scenarios[s]);
    }
  }

  std::printf(
      "== Degraded-mode execution (modeled seconds, %d nodes) ==\n"
      "   transient: 2%% disk errors + 1%% torn pages, retried\n"
      "   recover:   node %d crashes after phase 1, ARIES restart\n"
      "   degraded:  node %d lost for good, fragments redeclustered,\n"
      "              query completes on %d survivors\n\n",
      kNodes, kCrashNode, kCrashNode, kNodes - 1);
  std::printf("%-10s %12s %12s %12s %12s\n", "query", "fault-free",
              "transient", "recover", "degraded");
  for (int q = 0; q < 2; ++q) {
    std::printf("Query %-4d %12.3f %12.3f %12.3f %12.3f\n", queries[q],
                results[q][0], results[q][1], results[q][2], results[q][3]);
  }
  std::printf("\noverhead vs fault-free (x):\n");
  for (int q = 0; q < 2; ++q) {
    std::printf("Query %-4d %12s %12.2f %12.2f %12.2f\n", queries[q], "1.00",
                results[q][1] / results[q][0], results[q][2] / results[q][0],
                results[q][3] / results[q][0]);
  }
  return 0;
}
