// Google-benchmark microbenches for the substrate pieces whose *real* CPU
// cost matters in the simulation: LZW tile compression, R*-tree probes
// (dynamic vs STR bulk-loaded), B+-tree operations, and the PBSM
// partition sweep — followed by a query-level section that runs the
// scan-heavy benchmark queries end to end, printing host wall-clock,
// modeled seconds, and buffer-pool statistics. `--json <path>` writes the
// query section as JSON (the CI perf-smoke gate consumes it).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench/bench_util.h"
#include "codec/lzw.h"
#include "common/rng.h"
#include "core/coordinator.h"
#include "core/parallel_ops.h"
#include "common/thread_pool.h"
#include "datagen/datagen.h"
#include "exec/spatial_join.h"
#include "opt/stats.h"
#include "index/b_plus_tree.h"
#include "index/r_star_tree.h"

namespace {

using paradise::Rng;
using paradise::codec::LzwCompress;
using paradise::codec::LzwDecompress;
using paradise::exec::ExecContext;
using paradise::exec::Tuple;
using paradise::exec::TupleVec;
using paradise::exec::Value;
using paradise::geom::Box;
using paradise::geom::Point;
using paradise::geom::Polyline;
using paradise::index::BPlusTree;
using paradise::index::RStarTree;

std::vector<uint8_t> SmoothTile(size_t bytes) {
  std::vector<uint8_t> data(bytes);
  for (size_t i = 0; i < bytes; i += 2) {
    uint16_t v = static_cast<uint16_t>(2000 + 40 * ((i / 128) % 16));
    data[i] = static_cast<uint8_t>(v & 0xff);
    if (i + 1 < bytes) data[i + 1] = static_cast<uint8_t>(v >> 8);
  }
  return data;
}

std::vector<uint8_t> NoisyTile(size_t bytes) {
  Rng rng(1);
  std::vector<uint8_t> data(bytes);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

void BM_LzwCompressSmooth(benchmark::State& state) {
  std::vector<uint8_t> tile = SmoothTile(32 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzwCompress(tile));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tile.size()));
}
BENCHMARK(BM_LzwCompressSmooth);

void BM_LzwCompressNoise(benchmark::State& state) {
  std::vector<uint8_t> tile = NoisyTile(32 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzwCompress(tile));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tile.size()));
}
BENCHMARK(BM_LzwCompressNoise);

void BM_LzwDecompressSmooth(benchmark::State& state) {
  std::vector<uint8_t> packed = LzwCompress(SmoothTile(32 * 1024));
  for (auto _ : state) {
    auto out = LzwDecompress(packed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32 * 1024);
}
BENCHMARK(BM_LzwDecompressSmooth);

Box RandomBox(Rng* rng, double extent, double side) {
  double x = rng->NextDouble(-extent, extent);
  double y = rng->NextDouble(-extent, extent);
  return Box(x, y, x + rng->NextDouble(0.01, side),
             y + rng->NextDouble(0.01, side));
}

void BM_RStarDynamicProbe(benchmark::State& state) {
  Rng rng(2);
  RStarTree tree;
  for (int i = 0; i < state.range(0); ++i) {
    tree.Insert(RandomBox(&rng, 100, 2), static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    Box q = RandomBox(&rng, 100, 5);
    int64_t count = 0;
    tree.SearchOverlap(q, [&](const Box&, uint64_t) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_RStarDynamicProbe)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RStarBulkLoadedProbe(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::pair<Box, uint64_t>> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.emplace_back(RandomBox(&rng, 100, 2), static_cast<uint64_t>(i));
  }
  auto tree = RStarTree::BulkLoadStr(std::move(entries));
  for (auto _ : state) {
    Box q = RandomBox(&rng, 100, 5);
    int64_t count = 0;
    tree->SearchOverlap(q, [&](const Box&, uint64_t) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_RStarBulkLoadedProbe)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree<int64_t> tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(rng.NextInt(0, 1 << 20), static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(10000);

void BM_BPlusTreeProbe(benchmark::State& state) {
  Rng rng(4);
  BPlusTree<int64_t> tree;
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(rng.NextInt(0, 1 << 20), static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(rng.NextInt(0, 1 << 20)));
  }
}
BENCHMARK(BM_BPlusTreeProbe);

TupleVec MakeLines(Rng* rng, int n) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    double x = rng->NextDouble(-100, 100);
    double y = rng->NextDouble(-100, 100);
    std::vector<Point> pts;
    for (int k = 0; k < 6; ++k) {
      pts.push_back(Point{x + k * 0.3, y + ((k % 2) ? 0.4 : -0.2)});
    }
    out.push_back(Tuple({Value(static_cast<int64_t>(i)),
                         Value(Polyline(std::move(pts)))}));
  }
  return out;
}

void BM_PbsmJoin(benchmark::State& state) {
  Rng rng(5);
  TupleVec left = MakeLines(&rng, static_cast<int>(state.range(0)));
  TupleVec right = MakeLines(&rng, static_cast<int>(state.range(0)));
  ExecContext ctx;
  paradise::exec::PbsmOptions opts;
  opts.num_partitions = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto r = paradise::exec::PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PbsmJoin)
    ->Args({2000, 1})
    ->Args({2000, 16})
    ->Args({2000, 64})
    ->Args({8000, 64});

void BM_PbsmJoinParallel(benchmark::State& state) {
  Rng rng(5);
  TupleVec left = MakeLines(&rng, 8000);
  TupleVec right = MakeLines(&rng, 8000);
  paradise::common::ThreadPool pool(static_cast<int>(state.range(0)));
  ExecContext ctx;
  ctx.pool = &pool;
  paradise::exec::PbsmOptions opts;
  opts.num_partitions = 64;
  for (auto _ : state) {
    auto r = paradise::exec::PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PbsmJoinParallel)->Arg(1)->Arg(2)->Arg(8);

// ---------- Query-level section ----------

paradise::storage::BufferPool::Stats PoolStatsAllNodes(
    paradise::core::Cluster* cluster) {
  paradise::storage::BufferPool::Stats total;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    total.Add(cluster->node(n).pool()->stats());
  }
  return total;
}

std::vector<paradise::bench::QueryPerfSample> RunQuerySection() {
  using Clock = std::chrono::steady_clock;
  using paradise::storage::BufferPool;

  paradise::bench::BenchConfig cfg;
  cfg.fraction = 1.0 / 512;
  cfg.dates = 16;
  cfg.raster_size = 128;
  paradise::bench::LoadedDb loaded = paradise::bench::LoadDb(cfg, 4, 1);
  loaded.cluster->SetNumThreads(8);
  std::printf("\nquery section: 4 nodes, 8 threads, %d pool shards/node\n",
              loaded.cluster->node(0).pool()->num_shards());
  std::printf("%-6s %12s %12s %9s %10s %10s %10s\n", "query", "wall_ms",
              "modeled_s", "hit_rate", "misses", "ra_batch", "ra_pages");

  std::vector<paradise::bench::QueryPerfSample> samples;
  for (int query : {2, 5, 11, 12, 13}) {
    BufferPool::Stats before = PoolStatsAllNodes(loaded.cluster.get());
    Clock::time_point t0 = Clock::now();
    double modeled =
        paradise::bench::RunQuerySeconds(loaded.db.get(), query);
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    BufferPool::Stats after = PoolStatsAllNodes(loaded.cluster.get());
    BufferPool::Stats d;
    d.Add(after);
    d.hits -= before.hits;
    d.misses -= before.misses;
    d.readahead_batches -= before.readahead_batches;
    d.readahead_pages -= before.readahead_pages;
    std::printf("Q%-5d %12.1f %12.6f %8.1f%% %10lld %10lld %10lld\n", query,
                wall * 1e3, modeled, d.hit_rate() * 100,
                static_cast<long long>(d.misses),
                static_cast<long long>(d.readahead_batches),
                static_cast<long long>(d.readahead_pages));
    samples.push_back({"Q" + std::to_string(query), wall, modeled});
  }
  return samples;
}

// ---------- Spatial-join section ----------

/// Standalone PBSM and index-NL joins, reported in the same JSON rows as
/// the queries: wall clock for the host-perf gate, modeled seconds for
/// cost-model drift. The 1- and 8-thread PBSM rows must report identical
/// modeled seconds (the determinism contract); the gate then watches both.
std::vector<paradise::bench::QueryPerfSample> RunSpatialJoinSection() {
  using Clock = std::chrono::steady_clock;
  paradise::sim::CostModel model;
  Rng rng(6);
  TupleVec left = MakeLines(&rng, 6000);
  TupleVec right = MakeLines(&rng, 6000);
  paradise::exec::PbsmOptions opts;
  opts.num_partitions = 64;

  std::vector<paradise::bench::QueryPerfSample> samples;
  size_t pbsm_rows = 0;
  auto run_pbsm = [&](const std::string& name, int threads) {
    paradise::common::ThreadPool pool(threads);
    paradise::sim::NodeClock clock;
    ExecContext ctx;
    ctx.clock = &clock;
    ctx.pool = &pool;
    Clock::time_point t0 = Clock::now();
    auto r = paradise::exec::PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed\n", name.c_str());
      std::exit(1);
    }
    pbsm_rows = r->size();
    samples.push_back({name, wall, model.Seconds(clock.EndPhase())});
  };
  run_pbsm("pbsm_join_1t", 1);
  run_pbsm("pbsm_join_8t", 8);

  {
    // Two-layer class mini-join plan on the same inputs: no dedup branch
    // in the hot path, same result cardinality as replicate-and-dedup.
    paradise::common::ThreadPool pool(8);
    paradise::sim::NodeClock clock;
    ExecContext ctx;
    ctx.clock = &clock;
    ctx.pool = &pool;
    paradise::exec::PbsmJoinStats stats;
    ctx.pbsm_stats = &stats;
    paradise::exec::TwoLayerOptions two;
    two.tiles_per_axis = 32;
    two.num_tasks = 64;
    Clock::time_point t0 = Clock::now();
    auto r = paradise::exec::TwoLayerSpatialJoin(left, 1, right, 1, ctx, two);
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!r.ok() || r->size() != pbsm_rows || stats.dedup_tests != 0 ||
        stats.dedup_dropped != 0) {
      std::fprintf(stderr, "two_layer_join diverged from pbsm\n");
      std::exit(1);
    }
    samples.push_back(
        {"two_layer_join", wall, model.Seconds(clock.EndPhase())});
  }

  {
    ExecContext no_charge;
    auto tree = paradise::exec::BuildRTreeOnColumn(right, 1, no_charge);
    paradise::sim::NodeClock clock;
    ExecContext ctx;
    ctx.clock = &clock;
    Clock::time_point t0 = Clock::now();
    auto r =
        paradise::exec::IndexSpatialJoin(left, 1, right, 1, *tree, ctx);
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!r.ok()) {
      std::fprintf(stderr, "index_join failed\n");
      std::exit(1);
    }
    samples.push_back({"index_join", wall, model.Seconds(clock.EndPhase())});
  }

  std::printf("\nspatial-join section:\n");
  for (const auto& s : samples) {
    std::printf("%-14s %10.1f ms  modeled %12.6f s\n", s.name.c_str(),
                s.wall_seconds * 1e3, s.modeled_seconds);
  }
  return samples;
}

// ---------- Adaptive spatial join (advisor decisions) ----------

/// The adaptive join path end to end on the clustered datagen workload:
/// two forced runs (PBSM, index nested loops) seed the advisor's
/// cost-feedback store, then the advisor chooses. Each run prints its
/// decision — method, grid resolution, feedback provenance, predicted vs
/// observed modeled seconds — and the advisor-chosen run is the gated
/// "adaptive_join" JSON row.
std::vector<paradise::bench::QueryPerfSample> RunAdaptiveJoinSection() {
  using Clock = std::chrono::steady_clock;
  constexpr int kNodes = 4;
  paradise::datagen::ClusteredDataOptions copt;
  copt.seed = 29;
  copt.count = 12'000;
  copt.num_clusters = 4;
  copt.skew = 0.95;
  TupleVec roads = paradise::datagen::GenerateCoastlineRoads(copt);
  TupleVec points = paradise::datagen::GenerateUrbanPoints(copt);
  const size_t point_col = paradise::datagen::col::kPlaceLocation;
  // Join the points against road corridor boxes (MBRs): box-contains-point
  // has real hits where polyline-vs-point exact intersection is
  // zero-measure.
  TupleVec corridors;
  corridors.reserve(roads.size());
  for (const Tuple& t : roads) {
    corridors.push_back(
        Tuple({t.at(paradise::datagen::col::kLineId),
               t.at(paradise::datagen::col::kLineType),
               Value(t.at(paradise::datagen::col::kLineShape).Mbr())}));
  }
  const size_t corridor_col = 2;
  Box universe = Box::Empty();
  for (const Tuple& t : corridors) {
    universe = universe.Union(t.at(corridor_col).Mbr());
  }
  for (const Tuple& t : points) {
    universe = universe.Union(t.at(point_col).Mbr());
  }

  paradise::core::Cluster cluster(kNodes);
  // Publish sampled histograms under the names the join options cite —
  // the same pipeline ParallelTable::Load feeds the catalog.
  auto publish = [&cluster, &universe](const std::string& name,
                                       const TupleVec& rows, size_t col,
                                       uint64_t seed) {
    paradise::opt::SpatialSampler sampler(seed, 0, 4096);
    for (size_t i = 0; i < rows.size(); ++i) {
      sampler.Add(i, rows[i].at(col).Mbr());
    }
    paradise::opt::BuildHistogramOptions hopt;
    hopt.tiles_per_axis = 128;
    cluster.catalog()->PutTableStats(paradise::opt::BuildHistogram(
        name, universe, sampler.Samples(), static_cast<int64_t>(rows.size()),
        hopt));
  };
  publish("urban_points", points, point_col, 29);
  publish("road_corridors", corridors, corridor_col, 31);

  paradise::core::PerNode lper(kNodes), rper(kNodes);
  for (size_t i = 0; i < points.size(); ++i) {
    lper[i % kNodes].push_back(points[i]);
  }
  for (size_t i = 0; i < corridors.size(); ++i) {
    rper[i % kNodes].push_back(corridors[i]);
  }

  std::printf(
      "\nadaptive-join section (urban points x road corridors, "
      "%zu x %zu, %d nodes):\n",
      points.size(), corridors.size(), kNodes);
  std::printf("%-12s %-10s %6s %10s %12s %12s %12s %10s\n", "run", "method",
              "cells", "feedback", "tuned_skew", "predicted_s", "observed_s",
              "wall_ms");

  size_t rows_expected = 0;
  std::vector<paradise::bench::QueryPerfSample> samples;
  auto run = [&](const char* label, const paradise::opt::JoinDecision* force,
                 bool gate) {
    paradise::core::QueryCoordinator coord(&cluster);
    if (!coord.BeginQuery().ok()) {
      std::fprintf(stderr, "adaptive_join BeginQuery failed\n");
      std::exit(1);
    }
    paradise::core::ParallelSpatialJoinOptions opts;
    opts.adaptive = true;
    opts.left_stats_table = "urban_points";
    opts.right_stats_table = "road_corridors";
    opts.pbsm.num_partitions = 64;
    opts.override_decision = force;
    paradise::core::AdaptiveJoinReport rep;
    opts.report = &rep;
    Clock::time_point t0 = Clock::now();
    auto r = paradise::core::ParallelSpatialJoin(&coord, lper, point_col,
                                                 rper, corridor_col, universe,
                                                 opts);
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    if (!r.ok()) {
      std::fprintf(stderr, "adaptive_join (%s) failed\n", label);
      std::exit(1);
    }
    size_t rows = 0;
    for (const TupleVec& v : *r) rows += v.size();
    if (rows_expected == 0) {
      rows_expected = rows;
    } else if (rows != rows_expected) {
      std::fprintf(stderr, "adaptive_join: method changed the result!\n");
      std::exit(1);
    }
    char tuned[32];
    if (rep.used_tuned_grid) {
      std::snprintf(tuned, sizeof(tuned), "%.2f", rep.predicted_skew);
    } else {
      std::snprintf(tuned, sizeof(tuned), "%s", "-");
    }
    std::printf("%-12s %-10s %6zu %10s %12s %12.6f %12.6f %10.1f\n", label,
                rep.decision.method == paradise::opt::JoinMethod::kPbsm
                    ? "pbsm"
                    : "index-nl",
                rep.cells_per_axis,
                rep.decision.from_feedback ? "learned" : "heuristic", tuned,
                rep.decision.predicted_seconds, rep.observed_seconds,
                wall * 1e3);
    if (gate) samples.push_back({"adaptive_join", wall, rep.observed_seconds});
  };
  paradise::opt::JoinDecision force_pbsm;
  force_pbsm.method = paradise::opt::JoinMethod::kPbsm;
  paradise::opt::JoinDecision force_inl;
  force_inl.method = paradise::opt::JoinMethod::kIndexNestedLoops;
  run("seed:pbsm", &force_pbsm, false);
  run("seed:index", &force_inl, false);
  run("advisor", nullptr, true);
  return samples;
}

// ---------- Buffer-pool sizing sweep (--pool-mb) ----------

/// Re-runs the query section's workload at several per-node pool sizes,
/// reporting the per-query hit rate and modeled seconds at each point —
/// the classic memory/latency trade-off curve. Only runs (and only adds
/// JSON rows) when --pool-mb is given, so the default perf-gate report is
/// unchanged.
std::vector<paradise::bench::QueryPerfSample> RunPoolSweep(
    const std::vector<int>& pool_mbs) {
  using Clock = std::chrono::steady_clock;
  using paradise::storage::BufferPool;

  paradise::bench::BenchConfig cfg;
  cfg.fraction = 1.0 / 64;
  cfg.dates = 24;
  cfg.raster_size = 256;

  std::printf("\npool-size sweep: 4 nodes, queries {2, 12, 13}\n");
  std::printf("%-8s %-6s %12s %9s %12s\n", "pool_mb", "query", "modeled_s",
              "hit_rate", "misses");

  std::vector<paradise::bench::QueryPerfSample> samples;
  for (int mb : pool_mbs) {
    paradise::core::Cluster::Options copts;
    copts.buffer_pool_frames =
        (static_cast<size_t>(mb) << 20) / paradise::storage::kPageSize;
    paradise::bench::LoadedDb loaded =
        paradise::bench::LoadDbWithOptions(cfg, 4, 1, copts);
    loaded.cluster->SetNumThreads(8);
    loaded.cluster->ResetForQuery();  // cold start at this pool size
    // Attach a workload session: without one, BeginQuery cold-resets the
    // pools before *every* query (the single-query protocol), which makes
    // the hit rate a constant regardless of pool size. With one, pools
    // stay warm across queries and the sweep measures retention.
    paradise::core::WorkloadSession::Options sopts;
    sopts.num_streams = 1;
    sopts.result_cache = false;  // pool behaviour, not cache behaviour
    paradise::core::WorkloadSession session(loaded.cluster.get(), sopts);
    loaded.cluster->set_workload_session(&session);
    session.BindStream(0);
    double now = 0.0;
    for (int query : {2, 12, 13}) {
      // First execution streams the working set in; the *second* one
      // measures what the pool retained — the number the sizing trade-off
      // actually turns on (a pool below the re-reference distance pays
      // the full I/O again, a pool above it serves from memory).
      for (int warm = 0; warm < 1; ++warm) {
        paradise::core::WorkloadSession::Ticket* t = session.AwaitAdmission(now);
        double secs = paradise::bench::RunQuerySeconds(loaded.db.get(), query);
        now = t->admit_seconds + secs;
        session.FinishQuery(secs);
      }
      BufferPool::Stats before = PoolStatsAllNodes(loaded.cluster.get());
      Clock::time_point t0 = Clock::now();
      paradise::core::WorkloadSession::Ticket* t = session.AwaitAdmission(now);
      double modeled =
          paradise::bench::RunQuerySeconds(loaded.db.get(), query);
      now = t->admit_seconds + modeled;
      session.FinishQuery(modeled);
      double wall = std::chrono::duration<double>(Clock::now() - t0).count();
      BufferPool::Stats after = PoolStatsAllNodes(loaded.cluster.get());
      BufferPool::Stats d;
      d.Add(after);
      d.hits -= before.hits;
      d.misses -= before.misses;
      d.readahead_pages -= before.readahead_pages;
      const double denom =
          static_cast<double>(d.hits + d.misses + d.readahead_pages);
      const double hit_rate =
          denom > 0 ? static_cast<double>(d.hits) / denom : 1.0;
      std::printf("%-8d Q%-5d %12.6f %8.1f%% %12lld\n", mb, query, modeled,
                  hit_rate * 100,
                  static_cast<long long>(d.misses + d.readahead_pages));
      samples.push_back({"pool" + std::to_string(mb) + "mb_Q" +
                             std::to_string(query),
                         wall, modeled});
    }
    session.EndStream();
    loaded.cluster->set_workload_session(nullptr);
  }
  return samples;
}

/// Pulls `--pool-mb=a,b,c` out of argv (so google-benchmark's flag parser
/// never sees it), returning the requested sweep points.
std::vector<int> ExtractPoolSweepArg(int* argc, char** argv) {
  std::vector<int> mbs;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--pool-mb=", 10) == 0) {
      for (const char* p = argv[i] + 10; *p != '\0';) {
        mbs.push_back(std::atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return mbs;
    }
    if (std::strcmp(argv[i], "--pool-mb") == 0) {
      mbs = {8, 16, 32, 64};
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return mbs;
    }
  }
  return mbs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = paradise::bench::ExtractJsonPathArg(&argc, argv);
  std::vector<int> pool_mbs = ExtractPoolSweepArg(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::vector<paradise::bench::QueryPerfSample> samples = RunQuerySection();
  std::vector<paradise::bench::QueryPerfSample> joins = RunSpatialJoinSection();
  samples.insert(samples.end(), joins.begin(), joins.end());
  std::vector<paradise::bench::QueryPerfSample> adaptive =
      RunAdaptiveJoinSection();
  samples.insert(samples.end(), adaptive.begin(), adaptive.end());
  if (!pool_mbs.empty()) {
    std::vector<paradise::bench::QueryPerfSample> sweep =
        RunPoolSweep(pool_mbs);
    samples.insert(samples.end(), sweep.begin(), sweep.end());
  }
  if (!json_path.empty()) {
    paradise::bench::WriteBenchJson(json_path, "bench_micro", samples);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
