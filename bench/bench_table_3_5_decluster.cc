// Reproduces Table 3.5: the decluster-rasters experiment (Section 2.6 /
// 3.5). Queries 2, 3, and 3' on 16 nodes, with each raster's tiles either
// resident on one node (the default) or spread round-robin across all
// nodes. The paper's finding: declustering *hurts* the many-raster scan
// (Q2), barely helps a small clip (Q3), and wins big when a few whole
// rasters are processed (Q3').

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using paradise::bench::BenchConfig;
using paradise::bench::LoadDb;
using paradise::bench::LoadedDb;
using paradise::benchmark::RunQuery2;
using paradise::benchmark::RunQuery3;
using paradise::benchmark::RunQuery3Prime;

double Run(paradise::benchmark::BenchmarkDatabase* db, int which) {
  auto r = which == 2   ? RunQuery2(db)
           : which == 3 ? RunQuery3(db)
                        : RunQuery3Prime(db);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return r->seconds;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  constexpr int kNodes = 16;

  std::fprintf(stderr, "loading (tiles declustered across nodes)...\n");
  double with_decluster[3], without_decluster[3];
  {
    LoadedDb l = LoadDb(cfg, kNodes, /*scale=*/1, /*decluster_rasters=*/true);
    for (int i = 0; i < 3; ++i) {
      with_decluster[i] = Run(l.db.get(), i + 2);
    }
  }
  std::fprintf(stderr, "loading (tiles resident on one node each)...\n");
  {
    LoadedDb l = LoadDb(cfg, kNodes, /*scale=*/1, /*decluster_rasters=*/false);
    for (int i = 0; i < 3; ++i) {
      without_decluster[i] = Run(l.db.get(), i + 2);
    }
  }

  // Paper's Table 3.5 for reference.
  const double paper_with[3] = {336.6, 15.3, 53.5};
  const double paper_without[3] = {112.9, 21.68, 417.8};
  const char* names[3] = {"Query 2", "Query 3", "Query 3'"};

  std::printf(
      "== Table 3.5: declustering individual rasters (16 nodes, modeled "
      "seconds) ==\n\n");
  std::printf("%-10s %18s %18s   | paper: %10s %10s\n", "query",
              "with decluster", "w/o decluster", "with", "w/o");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-10s %18.3f %18.3f   |        %10.1f %10.1f\n", names[i],
                with_decluster[i], without_decluster[i], paper_with[i],
                paper_without[i]);
  }
  std::printf(
      "\nexpected shape: Q2 slower with declustering, Q3 roughly even, "
      "Q3' much faster with declustering.\n");
  return 0;
}
