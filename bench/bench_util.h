#ifndef PARADISE_BENCH_BENCH_UTIL_H_
#define PARADISE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchmark/database.h"
#include "benchmark/queries.h"

namespace paradise::bench {

/// Sizing knobs shared by the table benchmarks. The default data set is
/// ~1/256 of the paper's (Table 3.1) so a full run finishes on one core;
/// pass --fraction= / --dates= / --raster= to rescale, or --quick for a
/// smoke-test run.
struct BenchConfig {
  double fraction = 1.0 / 64;
  int dates = 90;           // x4 channels = 360 rasters (paper: 1440)
  uint32_t raster_size = 256;
  /// Small tiles keep the tile:clip-region ratio comparable to the
  /// paper's 128 KB tiles against 20 MB images.
  size_t tile_bytes = 2048;
  uint64_t seed = 42;

  static BenchConfig FromArgs(int argc, char** argv) {
    BenchConfig cfg;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--fraction=", 11) == 0) {
        cfg.fraction = std::atof(arg + 11);
      } else if (std::strncmp(arg, "--dates=", 8) == 0) {
        cfg.dates = std::atoi(arg + 8);
      } else if (std::strncmp(arg, "--raster=", 9) == 0) {
        cfg.raster_size = static_cast<uint32_t>(std::atoi(arg + 9));
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        cfg.seed = static_cast<uint64_t>(std::atoll(arg + 7));
      } else if (std::strcmp(arg, "--quick") == 0) {
        cfg.fraction = 1.0 / 1024;
        cfg.dates = 24;
        cfg.raster_size = 128;
      }
    }
    return cfg;
  }

  datagen::DataSetOptions MakeOptions(int scale) const {
    datagen::DataSetOptions o;
    o.seed = seed;
    o.scale = scale;
    o.size_fraction = fraction;
    o.num_dates = dates;
    o.base_raster_size = raster_size;
    return o;
  }
};

struct LoadedDb {
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<benchmark::BenchmarkDatabase> db;
};

inline LoadedDb LoadDbWithOptions(const BenchConfig& cfg, int nodes,
                                  int scale, core::Cluster::Options copts,
                                  bool decluster_rasters = false) {
  LoadedDb out;
  out.cluster = std::make_unique<core::Cluster>(nodes, copts);
  datagen::GlobalDataSet ds =
      datagen::GenerateGlobalDataSet(cfg.MakeOptions(scale));
  benchmark::LoadOptions lopts;
  lopts.decluster_rasters = decluster_rasters;
  lopts.tile_bytes = cfg.tile_bytes;
  auto db = benchmark::BenchmarkDatabase::Load(out.cluster.get(), ds, lopts);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  out.db = std::move(*db);
  return out;
}

inline LoadedDb LoadDb(const BenchConfig& cfg, int nodes, int scale,
                       bool decluster_rasters = false) {
  return LoadDbWithOptions(cfg, nodes, scale, core::Cluster::Options{},
                           decluster_rasters);
}

inline double RunQuerySeconds(benchmark::BenchmarkDatabase* db, int query) {
  auto r = benchmark::RunQueryByNumber(db, query);
  if (!r.ok()) {
    std::fprintf(stderr, "query %d failed: %s\n", query,
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r->seconds;
}

/// One benchmarked query for the machine-readable report: host wall-clock
/// (what the CI perf-smoke job regresses on) next to the modeled seconds
/// (what the paper's experiments report).
struct QueryPerfSample {
  std::string name;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;
};

/// Pulls `--json <path>` / `--json=<path>` out of argv (compacting it so
/// later parsers never see the flag) and returns the path, or "" if absent.
inline std::string ExtractJsonPathArg(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Writes the samples as a small JSON document:
///   {"bench": "<name>", "queries": [{"name": ..., "wall_seconds": ...,
///    "modeled_seconds": ...}, ...]}
/// Exits nonzero if the file cannot be written (a silent miss would let
/// the CI perf gate pass vacuously).
inline void WriteBenchJson(const std::string& path,
                           const std::string& bench_name,
                           const std::vector<QueryPerfSample>& samples) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"queries\": [\n",
               bench_name.c_str());
  for (size_t i = 0; i < samples.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
                 "\"modeled_seconds\": %.9f}%s\n",
                 samples[i].name.c_str(), samples[i].wall_seconds,
                 samples[i].modeled_seconds,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace paradise::bench

#endif  // PARADISE_BENCH_BENCH_UTIL_H_
