// Reproduces Table 3.4: speedup execution times for Queries 2-14 — the
// *fixed* S=1 database (Table 3.3) run on 4, 8, and 16 nodes. Halving
// times per doubling = perfect speedup.

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using paradise::bench::BenchConfig;
using paradise::bench::LoadDb;
using paradise::bench::LoadedDb;
using paradise::bench::RunQuerySeconds;

// Table 3.4 of the paper.
constexpr double kPaper[13][3] = {
    {118.19, 50.29, 23.99},    // Q2
    {8.97, 7.12, 7.80},        // Q3
    {3.34, 3.60, 4.32},        // Q4
    {1.09, 0.62, 0.43},        // Q5
    {14.40, 8.07, 5.41},       // Q6
    {1.79, 1.02, 0.70},        // Q7
    {11.70, 7.28, 7.36},       // Q8
    {17.12, 14.58, 14.29},     // Q9
    {79.96, 39.99, 21.44},     // Q10
    {24.83, 12.29, 6.53},      // Q11
    {308.43, 153.28, 91.38},   // Q12
    {1156.47, 514.41, 268.02}, // Q13
    {100.83, 57.96, 43.04},    // Q14
};

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  const int node_counts[3] = {4, 8, 16};
  double results[13][3];

  for (int c = 0; c < 3; ++c) {
    std::fprintf(stderr, "loading fixed database on %d nodes...\n",
                 node_counts[c]);
    LoadedDb l = LoadDb(cfg, node_counts[c], /*scale=*/1);
    for (int q = 2; q <= 14; ++q) {
      std::fprintf(stderr, "  query %d...\n", q);
      results[q - 2][c] = RunQuerySeconds(l.db.get(), q);
    }
  }

  std::printf(
      "== Table 3.4: speedup execution times (modeled seconds) ==\n"
      "   fixed database on a growing cluster\n\n");
  std::printf("%-10s %10s %10s %10s   | paper: %9s %9s %9s\n", "query",
              "4 nodes", "8 nodes", "16 nodes", "4n", "8n", "16n");
  for (int q = 2; q <= 14; ++q) {
    std::printf("Query %-4d %10.3f %10.3f %10.3f   |        %9.2f %9.2f %9.2f\n",
                q, results[q - 2][0], results[q - 2][1], results[q - 2][2],
                kPaper[q - 2][0], kPaper[q - 2][1], kPaper[q - 2][2]);
  }
  std::printf(
      "\nspeedup 4->16 nodes (4.0 = perfect, >4 super-linear):\n");
  for (int q = 2; q <= 14; ++q) {
    double ours = results[q - 2][0] / results[q - 2][2];
    double paper = kPaper[q - 2][0] / kPaper[q - 2][2];
    std::printf("Query %-4d ours %6.2f   paper %6.2f\n", q, ours, paper);
  }
  return 0;
}
