// Reproduces Table 3.1 (scaleup data set sizes) and Table 3.3 (the fixed
// speedup data set): per-table tuple counts and byte sizes for the 4-, 8-,
// and 16-node configurations. The synthetic data set is ~1/256 the paper's
// byte volume by default; the tuple-count *ratios* across configurations
// are the paper's (doubling per configuration, constant 1440-style raster
// cardinality).

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/datagen.h"

namespace {

using paradise::bench::BenchConfig;
using paradise::datagen::GenerateGlobalDataSet;
using paradise::datagen::GlobalDataSet;

struct Row {
  const char* name;
  int64_t tuples;
  double mbytes;
};

void PrintConfig(const BenchConfig& cfg, int nodes, int scale) {
  GlobalDataSet ds = GenerateGlobalDataSet(cfg.MakeOptions(scale));
  auto bytes_of = [](const std::vector<paradise::exec::Tuple>& rows) {
    double n = 0;
    for (const auto& t : rows) {
      for (const auto& v : t.values) n += v.StorageBytes(true);
    }
    return n / 1e6;
  };
  Row rows[] = {
      {"raster", static_cast<int64_t>(ds.rasters.size()),
       static_cast<double>(ds.RasterBytes()) / 1e6},
      {"populatedPlaces", static_cast<int64_t>(ds.populated_places.size()),
       bytes_of(ds.populated_places)},
      {"roads", static_cast<int64_t>(ds.roads.size()), bytes_of(ds.roads)},
      {"drainage", static_cast<int64_t>(ds.drainage.size()),
       bytes_of(ds.drainage)},
      {"landCover", static_cast<int64_t>(ds.land_cover.size()),
       bytes_of(ds.land_cover)},
  };
  std::printf("%d nodes (resolution scaleup S=%d):\n", nodes, scale);
  std::printf("  %-18s %12s %12s\n", "table", "# tuples", "size (MB)");
  for (const Row& r : rows) {
    std::printf("  %-18s %12lld %12.1f\n", r.name,
                static_cast<long long>(r.tuples), r.mbytes);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  std::printf(
      "== Table 3.1: scaleup data set sizes (synthetic global data set, "
      "~1/%d of the paper's bytes) ==\n\n",
      static_cast<int>(1.0 / cfg.fraction));
  PrintConfig(cfg, 4, 1);
  PrintConfig(cfg, 8, 2);
  PrintConfig(cfg, 16, 4);
  std::printf(
      "== Table 3.3: speedup data set == identical to the 4-node row above "
      "(S=1), used on 4/8/16 nodes.\n");
  return 0;
}
