// Ablation for Section 2.7.1: how the number of spatial partitions (grid
// tiles) trades declustering skew against replication. Few tiles -> bad
// skew (hot nodes); many tiles -> smooth load but more spanning features
// replicated. The paper: "one needs thousands of partitions to smooth out
// the skew to any significant extent".

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/table.h"

namespace {

using paradise::bench::BenchConfig;
using paradise::catalog::PartitioningKind;
using paradise::catalog::TableDef;
using paradise::core::Cluster;
using paradise::core::ParallelTable;

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  constexpr int kNodes = 16;
  paradise::datagen::GlobalDataSet ds =
      paradise::datagen::GenerateGlobalDataSet(cfg.MakeOptions(1));

  std::printf(
      "== Ablation: spatial partition count vs skew and replication ==\n"
      "   roads table, %d nodes, %zu tuples (skewed around population "
      "centers)\n\n",
      kNodes, ds.roads.size());
  std::printf("%12s %12s %14s %12s %12s\n", "tiles", "tiles/node",
              "replication", "max/mean", "max node");

  for (uint32_t tiles_per_axis : {2u, 4u, 8u, 16u, 32u, 64u, 100u, 200u}) {
    Cluster cluster(kNodes);
    TableDef def;
    def.name = "roads";
    def.schema = paradise::datagen::RoadsSchema();
    def.partitioning = PartitioningKind::kSpatial;
    def.partition_column = paradise::datagen::col::kLineShape;
    def.universe = ds.universe;
    auto table = ParallelTable::Load(&cluster, def, ds.roads, tiles_per_axis);
    if (!table.ok()) {
      std::fprintf(stderr, "load failed\n");
      return 1;
    }
    int64_t total = (*table)->num_stored();
    int64_t logical = (*table)->num_rows();
    int64_t max_frag = 0;
    for (int n = 0; n < kNodes; ++n) {
      max_frag = std::max(max_frag, (*table)->fragment(n).num_rows());
    }
    double mean_frag = static_cast<double>(total) / kNodes;
    std::printf("%12u %12.1f %13.3fx %12.2f %12lld\n",
                tiles_per_axis * tiles_per_axis,
                static_cast<double>(tiles_per_axis) * tiles_per_axis / kNodes,
                static_cast<double>(total) / static_cast<double>(logical),
                static_cast<double>(max_frag) / mean_frag,
                static_cast<long long>(max_frag));
  }
  std::printf(
      "\nexpected shape: max/mean skew falls toward 1.0 as tiles grow; the "
      "replication factor rises.\n");
  return 0;
}
