// Ablation for Section 2.7.1: how the number of spatial partitions (grid
// tiles) trades declustering skew against replication. Few tiles -> bad
// skew (hot nodes); many tiles -> smooth load but more spanning features
// replicated. The paper: "one needs thousands of partitions to smooth out
// the skew to any significant extent".

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/coordinator.h"
#include "core/parallel_ops.h"
#include "core/table.h"
#include "exec/spatial_join.h"
#include "opt/partition_tuner.h"
#include "opt/stats.h"
#include "sim/cost_model.h"

namespace {

using paradise::bench::BenchConfig;
using paradise::catalog::PartitioningKind;
using paradise::catalog::TableDef;
using paradise::core::Cluster;
using paradise::core::ParallelTable;
using paradise::exec::ExecContext;
using paradise::exec::PbsmJoinStats;
using paradise::exec::PbsmOptions;
using paradise::exec::TupleVec;

/// Bottom-k sample + histogram over one column of `rows`, the same
/// pipeline ParallelTable::Load feeds the catalog.
paradise::opt::HistogramStats HistogramOf(const std::string& name,
                                          const TupleVec& rows, size_t col,
                                          const paradise::geom::Box& universe,
                                          uint64_t seed) {
  paradise::opt::SpatialSampler sampler(seed, 0, 4096);
  for (size_t i = 0; i < rows.size(); ++i) {
    sampler.Add(i, rows[i].at(col).Mbr());
  }
  paradise::opt::BuildHistogramOptions hopt;
  hopt.tiles_per_axis = 128;  // tail hotspots are smaller than a 64x64 tile
  return paradise::opt::BuildHistogram(name, universe, sampler.Samples(),
                                       static_cast<int64_t>(rows.size()),
                                       hopt);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  constexpr int kNodes = 16;
  paradise::datagen::GlobalDataSet ds =
      paradise::datagen::GenerateGlobalDataSet(cfg.MakeOptions(1));

  std::printf(
      "== Ablation: spatial partition count vs skew and replication ==\n"
      "   roads table, %d nodes, %zu tuples (skewed around population "
      "centers)\n\n",
      kNodes, ds.roads.size());
  std::printf("%12s %12s %14s %12s %12s\n", "tiles", "tiles/node",
              "replication", "max/mean", "max node");

  for (uint32_t tiles_per_axis : {2u, 4u, 8u, 16u, 32u, 64u, 100u, 200u}) {
    Cluster cluster(kNodes);
    TableDef def;
    def.name = "roads";
    def.schema = paradise::datagen::RoadsSchema();
    def.partitioning = PartitioningKind::kSpatial;
    def.partition_column = paradise::datagen::col::kLineShape;
    def.universe = ds.universe;
    auto table = ParallelTable::Load(&cluster, def, ds.roads, tiles_per_axis);
    if (!table.ok()) {
      std::fprintf(stderr, "load failed\n");
      return 1;
    }
    int64_t total = (*table)->num_stored();
    int64_t logical = (*table)->num_rows();
    int64_t max_frag = 0;
    for (int n = 0; n < kNodes; ++n) {
      max_frag = std::max(max_frag, (*table)->fragment(n).num_rows());
    }
    double mean_frag = static_cast<double>(total) / kNodes;
    std::printf("%12u %12.1f %13.3fx %12.2f %12lld\n",
                tiles_per_axis * tiles_per_axis,
                static_cast<double>(tiles_per_axis) * tiles_per_axis / kNodes,
                static_cast<double>(total) / static_cast<double>(logical),
                static_cast<double>(max_frag) / mean_frag,
                static_cast<long long>(max_frag));
  }
  std::printf(
      "\nexpected shape: max/mean skew falls toward 1.0 as tiles grow; the "
      "replication factor rises.\n");

  // -- Adaptive PBSM cell map on clustered datagen --------------------------
  // Coastline-hugging roads joined with urban point clusters: nearly all
  // mass sits in a few filaments/hotspots, so a uniform cell grid puts
  // whole hotspots into single cells — a load no cell→partition *map* can
  // split. The tuner's equi-depth (SATO-style) grid makes cells carry
  // similar mass, so block-hash assignment then balances partitions.
  {
    paradise::datagen::ClusteredDataOptions copt;
    copt.seed = 29;
    copt.count = 30'000;
    copt.num_clusters = 4;
    copt.skew = 0.95;
    TupleVec roads = paradise::datagen::GenerateCoastlineRoads(copt);
    TupleVec points = paradise::datagen::GenerateUrbanPoints(copt);
    // "Which places sit in a road's corridor": polyline-vs-point exact
    // intersection is a zero-measure predicate, so join the points against
    // the road MBRs (box-contains-point) — same candidate work, real hits.
    const size_t road_col = paradise::datagen::col::kLineShape;
    const size_t point_col = paradise::datagen::col::kPlaceLocation;
    TupleVec corridors;
    corridors.reserve(roads.size());
    for (const auto& t : roads) {
      corridors.push_back(paradise::exec::Tuple(
          {t.at(paradise::datagen::col::kLineId),
           t.at(paradise::datagen::col::kLineType),
           paradise::exec::Value(t.at(road_col).Mbr())}));
    }
    paradise::geom::Box universe = paradise::geom::Box::Empty();
    for (const auto& t : corridors) {
      universe = universe.Union(t.at(road_col).Mbr());
    }
    for (const auto& t : points) {
      universe = universe.Union(t.at(point_col).Mbr());
    }

    paradise::opt::HistogramStats lhist =
        HistogramOf("urban_points", points, point_col, universe, 29);
    paradise::opt::HistogramStats rhist =
        HistogramOf("road_corridors", corridors, road_col, universe, 31);
    paradise::opt::PartitionTunerOptions topt;
    topt.num_partitions = 64;
    topt.skew_target = 1.25;
    paradise::opt::TunedPartitioning tuned =
        paradise::opt::TunePartitions(lhist, &rhist, topt);

    std::printf(
        "\n== Adaptive cell map on clustered datagen (urban points x "
        "coastline-road corridors, %zu x %zu, partitions=64, uniform "
        "cells=32x32, tuned cells=%zux%zu, predicted max/mean %.2f) ==\n\n",
        points.size(), corridors.size(), tuned.grid.cells_x(),
        tuned.grid.cells_y(), tuned.predicted_skew);
    std::printf("%12s %12s %12s %10s %12s %12s %12s %10s %12s\n",
                "cell map", "max items", "mean items", "max/mean",
                "replication", "modeled (s)", "wall8 (s)", "rows",
                "sweep pairs");
    paradise::sim::CostModel model;
    size_t rows_expected = 0;
    double blockhash_skew = 0.0, adaptive_skew = 0.0;
    struct MapCase {
      const char* name;
      PbsmOptions::CellMap map;
    };
    for (const MapCase& mc :
         {MapCase{"modulo", PbsmOptions::CellMap::kModulo},
          MapCase{"blockhash", PbsmOptions::CellMap::kBlockHash},
          MapCase{"adaptive", PbsmOptions::CellMap::kAdaptive}}) {
      PbsmOptions popts;
      popts.num_partitions = 64;
      popts.cells_per_axis = 32;
      popts.cell_map = mc.map;
      if (mc.map == PbsmOptions::CellMap::kAdaptive) {
        popts.adaptive = &tuned.grid;
      }
      // Modeled seconds fold every partition's charge into one clock (the
      // total work); the *balance* payoff shows in the threaded wall
      // clock, whose critical path is the heaviest partition. Best of 3.
      paradise::common::ThreadPool pool(8);
      PbsmJoinStats stats;
      double modeled = 0.0, wall = 1e300;
      size_t rows = 0;
      for (int rep = 0; rep < 3; ++rep) {
        paradise::sim::NodeClock clock;
        ExecContext ctx;
        ctx.clock = &clock;
        ctx.pool = &pool;
        ctx.pbsm_stats = &stats;
        auto t0 = std::chrono::steady_clock::now();
        auto r = paradise::exec::PbsmSpatialJoin(points, point_col, corridors,
                                                 road_col, ctx, popts);
        auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          std::fprintf(stderr, "adaptive ablation pbsm failed\n");
          return 1;
        }
        wall = std::min(wall, std::chrono::duration<double>(t1 - t0).count());
        modeled = model.Seconds(clock.EndPhase());
        rows = r->size();
      }
      if (rows_expected == 0) {
        rows_expected = rows;
      } else if (rows != rows_expected) {
        std::fprintf(stderr, "cell map changed the join result!\n");
        return 1;
      }
      double skew = stats.mean_partition_items == 0.0
                        ? 0.0
                        : static_cast<double>(stats.max_partition_items) /
                              stats.mean_partition_items;
      if (mc.map == PbsmOptions::CellMap::kBlockHash) blockhash_skew = skew;
      if (mc.map == PbsmOptions::CellMap::kAdaptive) adaptive_skew = skew;
      std::printf(
          "%12s %12lld %12.1f %10.2f %12.3f %12.4f %12.4f %10zu %12lld\n",
          mc.name, static_cast<long long>(stats.max_partition_items),
          stats.mean_partition_items, skew, stats.replication(), modeled,
          wall, rows, static_cast<long long>(stats.sweep_pair_compares));
    }
    std::printf(
        "\nexpected shape: identical rows for every map; adaptive's "
        "max/mean beats blockhash's %.2f by >=2x (%.2fx here) and cuts "
        "modulo's modeled seconds severalfold; blockhash stays the total-"
        "work floor because its scattered uniform cells replicate wide "
        "corridors the least.\n",
        blockhash_skew,
        adaptive_skew == 0.0 ? 0.0 : blockhash_skew / adaptive_skew);
  }

  // -- Two-layer declustering vs replicate-and-dedup ------------------------
  // Same clustered datagen, now through the parallel join: the legacy mode
  // replicates per-node PBSM entries across its internal cells and pays a
  // reference-point test per joined tuple; the two-layer class plan
  // assigns each (entry, tile) copy a begin class and runs the nine
  // feasible class pairs per owned tile, so no dedup branch ever runs.
  {
    paradise::datagen::ClusteredDataOptions copt;
    copt.seed = 29;
    copt.count = 30'000;
    copt.num_clusters = 4;
    copt.skew = 0.95;
    TupleVec roads = paradise::datagen::GenerateCoastlineRoads(copt);
    TupleVec points = paradise::datagen::GenerateUrbanPoints(copt);
    const size_t road_col = paradise::datagen::col::kLineShape;
    const size_t point_col = paradise::datagen::col::kPlaceLocation;
    TupleVec corridors;
    corridors.reserve(roads.size());
    for (const auto& t : roads) {
      corridors.push_back(paradise::exec::Tuple(
          {t.at(paradise::datagen::col::kLineId),
           t.at(paradise::datagen::col::kLineType),
           paradise::exec::Value(t.at(road_col).Mbr())}));
    }
    paradise::geom::Box universe = paradise::geom::Box::Empty();
    for (const auto& t : corridors) {
      universe = universe.Union(t.at(road_col).Mbr());
    }
    for (const auto& t : points) {
      universe = universe.Union(t.at(point_col).Mbr());
    }

    std::printf(
        "\n== Two-layer declustering vs replicate-and-dedup (clustered "
        "datagen, %zu points x %zu corridors, %d nodes, 32x32 tiles) ==\n\n",
        points.size(), corridors.size(), kNodes);
    std::printf("%12s %12s %12s %14s %12s %12s %12s %10s\n", "mode",
                "dedup tests", "dedup drops", "repl bytes", "sweep pairs",
                "modeled (s)", "wall8 (s)", "rows");

    paradise::sim::CostModel model;
    uint64_t fp_expected = 0;
    size_t rows_expected = 0;
    double legacy_wall = 0.0, two_wall = 0.0;
    int64_t legacy_repl = 0, two_repl = 0;
    PbsmJoinStats two_stats;
    for (bool two_layer : {false, true}) {
      double modeled = 0.0, wall = 1e300;
      size_t rows = 0;
      uint64_t fp = 0;
      PbsmJoinStats stats;
      for (int rep = 0; rep < 3; ++rep) {
        Cluster cluster(kNodes);
        cluster.SetNumThreads(8);
        paradise::core::QueryCoordinator coord(&cluster);
        if (!coord.BeginQuery().ok()) {
          std::fprintf(stderr, "begin query failed\n");
          return 1;
        }
        paradise::core::PerNode lper(kNodes), rper(kNodes);
        for (size_t i = 0; i < points.size(); ++i) {
          lper[i % kNodes].push_back(points[i]);
        }
        for (size_t i = 0; i < corridors.size(); ++i) {
          rper[i % kNodes].push_back(corridors[i]);
        }
        paradise::core::ParallelSpatialJoinOptions jopts;
        jopts.tiles_per_axis = 32;
        jopts.two_layer = two_layer;
        auto t0 = std::chrono::steady_clock::now();
        auto joined = paradise::core::ParallelSpatialJoin(
            &coord, lper, point_col, rper, road_col, universe, jopts);
        auto t1 = std::chrono::steady_clock::now();
        if (!joined.ok()) {
          std::fprintf(stderr, "two-layer ablation join failed\n");
          return 1;
        }
        wall = std::min(wall, std::chrono::duration<double>(t1 - t0).count());
        coord.EndQuery();
        modeled = coord.query_seconds();
        stats = coord.pbsm_stats();
        // Order-independent fingerprint of the (left id, right id) pairs.
        const size_t left_width = points.empty() ? 0 : points[0].size();
        rows = 0;
        fp = 0;
        for (const auto& v : *joined) {
          rows += v.size();
          for (const auto& t : v) {
            uint64_t h = 1469598103934665603ull;
            auto mix = [&h](const std::string& s) {
              for (char c : s) {
                h ^= static_cast<uint8_t>(c);
                h *= 1099511628211ull;
              }
              h ^= '|';
              h *= 1099511628211ull;
            };
            mix(t.at(paradise::datagen::col::kPlaceId).ToString());
            mix(t.at(left_width + paradise::datagen::col::kLineId).ToString());
            fp += h;  // commutative fold: placement-order independent
          }
        }
      }
      if (!two_layer) {
        fp_expected = fp;
        rows_expected = rows;
        legacy_wall = wall;
        legacy_repl = stats.replicated_entry_bytes;
      } else {
        two_wall = wall;
        two_repl = stats.replicated_entry_bytes;
        two_stats = stats;
        if (fp != fp_expected || rows != rows_expected) {
          std::fprintf(stderr, "two-layer changed the join result!\n");
          return 1;
        }
      }
      std::printf("%12s %12lld %12lld %14lld %12lld %12.4f %12.4f %10zu\n",
                  two_layer ? "two-layer" : "legacy",
                  static_cast<long long>(stats.dedup_tests),
                  static_cast<long long>(stats.dedup_dropped),
                  static_cast<long long>(stats.replicated_entry_bytes),
                  static_cast<long long>(stats.sweep_pair_compares), modeled,
                  wall, rows);
    }
    std::printf(
        "\nclass census (two-layer copies): A=%lld B=%lld C=%lld D=%lld\n",
        static_cast<long long>(two_stats.class_a_items),
        static_cast<long long>(two_stats.class_b_items),
        static_cast<long long>(two_stats.class_c_items),
        static_cast<long long>(two_stats.class_d_items));
    std::printf(
        "expected shape: identical rows and fingerprints; two-layer's dedup "
        "tests/drops are exactly 0 and its replication bytes undercut "
        "legacy's (%.2fx) with wall clock no worse (legacy %.4fs vs "
        "two-layer %.4fs). Legacy drops are 0 on this shape because a "
        "zero-extent point lands in exactly one cell/tile/node and never "
        "replicates — legacy still pays one reference-point test per "
        "candidate; extended-x-extended joins would drop as well.\n",
        two_repl == 0 ? 0.0
                      : static_cast<double>(legacy_repl) /
                            static_cast<double>(two_repl),
        legacy_wall, two_wall);

    // Probe shipping for the index nested-loops variant: a broadcast sends
    // every outer tuple to all nodes; a two-layer inner lets the planner
    // multicast each probe to just the nodes its MBR overlaps.
    paradise::core::SpatialGrid grid(universe, 32, kNodes);
    Cluster cluster(kNodes);
    paradise::core::QueryCoordinator coord(&cluster);
    if (!coord.BeginQuery().ok()) return 1;
    paradise::core::PerNode outer(kNodes);
    for (size_t i = 0; i < points.size() && i < 2000; ++i) {
      outer[i % kNodes].push_back(points[i]);
    }
    auto net_charge = [&]() {
      int64_t bytes = 0;
      for (int n = 0; n < kNodes; ++n) {
        bytes += cluster.node(n).clock()->total_usage().net_bytes;
      }
      return bytes;
    };
    const int64_t before_bcast = net_charge();
    if (!paradise::core::Broadcast(&coord, outer).ok()) return 1;
    const int64_t bcast_bytes = net_charge() - before_bcast;
    const int64_t before_mcast = net_charge();
    auto mcast = paradise::core::Redistribute(
        &coord, outer,
        [&](const paradise::exec::Tuple& t, std::vector<uint32_t>* dest) {
          *dest = grid.NodesOfBox(t.at(point_col).Mbr());
        });
    if (!mcast.ok()) return 1;
    const int64_t mcast_bytes = net_charge() - before_mcast;
    coord.EndQuery();
    std::printf(
        "\nprobe shipping, %d-node INL outer: broadcast %lld net bytes vs "
        "targeted multicast %lld (%.1fx less network charge).\n",
        kNodes, static_cast<long long>(bcast_bytes),
        static_cast<long long>(mcast_bytes),
        mcast_bytes == 0 ? 0.0
                         : static_cast<double>(bcast_bytes) /
                               static_cast<double>(mcast_bytes));
  }
  return 0;
}
