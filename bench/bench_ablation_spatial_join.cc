// Ablation for Section 2.4's join-algorithm choice: indexed nested loops
// vs PBSM for spatial joins, sweeping the outer cardinality. Small outers
// should favor index probes; large outers favor the scan-based PBSM.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "exec/spatial_join.h"
#include "sim/cost_model.h"

namespace {

using paradise::Rng;
using paradise::exec::ExecContext;
using paradise::exec::Tuple;
using paradise::exec::TupleVec;
using paradise::exec::Value;
using paradise::geom::Point;
using paradise::geom::Polyline;

TupleVec MakeLines(Rng* rng, int n, double extent) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    double x = rng->NextDouble(-extent, extent);
    double y = rng->NextDouble(-extent, extent);
    std::vector<Point> pts;
    double heading = rng->NextDouble(0, 6.28);
    for (int k = 0; k < 8; ++k) {
      pts.push_back(Point{x, y});
      heading += rng->NextDouble(-0.5, 0.5);
      x += 0.5 * std::cos(heading);
      y += 0.5 * std::sin(heading);
    }
    out.push_back(Tuple({Value(static_cast<int64_t>(i)),
                         Value(Polyline(std::move(pts)))}));
  }
  return out;
}

double ModeledSeconds(const paradise::sim::CostModel& model,
                      paradise::sim::NodeClock* clock) {
  return model.Seconds(clock->EndPhase());
}

}  // namespace

int64_t ScanBytes(const TupleVec& tuples) {
  int64_t n = 0;
  for (const Tuple& t : tuples) {
    for (const auto& v : t.values) {
      n += static_cast<int64_t>(v.StorageBytes(/*deep=*/true));
    }
  }
  return n;
}

int main(int argc, char** argv) {
  (void)paradise::bench::BenchConfig::FromArgs(argc, argv);
  Rng rng(7);
  paradise::sim::CostModel model;
  const int kInner = 100000;
  TupleVec inner = MakeLines(&rng, kInner, 100);
  int64_t inner_bytes = ScanBytes(inner);

  // The persistent inner index exists already (Section 2.4's "when an
  // R-tree exists on the join attribute ... indexed nested loops is
  // generally used"); PBSM instead must scan the inner.
  ExecContext no_charge;
  auto tree = paradise::exec::BuildRTreeOnColumn(inner, 1, no_charge);

  std::printf(
      "== Ablation: indexed NL vs PBSM spatial join (inner = %d polylines, "
      "%.1f MB; index NL probes the pre-built R*-tree, PBSM scans) ==\n\n",
      kInner, static_cast<double>(inner_bytes) / 1e6);
  std::printf("%12s %14s %14s %10s\n", "outer size", "index NL (s)",
              "PBSM (s)", "winner");

  for (int outer_size : {1, 10, 100, 1000, 5000, 20000}) {
    TupleVec outer = MakeLines(&rng, outer_size, 100);
    int64_t outer_bytes = ScanBytes(outer);

    // Index plan: scan the outer, probe per tuple.
    paradise::sim::NodeClock c1;
    ExecContext ctx1;
    ctx1.clock = &c1;
    c1.ChargeDiskRead(outer_bytes, 1);
    auto r1 = paradise::exec::IndexSpatialJoin(outer, 1, inner, 1, *tree, ctx1);
    double idx_seconds = ModeledSeconds(model, &c1);

    // PBSM plan: scan both inputs, partition, sweep.
    paradise::sim::NodeClock c2;
    ExecContext ctx2;
    ctx2.clock = &c2;
    c2.ChargeDiskRead(outer_bytes, 1);
    c2.ChargeDiskRead(inner_bytes, 1);
    auto r2 = paradise::exec::PbsmSpatialJoin(outer, 1, inner, 1, ctx2);
    double pbsm_seconds = ModeledSeconds(model, &c2);

    if (!r1.ok() || !r2.ok() || r1->size() != r2->size()) {
      std::fprintf(stderr, "join mismatch!\n");
      return 1;
    }
    std::printf("%12d %14.4f %14.4f %10s\n", outer_size, idx_seconds,
                pbsm_seconds, idx_seconds < pbsm_seconds ? "index" : "pbsm");
  }
  std::printf(
      "\nexpected shape: index NL wins for small outers; PBSM takes over "
      "as the outer grows.\n");
  return 0;
}
