// Ablation for Section 2.4's join-algorithm choice: indexed nested loops
// vs PBSM for spatial joins, sweeping the outer cardinality. Small outers
// should favor index probes; large outers favor the scan-based PBSM.
// Followed by the intra-node parallelism sweep (partition-to-threads wall
// clock vs thread count, with modeled time held bit-identical) and the
// cell→partition map skew comparison (modulo vs block-hash).

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/spatial_join.h"
#include "sim/cost_model.h"

namespace {

using paradise::Rng;
using paradise::common::ThreadPool;
using paradise::exec::ExecContext;
using paradise::exec::PbsmJoinStats;
using paradise::exec::PbsmOptions;
using paradise::exec::Tuple;
using paradise::exec::TupleVec;
using paradise::exec::Value;
using paradise::geom::Point;
using paradise::geom::Polyline;

TupleVec MakeLines(Rng* rng, int n, double extent) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    double x = rng->NextDouble(-extent, extent);
    double y = rng->NextDouble(-extent, extent);
    std::vector<Point> pts;
    double heading = rng->NextDouble(0, 6.28);
    for (int k = 0; k < 8; ++k) {
      pts.push_back(Point{x, y});
      heading += rng->NextDouble(-0.5, 0.5);
      x += 0.5 * std::cos(heading);
      y += 0.5 * std::sin(heading);
    }
    out.push_back(Tuple({Value(static_cast<int64_t>(i)),
                         Value(Polyline(std::move(pts)))}));
  }
  return out;
}

/// Clustered polylines: most tuples pile into a few Gaussian-ish hotspots,
/// the skew shape that defeats a columnar `cell % P` partition map.
TupleVec MakeClusteredLines(Rng* rng, int n, double extent, int clusters) {
  TupleVec out;
  std::vector<Point> centers;
  for (int c = 0; c < clusters; ++c) {
    centers.push_back(Point{rng->NextDouble(-extent, extent),
                            rng->NextDouble(-extent, extent)});
  }
  for (int i = 0; i < n; ++i) {
    const Point& c = centers[static_cast<size_t>(i) % centers.size()];
    double x = c.x + rng->NextDouble(-extent / 10, extent / 10);
    double y = c.y + rng->NextDouble(-extent / 10, extent / 10);
    std::vector<Point> pts;
    double heading = rng->NextDouble(0, 6.28);
    for (int k = 0; k < 8; ++k) {
      pts.push_back(Point{x, y});
      heading += rng->NextDouble(-0.5, 0.5);
      x += 0.1 * std::cos(heading);
      y += 0.1 * std::sin(heading);
    }
    out.push_back(Tuple({Value(static_cast<int64_t>(i)),
                         Value(Polyline(std::move(pts)))}));
  }
  return out;
}

double ModeledSeconds(const paradise::sim::CostModel& model,
                      paradise::sim::NodeClock* clock) {
  return model.Seconds(clock->EndPhase());
}

/// Order-sensitive digest of the joined (left id, right id) pairs — equal
/// digests mean the same rows in the same order.
uint64_t ResultDigest(const TupleVec& rows, size_t right_id_col) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const Tuple& t : rows) {
    mix(static_cast<uint64_t>(t.at(0).AsInt()));
    mix(static_cast<uint64_t>(t.at(right_id_col).AsInt()));
  }
  return h;
}

}  // namespace

int64_t ScanBytes(const TupleVec& tuples) {
  int64_t n = 0;
  for (const Tuple& t : tuples) {
    for (const auto& v : t.values) {
      n += static_cast<int64_t>(v.StorageBytes(/*deep=*/true));
    }
  }
  return n;
}

int main(int argc, char** argv) {
  (void)paradise::bench::BenchConfig::FromArgs(argc, argv);
  Rng rng(7);
  paradise::sim::CostModel model;
  const int kInner = 100000;
  TupleVec inner = MakeLines(&rng, kInner, 100);
  int64_t inner_bytes = ScanBytes(inner);

  // The persistent inner index exists already (Section 2.4's "when an
  // R-tree exists on the join attribute ... indexed nested loops is
  // generally used"); PBSM instead must scan the inner.
  ExecContext no_charge;
  auto tree = paradise::exec::BuildRTreeOnColumn(inner, 1, no_charge);

  std::printf(
      "== Ablation: indexed NL vs PBSM spatial join (inner = %d polylines, "
      "%.1f MB; index NL probes the pre-built R*-tree, PBSM scans) ==\n\n",
      kInner, static_cast<double>(inner_bytes) / 1e6);
  std::printf("%12s %14s %14s %10s\n", "outer size", "index NL (s)",
              "PBSM (s)", "winner");

  for (int outer_size : {1, 10, 100, 1000, 5000, 20000}) {
    TupleVec outer = MakeLines(&rng, outer_size, 100);
    int64_t outer_bytes = ScanBytes(outer);

    // Index plan: scan the outer, probe per tuple.
    paradise::sim::NodeClock c1;
    ExecContext ctx1;
    ctx1.clock = &c1;
    c1.ChargeDiskRead(outer_bytes, 1);
    auto r1 = paradise::exec::IndexSpatialJoin(outer, 1, inner, 1, *tree, ctx1);
    double idx_seconds = ModeledSeconds(model, &c1);

    // PBSM plan: scan both inputs, partition, sweep.
    paradise::sim::NodeClock c2;
    ExecContext ctx2;
    ctx2.clock = &c2;
    c2.ChargeDiskRead(outer_bytes, 1);
    c2.ChargeDiskRead(inner_bytes, 1);
    auto r2 = paradise::exec::PbsmSpatialJoin(outer, 1, inner, 1, ctx2);
    double pbsm_seconds = ModeledSeconds(model, &c2);

    if (!r1.ok() || !r2.ok() || r1->size() != r2->size()) {
      std::fprintf(stderr, "join mismatch!\n");
      return 1;
    }
    std::printf("%12d %14.4f %14.4f %10s\n", outer_size, idx_seconds,
                pbsm_seconds, idx_seconds < pbsm_seconds ? "index" : "pbsm");
  }
  std::printf(
      "\nexpected shape: index NL wins for small outers; PBSM takes over "
      "as the outer grows.\n");

  // -- Partition-to-threads sweep -----------------------------------------
  // Same join at 1/2/4/8 worker threads. Wall clock should drop with
  // threads while the modeled seconds, result count and result order stay
  // bit-identical: the partition decomposition, not the schedule, defines
  // the charges and the merge order.
  {
    Rng rng2(11);
    TupleVec big_outer = MakeLines(&rng2, 30000, 100);
    const size_t right_id_col = 2;  // left has 2 columns
    std::printf(
        "\n== Partition-to-threads: PBSM wall clock vs worker threads "
        "(outer=%zu, inner=%d, partitions=64; host has %u core(s) — "
        "speedup needs >1) ==\n\n",
        big_outer.size(), kInner, std::thread::hardware_concurrency());
    std::printf("%8s %12s %12s %10s %18s %8s\n", "threads", "wall (s)",
                "modeled (s)", "rows", "digest", "speedup");
    PbsmOptions popts;
    popts.num_partitions = 64;
    double wall_1 = 0.0, modeled_1 = 0.0;
    uint64_t digest_1 = 0;
    size_t rows_1 = 0;
    for (int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      paradise::sim::NodeClock clock;
      ExecContext ctx;
      ctx.clock = &clock;
      ctx.pool = &pool;
      auto t0 = std::chrono::steady_clock::now();
      auto r = paradise::exec::PbsmSpatialJoin(big_outer, 1, inner, 1, ctx,
                                               popts);
      auto t1 = std::chrono::steady_clock::now();
      if (!r.ok()) {
        std::fprintf(stderr, "parallel pbsm failed\n");
        return 1;
      }
      double wall = std::chrono::duration<double>(t1 - t0).count();
      double modeled = ModeledSeconds(model, &clock);
      uint64_t digest = ResultDigest(*r, right_id_col);
      if (threads == 1) {
        wall_1 = wall;
        modeled_1 = modeled;
        digest_1 = digest;
        rows_1 = r->size();
      } else if (modeled != modeled_1 || digest != digest_1 ||
                 r->size() != rows_1) {
        std::fprintf(stderr,
                     "determinism violation at %d threads: modeled %.17g vs "
                     "%.17g, digest %016llx vs %016llx\n",
                     threads, modeled, modeled_1,
                     static_cast<unsigned long long>(digest),
                     static_cast<unsigned long long>(digest_1));
        return 1;
      }
      std::printf("%8d %12.4f %12.4f %10zu %018llx %7.2fx\n", threads, wall,
                  modeled, r->size(),
                  static_cast<unsigned long long>(digest), wall_1 / wall);
    }
    std::printf(
        "\nmodeled seconds and result digests are bit-identical across "
        "thread counts; only wall clock moves.\n");
  }

  // -- Sweep kernel: SoA vs AoS -------------------------------------------
  // The same join with the struct-of-arrays kernel (default) and the
  // array-of-structs control (PbsmOptions::SweepKernel::kAos). Both must
  // produce bit-identical results, modeled seconds, and sweep counters —
  // the ablation isolates the memory layout's wall-clock effect. Best of 3
  // runs per kernel: the kernels differ by fractions of a millisecond per
  // join, which single cold runs on a loaded host would bury in noise.
  {
    Rng rng4(17);
    TupleVec sj_left = MakeLines(&rng4, 30000, 100);
    TupleVec sj_right = MakeLines(&rng4, 30000, 100);
    const size_t right_id_col = 2;
    std::printf(
        "\n== Sweep kernel: SoA vs AoS (30k x 30k polylines, partitions=64, "
        "1 thread, best of 3) ==\n\n");
    std::printf("%8s %12s %12s %10s %14s %14s\n", "kernel", "wall (s)",
                "modeled (s)", "rows", "sweep pairs", "exact tests");
    double soa_wall = 0.0, soa_modeled = 0.0;
    uint64_t soa_digest = 0;
    for (auto kernel : {PbsmOptions::SweepKernel::kSoa,
                        PbsmOptions::SweepKernel::kAos}) {
      PbsmOptions popts;
      popts.num_partitions = 64;
      popts.sweep_kernel = kernel;
      double wall = 1e300, modeled = 0.0;
      uint64_t digest = 0;
      size_t rows = 0;
      PbsmJoinStats stats;
      for (int rep = 0; rep < 3; ++rep) {
        paradise::sim::NodeClock clock;
        ExecContext ctx;
        ctx.clock = &clock;
        ctx.pbsm_stats = &stats;
        auto t0 = std::chrono::steady_clock::now();
        auto r = paradise::exec::PbsmSpatialJoin(sj_left, 1, sj_right, 1, ctx,
                                                 popts);
        auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          std::fprintf(stderr, "kernel ablation pbsm failed\n");
          return 1;
        }
        wall = std::min(wall, std::chrono::duration<double>(t1 - t0).count());
        modeled = ModeledSeconds(model, &clock);
        digest = ResultDigest(*r, right_id_col);
        rows = r->size();
      }
      const bool soa = kernel == PbsmOptions::SweepKernel::kSoa;
      if (soa) {
        soa_wall = wall;
        soa_modeled = modeled;
        soa_digest = digest;
      } else if (modeled != soa_modeled || digest != soa_digest) {
        std::fprintf(stderr, "kernel ablation determinism violation\n");
        return 1;
      }
      std::printf("%8s %12.4f %12.4f %10zu %14lld %14lld\n",
                  soa ? "soa" : "aos", wall, modeled, rows,
                  static_cast<long long>(stats.sweep_pair_compares),
                  static_cast<long long>(stats.exact_tests));
      if (!soa) {
        std::printf("\nsoa speedup over aos: %.2fx (identical results, "
                    "charges, and counters)\n", wall / soa_wall);
      }
    }
  }

  // -- Cell→partition map skew --------------------------------------------
  // Clustered inputs: `cell % P` piles whole grid columns (and with them
  // every hotspot that shares them) into few partitions; the block-hash
  // map spreads the same cells over all P. max/mean partition items is
  // the load-balance figure a partition-to-threads sweep inherits.
  {
    Rng rng3(23);
    TupleVec cl_left = MakeClusteredLines(&rng3, 40000, 100, 5);
    TupleVec cl_right = MakeClusteredLines(&rng3, 40000, 100, 5);
    // 64 cells/axis with P=64 is modulo's degenerate case: P divides the
    // row width, so `cell % P` collapses to `cx % P` and every grid
    // column lands whole in one partition.
    std::printf(
        "\n== Cell map skew on clustered inputs (5 hotspots, 40k x 40k, "
        "partitions=64, cells=64x64) ==\n\n");
    std::printf("%12s %12s %12s %10s %12s\n", "cell map", "max items",
                "mean items", "max/mean", "replication");
    for (auto map : {PbsmOptions::CellMap::kModulo,
                     PbsmOptions::CellMap::kBlockHash}) {
      PbsmOptions popts;
      popts.num_partitions = 64;
      popts.cells_per_axis = 64;
      popts.cell_map = map;
      PbsmJoinStats stats;
      ExecContext ctx;
      ctx.pbsm_stats = &stats;
      auto r = paradise::exec::PbsmSpatialJoin(cl_left, 1, cl_right, 1, ctx,
                                               popts);
      if (!r.ok()) {
        std::fprintf(stderr, "skew pbsm failed\n");
        return 1;
      }
      std::printf("%12s %12lld %12.1f %10.2f %12.3f\n",
                  map == PbsmOptions::CellMap::kModulo ? "modulo" : "blockhash",
                  static_cast<long long>(stats.max_partition_items),
                  stats.mean_partition_items,
                  stats.mean_partition_items == 0.0
                      ? 0.0
                      : static_cast<double>(stats.max_partition_items) /
                            stats.mean_partition_items,
                  stats.replication());
    }
    std::printf(
        "\nexpected shape: blockhash's max/mean stays near 1; modulo's "
        "grows with clustering.\n");
  }
  return 0;
}
