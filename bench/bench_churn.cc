// Churn/chaos harness: foreground query streams running *through* planned
// cluster membership changes, with the TopologyManager's throttled online
// tile migration pumped at every quiescent point. Three scenarios:
//
//   rolling-restart  drain -> remove -> reinstate every original node in
//                    turn while a query mix keeps running (zero failed
//                    queries, join answers bit-equal to the churn-free run)
//   flash-crowd      every node sheds its hottest tiles while a
//                    point/region-heavy mix hammers the cluster
//   scale-out        two nodes join mid-workload and the fair-share
//                    rebalance streams behind the foreground queries
//
// All latencies are modeled seconds (bit-identical at any PARADISE_THREADS;
// the digest line makes cross-thread-count comparison a one-line diff).
// The non-chaos run asserts that migration throttling keeps foreground p99
// within 2x the churn-free baseline.
//
// Chaos mode (--chaos) arms a fault injector with migration crashes
// (source/target, transient/permanent) on top of the same scenarios; the
// acceptance checks (no failed queries, exactly-once ownership, join
// equality) still hold because crashed moves roll back or degrade into a
// salvage migration. On failure the exact seed and a repro command are
// printed.
//
// Flags: --rounds=N       query-mix rounds per churn phase (default 2)
//        --threads=N      host threads (digest must not change; default 1)
//        --chaos          inject migration crashes
//        --two-layer      decluster the vector tables with two-layer
//                         begin classes (joins dedup-free) instead of
//                         replicate-and-dedup
//        --fault-seed=N   chaos seed (default 1; nightly uses the date)
//        --json <path>    machine-readable report
//        plus the usual sizing flags of BenchConfig (--quick etc.)

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/coordinator.h"
#include "core/table.h"
#include "core/topology.h"
#include "sim/fault_injector.h"

namespace {

using paradise::Status;
using paradise::bench::BenchConfig;
using paradise::bench::QueryPerfSample;
using paradise::core::Cluster;
using paradise::core::NodeTopologyState;
using paradise::core::ParallelTable;
using paradise::core::TopologyManager;
using paradise::core::WorkloadSession;

struct ChurnArgs {
  int rounds = 2;
  int threads = 1;
  bool chaos = false;
  bool two_layer = false;
  uint64_t fault_seed = 1;

  static ChurnArgs FromArgs(int argc, char** argv) {
    ChurnArgs a;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--rounds=", 9) == 0) {
        a.rounds = std::atoi(arg + 9);
      } else if (std::strncmp(arg, "--threads=", 10) == 0) {
        a.threads = std::atoi(arg + 10);
      } else if (std::strcmp(arg, "--chaos") == 0) {
        a.chaos = true;
      } else if (std::strcmp(arg, "--two-layer") == 0) {
        a.two_layer = true;
      } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
        a.fault_seed = static_cast<uint64_t>(std::atoll(arg + 13));
      }
    }
    return a;
  }
};

ChurnArgs g_args;

/// Failure = print the scenario, the seed, and the exact repro command.
void Check(bool ok, const char* scenario, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "FAILED [%s]: %s\n", scenario, what);
  std::fprintf(stderr, "  fault seed: %llu\n",
               static_cast<unsigned long long>(g_args.fault_seed));
  std::fprintf(stderr, "  repro: ./bench/bench_churn%s%s --fault-seed=%llu\n",
               g_args.chaos ? " --chaos" : "",
               g_args.two_layer ? " --two-layer" : "",
               static_cast<unsigned long long>(g_args.fault_seed));
  std::exit(1);
}

struct ChurnDb {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<paradise::benchmark::BenchmarkDatabase> db;
  std::unique_ptr<paradise::sim::FaultInjector> injector;
};

ChurnDb LoadChurnDb(const BenchConfig& cfg) {
  ChurnDb out;
  Cluster::Options copts;
  copts.buffer_pool_frames = 4096;
  out.cluster = std::make_unique<Cluster>(4, copts);
  out.cluster->SetNumThreads(g_args.threads);
  paradise::datagen::GlobalDataSet ds =
      paradise::datagen::GenerateGlobalDataSet(cfg.MakeOptions(1));
  paradise::benchmark::LoadOptions lopts;
  lopts.tile_bytes = cfg.tile_bytes;
  lopts.two_layer_vectors = g_args.two_layer;
  auto db = paradise::benchmark::BenchmarkDatabase::Load(out.cluster.get(),
                                                         ds, lopts);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  out.db = std::move(*db);
  if (g_args.chaos) {
    // Loaded (bulk, unlogged) data must be durable before any crash.
    out.cluster->ResetForQuery();
    out.injector =
        std::make_unique<paradise::sim::FaultInjector>(g_args.fault_seed);
    out.injector->set_migration_crash_rate(0.02);
    out.cluster->SetFaultInjector(out.injector.get());
  }
  return out;
}

uint64_t HashRows(const paradise::exec::TupleVec& rows) {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const paradise::exec::Tuple& t : rows) {
    std::string s;
    for (const paradise::exec::Value& v : t.values) {
      s += v.type() == paradise::exec::ValueType::kRaster ? "raster"
                                                          : v.ToString();
      s += "|";
    }
    rendered.push_back(std::move(s));
  }
  std::sort(rendered.begin(), rendered.end());
  uint64_t h = 1469598103934665603ull;
  for (const std::string& s : rendered) {
    for (char c : s) h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
    h = (h ^ 0xffu) * 1099511628211ull;
  }
  return h;
}

/// Single-stream foreground driver: admit / run / finish, with the
/// migration pump advanced to the query's completion time at every
/// quiescent gap — exactly where a production system would steal idle
/// bandwidth for rebalancing.
struct ChurnDriver {
  ChurnDb* loaded;
  TopologyManager* topo;
  WorkloadSession session;
  double now = 0.0;
  int failed_queries = 0;
  std::vector<double> latencies;

  static WorkloadSession::Options MakeOptions() {
    WorkloadSession::Options o;
    o.num_streams = 1;
    return o;
  }

  explicit ChurnDriver(ChurnDb* l)
      : loaded(l),
        topo(l->cluster->topology()),
        session(l->cluster.get(), MakeOptions()) {
    loaded->cluster->set_workload_session(&session);
    session.BindStream(0);
  }
  ~ChurnDriver() {
    session.EndStream();
    loaded->cluster->set_workload_session(nullptr);
  }

  void RunOne(int query) {
    WorkloadSession::Ticket* t = session.AwaitAdmission(now);
    auto r = paradise::benchmark::RunQueryByNumber(loaded->db.get(), query);
    if (!r.ok()) {
      std::fprintf(stderr, "query %d failed: %s\n", query,
                   r.status().ToString().c_str());
      ++failed_queries;
      session.FinishQuery(0.0);
      return;
    }
    now = t->admit_seconds + r->seconds;
    latencies.push_back(now - t->submit_seconds);
    session.FinishQuery(r->seconds);
    // Quiescent gap after completion: pump the throttled migration
    // streams up to the current modeled instant.
    Status s = topo->PumpMigration(now);
    if (!s.ok()) {
      std::fprintf(stderr, "pump failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }

  void RunMixRounds(const std::vector<int>& mix, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      for (int q : mix) RunOne(q);
    }
  }

  /// Runs foreground rounds until migration drains (bounded), then forces
  /// the remainder through at full bandwidth.
  void RunUntilIdle(const std::vector<int>& mix) {
    for (int guard = 0; guard < 1000 && !topo->migration_idle(); ++guard) {
      RunMixRounds(mix, 1);
    }
    Status s = topo->DrainMigration(now);
    if (!s.ok()) {
      std::fprintf(stderr, "drain failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }

  double P99() const {
    if (latencies.empty()) return 0.0;
    std::vector<double> v = latencies;
    std::sort(v.begin(), v.end());
    size_t rank = static_cast<size_t>(0.99 * static_cast<double>(v.size()));
    if (rank >= v.size()) rank = v.size() - 1;
    return v[rank];
  }
};

void ValidateAll(ChurnDb* loaded, const char* scenario) {
  ParallelTable* tables[] = {&loaded->db->places(), &loaded->db->roads(),
                             &loaded->db->drainage(),
                             &loaded->db->land_cover(), &loaded->db->raster()};
  for (ParallelTable* t : tables) {
    Status s = t->ValidateOwnership(loaded->cluster.get());
    if (!s.ok()) {
      std::fprintf(stderr, "[%s] %s: %s\n", scenario, t->def().name.c_str(),
                   s.ToString().c_str());
      Check(false, scenario, "exactly-once ownership audit failed");
    }
  }
}

uint64_t JoinFingerprint(ChurnDb* loaded, const char* scenario) {
  auto r = paradise::benchmark::RunQueryByNumber(loaded->db.get(), 13);
  Check(r.ok(), scenario, "join query failed");
  return HashRows(r->rows);
}

struct ScenarioResult {
  double p99 = 0.0;
  double wall_seconds = 0.0;
  int64_t migration_bytes = 0;
  int64_t tiles_moved = 0;
  int64_t crashes = 0;
};

uint64_t MixDigest(const ChurnDriver& d) {
  uint64_t h = 1469598103934665603ull;
  for (double lat : d.latencies) {
    uint64_t bits;
    std::memcpy(&bits, &lat, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((bits >> (8 * i)) & 0xffu)) * 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = paradise::bench::ExtractJsonPathArg(&argc, argv);
  g_args = ChurnArgs::FromArgs(argc, argv);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  // Churn sizing: small enough that a full rolling restart runs in
  // seconds, large enough that every tile move actually ships rows.
  bool fraction_given = false, dates_given = false, raster_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fraction=", 11) == 0) fraction_given = true;
    if (std::strncmp(argv[i], "--dates=", 8) == 0) dates_given = true;
    if (std::strncmp(argv[i], "--raster=", 9) == 0) raster_given = true;
  }
  if (!fraction_given) cfg.fraction = 1.0 / 256;
  if (!dates_given) cfg.dates = 24;
  if (!raster_given) cfg.raster_size = 128;

  const std::vector<int> mix = {5, 13, 7};
  std::printf(
      "churn harness: 4 nodes, %d rounds/phase, threads=%d, chaos=%s, "
      "decluster=%s, fault seed %llu\n",
      g_args.rounds, g_args.threads, g_args.chaos ? "on" : "off",
      g_args.two_layer ? "two-layer" : "replicate",
      static_cast<unsigned long long>(g_args.fault_seed));

  std::vector<QueryPerfSample> samples;
  uint64_t digest = 1469598103934665603ull;
  auto fold = [&digest](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest = (digest ^ ((v >> (8 * i)) & 0xffu)) * 1099511628211ull;
    }
  };

  // ---- Churn-free baseline ------------------------------------------------
  double baseline_p99 = 0.0;
  uint64_t join_fp = 0;
  {
    ChurnDb loaded = LoadChurnDb(cfg);
    join_fp = JoinFingerprint(&loaded, "baseline");
    auto t0 = std::chrono::steady_clock::now();
    {
      ChurnDriver d(&loaded);
      d.RunMixRounds(mix, 4 * g_args.rounds);
      Check(d.failed_queries == 0, "baseline", "queries failed");
      baseline_p99 = d.P99();
      fold(MixDigest(d));
    }
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-16s p99 %10.4fs  join %016llx\n", "baseline",
                baseline_p99, static_cast<unsigned long long>(join_fp));
    samples.push_back({"baseline_p99", wall, baseline_p99});
  }

  // ---- Scenario 1: rolling restart ---------------------------------------
  ScenarioResult rolling;
  {
    ChurnDb loaded = LoadChurnDb(cfg);
    TopologyManager* topo = loaded.cluster->topology();
    Check(JoinFingerprint(&loaded, "rolling-restart") == join_fp,
          "rolling-restart", "pre-churn join fingerprint drifted");
    auto t0 = std::chrono::steady_clock::now();
    {
      ChurnDriver d(&loaded);
      for (int n = 0; n < 4; ++n) {
        if (topo->node_state(n) != NodeTopologyState::kActive) {
          continue;  // chaos killed it already; salvage re-homed its data
        }
        int actives = 0;
        for (int i = 0; i < loaded.cluster->num_nodes(); ++i) {
          if (topo->node_state(i) == NodeTopologyState::kActive) ++actives;
        }
        if (actives <= 1) break;  // chaos shrank the cluster to one node
        topo->DrainNode(n);
        d.RunUntilIdle(mix);
        if (topo->node_state(n) == NodeTopologyState::kDraining) {
          topo->RemoveNode(n);
          d.RunMixRounds(mix, g_args.rounds);  // degraded interval
        }
        if (topo->node_state(n) == NodeTopologyState::kRemoved) {
          topo->ReinstateNode(n);
          d.RunUntilIdle(mix);
        }
      }
      Check(d.failed_queries == 0, "rolling-restart",
            "foreground queries failed during restart");
      rolling.p99 = d.P99();
      fold(MixDigest(d));
    }
    rolling.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    rolling.migration_bytes = topo->stats().migration_bytes;
    rolling.tiles_moved = topo->stats().tiles_moved;
    if (loaded.injector != nullptr) {
      rolling.crashes = loaded.injector->stats().migration_crashes;
    }
    ValidateAll(&loaded, "rolling-restart");
    Check(JoinFingerprint(&loaded, "rolling-restart") == join_fp,
          "rolling-restart", "join pairs lost or duplicated");
    if (!g_args.chaos) {
      Check(rolling.p99 <= 2.0 * baseline_p99, "rolling-restart",
            "throttled migration inflated foreground p99 beyond 2x");
    }
    loaded.cluster->SetFaultInjector(nullptr);
    std::printf(
        "%-16s p99 %10.4fs  tiles %5lld  %8.2f MB shipped  crashes %lld\n",
        "rolling-restart", rolling.p99,
        static_cast<long long>(rolling.tiles_moved),
        static_cast<double>(rolling.migration_bytes) / (1024.0 * 1024.0),
        static_cast<long long>(rolling.crashes));
    samples.push_back(
        {"rolling_restart_p99", rolling.wall_seconds, rolling.p99});
  }

  // ---- Scenario 2: flash crowd with hot-tile shedding ---------------------
  ScenarioResult flash;
  {
    ChurnDb loaded = LoadChurnDb(cfg);
    TopologyManager* topo = loaded.cluster->topology();
    auto t0 = std::chrono::steady_clock::now();
    {
      ChurnDriver d(&loaded);
      d.RunMixRounds(mix, g_args.rounds);  // warm the hot-tile statistics
      for (int n = 0; n < 4; ++n) {
        if (topo->node_state(n) == NodeTopologyState::kActive) {
          topo->ShedHotTiles(n, 4);
        }
      }
      d.RunUntilIdle(mix);
      d.RunMixRounds(mix, g_args.rounds);
      Check(d.failed_queries == 0, "flash-crowd", "queries failed");
      flash.p99 = d.P99();
      fold(MixDigest(d));
    }
    flash.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    flash.migration_bytes = topo->stats().migration_bytes;
    flash.tiles_moved = topo->stats().tiles_moved;
    if (loaded.injector != nullptr) {
      flash.crashes = loaded.injector->stats().migration_crashes;
    }
    ValidateAll(&loaded, "flash-crowd");
    Check(JoinFingerprint(&loaded, "flash-crowd") == join_fp, "flash-crowd",
          "join pairs lost or duplicated");
    loaded.cluster->SetFaultInjector(nullptr);
    std::printf(
        "%-16s p99 %10.4fs  tiles %5lld  %8.2f MB shipped  crashes %lld\n",
        "flash-crowd", flash.p99, static_cast<long long>(flash.tiles_moved),
        static_cast<double>(flash.migration_bytes) / (1024.0 * 1024.0),
        static_cast<long long>(flash.crashes));
    samples.push_back({"flash_crowd_p99", flash.wall_seconds, flash.p99});
  }

  // ---- Scenario 3: scale-out 4 -> 6 mid-workload --------------------------
  ScenarioResult scaleout;
  {
    ChurnDb loaded = LoadChurnDb(cfg);
    TopologyManager* topo = loaded.cluster->topology();
    auto t0 = std::chrono::steady_clock::now();
    {
      ChurnDriver d(&loaded);
      d.RunMixRounds(mix, g_args.rounds);
      topo->AddNode();
      topo->AddNode();
      d.RunUntilIdle(mix);
      d.RunMixRounds(mix, g_args.rounds);
      Check(d.failed_queries == 0, "scale-out", "queries failed");
      scaleout.p99 = d.P99();
      fold(MixDigest(d));
    }
    scaleout.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    scaleout.migration_bytes = topo->stats().migration_bytes;
    scaleout.tiles_moved = topo->stats().tiles_moved;
    if (loaded.injector != nullptr) {
      scaleout.crashes = loaded.injector->stats().migration_crashes;
    }
    ValidateAll(&loaded, "scale-out");
    Check(JoinFingerprint(&loaded, "scale-out") == join_fp, "scale-out",
          "join pairs lost or duplicated");
    loaded.cluster->SetFaultInjector(nullptr);
    std::printf(
        "%-16s p99 %10.4fs  tiles %5lld  %8.2f MB shipped  crashes %lld\n",
        "scale-out", scaleout.p99,
        static_cast<long long>(scaleout.tiles_moved),
        static_cast<double>(scaleout.migration_bytes) / (1024.0 * 1024.0),
        static_cast<long long>(scaleout.crashes));
    samples.push_back({"scaleout_p99", scaleout.wall_seconds, scaleout.p99});
  }

  std::printf("digest %016llx\n", static_cast<unsigned long long>(digest));
  std::printf("churn harness PASSED\n");

  if (!json_path.empty()) {
    samples.push_back({"migration_mb", 0.0,
                       static_cast<double>(rolling.migration_bytes +
                                           flash.migration_bytes +
                                           scaleout.migration_bytes) /
                           (1024.0 * 1024.0)});
    paradise::bench::WriteBenchJson(json_path, "bench_churn", samples);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
