#!/usr/bin/env python3
"""Compare a bench_micro --json run against the checked-in baseline.

Wall-clock comparison is machine-speed invariant: per-query ratios
(current/baseline) are normalized by their median, so a CI runner that is
uniformly 2x slower than the machine that produced the baseline passes
unchanged, while one query regressing relative to the others fails. The
flip side: a *uniform* slowdown of every query is absorbed by the
normalization — the modeled-seconds check below is the backstop, since
modeled time is deterministic and host-independent.

Modeled seconds must match the baseline closely; they only move when the
cost model, plans, or storage charging change, and such a change should be
deliberate — regenerate the baseline with:
    bench_micro --benchmark_filter=BM_BPlusTreeProbe --json bench/BENCH_micro.baseline.json
"""

import argparse
import json
import statistics
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {q["name"]: q for q in doc["queries"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="max normalized wall-clock ratio (1.25 = +25%%)")
    ap.add_argument("--modeled-tolerance", type=float, default=0.10,
                    help="max relative drift in modeled seconds")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    common = sorted(set(base) & set(cur))
    if not common:
        print("no common queries between baseline and current run")
        return 1
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"queries missing from current run: {', '.join(missing)}")
        return 1

    ratios = {}
    for name in common:
        b = base[name]["wall_seconds"]
        c = cur[name]["wall_seconds"]
        if b <= 0:
            print(f"{name}: baseline wall_seconds {b} is not positive")
            return 1
        ratios[name] = c / b
    median = statistics.median(ratios.values())

    failed = False
    print(f"median wall ratio (machine speed factor): {median:.3f}")
    print(f"{'query':<8}{'base_ms':>10}{'cur_ms':>10}{'norm_ratio':>12}"
          f"{'modeled_drift':>15}")
    for name in common:
        b, c = base[name], cur[name]
        norm = ratios[name] / median if median > 0 else float("inf")
        bm, cm = b["modeled_seconds"], c["modeled_seconds"]
        drift = abs(cm - bm) / bm if bm > 0 else (0.0 if cm == bm else 1.0)
        marks = []
        if norm > args.threshold:
            marks.append(f"WALL REGRESSION >{args.threshold:.2f}x")
            failed = True
        if drift > args.modeled_tolerance:
            marks.append("MODELED DRIFT (regenerate baseline if intended)")
            failed = True
        print(f"{name:<8}{b['wall_seconds']*1e3:>10.2f}"
              f"{c['wall_seconds']*1e3:>10.2f}{norm:>12.3f}{drift:>14.1%}"
              f"  {' '.join(marks)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
