// Reproduces Table 3.2: scaleup execution times for Queries 2-14. The
// database grows with the cluster (4 nodes/S=1, 8/S=2, 16/S=4); flat lines
// across a row mean perfect scaleup. The "paper" column shows the
// published numbers for shape comparison — absolute values differ because
// the synthetic data set is scaled down (see EXPERIMENTS.md).

#include <cstdio>

#include "bench/bench_util.h"

namespace {

using paradise::bench::BenchConfig;
using paradise::bench::LoadDb;
using paradise::bench::LoadedDb;
using paradise::bench::RunQuerySeconds;

// Table 3.2 of the paper, for side-by-side shape comparison.
constexpr double kPaper[13][3] = {
    {118.19, 125.33, 113.00},    // Q2
    {8.97, 13.57, 21.68},        // Q3
    {3.34, 5.73, 10.13},         // Q4
    {1.09, 1.01, 1.04},          // Q5
    {14.40, 14.12, 11.93},       // Q6
    {1.79, 1.83, 1.86},          // Q7
    {11.70, 12.26, 12.47},       // Q8
    {17.12, 26.80, 42.46},       // Q9
    {79.96, 73.62, 73.49},       // Q10
    {24.83, 29.19, 31.25},       // Q11
    {308.43, 328.63, 367.74},    // Q12
    {1156.47, 974.51, 929.69},   // Q13
    {100.83, 123.72, 167.52},    // Q14
};

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  const int configs[3][2] = {{4, 1}, {8, 2}, {16, 4}};
  double results[13][3];

  for (int c = 0; c < 3; ++c) {
    std::fprintf(stderr, "loading %d-node database (S=%d)...\n",
                 configs[c][0], configs[c][1]);
    LoadedDb l = LoadDb(cfg, configs[c][0], configs[c][1]);
    for (int q = 2; q <= 14; ++q) {
      std::fprintf(stderr, "  query %d...\n", q);
      results[q - 2][c] = RunQuerySeconds(l.db.get(), q);
    }
  }

  std::printf(
      "== Table 3.2: scaleup execution times (modeled seconds) ==\n"
      "   database grows with the cluster; flat rows = perfect scaleup\n\n");
  std::printf("%-10s %10s %10s %10s   | paper: %9s %9s %9s\n", "query",
              "4 nodes", "8 nodes", "16 nodes", "4n", "8n", "16n");
  for (int q = 2; q <= 14; ++q) {
    std::printf("Query %-4d %10.3f %10.3f %10.3f   |        %9.2f %9.2f %9.2f\n",
                q, results[q - 2][0], results[q - 2][1], results[q - 2][2],
                kPaper[q - 2][0], kPaper[q - 2][1], kPaper[q - 2][2]);
  }
  std::printf(
      "\nscaleup ratio (16-node time / 4-node time; 1.0 = perfect, <1 "
      "super-linear):\n");
  for (int q = 2; q <= 14; ++q) {
    double ours = results[q - 2][2] / results[q - 2][0];
    double paper = kPaper[q - 2][2] / kPaper[q - 2][0];
    std::printf("Query %-4d ours %6.2f   paper %6.2f\n", q, ours, paper);
  }
  return 0;
}
