#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/join_kernel.h"
#include "geom/polyline.h"

namespace paradise::exec::join_kernel {
namespace {

using geom::Box;
using geom::Point;
using geom::Polyline;

using Pair = std::pair<uint32_t, uint32_t>;

MbrColumns ColumnsOf(const std::vector<Box>& boxes) {
  MbrColumns cols;
  cols.Resize(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) cols.Set(i, boxes[i]);
  return cols;
}

std::vector<uint32_t> Iota(size_t n) {
  std::vector<uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0u);
  return rows;
}

/// All MBR-intersecting pairs via the SoA sweep, as (left ordinal, right
/// ordinal) in emission order. `cap` sets the candidate-batch capacity so
/// tests can force flush boundaries mid-sweep.
struct SweepRun {
  std::vector<Pair> pairs;
  std::vector<size_t> flush_sizes;
  int64_t compares = 0;
};

SweepRun RunSoa(const MbrColumns& lcols, const MbrColumns& rcols, size_t cap) {
  SweepSide ls, rs;
  const std::vector<uint32_t> lrows = Iota(lcols.size());
  const std::vector<uint32_t> rrows = Iota(rcols.size());
  ls.GatherSorted(lcols, lrows.data(), lrows.size());
  rs.GatherSorted(rcols, rrows.data(), rrows.size());
  SweepRun run;
  CandidateBatch batch(cap, [&](const Candidate* c, size_t n) {
    run.flush_sizes.push_back(n);
    for (size_t i = 0; i < n; ++i) {
      run.pairs.emplace_back(ls.ordinal(c[i].left_pos),
                             rs.ordinal(c[i].right_pos));
    }
  });
  run.compares = SweepForCandidates(ls, rs, &batch);
  batch.Flush();
  return run;
}

SweepRun RunAos(const MbrColumns& lcols, const MbrColumns& rcols, size_t cap) {
  std::vector<AosItem> litems(lcols.size()), ritems(rcols.size());
  for (size_t i = 0; i < lcols.size(); ++i) {
    litems[i] = {lcols.BoxAt(i), static_cast<uint32_t>(i)};
  }
  for (size_t i = 0; i < rcols.size(); ++i) {
    ritems[i] = {rcols.BoxAt(i), static_cast<uint32_t>(i)};
  }
  SortAosByXmin(&litems);
  SortAosByXmin(&ritems);
  SweepRun run;
  CandidateBatch batch(cap, [&](const Candidate* c, size_t n) {
    run.flush_sizes.push_back(n);
    for (size_t i = 0; i < n; ++i) {
      run.pairs.emplace_back(litems[c[i].left_pos].ordinal,
                             ritems[c[i].right_pos].ordinal);
    }
  });
  run.compares = SweepForCandidatesAos(litems, ritems, &batch);
  batch.Flush();
  return run;
}

std::vector<Pair> BruteForce(const std::vector<Box>& left,
                             const std::vector<Box>& right) {
  std::vector<Pair> out;
  for (uint32_t i = 0; i < left.size(); ++i) {
    for (uint32_t j = 0; j < right.size(); ++j) {
      if (left[i].Intersects(right[j])) out.emplace_back(i, j);
    }
  }
  return out;
}

std::vector<Pair> Sorted(std::vector<Pair> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<Box> RandomBoxes(Rng* rng, int n, double extent, double max_size) {
  std::vector<Box> out;
  for (int i = 0; i < n; ++i) {
    double x = rng->NextDouble(-extent, extent);
    double y = rng->NextDouble(-extent, extent);
    double w = rng->NextDouble(0, max_size);
    double h = rng->NextDouble(0, max_size);
    out.push_back(Box(x, y, x + w, y + h));
  }
  return out;
}

TEST(ArgsortByXloTest, MatchesStableSortOnDuplicatesAndSignedZeros) {
  // A stable sort by xlo alone, over rows in ordinal order, is exactly the
  // (xlo, ordinal) order the kernel promises. Keys are drawn from a small
  // lattice so duplicates are everywhere, and ±0.0 are both planted —
  // their bit images differ but they must tie (and so order by ordinal).
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    std::vector<Box> boxes;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      double x = static_cast<double>(rng.NextInt(-8, 8)) * 0.25;
      if (x == 0.0 && rng.NextUint(2) == 0) x = -0.0;
      // Occasionally a nearly-equal key: same high 32 bits, different low
      // mantissa bits, to exercise the radix tie-fix pass.
      if (rng.NextUint(16) == 0) x += 1e-13;
      boxes.push_back(Box(x, 0, x + 1, 1));
    }
    MbrColumns cols = ColumnsOf(boxes);

    std::vector<uint32_t> expected = Iota(boxes.size());
    std::stable_sort(expected.begin(), expected.end(),
                     [&cols](uint32_t a, uint32_t b) {
                       return cols.xlo[a] < cols.xlo[b];
                     });
    EXPECT_EQ(ArgsortByXlo(cols), expected) << "seed " << seed;
  }
}

TEST(ArgsortByXloTest, EmptyAndSingleAndAllEqual) {
  EXPECT_TRUE(ArgsortByXlo(MbrColumns{}).empty());
  EXPECT_EQ(ArgsortByXlo(ColumnsOf({Box(3, 0, 4, 1)})),
            std::vector<uint32_t>({0}));
  // All-identical keys: every radix byte is constant (all passes skip) and
  // the result must be pure ordinal order.
  std::vector<Box> same(257, Box(7.5, 0, 8, 1));
  EXPECT_EQ(ArgsortByXlo(ColumnsOf(same)), Iota(same.size()));
}

TEST(SweepSideTest, GatherPresortedMatchesGatherSorted) {
  Rng rng(11);
  std::vector<Box> boxes = RandomBoxes(&rng, 500, 50, 3);
  MbrColumns cols = ColumnsOf(boxes);
  const std::vector<uint32_t> order = ArgsortByXlo(cols);

  SweepSide sorted, presorted;
  const std::vector<uint32_t> rows = Iota(boxes.size());
  sorted.GatherSorted(cols, rows.data(), rows.size());
  presorted.GatherPresorted(cols, order.data(), order.size());

  ASSERT_EQ(sorted.size(), presorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted.ordinal(i), presorted.ordinal(i)) << "pos " << i;
    EXPECT_EQ(sorted.xlo()[i], presorted.xlo()[i]);
    EXPECT_EQ(sorted.xhi()[i], presorted.xhi()[i]);
    EXPECT_EQ(sorted.ylo()[i], presorted.ylo()[i]);
    EXPECT_EQ(sorted.yhi()[i], presorted.yhi()[i]);
  }
  EXPECT_EQ(sorted.xlo()[sorted.size()],
            std::numeric_limits<double>::infinity());
}

TEST(SweepTest, RandomizedDifferentialAgainstBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    Rng rng(seed * 13 + 1);
    std::vector<Box> left = RandomBoxes(&rng, 160, 20, 4);
    std::vector<Box> right = RandomBoxes(&rng, 140, 20, 4);
    MbrColumns lcols = ColumnsOf(left), rcols = ColumnsOf(right);

    SweepRun soa = RunSoa(lcols, rcols, kCandidateBatchSize);
    SweepRun aos = RunAos(lcols, rcols, kCandidateBatchSize);
    std::vector<Pair> expected = BruteForce(left, right);

    EXPECT_EQ(Sorted(soa.pairs), Sorted(expected)) << "seed " << seed;
    // The two kernels promise the same emission *sequence*, not just the
    // same set, and the same compare count (it is charged to the clock).
    EXPECT_EQ(soa.pairs, aos.pairs) << "seed " << seed;
    EXPECT_EQ(soa.compares, aos.compares) << "seed " << seed;
  }
}

TEST(SweepTest, DegenerateAndZeroAreaMbrs) {
  // Zero-width, zero-height, and point MBRs, many sharing coordinates
  // exactly: touching edges count as intersecting (closed boxes), and the
  // sweep must agree with Box::Intersects on every such boundary case.
  std::vector<Box> left = {
      Box(0, 0, 0, 5),   // vertical segment at x=0
      Box(0, 0, 5, 0),   // horizontal segment at y=0
      Box(2, 2, 2, 2),   // point
      Box(5, 0, 5, 5),   // vertical segment at x=5 (touches right edges)
      Box(-3, -3, -3, -3),
  };
  std::vector<Box> right = {
      Box(0, 0, 0, 0),    // point at origin: touches segments
      Box(2, 2, 2, 2),    // point equal to left[2]
      Box(0, 0, 5, 5),    // square containing everything
      Box(5, 5, 5, 9),    // touches the square's corner only
      Box(-10, -10, -4, -4),
  };
  MbrColumns lcols = ColumnsOf(left), rcols = ColumnsOf(right);
  SweepRun soa = RunSoa(lcols, rcols, kCandidateBatchSize);
  SweepRun aos = RunAos(lcols, rcols, kCandidateBatchSize);
  EXPECT_EQ(Sorted(soa.pairs), Sorted(BruteForce(left, right)));
  EXPECT_EQ(soa.pairs, aos.pairs);
}

TEST(SweepTest, AllIdenticalXminIsFullCross) {
  // Every MBR shares xmin (the sort is all ties, broken by ordinal) and
  // all boxes y-overlap: the sweep must emit the full n*m cross product,
  // and its order must be the deterministic (xlo, ordinal) order.
  std::vector<Box> left(7, Box(1, 0, 3, 10));
  std::vector<Box> right(5, Box(1, 2, 2, 8));
  MbrColumns lcols = ColumnsOf(left), rcols = ColumnsOf(right);
  SweepRun soa = RunSoa(lcols, rcols, kCandidateBatchSize);
  EXPECT_EQ(soa.pairs.size(), left.size() * right.size());
  EXPECT_EQ(Sorted(soa.pairs), Sorted(BruteForce(left, right)));
  EXPECT_EQ(soa.pairs, RunAos(lcols, rcols, kCandidateBatchSize).pairs);
}

TEST(SweepTest, EmptySidesEmitNothing) {
  MbrColumns empty;
  MbrColumns some = ColumnsOf({Box(0, 0, 1, 1)});
  EXPECT_TRUE(RunSoa(empty, some, 8).pairs.empty());
  EXPECT_TRUE(RunSoa(some, empty, 8).pairs.empty());
  EXPECT_TRUE(RunSoa(empty, empty, 8).pairs.empty());
  EXPECT_EQ(RunSoa(empty, some, 8).compares, 0);
}

TEST(SweepTest, EmptyBoxesNeverMatch) {
  // Default-constructed (empty) boxes carry inverted ±inf bounds; they
  // must produce no candidates against anything, including each other.
  std::vector<Box> left = {Box(), Box(0, 0, 4, 4), Box()};
  std::vector<Box> right = {Box(1, 1, 2, 2), Box()};
  MbrColumns lcols = ColumnsOf(left), rcols = ColumnsOf(right);
  SweepRun soa = RunSoa(lcols, rcols, kCandidateBatchSize);
  EXPECT_EQ(Sorted(soa.pairs), Sorted(BruteForce(left, right)));
  EXPECT_EQ(soa.pairs, std::vector<Pair>({{1, 0}}));
}

TEST(CandidateBatchTest, FlushBoundariesPartitionTheSequence) {
  // Capacity 3 with 8 hits: flushes must fire at exactly 3, 3, then the
  // final Flush() delivers the remaining 2 — and misses (keep=false) at
  // any position, including one landing exactly on a boundary, must not
  // show up or shift the split.
  std::vector<Pair> got;
  std::vector<size_t> flush_sizes;
  CandidateBatch batch(3, [&](const Candidate* c, size_t n) {
    flush_sizes.push_back(n);
    for (size_t i = 0; i < n; ++i) got.emplace_back(c[i].left_pos, c[i].right_pos);
  });
  std::vector<Pair> expected;
  for (uint32_t i = 0; i < 12; ++i) {
    const bool keep = (i % 3) != 2;  // drop every third push
    batch.Push(i, 100 + i, keep);
    if (keep) expected.emplace_back(i, 100 + i);
  }
  ASSERT_EQ(expected.size(), 8u);
  EXPECT_EQ(flush_sizes, std::vector<size_t>({3, 3}));
  batch.Flush();
  EXPECT_EQ(flush_sizes, std::vector<size_t>({3, 3, 2}));
  EXPECT_EQ(got, expected);
  batch.Flush();  // empty: must not call the callback again
  EXPECT_EQ(flush_sizes.size(), 3u);
}

TEST(CandidateBatchTest, ZeroCapacityClampsToOne) {
  size_t flushes = 0;
  CandidateBatch batch(0, [&](const Candidate*, size_t n) {
    EXPECT_EQ(n, 1u);
    ++flushes;
  });
  EXPECT_EQ(batch.capacity(), 1u);
  batch.Push(1, 2, true);
  batch.Push(3, 4, false);
  batch.Push(5, 6, true);
  batch.Flush();
  EXPECT_EQ(flushes, 2u);
}

TEST(SweepTest, FlushBoundariesDoNotChangeResults) {
  // The same sweep at several batch capacities: the concatenated candidate
  // sequence is capacity-invariant (flush boundaries are bookkeeping, not
  // semantics).
  Rng rng(99);
  std::vector<Box> left = RandomBoxes(&rng, 120, 15, 3);
  std::vector<Box> right = RandomBoxes(&rng, 120, 15, 3);
  MbrColumns lcols = ColumnsOf(left), rcols = ColumnsOf(right);
  SweepRun base = RunSoa(lcols, rcols, kCandidateBatchSize);
  ASSERT_GT(base.pairs.size(), 16u) << "test needs multiple flushes";
  for (size_t cap : {1u, 2u, 3u, 7u, 64u}) {
    SweepRun run = RunSoa(lcols, rcols, cap);
    EXPECT_EQ(run.pairs, base.pairs) << "capacity " << cap;
    EXPECT_EQ(run.compares, base.compares);
    for (size_t i = 0; i + 1 < run.flush_sizes.size(); ++i) {
      EXPECT_EQ(run.flush_sizes[i], cap) << "only the last flush may be short";
    }
  }
}

TEST(ExactJoinBatchTest, MatchesPerPairExactTests) {
  // Candidate pairs (every MBR-intersecting pair) through the batched
  // exact pass vs a direct per-pair Polyline::Intersects loop: same hits,
  // same order, left⧺right concatenated columns.
  Rng rng(5);
  auto make_lines = [&rng](int n, int64_t id0) {
    TupleVec out;
    for (int i = 0; i < n; ++i) {
      double x = rng.NextDouble(-10, 10), y = rng.NextDouble(-10, 10);
      std::vector<Point> pts;
      for (int k = 0; k < 5; ++k) {
        pts.push_back(Point{x, y});
        x += rng.NextDouble(-1, 1);
        y += rng.NextDouble(-1, 1);
      }
      out.push_back(
          Tuple({Value(id0 + i), Value(Polyline(std::move(pts)))}));
    }
    return out;
  };
  TupleVec left = make_lines(60, 0);
  TupleVec right = make_lines(60, 1000);

  std::vector<OrdinalPair> pairs;
  for (uint32_t i = 0; i < left.size(); ++i) {
    for (uint32_t j = 0; j < right.size(); ++j) {
      if (left[i].at(1).Mbr().Intersects(right[j].at(1).Mbr())) {
        pairs.push_back({i, j});
      }
    }
  }
  ASSERT_GT(pairs.size(), 20u);

  ExecContext ctx;
  TupleVec out;
  ASSERT_TRUE(ExactJoinBatch(left, 1, right, 1, pairs.data(), pairs.size(),
                             ctx, &out)
                  .ok());

  std::vector<Pair> got, expected;
  for (const Tuple& t : out) {
    ASSERT_EQ(t.values.size(), 4u);
    got.emplace_back(static_cast<uint32_t>(t.at(0).AsInt()),
                     static_cast<uint32_t>(t.at(2).AsInt()));
  }
  for (const OrdinalPair& p : pairs) {
    if (left[p.left_row].at(1).AsPolyline()->Intersects(
            *right[p.right_row].at(1).AsPolyline())) {
      expected.emplace_back(static_cast<uint32_t>(p.left_row),
                            static_cast<uint32_t>(1000 + p.right_row));
    }
  }
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace paradise::exec::join_kernel
