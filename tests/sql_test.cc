#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/engine.h"
#include "sql/lexer.h"

namespace paradise::sql {
namespace {

using core::ParallelTable;
using core::QueryCoordinator;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;
using geom::Point;
using geom::Polygon;

TEST(LexerTest, TokenizesEverything) {
  auto tokens = Tokenize(
      "SELECT name, area(shape) FROM landCover "
      "WHERE type = 5 AND x <= -2.5 AND s <> 'it''" );
  // (The trailing quote makes it invalid; test the valid prefix instead.)
  auto ok = Tokenize("SELECT a.b, 42, -7, 2.5, 'str' (<= >= <> < > = * )");
  ASSERT_TRUE(ok.ok());
  std::vector<TokenType> types;
  for (const Token& t : *ok) types.push_back(t.type);
  EXPECT_EQ(types[0], TokenType::kIdentifier);  // select
  EXPECT_EQ((*ok)[0].text, "select");
  EXPECT_EQ(types[2], TokenType::kDot);
  EXPECT_EQ(types[5], TokenType::kInteger);
  EXPECT_EQ((*ok)[5].int_value, 42);
  EXPECT_EQ((*ok)[7].int_value, -7);
  EXPECT_EQ(types[9], TokenType::kFloat);
  EXPECT_EQ(types[11], TokenType::kString);
  EXPECT_EQ((*ok)[11].text, "str");
  (void)tokens;
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : cluster_(4, Options()) {
    Rng rng(3);
    TupleVec rows;
    for (int64_t i = 0; i < 2000; ++i) {
      double x = rng.NextDouble(-90, 90);
      double y = rng.NextDouble(-90, 90);
      rows.push_back(Tuple(
          {Value("f" + std::to_string(i)), Value(i % 10),
           Value(Date::FromYmd(1988, 1, 1).AddDays(static_cast<int32_t>(i % 300))),
           Value(Polygon({{x, y}, {x + 2, y}, {x + 2, y + 2}, {x, y + 2}}))}));
    }
    catalog::TableDef def;
    def.name = "landCover";
    def.schema = exec::Schema({{"id", ValueType::kString},
                               {"type", ValueType::kInt},
                               {"observed", ValueType::kDate},
                               {"shape", ValueType::kPolygon}});
    def.partitioning = catalog::PartitioningKind::kSpatial;
    def.partition_column = 3;
    def.universe = geom::Box(-100, -100, 100, 100);
    def.indexes = {catalog::IndexDef{"lc_id", 0, false},
                   catalog::IndexDef{"lc_shape", 3, true}};
    auto table = ParallelTable::Load(&cluster_, def, rows, 16);
    EXPECT_TRUE(table.ok());
    table_ = std::move(*table);
    engine_.Register(table_.get());
  }

  static core::Cluster::Options Options() {
    core::Cluster::Options o;
    o.buffer_pool_frames = 1024;
    return o;
  }

  TupleVec Run(const std::string& sql) {
    QueryCoordinator coord(&cluster_);
    auto rows = engine_.Execute(sql, &coord);
    EXPECT_TRUE(rows.ok()) << sql << "\n  -> " << rows.status().ToString();
    return rows.ok() ? *rows : TupleVec{};
  }

  core::Cluster cluster_;
  std::unique_ptr<ParallelTable> table_;
  SqlEngine engine_;
};

TEST_F(SqlTest, SelectStar) {
  EXPECT_EQ(Run("SELECT * FROM landCover").size(), 2000u);
}

TEST_F(SqlTest, UnknownTableAndColumnAreErrors) {
  QueryCoordinator coord(&cluster_);
  EXPECT_FALSE(engine_.Execute("SELECT * FROM nope", &coord).ok());
  EXPECT_FALSE(engine_.Execute("SELECT bogus FROM landCover", &coord).ok());
  EXPECT_FALSE(engine_.Execute("SELECT * landCover", &coord).ok());
}

TEST_F(SqlTest, StringEqualityGoesThroughBTree) {
  auto plan = engine_.Explain("SELECT * FROM landCover WHERE id = 'f77'");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("B+-tree"), std::string::npos) << *plan;
  TupleVec rows = Run("SELECT * FROM landCover WHERE id = 'f77'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0).AsString(), "f77");
}

TEST_F(SqlTest, IntFilterCountsMatch) {
  TupleVec rows = Run("SELECT * FROM landCover WHERE type = 3");
  EXPECT_EQ(rows.size(), 200u);
  rows = Run("SELECT * FROM landCover WHERE type = 3 AND type = 4");
  EXPECT_TRUE(rows.empty());
}

TEST_F(SqlTest, DateEqualityAndBetween) {
  TupleVec one_day =
      Run("SELECT * FROM landCover WHERE observed = DATE '1988-01-11'");
  EXPECT_EQ(one_day.size(), 7u);  // i % 300 == 10, i < 2000
  TupleVec range = Run(
      "SELECT * FROM landCover WHERE observed BETWEEN DATE '1988-01-01' AND "
      "DATE '1988-01-31'");
  size_t expected = 0;
  for (int64_t i = 0; i < 2000; ++i) {
    if (i % 300 <= 30) ++expected;
  }
  EXPECT_EQ(range.size(), expected);
}

TEST_F(SqlTest, SpatialOverlapsPolygonLiteral) {
  auto plan = engine_.Explain(
      "SELECT * FROM landCover WHERE shape OVERLAPS "
      "POLYGON((0 0, 12 0, 12 12, 0 12))");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("R*-tree"), std::string::npos) << *plan;
  TupleVec rows = Run(
      "SELECT * FROM landCover WHERE shape OVERLAPS "
      "POLYGON((0 0, 30 0, 30 30, 0 30))");
  // Cross-check by scanning.
  Polygon region({{0, 0}, {30, 0}, {30, 30}, {0, 30}});
  TupleVec all = Run("SELECT * FROM landCover");
  size_t expected = 0;
  for (const Tuple& t : all) {
    if (t.at(3).AsPolygon()->Intersects(region)) ++expected;
  }
  EXPECT_EQ(rows.size(), expected);
  EXPECT_GT(rows.size(), 0u);
}

TEST_F(SqlTest, CircleSelection) {
  TupleVec rows = Run(
      "SELECT * FROM landCover WHERE shape OVERLAPS CIRCLE(0 0, 15)");
  TupleVec all = Run("SELECT * FROM landCover");
  size_t expected = 0;
  for (const Tuple& t : all) {
    if (t.at(3).AsPolygon()->DistanceTo(Point{0, 0}) <= 15) ++expected;
  }
  EXPECT_EQ(rows.size(), expected);
}

TEST_F(SqlTest, ProjectionWithFunctions) {
  TupleVec rows = Run(
      "SELECT id, area(shape) FROM landCover WHERE type = 0 ORDER BY id");
  ASSERT_EQ(rows.size(), 200u);
  EXPECT_DOUBLE_EQ(rows[0].at(1).AsDouble(), 4.0);  // 2x2 squares
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].at(0).AsString(), rows[i].at(0).AsString());
  }
}

TEST_F(SqlTest, DistancePredicate) {
  TupleVec rows = Run(
      "SELECT id FROM landCover WHERE distance(POINT(0 0), shape) < 10");
  TupleVec all = Run("SELECT * FROM landCover");
  size_t expected = 0;
  for (const Tuple& t : all) {
    if (t.at(3).AsPolygon()->DistanceTo(Point{0, 0}) < 10) ++expected;
  }
  EXPECT_EQ(rows.size(), expected);
}

TEST_F(SqlTest, Aggregates) {
  TupleVec rows = Run("SELECT count(*), avg(area(shape)) FROM landCover");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0).AsInt(), 2000);
  EXPECT_NEAR(rows[0].at(1).AsDouble(), 4.0, 1e-9);
}

TEST_F(SqlTest, GroupByAggregates) {
  TupleVec rows = Run(
      "SELECT count(*), sum(area(shape)) FROM landCover GROUP BY type");
  ASSERT_EQ(rows.size(), 10u);
  for (const Tuple& t : rows) {
    EXPECT_EQ(t.at(1).AsInt(), 200);
    EXPECT_NEAR(t.at(2).AsDouble(), 800.0, 1e-6);
  }
}

TEST_F(SqlTest, ClosestAggregate) {
  TupleVec rows = Run(
      "SELECT closest(shape, POINT(0 0)) FROM landCover GROUP BY type");
  ASSERT_EQ(rows.size(), 10u);
  // Verify one group against brute force.
  TupleVec all = Run("SELECT * FROM landCover");
  double best = 1e300;
  for (const Tuple& t : all) {
    if (t.at(1).AsInt() != rows[0].at(0).AsInt()) continue;
    best = std::min(best, t.at(3).AsPolygon()->DistanceTo(Point{0, 0}));
  }
  EXPECT_NEAR(rows[0].at(2).AsDouble(), best, 1e-9);
}

TEST_F(SqlTest, BooleanConnectives) {
  TupleVec rows = Run(
      "SELECT * FROM landCover WHERE type = 1 AND "
      "(id = 'f1' OR id = 'f11' OR id = 'f2')");
  // f1 and f11 have type 1; f2 has type 2.
  EXPECT_EQ(rows.size(), 2u);
  rows = Run("SELECT * FROM landCover WHERE NOT type = 0");
  EXPECT_EQ(rows.size(), 1800u);
}

TEST_F(SqlTest, BenchmarkStyleStatements) {
  // Query-6 shape: spatial selection.
  EXPECT_GT(Run("SELECT * FROM landCover WHERE shape OVERLAPS "
                "POLYGON((-50 -50, 50 -50, 50 50, -50 50))")
                .size(),
            0u);
  // Query-7 shape: circle + computed predicate.
  TupleVec q7 = Run(
      "SELECT area(shape), type FROM landCover WHERE shape OVERLAPS "
      "CIRCLE(0 0, 20) AND area(shape) < 5.0");
  for (const Tuple& t : q7) EXPECT_LT(t.at(0).AsDouble(), 5.0);
  // Query-11 shape: closest per type group.
  EXPECT_EQ(Run("SELECT closest(shape, POINT(-89.4 43.07)) FROM landCover "
                "GROUP BY type")
                .size(),
            10u);
}

}  // namespace
}  // namespace paradise::sql
