#include <gtest/gtest.h>

#include <cstring>

#include "array/chunked_array.h"
#include "common/rng.h"
#include "storage/buffer_pool.h"

namespace paradise::array {
namespace {

class ArrayTest : public ::testing::Test {
 protected:
  ArrayTest() : vol_(0, &clock_), pool_(2048), store_(&pool_, &vol_) {
    pool_.AttachVolume(&vol_);
  }
  sim::NodeClock clock_;
  storage::DiskVolume vol_;
  storage::BufferPool pool_;
  storage::LargeObjectStore store_;
};

std::vector<uint8_t> MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextUint(17) * 3);
  return data;
}

TEST(TileDimsTest, ProportionalChunking) {
  // A 1024x512 2-byte array with 32 KB tiles: tiles keep the 2:1 aspect.
  std::vector<uint32_t> dims = ChooseTileDims({1024, 512}, 2, 32 * 1024);
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_NEAR(static_cast<double>(dims[0]) / dims[1], 2.0, 0.3);
  EXPECT_NEAR(dims[0] * dims[1] * 2.0, 32 * 1024.0, 32 * 1024.0 * 0.3);
  // Tiny array: one tile covering everything.
  EXPECT_EQ(ChooseTileDims({4, 4}, 2, 32 * 1024), (std::vector<uint32_t>{4, 4}));
}

TEST_F(ArrayTest, SmallArrayInlines) {
  std::vector<uint8_t> data = MakeData(1000, 1);
  auto h = StoreArray(data.data(), {10, 100}, 1, &store_, &clock_);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->inlined());
  EXPECT_EQ(h->inline_data, data);
  LocalTileSource src(&store_, &clock_);
  auto full = ReadFull(*h, &src);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, data);
}

TEST_F(ArrayTest, InlineThresholdBoundary) {
  size_t threshold = InlineThresholdBytes();
  std::vector<uint8_t> small = MakeData(threshold, 2);
  auto h1 = StoreArray(small.data(), {1, static_cast<uint32_t>(threshold)}, 1,
                       &store_, &clock_);
  ASSERT_TRUE(h1.ok());
  EXPECT_TRUE(h1->inlined());
  std::vector<uint8_t> big = MakeData(threshold + 1, 3);
  auto h2 = StoreArray(big.data(), {1, static_cast<uint32_t>(threshold + 1)},
                       1, &store_, &clock_);
  ASSERT_TRUE(h2.ok());
  EXPECT_FALSE(h2->inlined());
}

TEST_F(ArrayTest, LargeArrayRoundTrip2D) {
  std::vector<uint8_t> data = MakeData(512 * 256 * 2, 4);
  auto h = StoreArray(data.data(), {512, 256}, 2, &store_, &clock_,
                      /*compress=*/true, /*tile_bytes=*/16 * 1024);
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(h->inlined());
  EXPECT_GT(h->num_tiles(), 4u);
  LocalTileSource src(&store_, &clock_);
  auto full = ReadFull(*h, &src);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, data);
}

TEST_F(ArrayTest, RegionReadMatchesDirectSlice) {
  const uint32_t H = 200, W = 300;
  std::vector<uint8_t> data(H * W * 2);
  for (uint32_t r = 0; r < H; ++r) {
    for (uint32_t c = 0; c < W; ++c) {
      uint16_t v = static_cast<uint16_t>(r * 1000 + c);
      std::memcpy(&data[(r * W + c) * 2], &v, 2);
    }
  }
  auto h = StoreArray(data.data(), {H, W}, 2, &store_, &clock_, true, 8192);
  ASSERT_TRUE(h.ok());
  LocalTileSource src(&store_, &clock_);
  // Several random regions.
  Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    uint32_t r0 = static_cast<uint32_t>(rng.NextUint(H - 1));
    uint32_t r1 = r0 + 1 + static_cast<uint32_t>(rng.NextUint(H - r0 - 1)) ;
    uint32_t c0 = static_cast<uint32_t>(rng.NextUint(W - 1));
    uint32_t c1 = c0 + 1 + static_cast<uint32_t>(rng.NextUint(W - c0 - 1));
    auto region = ReadRegion(*h, &src, {r0, c0}, {r1, c1});
    ASSERT_TRUE(region.ok());
    ASSERT_EQ(region->size(), static_cast<size_t>(r1 - r0) * (c1 - c0) * 2);
    for (uint32_t r = r0; r < r1; ++r) {
      for (uint32_t c = c0; c < c1; ++c) {
        uint16_t got;
        std::memcpy(&got,
                    region->data() + (((r - r0) * (c1 - c0)) + (c - c0)) * 2,
                    2);
        EXPECT_EQ(got, static_cast<uint16_t>(r * 1000 + c));
      }
    }
  }
}

TEST_F(ArrayTest, RegionReadTouchesOnlyOverlappingTiles) {
  std::vector<uint8_t> data = MakeData(400 * 400 * 2, 6);
  auto h = StoreArray(data.data(), {400, 400}, 2, &store_, &clock_,
                      /*compress=*/false, 16 * 1024);
  ASSERT_TRUE(h.ok());
  // A region inside one tile.
  std::vector<uint32_t> tiles = TilesForRegion(*h, {0, 0}, {10, 10});
  EXPECT_EQ(tiles.size(), 1u);
  // The whole array touches all tiles.
  tiles = TilesForRegion(*h, {0, 0}, {400, 400});
  EXPECT_EQ(tiles.size(), h->num_tiles());
}

TEST_F(ArrayTest, CompressionFlagPerTile) {
  // Half the data compressible, half random: tiles should differ.
  const uint32_t H = 256, W = 256;
  std::vector<uint8_t> data(H * W * 2, 0);
  Rng rng(9);
  for (size_t i = data.size() / 2; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(rng.Next());
  }
  auto h = StoreArray(data.data(), {H, W}, 2, &store_, &clock_, true, 8192);
  ASSERT_TRUE(h.ok());
  bool some_compressed = false, some_raw = false;
  for (const TileRef& t : h->tiles) {
    if (t.compressed) {
      some_compressed = true;
      EXPECT_LT(t.lob.length, t.raw_bytes);
    } else {
      some_raw = true;
    }
  }
  EXPECT_TRUE(some_compressed);
  EXPECT_TRUE(some_raw);
  LocalTileSource src(&store_, &clock_);
  auto full = ReadFull(*h, &src);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, data);
}

TEST_F(ArrayTest, ThreeDimensionalArray) {
  const uint32_t D = 12, H = 40, W = 50;
  std::vector<uint8_t> data = MakeData(D * H * W * 2, 7);
  auto h = StoreArray(data.data(), {D, H, W}, 2, &store_, &clock_, true, 8192);
  ASSERT_TRUE(h.ok());
  LocalTileSource src(&store_, &clock_);
  auto full = ReadFull(*h, &src);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, data);
  // A sub-cube.
  auto region = ReadRegion(*h, &src, {2, 5, 10}, {7, 25, 40});
  ASSERT_TRUE(region.ok());
  ASSERT_EQ(region->size(), 5u * 20u * 30u * 2u);
  for (uint32_t d = 2; d < 7; ++d) {
    for (uint32_t r = 5; r < 25; ++r) {
      for (uint32_t c = 10; c < 40; ++c) {
        size_t src_off = ((static_cast<size_t>(d) * H + r) * W + c) * 2;
        size_t dst_off =
            (((static_cast<size_t>(d) - 2) * 20 + (r - 5)) * 30 + (c - 10)) * 2;
        ASSERT_EQ(std::memcmp(region->data() + dst_off, data.data() + src_off,
                              2),
                  0);
      }
    }
  }
}

TEST_F(ArrayTest, HandleSerializationRoundTrip) {
  std::vector<uint8_t> data = MakeData(300 * 300 * 2, 8);
  auto h = StoreArray(data.data(), {300, 300}, 2, &store_, &clock_, true,
                      8192, /*owner_node=*/3);
  ASSERT_TRUE(h.ok());
  ByteBuffer buf;
  ByteWriter w(&buf);
  h->Serialize(&w);
  ByteReader r(buf);
  ArrayHandle rt = ArrayHandle::Deserialize(&r);
  EXPECT_EQ(rt.dims, h->dims);
  EXPECT_EQ(rt.tile_dims, h->tile_dims);
  EXPECT_EQ(rt.owner_node, 3u);
  ASSERT_EQ(rt.tiles.size(), h->tiles.size());
  for (size_t i = 0; i < rt.tiles.size(); ++i) {
    EXPECT_EQ(rt.tiles[i].lob, h->tiles[i].lob);
    EXPECT_EQ(rt.tiles[i].compressed, h->tiles[i].compressed);
  }
  // Deserialized handle reads the same bytes.
  LocalTileSource src(&store_, &clock_);
  auto full = ReadFull(rt, &src);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, data);
}

TEST_F(ArrayTest, FreeReleasesTiles) {
  std::vector<uint8_t> data = MakeData(300 * 300 * 2, 10);
  auto h = StoreArray(data.data(), {300, 300}, 2, &store_, &clock_, false,
                      8192);
  ASSERT_TRUE(h.ok());
  uint32_t before = vol_.allocated_pages();
  FreeArray(*h, &store_);
  EXPECT_LT(vol_.allocated_pages(), before);
}

TEST_F(ArrayTest, PlacementCallbackControlsTileOwner) {
  std::vector<uint8_t> data = MakeData(256 * 256 * 2, 11);
  auto h = StoreArrayWithPlacement(
      data.data(), {256, 256}, 2,
      [&](uint32_t tile_index, const std::vector<uint32_t>&) {
        return TilePlacement{&store_, &clock_,
                             static_cast<int32_t>(tile_index % 4)};
      },
      true, 8192, /*owner_node=*/0);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->declustered());
  for (uint32_t t = 0; t < h->num_tiles(); ++t) {
    EXPECT_EQ(h->TileOwner(t), t % 4);
  }
}

}  // namespace
}  // namespace paradise::array
