#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "exec/expr.h"
#include "exec/operators.h"
#include "exec/stream.h"
#include "exec/tuple.h"
#include "exec/value.h"

namespace paradise::exec {
namespace {

using geom::Box;
using geom::Circle;
using geom::Point;
using geom::Polygon;
using geom::Polyline;

ExecContext NullCtx() { return ExecContext{}; }

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_EQ(Value(Date::FromYmd(1988, 4, 1)).type(), ValueType::kDate);
  EXPECT_EQ(Value(Point{1, 2}).type(), ValueType::kPoint);
  EXPECT_EQ(Value(Polygon({{0, 0}, {1, 0}, {0, 1}})).type(),
            ValueType::kPolygon);
}

TEST(ValueTest, CompareAndHash) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(std::string("a")).Compare(Value(std::string("a"))), 0);
  EXPECT_GT(Value(Date::FromYmd(1990, 1, 1))
                .Compare(Value(Date::FromYmd(1988, 1, 1))),
            0);
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_EQ(Value(Point{1, 2}).Hash(), Value(Point{1, 2}).Hash());
  EXPECT_NE(Value(Point{1, 2}).Hash(), Value(Point{2, 1}).Hash());
}

TEST(ValueTest, SerializeRoundTripAllTypes) {
  std::vector<Value> values = {
      Value(),
      Value(int64_t{-42}),
      Value(3.25),
      Value(std::string("paradise")),
      Value(Date::FromYmd(1997, 5, 13)),
      Value(Point{1.5, -2.5}),
      Value(Box(0, 1, 2, 3)),
      Value(Circle(Point{0, 0}, 7)),
      Value(Polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}})),
      Value(Polyline({{0, 0}, {1, 1}, {2, 0}})),
  };
  for (const Value& v : values) {
    ByteBuffer buf;
    ByteWriter w(&buf);
    v.Serialize(&w);
    ByteReader r(buf);
    Value rt = Value::Deserialize(&r);
    EXPECT_EQ(rt.type(), v.type());
    EXPECT_TRUE(rt.Equals(v)) << v.ToString() << " vs " << rt.ToString();
  }
}

TEST(ValueTest, MbrOfSpatialValues) {
  EXPECT_EQ(Value(Point{3, 4}).Mbr(), Box(3, 4, 3, 4));
  EXPECT_EQ(Value(Polygon({{0, 0}, {4, 0}, {2, 5}})).Mbr(), Box(0, 0, 4, 5));
  EXPECT_EQ(Value(Circle(Point{0, 0}, 2)).Mbr(), Box(-2, -2, 2, 2));
}

TEST(ValueTest, SharedByReference) {
  Value poly(Polygon({{0, 0}, {100, 0}, {0, 100}}));
  Value copy = poly;  // shares
  EXPECT_EQ(copy.AsPolygon().get(), poly.AsPolygon().get());
  EXPECT_LT(copy.StorageBytes(/*deep=*/false), 32u);
  EXPECT_GT(copy.StorageBytes(/*deep=*/true), 48u);
}

TEST(TupleTest, SerializeRoundTrip) {
  Tuple t({Value(int64_t{1}), Value(std::string("two")), Value(Point{3, 4})});
  ByteBuffer buf;
  ByteWriter w(&buf);
  t.Serialize(&w);
  ByteReader r(buf);
  Tuple rt = Tuple::Deserialize(&r);
  ASSERT_EQ(rt.size(), 3u);
  EXPECT_TRUE(rt.at(0).Equals(t.at(0)));
  EXPECT_TRUE(rt.at(2).Equals(t.at(2)));
}

TEST(SchemaTest, Lookup) {
  Schema s({{"id", ValueType::kString}, {"shape", ValueType::kPolygon}});
  EXPECT_EQ(s.IndexOf("shape"), 1u);
  EXPECT_TRUE(s.Has("id"));
  EXPECT_FALSE(s.Has("nope"));
  Schema joined = Schema::Join(s, s);
  EXPECT_EQ(joined.num_columns(), 4u);
  EXPECT_EQ(joined.column(2).name, "r.id");
}

TEST(ExprTest, ComparisonsAndLogic) {
  ExecContext ctx = NullCtx();
  Tuple t({Value(int64_t{5}), Value(2.5), Value(std::string("abc"))});
  auto b = [&](ExprPtr e) {
    auto r = EvalPredicate(e, t, ctx);
    EXPECT_TRUE(r.ok());
    return *r;
  };
  EXPECT_TRUE(b(Cmp(CompareOp::kEq, Col(0), Lit(Value(int64_t{5})))));
  EXPECT_TRUE(b(Cmp(CompareOp::kLt, Col(1), Lit(Value(3.0)))));
  EXPECT_FALSE(b(Cmp(CompareOp::kGt, Col(1), Lit(Value(3.0)))));
  // Mixed int/double compares numerically.
  EXPECT_TRUE(b(Cmp(CompareOp::kGt, Col(0), Lit(Value(4.5)))));
  EXPECT_TRUE(b(And(Cmp(CompareOp::kEq, Col(0), Lit(Value(int64_t{5}))),
                    Cmp(CompareOp::kEq, Col(2), Lit(Value(std::string("abc")))))));
  EXPECT_TRUE(b(Or(Cmp(CompareOp::kEq, Col(0), Lit(Value(int64_t{9}))),
                   Cmp(CompareOp::kLe, Col(1), Lit(Value(2.5))))));
  EXPECT_TRUE(b(Not(Cmp(CompareOp::kEq, Col(0), Lit(Value(int64_t{9}))))));
}

TEST(ExprTest, SpatialOverlapsAndDistance) {
  ExecContext ctx = NullCtx();
  Polygon sq({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  Tuple t({Value(sq), Value(Point{5, 5}), Value(Polyline({{-5, 5}, {15, 5}}))});
  auto overlaps = Overlaps(Col(0), Col(2));
  auto r = EvalPredicate(overlaps, t, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  auto contains = Overlaps(Col(0), Col(1));
  r = EvalPredicate(contains, t, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  auto d = DistanceBetween(Col(1), Col(2))->Eval(t, ctx);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->AsDouble(), 0.0);
  auto within = WithinCircle(Col(0), Circle(Point{15, 5}, 6));
  r = EvalPredicate(within, t, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  auto not_within = WithinCircle(Col(0), Circle(Point{15, 5}, 4));
  r = EvalPredicate(not_within, t, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(ExprTest, AreaAndMakeBox) {
  ExecContext ctx = NullCtx();
  Tuple t({Value(Polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}})),
           Value(Point{5, 5})});
  auto area = AreaOf(Col(0))->Eval(t, ctx);
  ASSERT_TRUE(area.ok());
  EXPECT_DOUBLE_EQ(area->AsDouble(), 100.0);
  auto box = MakeBoxAround(Col(1), 4.0)->Eval(t, ctx);
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->AsBox(), Box(3, 3, 7, 7));
}

TEST(ExprTest, ErrorsPropagate) {
  ExecContext ctx = NullCtx();
  Tuple t({Value(int64_t{1})});
  EXPECT_FALSE(Col(5)->Eval(t, ctx).ok());
  EXPECT_FALSE(AreaOf(Col(0))->Eval(t, ctx).ok());
}

TupleVec MakeInts(std::vector<int64_t> v) {
  TupleVec out;
  for (int64_t x : v) out.push_back(Tuple({Value(x)}));
  return out;
}

TEST(OperatorTest, FilterAndProject) {
  ExecContext ctx = NullCtx();
  TupleVec in = MakeInts({1, 2, 3, 4, 5, 6});
  auto even =
      Filter(in, Cmp(CompareOp::kEq, Col(0), Lit(Value(int64_t{4}))), ctx);
  ASSERT_TRUE(even.ok());
  EXPECT_EQ(even->size(), 1u);
  auto proj = Project(in, {Col(0), Col(0)}, ctx);
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ((*proj)[0].size(), 2u);
}

TEST(OperatorTest, SortStableMultiKey) {
  ExecContext ctx = NullCtx();
  TupleVec in;
  in.push_back(Tuple({Value(int64_t{2}), Value(std::string("b"))}));
  in.push_back(Tuple({Value(int64_t{1}), Value(std::string("z"))}));
  in.push_back(Tuple({Value(int64_t{2}), Value(std::string("a"))}));
  SortTuples(&in, {{0, true}, {1, false}}, ctx);
  EXPECT_EQ(in[0].at(0).AsInt(), 1);
  EXPECT_EQ(in[1].at(1).AsString(), "b");  // desc secondary
  EXPECT_EQ(in[2].at(1).AsString(), "a");
}

TEST(OperatorTest, HashJoinMatchesNestedLoops) {
  ExecContext ctx = NullCtx();
  Rng rng(3);
  TupleVec left, right;
  for (int i = 0; i < 200; ++i) {
    left.push_back(Tuple({Value(rng.NextInt(0, 30)), Value(int64_t{i})}));
  }
  for (int i = 0; i < 150; ++i) {
    right.push_back(Tuple({Value(rng.NextInt(0, 30)), Value(int64_t{1000 + i})}));
  }
  auto hash = GraceHashJoin(left, 0, right, 0, ctx);
  ASSERT_TRUE(hash.ok());
  auto nl = NestedLoopsJoin(left, right,
                            Cmp(CompareOp::kEq, Col(0), Col(2)), ctx);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(hash->size(), nl->size());
  auto key = [](const Tuple& t) {
    return std::make_pair(t.at(1).AsInt(), t.at(3).AsInt());
  };
  std::set<std::pair<int64_t, int64_t>> a, b;
  for (const Tuple& t : *hash) a.insert(key(t));
  for (const Tuple& t : *nl) b.insert(key(t));
  EXPECT_EQ(a, b);
}

TEST(OperatorTest, GraceHashJoinChargesSpillWhenOverBudget) {
  sim::NodeClock clock;
  ExecContext ctx;
  ctx.clock = &clock;
  TupleVec left, right;
  for (int i = 0; i < 2000; ++i) {
    left.push_back(Tuple({Value(int64_t{i}), Value(std::string(64, 'x'))}));
    right.push_back(Tuple({Value(int64_t{i}), Value(std::string(64, 'y'))}));
  }
  HashJoinOptions opts;
  opts.memory_budget = 1024;  // force the Grace spill path
  auto r = GraceHashJoin(left, 0, right, 0, ctx, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2000u);
  sim::ResourceUsage u = clock.EndPhase();
  EXPECT_GT(u.disk_bytes_written, 0);
  EXPECT_GT(u.disk_bytes_read, 0);
}

TEST(StreamTest, PushPopFlowControl) {
  TupleStream stream(4);
  stream.AddWriter();
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) stream.Push(Tuple({Value(int64_t{i})}));
    stream.CloseWriter();
  });
  std::vector<int64_t> got;
  Tuple t;
  while (stream.Pop(&t)) got.push_back(t.at(0).AsInt());
  producer.join();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(StreamTest, MultipleWriters) {
  TupleStream stream(16);
  constexpr int kWriters = 4;
  for (int w = 0; w < kWriters; ++w) stream.AddWriter();
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stream, w] {
      for (int i = 0; i < 50; ++i) {
        stream.Push(Tuple({Value(int64_t{w * 1000 + i})}));
      }
      stream.CloseWriter();
    });
  }
  std::vector<Tuple> all = stream.DrainAll();
  for (auto& th : writers) th.join();
  EXPECT_EQ(all.size(), 200u);
}

TEST(StreamTest, SplitStreamRoutesAndReplicates) {
  TupleStream s0(64), s1(64), s2(64);
  {
    SplitStream split({&s0, &s1, &s2},
                      [](const Tuple& t, std::vector<uint32_t>* dests) {
                        int64_t v = t.at(0).AsInt();
                        if (v < 0) {  // replicate negatives everywhere
                          dests->assign({0, 1, 2});
                        } else {
                          dests->push_back(static_cast<uint32_t>(v % 3));
                        }
                      });
    for (int64_t i = 0; i < 30; ++i) split.Push(Tuple({Value(i)}));
    split.Push(Tuple({Value(int64_t{-1})}));
    split.Close();
  }
  EXPECT_EQ(s0.DrainAll().size(), 11u);  // 10 + replica
  EXPECT_EQ(s1.DrainAll().size(), 11u);
  EXPECT_EQ(s2.DrainAll().size(), 11u);
}

}  // namespace
}  // namespace paradise::exec
