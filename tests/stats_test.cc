// Sampling-driven optimizer statistics: the bottom-k reservoir's merge
// and order invariance, histogram features, and the catalog stats
// lifecycle — published at load, bit-identical at any thread count clean
// or faulted, invalidated on mutation / salvage / migration cutover, and
// republished by an explicit rebuild.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/cluster.h"
#include "core/coordinator.h"
#include "core/table.h"
#include "core/topology.h"
#include "datagen/datagen.h"
#include "geom/box.h"
#include "opt/stats.h"
#include "sim/fault_injector.h"

namespace paradise {
namespace {

using catalog::PartitioningKind;
using catalog::TableDef;
using core::Cluster;
using core::ParallelTable;
using core::QueryCoordinator;
using core::TopologyManager;
using exec::Tuple;
using exec::TupleVec;
using geom::Box;
using opt::BuildHistogram;
using opt::BuildHistogramOptions;
using opt::HistogramStats;
using opt::SpatialSampler;
using sim::FaultInjector;

#define ASSERT_OK(expr)                    \
  do {                                     \
    Status _s = (expr);                    \
    ASSERT_TRUE(_s.ok()) << _s.ToString(); \
  } while (0)

Cluster::Options SmallClusterOptions() {
  Cluster::Options o;
  o.buffer_pool_frames = 512;
  return o;
}

/// Clustered point MBRs, the adversarial shape the sampler must represent.
std::vector<Box> ClusteredBoxes(uint64_t seed, int64_t count) {
  datagen::ClusteredDataOptions copt;
  copt.seed = seed;
  copt.count = count;
  copt.num_clusters = 3;
  copt.skew = 0.9;
  std::vector<Box> out;
  for (const Tuple& t : datagen::GenerateUrbanPoints(copt)) {
    out.push_back(t.at(datagen::col::kPlaceLocation).Mbr());
  }
  return out;
}

// ---------- SpatialSampler ----------

TEST(SpatialSamplerTest, BottomKMergeAndOrderMatchGlobalPass) {
  std::vector<Box> boxes = ClusteredBoxes(3, 2000);
  SpatialSampler global(/*seed=*/5, /*salt=*/0, /*capacity=*/128);
  for (size_t i = 0; i < boxes.size(); ++i) global.Add(i, boxes[i]);

  // Per-fragment samplers over disjoint ordinal ranges, merged in an
  // arbitrary order, must agree bit-for-bit with the single global pass.
  SpatialSampler a(5, 0, 128), b(5, 0, 128), c(5, 0, 128);
  for (size_t i = 0; i < boxes.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(i, boxes[i]);
  }
  c.Merge(a);
  c.Merge(b);
  EXPECT_EQ(c.Samples(), global.Samples());
  EXPECT_EQ(c.seen(), global.seen());

  // Insertion order never matters (bottom-k, not Algorithm R).
  SpatialSampler reversed(5, 0, 128);
  for (size_t i = boxes.size(); i-- > 0;) reversed.Add(i, boxes[i]);
  EXPECT_EQ(reversed.Samples(), global.Samples());
}

TEST(SpatialSamplerTest, SmallPopulationIsSampledExhaustively) {
  std::vector<Box> boxes = ClusteredBoxes(9, 50);
  SpatialSampler s(1, 0, 128);
  for (size_t i = 0; i < boxes.size(); ++i) s.Add(i, boxes[i]);
  EXPECT_EQ(s.Samples().size(), boxes.size());
}

// ---------- HistogramStats ----------

TEST(HistogramStatsTest, SkewAndSelectivityFollowTheMass) {
  Box universe(0, 0, 100, 100);
  // 90 samples in one corner tile, 10 spread over another: the non-empty
  // tile mean is 50, so max/mean must be 1.8.
  std::vector<Box> samples;
  for (int i = 0; i < 90; ++i) samples.push_back(Box(1, 1, 2, 2));
  for (int i = 0; i < 10; ++i) samples.push_back(Box(98, 98, 99, 99));
  BuildHistogramOptions hopt;
  hopt.tiles_per_axis = 4;
  HistogramStats h = BuildHistogram("t", universe, samples, 1000, hopt);
  EXPECT_EQ(h.total_rows, 1000);
  EXPECT_EQ(h.sampled_rows, 100);
  EXPECT_DOUBLE_EQ(h.DensitySkew(), 1.8);
  // Scaled back to the table cardinality, split 90/10.
  EXPECT_NEAR(h.EstimateRows(universe), 1000.0, 1e-6);
  EXPECT_NEAR(h.EstimateRows(Box(0, 0, 25, 25)), 900.0, 1e-6);
  EXPECT_NEAR(h.EstimateRows(Box(75, 75, 100, 100)), 100.0, 1e-6);
}

// ---------- Catalog lifecycle on a live cluster ----------

TableDef PlacesDef(const std::string& name, const Box& universe) {
  TableDef def;
  def.name = name;
  def.schema = datagen::PlacesSchema();
  def.partitioning = PartitioningKind::kSpatial;
  def.partition_column = datagen::col::kPlaceLocation;
  def.universe = universe;
  return def;
}

TupleVec ClusteredPlaces(uint64_t seed, int64_t count) {
  datagen::ClusteredDataOptions copt;
  copt.seed = seed;
  copt.count = count;
  copt.num_clusters = 3;
  copt.skew = 0.9;
  return datagen::GenerateUrbanPoints(copt);
}

struct LoadedPlaces {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<ParallelTable> table;
};

LoadedPlaces LoadPlaces(int num_threads, uint64_t seed = 11) {
  LoadedPlaces out;
  out.cluster = std::make_unique<Cluster>(4, SmallClusterOptions());
  out.cluster->SetNumThreads(num_threads);
  TupleVec rows = ClusteredPlaces(seed, 3000);
  datagen::ClusteredDataOptions defaults;
  auto t = ParallelTable::Load(out.cluster.get(),
                               PlacesDef("places", defaults.universe), rows,
                               /*tiles_per_axis=*/10);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  out.table = std::move(*t);
  return out;
}

TEST(StatsLifecycleTest, LoadPublishesIdenticalHistogramAtAnyThreadCount) {
  LoadedPlaces one = LoadPlaces(1);
  LoadedPlaces eight = LoadPlaces(8);
  const HistogramStats* h1 = one.cluster->catalog()->FindTableStats("places");
  const HistogramStats* h8 =
      eight.cluster->catalog()->FindTableStats("places");
  ASSERT_NE(h1, nullptr);
  ASSERT_NE(h8, nullptr);
  EXPECT_EQ(*h1, *h8);
  EXPECT_EQ(h1->total_rows, one.table->num_rows());
  EXPECT_GT(h1->DensitySkew(), 1.5) << "clustered data should look skewed";
}

TEST(StatsLifecycleTest, RebuildIsIdenticalCleanAndFaultedAtAnyThreadCount) {
  HistogramStats reference;
  for (int pass = 0; pass < 4; ++pass) {
    const int threads = pass % 2 == 0 ? 1 : 8;
    const bool faulted = pass >= 2;
    LoadedPlaces lp = LoadPlaces(threads);
    // Cold pools: the rebuild's fragment scans must actually hit disk, or
    // the injected read faults never fire.
    lp.cluster->ResetForQuery();
    FaultInjector inj(/*seed=*/77);
    if (faulted) {
      inj.set_transient_read_rate(0.05);
      inj.set_torn_read_rate(0.02);
      lp.cluster->SetFaultInjector(&inj);
    }
    ASSERT_OK(lp.table->RebuildStats(lp.cluster.get()));
    lp.cluster->SetFaultInjector(nullptr);
    const HistogramStats* h = lp.cluster->catalog()->FindTableStats("places");
    ASSERT_NE(h, nullptr);
    if (pass == 0) {
      reference = *h;
    } else {
      EXPECT_EQ(*h, reference) << "threads=" << threads
                               << " faulted=" << faulted;
    }
    if (faulted) {
      EXPECT_GT(inj.stats().transient_read_faults + inj.stats().torn_read_faults,
                0)
          << "the faulted rebuild saw no faults — raise the rates";
    }
  }
}

TEST(StatsLifecycleTest, MutationInvalidatesStats) {
  LoadedPlaces lp = LoadPlaces(1);
  ASSERT_NE(lp.cluster->catalog()->FindTableStats("places"), nullptr);
  QueryCoordinator coord(lp.cluster.get());
  ASSERT_OK(coord.BeginQuery());
  coord.NoteTableMutation("places");
  EXPECT_EQ(lp.cluster->catalog()->FindTableStats("places"), nullptr);
}

TEST(StatsLifecycleTest, SalvageInvalidatesAndRebuildRepublishes) {
  LoadedPlaces lp = LoadPlaces(1);
  const uint64_t v0 = lp.cluster->catalog()->stats_versions();
  ASSERT_NE(lp.cluster->catalog()->FindTableStats("places"), nullptr);

  lp.cluster->MarkNodeDead(2);
  ASSERT_OK(lp.table->SalvageDeadNode(lp.cluster.get(), 2));
  EXPECT_EQ(lp.cluster->catalog()->FindTableStats("places"), nullptr);

  ASSERT_OK(lp.table->RebuildStats(lp.cluster.get()));
  const HistogramStats* h = lp.cluster->catalog()->FindTableStats("places");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(lp.cluster->catalog()->stats_versions(), v0);
  // Salvage preserves every logical row, and the rebuild counts primaries.
  EXPECT_EQ(h->total_rows, lp.table->num_rows());
}

TEST(StatsLifecycleTest, MigrationCutoverInvalidatesStats) {
  LoadedPlaces lp = LoadPlaces(1);
  TopologyManager* topo = lp.cluster->topology();
  topo->RegisterTable(lp.table.get());
  ASSERT_NE(lp.cluster->catalog()->FindTableStats("places"), nullptr);

  topo->AddNode();
  EXPECT_GT(topo->pending_moves(), 0);
  ASSERT_OK(topo->DrainMigration(0.0));
  EXPECT_TRUE(topo->migration_idle());
  EXPECT_EQ(lp.cluster->catalog()->FindTableStats("places"), nullptr)
      << "a tile-migration cutover changed the layout; stats must drop";
}

}  // namespace
}  // namespace paradise
