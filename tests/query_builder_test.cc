#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/query_builder.h"

namespace paradise::core {
namespace {

using catalog::IndexDef;
using catalog::PartitioningKind;
using catalog::TableDef;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;
using geom::Box;
using geom::Point;
using geom::Polygon;

class QueryBuilderTest : public ::testing::Test {
 protected:
  QueryBuilderTest() : cluster_(4, SmallOptions()) {
    Rng rng(11);
    TupleVec rows;
    for (int64_t i = 0; i < 5000; ++i) {
      double x = rng.NextDouble(-90, 90);
      double y = rng.NextDouble(-90, 90);
      Polygon square({{x, y}, {x + 4, y}, {x + 4, y + 4}, {x, y + 4}});
      rows.push_back(Tuple({Value("f" + std::to_string(i)),
                            Value(i % 8),  // category
                            Value(std::move(square))}));
    }
    TableDef def;
    def.name = "features";
    def.schema = exec::Schema({{"id", ValueType::kString},
                               {"type", ValueType::kInt},
                               {"shape", ValueType::kPolygon}});
    def.partitioning = PartitioningKind::kSpatial;
    def.partition_column = 2;
    def.universe = Box(-100, -100, 100, 100);
    def.indexes = {IndexDef{"features_id", 0, false},
                   IndexDef{"features_shape", 2, true}};
    auto table = ParallelTable::Load(&cluster_, def, rows, 16);
    EXPECT_TRUE(table.ok());
    table_ = std::move(*table);

    // A second, small table of probe sites for join tests.
    TupleVec sites;
    for (int64_t i = 0; i < 6; ++i) {
      double x = -60.0 + 20 * static_cast<double>(i);
      Polygon square({{x, 0}, {x + 10, 0}, {x + 10, 10}, {x, 10}});
      sites.push_back(
          Tuple({Value("site" + std::to_string(i)), Value(std::move(square))}));
    }
    TableDef sdef;
    sdef.name = "sites";
    sdef.schema = exec::Schema(
        {{"name", ValueType::kString}, {"shape", ValueType::kPolygon}});
    sdef.partitioning = PartitioningKind::kRoundRobin;
    auto stable = ParallelTable::Load(&cluster_, sdef, sites);
    EXPECT_TRUE(stable.ok());
    sites_ = std::move(*stable);
  }

  static Cluster::Options SmallOptions() {
    Cluster::Options o;
    o.buffer_pool_frames = 1024;
    return o;
  }

  Cluster cluster_;
  std::unique_ptr<ParallelTable> table_;
  std::unique_ptr<ParallelTable> sites_;
};

TEST_F(QueryBuilderTest, FullScanReturnsEverything) {
  QueryCoordinator coord(&cluster_);
  auto rows = Query::On(table_.get()).Run(&coord);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5000u);
}

TEST_F(QueryBuilderTest, StringEqualityUsesBTree) {
  Query q = Query::On(table_.get());
  std::string plan = std::move(q).WhereStringEquals(0, "f123").Explain();
  EXPECT_NE(plan.find("B+-tree probe on column 0"), std::string::npos) << plan;

  QueryCoordinator coord(&cluster_);
  auto rows =
      Query::On(table_.get()).WhereStringEquals(0, "f123").Run(&coord);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].at(0).AsString(), "f123");
}

TEST_F(QueryBuilderTest, SpatialPredicateUsesRTree) {
  Polygon region({{-10, -10}, {10, -10}, {10, 10}, {-10, 10}});
  std::string plan =
      std::move(Query::On(table_.get()).WhereOverlaps(2, region)).Explain();
  EXPECT_NE(plan.find("R*-tree probe on column 2"), std::string::npos) << plan;

  QueryCoordinator coord(&cluster_);
  auto rows = Query::On(table_.get()).WhereOverlaps(2, region).Run(&coord);
  ASSERT_TRUE(rows.ok());
  // Verify against a brute-force count on a full scan.
  QueryCoordinator coord2(&cluster_);
  auto all = Query::On(table_.get()).Run(&coord2);
  ASSERT_TRUE(all.ok());
  size_t expected = 0;
  for (const Tuple& t : *all) {
    if (t.at(2).AsPolygon()->Intersects(region)) ++expected;
  }
  EXPECT_EQ(rows->size(), expected);
}

TEST_F(QueryBuilderTest, ResidualPredicatesApplyAfterIndex) {
  Polygon region({{-50, -50}, {50, -50}, {50, 50}, {-50, 50}});
  QueryCoordinator coord(&cluster_);
  auto rows = Query::On(table_.get())
                  .WhereOverlaps(2, region)
                  .WhereIntEquals(1, 3)
                  .Run(&coord);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  for (const Tuple& t : *rows) {
    EXPECT_EQ(t.at(1).AsInt(), 3);
    EXPECT_TRUE(t.at(2).AsPolygon()->Intersects(region));
  }
}

TEST_F(QueryBuilderTest, UnindexedPredicateFallsBackToScan) {
  std::string plan =
      std::move(Query::On(table_.get()).WhereIntEquals(1, 3)).Explain();
  EXPECT_NE(plan.find("sequential scan"), std::string::npos) << plan;
  QueryCoordinator coord(&cluster_);
  auto rows = Query::On(table_.get()).WhereIntEquals(1, 3).Run(&coord);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 625u);  // 5000 / 8 categories
}

TEST_F(QueryBuilderTest, ProjectionAndOrdering) {
  QueryCoordinator coord(&cluster_);
  auto rows = Query::On(table_.get())
                  .WhereIntEquals(1, 0)
                  .Select({exec::Col(0), exec::AreaOf(exec::Col(2))})
                  .OrderBy(0)
                  .Run(&coord);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 625u);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LE((*rows)[i - 1].at(0).AsString(), (*rows)[i].at(0).AsString());
  }
  EXPECT_DOUBLE_EQ((*rows)[0].at(1).AsDouble(), 16.0);  // 4x4 squares
}

TEST_F(QueryBuilderTest, GroupByAggregates) {
  QueryCoordinator coord(&cluster_);
  auto rows = Query::On(table_.get())
                  .GroupBy({1}, {exec::MakeCount(),
                                 exec::MakeSum(exec::AreaOf(exec::Col(2)))})
                  .Run(&coord);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 8u);
  for (const Tuple& t : *rows) {
    EXPECT_EQ(t.at(1).AsInt(), 625);                 // count per category
    EXPECT_NEAR(t.at(2).AsDouble(), 625 * 16.0, 1e-6);  // total area
  }
}

TEST_F(QueryBuilderTest, SmallOuterJoinChoosesIndexNL) {
  std::string plan = std::move(Query::On(sites_.get())
                                   .SpatialJoinWith(table_.get(), 1, 2))
                         .Explain();
  EXPECT_NE(plan.find("indexed nested loops"), std::string::npos) << plan;
}

TEST_F(QueryBuilderTest, LargeOuterJoinChoosesPbsm) {
  std::string plan = std::move(Query::On(table_.get())
                                   .SpatialJoinWith(table_.get(), 2, 2))
                         .Explain();
  EXPECT_NE(plan.find("PBSM"), std::string::npos) << plan;
}

TEST_F(QueryBuilderTest, JoinResultsMatchBruteForceEitherAlgorithm) {
  // Run the same logical join with both physical algorithms (by flipping
  // outer/inner) and check both against brute force.
  QueryCoordinator coord(&cluster_);
  auto via_index = Query::On(sites_.get())
                       .SpatialJoinWith(table_.get(), 1, 2)
                       .Run(&coord);
  ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();

  QueryCoordinator coord2(&cluster_);
  auto all_sites = Query::On(sites_.get()).Run(&coord2);
  QueryCoordinator coord3(&cluster_);
  auto all_features = Query::On(table_.get()).Run(&coord3);
  ASSERT_TRUE(all_sites.ok() && all_features.ok());
  std::set<std::pair<std::string, std::string>> expected;
  for (const Tuple& s : *all_sites) {
    for (const Tuple& f : *all_features) {
      if (s.at(1).AsPolygon()->Intersects(*f.at(2).AsPolygon())) {
        expected.emplace(s.at(0).AsString(), f.at(0).AsString());
      }
    }
  }
  std::set<std::pair<std::string, std::string>> got;
  for (const Tuple& t : *via_index) {
    EXPECT_TRUE(
        got.emplace(t.at(0).AsString(), t.at(2).AsString()).second)
        << "duplicate";
  }
  EXPECT_EQ(got, expected);
}

TEST_F(QueryBuilderTest, ExplainMentionsAllStages) {
  Polygon region({{-10, -10}, {10, -10}, {10, 10}, {-10, 10}});
  std::string plan = std::move(Query::On(table_.get())
                                   .WhereOverlaps(2, region)
                                   .WhereIntEquals(1, 2)
                                   .Select({exec::Col(0)})
                                   .OrderBy(0))
                         .Explain();
  EXPECT_NE(plan.find("R*-tree"), std::string::npos);
  EXPECT_NE(plan.find("residual"), std::string::npos);
  EXPECT_NE(plan.find("project"), std::string::npos);
  EXPECT_NE(plan.find("sort"), std::string::npos);
}

}  // namespace
}  // namespace paradise::core
