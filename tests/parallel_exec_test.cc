#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "benchmark/database.h"
#include "benchmark/queries.h"
#include "common/thread_pool.h"
#include "core/cluster.h"
#include "core/coordinator.h"
#include "core/parallel_ops.h"
#include "core/table.h"
#include "datagen/datagen.h"
#include "index/b_plus_tree.h"
#include "sim/cost_model.h"
#include "storage/page.h"

namespace paradise {
namespace {

using catalog::PartitioningKind;
using catalog::TableDef;
using core::Cluster;
using core::ParallelTable;
using core::PerNode;
using core::QueryCoordinator;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;
using geom::Box;
using geom::Point;
using geom::Polygon;

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  std::vector<int> hits(100, 0);  // distinct slots: no two tasks share one
  pool.ParallelFor(100, [&](int i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInIndexOrder) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.ParallelFor(10, [&](int i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  common::ThreadPool pool(3);
  std::vector<int> hits(7, 0);
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(7, [&](int i) { ++hits[i]; });
  }
  for (int h : hits) EXPECT_EQ(h, 50);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  common::ThreadPool pool(8);
  std::vector<int> hits(2, 0);
  pool.ParallelFor(2, [&](int i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  common::ThreadPool pool(2);
  pool.ParallelFor(0, [&](int) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, WorkerExceptionRethrownAtBarrier) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(16,
                                [&](int i) {
                                  if (i == 7) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a throwing batch and runs later batches normally.
  std::vector<int> hits(8, 0);
  pool.ParallelFor(8, [&](int i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, InlineExceptionRethrownWithSingleThread) {
  common::ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(4,
                                [&](int i) {
                                  if (i == 2) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  std::vector<int> hits(4, 0);
  pool.ParallelFor(4, [&](int i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // An outer task may itself ParallelFor on the same pool (a RunPhase
  // closure running a partition-parallel join). The caller of the inner
  // batch drives it to completion itself, so this must not deadlock even
  // when every worker is busy with outer tasks.
  common::ThreadPool pool(4);
  std::vector<std::vector<int>> hits(6, std::vector<int>(10, 0));
  pool.ParallelFor(6, [&](int outer) {
    pool.ParallelFor(10, [&](int inner) { ++hits[outer][inner]; });
  });
  for (const auto& row : hits) {
    for (int h : row) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, NestedExceptionStaysInItsBatch) {
  common::ThreadPool pool(3);
  std::atomic<int> outer_done{0};
  EXPECT_THROW(
      pool.ParallelFor(4,
                       [&](int outer) {
                         pool.ParallelFor(4, [&](int inner) {
                           if (outer == 2 && inner == 3) {
                             throw std::runtime_error("inner boom");
                           }
                         });
                         ++outer_done;
                       }),
      std::runtime_error);
  // Only the one outer task whose inner batch threw is cut short.
  EXPECT_EQ(outer_done.load(), 3);
  std::vector<int> hits(5, 0);
  pool.ParallelFor(5, [&](int i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, DefaultThreadCountRespectsEnv) {
  ::setenv("PARADISE_THREADS", "3", 1);
  EXPECT_EQ(common::ThreadPool::DefaultNumThreads(), 3);
  ::setenv("PARADISE_THREADS", "0", 1);  // invalid: fall back to hardware
  EXPECT_GE(common::ThreadPool::DefaultNumThreads(), 1);
  ::unsetenv("PARADISE_THREADS");
  EXPECT_GE(common::ThreadPool::DefaultNumThreads(), 1);
}

// ---------- Determinism of the phase-parallel executor ----------
//
// The per-node virtual clocks are the only time source, and the phase
// contract confines every closure to its own node's state, so the modeled
// query time and the delivered rows must be bit-identical no matter how
// many worker threads execute the phases.

benchmark::LoadOptions TinyLoadOptions() {
  benchmark::LoadOptions lopts;
  lopts.tiles_per_axis = 20;
  return lopts;
}

datagen::DataSetOptions TinyDataOptions() {
  datagen::DataSetOptions o;
  o.size_fraction = 1.0 / 1000;
  o.num_dates = 8;
  o.base_raster_size = 96;
  return o;
}

struct LoadedDb {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<benchmark::BenchmarkDatabase> db;
};

LoadedDb LoadTinyDb(int nodes, int num_threads) {
  LoadedDb out;
  Cluster::Options copts;
  copts.buffer_pool_frames = 2048;
  out.cluster = std::make_unique<Cluster>(nodes, copts);
  out.cluster->SetNumThreads(num_threads);
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(TinyDataOptions());
  auto db = benchmark::BenchmarkDatabase::Load(out.cluster.get(), ds,
                                               TinyLoadOptions());
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  out.db = std::move(*db);
  return out;
}

/// Order-preserving exact rendering of a result set. Doubles print with 17
/// significant digits (round-trip exact); rasters by their dimensions.
std::vector<std::string> RenderRows(const TupleVec& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (const Value& v : t.values) {
      switch (v.type()) {
        case ValueType::kRaster: {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "raster[%ux%u]",
                        v.AsRaster()->height(), v.AsRaster()->width());
          s += buf;
          break;
        }
        case ValueType::kDouble: {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
          s += buf;
          break;
        }
        default:
          s += v.ToString();
      }
      s += "|";
    }
    out.push_back(std::move(s));
  }
  return out;
}

class ThreadCountDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountDeterminismTest, ModeledTimeAndRowsBitIdentical) {
  const int query = GetParam();
  LoadedDb serial = LoadTinyDb(4, /*num_threads=*/1);
  LoadedDb threaded = LoadTinyDb(4, /*num_threads=*/8);
  auto r1 = benchmark::RunQueryByNumber(serial.db.get(), query);
  auto r8 = benchmark::RunQueryByNumber(threaded.db.get(), query);
  ASSERT_TRUE(r1.ok()) << "1-thread: " << r1.status().ToString();
  ASSERT_TRUE(r8.ok()) << "8-thread: " << r8.status().ToString();
  // Bit-identical modeled time, per phase and in total.
  EXPECT_EQ(r1->seconds, r8->seconds) << "query " << query;
  ASSERT_EQ(r1->phases.size(), r8->phases.size());
  for (size_t p = 0; p < r1->phases.size(); ++p) {
    EXPECT_EQ(r1->phases[p].name, r8->phases[p].name);
    EXPECT_EQ(r1->phases[p].seconds, r8->phases[p].seconds)
        << "query " << query << " phase " << r1->phases[p].name;
    EXPECT_EQ(r1->phases[p].max_node_seconds, r8->phases[p].max_node_seconds);
    EXPECT_EQ(r1->phases[p].total_node_seconds,
              r8->phases[p].total_node_seconds);
  }
  // Identical tuples in identical order.
  EXPECT_EQ(RenderRows(r1->rows), RenderRows(r8->rows)) << "query " << query;
  // Identical buffer-pool traffic per node: the thread count must not
  // change what the query reads, prefetches, evicts, or writes back.
  for (int n = 0; n < serial.cluster->num_nodes(); ++n) {
    storage::BufferPool::Stats s1 = serial.cluster->node(n).pool()->stats();
    storage::BufferPool::Stats s8 = threaded.cluster->node(n).pool()->stats();
    EXPECT_EQ(s1.hits, s8.hits) << "query " << query << " node " << n;
    EXPECT_EQ(s1.misses, s8.misses) << "query " << query << " node " << n;
    EXPECT_EQ(s1.evictions, s8.evictions) << "query " << query << " node " << n;
    EXPECT_EQ(s1.dirty_writebacks, s8.dirty_writebacks)
        << "query " << query << " node " << n;
    EXPECT_EQ(s1.readahead_batches, s8.readahead_batches)
        << "query " << query << " node " << n;
    EXPECT_EQ(s1.readahead_pages, s8.readahead_pages)
        << "query " << query << " node " << n;
    EXPECT_EQ(s1.writeback_runs, s8.writeback_runs)
        << "query " << query << " node " << n;
    EXPECT_EQ(s1.writeback_pages, s8.writeback_pages)
        << "query " << query << " node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, ThreadCountDeterminismTest,
                         ::testing::Values(2, 5, 11, 12, 13));

// ---------- StoreResult round-robin placement ----------

TableDef PolyDef(const std::string& name) {
  TableDef def;
  def.name = name;
  def.schema = exec::Schema(
      {{"id", ValueType::kInt}, {"shape", ValueType::kPolygon}});
  def.partitioning = PartitioningKind::kRoundRobin;
  def.partition_column = 1;
  return def;
}

Tuple PolyTuple(int64_t id, double cx, double cy, double r) {
  std::vector<Point> ring = {Point{cx - r, cy - r}, Point{cx + r, cy - r},
                             Point{cx + r, cy + r}, Point{cx - r, cy + r}};
  return Tuple({Value(id), Value(Polygon(std::move(ring)))});
}

TEST(StoreResultTest, SkewedInputBalancesWithinOneAndChargesTransfer) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 512;
  Cluster cluster(4, copts);
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  // Heavily skewed input: 13 tuples on node 0, 5 on node 2, none elsewhere
  // (the shape a selective spatial predicate produces).
  PerNode input(4);
  int64_t id = 0;
  for (int i = 0; i < 13; ++i) input[0].push_back(PolyTuple(id++, i, 0, 0.4));
  for (int i = 0; i < 5; ++i) input[2].push_back(PolyTuple(id++, i, 5, 0.4));
  auto stored = core::StoreResult(&coord, input, PolyDef("balanced"));
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_EQ((*stored)->num_rows(), 18);
  // Round-robin over the flattened result: fragment cardinalities within 1.
  int64_t min_rows = std::numeric_limits<int64_t>::max(), max_rows = 0;
  for (int n = 0; n < 4; ++n) {
    int64_t rows = (*stored)->fragment(n).num_rows();
    min_rows = std::min(min_rows, rows);
    max_rows = std::max(max_rows, rows);
  }
  EXPECT_LE(max_rows - min_rows, 1) << "min " << min_rows << " max "
                                    << max_rows;
  EXPECT_GE(min_rows, 4);
  // Tuples left their origin nodes, so transfers were charged.
  int64_t net_bytes = 0;
  for (int n = 0; n < 4; ++n) {
    net_bytes += cluster.node(n).clock()->total_usage().net_bytes;
  }
  EXPECT_GT(net_bytes, 0);
  // Nothing lost or duplicated.
  std::multiset<int64_t> seen;
  for (int n = 0; n < 4; ++n) {
    auto frag = (*stored)->ScanFragment(&cluster, n, true);
    ASSERT_TRUE(frag.ok());
    for (const Tuple& t : *frag) seen.insert(t.at(0).AsInt());
  }
  EXPECT_EQ(seen.size(), 18u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 17);
}

// ---------- Cost-charge regressions ----------

TEST(IndexRangeChargeTest, EmptyRangeChargesProbeOnly) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 512;
  Cluster cluster(1, copts);
  TupleVec rows;
  for (int64_t i = 0; i < 200; ++i) rows.push_back(PolyTuple(i, i, 0, 0.4));
  TableDef def = PolyDef("indexed");
  def.indexes = {catalog::IndexDef{"id_idx", 0, /*spatial=*/false}};
  auto table = ParallelTable::Load(&cluster, def, rows);
  ASSERT_TRUE(table.ok());
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  auto out = core::ParallelIndexSelectIntRange(&coord, **table, 0, 1000, 2000);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE((*out)[0].empty());
  // An empty range pays the B+-tree descent and not a single leaf or heap
  // page beyond it.
  auto it = (*table)->fragment(0).int_indexes.find(0);
  ASSERT_NE(it, (*table)->fragment(0).int_indexes.end());
  const int64_t height = static_cast<int64_t>(it->second.height());
  const sim::ResourceUsage usage = cluster.node(0).clock()->total_usage();
  EXPECT_EQ(usage.disk_bytes_read,
            height * static_cast<int64_t>(storage::kPageSize));
  EXPECT_EQ(usage.disk_seeks, height);
}

TEST(SpatialSelectReplicaTest, ReplicasAreNotFetched) {
  // Every polygon spans the whole universe, so on a 2-node spatial table
  // each tuple is stored twice (one primary + one replica). The select
  // must test the primary flag *before* fetching, so the total fetch CPU
  // equals the single-node (replica-free) run — not double it.
  const Box universe(0, 0, 100, 100);
  auto build = [&](int nodes) {
    Cluster::Options copts;
    copts.buffer_pool_frames = 512;
    auto cluster = std::make_unique<Cluster>(nodes, copts);
    TupleVec rows;
    for (int64_t i = 0; i < 50; ++i) {
      rows.push_back(PolyTuple(i, 50, 50, 49.0));  // spans every tile
    }
    TableDef def = PolyDef("spatial");
    def.partitioning = PartitioningKind::kSpatial;
    def.universe = universe;
    def.indexes = {catalog::IndexDef{"shape_idx", 1, /*spatial=*/true}};
    auto table =
        ParallelTable::Load(cluster.get(), def, rows, /*tiles_per_axis=*/4);
    EXPECT_TRUE(table.ok());
    return std::make_pair(std::move(cluster), std::move(*table));
  };
  auto [cluster1, table1] = build(1);
  auto [cluster2, table2] = build(2);
  ASSERT_EQ(table1->num_stored(), 50);
  ASSERT_EQ(table2->num_stored(), 100);  // fully replicated
  ASSERT_EQ(table2->num_rows(), 50);

  auto run = [&](Cluster* cluster, const ParallelTable& table) {
    QueryCoordinator coord(cluster);
    EXPECT_TRUE(coord.BeginQuery().ok());
    auto out = core::ParallelSpatialIndexSelect(&coord, table, universe,
                                                nullptr);
    EXPECT_TRUE(out.ok());
    size_t total_rows = 0;
    double cpu = 0;
    for (const TupleVec& v : *out) total_rows += v.size();
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      cpu += cluster->node(n).clock()->total_usage().cpu_ops;
    }
    EXPECT_EQ(total_rows, 50u);  // primaries only, each exactly once
    return cpu;
  };
  const double cpu1 = run(cluster1.get(), *table1);
  const double cpu2 = run(cluster2.get(), *table2);
  // The only CPU in this phase is per-fetched-row decode cost, and the
  // encoded records are identical on both clusters — so fetching primaries
  // only makes the totals equal. Fetching replicas would double cpu2.
  EXPECT_DOUBLE_EQ(cpu1, cpu2);
}

}  // namespace
}  // namespace paradise
