#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/date.h"
#include "common/rng.h"
#include "common/status.h"

namespace paradise {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: thing");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  StatusOr<int> bad(Status::Internal("boom"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyPayloads) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  PARADISE_ASSIGN_OR_RETURN(int h, Half(x));
  PARADISE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto q = Quarter(12);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 3);
  EXPECT_FALSE(Quarter(10).ok());  // 10/2 = 5 is odd
}

TEST(DateTest, RoundTripYmd) {
  for (int year : {1970, 1986, 1988, 1996, 2000, 2026}) {
    for (int month : {1, 2, 6, 12}) {
      for (int day : {1, 15, 28}) {
        Date d = Date::FromYmd(year, month, day);
        Date::Ymd ymd = d.ToYmd();
        EXPECT_EQ(ymd.year, year);
        EXPECT_EQ(ymd.month, month);
        EXPECT_EQ(ymd.day, day);
      }
    }
  }
}

TEST(DateTest, EpochAndArithmetic) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 1).days_since_epoch(), 0);
  EXPECT_EQ(Date::FromYmd(1970, 1, 2).days_since_epoch(), 1);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31).days_since_epoch(), -1);
  Date d = Date::FromYmd(1988, 2, 28);
  EXPECT_EQ(d.AddDays(1).ToString(), "1988-02-29");  // leap year
  EXPECT_EQ(d.AddDays(2).ToString(), "1988-03-01");
  EXPECT_EQ(Date::FromYmd(1900, 2, 28).AddDays(1).ToString(),
            "1900-03-01");  // 1900 was not a leap year
}

TEST(DateTest, ParseAndToString) {
  auto d = Date::Parse("1988-04-01");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToString(), "1988-04-01");
  EXPECT_EQ(d->year(), 1988);
  EXPECT_FALSE(Date::Parse("not-a-date").ok());
  EXPECT_FALSE(Date::Parse("1988-13-01").ok());
  EXPECT_FALSE(Date::Parse("1988-02-40").ok());
}

TEST(DateTest, Ordering) {
  EXPECT_LT(Date::FromYmd(1988, 4, 1), Date::FromYmd(1988, 4, 2));
  EXPECT_LT(Date::FromYmd(1987, 12, 31), Date::FromYmd(1988, 1, 1));
  EXPECT_EQ(Date::FromYmd(1988, 4, 1), Date::FromYmd(1988, 4, 1));
}

TEST(RngTest, DeterministicAndSeedSensitive) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
    EXPECT_LT(rng.NextUint(10), 10u);
  }
}

TEST(RngTest, RoughUniformity) {
  Rng rng(99);
  int buckets[10] = {0};
  for (int i = 0; i < 100000; ++i) {
    ++buckets[rng.NextUint(10)];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 9000);
    EXPECT_LT(b, 11000);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteBuffer buf;
  ByteWriter w(&buf);
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-77);
  w.PutI64(-1LL << 40);
  w.PutDouble(3.25);
  w.PutString("paradise");
  w.PutBytes("xy", 2);

  ByteReader r(buf);
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU16(), 0x1234);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI32(), -77);
  EXPECT_EQ(r.GetI64(), -1LL << 40);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.25);
  EXPECT_EQ(r.GetString(), "paradise");
  ByteBuffer blob = r.GetBlob();
  EXPECT_EQ(std::string(blob.begin(), blob.end()), "xy");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, PositionTracking) {
  ByteBuffer buf;
  ByteWriter w(&buf);
  w.PutU32(1);
  w.PutU32(2);
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  r.GetU32();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace paradise
