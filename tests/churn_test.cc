// Elastic cluster membership: planned join/drain/remove/reinstate, the
// throttled online tile-migration protocol, epoch pinning, and the
// fault-composed crash paths.
//
// The acceptance contract under churn: every query keeps returning the
// same rows as the churn-free run, every tile stays exactly-once owned
// (ValidateOwnership audits flags against the grid and the logical
// cardinality against the load), cached results over a migrated table are
// invalidated, and the whole protocol is bit-identical at any
// PARADISE_THREADS.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "benchmark/database.h"
#include "benchmark/queries.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/cluster.h"
#include "core/parallel_ops.h"
#include "core/coordinator.h"
#include "core/spatial_grid.h"
#include "core/table.h"
#include "core/topology.h"
#include "datagen/datagen.h"
#include "sim/fault_injector.h"

namespace paradise {
namespace {

using core::Cluster;
using core::NodeTopologyState;
using core::ParallelTable;
using core::QueryCoordinator;
using core::SpatialGrid;
using core::TopologyManager;
using core::WorkloadSession;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;
using sim::FaultInjector;

#define ASSERT_OK(expr)                            \
  do {                                             \
    Status _s = (expr);                            \
    ASSERT_TRUE(_s.ok()) << _s.ToString();         \
  } while (0)

#define EXPECT_OK(expr)                            \
  do {                                             \
    Status _s = (expr);                            \
    EXPECT_TRUE(_s.ok()) << _s.ToString();         \
  } while (0)

benchmark::LoadOptions TinyLoadOptions() {
  benchmark::LoadOptions lopts;
  lopts.tiles_per_axis = 20;
  return lopts;
}

datagen::DataSetOptions TinyDataOptions() {
  datagen::DataSetOptions o;
  o.size_fraction = 1.0 / 1000;
  o.num_dates = 8;
  o.base_raster_size = 96;
  return o;
}

struct LoadedDb {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<benchmark::BenchmarkDatabase> db;
};

LoadedDb LoadTinyDb(int nodes, int num_threads) {
  LoadedDb out;
  Cluster::Options copts;
  copts.buffer_pool_frames = 2048;
  out.cluster = std::make_unique<Cluster>(nodes, copts);
  out.cluster->SetNumThreads(num_threads);
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(TinyDataOptions());
  auto db = benchmark::BenchmarkDatabase::Load(out.cluster.get(), ds,
                                               TinyLoadOptions());
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  out.db = std::move(*db);
  return out;
}

std::vector<std::string> RenderRowsSorted(const TupleVec& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (const Value& v : t.values) {
      if (v.type() == ValueType::kRaster) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "raster[%ux%u]",
                      v.AsRaster()->height(), v.AsRaster()->width());
        s += buf;
      } else {
        s += v.ToString();
      }
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct QueryRun {
  double seconds = 0.0;
  std::vector<std::string> rows;
};

QueryRun RunQ(LoadedDb* loaded, int query) {
  auto r = benchmark::RunQueryByNumber(loaded->db.get(), query);
  EXPECT_TRUE(r.ok()) << "query " << query << ": " << r.status().ToString();
  QueryRun out;
  if (r.ok()) {
    out.seconds = r->seconds;
    out.rows = RenderRowsSorted(r->rows);
  }
  return out;
}

/// Exactly-once audit over every benchmark table.
void ValidateAll(LoadedDb* loaded) {
  ParallelTable* tables[] = {&loaded->db->places(), &loaded->db->roads(),
                             &loaded->db->drainage(),
                             &loaded->db->land_cover(), &loaded->db->raster()};
  for (ParallelTable* t : tables) {
    Status s = t->ValidateOwnership(loaded->cluster.get());
    EXPECT_TRUE(s.ok()) << t->def().name << ": " << s.ToString();
  }
}

int TilesOwnedBy(const SpatialGrid& grid, uint32_t node) {
  int owned = 0;
  for (uint32_t t = 0; t < grid.num_tiles(); ++t) {
    if (grid.NodeOfTile(t) == node) ++owned;
  }
  return owned;
}

// ---------- Planned membership changes ----------

TEST(ChurnTopologyTest, AddNodeRebalancesAndPreservesAnswers) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  const QueryRun base = RunQ(&loaded, 13);
  const uint64_t epoch0 = topo->epoch();

  const int id = topo->AddNode();
  EXPECT_EQ(id, 4);
  EXPECT_EQ(loaded.cluster->num_nodes(), 5);
  EXPECT_GT(topo->epoch(), epoch0);
  // Fair share of the 20x20 grid over 5 active nodes.
  EXPECT_EQ(topo->pending_moves(), 80);
  ASSERT_OK(topo->DrainMigration(0.0));
  EXPECT_TRUE(topo->migration_idle());

  const SpatialGrid& grid = loaded.db->places().grid();
  EXPECT_EQ(TilesOwnedBy(grid, 4), 80);
  EXPECT_EQ(grid.epoch(), topo->epoch());
  EXPECT_EQ(topo->stats().tiles_moved, 80);
  EXPECT_GT(topo->stats().migration_bytes, 0);

  ValidateAll(&loaded);
  const QueryRun after = RunQ(&loaded, 13);
  EXPECT_EQ(after.rows, base.rows);
}

TEST(ChurnTopologyTest, DrainRemoveReinstateRoundTrip) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  const QueryRun base = RunQ(&loaded, 13);
  const SpatialGrid& grid = loaded.db->places().grid();
  const int owned0 = TilesOwnedBy(grid, 1);
  ASSERT_GT(owned0, 0);

  topo->DrainNode(1);
  EXPECT_EQ(topo->node_state(1), NodeTopologyState::kDraining);
  // Non-spatial tables (raster) stripe off the draining node.
  EXPECT_GT(topo->stats().stripe_moves, 0);
  ASSERT_OK(topo->DrainMigration(0.0));
  EXPECT_EQ(TilesOwnedBy(grid, 1), 0);

  topo->RemoveNode(1);
  EXPECT_EQ(topo->node_state(1), NodeTopologyState::kRemoved);
  EXPECT_FALSE(loaded.cluster->alive(1));
  EXPECT_EQ(loaded.cluster->num_alive(), 3);
  ValidateAll(&loaded);
  const QueryRun degraded = RunQ(&loaded, 13);
  EXPECT_EQ(degraded.rows, base.rows);

  topo->ReinstateNode(1);
  EXPECT_EQ(topo->node_state(1), NodeTopologyState::kActive);
  EXPECT_TRUE(loaded.cluster->alive(1));
  EXPECT_GT(topo->pending_moves(), 0);
  ASSERT_OK(topo->DrainMigration(1.0));

  // Every tile whose base owner node 1 is has moved home, so no override
  // remains (a full rolling-restart round trip restores the layout).
  EXPECT_EQ(TilesOwnedBy(grid, 1), owned0);
  EXPECT_TRUE(grid.reassigned_tiles().empty());
  ValidateAll(&loaded);
  const QueryRun restored = RunQ(&loaded, 13);
  EXPECT_EQ(restored.rows, base.rows);
}

TEST(ChurnTopologyTest, ShedHotTilesRelievesSourceAndPreservesAnswers) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  const QueryRun base = RunQ(&loaded, 13);
  const SpatialGrid& grid = loaded.db->places().grid();
  const int owned0 = TilesOwnedBy(grid, 0);

  const int planned = topo->ShedHotTiles(/*source=*/0, /*k=*/4);
  EXPECT_GT(planned, 0);
  EXPECT_LE(planned, 4);
  EXPECT_EQ(topo->pending_moves(), planned);
  ASSERT_OK(topo->DrainMigration(0.0));

  EXPECT_EQ(TilesOwnedBy(grid, 0), owned0 - planned);
  ValidateAll(&loaded);
  const QueryRun after = RunQ(&loaded, 13);
  EXPECT_EQ(after.rows, base.rows);
}

// ---------- Epoch pinning ----------

TEST(ChurnEpochTest, PinnedReaderDefersPhysicalGarbageCollection) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();

  // An admitted query pins the epoch it started under.
  QueryCoordinator coord(loaded.cluster.get());
  ASSERT_TRUE(coord.BeginQuery().ok());
  ASSERT_GT(loaded.db->roads().fragment(1).num_live(), 0);

  topo->DrainNode(1);
  ASSERT_OK(topo->DrainMigration(0.0));
  EXPECT_TRUE(topo->migration_idle());
  // Cutover happened (ownership flipped) but the orphaned source rows
  // survive physically: the pinned reader may still resolve them.
  EXPECT_EQ(topo->stats().gc_rows, 0);
  EXPECT_GT(loaded.db->roads().fragment(1).num_live(), 0);

  coord.EndQuery();  // releases the pin
  ASSERT_OK(topo->PumpMigration(1.0));
  EXPECT_GT(topo->stats().gc_rows, 0);
  EXPECT_EQ(loaded.db->roads().fragment(1).num_live(), 0);
  ValidateAll(&loaded);
}

// ---------- Crash-composed migration (exactly-once ownership) ----------

TEST(ChurnCrashTest, SourceCrashMidMigrationLeavesTilesExactlyOnceOwned) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  const QueryRun base = RunQ(&loaded, 13);

  FaultInjector inj(/*seed=*/5);
  // The first executed move's source dies permanently after the staged
  // runs land at the target but before cutover.
  inj.ScheduleMigrationCrash(/*ordinal=*/0, /*target_side=*/false,
                             /*permanent=*/true);
  loaded.cluster->ResetForQuery();  // loaded data durable before any crash
  loaded.cluster->SetFaultInjector(&inj);

  topo->AddNode();
  ASSERT_OK(topo->DrainMigration(0.0));
  EXPECT_EQ(inj.stats().migration_crashes, 1);
  EXPECT_GE(topo->stats().rollbacks, 1);
  EXPECT_EQ(loaded.cluster->num_alive(), 4);  // 5 nodes, one lost

  int dead = -1;
  for (int n = 0; n < loaded.cluster->num_nodes(); ++n) {
    if (!loaded.cluster->alive(n)) dead = n;
  }
  ASSERT_GE(dead, 0);
  EXPECT_EQ(topo->node_state(dead), NodeTopologyState::kDead);

  ValidateAll(&loaded);
  const QueryRun after = RunQ(&loaded, 13);
  EXPECT_EQ(after.rows, base.rows);
  loaded.cluster->SetFaultInjector(nullptr);
}

TEST(ChurnCrashTest, TargetCrashMidMigrationLeavesTilesExactlyOnceOwned) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  const QueryRun base = RunQ(&loaded, 13);

  FaultInjector inj(/*seed=*/6);
  inj.ScheduleMigrationCrash(/*ordinal=*/0, /*target_side=*/true,
                             /*permanent=*/true);
  loaded.cluster->ResetForQuery();
  loaded.cluster->SetFaultInjector(&inj);

  topo->AddNode();  // the crash victim is the joining node itself
  ASSERT_OK(topo->DrainMigration(0.0));
  EXPECT_EQ(inj.stats().migration_crashes, 1);
  EXPECT_FALSE(loaded.cluster->alive(4));
  EXPECT_EQ(topo->node_state(4), NodeTopologyState::kDead);

  ValidateAll(&loaded);
  const QueryRun after = RunQ(&loaded, 13);
  EXPECT_EQ(after.rows, base.rows);
  loaded.cluster->SetFaultInjector(nullptr);
}

TEST(ChurnCrashTest, TransientTargetCrashRollsBackAndResumes) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  const QueryRun base = RunQ(&loaded, 13);

  FaultInjector inj(/*seed=*/7);
  inj.ScheduleMigrationCrash(/*ordinal=*/0, /*target_side=*/true,
                             /*permanent=*/false);
  loaded.cluster->ResetForQuery();
  loaded.cluster->SetFaultInjector(&inj);

  topo->AddNode();
  ASSERT_OK(topo->DrainMigration(0.0));
  EXPECT_EQ(inj.stats().migration_crashes, 1);
  EXPECT_GE(topo->stats().rollbacks, 1);
  EXPECT_GE(topo->stats().resumed_moves, 1);
  // The node recovered and the requeued move completed: full fair share.
  EXPECT_EQ(loaded.cluster->num_alive(), 5);
  EXPECT_EQ(topo->stats().tiles_moved, 80);
  EXPECT_EQ(TilesOwnedBy(loaded.db->places().grid(), 4), 80);

  ValidateAll(&loaded);
  const QueryRun after = RunQ(&loaded, 13);
  EXPECT_EQ(after.rows, base.rows);
  loaded.cluster->SetFaultInjector(nullptr);
}

// ---------- Result-cache correctness under churn ----------

/// Single-stream workload driver: admit, run, publish, finish — the
/// stream_main protocol of benchmark::RunWorkload, hand-rolled so the
/// test can interleave migration pumps at quiescent points.
struct CacheDriver {
  LoadedDb* loaded;
  WorkloadSession session;
  double now = 0.0;

  explicit CacheDriver(LoadedDb* l)
      : loaded(l), session(l->cluster.get(), MakeOptions()) {
    loaded->cluster->set_workload_session(&session);
    session.BindStream(0);
  }
  ~CacheDriver() {
    session.EndStream();
    loaded->cluster->set_workload_session(nullptr);
  }

  static WorkloadSession::Options MakeOptions() {
    WorkloadSession::Options o;
    o.num_streams = 1;
    return o;
  }

  std::vector<std::string> RunAndPublish(int query, const std::string& key,
                                         std::vector<std::string> deps) {
    WorkloadSession::Ticket* t = session.AwaitAdmission(now);
    auto r = benchmark::RunQueryByNumber(loaded->db.get(), query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    now = t->admit_seconds + (r.ok() ? r->seconds : 0.0);
    if (r.ok()) {
      TupleVec copy = r->rows;
      session.PublishResult(key, std::move(deps), std::move(copy), now);
    }
    session.FinishQuery(r.ok() ? r->seconds : 0.0);
    return r.ok() ? RenderRowsSorted(r->rows) : std::vector<std::string>{};
  }

  bool Lookup(const std::string& key) {
    session.AwaitAdmission(now);
    TupleVec rows;
    double serve = 0.0;
    const bool hit = session.LookupCachedResult(key, &rows, &serve);
    session.FinishQuery(serve);
    now += serve;
    return hit;
  }
};

TEST(ChurnCacheTest, TileMigrationInvalidatesCachedResults) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  CacheDriver driver(&loaded);

  const std::vector<std::string> q5_rows =
      driver.RunAndPublish(5, "q5:phoenix", {"populatedPlaces"});
  driver.RunAndPublish(7, "q7:circle-area", {"landCover"});
  EXPECT_TRUE(driver.Lookup("q5:phoenix"));
  EXPECT_TRUE(driver.Lookup("q7:circle-area"));

  // Migrate every tile off node 1 between queries (the session is
  // quiescent). Tiles of both input tables move, so both entries die.
  topo->DrainNode(1);
  ASSERT_OK(topo->DrainMigration(driver.now));
  EXPECT_GT(topo->stats().cache_invalidations, 0);
  EXPECT_FALSE(driver.Lookup("q5:phoenix"));
  EXPECT_FALSE(driver.Lookup("q7:circle-area"));

  // Re-running against the migrated layout still gives the same answer.
  const std::vector<std::string> q5_again =
      driver.RunAndPublish(5, "q5:phoenix", {"populatedPlaces"});
  EXPECT_EQ(q5_again, q5_rows);
}

TEST(ChurnCacheTest, CrashDuringMigrationInvalidatesCachedResults) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  FaultInjector inj(/*seed=*/11);
  {
    CacheDriver driver(&loaded);
    const std::vector<std::string> q5_rows =
        driver.RunAndPublish(5, "q5:phoenix", {"populatedPlaces"});
    driver.RunAndPublish(7, "q7:circle-area", {"landCover"});
    EXPECT_TRUE(driver.Lookup("q5:phoenix"));
    EXPECT_TRUE(driver.Lookup("q7:circle-area"));

    // The draining node dies permanently mid-transfer; the resulting loss
    // migration reshapes every table, killing both entries.
    inj.ScheduleMigrationCrash(/*ordinal=*/0, /*target_side=*/false,
                               /*permanent=*/true);
    loaded.cluster->ResetForQuery();
    loaded.cluster->SetFaultInjector(&inj);
    topo->DrainNode(1);
    ASSERT_OK(topo->DrainMigration(driver.now));
    EXPECT_EQ(inj.stats().migration_crashes, 1);
    EXPECT_FALSE(loaded.cluster->alive(1));

    EXPECT_FALSE(driver.Lookup("q5:phoenix"));
    EXPECT_FALSE(driver.Lookup("q7:circle-area"));
    // Degraded (N-1) but still correct.
    const std::vector<std::string> q5_again =
        driver.RunAndPublish(5, "q5:phoenix", {"populatedPlaces"});
    EXPECT_EQ(q5_again, q5_rows);
  }
  ValidateAll(&loaded);
  loaded.cluster->SetFaultInjector(nullptr);
}

// ---------- Routing follows the canonical grid ----------

TEST(ChurnRoutingTest, RoutingGridCarriesMigratedAssignments) {
  LoadedDb loaded = LoadTinyDb(4, 1);
  TopologyManager* topo = loaded.cluster->topology();
  topo->DrainNode(2);
  ASSERT_OK(topo->DrainMigration(0.0));

  const SpatialGrid& canon = loaded.db->places().grid();
  const SpatialGrid routing = topo->MakeRoutingGrid(
      loaded.db->universe(), canon.tiles_per_axis());
  EXPECT_EQ(routing.epoch(), topo->epoch());
  for (uint32_t t = 0; t < canon.num_tiles(); ++t) {
    EXPECT_EQ(routing.NodeOfTile(t), canon.NodeOfTile(t)) << "tile " << t;
  }

  // A different geometry falls back to the base hash (no override carry).
  const SpatialGrid other = topo->MakeRoutingGrid(loaded.db->universe(), 10);
  EXPECT_EQ(other.num_tiles(), 100u);
  EXPECT_TRUE(other.reassigned_tiles().empty());
}

// ---------- Two-layer tables under churn ----------

TEST(ChurnTwoLayerTest, MigratingTwoLayerTilesMidQueryPreservesJoin) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 2048;
  Cluster cluster(4, copts);
  core::TopologyManager* topo = cluster.topology();

  Rng rng(31);
  const geom::Box universe(-50, -50, 50, 50);
  TupleVec rows;
  for (int i = 0; i < 160; ++i) {
    double cx = rng.NextDouble(-45, 45), cy = rng.NextDouble(-45, 45);
    double r = 2 + 6 * rng.NextDouble();
    rows.push_back(Tuple(
        {Value(int64_t{i}),
         Value(geom::Polygon({{cx - r, cy - r}, {cx + r, cy - r},
                              {cx + r, cy + r}, {cx - r, cy + r}}))}));
  }
  catalog::TableDef def;
  def.name = "t2l";
  def.schema = exec::Schema(
      {{"id", ValueType::kInt}, {"shape", ValueType::kPolygon}});
  def.partitioning = catalog::PartitioningKind::kTwoLayer;
  def.partition_column = 1;
  def.universe = universe;
  auto table = ParallelTable::Load(&cluster, def, rows, /*tiles_per_axis=*/10);
  ASSERT_TRUE(table.ok());
  topo->RegisterTable(table->get());

  // Self-join through a coordinator; keys must never change under churn.
  auto run_join = [&](QueryCoordinator* coord) {
    auto lper = core::ParallelScanAll(coord, **table, nullptr);
    auto rper = core::ParallelScanAll(coord, **table, nullptr);
    EXPECT_TRUE(lper.ok() && rper.ok());
    core::ParallelSpatialJoinOptions opts;
    opts.two_layer = true;
    opts.left_predeclustered = true;
    opts.right_predeclustered = true;
    opts.routing_grid = &(*table)->grid();
    opts.tiles_per_axis = (*table)->grid().tiles_per_axis();
    auto joined =
        core::ParallelSpatialJoin(coord, *lper, 1, *rper, 1, universe, opts);
    EXPECT_TRUE(joined.ok()) << joined.status().ToString();
    std::vector<std::pair<int64_t, int64_t>> keys;
    for (const TupleVec& v : *joined) {
      for (const Tuple& t : v) {
        keys.emplace_back(t.at(0).AsInt(), t.at(2).AsInt());
      }
    }
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
        << "duplicate pair";
    EXPECT_EQ(coord->pbsm_stats().dedup_tests, 0);
    EXPECT_EQ(coord->pbsm_stats().dedup_dropped, 0);
    return keys;
  };

  QueryCoordinator before(&cluster);
  ASSERT_TRUE(before.BeginQuery().ok());
  const auto base = run_join(&before);
  before.EndQuery();
  EXPECT_FALSE(base.empty());

  // A reader admitted *before* the migration pins its epoch; tiles of the
  // two-layer table then migrate off node 1 (stage + cutover) while the
  // query is open. The query must still see every pair exactly once with
  // the dedup branch never running — the class flags at both the new
  // owner (refreshed at cutover) and the orphaned source (parked) stay
  // coherent with the routing grid.
  QueryCoordinator pinned(&cluster);
  ASSERT_TRUE(pinned.BeginQuery().ok());
  topo->DrainNode(1);
  ASSERT_OK(topo->DrainMigration(0.0));
  EXPECT_GT(topo->stats().tiles_moved, 0);
  EXPECT_EQ(run_join(&pinned), base);
  pinned.EndQuery();

  // After the pin releases, GC reclaims the orphans; the audit and the
  // join answer both hold.
  ASSERT_OK(topo->PumpMigration(1.0));
  EXPECT_OK((*table)->ValidateOwnership(&cluster));
  QueryCoordinator after(&cluster);
  ASSERT_TRUE(after.BeginQuery().ok());
  EXPECT_EQ(run_join(&after), base);
  after.EndQuery();
}

// ---------- Determinism ----------

struct ScenarioDigest {
  double q13_initial = 0.0;
  double q13_scaled = 0.0;
  double q13_final = 0.0;
  std::vector<std::string> rows_final;
  int64_t migration_bytes = 0;
  int64_t rows_shipped = 0;
  int64_t gc_rows = 0;
  int64_t tiles_moved = 0;

  bool operator==(const ScenarioDigest& o) const {
    return q13_initial == o.q13_initial && q13_scaled == o.q13_scaled &&
           q13_final == o.q13_final && rows_final == o.rows_final &&
           migration_bytes == o.migration_bytes &&
           rows_shipped == o.rows_shipped && gc_rows == o.gc_rows &&
           tiles_moved == o.tiles_moved;
  }
};

ScenarioDigest RunChurnScenario(int num_threads) {
  LoadedDb loaded = LoadTinyDb(4, num_threads);
  TopologyManager* topo = loaded.cluster->topology();
  FaultInjector inj(/*seed=*/77);
  // One transient target-side crash mid-scale-out, for coverage of the
  // rollback/resume path inside the deterministic digest.
  inj.ScheduleMigrationCrash(/*ordinal=*/2, /*target_side=*/true,
                             /*permanent=*/false);
  loaded.cluster->ResetForQuery();
  loaded.cluster->SetFaultInjector(&inj);

  ScenarioDigest d;
  d.q13_initial = RunQ(&loaded, 13).seconds;
  topo->AddNode();
  EXPECT_OK(topo->DrainMigration(0.0));
  d.q13_scaled = RunQ(&loaded, 13).seconds;
  topo->DrainNode(0);
  EXPECT_OK(topo->DrainMigration(1.0));
  topo->RemoveNode(0);
  topo->ReinstateNode(0);
  EXPECT_OK(topo->DrainMigration(2.0));
  const QueryRun final_run = RunQ(&loaded, 13);
  d.q13_final = final_run.seconds;
  d.rows_final = final_run.rows;
  d.migration_bytes = topo->stats().migration_bytes;
  d.rows_shipped = topo->stats().rows_shipped;
  d.gc_rows = topo->stats().gc_rows;
  d.tiles_moved = topo->stats().tiles_moved;
  ValidateAll(&loaded);
  loaded.cluster->SetFaultInjector(nullptr);
  return d;
}

TEST(ChurnDeterminismTest, ScenarioBitIdenticalAcrossThreadCounts) {
  const ScenarioDigest one = RunChurnScenario(1);
  const ScenarioDigest eight = RunChurnScenario(8);
  EXPECT_TRUE(one == eight)
      << "modeled churn scenario diverged between 1 and 8 threads: "
      << one.q13_initial << "/" << one.q13_scaled << "/" << one.q13_final
      << " vs " << eight.q13_initial << "/" << eight.q13_scaled << "/"
      << eight.q13_final;
  EXPECT_GT(one.migration_bytes, 0);
  EXPECT_GT(one.gc_rows, 0);
}

}  // namespace
}  // namespace paradise
