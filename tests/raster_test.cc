#include <gtest/gtest.h>

#include <cstring>

#include "array/raster.h"
#include "common/rng.h"

namespace paradise::array {
namespace {

using geom::Box;
using geom::Point;
using geom::Polygon;

class RasterTest : public ::testing::Test {
 protected:
  RasterTest() : vol_(0, &clock_), pool_(4096), store_(&pool_, &vol_) {
    pool_.AttachVolume(&vol_);
  }

  Raster MakeGradientRaster(uint32_t h, uint32_t w, const Box& geo,
                            size_t tile_bytes = 8192) {
    std::vector<uint16_t> px(static_cast<size_t>(h) * w);
    for (uint32_t r = 0; r < h; ++r) {
      for (uint32_t c = 0; c < w; ++c) {
        px[static_cast<size_t>(r) * w + c] = static_cast<uint16_t>(r * 100 + c);
      }
    }
    auto raster = MakeRaster(px, h, w, geo, &store_, &clock_, tile_bytes);
    EXPECT_TRUE(raster.ok());
    return *raster;
  }

  sim::NodeClock clock_;
  storage::DiskVolume vol_;
  storage::BufferPool pool_;
  storage::LargeObjectStore store_;
};

TEST_F(RasterTest, PixelGeoMapping) {
  Raster r = MakeGradientRaster(100, 200, Box(0, 0, 200, 100));
  EXPECT_DOUBLE_EQ(r.PixelWidth(), 1.0);
  EXPECT_DOUBLE_EQ(r.PixelHeight(), 1.0);
  // Row 0 is the top (max y).
  Point p = r.PixelCenter(0, 0);
  EXPECT_DOUBLE_EQ(p.x, 0.5);
  EXPECT_DOUBLE_EQ(p.y, 99.5);
  Raster::PixelRegion region = r.RegionForBox(Box(10, 10, 20, 30));
  EXPECT_EQ(region.col_lo, 10u);
  EXPECT_EQ(region.col_hi, 20u);
  EXPECT_EQ(region.row_lo, 70u);  // y in [10,30] -> rows [70, 90)
  EXPECT_EQ(region.row_hi, 90u);
}

TEST_F(RasterTest, RegionForDisjointBoxIsEmpty) {
  Raster r = MakeGradientRaster(50, 50, Box(0, 0, 50, 50));
  EXPECT_TRUE(r.RegionForBox(Box(100, 100, 120, 120)).empty());
}

TEST_F(RasterTest, ClipMasksOutsidePolygon) {
  Raster r = MakeGradientRaster(100, 100, Box(0, 0, 100, 100));
  // Triangle in the lower-left corner.
  Polygon tri({Point{0, 0}, Point{60, 0}, Point{0, 60}});
  LocalTileSource src(&store_, &clock_);
  auto clipped = ClipRaster(r, tri, &src, &store_, &clock_);
  ASSERT_TRUE(clipped.ok());
  // The clip covers the triangle's bounding box.
  EXPECT_EQ(clipped->width(), 60u);
  EXPECT_EQ(clipped->height(), 60u);
  auto bytes = ReadFull(clipped->handle, &src);
  ASSERT_TRUE(bytes.ok());
  const uint16_t* px = reinterpret_cast<const uint16_t*>(bytes->data());
  int inside = 0, outside = 0;
  for (uint32_t row = 0; row < 60; ++row) {
    for (uint32_t col = 0; col < 60; ++col) {
      uint16_t v = px[row * 60 + col];
      Point center = clipped->PixelCenter(row, col);
      if (tri.Contains(center)) {
        EXPECT_NE(v, Raster::kNoData);
        ++inside;
      } else {
        EXPECT_EQ(v, Raster::kNoData);
        ++outside;
      }
    }
  }
  EXPECT_GT(inside, 1000);
  EXPECT_GT(outside, 1000);
}

TEST_F(RasterTest, ClipPreservesPixelValues) {
  Raster r = MakeGradientRaster(80, 80, Box(0, 0, 80, 80));
  Polygon square({Point{10, 10}, Point{30, 10}, Point{30, 30}, Point{10, 30}});
  LocalTileSource src(&store_, &clock_);
  auto clipped = ClipRaster(r, square, &src, &store_, &clock_);
  ASSERT_TRUE(clipped.ok());
  auto bytes = ReadFull(clipped->handle, &src);
  ASSERT_TRUE(bytes.ok());
  const uint16_t* px = reinterpret_cast<const uint16_t*>(bytes->data());
  // Pixel (15, 15) in geo space = row 64, col 15 of the source.
  // In the clipped raster: geo (15.5, 64.5)...
  // Simply verify: every non-nodata pixel equals the source pixel at the
  // same geo location.
  for (uint32_t row = 0; row < clipped->height(); ++row) {
    for (uint32_t col = 0; col < clipped->width(); ++col) {
      uint16_t v = px[row * clipped->width() + col];
      if (v == Raster::kNoData) continue;
      Point center = clipped->PixelCenter(row, col);
      uint32_t src_row = static_cast<uint32_t>(80 - center.y);
      uint32_t src_col = static_cast<uint32_t>(center.x);
      EXPECT_EQ(v, static_cast<uint16_t>(src_row * 100 + src_col));
    }
  }
}

TEST_F(RasterTest, ClipMissReturnsNotFound) {
  Raster r = MakeGradientRaster(50, 50, Box(0, 0, 50, 50));
  Polygon far({Point{200, 200}, Point{210, 200}, Point{205, 210}});
  LocalTileSource src(&store_, &clock_);
  EXPECT_FALSE(ClipRaster(r, far, &src, &store_, &clock_).ok());
}

TEST_F(RasterTest, ClipReadsOnlyNeededTiles) {
  Raster r = MakeGradientRaster(256, 256, Box(0, 0, 256, 256), 8192);
  ASSERT_GT(r.handle.num_tiles(), 8u);
  // Small polygon in one corner.
  Polygon small({Point{1, 1}, Point{10, 1}, Point{10, 10}, Point{1, 10}});
  Raster::PixelRegion region = r.RegionForBox(small.Mbr());
  std::vector<uint32_t> needed =
      TilesForRegion(r.handle, {region.row_lo, region.col_lo},
                     {region.row_hi, region.col_hi});
  EXPECT_LT(needed.size(), r.handle.num_tiles() / 2);
}

TEST_F(RasterTest, LowerResAveragesBlocks) {
  // Constant blocks so averaging is exact.
  std::vector<uint16_t> px(64 * 64);
  for (uint32_t r = 0; r < 64; ++r) {
    for (uint32_t c = 0; c < 64; ++c) {
      px[r * 64 + c] = static_cast<uint16_t>(((r / 8) * 8 + (c / 8)) * 10);
    }
  }
  auto raster = MakeRaster(px, 64, 64, Box(0, 0, 64, 64), &store_, &clock_);
  ASSERT_TRUE(raster.ok());
  LocalTileSource src(&store_, &clock_);
  auto low = LowerRes(*raster, 8, &src, &store_, &clock_);
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->height(), 8u);
  EXPECT_EQ(low->width(), 8u);
  auto bytes = ReadFull(low->handle, &src);
  ASSERT_TRUE(bytes.ok());
  const uint16_t* lpx = reinterpret_cast<const uint16_t*>(bytes->data());
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 8; ++c) {
      EXPECT_EQ(lpx[r * 8 + c], (r * 8 + c) * 10);
    }
  }
}

TEST_F(RasterTest, AverageIgnoresNoData) {
  std::vector<uint16_t> px = {100, 200, Raster::kNoData, 300};
  auto raster = MakeRaster(px, 2, 2, Box(0, 0, 2, 2), &store_, &clock_);
  ASSERT_TRUE(raster.ok());
  LocalTileSource src(&store_, &clock_);
  auto avg = RasterAverage(*raster, &src, &clock_);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 200.0);
}

TEST_F(RasterTest, PixelAverageAcrossRasters) {
  std::vector<Raster> rasters;
  std::vector<TileSource*> sources;
  LocalTileSource src(&store_, &clock_);
  for (int i = 1; i <= 4; ++i) {
    std::vector<uint16_t> px(32 * 32, static_cast<uint16_t>(i * 100));
    auto r = MakeRaster(px, 32, 32, Box(0, 0, 32, 32), &store_, &clock_);
    ASSERT_TRUE(r.ok());
    rasters.push_back(*r);
    sources.push_back(&src);
  }
  auto avg = PixelAverage(rasters, sources, &store_, &clock_);
  ASSERT_TRUE(avg.ok());
  auto bytes = ReadFull(avg->handle, &src);
  ASSERT_TRUE(bytes.ok());
  const uint16_t* px = reinterpret_cast<const uint16_t*>(bytes->data());
  for (size_t i = 0; i < 32 * 32; ++i) EXPECT_EQ(px[i], 250);
}

TEST_F(RasterTest, SerializationRoundTrip) {
  Raster r = MakeGradientRaster(64, 48, Box(-10, -5, 10, 5));
  ByteBuffer buf;
  ByteWriter w(&buf);
  r.Serialize(&w);
  ByteReader reader(buf);
  Raster rt = Raster::Deserialize(&reader);
  EXPECT_EQ(rt.height(), 64u);
  EXPECT_EQ(rt.width(), 48u);
  EXPECT_EQ(rt.geo, r.geo);
  LocalTileSource src(&store_, &clock_);
  auto a = ReadFull(r.handle, &src);
  auto b = ReadFull(rt.handle, &src);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace paradise::array
