// Fault injection, failure recovery, and degraded-mode execution.
//
// Covers the failure semantics contract end to end: checksum detection of
// torn pages, bounded retry with modeled backoff, WAL rollback of loser
// transactions after a mid-query crash, honestly-charged transfer faults,
// and the acceptance schedule — a seeded run with disk errors, corrupt
// pages, and a node crash against Queries 2 and 5 that still delivers
// correct rows, bit-identical modeled time at 1 and 8 threads, and a
// degraded N−1 completion that costs more than the fault-free run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "benchmark/database.h"
#include "benchmark/queries.h"
#include "common/bytes.h"
#include "common/status.h"
#include "core/cluster.h"
#include "core/coordinator.h"
#include "core/table.h"
#include "datagen/datagen.h"
#include "sim/cost_model.h"
#include "sim/fault_injector.h"
#include "sim/node_clock.h"
#include "storage/buffer_pool.h"
#include "storage/disk_volume.h"
#include "storage/page.h"
#include "storage/recovery.h"
#include "storage/transaction.h"

namespace paradise {
namespace {

using catalog::PartitioningKind;
using catalog::TableDef;
using core::Cluster;
using core::ParallelTable;
using core::QueryCoordinator;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;
using sim::DiskFaultKind;
using sim::FaultInjector;
using sim::RetryPolicy;
using storage::BufferPool;
using storage::DiskVolume;
using storage::Page;
using storage::PageId;
using storage::PageNo;

// ---------- Storage-level fault handling ----------

/// One volume + pool with a durable page whose payload is known; the pool
/// is then emptied so the next Pin must fetch from "disk".
struct VolumeFixture {
  sim::NodeClock clock;
  DiskVolume volume;
  BufferPool pool;
  PageNo page_no = storage::kInvalidPageNo;

  VolumeFixture() : volume(/*volume_id=*/7, &clock), pool(8) {
    pool.AttachVolume(&volume);
    page_no = volume.AllocatePage();
    auto guard = pool.Pin(PageId{7, page_no});
    EXPECT_TRUE(guard.ok());
    for (size_t i = 0; i < Page::kPayloadSize; ++i) {
      guard->page()->payload()[i] = static_cast<uint8_t>(i * 31 + 5);
    }
    guard->MarkDirty();
    guard->Release();
    EXPECT_TRUE(pool.FlushAll().ok());
    pool.DiscardAll();
    clock.Reset();
  }

  bool PayloadIntact() {
    auto guard = pool.Pin(PageId{7, page_no});
    if (!guard.ok()) return false;
    for (size_t i = 0; i < Page::kPayloadSize; ++i) {
      if (guard->page()->payload()[i] != static_cast<uint8_t>(i * 31 + 5)) {
        return false;
      }
    }
    return true;
  }
};

TEST(ChecksumTest, TornReadDetectedAndHealedByRetry) {
  VolumeFixture fx;
  FaultInjector inj(/*seed=*/1);
  // First read of the page returns torn bytes; the retry reads clean.
  inj.InjectDiskFault(/*node=*/3, /*volume=*/7, fx.page_no, /*ordinal=*/0,
                      DiskFaultKind::kTornRead);
  fx.volume.SetFaultInjector(&inj, /*node_id=*/3);

  EXPECT_TRUE(fx.PayloadIntact());
  const BufferPool::Stats stats = fx.pool.stats();
  EXPECT_EQ(stats.checksum_failures, 1);
  EXPECT_EQ(stats.read_retries, 1);
  EXPECT_EQ(inj.stats().torn_read_faults, 1);
  // The retry waited out one modeled backoff; nothing slept for real.
  RetryPolicy policy;
  EXPECT_EQ(fx.clock.phase_usage().idle_seconds, policy.BackoffSeconds(0));
}

TEST(ChecksumTest, PersistentCorruptionSurfacesNotSilentWrongAnswer) {
  VolumeFixture fx;
  FaultInjector inj(/*seed=*/2);
  inj.set_torn_read_rate(1.0);  // every read of every page is torn
  fx.volume.SetFaultInjector(&inj, /*node_id=*/3);

  auto guard = fx.pool.Pin(PageId{7, fx.page_no});
  ASSERT_FALSE(guard.ok());
  EXPECT_EQ(guard.status().code(), StatusCode::kCorruption);
  RetryPolicy policy;
  EXPECT_EQ(fx.pool.stats().checksum_failures, policy.max_attempts);
}

TEST(RetryTest, TransientErrorsRetriedWithExponentialBackoff) {
  VolumeFixture fx;
  FaultInjector inj(/*seed=*/3);
  // Three consecutive transient errors, then success on the 4th attempt
  // (the last allowed by the default policy).
  for (int64_t ordinal = 0; ordinal < 3; ++ordinal) {
    inj.InjectDiskFault(3, 7, fx.page_no, ordinal,
                        DiskFaultKind::kTransientError);
  }
  fx.volume.SetFaultInjector(&inj, /*node_id=*/3);

  EXPECT_TRUE(fx.PayloadIntact());
  EXPECT_EQ(fx.pool.stats().read_retries, 3);
  EXPECT_EQ(inj.stats().transient_read_faults, 3);
  // Backoff doubles per retry: 2ms + 4ms + 8ms of modeled idle time.
  RetryPolicy policy;
  const double want = policy.BackoffSeconds(0) + policy.BackoffSeconds(1) +
                      policy.BackoffSeconds(2);
  EXPECT_EQ(fx.clock.phase_usage().idle_seconds, want);
}

TEST(RetryTest, AttemptsAreBoundedThenUnavailableSurfaces) {
  VolumeFixture fx;
  FaultInjector inj(/*seed=*/4);
  inj.set_transient_read_rate(1.0);  // the disk never comes back
  fx.volume.SetFaultInjector(&inj, /*node_id=*/3);

  auto guard = fx.pool.Pin(PageId{7, fx.page_no});
  ASSERT_FALSE(guard.ok());
  EXPECT_EQ(guard.status().code(), StatusCode::kUnavailable);
  RetryPolicy policy;
  EXPECT_EQ(fx.pool.stats().read_retries, policy.max_attempts - 1);
}

// ---------- Transfer faults ----------

TEST(TransferFaultTest, DroppedBatchChargesTimeoutAndRetransmission) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 64;
  Cluster clean(2, copts);
  Cluster faulty(2, copts);
  FaultInjector inj(/*seed=*/5);
  inj.set_transfer_drop_rate(1.0);
  faulty.SetFaultInjector(&inj);

  const int64_t bytes = 40000;
  clean.ChargeTransfer(0, 1, bytes);
  faulty.ChargeTransfer(0, 1, bytes);

  const sim::ResourceUsage clean_tx = clean.node(0).clock()->phase_usage();
  const sim::ResourceUsage faulty_tx = faulty.node(0).clock()->phase_usage();
  const sim::ResourceUsage clean_rx = clean.node(1).clock()->phase_usage();
  const sim::ResourceUsage faulty_rx = faulty.node(1).clock()->phase_usage();
  // The sender waited out the ack timeout, then both links carried the
  // batch a second time.
  EXPECT_EQ(faulty_tx.idle_seconds, inj.drop_timeout_seconds());
  EXPECT_EQ(faulty_tx.net_bytes, 2 * clean_tx.net_bytes);
  EXPECT_EQ(faulty_rx.net_bytes, 2 * clean_rx.net_bytes);
  EXPECT_EQ(inj.stats().dropped_batches, 1);
}

TEST(TransferFaultTest, DuplicatedBatchChargesReceiverOnly) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 64;
  Cluster clean(2, copts);
  Cluster faulty(2, copts);
  FaultInjector inj(/*seed=*/6);
  inj.set_transfer_duplicate_rate(1.0);
  faulty.SetFaultInjector(&inj);

  const int64_t bytes = 40000;
  clean.ChargeTransfer(0, 1, bytes);
  faulty.ChargeTransfer(0, 1, bytes);

  // Sender unaffected; receiver pays to receive and discard the copy.
  EXPECT_EQ(clean.node(0).clock()->phase_usage().net_bytes,
            faulty.node(0).clock()->phase_usage().net_bytes);
  EXPECT_EQ(faulty.node(1).clock()->phase_usage().net_bytes,
            2 * clean.node(1).clock()->phase_usage().net_bytes);
  EXPECT_GT(faulty.node(1).clock()->phase_usage().cpu_ops,
            clean.node(1).clock()->phase_usage().cpu_ops);
  EXPECT_EQ(inj.stats().duplicated_batches, 1);
}

// ---------- WAL recovery of a loser transaction after a mid-query crash --

Tuple IntStringTuple(int64_t id, const std::string& name) {
  return Tuple({Value(id), Value(name)});
}

TableDef IntStringDef(const std::string& name) {
  TableDef def;
  def.name = name;
  def.schema =
      exec::Schema({{"id", ValueType::kInt}, {"name", ValueType::kString}});
  def.partitioning = PartitioningKind::kRoundRobin;
  return def;
}

TEST(RecoveryTest, MidQueryCrashRollsBackLoserTransaction) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 256;
  Cluster cluster(1, copts);
  TupleVec rows;
  for (int64_t i = 0; i < 20; ++i) rows.push_back(IntStringTuple(i, "base"));
  auto table = ParallelTable::Load(&cluster, IntStringDef("t"), rows);
  ASSERT_TRUE(table.ok());
  storage::HeapFile* file = (*table)->fragment(0).file.get();
  const int64_t base_records = file->num_records();

  FaultInjector inj(/*seed=*/7);
  // Recoverable crash at the barrier after the first phase.
  inj.ScheduleCrash(/*barrier=*/1, /*node=*/0, /*permanent=*/false);
  cluster.SetFaultInjector(&inj);

  QueryCoordinator coord(&cluster);
  ASSERT_TRUE(coord.BeginQuery().ok());
  // Phase 1: a transaction inserts, its log records reach the durable log
  // (forced, e.g. by a page steal), the dirty page reaches disk — but it
  // never commits before the node crashes at the phase barrier.
  Status st = coord.RunPhase("update", [&](int node) -> Status {
    auto& n = cluster.node(node);
    auto txn = n.txn_manager()->Begin();
    ByteBuffer record;
    ByteWriter w(&record);
    w.PutU8(1);
    w.PutString("uncommitted");
    auto oid = file->Insert(txn.get(), record);
    if (!oid.ok()) return oid.status();
    n.log()->Force(txn->last_lsn());
    return n.pool()->FlushAll();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  // The barrier fired the crash and the coordinator ran ARIES restart:
  // the loser transaction was found and rolled back.
  ASSERT_EQ(coord.phases().size(), 2u);
  EXPECT_EQ(coord.phases()[1].name, "recover node 0");
  EXPECT_TRUE(coord.phases()[1].sequential);
  EXPECT_GT(coord.phases()[1].seconds, 0.0);
  EXPECT_EQ(file->num_records(), base_records);
  EXPECT_EQ(inj.stats().crashes, 1);
  // Detection cost: the coordinator waited out the failure timeout.
  EXPECT_GE(coord.query_seconds(),
            cluster.retry_policy().detect_timeout_seconds);
  // The node is alive again and the fragment fully readable.
  EXPECT_TRUE(cluster.alive(0));
  auto scan = (*table)->ScanFragment(&cluster, 0, true);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 20u);
}

TEST(RecoveryTest, RecoverNodeReportsLoserStats) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 256;
  Cluster cluster(1, copts);
  TupleVec rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back(IntStringTuple(i, "base"));
  auto table = ParallelTable::Load(&cluster, IntStringDef("t"), rows);
  ASSERT_TRUE(table.ok());
  storage::HeapFile* file = (*table)->fragment(0).file.get();
  ASSERT_TRUE(cluster.node(0).pool()->FlushAll().ok());

  auto& n = cluster.node(0);
  auto txn = n.txn_manager()->Begin();
  ByteBuffer record;
  ByteWriter w(&record);
  w.PutU8(1);
  w.PutString("loser");
  auto oid = file->Insert(txn.get(), record);
  ASSERT_TRUE(oid.ok());
  n.log()->Force(txn->last_lsn());
  ASSERT_TRUE(n.pool()->FlushAll().ok());

  cluster.CrashNode(0);
  storage::RecoveryManager::RecoveryStats stats;
  ASSERT_TRUE(cluster.RecoverNode(0, &stats).ok());
  EXPECT_EQ(stats.loser_txns, 1);
  EXPECT_GT(stats.records_analyzed, 0);
  EXPECT_EQ(file->num_records(), 10);
  EXPECT_FALSE(file->Get(*oid).ok());
  // Log reads during restart were charged to the node's clock.
  EXPECT_GT(n.clock()->phase_usage().disk_bytes_read, 0);
}

// ---------- Coordinator error paths close the phase ----------

TEST(CoordinatorTest, FailedPhaseDoesNotLeakUsageIntoNextPhase) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 64;
  Cluster cluster(2, copts);
  QueryCoordinator coord(&cluster);
  ASSERT_TRUE(coord.BeginQuery().ok());

  Status st = coord.RunPhase("failing", [&](int node) -> Status {
    cluster.node(node).clock()->ChargeCpu(1e9);
    return node == 1 ? Status::Internal("boom") : Status::OK();
  });
  EXPECT_FALSE(st.ok());
  ASSERT_EQ(coord.phases().size(), 1u);
  const double failed_phase_seconds = coord.phases()[0].seconds;
  EXPECT_GT(failed_phase_seconds, 0.0);

  // The failed phase was closed: a later phase accounts only its own work.
  ASSERT_TRUE(coord.RunPhase("clean", [&](int node) -> Status {
    cluster.node(node).clock()->ChargeCpu(1.0);
    return Status::OK();
  }).ok());
  ASSERT_EQ(coord.phases().size(), 2u);
  EXPECT_LT(coord.phases()[1].seconds, failed_phase_seconds / 1e6);
}

TEST(CoordinatorTest, FailedSequentialStepClosesPhase) {
  Cluster::Options copts;
  copts.buffer_pool_frames = 64;
  Cluster cluster(1, copts);
  QueryCoordinator coord(&cluster);
  ASSERT_TRUE(coord.BeginQuery().ok());
  Status st = coord.RunSequential("bad merge", [&]() -> Status {
    cluster.coordinator_clock()->ChargeCpu(1e6);
    return Status::InvalidArgument("bad");
  });
  EXPECT_FALSE(st.ok());
  ASSERT_EQ(coord.phases().size(), 1u);
  EXPECT_GT(coord.phases()[0].seconds, 0.0);
  EXPECT_EQ(coord.phases()[0].seconds, coord.query_seconds());
}

// ---------- Acceptance: the seeded schedule against Queries 2 and 5 ------

benchmark::LoadOptions TinyLoadOptions() {
  benchmark::LoadOptions lopts;
  lopts.tiles_per_axis = 20;
  return lopts;
}

datagen::DataSetOptions TinyDataOptions() {
  datagen::DataSetOptions o;
  o.size_fraction = 1.0 / 1000;
  o.num_dates = 8;
  o.base_raster_size = 96;
  return o;
}

struct LoadedDb {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<benchmark::BenchmarkDatabase> db;
};

LoadedDb LoadTinyDb(int nodes, int num_threads) {
  LoadedDb out;
  Cluster::Options copts;
  copts.buffer_pool_frames = 2048;
  out.cluster = std::make_unique<Cluster>(nodes, copts);
  out.cluster->SetNumThreads(num_threads);
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(TinyDataOptions());
  auto db = benchmark::BenchmarkDatabase::Load(out.cluster.get(), ds,
                                               TinyLoadOptions());
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  out.db = std::move(*db);
  return out;
}

/// Redeclusters every benchmark table after a permanent node loss — the
/// node-loss handler a real deployment would install.
void InstallLossHandler(benchmark::BenchmarkDatabase* db) {
  db->cluster()->set_node_loss_handler([db](int dead) -> Status {
    ParallelTable* tables[] = {&db->places(), &db->roads(), &db->drainage(),
                               &db->land_cover(), &db->raster()};
    for (ParallelTable* t : tables) {
      PARADISE_RETURN_IF_ERROR(t->RedeclusterAfterLoss(db->cluster(), dead));
    }
    return Status::OK();
  });
}

/// The acceptance fault schedule: transient disk errors, torn pages,
/// dropped and duplicated batches, and one node-crash event.
void ConfigureAcceptanceFaults(FaultInjector* inj, bool permanent_crash) {
  inj->set_transient_read_rate(0.05);
  inj->set_torn_read_rate(0.05);
  inj->set_transfer_drop_rate(0.02);
  inj->set_transfer_duplicate_rate(0.02);
  // Node 2 fails at the barrier after the first phase (recoverable) or
  // right at query start (permanent, so the whole query runs degraded).
  inj->ScheduleCrash(permanent_crash ? 0 : 1, /*node=*/2, permanent_crash);
}

std::vector<std::string> RenderRowsSorted(const TupleVec& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (const Value& v : t.values) {
      if (v.type() == ValueType::kRaster) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "raster[%ux%u]",
                      v.AsRaster()->height(), v.AsRaster()->width());
        s += buf;
      } else {
        s += v.ToString();
      }
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct FaultedRun {
  double seconds = 0.0;
  std::vector<std::string> rows;  // sorted render (gather order may vary)
  FaultInjector::Stats fault_stats;
};

FaultedRun RunFaulted(int query, int num_threads, bool permanent_crash,
                      uint64_t seed) {
  LoadedDb loaded = LoadTinyDb(4, num_threads);
  FaultInjector inj(seed);
  ConfigureAcceptanceFaults(&inj, permanent_crash);
  InstallLossHandler(loaded.db.get());
  // Wire after load so fault ordinals start from the same (empty) state
  // regardless of how the load was scheduled.
  loaded.cluster->SetFaultInjector(&inj);
  auto r = benchmark::RunQueryByNumber(loaded.db.get(), query);
  EXPECT_TRUE(r.ok()) << "query " << query << ": " << r.status().ToString();
  FaultedRun out;
  if (r.ok()) {
    out.seconds = r->seconds;
    out.rows = RenderRowsSorted(r->rows);
  }
  out.fault_stats = inj.stats();
  if (permanent_crash) {
    EXPECT_EQ(loaded.cluster->num_alive(), 3);
    EXPECT_FALSE(loaded.cluster->alive(2));
  }
  loaded.cluster->SetFaultInjector(nullptr);
  return out;
}

FaultedRun RunFaultFree(int query, int num_threads) {
  LoadedDb loaded = LoadTinyDb(4, num_threads);
  auto r = benchmark::RunQueryByNumber(loaded.db.get(), query);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  FaultedRun out;
  if (r.ok()) {
    out.seconds = r->seconds;
    out.rows = RenderRowsSorted(r->rows);
  }
  return out;
}

class FaultScheduleAcceptanceTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultScheduleAcceptanceTest, RecoverableScheduleCorrectAndDeterministic) {
  const int query = GetParam();
  FaultedRun clean = RunFaultFree(query, /*num_threads=*/8);
  FaultedRun f1 = RunFaulted(query, /*num_threads=*/1, /*permanent=*/false,
                             /*seed=*/0xfa01);
  FaultedRun f8 = RunFaulted(query, /*num_threads=*/8, /*permanent=*/false,
                             /*seed=*/0xfa01);

  // The schedule actually fired faults of each kind.
  EXPECT_GT(f8.fault_stats.transient_read_faults, 0);
  EXPECT_GT(f8.fault_stats.torn_read_faults, 0);
  EXPECT_EQ(f8.fault_stats.crashes, 1);
  // Correct rows despite the faults.
  EXPECT_EQ(f8.rows, clean.rows) << "query " << query;
  // Bit-identical modeled time and identical decisions at 1 vs 8 threads.
  EXPECT_EQ(f1.seconds, f8.seconds) << "query " << query;
  EXPECT_EQ(f1.rows, f8.rows);
  EXPECT_EQ(f1.fault_stats.transient_read_faults,
            f8.fault_stats.transient_read_faults);
  EXPECT_EQ(f1.fault_stats.torn_read_faults, f8.fault_stats.torn_read_faults);
  EXPECT_EQ(f1.fault_stats.dropped_batches, f8.fault_stats.dropped_batches);
  EXPECT_EQ(f1.fault_stats.duplicated_batches,
            f8.fault_stats.duplicated_batches);
  // Faults cost modeled time: backoff, detection, recovery, re-reads.
  EXPECT_GT(f8.seconds, clean.seconds) << "query " << query;
}

TEST_P(FaultScheduleAcceptanceTest, DegradedNMinusOneCompletesCorrectly) {
  const int query = GetParam();
  FaultedRun clean = RunFaultFree(query, /*num_threads=*/8);
  FaultedRun d1 = RunFaulted(query, /*num_threads=*/1, /*permanent=*/true,
                             /*seed=*/0xdead01);
  FaultedRun d8 = RunFaulted(query, /*num_threads=*/8, /*permanent=*/true,
                             /*seed=*/0xdead01);

  // N−1 completion with the full answer.
  EXPECT_EQ(d8.rows, clean.rows) << "query " << query;
  // Degraded time exceeds fault-free: detection + redeclustering the dead
  // node's fragments + the survivors absorbing its share of the work.
  EXPECT_GT(d8.seconds, clean.seconds) << "query " << query;
  // Deterministic across thread counts even with the node loss.
  EXPECT_EQ(d1.seconds, d8.seconds) << "query " << query;
  EXPECT_EQ(d1.rows, d8.rows);
}

INSTANTIATE_TEST_SUITE_P(Queries, FaultScheduleAcceptanceTest,
                         ::testing::Values(2, 5, 11, 13));

// ---------- Degraded-mode redeclustering invariants ----------

TEST(DegradedModeTest, RedeclusterPreservesEveryTableRow) {
  LoadedDb loaded = LoadTinyDb(4, /*num_threads=*/4);
  benchmark::BenchmarkDatabase* db = loaded.db.get();
  ParallelTable* tables[] = {&db->places(), &db->roads(), &db->drainage(),
                             &db->land_cover(), &db->raster()};
  std::vector<int64_t> rows_before;
  for (ParallelTable* t : tables) rows_before.push_back(t->num_rows());

  loaded.cluster->MarkNodeDead(2);
  for (ParallelTable* t : tables) {
    ASSERT_TRUE(t->RedeclusterAfterLoss(loaded.cluster.get(), 2).ok())
        << t->def().name;
  }

  for (size_t i = 0; i < std::size(tables); ++i) {
    EXPECT_EQ(tables[i]->num_rows(), rows_before[i])
        << tables[i]->def().name;
    EXPECT_EQ(tables[i]->fragment(2).num_rows(), 0)
        << tables[i]->def().name;
    // Every surviving fragment is scannable and primaries sum to the
    // logical cardinality.
    int64_t primaries = 0;
    for (int n = 0; n < 4; ++n) {
      if (n == 2) continue;
      auto scan = tables[i]->ScanFragment(loaded.cluster.get(), n, true);
      ASSERT_TRUE(scan.ok()) << tables[i]->def().name << " node " << n;
      primaries += static_cast<int64_t>(scan->size());
    }
    EXPECT_EQ(primaries, rows_before[i]) << tables[i]->def().name;
  }
  // The salvage + shipping work was charged (to the open phase — no
  // coordinator closed it here): the dead node paid to read its fragments
  // off its surviving disks and the survivors received bytes.
  EXPECT_GT(loaded.cluster->node(2).clock()->phase_usage().cpu_ops, 0.0);
  int64_t received = 0;
  for (int n = 0; n < 4; ++n) {
    if (n == 2) continue;
    received += loaded.cluster->node(n).clock()->phase_usage().net_bytes;
  }
  EXPECT_GT(received, 0);
}

}  // namespace
}  // namespace paradise
