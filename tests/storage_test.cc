#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_volume.h"
#include "storage/heap_file.h"
#include "storage/large_object.h"
#include "storage/slotted_page.h"

namespace paradise::storage {
namespace {

ByteBuffer MakeRecord(const std::string& s) {
  return ByteBuffer(s.begin(), s.end());
}

TEST(DiskVolumeTest, AllocateReadWrite) {
  sim::NodeClock clock;
  DiskVolume vol(0, &clock);
  PageNo p0 = vol.AllocatePage();
  PageNo p1 = vol.AllocatePage();
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  Page page;
  page.payload()[0] = 0xab;
  ASSERT_TRUE(vol.WritePage(p0, page).ok());
  Page read;
  ASSERT_TRUE(vol.ReadPage(p0, &read).ok());
  EXPECT_EQ(read.payload()[0], 0xab);
  EXPECT_FALSE(vol.ReadPage(999, &read).ok());
}

TEST(DiskVolumeTest, SequentialVsRandomCharging) {
  sim::NodeClock clock;
  DiskVolume vol(0, &clock);
  PageNo first = vol.AllocateRun(100);
  Page page;
  // Sequential pass: 1 seek + 100 transfers.
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(vol.ReadPage(first + i, &page).ok());
  }
  sim::ResourceUsage seq = clock.EndPhase();
  EXPECT_EQ(seq.disk_seeks, 1);
  EXPECT_EQ(seq.disk_bytes_read, 100 * static_cast<int64_t>(kPageSize));
  // Random pass: one seek per page.
  for (uint32_t i = 0; i < 100; i += 2) {
    ASSERT_TRUE(vol.ReadPage(first + (99 - i), &page).ok());
  }
  sim::ResourceUsage random = clock.EndPhase();
  EXPECT_EQ(random.disk_seeks, 50);
}

TEST(DiskVolumeTest, FreeListReuse) {
  DiskVolume vol(0, nullptr);
  PageNo a = vol.AllocatePage();
  vol.AllocatePage();
  vol.FreePage(a);
  EXPECT_EQ(vol.allocated_pages(), 1u);
  PageNo c = vol.AllocatePage();
  EXPECT_EQ(c, a);  // reused
}

TEST(SlottedPageTest, InsertDeleteCompact) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  std::string big(1000, 'x');
  std::vector<int> slots;
  while (true) {
    int s = sp.InsertRecord(reinterpret_cast<const uint8_t*>(big.data()),
                            static_cast<uint16_t>(big.size()));
    if (s < 0) break;
    slots.push_back(s);
  }
  EXPECT_EQ(slots.size(), 8u);  // 8184 payload / ~1004 per record
  // Delete every other record, then a new insert must trigger compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    sp.DeleteRecord(static_cast<uint16_t>(slots[i]));
  }
  std::string big2(3000, 'y');
  int s = sp.InsertRecord(reinterpret_cast<const uint8_t*>(big2.data()),
                          static_cast<uint16_t>(big2.size()));
  ASSERT_GE(s, 0);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(sp.RecordData(
                            static_cast<uint16_t>(s))),
                        sp.SlotLength(static_cast<uint16_t>(s))),
            big2);
  // Survivors intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    uint16_t slot = static_cast<uint16_t>(slots[i]);
    ASSERT_TRUE(sp.SlotInUse(slot));
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(sp.RecordData(slot)),
                          sp.SlotLength(slot)),
              big);
  }
}

TEST(BufferPoolTest, HitMissEviction) {
  sim::NodeClock clock;
  DiskVolume vol(0, &clock);
  BufferPool pool(4);
  pool.AttachVolume(&vol);
  std::vector<PageNo> pages;
  for (int i = 0; i < 8; ++i) {
    auto guard = pool.NewPage(0);
    ASSERT_TRUE(guard.ok());
    guard->page()->payload()[0] = static_cast<uint8_t>(i);
    guard->MarkDirty();
    pages.push_back(guard->id().page_no);
  }
  // All 8 pages written; only 4 frames — evictions flushed dirty pages.
  EXPECT_GE(pool.stats().evictions, 4);
  // Re-read the first page: must come from disk with its data intact.
  auto guard = pool.Pin(PageId{0, pages[0]});
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->page()->payload()[0], 0);
  // Pin it again: hit.
  int64_t misses = pool.stats().misses;
  auto guard2 = pool.Pin(PageId{0, pages[0]});
  ASSERT_TRUE(guard2.ok());
  EXPECT_EQ(pool.stats().misses, misses);
}

TEST(BufferPoolTest, AllPinnedExhaustion) {
  DiskVolume vol(0, nullptr);
  BufferPool pool(2);
  pool.AttachVolume(&vol);
  auto g1 = pool.NewPage(0);
  auto g2 = pool.NewPage(0);
  ASSERT_TRUE(g1.ok() && g2.ok());
  auto g3 = pool.NewPage(0);
  EXPECT_FALSE(g3.ok());
  EXPECT_EQ(g3.status().code(), StatusCode::kResourceExhausted);
  g1->Release();
  auto g4 = pool.NewPage(0);
  EXPECT_TRUE(g4.ok());
}

TEST(BufferPoolTest, DiscardLosesUnflushed) {
  DiskVolume vol(0, nullptr);
  BufferPool pool(8);
  pool.AttachVolume(&vol);
  PageNo page_no;
  {
    auto guard = pool.NewPage(0);
    ASSERT_TRUE(guard.ok());
    guard->page()->payload()[0] = 0x77;
    guard->MarkDirty();
    page_no = guard->id().page_no;
  }
  pool.DiscardAll();  // crash: nothing flushed
  auto guard = pool.Pin(PageId{0, page_no});
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->page()->payload()[0], 0);  // lost
}

TEST(BufferPoolTest, FlushMakesDurable) {
  DiskVolume vol(0, nullptr);
  BufferPool pool(8);
  pool.AttachVolume(&vol);
  PageNo page_no;
  {
    auto guard = pool.NewPage(0);
    ASSERT_TRUE(guard.ok());
    guard->page()->payload()[0] = 0x77;
    guard->MarkDirty();
    page_no = guard->id().page_no;
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.DiscardAll();
  auto guard = pool.Pin(PageId{0, page_no});
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->page()->payload()[0], 0x77);
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : vol_(0, nullptr), pool_(64), file_(1, &pool_, 0, nullptr) {
    pool_.AttachVolume(&vol_);
  }
  DiskVolume vol_;
  BufferPool pool_;
  HeapFile file_;
};

TEST_F(HeapFileTest, InsertGetDelete) {
  auto oid = file_.Insert(nullptr, MakeRecord("hello"));
  ASSERT_TRUE(oid.ok());
  auto rec = file_.Get(*oid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(std::string(rec->begin(), rec->end()), "hello");
  ASSERT_TRUE(file_.Delete(nullptr, *oid).ok());
  EXPECT_FALSE(file_.Get(*oid).ok());
  EXPECT_EQ(file_.num_records(), 0);
}

TEST_F(HeapFileTest, ManyRecordsSpanPages) {
  std::vector<Oid> oids;
  for (int i = 0; i < 5000; ++i) {
    auto oid = file_.Insert(nullptr, MakeRecord("record-" + std::to_string(i)));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  EXPECT_GT(file_.num_pages(), 5u);
  EXPECT_EQ(file_.num_records(), 5000);
  for (int i = 0; i < 5000; i += 97) {
    auto rec = file_.Get(oids[static_cast<size_t>(i)]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(std::string(rec->begin(), rec->end()),
              "record-" + std::to_string(i));
  }
}

TEST_F(HeapFileTest, ScanVisitsEverything) {
  std::set<std::string> inserted;
  for (int i = 0; i < 1000; ++i) {
    std::string s = "row-" + std::to_string(i);
    ASSERT_TRUE(file_.Insert(nullptr, MakeRecord(s)).ok());
    inserted.insert(s);
  }
  std::set<std::string> seen;
  auto it = file_.NewIterator();
  Oid oid;
  ByteBuffer rec;
  while (it.Next(&oid, &rec)) seen.insert(std::string(rec.begin(), rec.end()));
  EXPECT_EQ(seen, inserted);
}

TEST_F(HeapFileTest, UpdateInPlace) {
  auto oid = file_.Insert(nullptr, MakeRecord("aaaa"));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(file_.Update(nullptr, *oid, MakeRecord("bbbb")).ok());
  auto rec = file_.Get(*oid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(std::string(rec->begin(), rec->end()), "bbbb");
  // Different size is rejected.
  EXPECT_FALSE(file_.Update(nullptr, *oid, MakeRecord("ccc")).ok());
}

TEST_F(HeapFileTest, RejectOversizeRecord) {
  ByteBuffer big(HeapFile::MaxRecordSize() + 1, 0);
  EXPECT_FALSE(file_.Insert(nullptr, big).ok());
  ByteBuffer max(HeapFile::MaxRecordSize(), 7);
  EXPECT_TRUE(file_.Insert(nullptr, max).ok());
}

TEST_F(HeapFileTest, DeleteFreesSlotForReuse) {
  auto a = file_.Insert(nullptr, MakeRecord("one"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(file_.Delete(nullptr, *a).ok());
  auto b = file_.Insert(nullptr, MakeRecord("two"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->page, b->page);
  EXPECT_EQ(a->slot, b->slot);  // slot reused
}

TEST(LargeObjectTest, WriteReadRange) {
  sim::NodeClock clock;
  DiskVolume vol(0, &clock);
  BufferPool pool(256);
  pool.AttachVolume(&vol);
  LargeObjectStore store(&pool, &vol);
  Rng rng(11);
  ByteBuffer data(100000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  auto id = store.Write(data);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->length, 100000u);
  EXPECT_EQ(id->num_pages, (100000 + Page::kPayloadSize - 1) / Page::kPayloadSize);
  auto all = store.Read(*id);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  // Range read crossing page boundaries.
  auto range = store.ReadRange(*id, 8000, 10000);
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(std::equal(range->begin(), range->end(), data.begin() + 8000));
  // Past-the-end rejected.
  EXPECT_FALSE(store.ReadRange(*id, 99999, 10).ok());
}

TEST(LargeObjectTest, RangeReadTouchesOnlyNeededPages) {
  sim::NodeClock clock;
  DiskVolume vol(0, &clock);
  BufferPool pool(256);
  pool.AttachVolume(&vol);
  LargeObjectStore store(&pool, &vol);
  ByteBuffer data(40 * Page::kPayloadSize, 0x5a);
  auto id = store.Write(data);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  pool.DiscardAll();
  clock.Reset();
  auto range = store.ReadRange(*id, Page::kPayloadSize * 3, Page::kPayloadSize);
  ASSERT_TRUE(range.ok());
  sim::ResourceUsage u = clock.EndPhase();
  EXPECT_EQ(u.disk_bytes_read, static_cast<int64_t>(kPageSize));
}

TEST(LargeObjectTest, FreeReleasesPages) {
  DiskVolume vol(0, nullptr);
  BufferPool pool(64);
  pool.AttachVolume(&vol);
  LargeObjectStore store(&pool, &vol);
  ByteBuffer data(50000, 1);
  auto id = store.Write(data);
  ASSERT_TRUE(id.ok());
  uint32_t before = vol.allocated_pages();
  store.Free(*id);
  EXPECT_EQ(vol.allocated_pages(), before - id->num_pages);
}

}  // namespace
}  // namespace paradise::storage
