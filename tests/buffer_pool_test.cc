#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/database.h"
#include "benchmark/queries.h"
#include "core/cluster.h"
#include "datagen/datagen.h"
#include "sim/fault_injector.h"
#include "sim/node_clock.h"
#include "storage/buffer_pool.h"
#include "storage/disk_volume.h"
#include "storage/page.h"

namespace paradise {
namespace {

using sim::FaultInjector;
using sim::NodeClock;
using sim::ResourceUsage;
using sim::RetryPolicy;
using storage::BufferPool;
using storage::DiskVolume;
using storage::kPageSize;
using storage::Page;
using storage::PageGuard;
using storage::PageId;
using storage::PageNo;

/// Writes `count` pages to the volume, payload byte 0 tagged with the page
/// number so reads can be content-checked.
void WriteTaggedPages(DiskVolume* volume, PageNo first, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    Page p;
    p.payload()[0] = static_cast<uint8_t>((first + i) & 0xff);
    ASSERT_TRUE(volume->WritePage(first + i, p).ok());
  }
}

ResourceUsage UsageDelta(const ResourceUsage& before,
                         const ResourceUsage& after) {
  ResourceUsage d;
  d.disk_seeks = after.disk_seeks - before.disk_seeks;
  d.disk_bytes_read = after.disk_bytes_read - before.disk_bytes_read;
  d.disk_bytes_written = after.disk_bytes_written - before.disk_bytes_written;
  d.net_messages = after.net_messages - before.net_messages;
  d.net_bytes = after.net_bytes - before.net_bytes;
  d.cpu_ops = after.cpu_ops - before.cpu_ops;
  d.idle_seconds = after.idle_seconds - before.idle_seconds;
  return d;
}

// ---------- Sharding ----------

TEST(BufferPoolShardingTest, TinyPoolsDegenerateToOneShard) {
  // Auto-sharding keeps >= kMinFramesPerShard frames per shard, so the
  // small pools unit tests use keep exact single-LRU semantics.
  BufferPool tiny(8);
  EXPECT_EQ(tiny.num_shards(), 1);
  BufferPool two(2);
  EXPECT_EQ(two.num_shards(), 1);
}

TEST(BufferPoolShardingTest, AutoShardCountIsPowerOfTwo) {
  BufferPool pool(4096);
  int n = pool.num_shards();
  EXPECT_GE(n, 1);
  EXPECT_EQ(n & (n - 1), 0) << "shard count " << n << " not a power of two";
  EXPECT_GE(4096 / static_cast<size_t>(n), BufferPool::kMinFramesPerShard);
}

TEST(BufferPoolShardingTest, ExplicitShardCountRoundsUpToPowerOfTwo) {
  BufferPool pool(64, /*num_shards=*/3);
  EXPECT_EQ(pool.num_shards(), 4);
  // Explicit counts are clamped only so every shard has at least a frame.
  BufferPool overdone(4, /*num_shards=*/64);
  EXPECT_LE(overdone.num_shards(), 4);
  EXPECT_GE(overdone.num_shards(), 1);
}

TEST(BufferPoolShardingTest, EnvKnobControlsShardCount) {
  ::setenv("PARADISE_POOL_SHARDS", "8", 1);
  BufferPool pool(1024);
  EXPECT_EQ(pool.num_shards(), 8);
  ::unsetenv("PARADISE_POOL_SHARDS");
}

TEST(BufferPoolShardingTest, PinHitMissWorksAcrossShards) {
  DiskVolume volume(0, nullptr);
  BufferPool pool(128, /*num_shards=*/4);
  ASSERT_EQ(pool.num_shards(), 4);
  pool.AttachVolume(&volume);
  volume.AllocateRun(64);
  WriteTaggedPages(&volume, 0, 64);
  for (PageNo p = 0; p < 64; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ(g->page()->payload()[0], static_cast<uint8_t>(p));
  }
  auto s = pool.stats();
  EXPECT_EQ(s.misses, 64);
  EXPECT_EQ(s.hits, 0);
  for (PageNo p = 0; p < 64; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok());
  }
  s = pool.stats();
  EXPECT_EQ(s.misses, 64);
  EXPECT_EQ(s.hits, 64);
}

// ---------- Scan resistance ----------

TEST(ScanResistanceTest, FullScanEvictsAtMostColdSegmentHotPagesKeepHits) {
  DiskVolume volume(0, nullptr);
  BufferPool pool(64, /*num_shards=*/1);
  pool.AttachVolume(&volume);
  volume.AllocateRun(240);
  WriteTaggedPages(&volume, 0, 240);

  // Working set: 24 pages touched twice — the second touch is the
  // re-reference that promotes them into the hot segment (these stand in
  // for R*-tree inner nodes and the raster mapping table).
  constexpr PageNo kHotPages = 24;
  for (int round = 0; round < 2; ++round) {
    for (PageNo p = 0; p < kHotPages; ++p) {
      auto g = pool.Pin(PageId{0, p});
      ASSERT_TRUE(g.ok());
    }
  }
  auto before = pool.stats();
  EXPECT_EQ(before.misses, kHotPages);
  EXPECT_GE(before.promotions, kHotPages);

  // A one-pass scan of 200 further pages — over 3x the pool — must churn
  // only the cold segment.
  for (PageNo p = kHotPages; p < kHotPages + 200; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page()->payload()[0], static_cast<uint8_t>(p));
  }
  auto after_scan = pool.stats();
  EXPECT_EQ(after_scan.misses, kHotPages + 200);
  EXPECT_GT(after_scan.evictions, 0);

  // The hot set survived the scan: re-pinning it adds no misses.
  for (PageNo p = 0; p < kHotPages; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page()->payload()[0], static_cast<uint8_t>(p));
  }
  auto after = pool.stats();
  EXPECT_EQ(after.misses, after_scan.misses)
      << "scan evicted hot pages: " << after.misses - after_scan.misses
      << " re-reads";
  EXPECT_EQ(after.hits, after_scan.hits + kHotPages);
}

TEST(ScanResistanceTest, SingleUsePagesAreNotPromoted) {
  DiskVolume volume(0, nullptr);
  BufferPool pool(64, /*num_shards=*/1);
  pool.AttachVolume(&volume);
  volume.AllocateRun(32);
  WriteTaggedPages(&volume, 0, 32);
  for (PageNo p = 0; p < 32; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool.stats().promotions, 0);
  // The re-reference promotes.
  for (PageNo p = 0; p < 32; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool.stats().promotions, 32);
}

// ---------- Batched readahead ----------

TEST(ReadaheadTest, PrefetchChargesOnePositioningCostPlusTransfers) {
  NodeClock clock;
  DiskVolume volume(0, &clock);
  BufferPool pool(256, /*num_shards=*/1);
  pool.AttachVolume(&volume);
  volume.AllocateRun(16);
  WriteTaggedPages(&volume, 0, 16);

  ResourceUsage before = clock.phase_usage();
  pool.Prefetch(PageId{0, 0}, 16);
  ResourceUsage d = UsageDelta(before, clock.phase_usage());
  EXPECT_EQ(d.disk_seeks, 1) << "a batched run is one positioning cost";
  EXPECT_EQ(d.disk_bytes_read, 16 * static_cast<int64_t>(kPageSize));

  auto s = pool.stats();
  EXPECT_EQ(s.readahead_batches, 1);
  EXPECT_EQ(s.readahead_pages, 16);
  EXPECT_EQ(s.misses, 0) << "readahead loads are not demand misses";

  // Every page is now resident: pins are hits, with no further disk I/O.
  before = clock.phase_usage();
  for (PageNo p = 0; p < 16; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page()->payload()[0], static_cast<uint8_t>(p));
  }
  d = UsageDelta(before, clock.phase_usage());
  EXPECT_EQ(d.disk_seeks, 0);
  EXPECT_EQ(d.disk_bytes_read, 0);
  s = pool.stats();
  EXPECT_EQ(s.hits, 16);
  EXPECT_EQ(s.misses, 0);

  // A second prefetch of the same range finds everything cached.
  pool.Prefetch(PageId{0, 0}, 16);
  EXPECT_EQ(pool.stats().readahead_batches, 1);
}

TEST(ReadaheadTest, PrefetchFetchesOnlyTheMissingRuns) {
  NodeClock clock;
  DiskVolume volume(0, &clock);
  BufferPool pool(256, /*num_shards=*/1);
  pool.AttachVolume(&volume);
  volume.AllocateRun(16);
  WriteTaggedPages(&volume, 0, 16);

  // Pages 4..7 already resident.
  for (PageNo p = 4; p < 8; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok());
  }
  auto pinned = pool.stats();
  pool.Prefetch(PageId{0, 0}, 16);
  auto s = pool.stats();
  // Two missing runs: [0,4) and [8,16).
  EXPECT_EQ(s.readahead_batches - pinned.readahead_batches, 2);
  EXPECT_EQ(s.readahead_pages - pinned.readahead_pages, 12);
}

TEST(ReadaheadTest, PinRangeReturnsTheWholeRunPinned) {
  DiskVolume volume(0, nullptr);
  BufferPool pool(256, /*num_shards=*/2);
  pool.AttachVolume(&volume);
  volume.AllocateRun(40);
  WriteTaggedPages(&volume, 0, 40);

  auto guards = pool.PinRange(PageId{0, 3}, 30);
  ASSERT_TRUE(guards.ok()) << guards.status().ToString();
  ASSERT_EQ(guards->size(), 30u);
  for (uint32_t i = 0; i < 30; ++i) {
    ASSERT_TRUE((*guards)[i].valid());
    EXPECT_EQ((*guards)[i].id().page_no, 3 + i);
    EXPECT_EQ((*guards)[i].page()->payload()[0],
              static_cast<uint8_t>(3 + i));
  }
}

TEST(ReadaheadTest, PrefetchSkipsWindowsTooBigForTheShard) {
  DiskVolume volume(0, nullptr);
  BufferPool pool(8, /*num_shards=*/1);
  pool.AttachVolume(&volume);
  volume.AllocateRun(16);
  WriteTaggedPages(&volume, 0, 16);
  pool.Prefetch(PageId{0, 0}, 16);
  // 16 pages into an 8-frame shard would evict itself; nothing loaded.
  EXPECT_EQ(pool.stats().readahead_pages, 0);
  // Demand reads still work.
  auto g = pool.Pin(PageId{0, 11});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->page()->payload()[0], 11);
}

// ---------- Fault injection through the batched path ----------

TEST(ReadaheadFaultTest, BatchConsultsInjectorPerPageAndRetriesFailures) {
  NodeClock clock;
  DiskVolume volume(/*volume_id=*/7, &clock);
  BufferPool pool(256, /*num_shards=*/1);
  pool.AttachVolume(&volume);
  RetryPolicy policy;
  pool.set_retry_policy(policy);
  volume.AllocateRun(16);
  WriteTaggedPages(&volume, 0, 16);

  FaultInjector inj(/*seed=*/42);
  // Per-page ordinals: the batch's read of page 5 is that page's read #0,
  // exactly as it would be for a one-page-at-a-time scan.
  inj.InjectDiskFault(/*node=*/3, /*volume=*/7, /*page=*/5, /*ordinal=*/0,
                      sim::DiskFaultKind::kTornRead);
  inj.InjectDiskFault(/*node=*/3, /*volume=*/7, /*page=*/9, /*ordinal=*/0,
                      sim::DiskFaultKind::kTransientError);
  volume.SetFaultInjector(&inj, /*node_id=*/3);

  ResourceUsage before = clock.phase_usage();
  pool.Prefetch(PageId{7, 0}, 16);
  ResourceUsage d = UsageDelta(before, clock.phase_usage());

  auto s = pool.stats();
  EXPECT_EQ(s.readahead_pages, 16) << "both faulted pages were healed";
  EXPECT_EQ(s.checksum_failures, 1);  // the torn page
  EXPECT_EQ(s.read_retries, 2);       // one retry per faulted page
  // Each retry waited out the first backoff step as modeled idle time.
  EXPECT_DOUBLE_EQ(d.idle_seconds, 2 * policy.BackoffSeconds(0));
  // One seek for the batch plus one per single-page retry.
  EXPECT_EQ(d.disk_seeks, 3);
  EXPECT_EQ(d.disk_bytes_read, 18 * static_cast<int64_t>(kPageSize));

  // All 16 pages resident and intact.
  for (PageNo p = 0; p < 16; ++p) {
    auto g = pool.Pin(PageId{7, p});
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->page()->payload()[0], static_cast<uint8_t>(p));
  }
  EXPECT_EQ(pool.stats().misses, 0);
}

// ---------- PageGuard reuse (pin-leak regression) ----------

TEST(PageGuardTest, AssigningOverAValidGuardReleasesItsPin) {
  DiskVolume volume(0, nullptr);
  BufferPool pool(2, /*num_shards=*/1);
  pool.AttachVolume(&volume);
  volume.AllocateRun(8);
  WriteTaggedPages(&volume, 0, 8);

  // Repeatedly assign over a still-valid guard. If the old pin leaked, a
  // 2-frame pool would run out of evictable frames within a few rounds.
  PageGuard guard;
  for (PageNo p = 0; p < 8; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok()) << "pin leak at page " << p << ": "
                        << g.status().ToString();
    guard = std::move(*g);
    EXPECT_EQ(guard.page()->payload()[0], static_cast<uint8_t>(p));
  }
  guard.Release();
  guard.Release();  // double release is a no-op

  // Every pin is back to zero: the whole pool is evictable again.
  for (PageNo p = 0; p < 4; ++p) {
    auto g = pool.Pin(PageId{0, p});
    ASSERT_TRUE(g.ok());
  }
  // And DiscardAll's no-pinned-pages invariant holds.
  pool.DiscardAll();
}

TEST(PageGuardTest, MoveLeavesSourceInvalid) {
  DiskVolume volume(0, nullptr);
  BufferPool pool(4, /*num_shards=*/1);
  pool.AttachVolume(&volume);
  volume.AllocateRun(2);
  WriteTaggedPages(&volume, 0, 2);

  auto g = pool.Pin(PageId{0, 0});
  ASSERT_TRUE(g.ok());
  PageGuard a = std::move(*g);
  ASSERT_TRUE(a.valid());
  PageGuard b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  PageGuard c;
  c = std::move(b);
  EXPECT_FALSE(b.valid());
  EXPECT_TRUE(c.valid());
  c.Release();
  EXPECT_FALSE(c.valid());
  pool.DiscardAll();  // would abort if a pin leaked through the moves
}

// ---------- Concurrency (exercised under TSan in CI) ----------

TEST(BufferPoolConcurrencyTest, ParallelPinsAndPrefetchesAreRaceFree) {
  DiskVolume volume(0, nullptr);
  BufferPool pool(128, /*num_shards=*/4);
  pool.AttachVolume(&volume);
  constexpr PageNo kPages = 96;
  volume.AllocateRun(kPages);
  WriteTaggedPages(&volume, 0, kPages);

  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        PageNo p = static_cast<PageNo>((i * 7 + t * 13) % kPages);
        if (i % 16 == 0) {
          pool.Prefetch(PageId{0, (p / 8) * 8}, 8);
        }
        auto g = pool.Pin(PageId{0, p});
        ASSERT_TRUE(g.ok()) << g.status().ToString();
        ASSERT_EQ(g->page()->payload()[0], static_cast<uint8_t>(p));
      }
    });
  }
  // Snapshot stats concurrently with the pin/prefetch storm: stats() holds
  // every shard mutex at once, so each snapshot is a coherent cut — pages
  // counted as readahead must already be countable as residents, and
  // hits + misses never exceeds the pins issued so far.
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      auto snap = pool.stats();
      ASSERT_GE(snap.hits + snap.misses, 0);
      ASSERT_LE(snap.hits + snap.misses,
                static_cast<int64_t>(kThreads) * kIters);
      ASSERT_LE(snap.readahead_pages + snap.scan_shared_pages,
                snap.misses + snap.evictions + 128);
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();

  auto s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kIters)
      << "every pin is exactly one hit or one miss";
  pool.DiscardAll();  // all pins released
}

// ---------- Query-level acceptance: readahead keeps determinism ----------

benchmark::LoadOptions TinyLoadOptions() {
  benchmark::LoadOptions lopts;
  lopts.tiles_per_axis = 20;
  return lopts;
}

datagen::DataSetOptions TinyDataOptions() {
  datagen::DataSetOptions o;
  o.size_fraction = 1.0 / 1000;
  o.num_dates = 8;
  o.base_raster_size = 96;
  return o;
}

struct LoadedDb {
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<benchmark::BenchmarkDatabase> db;
};

LoadedDb LoadTinyDb(int nodes, int num_threads) {
  LoadedDb out;
  core::Cluster::Options copts;
  copts.buffer_pool_frames = 2048;
  copts.pool_shards = 8;  // fixed, so results do not depend on the host
  out.cluster = std::make_unique<core::Cluster>(nodes, copts);
  out.cluster->SetNumThreads(num_threads);
  datagen::GlobalDataSet ds =
      datagen::GenerateGlobalDataSet(TinyDataOptions());
  auto db = benchmark::BenchmarkDatabase::Load(out.cluster.get(), ds,
                                               TinyLoadOptions());
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  out.db = std::move(*db);
  return out;
}

struct PoolCounters {
  int64_t misses = 0;
  int64_t readahead_batches = 0;
  int64_t readahead_pages = 0;
  int64_t evictions = 0;
  friend bool operator==(const PoolCounters&, const PoolCounters&) = default;
};

std::vector<PoolCounters> PerNodePoolCounters(core::Cluster* cluster) {
  std::vector<PoolCounters> out;
  for (int i = 0; i < cluster->num_nodes(); ++i) {
    auto s = cluster->node(i).pool()->stats();
    out.push_back(PoolCounters{s.misses, s.readahead_batches,
                               s.readahead_pages, s.evictions});
  }
  return out;
}

struct QueryRun {
  double seconds = 0.0;
  std::vector<PoolCounters> pools;
  int64_t readahead_batches_total = 0;
};

QueryRun RunWithReadahead(int query, int num_threads, bool faulted) {
  LoadedDb loaded = LoadTinyDb(4, num_threads);
  FaultInjector inj(/*seed=*/0xbead5);
  if (faulted) {
    inj.set_transient_read_rate(0.05);
    inj.set_torn_read_rate(0.05);
    loaded.cluster->SetFaultInjector(&inj);
  }
  auto r = benchmark::RunQueryByNumber(loaded.db.get(), query);
  EXPECT_TRUE(r.ok()) << "query " << query << ": " << r.status().ToString();
  QueryRun out;
  if (r.ok()) out.seconds = r->seconds;
  out.pools = PerNodePoolCounters(loaded.cluster.get());
  for (const PoolCounters& c : out.pools) {
    out.readahead_batches_total += c.readahead_batches;
  }
  if (faulted) loaded.cluster->SetFaultInjector(nullptr);
  return out;
}

class ReadaheadDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ReadaheadDeterminismTest, ModeledTimeBitIdenticalAcrossThreadCounts) {
  const int query = GetParam();

  QueryRun clean1 = RunWithReadahead(query, /*num_threads=*/1, false);
  QueryRun clean8 = RunWithReadahead(query, /*num_threads=*/8, false);
  // The scan-heavy query actually engages readahead (query 5 is a pure
  // index probe + gather: its determinism still matters, but it reads too
  // few pages to batch).
  if (query == 2) {
    EXPECT_GT(clean1.readahead_batches_total, 0) << "query " << query;
  }
  // Bit-identical modeled time and identical per-node pool behaviour.
  EXPECT_EQ(clean1.seconds, clean8.seconds) << "query " << query;
  EXPECT_EQ(clean1.pools, clean8.pools) << "query " << query;

  QueryRun faulted1 = RunWithReadahead(query, /*num_threads=*/1, true);
  QueryRun faulted8 = RunWithReadahead(query, /*num_threads=*/8, true);
  EXPECT_EQ(faulted1.seconds, faulted8.seconds) << "query " << query;
  EXPECT_EQ(faulted1.pools, faulted8.pools) << "query " << query;
  // Faults cost modeled time even through the batched path.
  if (query == 2) {
    EXPECT_GT(faulted1.seconds, clean1.seconds) << "query " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, ReadaheadDeterminismTest,
                         ::testing::Values(2, 5));

}  // namespace
}  // namespace paradise
