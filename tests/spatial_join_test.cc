#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/spatial_join.h"

namespace paradise::exec {
namespace {

using geom::Box;
using geom::Point;
using geom::Polygon;
using geom::Polyline;

ExecContext NullCtx() { return ExecContext{}; }

Polygon RandomPolygon(Rng* rng, double extent, double radius, int n) {
  double cx = rng->NextDouble(-extent, extent);
  double cy = rng->NextDouble(-extent, extent);
  std::vector<Point> ring;
  for (int i = 0; i < n; ++i) {
    double angle = 2 * M_PI * i / n;
    double r = radius * (0.5 + 0.5 * rng->NextDouble());
    ring.push_back(Point{cx + r * std::cos(angle), cy + r * std::sin(angle)});
  }
  return Polygon(std::move(ring));
}

Polyline RandomPolyline(Rng* rng, double extent, double step, int n) {
  Point cur{rng->NextDouble(-extent, extent), rng->NextDouble(-extent, extent)};
  std::vector<Point> pts;
  double heading = rng->NextDouble(0, 2 * M_PI);
  for (int i = 0; i < n; ++i) {
    pts.push_back(cur);
    heading += rng->NextDouble(-0.5, 0.5);
    cur.x += step * std::cos(heading);
    cur.y += step * std::sin(heading);
  }
  return Polyline(std::move(pts));
}

TupleVec PolygonTuples(Rng* rng, int n, double extent, double radius) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Tuple(
        {Value(int64_t{i}), Value(RandomPolygon(rng, extent, radius, 8))}));
  }
  return out;
}

TupleVec PolylineTuples(Rng* rng, int n, double extent) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Tuple({Value(int64_t{i + 100000}),
                         Value(RandomPolyline(rng, extent, 2.0, 6))}));
  }
  return out;
}

std::set<std::pair<int64_t, int64_t>> JoinKeys(const TupleVec& joined,
                                               size_t lid, size_t rid) {
  std::set<std::pair<int64_t, int64_t>> keys;
  for (const Tuple& t : joined) {
    auto inserted =
        keys.emplace(t.at(lid).AsInt(), t.at(rid).AsInt());
    EXPECT_TRUE(inserted.second) << "duplicate join result";
  }
  return keys;
}

class PbsmPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PbsmPropertyTest, MatchesNestedLoopsWithNoDuplicates) {
  auto [seed, partitions] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  ExecContext ctx = NullCtx();
  TupleVec left = PolygonTuples(&rng, 150, 40, 5);
  TupleVec right = PolylineTuples(&rng, 120, 40);

  PbsmOptions opts;
  opts.num_partitions = static_cast<size_t>(partitions);
  auto pbsm = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
  ASSERT_TRUE(pbsm.ok());

  auto nl = NestedLoopsJoin(left, right, Overlaps(Col(1), Col(3)), ctx);
  ASSERT_TRUE(nl.ok());

  EXPECT_EQ(JoinKeys(*pbsm, 0, 2), JoinKeys(*nl, 0, 2));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPartitions, PbsmPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 4, 32, 111)));

TEST(PbsmTest, EmptyInputs) {
  ExecContext ctx = NullCtx();
  Rng rng(1);
  TupleVec some = PolygonTuples(&rng, 10, 10, 2);
  auto r1 = PbsmSpatialJoin({}, 1, some, 1, ctx);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());
  auto r2 = PbsmSpatialJoin(some, 1, {}, 1, ctx);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(PbsmTest, SkewedDataStillCorrect) {
  // Everything piled into one corner: stresses replication + dedup.
  Rng rng(9);
  ExecContext ctx = NullCtx();
  TupleVec left, right;
  for (int i = 0; i < 80; ++i) {
    left.push_back(Tuple({Value(int64_t{i}),
                          Value(RandomPolygon(&rng, 2, 1.5, 6))}));
    right.push_back(Tuple({Value(int64_t{i + 100000}),
                           Value(RandomPolygon(&rng, 2, 1.5, 6))}));
  }
  PbsmOptions opts;
  opts.num_partitions = 16;
  auto pbsm = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
  ASSERT_TRUE(pbsm.ok());
  auto nl = NestedLoopsJoin(left, right, Overlaps(Col(1), Col(3)), ctx);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(JoinKeys(*pbsm, 0, 2), JoinKeys(*nl, 0, 2));
}

TEST(PbsmTest, DegenerateMbrsOnCellBoundariesNoDuplicates) {
  // Left: zero-extent polylines sitting exactly on every cell boundary
  // crossing of an 8x8 grid over [0,8]^2 (corner anchors pin the
  // universe). Right: polygons covering exactly one cell, edges on the
  // boundaries. A point on a shared cell edge is replicated into every
  // adjacent partition; the reference-point rule must still report each
  // matching pair exactly once — JoinKeys() fails on any duplicate.
  ExecContext ctx = NullCtx();
  TupleVec left, right;
  int64_t id = 0;
  for (int i = 0; i <= 8; ++i) {
    for (int j = 0; j <= 8; ++j) {
      double x = static_cast<double>(i), y = static_cast<double>(j);
      left.push_back(
          Tuple({Value(id++), Value(Polyline({{x, y}, {x, y}}))}));
    }
  }
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      double x = static_cast<double>(i), y = static_cast<double>(j);
      right.push_back(Tuple(
          {Value(id++), Value(Polygon({{x, y}, {x + 1, y}, {x + 1, y + 1},
                                       {x, y + 1}}))}));
    }
  }
  PbsmOptions opts;
  opts.num_partitions = 16;
  opts.cells_per_axis = 8;
  for (auto map :
       {PbsmOptions::CellMap::kModulo, PbsmOptions::CellMap::kBlockHash}) {
    opts.cell_map = map;
    auto pbsm = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
    ASSERT_TRUE(pbsm.ok());
    auto nl = NestedLoopsJoin(left, right, Overlaps(Col(1), Col(3)), ctx);
    ASSERT_TRUE(nl.ok());
    EXPECT_EQ(JoinKeys(*pbsm, 0, 2), JoinKeys(*nl, 0, 2));
  }
}

/// Ordered (left id, right id) pairs — position-sensitive, unlike JoinKeys.
std::vector<std::pair<int64_t, int64_t>> OrderedKeys(const TupleVec& joined,
                                                     size_t lid, size_t rid) {
  std::vector<std::pair<int64_t, int64_t>> keys;
  for (const Tuple& t : joined) {
    keys.emplace_back(t.at(lid).AsInt(), t.at(rid).AsInt());
  }
  return keys;
}

void ExpectUsageEq(const sim::ResourceUsage& a, const sim::ResourceUsage& b) {
  EXPECT_EQ(a.cpu_ops, b.cpu_ops);  // bit-identical doubles, not near
  EXPECT_EQ(a.disk_seeks, b.disk_seeks);
  EXPECT_EQ(a.disk_bytes_read, b.disk_bytes_read);
  EXPECT_EQ(a.disk_bytes_written, b.disk_bytes_written);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.idle_seconds, b.idle_seconds);
}

TEST(PbsmTest, DuplicateXminKeepsResultsDeterministicAndCorrect) {
  // Regression for the sweep sort's tie-break: many MBRs share xmin
  // exactly (geometries snapped to a 0.5 lattice), so the sort order of
  // equal keys is decided purely by the (xlo, ordinal) rule. An unstable
  // sort without the ordinal tie would make the emission order — and with
  // it the result order — depend on the sort implementation. Two runs
  // must agree exactly, and both must match nested loops.
  Rng rng(41);
  ExecContext ctx = NullCtx();
  TupleVec left, right;
  for (int i = 0; i < 200; ++i) {
    double x = static_cast<double>(rng.NextInt(-10, 10)) * 0.5;
    double y = static_cast<double>(rng.NextInt(-10, 10)) * 0.5;
    left.push_back(Tuple(
        {Value(int64_t{i}), Value(Polyline({{x, y}, {x + 0.7, y + 0.7}}))}));
    // Right side reuses the same lattice, so cross-side xmin duplicates
    // (and exact coordinate duplicates within each side) are everywhere.
    double rx = static_cast<double>(rng.NextInt(-10, 10)) * 0.5;
    double ry = static_cast<double>(rng.NextInt(-10, 10)) * 0.5;
    right.push_back(
        Tuple({Value(int64_t{i + 100000}),
               Value(Polyline({{rx, ry}, {rx + 0.7, ry - 0.7}}))}));
  }
  PbsmOptions opts;
  opts.num_partitions = 16;
  auto r1 = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
  auto r2 = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(OrderedKeys(*r1, 0, 2), OrderedKeys(*r2, 0, 2));
  auto nl = NestedLoopsJoin(left, right, Overlaps(Col(1), Col(3)), ctx);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(JoinKeys(*r1, 0, 2), JoinKeys(*nl, 0, 2));
}

TEST(PbsmTest, AosKernelBitIdenticalToSoa) {
  // The AoS sweep is kept for ablation only, but it must stay a true
  // control: same result rows in the same order, same modeled charges,
  // and the same sweep counters as the SoA kernel.
  Rng rng(43);
  TupleVec left = PolygonTuples(&rng, 180, 45, 5);
  TupleVec right = PolylineTuples(&rng, 200, 45);
  PbsmOptions opts;
  opts.num_partitions = 24;

  std::vector<std::pair<int64_t, int64_t>> keys_soa;
  sim::ResourceUsage usage_soa;
  PbsmJoinStats stats_soa;
  for (auto kernel :
       {PbsmOptions::SweepKernel::kSoa, PbsmOptions::SweepKernel::kAos}) {
    opts.sweep_kernel = kernel;
    sim::NodeClock clock;
    PbsmJoinStats stats;
    ExecContext ctx;
    ctx.clock = &clock;
    ctx.pbsm_stats = &stats;
    auto r = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
    ASSERT_TRUE(r.ok());
    sim::ResourceUsage usage = clock.EndPhase();
    if (kernel == PbsmOptions::SweepKernel::kSoa) {
      keys_soa = OrderedKeys(*r, 0, 2);
      usage_soa = usage;
      stats_soa = stats;
      EXPECT_GT(stats.sweep_pair_compares, 0);
      EXPECT_GT(stats.sweep_candidates, 0);
      EXPECT_GT(stats.exact_tests, 0);
      EXPECT_GE(stats.sweep_candidates, stats.exact_tests);
    } else {
      EXPECT_EQ(OrderedKeys(*r, 0, 2), keys_soa) << "kernels diverged";
      ExpectUsageEq(usage, usage_soa);
      EXPECT_EQ(stats, stats_soa);
    }
  }
}

TEST(PbsmTest, ZeroWidthUniverseInflates) {
  // Every geometry is the same single point: the universe has zero width
  // and height, forcing the Inflate(1.0) path; the join must still find
  // all pairs, each exactly once.
  ExecContext ctx = NullCtx();
  TupleVec left, right;
  for (int i = 0; i < 6; ++i) {
    left.push_back(
        Tuple({Value(int64_t{i}), Value(Polyline({{3, 4}, {3, 4}}))}));
    right.push_back(Tuple(
        {Value(int64_t{i + 100}), Value(Polyline({{3, 4}, {3, 4}}))}));
  }
  PbsmOptions opts;
  opts.num_partitions = 8;
  auto pbsm = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
  ASSERT_TRUE(pbsm.ok());
  EXPECT_EQ(pbsm->size(), 36u);
  EXPECT_EQ(JoinKeys(*pbsm, 0, 2).size(), 36u);

  // One-dimensional degeneracy: all on a vertical segment (zero width,
  // nonzero height) — the same inflation guard covers it.
  TupleVec vleft, vright;
  for (int i = 0; i < 4; ++i) {
    double y = static_cast<double>(i);
    vleft.push_back(Tuple(
        {Value(int64_t{i}), Value(Polyline({{1, y}, {1, y + 1}}))}));
    vright.push_back(Tuple({Value(int64_t{i + 100}),
                            Value(Polyline({{1, y + 0.5}, {1, y + 1.5}}))}));
  }
  auto vres = PbsmSpatialJoin(vleft, 1, vright, 1, ctx, opts);
  ASSERT_TRUE(vres.ok());
  auto vnl = NestedLoopsJoin(vleft, vright, Overlaps(Col(1), Col(3)), ctx);
  ASSERT_TRUE(vnl.ok());
  EXPECT_EQ(JoinKeys(*vres, 0, 2), JoinKeys(*vnl, 0, 2));
}

TEST(PbsmTest, ThreadCountLeavesResultsAndChargesBitIdentical) {
  Rng rng(31);
  TupleVec left = PolygonTuples(&rng, 220, 50, 6);
  TupleVec right = PolylineTuples(&rng, 260, 50);
  PbsmOptions opts;
  opts.num_partitions = 48;

  std::vector<std::pair<int64_t, int64_t>> keys_1;
  sim::ResourceUsage usage_1;
  PbsmJoinStats stats_1;
  for (int threads : {1, 8}) {
    common::ThreadPool pool(threads);
    sim::NodeClock clock;
    PbsmJoinStats stats;
    ExecContext ctx;
    ctx.clock = &clock;
    ctx.pool = &pool;
    ctx.pbsm_stats = &stats;
    auto r = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
    ASSERT_TRUE(r.ok());
    sim::ResourceUsage usage = clock.EndPhase();
    if (threads == 1) {
      keys_1 = OrderedKeys(*r, 0, 2);
      usage_1 = usage;
      stats_1 = stats;
      EXPECT_EQ(stats.parallel_tasks, 0);
    } else {
      EXPECT_EQ(OrderedKeys(*r, 0, 2), keys_1) << "result order changed";
      ExpectUsageEq(usage, usage_1);
      EXPECT_EQ(stats.partitions, stats_1.partitions);
      EXPECT_EQ(stats.left_items, stats_1.left_items);
      EXPECT_EQ(stats.right_items, stats_1.right_items);
      EXPECT_EQ(stats.max_partition_items, stats_1.max_partition_items);
      EXPECT_EQ(stats.mean_partition_items, stats_1.mean_partition_items);
      // Sweep-kernel counters are summed in partition order at the merge,
      // so they must not move with the schedule either.
      EXPECT_EQ(stats.sweep_pair_compares, stats_1.sweep_pair_compares);
      EXPECT_EQ(stats.sweep_candidates, stats_1.sweep_candidates);
      EXPECT_EQ(stats.exact_tests, stats_1.exact_tests);
      EXPECT_GT(stats.parallel_tasks, 0);
    }
  }
}

TEST(IndexSpatialJoinTest, ThreadCountLeavesResultsAndChargesBitIdentical) {
  Rng rng(33);
  ExecContext build_ctx = NullCtx();
  // > 2 chunks of 256 so the parallel path genuinely splits the outer.
  TupleVec outer = PolygonTuples(&rng, 700, 60, 4);
  TupleVec inner = PolylineTuples(&rng, 400, 60);
  auto tree = BuildRTreeOnColumn(inner, 1, build_ctx);

  std::vector<std::pair<int64_t, int64_t>> keys_1;
  sim::ResourceUsage usage_1;
  for (int threads : {1, 8}) {
    common::ThreadPool pool(threads);
    sim::NodeClock clock;
    ExecContext ctx;
    ctx.clock = &clock;
    ctx.pool = &pool;
    auto r = IndexSpatialJoin(outer, 1, inner, 1, *tree, ctx);
    ASSERT_TRUE(r.ok());
    sim::ResourceUsage usage = clock.EndPhase();
    if (threads == 1) {
      keys_1 = OrderedKeys(*r, 0, 2);
      usage_1 = usage;
      EXPECT_GT(usage.disk_seeks, 0) << "cold index visits must charge I/O";
    } else {
      EXPECT_EQ(OrderedKeys(*r, 0, 2), keys_1) << "result order changed";
      ExpectUsageEq(usage, usage_1);
    }
  }
}

TEST(PbsmTest, BlockHashMapBalancesClusteredDataBetterThanModulo) {
  // Clustered inputs on modulo's degenerate grid (P divides the cell row
  // width, so `cell % P` collapses to `cx % P`): the block-hash map must
  // cut the largest partition.
  Rng rng(37);
  TupleVec left, right;
  for (int i = 0; i < 600; ++i) {
    // Three tight hotspots along x = 10, 11, 12 — a few grid columns.
    double cx = 10.0 + (i % 3);
    double x = cx + rng.NextDouble(-0.4, 0.4);
    double y = rng.NextDouble(-40, 40);
    left.push_back(Tuple({Value(int64_t{i}),
                          Value(Polyline({{x, y}, {x + 0.2, y + 0.2}}))}));
    right.push_back(Tuple({Value(int64_t{i + 100000}),
                           Value(Polyline({{x, y}, {x + 0.2, y + 0.2}}))}));
  }
  // Corner anchors pin the universe to [-50,50]^2 so columns are stable.
  left.push_back(
      Tuple({Value(int64_t{9000}), Value(Polyline({{-50, -50}, {-50, -50}}))}));
  left.push_back(
      Tuple({Value(int64_t{9001}), Value(Polyline({{50, 50}, {50, 50}}))}));

  PbsmOptions opts;
  opts.num_partitions = 32;
  opts.cells_per_axis = 32;
  ExecContext ctx;
  PbsmJoinStats modulo_stats, hash_stats;

  opts.cell_map = PbsmOptions::CellMap::kModulo;
  ctx.pbsm_stats = &modulo_stats;
  ASSERT_TRUE(PbsmSpatialJoin(left, 1, right, 1, ctx, opts).ok());

  opts.cell_map = PbsmOptions::CellMap::kBlockHash;
  ctx.pbsm_stats = &hash_stats;
  ASSERT_TRUE(PbsmSpatialJoin(left, 1, right, 1, ctx, opts).ok());

  EXPECT_LT(hash_stats.max_partition_items, modulo_stats.max_partition_items);
  EXPECT_EQ(hash_stats.left_tuples, modulo_stats.left_tuples);
  EXPECT_GT(modulo_stats.replication(), 0.99);
}

TEST(IndexSpatialJoinTest, MatchesNestedLoops) {
  Rng rng(21);
  ExecContext ctx = NullCtx();
  TupleVec outer = PolygonTuples(&rng, 60, 30, 4);
  TupleVec inner = PolylineTuples(&rng, 90, 30);
  auto tree = BuildRTreeOnColumn(inner, 1, ctx);
  auto idx = IndexSpatialJoin(outer, 1, inner, 1, *tree, ctx);
  ASSERT_TRUE(idx.ok());
  auto nl = NestedLoopsJoin(outer, inner, Overlaps(Col(1), Col(3)), ctx);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(JoinKeys(*idx, 0, 2), JoinKeys(*nl, 0, 2));
}

class ExpandingCircleTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpandingCircleTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  ExecContext ctx = NullCtx();
  TupleVec targets = PolylineTuples(&rng, 80, 200);
  auto tree = BuildRTreeOnColumn(targets, 1, ctx);
  double universe_area = 160.0 * 160.0;
  for (int q = 0; q < 25; ++q) {
    Point p{rng.NextDouble(-80, 80), rng.NextDouble(-80, 80)};
    auto match = ExpandingCircleClosest(p, targets, 1, *tree, universe_area,
                                        ctx);
    ASSERT_TRUE(match.ok());
    ASSERT_TRUE(match->found);
    double best = 1e300;
    size_t best_row = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
      double d = targets[i].at(1).AsPolyline()->DistanceTo(p);
      if (d < best) {
        best = d;
        best_row = i;
      }
    }
    EXPECT_NEAR(match->distance, best, 1e-9);
    EXPECT_EQ(match->row, best_row);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpandingCircleTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ExpandingCircleTest, EmptyTargets) {
  ExecContext ctx = NullCtx();
  index::RStarTree tree;
  auto match = ExpandingCircleClosest(Point{0, 0}, {}, 1, tree, 100.0, ctx);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->found);
}

TEST(ExpandingCircleTest, FarAwayPointFallsBackToScan) {
  // The point is way outside the data's universe: the circle must expand
  // past the bound and the scan fallback must still answer correctly.
  Rng rng(3);
  ExecContext ctx = NullCtx();
  TupleVec targets = PolylineTuples(&rng, 5, 10);
  auto tree = BuildRTreeOnColumn(targets, 1, ctx);
  Point p{5000, 5000};
  auto match = ExpandingCircleClosest(p, targets, 1, *tree, 100.0, ctx);
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->found);
  double best = 1e300;
  for (const Tuple& t : targets) {
    best = std::min(best, t.at(1).AsPolyline()->DistanceTo(p));
  }
  EXPECT_NEAR(match->distance, best, 1e-9);
}

// ---------------------------------------------------------------------------
// Two-layer class mini-join plan vs. the legacy replicate-and-dedup PBSM.

TupleVec ClusteredTuples(Rng* rng, int n, int64_t id_base) {
  // Three tight hotspots plus corner anchors — the shape that makes
  // replicate-and-dedup pay (many entries straddle tile boundaries
  // inside the hotspots).
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    double cx = 10.0 + (i % 3);
    double x = cx + rng->NextDouble(-0.6, 0.6);
    double y = rng->NextDouble(-40, 40);
    out.push_back(Tuple({Value(id_base + i),
                         Value(Polyline({{x, y}, {x + 0.4, y + 0.4}}))}));
  }
  out.push_back(Tuple(
      {Value(id_base + 9000), Value(Polyline({{-50, -50}, {-50, -50}}))}));
  out.push_back(
      Tuple({Value(id_base + 9001), Value(Polyline({{50, 50}, {50, 50}}))}));
  return out;
}

class TwoLayerDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoLayerDifferentialTest, MatchesLegacyWithZeroDedup) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  // Alternate data shapes across seeds: uniform random and clustered.
  TupleVec left, right;
  if (seed % 2 == 0) {
    left = PolygonTuples(&rng, 160, 40, 5);
    right = PolylineTuples(&rng, 140, 40);
  } else {
    left = ClusteredTuples(&rng, 200, 0);
    right = ClusteredTuples(&rng, 180, 100000);
  }

  ExecContext ctx = NullCtx();
  PbsmJoinStats two_stats;
  ctx.pbsm_stats = &two_stats;
  TwoLayerOptions two;
  two.tiles_per_axis = 16;
  auto twol = TwoLayerSpatialJoin(left, 1, right, 1, ctx, two);
  ASSERT_TRUE(twol.ok());

  ExecContext lctx = NullCtx();
  auto legacy = PbsmSpatialJoin(left, 1, right, 1, lctx);
  ASSERT_TRUE(legacy.ok());
  auto nl = NestedLoopsJoin(left, right, Overlaps(Col(1), Col(3)), lctx);
  ASSERT_TRUE(nl.ok());

  EXPECT_EQ(JoinKeys(*twol, 0, 2), JoinKeys(*legacy, 0, 2));
  EXPECT_EQ(JoinKeys(*twol, 0, 2), JoinKeys(*nl, 0, 2));
  // The plan's whole point: no reference-point duplicate elimination runs.
  EXPECT_EQ(two_stats.dedup_tests, 0);
  EXPECT_EQ(two_stats.dedup_dropped, 0);
  // Every distributed entry is classified; A..D census covers all items.
  EXPECT_EQ(two_stats.class_a_items + two_stats.class_b_items +
                two_stats.class_c_items + two_stats.class_d_items,
            two_stats.left_items + two_stats.right_items);
  EXPECT_GT(two_stats.class_a_items, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoLayerDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(TwoLayerTest, DegenerateInputs) {
  ExecContext ctx = NullCtx();
  // Zero-width universe: every geometry is the same point, forcing the
  // inflation guard; all 36 cross pairs, each exactly once.
  TupleVec left, right;
  for (int i = 0; i < 6; ++i) {
    left.push_back(
        Tuple({Value(int64_t{i}), Value(Polyline({{3, 4}, {3, 4}}))}));
    right.push_back(Tuple(
        {Value(int64_t{i + 100}), Value(Polyline({{3, 4}, {3, 4}}))}));
  }
  PbsmJoinStats stats;
  ctx.pbsm_stats = &stats;
  auto r = TwoLayerSpatialJoin(left, 1, right, 1, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(JoinKeys(*r, 0, 2).size(), 36u);
  EXPECT_EQ(stats.dedup_tests, 0);
  EXPECT_EQ(stats.dedup_dropped, 0);

  // All-spanning MBRs: one entry per side covers the whole universe (so
  // it lands in every tile, class D almost everywhere) among normal data.
  Rng rng(11);
  TupleVec bl = PolygonTuples(&rng, 40, 30, 4);
  TupleVec br = PolylineTuples(&rng, 40, 30);
  bl.push_back(Tuple({Value(int64_t{777}),
                      Value(Polygon({{-60, -60}, {60, -60}, {60, 60},
                                     {-60, 60}}))}));
  br.push_back(Tuple(
      {Value(int64_t{888}),
       Value(Polyline({{-60, -60}, {60, 60}}))}));
  ExecContext c2 = NullCtx();
  auto twol = TwoLayerSpatialJoin(bl, 1, br, 1, c2);
  ASSERT_TRUE(twol.ok());
  auto nl = NestedLoopsJoin(bl, br, Overlaps(Col(1), Col(3)), c2);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(JoinKeys(*twol, 0, 2), JoinKeys(*nl, 0, 2));
}

TEST(TwoLayerTest, CrossSpillPairNeedsBxC) {
  // r spans columns only (begin class B at the intersection tile), s spans
  // rows only (class C there); neither is class A anywhere near the
  // reference point (5,5). A mini-join matrix without B×C / C×B silently
  // drops this pair.
  ExecContext ctx = NullCtx();
  TupleVec left, right;
  left.push_back(
      Tuple({Value(int64_t{1}), Value(Polyline({{0, 5}, {10, 6}}))}));
  right.push_back(
      Tuple({Value(int64_t{2}), Value(Polyline({{5, 0}, {6, 10}}))}));
  TwoLayerOptions two;
  two.tiles_per_axis = 10;
  two.universe = Box{0, 0, 10, 10};
  auto r = TwoLayerSpatialJoin(left, 1, right, 1, ctx, two);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(TwoLayerTest, OwnedTilePartitionsUnionToGlobalResult) {
  // Split the tile grid among three simulated nodes; each node's run sees
  // the full inputs but only sweeps its owned tiles. The per-node results
  // must be disjoint and union to the global (all-tiles) result — the
  // exactly-once guarantee the parallel join relies on.
  Rng rng(17);
  TupleVec left = PolygonTuples(&rng, 150, 40, 5);
  TupleVec right = PolylineTuples(&rng, 130, 40);
  TwoLayerOptions two;
  two.tiles_per_axis = 8;
  two.universe = Box{-50, -50, 50, 50};

  ExecContext ctx = NullCtx();
  auto global = TwoLayerSpatialJoin(left, 1, right, 1, ctx, two);
  ASSERT_TRUE(global.ok());
  auto global_keys = JoinKeys(*global, 0, 2);

  const uint32_t tiles = two.tiles_per_axis * two.tiles_per_axis;
  std::set<std::pair<int64_t, int64_t>> unioned;
  for (int node = 0; node < 3; ++node) {
    std::vector<uint8_t> owned(tiles, 0);
    for (uint32_t t = 0; t < tiles; ++t) owned[t] = (t % 3 == unsigned(node));
    two.owned = &owned;
    auto part = TwoLayerSpatialJoin(left, 1, right, 1, ctx, two);
    ASSERT_TRUE(part.ok());
    for (auto key : JoinKeys(*part, 0, 2)) {
      EXPECT_TRUE(unioned.insert(key).second)
          << "pair emitted by two owners: " << key.first << "," << key.second;
    }
  }
  EXPECT_EQ(unioned, global_keys);
}

TEST(TwoLayerTest, ThreadCountLeavesResultsAndChargesBitIdentical) {
  Rng rng(53);
  TupleVec left = PolygonTuples(&rng, 220, 50, 6);
  TupleVec right = PolylineTuples(&rng, 260, 50);
  TwoLayerOptions two;
  two.tiles_per_axis = 16;
  two.num_tasks = 48;

  std::vector<std::pair<int64_t, int64_t>> keys_1;
  sim::ResourceUsage usage_1;
  PbsmJoinStats stats_1;
  for (int threads : {1, 8}) {
    common::ThreadPool pool(threads);
    sim::NodeClock clock;
    PbsmJoinStats stats;
    ExecContext ctx;
    ctx.clock = &clock;
    ctx.pool = &pool;
    ctx.pbsm_stats = &stats;
    auto r = TwoLayerSpatialJoin(left, 1, right, 1, ctx, two);
    ASSERT_TRUE(r.ok());
    sim::ResourceUsage usage = clock.EndPhase();
    EXPECT_EQ(stats.dedup_tests, 0);
    EXPECT_EQ(stats.dedup_dropped, 0);
    if (threads == 1) {
      keys_1 = OrderedKeys(*r, 0, 2);
      usage_1 = usage;
      stats_1 = stats;
      EXPECT_EQ(stats.parallel_tasks, 0);
    } else {
      EXPECT_EQ(OrderedKeys(*r, 0, 2), keys_1) << "result order changed";
      ExpectUsageEq(usage, usage_1);
      stats_1.parallel_tasks = stats.parallel_tasks;  // the one allowed delta
      EXPECT_EQ(stats, stats_1);
      EXPECT_GT(stats.parallel_tasks, 0);
    }
  }
}

TEST(ExpandingCircleTest, ProbeCountGrowsWithDistance) {
  Rng rng(4);
  ExecContext ctx = NullCtx();
  TupleVec targets;
  // One cluster of lines near the origin.
  for (int i = 0; i < 50; ++i) {
    double x = rng.NextDouble(-1, 1), y = rng.NextDouble(-1, 1);
    targets.push_back(Tuple({Value(int64_t{i}),
                             Value(Polyline({{x, y}, {x + 0.1, y + 0.1}}))}));
  }
  auto tree = BuildRTreeOnColumn(targets, 1, ctx);
  auto near = ExpandingCircleClosest(Point{0, 0}, targets, 1, *tree, 1e6, ctx);
  auto far = ExpandingCircleClosest(Point{400, 400}, targets, 1, *tree, 1e6,
                                    ctx);
  ASSERT_TRUE(near.ok() && far.ok());
  EXPECT_LT(near->probes, far->probes);
}

}  // namespace
}  // namespace paradise::exec
