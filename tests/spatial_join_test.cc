#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "exec/spatial_join.h"

namespace paradise::exec {
namespace {

using geom::Box;
using geom::Point;
using geom::Polygon;
using geom::Polyline;

ExecContext NullCtx() { return ExecContext{}; }

Polygon RandomPolygon(Rng* rng, double extent, double radius, int n) {
  double cx = rng->NextDouble(-extent, extent);
  double cy = rng->NextDouble(-extent, extent);
  std::vector<Point> ring;
  for (int i = 0; i < n; ++i) {
    double angle = 2 * M_PI * i / n;
    double r = radius * (0.5 + 0.5 * rng->NextDouble());
    ring.push_back(Point{cx + r * std::cos(angle), cy + r * std::sin(angle)});
  }
  return Polygon(std::move(ring));
}

Polyline RandomPolyline(Rng* rng, double extent, double step, int n) {
  Point cur{rng->NextDouble(-extent, extent), rng->NextDouble(-extent, extent)};
  std::vector<Point> pts;
  double heading = rng->NextDouble(0, 2 * M_PI);
  for (int i = 0; i < n; ++i) {
    pts.push_back(cur);
    heading += rng->NextDouble(-0.5, 0.5);
    cur.x += step * std::cos(heading);
    cur.y += step * std::sin(heading);
  }
  return Polyline(std::move(pts));
}

TupleVec PolygonTuples(Rng* rng, int n, double extent, double radius) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Tuple(
        {Value(int64_t{i}), Value(RandomPolygon(rng, extent, radius, 8))}));
  }
  return out;
}

TupleVec PolylineTuples(Rng* rng, int n, double extent) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Tuple({Value(int64_t{i + 100000}),
                         Value(RandomPolyline(rng, extent, 2.0, 6))}));
  }
  return out;
}

std::set<std::pair<int64_t, int64_t>> JoinKeys(const TupleVec& joined,
                                               size_t lid, size_t rid) {
  std::set<std::pair<int64_t, int64_t>> keys;
  for (const Tuple& t : joined) {
    auto inserted =
        keys.emplace(t.at(lid).AsInt(), t.at(rid).AsInt());
    EXPECT_TRUE(inserted.second) << "duplicate join result";
  }
  return keys;
}

class PbsmPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PbsmPropertyTest, MatchesNestedLoopsWithNoDuplicates) {
  auto [seed, partitions] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  ExecContext ctx = NullCtx();
  TupleVec left = PolygonTuples(&rng, 150, 40, 5);
  TupleVec right = PolylineTuples(&rng, 120, 40);

  PbsmOptions opts;
  opts.num_partitions = static_cast<size_t>(partitions);
  auto pbsm = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
  ASSERT_TRUE(pbsm.ok());

  auto nl = NestedLoopsJoin(left, right, Overlaps(Col(1), Col(3)), ctx);
  ASSERT_TRUE(nl.ok());

  EXPECT_EQ(JoinKeys(*pbsm, 0, 2), JoinKeys(*nl, 0, 2));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPartitions, PbsmPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 4, 32, 111)));

TEST(PbsmTest, EmptyInputs) {
  ExecContext ctx = NullCtx();
  Rng rng(1);
  TupleVec some = PolygonTuples(&rng, 10, 10, 2);
  auto r1 = PbsmSpatialJoin({}, 1, some, 1, ctx);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());
  auto r2 = PbsmSpatialJoin(some, 1, {}, 1, ctx);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
}

TEST(PbsmTest, SkewedDataStillCorrect) {
  // Everything piled into one corner: stresses replication + dedup.
  Rng rng(9);
  ExecContext ctx = NullCtx();
  TupleVec left, right;
  for (int i = 0; i < 80; ++i) {
    left.push_back(Tuple({Value(int64_t{i}),
                          Value(RandomPolygon(&rng, 2, 1.5, 6))}));
    right.push_back(Tuple({Value(int64_t{i + 100000}),
                           Value(RandomPolygon(&rng, 2, 1.5, 6))}));
  }
  PbsmOptions opts;
  opts.num_partitions = 16;
  auto pbsm = PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
  ASSERT_TRUE(pbsm.ok());
  auto nl = NestedLoopsJoin(left, right, Overlaps(Col(1), Col(3)), ctx);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(JoinKeys(*pbsm, 0, 2), JoinKeys(*nl, 0, 2));
}

TEST(IndexSpatialJoinTest, MatchesNestedLoops) {
  Rng rng(21);
  ExecContext ctx = NullCtx();
  TupleVec outer = PolygonTuples(&rng, 60, 30, 4);
  TupleVec inner = PolylineTuples(&rng, 90, 30);
  auto tree = BuildRTreeOnColumn(inner, 1, ctx);
  auto idx = IndexSpatialJoin(outer, 1, inner, 1, *tree, ctx);
  ASSERT_TRUE(idx.ok());
  auto nl = NestedLoopsJoin(outer, inner, Overlaps(Col(1), Col(3)), ctx);
  ASSERT_TRUE(nl.ok());
  EXPECT_EQ(JoinKeys(*idx, 0, 2), JoinKeys(*nl, 0, 2));
}

class ExpandingCircleTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpandingCircleTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  ExecContext ctx = NullCtx();
  TupleVec targets = PolylineTuples(&rng, 80, 200);
  auto tree = BuildRTreeOnColumn(targets, 1, ctx);
  double universe_area = 160.0 * 160.0;
  for (int q = 0; q < 25; ++q) {
    Point p{rng.NextDouble(-80, 80), rng.NextDouble(-80, 80)};
    auto match = ExpandingCircleClosest(p, targets, 1, *tree, universe_area,
                                        ctx);
    ASSERT_TRUE(match.ok());
    ASSERT_TRUE(match->found);
    double best = 1e300;
    size_t best_row = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
      double d = targets[i].at(1).AsPolyline()->DistanceTo(p);
      if (d < best) {
        best = d;
        best_row = i;
      }
    }
    EXPECT_NEAR(match->distance, best, 1e-9);
    EXPECT_EQ(match->row, best_row);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpandingCircleTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ExpandingCircleTest, EmptyTargets) {
  ExecContext ctx = NullCtx();
  index::RStarTree tree;
  auto match = ExpandingCircleClosest(Point{0, 0}, {}, 1, tree, 100.0, ctx);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->found);
}

TEST(ExpandingCircleTest, FarAwayPointFallsBackToScan) {
  // The point is way outside the data's universe: the circle must expand
  // past the bound and the scan fallback must still answer correctly.
  Rng rng(3);
  ExecContext ctx = NullCtx();
  TupleVec targets = PolylineTuples(&rng, 5, 10);
  auto tree = BuildRTreeOnColumn(targets, 1, ctx);
  Point p{5000, 5000};
  auto match = ExpandingCircleClosest(p, targets, 1, *tree, 100.0, ctx);
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->found);
  double best = 1e300;
  for (const Tuple& t : targets) {
    best = std::min(best, t.at(1).AsPolyline()->DistanceTo(p));
  }
  EXPECT_NEAR(match->distance, best, 1e-9);
}

TEST(ExpandingCircleTest, ProbeCountGrowsWithDistance) {
  Rng rng(4);
  ExecContext ctx = NullCtx();
  TupleVec targets;
  // One cluster of lines near the origin.
  for (int i = 0; i < 50; ++i) {
    double x = rng.NextDouble(-1, 1), y = rng.NextDouble(-1, 1);
    targets.push_back(Tuple({Value(int64_t{i}),
                             Value(Polyline({{x, y}, {x + 0.1, y + 0.1}}))}));
  }
  auto tree = BuildRTreeOnColumn(targets, 1, ctx);
  auto near = ExpandingCircleClosest(Point{0, 0}, targets, 1, *tree, 1e6, ctx);
  auto far = ExpandingCircleClosest(Point{400, 400}, targets, 1, *tree, 1e6,
                                    ctx);
  ASSERT_TRUE(near.ok() && far.ok());
  EXPECT_LT(near->probes, far->probes);
}

}  // namespace
}  // namespace paradise::exec
