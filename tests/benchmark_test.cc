#include <gtest/gtest.h>

#include "benchmark/database.h"
#include "benchmark/queries.h"

namespace paradise::benchmark {
namespace {

using exec::Tuple;
using exec::TupleVec;
using exec::ValueType;

datagen::DataSetOptions TinyOptions() {
  datagen::DataSetOptions o;
  o.size_fraction = 1.0 / 1000;
  o.num_dates = 8;
  o.base_raster_size = 96;
  return o;
}

struct LoadedDb {
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<BenchmarkDatabase> db;
};

LoadedDb LoadTiny(int nodes, bool decluster_rasters = false) {
  LoadedDb out;
  core::Cluster::Options copts;
  copts.buffer_pool_frames = 2048;
  out.cluster = std::make_unique<core::Cluster>(nodes, copts);
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(TinyOptions());
  LoadOptions lopts;
  lopts.decluster_rasters = decluster_rasters;
  lopts.tiles_per_axis = 20;
  auto db = BenchmarkDatabase::Load(out.cluster.get(), ds, lopts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  out.db = std::move(*db);
  return out;
}

/// Fingerprint of a result set that ignores row order and large-object
/// identity: per-row string of scalar columns, sorted.
std::multiset<std::string> Fingerprint(const TupleVec& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) {
    std::string s;
    for (const exec::Value& v : t.values) {
      switch (v.type()) {
        case ValueType::kRaster: {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "raster[%ux%u]",
                        v.AsRaster()->height(), v.AsRaster()->width());
          s += buf;
          break;
        }
        case ValueType::kDouble: {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.6f", v.AsDouble());
          s += buf;
          break;
        }
        default:
          s += v.ToString();
      }
      s += "|";
    }
    out.insert(std::move(s));
  }
  return out;
}

TEST(BenchmarkDbTest, LoadBuildsAllTables) {
  LoadedDb l = LoadTiny(2);
  EXPECT_GT(l.db->places().num_rows(), 0);
  EXPECT_GT(l.db->roads().num_rows(), 0);
  EXPECT_GT(l.db->drainage().num_rows(), 0);
  EXPECT_GT(l.db->land_cover().num_rows(), 0);
  EXPECT_EQ(l.db->raster().num_rows(), 32);  // 8 dates x 4 channels
  // Spatial tables replicate spanning tuples.
  EXPECT_GE(l.db->roads().num_stored(), l.db->roads().num_rows());
  // Raster tuples land on the node holding their tiles.
  for (int n = 0; n < 2; ++n) {
    auto frag = l.db->raster().ScanFragment(l.cluster.get(), n, true);
    ASSERT_TRUE(frag.ok());
    for (const Tuple& t : *frag) {
      EXPECT_EQ(t.at(datagen::col::kRasterData).AsRaster()->handle.owner_node,
                static_cast<uint32_t>(n));
    }
  }
}

TEST(BenchmarkQueryTest, Query2ClipsChannel5SortedByDate) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery2(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 8u);  // one per date at channel 5
  EXPECT_GT(r->seconds, 0.0);
  for (size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_LE(r->rows[i - 1].at(0).AsDate().days_since_epoch(),
              r->rows[i].at(0).AsDate().days_since_epoch());
  }
  // The clipped attribute is a (smaller) raster.
  const auto& clip = r->rows[0].at(1);
  ASSERT_EQ(clip.type(), ValueType::kRaster);
  EXPECT_LT(clip.AsRaster()->width(), 96u);
}

TEST(BenchmarkQueryTest, Query3ProducesOneAverageImage) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery3(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].at(0).type(), ValueType::kRaster);
}

TEST(BenchmarkQueryTest, Query4InsertsOneRow) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery4(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].at(0).AsInt(), 1);  // one raster matched
}

TEST(BenchmarkQueryTest, Query5FindsPhoenix) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery5(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].at(datagen::col::kPlaceName).AsString(), "Phoenix");
}

TEST(BenchmarkQueryTest, Query6MatchesBruteForce) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery6(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Brute force over the generated data.
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(TinyOptions());
  const geom::Polygon& poly = *l.db->constants().clip_polygon;
  int64_t expected = 0;
  for (const Tuple& t : ds.land_cover) {
    if (t.at(datagen::col::kLcShape).AsPolygon()->Intersects(poly)) ++expected;
  }
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].at(0).AsInt(), expected);
}

TEST(BenchmarkQueryTest, Query7AreasWithinBounds) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery7(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const Tuple& t : r->rows) {
    EXPECT_LT(t.at(0).AsDouble(), l.db->constants().max_area);
  }
}

TEST(BenchmarkQueryTest, Query11OneRowPerRoadType) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery11(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), static_cast<size_t>(datagen::kNumRoadTypes));
  for (const Tuple& t : r->rows) {
    EXPECT_EQ(t.at(1).type(), ValueType::kPolyline);  // closest shape
    EXPECT_GE(t.at(2).AsDouble(), 0.0);               // distance
  }
}

TEST(BenchmarkQueryTest, Query12OneRowPerLargeCity) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery12(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int64_t large = 0;
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(TinyOptions());
  std::set<std::pair<double, double>> locations;
  for (const Tuple& t : ds.populated_places) {
    if (t.at(datagen::col::kPlaceType).AsInt() == datagen::kLargeCityType) {
      ++large;
      const geom::Point& p = t.at(datagen::col::kPlaceLocation).AsPoint();
      locations.insert({p.x, p.y});
    }
  }
  ASSERT_GT(large, 0);
  // Result rows are per distinct city location.
  EXPECT_EQ(r->rows.size(), locations.size());
}

TEST(BenchmarkQueryTest, Query13MatchesBruteForce) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery13(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(TinyOptions());
  int64_t expected = 0;
  for (const Tuple& d : ds.drainage) {
    for (const Tuple& road : ds.roads) {
      if (d.at(datagen::col::kLineShape)
              .AsPolyline()
              ->Intersects(*road.at(datagen::col::kLineShape).AsPolyline())) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(static_cast<int64_t>(r->rows.size()), expected);
}

TEST(BenchmarkQueryTest, Query14CoversDateRange) {
  LoadedDb l = LoadTiny(2);
  auto r = RunQuery14(l.db.get());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Every result row pairs an oil-field polygon with a clipped raster.
  for (const Tuple& t : r->rows) {
    EXPECT_EQ(t.at(0).type(), ValueType::kPolygon);
    EXPECT_EQ(t.at(1).type(), ValueType::kRaster);
  }
}

/// The headline invariant: every query returns identical results no
/// matter how many nodes the database is declustered over.
class NodeCountEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(NodeCountEquivalenceTest, AllQueriesMatchSingleNode) {
  int query = GetParam();
  LoadedDb one = LoadTiny(1);
  LoadedDb four = LoadTiny(4);
  auto r1 = RunQueryByNumber(one.db.get(), query);
  auto r4 = RunQueryByNumber(four.db.get(), query);
  ASSERT_TRUE(r1.ok()) << "1-node: " << r1.status().ToString();
  ASSERT_TRUE(r4.ok()) << "4-node: " << r4.status().ToString();
  EXPECT_EQ(Fingerprint(r1->rows), Fingerprint(r4->rows)) << "query " << query;
}

INSTANTIATE_TEST_SUITE_P(Queries, NodeCountEquivalenceTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 14));

TEST(DeclusterTest, DeclusteredRastersStillAnswerCorrectly) {
  LoadedDb normal = LoadTiny(4, /*decluster_rasters=*/false);
  LoadedDb decl = LoadTiny(4, /*decluster_rasters=*/true);
  auto r1 = RunQuery2(normal.db.get());
  auto r2 = RunQuery2(decl.db.get());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(Fingerprint(r1->rows), Fingerprint(r2->rows));
  // Declustering makes Query 2 *slower* (remote pulls) — Table 3.5's
  // first row.
  EXPECT_GT(r2->seconds, r1->seconds);
}

TEST(DeclusterTest, WholeImageAverageBenefitsFromDeclustering) {
  LoadedDb normal = LoadTiny(4, /*decluster_rasters=*/false);
  LoadedDb decl = LoadTiny(4, /*decluster_rasters=*/true);
  auto r1 = RunQuery3Prime(normal.db.get());
  auto r2 = RunQuery3Prime(decl.db.get());
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Table 3.5's Q3' row: declustering wins big on whole-image work.
  EXPECT_LT(r2->seconds, r1->seconds);
}

TEST(BenchmarkQueryTest, ColdBufferPoolBetweenQueries) {
  LoadedDb l = LoadTiny(2);
  auto first = RunQuery5(l.db.get());
  auto second = RunQuery5(l.db.get());
  ASSERT_TRUE(first.ok() && second.ok());
  // Same modeled time on repeat runs: the pool was flushed (no caching
  // between queries), which is the paper's protocol.
  EXPECT_NEAR(first->seconds, second->seconds, 1e-9);
}

}  // namespace
}  // namespace paradise::benchmark
