#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "codec/lzw.h"
#include "common/rng.h"

namespace paradise::codec {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

void ExpectRoundTrip(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> packed = LzwCompress(data);
  auto unpacked = LzwDecompress(packed);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(*unpacked, data);
}

TEST(LzwTest, EmptyInput) { ExpectRoundTrip({}); }

TEST(LzwTest, SingleByte) { ExpectRoundTrip({42}); }

TEST(LzwTest, SimpleString) { ExpectRoundTrip(Bytes("TOBEORNOTTOBEORTOBEORNOT")); }

TEST(LzwTest, KwKwKCase) {
  // The classic corner case: the decoder sees a code equal to next_code.
  ExpectRoundTrip(Bytes("aaaaaaaaaaaaaaaaaaaaaa"));
  ExpectRoundTrip(Bytes("abababababababababab"));
}

TEST(LzwTest, AllByteValues) {
  std::vector<uint8_t> data;
  for (int rep = 0; rep < 4; ++rep) {
    for (int b = 0; b < 256; ++b) data.push_back(static_cast<uint8_t>(b));
  }
  ExpectRoundTrip(data);
}

TEST(LzwTest, CompressesRepetitiveData) {
  std::vector<uint8_t> data(64 * 1024, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>((i / 512) & 0xff);  // long runs
  }
  std::vector<uint8_t> packed = LzwCompress(data);
  EXPECT_LT(packed.size(), data.size() / 4);
  auto unpacked = LzwDecompress(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, data);
}

TEST(LzwTest, RandomDataDoesNotCorrupt) {
  Rng rng(123);
  std::vector<uint8_t> data(50000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  // Random data typically expands (12-bit codes for 8-bit literals).
  std::vector<uint8_t> packed = LzwCompress(data);
  auto unpacked = LzwDecompress(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, data);
}

TEST(LzwTest, DictionaryResetOnLargeInput) {
  // Force multiple CLEAR cycles: > 4096 distinct phrases.
  Rng rng(7);
  std::vector<uint8_t> data;
  data.reserve(300000);
  for (int i = 0; i < 300000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.NextUint(7) * 37));
  }
  ExpectRoundTrip(data);
}

TEST(LzwTest, SmoothRasterLikeDataCompressesWell) {
  // 16-bit smooth field, little-endian bytes — what tiles look like.
  std::vector<uint8_t> data;
  for (int i = 0; i < 32768; ++i) {
    uint16_t v = static_cast<uint16_t>(2000 + 100 * ((i / 64) % 8));
    data.push_back(static_cast<uint8_t>(v & 0xff));
    data.push_back(static_cast<uint8_t>(v >> 8));
  }
  std::vector<uint8_t> packed = LzwCompress(data);
  EXPECT_LT(packed.size(), data.size() / 2);
  ExpectRoundTrip(data);
}

TEST(LzwTest, DecompressRejectsGarbage) {
  std::vector<uint8_t> garbage = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  auto result = LzwDecompress(garbage);
  EXPECT_FALSE(result.ok());
}

TEST(LzwTest, DecompressRejectsTruncation) {
  std::vector<uint8_t> packed = LzwCompress(Bytes("hello hello hello hello"));
  packed.resize(packed.size() / 2);
  auto result = LzwDecompress(packed);
  // Either corruption is detected or the END marker is missing.
  EXPECT_FALSE(result.ok());
}

/// Parameterized roundtrip sweep over sizes and alphabet widths.
class LzwSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LzwSweepTest, RoundTrip) {
  auto [size, alphabet] = GetParam();
  Rng rng(static_cast<uint64_t>(size) * 1000003 + alphabet);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextUint(static_cast<uint64_t>(alphabet)));
  }
  ExpectRoundTrip(data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, LzwSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 100, 4095, 4096, 4097,
                                         65536),
                       ::testing::Values(1, 2, 16, 256)));

// ---------- Adversarial inputs ----------

/// Packs 12-bit codes MSB-first, mirroring the encoder's BitPacker, so
/// tests can hand-craft malformed code streams.
std::vector<uint8_t> PackCodes(const std::vector<uint32_t>& codes) {
  std::vector<uint8_t> out;
  uint64_t acc = 0;
  uint32_t bits = 0;
  for (uint32_t code : codes) {
    acc = (acc << 12) | code;
    bits += 12;
    while (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<uint8_t>(acc >> bits));
    }
  }
  if (bits > 0) out.push_back(static_cast<uint8_t>(acc << (8 - bits)));
  return out;
}

/// A sequence in which no ordered byte pair repeats: block x holds the
/// pairs (x, y) for y > x, so every adjacent 2-gram — (x, y), (y, x), and
/// the block junctions — is unique. With no repeated 2-gram the encoder
/// adds exactly one dictionary entry per input byte, making the position
/// of the dictionary-full CLEAR predictable.
std::vector<uint8_t> DistinctPairStream(int blocks) {
  std::vector<uint8_t> data;
  for (int x = 0; x < blocks; ++x) {
    for (int y = x + 1; y < 256; ++y) {
      data.push_back(static_cast<uint8_t>(x));
      data.push_back(static_cast<uint8_t>(y));
    }
  }
  return data;
}

TEST(LzwAdversarialTest, DictionaryFullWraparoundExactBoundaries) {
  // One entry per byte: the 3838-entry dictionary fills at byte 3839 and
  // again ~3838 bytes later. Sizes straddling the second CLEAR emission
  // catch off-by-ones in the reset handshake on both sides.
  std::vector<uint8_t> base = DistinctPairStream(16);
  ASSERT_GT(base.size(), 7680u);
  for (size_t size = 7674; size <= 7680; ++size) {
    std::vector<uint8_t> data(base.begin(), base.begin() + size);
    ExpectRoundTrip(data);
  }
}

TEST(LzwAdversarialTest, KwKwKAcrossDictionaryReset) {
  // A single-byte run produces the KwKwK case on nearly every code; long
  // enough to span several dictionary resets.
  ExpectRoundTrip(std::vector<uint8_t>(300000, 0xa5));
}

TEST(LzwAdversarialTest, AllZeroTileCompressesAndRoundTrips) {
  // A 96x96 16-bit tile of zeros — what an empty raster region stores.
  std::vector<uint8_t> tile(96 * 96 * 2, 0);
  std::vector<uint8_t> packed = LzwCompress(tile);
  EXPECT_LT(packed.size(), tile.size() / 20);
  ExpectRoundTrip(tile);
}

TEST(LzwAdversarialTest, IncompressibleRandomTileBoundedExpansion) {
  Rng rng(0xc0dec);
  std::vector<uint8_t> tile(96 * 96 * 2);
  for (auto& b : tile) b = static_cast<uint8_t>(rng.Next());
  std::vector<uint8_t> packed = LzwCompress(tile);
  // Worst case is 12 output bits per input byte plus framing.
  EXPECT_LE(packed.size(), tile.size() * 3 / 2 + 16);
  ExpectRoundTrip(tile);
}

TEST(LzwAdversarialTest, KwKwKImmediateUseDecodes) {
  // Hand-packed positive control: code 258 used while being defined.
  auto out = LzwDecompress(PackCodes({65, 258, 257}));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, Bytes("AAA"));
}

TEST(LzwAdversarialTest, CodeBeyondDictionaryIsCorruption) {
  // 300 is far past next_code (258) when it appears.
  EXPECT_FALSE(LzwDecompress(PackCodes({65, 300, 257})).ok());
  // One past the KwKwK code is equally invalid.
  EXPECT_FALSE(LzwDecompress(PackCodes({65, 259, 257})).ok());
}

TEST(LzwAdversarialTest, FirstCodeMustBeALiteral) {
  EXPECT_FALSE(LzwDecompress(PackCodes({258, 257})).ok());
  // Also right after an explicit CLEAR.
  EXPECT_FALSE(LzwDecompress(PackCodes({256, 258, 257})).ok());
}

TEST(LzwAdversarialTest, MissingEndCodeIsCorruption) {
  EXPECT_FALSE(LzwDecompress(PackCodes({65})).ok());
  EXPECT_FALSE(LzwDecompress(std::vector<uint8_t>{}).ok());
  std::vector<uint8_t> half_code = {0x04};
  EXPECT_FALSE(LzwDecompress(half_code).ok());
}

TEST(LzwAdversarialTest, TrailingBytesAfterEndAreIgnored) {
  std::vector<uint8_t> packed = LzwCompress(Bytes("abcabcabc"));
  packed.push_back(0xde);
  packed.push_back(0xad);
  auto out = LzwDecompress(packed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, Bytes("abcabcabc"));
}

TEST(LzwAdversarialTest, BitFlipFuzzNeverCrashes) {
  // Every single-bit corruption of a real compressed tile must come back
  // as a Status or a (wrong) byte vector — never UB. The ASan/UBSan CI job
  // runs this test to enforce the "never UB" half.
  std::vector<uint8_t> tile;
  for (int i = 0; i < 4096; ++i) {
    tile.push_back(static_cast<uint8_t>((i / 7) % 200));
  }
  std::vector<uint8_t> packed = LzwCompress(tile);
  for (size_t pos = 0; pos < packed.size(); pos += 3) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> mutated = packed;
      mutated[pos] ^= bit;
      auto result = LzwDecompress(mutated);
      (void)result;  // any Status or any bytes are acceptable
    }
  }
  // Truncation sweep: every prefix is handled, none crash.
  for (size_t len = 0; len < packed.size(); ++len) {
    auto result = LzwDecompress(packed.data(), len);
    (void)result;
  }
}

}  // namespace
}  // namespace paradise::codec
