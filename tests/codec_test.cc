#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "codec/lzw.h"
#include "common/rng.h"

namespace paradise::codec {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

void ExpectRoundTrip(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> packed = LzwCompress(data);
  auto unpacked = LzwDecompress(packed);
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(*unpacked, data);
}

TEST(LzwTest, EmptyInput) { ExpectRoundTrip({}); }

TEST(LzwTest, SingleByte) { ExpectRoundTrip({42}); }

TEST(LzwTest, SimpleString) { ExpectRoundTrip(Bytes("TOBEORNOTTOBEORTOBEORNOT")); }

TEST(LzwTest, KwKwKCase) {
  // The classic corner case: the decoder sees a code equal to next_code.
  ExpectRoundTrip(Bytes("aaaaaaaaaaaaaaaaaaaaaa"));
  ExpectRoundTrip(Bytes("abababababababababab"));
}

TEST(LzwTest, AllByteValues) {
  std::vector<uint8_t> data;
  for (int rep = 0; rep < 4; ++rep) {
    for (int b = 0; b < 256; ++b) data.push_back(static_cast<uint8_t>(b));
  }
  ExpectRoundTrip(data);
}

TEST(LzwTest, CompressesRepetitiveData) {
  std::vector<uint8_t> data(64 * 1024, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>((i / 512) & 0xff);  // long runs
  }
  std::vector<uint8_t> packed = LzwCompress(data);
  EXPECT_LT(packed.size(), data.size() / 4);
  auto unpacked = LzwDecompress(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, data);
}

TEST(LzwTest, RandomDataDoesNotCorrupt) {
  Rng rng(123);
  std::vector<uint8_t> data(50000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  // Random data typically expands (12-bit codes for 8-bit literals).
  std::vector<uint8_t> packed = LzwCompress(data);
  auto unpacked = LzwDecompress(packed);
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, data);
}

TEST(LzwTest, DictionaryResetOnLargeInput) {
  // Force multiple CLEAR cycles: > 4096 distinct phrases.
  Rng rng(7);
  std::vector<uint8_t> data;
  data.reserve(300000);
  for (int i = 0; i < 300000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.NextUint(7) * 37));
  }
  ExpectRoundTrip(data);
}

TEST(LzwTest, SmoothRasterLikeDataCompressesWell) {
  // 16-bit smooth field, little-endian bytes — what tiles look like.
  std::vector<uint8_t> data;
  for (int i = 0; i < 32768; ++i) {
    uint16_t v = static_cast<uint16_t>(2000 + 100 * ((i / 64) % 8));
    data.push_back(static_cast<uint8_t>(v & 0xff));
    data.push_back(static_cast<uint8_t>(v >> 8));
  }
  std::vector<uint8_t> packed = LzwCompress(data);
  EXPECT_LT(packed.size(), data.size() / 2);
  ExpectRoundTrip(data);
}

TEST(LzwTest, DecompressRejectsGarbage) {
  std::vector<uint8_t> garbage = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  auto result = LzwDecompress(garbage);
  EXPECT_FALSE(result.ok());
}

TEST(LzwTest, DecompressRejectsTruncation) {
  std::vector<uint8_t> packed = LzwCompress(Bytes("hello hello hello hello"));
  packed.resize(packed.size() / 2);
  auto result = LzwDecompress(packed);
  // Either corruption is detected or the END marker is missing.
  EXPECT_FALSE(result.ok());
}

/// Parameterized roundtrip sweep over sizes and alphabet widths.
class LzwSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LzwSweepTest, RoundTrip) {
  auto [size, alphabet] = GetParam();
  Rng rng(static_cast<uint64_t>(size) * 1000003 + alphabet);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextUint(static_cast<uint64_t>(alphabet)));
  }
  ExpectRoundTrip(data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlphabets, LzwSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 100, 4095, 4096, 4097,
                                         65536),
                       ::testing::Values(1, 2, 16, 256)));

}  // namespace
}  // namespace paradise::codec
