#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "storage/lock_manager.h"

namespace paradise::storage {
namespace {

TEST(LockModeTest, CompatibilityMatrix) {
  using enum LockMode;
  EXPECT_TRUE(LockModesCompatible(kIS, kIX));
  EXPECT_TRUE(LockModesCompatible(kIS, kS));
  EXPECT_TRUE(LockModesCompatible(kIS, kSIX));
  EXPECT_FALSE(LockModesCompatible(kIS, kX));
  EXPECT_TRUE(LockModesCompatible(kIX, kIX));
  EXPECT_FALSE(LockModesCompatible(kIX, kS));
  EXPECT_TRUE(LockModesCompatible(kS, kS));
  EXPECT_FALSE(LockModesCompatible(kS, kSIX));
  EXPECT_FALSE(LockModesCompatible(kSIX, kSIX));
  EXPECT_FALSE(LockModesCompatible(kX, kIS));
}

TEST(LockModeTest, CoversAndJoin) {
  using enum LockMode;
  EXPECT_TRUE(LockModeCovers(kX, kS));
  EXPECT_TRUE(LockModeCovers(kSIX, kIX));
  EXPECT_TRUE(LockModeCovers(kS, kIS));
  EXPECT_FALSE(LockModeCovers(kS, kIX));
  EXPECT_EQ(LockModeJoin(kS, kIX), kSIX);
  EXPECT_EQ(LockModeJoin(kIS, kX), kX);
  EXPECT_EQ(LockModeJoin(kS, kS), kS);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  LockName file = LockName::File(1);
  ASSERT_TRUE(lm.Acquire(1, file, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(2, file, LockMode::kS).ok());
  EXPECT_TRUE(lm.Holds(1, file, LockMode::kS));
  EXPECT_TRUE(lm.Holds(2, file, LockMode::kS));
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager lm;
  LockName file = LockName::File(1);
  ASSERT_TRUE(lm.Acquire(1, file, LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(1, file, LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(1, file, LockMode::kS).ok());  // covered by X
  EXPECT_EQ(lm.HeldCount(1), 1u);
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, UpgradeSToX) {
  LockManager lm;
  LockName file = LockName::File(1);
  ASSERT_TRUE(lm.Acquire(1, file, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(1, file, LockMode::kX).ok());
  EXPECT_TRUE(lm.Holds(1, file, LockMode::kX));
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, ConflictBlocksUntilRelease) {
  LockManager lm;
  LockName file = LockName::File(1);
  ASSERT_TRUE(lm.Acquire(1, file, LockMode::kX).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ASSERT_TRUE(lm.Acquire(2, file, LockMode::kS).ok());
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager lm;
  LockName a = LockName::File(1);
  LockName b = LockName::File(2);
  ASSERT_TRUE(lm.Acquire(1, a, LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(2, b, LockMode::kX).ok());
  std::atomic<bool> t1_done{false};
  Status t1_status;
  std::thread t1([&] {
    t1_status = lm.Acquire(1, b, LockMode::kX);  // waits on txn 2
    t1_done = true;
    if (t1_status.ok()) lm.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Txn 2 requesting `a` would close the cycle: must be aborted.
  Status s = lm.Acquire(2, a, LockMode::kX);
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  lm.ReleaseAll(2);  // victim releases; txn 1 proceeds
  t1.join();
  EXPECT_TRUE(t1_status.ok());
  lm.ReleaseAll(1);
  EXPECT_GE(lm.stats().deadlocks, 1);
}

TEST(LockManagerTest, HierarchyIntentThenRecord) {
  LockManager lm;
  LockName file = LockName::File(7);
  Oid oid{3, 1};
  LockName rec = LockName::Record(7, oid);
  ASSERT_TRUE(lm.Acquire(1, file, LockMode::kIX).ok());
  ASSERT_TRUE(lm.Acquire(1, rec, LockMode::kX).ok());
  // A second txn can IS the file but not S the same record.
  ASSERT_TRUE(lm.Acquire(2, file, LockMode::kIS).ok());
  std::atomic<bool> got{false};
  std::thread t([&] {
    ASSERT_TRUE(lm.Acquire(2, rec, LockMode::kS).ok());
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got.load());
  lm.ReleaseAll(1);
  t.join();
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, EscalationToFileLock) {
  LockManager lm(/*escalation_threshold=*/8);
  ASSERT_TRUE(lm.Acquire(1, LockName::File(5), LockMode::kIS).ok());
  for (uint16_t i = 0; i < 20; ++i) {
    Oid oid{0, i};
    ASSERT_TRUE(lm.Acquire(1, LockName::Record(5, oid), LockMode::kS).ok());
  }
  // Past the threshold the txn holds a file-level S covering everything.
  EXPECT_TRUE(lm.Holds(1, LockName::File(5), LockMode::kS));
  EXPECT_GE(lm.stats().escalations, 1);
  // Record locks were dropped as subsumed.
  EXPECT_LT(lm.HeldCount(1), 20u);
  lm.ReleaseAll(1);
}

}  // namespace
}  // namespace paradise::storage
