#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace paradise::catalog {
namespace {

TableDef MakeDef(const std::string& name) {
  TableDef def;
  def.name = name;
  def.schema = exec::Schema({{"id", exec::ValueType::kString},
                             {"shape", exec::ValueType::kPolygon}});
  def.partitioning = PartitioningKind::kSpatial;
  def.partition_column = 1;
  def.indexes = {IndexDef{"id_idx", 0, false}, IndexDef{"shape_idx", 1, true}};
  return def;
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeDef("roads")).ok());
  ASSERT_TRUE(catalog.CreateTable(MakeDef("drainage")).ok());
  EXPECT_EQ(catalog.CreateTable(MakeDef("roads")).code(),
            StatusCode::kAlreadyExists);

  auto table = catalog.GetTable("roads");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->name, "roads");
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_NE(catalog.FindTable("drainage"), nullptr);
  EXPECT_EQ(catalog.FindTable("nope"), nullptr);

  EXPECT_EQ(catalog.TableNames(),
            (std::vector<std::string>{"drainage", "roads"}));
  ASSERT_TRUE(catalog.DropTable("roads").ok());
  EXPECT_FALSE(catalog.DropTable("roads").ok());
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"drainage"}));
}

TEST(CatalogTest, FindIndexOn) {
  TableDef def = MakeDef("t");
  EXPECT_NE(def.FindIndexOn(0, false), nullptr);
  EXPECT_EQ(def.FindIndexOn(0, true), nullptr);   // no spatial index on id
  EXPECT_NE(def.FindIndexOn(1, true), nullptr);
  EXPECT_EQ(def.FindIndexOn(1, false), nullptr);
  EXPECT_EQ(def.FindIndexOn(7, false), nullptr);  // no such column
}

TEST(CatalogTest, StatsUpdatable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(MakeDef("t")).ok());
  auto table = catalog.GetTable("t");
  ASSERT_TRUE(table.ok());
  (*table)->num_tuples = 12345;
  (*table)->avg_tuple_bytes = 99.5;
  EXPECT_EQ(catalog.FindTable("t")->num_tuples, 12345);
}

}  // namespace
}  // namespace paradise::catalog
