// Concurrent multi-query workload: admission control, deterministic
// scheduling, contention charging, scan sharing, and the result cache —
// plus the cross-query state-leak regressions the workload exposed:
//
//  * PbsmSpatialJoin left its stats sink untouched on the empty-input
//    short-circuit, so a join-free (or empty-fragment) run reported the
//    previous query's join shape.
//  * A phase abandoned by a thrown closure never reached ClosePhase, so
//    its charges sat on the node clocks and were folded into whatever
//    phase ran next on them.
//
// The workload tests run every schedule twice — at 1 and at 8 pool
// threads — and require bit-identical modeled results (sample times, row
// counts, pool counters), clean and faulted.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "benchmark/database.h"
#include "benchmark/queries.h"
#include "benchmark/workload.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/cluster.h"
#include "core/coordinator.h"
#include "datagen/datagen.h"
#include "exec/exec_context.h"
#include "exec/spatial_join.h"
#include "geom/point.h"
#include "geom/polyline.h"
#include "sim/cost_model.h"
#include "sim/fault_injector.h"
#include "storage/page.h"

namespace paradise {
namespace {

using benchmark::RunWorkload;
using benchmark::WorkloadOptions;
using benchmark::WorkloadReport;
using core::Cluster;
using core::ContentionModel;
using core::QueryCoordinator;
using core::WorkloadSession;
using exec::ExecContext;
using exec::PbsmJoinStats;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using geom::Point;
using geom::Polyline;
using sim::FaultInjector;

// ---------- Fixtures ----------

TupleVec MakeLines(uint64_t seed, int n) {
  Rng rng(seed);
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextDouble(-50, 50);
    double y = rng.NextDouble(-50, 50);
    std::vector<Point> pts;
    for (int k = 0; k < 5; ++k) {
      pts.push_back(Point{x + k * 0.4, y + ((k % 2) ? 0.5 : -0.3)});
    }
    out.push_back(Tuple({Value(static_cast<int64_t>(i)),
                         Value(Polyline(std::move(pts)))}));
  }
  return out;
}

struct LoadedDb {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<benchmark::BenchmarkDatabase> db;
};

/// Tiny benchmark database on a 4-node cluster with fixed pool sharding
/// (so nothing depends on the host) and a configurable pool size: the
/// workload tests shrink it until repeated scans really do I/O.
LoadedDb LoadTinyDb(int num_threads, size_t pool_frames = 2048,
                    int pool_shards = 8, uint32_t raster_size = 96) {
  LoadedDb out;
  Cluster::Options copts;
  copts.buffer_pool_frames = pool_frames;
  copts.pool_shards = pool_shards;
  out.cluster = std::make_unique<Cluster>(4, copts);
  out.cluster->SetNumThreads(num_threads);
  datagen::DataSetOptions dopts;
  dopts.size_fraction = 1.0 / 1000;
  dopts.num_dates = 8;
  dopts.base_raster_size = raster_size;
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(dopts);
  benchmark::LoadOptions lopts;
  lopts.tiles_per_axis = 20;
  auto db = benchmark::BenchmarkDatabase::Load(out.cluster.get(), ds, lopts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  out.db = std::move(*db);
  return out;
}

// ---------- Contention model ----------

TEST(ContentionModelTest, ZeroCoRunnersIsBitIdenticalToPlainCost) {
  sim::CostModel model;
  sim::ResourceUsage u;
  u.disk_seeks = 37;
  u.disk_bytes_read = 5 * 1024 * 1024;
  u.disk_bytes_written = 128 * 1024;
  u.net_messages = 19;
  u.net_bytes = 3 * 1024 * 1024;
  u.cpu_ops = 1.5e7;
  u.idle_seconds = 0.125;
  ContentionModel c;
  // Exact equality on purpose: a lone query in workload mode must cost
  // bit-identically what it costs in single-query mode.
  EXPECT_EQ(c.SecondsUnder(model, u, 0), model.Seconds(u));
  EXPECT_GT(c.SecondsUnder(model, u, 1), model.Seconds(u));
  EXPECT_GT(c.SecondsUnder(model, u, 3), c.SecondsUnder(model, u, 1));
  // Only shared resources are surcharged: pure CPU + idle is flat.
  sim::ResourceUsage cpu_only;
  cpu_only.cpu_ops = 1e8;
  cpu_only.idle_seconds = 0.5;
  EXPECT_EQ(c.SecondsUnder(model, cpu_only, 7), model.Seconds(cpu_only));
}

// ---------- State-leak regressions ----------

// Regression: before the fix, PbsmSpatialJoin returned early on empty
// input WITHOUT touching ctx.pbsm_stats, so the sink kept the previous
// join's numbers and the caller attributed them to the wrong query.
TEST(PbsmStatsLeakTest, EmptyInputJoinClearsStaleStatsSink) {
  TupleVec left = MakeLines(11, 400);
  TupleVec right = MakeLines(12, 400);
  PbsmJoinStats stats;
  ExecContext ctx;
  ctx.pbsm_stats = &stats;
  exec::PbsmOptions opts;
  opts.num_partitions = 16;

  auto r1 = exec::PbsmSpatialJoin(left, 1, right, 1, ctx, opts);
  ASSERT_TRUE(r1.ok());
  ASSERT_GT(stats.partitions, 0u) << "non-empty join must fill the sink";
  ASSERT_GT(stats.left_tuples, 0);

  // Same context, next "query": an empty probe side.
  TupleVec empty;
  auto r2 = exec::PbsmSpatialJoin(empty, 1, right, 1, ctx, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 0u);
  EXPECT_EQ(stats, PbsmJoinStats{})
      << "empty-input join must report an empty join, not the previous one";
}

TEST(PbsmStatsLeakTest, BackToBackQ13RunsReportIdenticalJoinStats) {
  LoadedDb loaded = LoadTinyDb(/*num_threads=*/4);
  auto r1 = benchmark::RunQuery13(loaded.db.get());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = benchmark::RunQuery13(loaded.db.get());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_GT(r1->pbsm.partitions, 0u) << "Q13 runs a PBSM join";
  EXPECT_EQ(r1->pbsm, r2->pbsm);
  EXPECT_EQ(r1->rows.size(), r2->rows.size());
}

TEST(PbsmStatsLeakTest, JoinFreeQueryAfterJoinQueryReportsNoJoin) {
  LoadedDb loaded = LoadTinyDb(/*num_threads=*/4);
  auto join = benchmark::RunQuery13(loaded.db.get());
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  ASSERT_GT(join->pbsm.partitions, 0u);
  auto select = benchmark::RunQuery5(loaded.db.get());
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ(select->pbsm, PbsmJoinStats{})
      << "a join-free query must not inherit the previous query's join";
}

TEST(PbsmStatsLeakTest, Q11WarmRunsAreIdentical) {
  LoadedDb loaded = LoadTinyDb(/*num_threads=*/4);
  // Run 1 warms the disk-arm positions (head continuity persists across
  // queries by design); runs 2 and 3 start from identical global state.
  auto r1 = benchmark::RunQuery11(loaded.db.get());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = benchmark::RunQuery11(loaded.db.get());
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  auto r3 = benchmark::RunQuery11(loaded.db.get());
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(r2->seconds, r3->seconds);
  EXPECT_EQ(r2->rows.size(), r3->rows.size());
  EXPECT_EQ(r2->phases.size(), r3->phases.size());
  EXPECT_EQ(r1->pbsm, r2->pbsm);
  EXPECT_EQ(r2->pbsm, r3->pbsm);
}

// Regression: before the fix, a phase whose closure threw never reached
// ClosePhase; the charges made before the throw stayed in the node
// clocks' open phase and were folded into the NEXT phase closed on them.
TEST(PhaseAccountingTest, ThrownPhaseChargesStayWithTheFailingPhase) {
  Cluster cluster(2);
  cluster.SetNumThreads(2);
  QueryCoordinator coord(&cluster);
  ASSERT_TRUE(coord.BeginQuery().ok());

  EXPECT_THROW(
      {
        Status st = coord.RunPhase("explodes", [&](int node) -> Status {
          cluster.node(node).clock()->ChargeDiskRead(8 << 20, 4);
          if (node == 0) throw std::runtime_error("node 0 died mid-phase");
          return Status::OK();
        });
        (void)st;
      },
      std::runtime_error);

  // The aborted phase was still closed, with its own charges.
  ASSERT_EQ(coord.phases().size(), 1u);
  EXPECT_EQ(coord.phases()[0].name, "explodes");
  EXPECT_GT(coord.phases()[0].seconds, 0.0);

  // A clean follow-up phase must cost exactly nothing.
  ASSERT_TRUE(
      coord.RunPhase("clean", [](int) { return Status::OK(); }).ok());
  ASSERT_EQ(coord.phases().size(), 2u);
  EXPECT_EQ(coord.phases()[1].seconds, 0.0)
      << "charges of the thrown phase leaked into the next phase";
}

TEST(PhaseAccountingTest, ThrownSequentialPhaseIsClosedToo) {
  Cluster cluster(2);
  cluster.SetNumThreads(1);
  QueryCoordinator coord(&cluster);
  ASSERT_TRUE(coord.BeginQuery().ok());
  EXPECT_THROW(
      {
        Status st = coord.RunSequential("seq explodes", [&]() -> Status {
          cluster.coordinator_clock()->ChargeCpu(1e9);
          throw std::runtime_error("sequential operator died");
        });
        (void)st;
      },
      std::runtime_error);
  ASSERT_EQ(coord.phases().size(), 1u);
  EXPECT_GT(coord.phases()[0].seconds, 0.0);
  ASSERT_TRUE(
      coord.RunPhase("clean", [](int) { return Status::OK(); }).ok());
  EXPECT_EQ(coord.phases().back().seconds, 0.0);
}

// In workload mode there is no cold-start reset between queries, so an
// abandoned query's open-phase usage must be discarded explicitly — by
// ~QueryCoordinator (EndQuery) and again defensively by BeginQuery.
TEST(PhaseAccountingTest, FaultedThenCleanQueryBackToBackInWorkloadMode) {
  Cluster cluster(2);
  cluster.SetNumThreads(1);
  WorkloadSession::Options sopts;
  sopts.num_streams = 1;
  WorkloadSession session(&cluster, sopts);
  cluster.set_workload_session(&session);
  session.BindStream(0);

  session.AwaitAdmission(0.0);
  double faulted_seconds = 0.0;
  {
    QueryCoordinator faulted(&cluster);
    ASSERT_TRUE(faulted.BeginQuery().ok());
    EXPECT_THROW(
        {
          Status st = faulted.RunPhase("charges then dies", [&](int n) -> Status {
            cluster.node(n).clock()->ChargeDiskRead(16 << 20, 8);
            throw std::runtime_error("abandoned");
          });
          (void)st;
        },
        std::runtime_error);
    faulted_seconds = faulted.query_seconds();
    // Charge more AFTER the last closed phase — this is the open-phase
    // residue an abandoned query leaves behind.
    cluster.node(0).clock()->ChargeDiskRead(32 << 20, 16);
  }  // ~QueryCoordinator runs EndQuery -> DiscardOpenPhase
  EXPECT_GT(faulted_seconds, 0.0);
  session.FinishQuery(faulted_seconds);

  session.AwaitAdmission(1.0);
  QueryCoordinator clean(&cluster);
  ASSERT_TRUE(clean.BeginQuery().ok());
  ASSERT_TRUE(
      clean.RunPhase("clean", [](int) { return Status::OK(); }).ok());
  EXPECT_EQ(clean.query_seconds(), 0.0)
      << "the abandoned query's residue leaked into the next query";
  session.FinishQuery(clean.query_seconds());
  session.EndStream();
  cluster.set_workload_session(nullptr);
}

// ---------- Result cache ----------

TEST(ResultCacheTest, CausalityInvalidationAndCounters) {
  Cluster cluster(2);
  cluster.SetNumThreads(1);
  WorkloadSession::Options sopts;
  sopts.num_streams = 1;
  WorkloadSession session(&cluster, sopts);
  cluster.set_workload_session(&session);
  session.BindStream(0);

  WorkloadSession::Ticket* t1 = session.AwaitAdmission(0.0);
  TupleVec rows;
  rows.push_back(Tuple({Value(static_cast<int64_t>(42))}));

  // Published in this query's future: invisible (modeled causality).
  session.PublishResult("q", {"base"}, rows, t1->admit_seconds + 5.0);
  TupleVec out;
  double serve = 0.0;
  EXPECT_FALSE(session.LookupCachedResult("q", &out, &serve));
  session.FinishQuery(1.0);

  // Admitted after the publish instant: visible, and serving costs time.
  session.AwaitAdmission(10.0);
  EXPECT_TRUE(session.LookupCachedResult("q", &out, &serve));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[0].AsInt(), 42);
  EXPECT_GT(serve, 0.0);

  // Mutating a dependency (via the coordinator hook) invalidates.
  QueryCoordinator coord(&cluster);
  coord.NoteTableMutation("base");
  EXPECT_FALSE(session.LookupCachedResult("q", &out, &serve));

  session.FinishQuery(0.0);
  session.EndStream();
  cluster.set_workload_session(nullptr);

  EXPECT_EQ(session.cache_hits(), 1);
  EXPECT_EQ(session.cache_misses(), 2);
  EXPECT_EQ(session.cache_invalidations(), 1);
}

TEST(ResultCacheTest, RepeatedPointQueriesHitInWorkload) {
  LoadedDb loaded = LoadTinyDb(/*num_threads=*/4);
  WorkloadOptions wopts;
  wopts.num_streams = 2;
  wopts.queries_per_stream = 4;
  wopts.mix = {5};
  wopts.mean_think_seconds = 0.5;
  auto report = RunWorkload(loaded.db.get(), wopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->samples.size(), 8u);
  EXPECT_GE(report->cache_hits, 1);
  EXPECT_GE(report->cache_misses, 1);
  // Hit or miss, Q5 always returns the same rows.
  for (const WorkloadReport::Sample& s : report->samples) {
    EXPECT_EQ(s.rows, report->samples[0].rows);
  }
  // With the cache off, every query runs.
  LoadedDb plain = LoadTinyDb(/*num_threads=*/4);
  wopts.session.result_cache = false;
  auto uncached = RunWorkload(plain.db.get(), wopts);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  EXPECT_EQ(uncached->cache_hits, 0);
  EXPECT_LE(report->makespan_seconds, uncached->makespan_seconds)
      << "serving from cache cannot be slower than recomputing";
}

// ---------- Admission control ----------

TEST(AdmissionTest, MaxConcurrentOneSerializesQueries) {
  LoadedDb loaded = LoadTinyDb(/*num_threads=*/4);
  WorkloadOptions wopts;
  wopts.num_streams = 3;
  wopts.queries_per_stream = 2;
  wopts.mix = {5};
  wopts.mean_think_seconds = 0.0;
  wopts.session.max_concurrent = 1;
  wopts.session.result_cache = false;  // every query really runs
  auto report = RunWorkload(loaded.db.get(), wopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->samples.size(), 6u);

  std::vector<WorkloadReport::Sample> by_admit = report->samples;
  std::sort(by_admit.begin(), by_admit.end(),
            [](const auto& a, const auto& b) {
              return a.admit_seconds < b.admit_seconds;
            });
  for (size_t i = 1; i < by_admit.size(); ++i) {
    EXPECT_GE(by_admit[i].admit_seconds, by_admit[i - 1].end_seconds)
        << "window of 1 admitted two queries concurrently";
    EXPECT_GE(by_admit[i].admit_seconds, by_admit[i].submit_seconds);
  }
}

TEST(AdmissionTest, ContentionChargesOnlyUnderConcurrency) {
  // One stream: every phase sees K = 0, so the workload-mode cost equals
  // the plain single-query cost bit-for-bit (after the same warm-up).
  LoadedDb a = LoadTinyDb(/*num_threads=*/4);
  WorkloadOptions one;
  one.num_streams = 1;
  one.queries_per_stream = 2;
  one.mix = {5};
  // Zero think time keeps admit_seconds at exactly 0.0, so the sample's
  // end - admit subtraction reproduces the latency without rounding.
  one.mean_think_seconds = 0.0;
  one.session.result_cache = false;
  one.session.scan_sharing = false;
  auto lone = RunWorkload(a.db.get(), one);
  ASSERT_TRUE(lone.ok()) << lone.status().ToString();

  LoadedDb b = LoadTinyDb(/*num_threads=*/4);
  b.cluster->ResetForQuery();
  auto q1 = benchmark::RunQuery5(b.db.get());
  ASSERT_TRUE(q1.ok());
  // The workload's first sample ran on cold pools exactly like a plain
  // cold-protocol query; its latency is the same modeled seconds.
  EXPECT_EQ(lone->samples[0].end_seconds - lone->samples[0].admit_seconds,
            q1->seconds);
}

// ---------- Scan sharing ----------

struct SharingRun {
  WorkloadReport report;
};

/// The scan-sharing régime needs scans that are long (many clip tiles per
/// raster, many dates) relative to think time, against a pool too small to
/// retain them — otherwise a granted follower finds the leader's pages
/// still resident and has no I/O left to share.
LoadedDb LoadScanDb(int num_threads) {
  LoadedDb out;
  Cluster::Options copts;
  copts.buffer_pool_frames = 16;
  copts.pool_shards = 1;
  out.cluster = std::make_unique<Cluster>(4, copts);
  out.cluster->SetNumThreads(num_threads);
  datagen::DataSetOptions dopts;
  dopts.size_fraction = 1.0 / 512;
  dopts.num_dates = 16;
  dopts.base_raster_size = 128;
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(dopts);
  benchmark::LoadOptions lopts;
  lopts.tile_bytes = 2048;
  auto db = benchmark::BenchmarkDatabase::Load(out.cluster.get(), ds, lopts);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  out.db = std::move(*db);
  return out;
}

WorkloadReport RunScanWorkload(bool sharing, int num_threads) {
  LoadedDb loaded = LoadScanDb(num_threads);
  WorkloadOptions wopts;
  wopts.num_streams = 4;
  wopts.queries_per_stream = 3;
  wopts.mix = {2};
  wopts.mean_think_seconds = 0.02;
  wopts.session.result_cache = false;
  wopts.session.scan_sharing = sharing;
  auto report = RunWorkload(loaded.db.get(), wopts);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *report : WorkloadReport{};
}

TEST(ScanSharingTest, SharingReducesChargedReadaheadWindows) {
  WorkloadReport shared = RunScanWorkload(/*sharing=*/true, 4);
  WorkloadReport unshared = RunScanWorkload(/*sharing=*/false, 4);
  ASSERT_EQ(shared.samples.size(), unshared.samples.size());

  EXPECT_GT(shared.scan_shared_windows, 0)
      << "concurrent identical scans never attached";
  EXPECT_EQ(unshared.scan_shared_windows, 0);
  EXPECT_LT(shared.readahead_batches, unshared.readahead_batches)
      << "attached windows must replace charged readahead, not add to it";
  // Sharing changes the I/O charging, never the answers.
  for (size_t i = 0; i < shared.samples.size(); ++i) {
    EXPECT_EQ(shared.samples[i].rows, unshared.samples[i].rows);
    EXPECT_EQ(shared.samples[i].query, unshared.samples[i].query);
  }
  EXPECT_LE(shared.makespan_seconds, unshared.makespan_seconds)
      << "riding another scan's I/O cannot cost more than paying for it";
}

// ---------- Workload determinism ----------

WorkloadOptions MixedWorkloadOptions() {
  WorkloadOptions wopts;
  wopts.num_streams = 4;
  wopts.queries_per_stream = 4;
  wopts.mix = {2, 5, 7};
  wopts.mean_think_seconds = 0.05;
  return wopts;
}

WorkloadReport RunMixedWorkload(int num_threads, bool faulted) {
  LoadedDb loaded = LoadTinyDb(num_threads, /*pool_frames=*/64,
                               /*pool_shards=*/2);
  FaultInjector inj(/*seed=*/0xfeed);
  if (faulted) {
    // The tiny database does only a few dozen cold reads before it is
    // fully pool-resident, so rates must be high for any fault to fire.
    inj.set_transient_read_rate(0.2);
    inj.set_torn_read_rate(0.2);
    loaded.cluster->SetFaultInjector(&inj);
  }
  auto report = RunWorkload(loaded.db.get(), MixedWorkloadOptions());
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (faulted) {
    EXPECT_GT(inj.stats().transient_read_faults + inj.stats().torn_read_faults,
              0)
        << "the faulted schedule never actually faulted";
  }
  loaded.cluster->SetFaultInjector(nullptr);
  return report.ok() ? *report : WorkloadReport{};
}

TEST(WorkloadDeterminismTest, InterleavedScheduleBitIdenticalAcrossThreads) {
  WorkloadReport t1 = RunMixedWorkload(/*num_threads=*/1, /*faulted=*/false);
  WorkloadReport t8 = RunMixedWorkload(/*num_threads=*/8, /*faulted=*/false);
  ASSERT_EQ(t1.samples.size(), t8.samples.size());
  for (size_t i = 0; i < t1.samples.size(); ++i) {
    EXPECT_EQ(t1.samples[i], t8.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(t1.makespan_seconds, t8.makespan_seconds);
  EXPECT_EQ(t1.readahead_batches, t8.readahead_batches);
  EXPECT_EQ(t1.readahead_pages, t8.readahead_pages);
  EXPECT_EQ(t1.scan_shared_windows, t8.scan_shared_windows);
  EXPECT_EQ(t1.scan_shared_pages, t8.scan_shared_pages);
  EXPECT_EQ(t1.pool_hits, t8.pool_hits);
  EXPECT_EQ(t1.pool_misses, t8.pool_misses);
  EXPECT_EQ(t1.cache_hits, t8.cache_hits);
  EXPECT_EQ(t1.scan_attaches, t8.scan_attaches);
  EXPECT_EQ(t1.Digest(), t8.Digest());
}

TEST(WorkloadDeterminismTest, FaultedScheduleBitIdenticalAcrossThreads) {
  WorkloadReport t1 = RunMixedWorkload(/*num_threads=*/1, /*faulted=*/true);
  WorkloadReport t8 = RunMixedWorkload(/*num_threads=*/8, /*faulted=*/true);
  ASSERT_EQ(t1.samples.size(), t8.samples.size());
  for (size_t i = 0; i < t1.samples.size(); ++i) {
    EXPECT_EQ(t1.samples[i], t8.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(t1.Digest(), t8.Digest());

  // Faults are charged honestly: retries and backoff make the faulted
  // schedule's total client-observed latency strictly larger. (Makespan
  // alone can hide a fault that lands off the critical path, so sum over
  // every query instead.)
  WorkloadReport clean = RunMixedWorkload(/*num_threads=*/1, /*faulted=*/false);
  auto total_latency = [](const WorkloadReport& r) {
    double t = 0.0;
    for (const auto& s : r.samples) t += s.latency_seconds();
    return t;
  };
  EXPECT_GT(total_latency(t1), total_latency(clean));
}

TEST(WorkloadDeterminismTest, RepeatRunsOnFreshDatabasesAreIdentical) {
  WorkloadReport a = RunMixedWorkload(/*num_threads=*/4, /*faulted=*/false);
  WorkloadReport b = RunMixedWorkload(/*num_threads=*/4, /*faulted=*/false);
  EXPECT_EQ(a.Digest(), b.Digest());
}

}  // namespace
}  // namespace paradise
