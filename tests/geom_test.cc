#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/algorithms.h"
#include "geom/box.h"
#include "geom/circle.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/polyline.h"

namespace paradise::geom {
namespace {

Polygon Square(double x0, double y0, double side) {
  return Polygon({Point{x0, y0}, Point{x0 + side, y0},
                  Point{x0 + side, y0 + side}, Point{x0, y0 + side}});
}

Polygon RandomPolygon(Rng* rng, double cx, double cy, double radius, int n) {
  std::vector<Point> ring;
  for (int i = 0; i < n; ++i) {
    double angle = 2 * M_PI * i / n;
    double r = radius * (0.5 + 0.5 * rng->NextDouble());
    ring.push_back(Point{cx + r * std::cos(angle), cy + r * std::sin(angle)});
  }
  return Polygon(std::move(ring));
}

TEST(BoxTest, BasicPredicates) {
  Box a(0, 0, 10, 10);
  Box b(5, 5, 15, 15);
  Box c(11, 11, 12, 12);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Point{5, 5}));
  EXPECT_TRUE(a.Contains(Point{0, 0}));  // boundary inclusive
  EXPECT_FALSE(a.Contains(Point{10.001, 5}));
  EXPECT_TRUE(a.Contains(Box(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(b));
}

TEST(BoxTest, EmptyBoxBehaviour) {
  Box e = Box::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.Intersects(Box(0, 0, 1, 1)));
  EXPECT_FALSE(Box(0, 0, 1, 1).Intersects(e));
  EXPECT_EQ(e.Area(), 0.0);
  Box a(0, 0, 1, 1);
  a.ExpandToInclude(e);  // no-op
  EXPECT_EQ(a, Box(0, 0, 1, 1));
  e.ExpandToInclude(Point{3, 4});
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_EQ(e.Area(), 0.0);  // degenerate point box
}

TEST(BoxTest, IntersectionAndUnion) {
  Box a(0, 0, 10, 10);
  Box b(5, 5, 15, 15);
  EXPECT_EQ(a.Intersection(b), Box(5, 5, 10, 10));
  EXPECT_EQ(a.Union(b), Box(0, 0, 15, 15));
  EXPECT_TRUE(a.Intersection(Box(20, 20, 30, 30)).IsEmpty());
}

TEST(BoxTest, DistanceTo) {
  Box a(0, 0, 10, 10);
  EXPECT_EQ(a.DistanceTo(Point{5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(Point{13, 14}), 5.0);  // 3-4-5
  EXPECT_DOUBLE_EQ(a.DistanceTo(Point{-2, 5}), 2.0);
}

TEST(BoxTest, BoundaryDistanceIsInscribedCircleRadius) {
  Box a(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(a.BoundaryDistanceFrom(Point{5, 5}), 5.0);
  EXPECT_DOUBLE_EQ(a.BoundaryDistanceFrom(Point{1, 5}), 1.0);
  EXPECT_DOUBLE_EQ(a.BoundaryDistanceFrom(Point{5, 9}), 1.0);
  // Outside: falls back to distance to the box.
  EXPECT_DOUBLE_EQ(a.BoundaryDistanceFrom(Point{-3, 5}), 3.0);
}

TEST(BoxTest, MakeBox) {
  Box b = Box::MakeBox(Point{5, 5}, 4);
  EXPECT_EQ(b, Box(3, 3, 7, 7));
}

TEST(SegmentTest, Intersections) {
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{10, 10}, Point{0, 10},
                                Point{10, 0}));
  EXPECT_FALSE(SegmentsIntersect(Point{0, 0}, Point{10, 0}, Point{0, 1},
                                 Point{10, 1}));
  // Shared endpoint.
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{5, 5}, Point{5, 5},
                                Point{10, 0}));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{10, 0}, Point{5, 0},
                                Point{15, 0}));
  // Collinear disjoint.
  EXPECT_FALSE(SegmentsIntersect(Point{0, 0}, Point{4, 0}, Point{5, 0},
                                 Point{15, 0}));
}

TEST(SegmentTest, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{5, 5}, Point{0, 0}, Point{10, 0}),
                   5.0);
  // Beyond an endpoint.
  EXPECT_DOUBLE_EQ(
      PointSegmentDistance(Point{13, 4}, Point{0, 0}, Point{10, 0}), 5.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{3, 4}, Point{0, 0}, Point{0, 0}),
                   5.0);
}

TEST(SegmentTest, SegmentBoxIntersection) {
  Box box(0, 0, 10, 10);
  EXPECT_TRUE(SegmentIntersectsBox(Point{5, 5}, Point{20, 20}, box));
  EXPECT_TRUE(SegmentIntersectsBox(Point{-5, 5}, Point{15, 5}, box));
  EXPECT_FALSE(SegmentIntersectsBox(Point{-5, -5}, Point{-1, 20}, box));
  // Diagonal passing outside the corner.
  EXPECT_FALSE(SegmentIntersectsBox(Point{21, 0}, Point{0, 21}, box));
  // The same diagonal close enough to cut the corner.
  EXPECT_TRUE(SegmentIntersectsBox(Point{15, 0}, Point{0, 15}, box));
}

TEST(PolygonTest, AreaAndCentroid) {
  Polygon sq = Square(0, 0, 10);
  EXPECT_DOUBLE_EQ(sq.Area(), 100.0);
  Point c = sq.Centroid();
  EXPECT_NEAR(c.x, 5.0, 1e-9);
  EXPECT_NEAR(c.y, 5.0, 1e-9);
  // Orientation independence.
  Polygon sq_cw({Point{0, 0}, Point{0, 10}, Point{10, 10}, Point{10, 0}});
  EXPECT_DOUBLE_EQ(sq_cw.Area(), 100.0);
}

TEST(PolygonTest, ContainsPoint) {
  Polygon sq = Square(0, 0, 10);
  EXPECT_TRUE(sq.Contains(Point{5, 5}));
  EXPECT_FALSE(sq.Contains(Point{15, 5}));
  EXPECT_TRUE(sq.Contains(Point{0, 5}));   // boundary
  EXPECT_TRUE(sq.Contains(Point{0, 0}));   // vertex
  // Concave polygon (a "C" shape).
  Polygon c({Point{0, 0}, Point{10, 0}, Point{10, 2}, Point{2, 2},
             Point{2, 8}, Point{10, 8}, Point{10, 10}, Point{0, 10}});
  EXPECT_TRUE(c.Contains(Point{1, 5}));
  EXPECT_FALSE(c.Contains(Point{5, 5}));  // in the notch
}

TEST(PolygonTest, PolygonPolygonIntersection) {
  Polygon a = Square(0, 0, 10);
  Polygon b = Square(5, 5, 10);
  Polygon c = Square(20, 20, 5);
  Polygon inner = Square(2, 2, 2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  // Full containment (no edge crossings).
  EXPECT_TRUE(a.Intersects(inner));
  EXPECT_TRUE(inner.Intersects(a));
}

TEST(PolygonTest, PolygonPolylineIntersection) {
  Polygon a = Square(0, 0, 10);
  Polyline crossing({Point{-5, 5}, Point{15, 5}});
  Polyline outside({Point{20, 20}, Point{30, 30}});
  Polyline inside({Point{2, 2}, Point{3, 3}});
  EXPECT_TRUE(a.Intersects(crossing));
  EXPECT_FALSE(a.Intersects(outside));
  EXPECT_TRUE(a.Intersects(inside));  // wholly inside
}

TEST(PolygonTest, ClipToBox) {
  Polygon sq = Square(0, 0, 10);
  // Clip to the right half.
  Polygon clipped = sq.ClipToBox(Box(5, -5, 20, 15));
  EXPECT_DOUBLE_EQ(clipped.Area(), 50.0);
  // Disjoint clip.
  EXPECT_EQ(sq.ClipToBox(Box(20, 20, 30, 30)).num_points(), 0u);
  // Fully containing clip returns the polygon unchanged.
  Polygon same = sq.ClipToBox(Box(-5, -5, 15, 15));
  EXPECT_DOUBLE_EQ(same.Area(), 100.0);
}

TEST(PolygonTest, ClipAreaNeverGrows) {
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    Polygon p = RandomPolygon(&rng, rng.NextDouble(-50, 50),
                              rng.NextDouble(-50, 50), 20, 12);
    Box clip(rng.NextDouble(-60, 20), rng.NextDouble(-60, 20),
             rng.NextDouble(20, 60), rng.NextDouble(20, 60));
    Polygon clipped = p.ClipToBox(clip);
    EXPECT_LE(clipped.Area(), p.Area() + 1e-6);
    if (clipped.num_points() >= 3) {
      // Every clipped vertex lies inside the clip box.
      for (const Point& v : clipped.ring()) {
        EXPECT_TRUE(clip.Inflate(1e-9).Contains(v));
      }
    }
  }
}

TEST(PolygonTest, DistanceToPoint) {
  Polygon sq = Square(0, 0, 10);
  EXPECT_DOUBLE_EQ(sq.DistanceTo(Point{5, 5}), 0.0);  // inside
  EXPECT_DOUBLE_EQ(sq.DistanceTo(Point{15, 5}), 5.0);
  EXPECT_DOUBLE_EQ(sq.DistanceTo(Point{13, 14}), 5.0);
}

TEST(PolygonTest, SerializeRoundTrip) {
  Rng rng(13);
  Polygon p = RandomPolygon(&rng, 0, 0, 10, 17);
  ByteBuffer buf;
  ByteWriter w(&buf);
  p.Serialize(&w);
  ByteReader r(buf);
  Polygon q = Polygon::Deserialize(&r);
  EXPECT_EQ(p, q);
}

TEST(PolylineTest, LengthAndDistance) {
  Polyline line({Point{0, 0}, Point{10, 0}, Point{10, 10}});
  EXPECT_DOUBLE_EQ(line.Length(), 20.0);
  EXPECT_DOUBLE_EQ(line.DistanceTo(Point{5, 3}), 3.0);
  EXPECT_DOUBLE_EQ(line.DistanceTo(Point{14, 13}), 5.0);
}

TEST(PolylineTest, Intersections) {
  Polyline a({Point{0, 0}, Point{10, 10}});
  Polyline b({Point{0, 10}, Point{10, 0}});
  Polyline c({Point{20, 20}, Point{30, 20}});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(PolylineTest, IntersectsBox) {
  Polyline a({Point{-5, 5}, Point{15, 5}});
  EXPECT_TRUE(a.IntersectsBox(Box(0, 0, 10, 10)));
  EXPECT_FALSE(a.IntersectsBox(Box(0, 6, 10, 10)));
}

TEST(PolylineTest, SerializeRoundTrip) {
  Polyline line({Point{0, 0}, Point{1.5, -2.25}, Point{3.75, 9}});
  ByteBuffer buf;
  ByteWriter w(&buf);
  line.Serialize(&w);
  ByteReader r(buf);
  EXPECT_EQ(line, Polyline::Deserialize(&r));
}

TEST(SwissCheeseTest, AreaAndContains) {
  Polygon outer = Square(0, 0, 10);
  Polygon hole = Square(4, 4, 2);
  SwissCheesePolygon sc(outer, {hole});
  EXPECT_DOUBLE_EQ(sc.Area(), 96.0);
  EXPECT_TRUE(sc.Contains(Point{1, 1}));
  EXPECT_FALSE(sc.Contains(Point{5, 5}));   // in the hole
  EXPECT_FALSE(sc.Contains(Point{15, 5}));  // outside
}

TEST(SwissCheeseTest, SerializeRoundTrip) {
  SwissCheesePolygon sc(Square(0, 0, 10), {Square(1, 1, 2), Square(6, 6, 2)});
  ByteBuffer buf;
  ByteWriter w(&buf);
  sc.Serialize(&w);
  ByteReader r(buf);
  SwissCheesePolygon rt = SwissCheesePolygon::Deserialize(&r);
  EXPECT_DOUBLE_EQ(rt.Area(), sc.Area());
  EXPECT_EQ(rt.holes().size(), 2u);
}

TEST(CircleTest, Basics) {
  Circle c(Point{0, 0}, 5);
  EXPECT_TRUE(c.Contains(Point{3, 4}));
  EXPECT_FALSE(c.Contains(Point{4, 4}));
  EXPECT_TRUE(c.IntersectsBox(Box(4, 0, 10, 1)));
  EXPECT_FALSE(c.IntersectsBox(Box(4, 4, 10, 10)));
  EXPECT_NEAR(c.DoubleArea().Area(), 2 * c.Area(), 1e-9);
}

/// Property sweep: polygon-polygon intersection is symmetric, and
/// containment of either centroid implies intersection.
class PolygonPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PolygonPropertyTest, IntersectionSymmetricAndConsistent) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    Polygon a = RandomPolygon(&rng, rng.NextDouble(-20, 20),
                              rng.NextDouble(-20, 20),
                              rng.NextDouble(2, 15), 3 + iter % 12);
    Polygon b = RandomPolygon(&rng, rng.NextDouble(-20, 20),
                              rng.NextDouble(-20, 20),
                              rng.NextDouble(2, 15), 3 + (iter * 7) % 12);
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
    if (a.Contains(b.ring()[0]) || b.Contains(a.ring()[0])) {
      EXPECT_TRUE(a.Intersects(b));
    }
    if (!a.Mbr().Intersects(b.Mbr())) {
      EXPECT_FALSE(a.Intersects(b));
    }
  }
}

TEST_P(PolygonPropertyTest, DistanceZeroIffContains) {
  Rng rng(GetParam() * 31 + 5);
  for (int iter = 0; iter < 60; ++iter) {
    Polygon a = RandomPolygon(&rng, 0, 0, 10, 3 + iter % 15);
    Point p{rng.NextDouble(-15, 15), rng.NextDouble(-15, 15)};
    if (a.Contains(p)) {
      EXPECT_EQ(a.DistanceTo(p), 0.0);
    } else {
      EXPECT_GT(a.DistanceTo(p), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolygonPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Property: clipping to the MBR is the identity (area-wise).
TEST(PolygonTest, ClipToOwnMbrKeepsArea) {
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    Polygon p = RandomPolygon(&rng, 0, 0, 10, 5 + iter % 10);
    Polygon clipped = p.ClipToBox(p.Mbr());
    EXPECT_NEAR(clipped.Area(), p.Area(), 1e-6);
  }
}

}  // namespace
}  // namespace paradise::geom
