#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/datagen.h"

namespace paradise::datagen {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Polyline;

DataSetOptions TinyOptions(int scale) {
  DataSetOptions o;
  o.scale = scale;
  o.size_fraction = 1.0 / 2000;
  o.num_dates = 6;
  o.base_raster_size = 64;
  return o;
}

TEST(ScaleupTest, PolygonScaleupCountsMatchPaper) {
  Rng rng(1);
  std::vector<Point> ring;
  for (int i = 0; i < 8; ++i) {
    ring.push_back(Point{std::cos(i * M_PI / 4), std::sin(i * M_PI / 4)});
  }
  Polygon base(ring);
  // S=4, N=8 (the paper's worked example): original gains 6 points, and
  // 3 satellites with 6 points each appear.
  std::vector<Polygon> scaled = ScalePolygon(base, 4, &rng);
  ASSERT_EQ(scaled.size(), 4u);  // tuples x4
  EXPECT_EQ(scaled[0].num_points(), 14u);  // 8 + 8*3/4
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(scaled[i].num_points(), 6u);
  // Total points quadruple: 8 -> 14 + 3*6 = 32.
  size_t total = 0;
  for (const Polygon& p : scaled) total += p.num_points();
  EXPECT_EQ(total, 32u);
}

TEST(ScaleupTest, PolygonScaleupS2DoublesPoints) {
  Rng rng(2);
  Polygon base({{0, 0}, {4, 0}, {4, 4}, {2, 6}, {0, 4}, {-1, 2}});  // N=6
  std::vector<Polygon> scaled = ScalePolygon(base, 2, &rng);
  ASSERT_EQ(scaled.size(), 2u);
  size_t total = scaled[0].num_points() + scaled[1].num_points();
  EXPECT_EQ(total, 12u);
}

TEST(ScaleupTest, SatelliteBoundingBoxIsTenthScale) {
  Rng rng(3);
  Polygon base({{0, 0}, {100, 0}, {100, 100}, {0, 100}});
  std::vector<Polygon> scaled = ScalePolygon(base, 2, &rng);
  ASSERT_EQ(scaled.size(), 2u);
  geom::Box sat = scaled[1].Mbr();
  EXPECT_LE(sat.Width(), 100.0 / 8);  // ~1/10, regular polygon inscribed
  EXPECT_LE(sat.Height(), 100.0 / 8);
}

TEST(ScaleupTest, PolylineScaleup) {
  Rng rng(4);
  std::vector<Point> pts;
  for (int i = 0; i < 8; ++i) pts.push_back(Point{static_cast<double>(i), 0});
  Polyline base(pts);
  std::vector<Polyline> scaled = ScalePolyline(base, 4, &rng);
  ASSERT_EQ(scaled.size(), 4u);
  EXPECT_EQ(scaled[0].num_points(), 14u);
  size_t total = 0;
  for (const Polyline& l : scaled) total += l.num_points();
  EXPECT_EQ(total, 32u);
}

TEST(ScaleupTest, PointScaleup) {
  Rng rng(5);
  std::vector<Point> scaled = ScalePoint(Point{10, 20}, 4, &rng);
  ASSERT_EQ(scaled.size(), 4u);
  EXPECT_EQ(scaled[0], (Point{10, 20}));
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(scaled[i].x, 10, 1.0);
    EXPECT_NEAR(scaled[i].y, 20, 1.0);
  }
}

TEST(ScaleupTest, ScaleOneIsIdentity) {
  Rng rng(6);
  Polygon base({{0, 0}, {1, 0}, {0, 1}});
  std::vector<Polygon> scaled = ScalePolygon(base, 1, &rng);
  ASSERT_EQ(scaled.size(), 1u);
  EXPECT_EQ(scaled[0], base);
}

TEST(DataGenTest, DeterministicInSeed) {
  GlobalDataSet a = GenerateGlobalDataSet(TinyOptions(1));
  GlobalDataSet b = GenerateGlobalDataSet(TinyOptions(1));
  ASSERT_EQ(a.roads.size(), b.roads.size());
  for (size_t i = 0; i < a.roads.size(); ++i) {
    EXPECT_TRUE(a.roads[i].at(2).Equals(b.roads[i].at(2)));
  }
  ASSERT_EQ(a.rasters.size(), b.rasters.size());
  EXPECT_EQ(a.rasters[0].pixels, b.rasters[0].pixels);
}

TEST(DataGenTest, ScaleDoublesTuplesAndPoints) {
  GlobalDataSet s1 = GenerateGlobalDataSet(TinyOptions(1));
  GlobalDataSet s2 = GenerateGlobalDataSet(TinyOptions(2));
  // Tuple counts roughly double (Table 3.1's pattern).
  EXPECT_NEAR(static_cast<double>(s2.roads.size()) / s1.roads.size(), 2.0,
              0.05);
  EXPECT_NEAR(static_cast<double>(s2.land_cover.size()) / s1.land_cover.size(),
              2.0, 0.05);
  EXPECT_NEAR(
      static_cast<double>(s2.populated_places.size()) / s1.populated_places.size(),
      2.0, 0.05);
  // Raster tuple count stays fixed; bytes double.
  EXPECT_EQ(s2.rasters.size(), s1.rasters.size());
  EXPECT_EQ(s2.RasterBytes(), 2 * s1.RasterBytes());
  // Vector bytes roughly double too.
  EXPECT_NEAR(static_cast<double>(s2.VectorBytes()) / s1.VectorBytes(), 2.0,
              0.3);
}

TEST(DataGenTest, SchemasMatchTuples) {
  GlobalDataSet ds = GenerateGlobalDataSet(TinyOptions(1));
  ASSERT_FALSE(ds.populated_places.empty());
  const exec::Tuple& place = ds.populated_places[0];
  EXPECT_EQ(place.size(), PlacesSchema().num_columns());
  EXPECT_EQ(place.at(col::kPlaceLocation).type(), exec::ValueType::kPoint);
  ASSERT_FALSE(ds.land_cover.empty());
  EXPECT_EQ(ds.land_cover[0].at(col::kLcShape).type(),
            exec::ValueType::kPolygon);
  ASSERT_FALSE(ds.roads.empty());
  EXPECT_EQ(ds.roads[0].at(col::kLineShape).type(),
            exec::ValueType::kPolyline);
}

TEST(DataGenTest, FeaturesInsideUniverse) {
  GlobalDataSet ds = GenerateGlobalDataSet(TinyOptions(2));
  geom::Box wide = ds.universe.Inflate(30);  // scaled features may poke out
  for (const exec::Tuple& t : ds.populated_places) {
    EXPECT_TRUE(ds.universe.Contains(t.at(col::kPlaceLocation).AsPoint()));
  }
  for (const exec::Tuple& t : ds.land_cover) {
    EXPECT_TRUE(wide.Contains(t.at(col::kLcShape).Mbr()));
  }
}

TEST(DataGenTest, QueryTargetsExist) {
  GlobalDataSet ds = GenerateGlobalDataSet(TinyOptions(1));
  int phoenix = 0, louisville = 0, large_cities = 0, oil_fields = 0;
  for (const exec::Tuple& t : ds.populated_places) {
    const std::string& name = t.at(col::kPlaceName).AsString();
    if (name == "Phoenix") ++phoenix;
    if (name == "Louisville") ++louisville;
    if (t.at(col::kPlaceType).AsInt() == kLargeCityType) ++large_cities;
  }
  for (const exec::Tuple& t : ds.land_cover) {
    if (t.at(col::kLcType).AsInt() == kOilFieldType) ++oil_fields;
  }
  EXPECT_EQ(phoenix, 1);
  EXPECT_GE(louisville, 1);
  EXPECT_GE(large_cities, 1);
  EXPECT_GE(oil_fields, 1);
}

TEST(DataGenTest, RastersCoverChannelsAndDates) {
  DataSetOptions o = TinyOptions(1);
  GlobalDataSet ds = GenerateGlobalDataSet(o);
  EXPECT_EQ(ds.rasters.size(),
            static_cast<size_t>(o.num_dates * o.num_channels));
  std::set<int64_t> channels;
  std::set<int32_t> dates;
  for (const RasterSpec& r : ds.rasters) {
    channels.insert(r.channel);
    dates.insert(r.date.days_since_epoch());
    EXPECT_EQ(r.pixels.size(), static_cast<size_t>(r.height) * r.width);
  }
  EXPECT_EQ(channels.size(), 4u);
  EXPECT_TRUE(channels.contains(5));
  EXPECT_EQ(dates.size(), static_cast<size_t>(o.num_dates));
}

TEST(DataGenTest, RasterScaleupKeepsImageSmooth) {
  // Oversampled rasters must still compress decently but not perfectly
  // (pixel perturbation defeats artificially high ratios).
  GlobalDataSet s2 = GenerateGlobalDataSet(TinyOptions(2));
  const RasterSpec& r = s2.rasters[0];
  // Neighboring pixels differ somewhere (noise present).
  bool any_diff = false;
  for (size_t i = 1; i < 1000; ++i) {
    if (r.pixels[i] != r.pixels[i - 1]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace paradise::datagen
