#include <gtest/gtest.h>

#include <thread>

#include "sim/cost_model.h"
#include "sim/node_clock.h"

namespace paradise::sim {
namespace {

TEST(CostModelTest, ComponentArithmetic) {
  CostModel model;
  ResourceUsage u;
  u.disk_seeks = 10;
  u.disk_bytes_read = 8'000'000;
  EXPECT_NEAR(model.Seconds(u), 10 * model.disk_seek_seconds + 1.0, 1e-9);

  ResourceUsage net;
  net.net_messages = 100;
  net.net_bytes = 12'500'000;
  EXPECT_NEAR(model.Seconds(net),
              100 * model.net_message_latency_seconds + 1.0, 1e-9);

  ResourceUsage cpu;
  cpu.cpu_ops = model.cpu_ops_per_second;
  EXPECT_NEAR(model.Seconds(cpu), 1.0, 1e-9);

  // Components are additive.
  ResourceUsage all = u;
  all.Add(net);
  all.Add(cpu);
  EXPECT_NEAR(model.Seconds(all),
              model.Seconds(u) + model.Seconds(net) + model.Seconds(cpu),
              1e-9);
}

TEST(CostModelTest, EmptyUsageIsFree) {
  EXPECT_EQ(CostModel().Seconds(ResourceUsage{}), 0.0);
}

TEST(CostModelTest, CalibrationIsNineteenNinetySeven) {
  // Guard rails: if someone "modernizes" these constants the reproduced
  // tables stop resembling the paper's.
  CostModel model;
  EXPECT_GT(model.disk_seek_seconds, 0.005);   // not an SSD
  EXPECT_LT(model.disk_bytes_per_second, 5e7); // not NVMe
  EXPECT_LT(model.net_bytes_per_second, 1e8);  // 100 Mbit, not 100 GbE
}

TEST(NodeClockTest, PhaseAccumulation) {
  NodeClock clock;
  clock.ChargeDiskRead(1000, 1);
  clock.ChargeNet(2, 500);
  clock.ChargeCpu(123);
  ResourceUsage phase = clock.EndPhase();
  EXPECT_EQ(phase.disk_bytes_read, 1000);
  EXPECT_EQ(phase.disk_seeks, 1);
  EXPECT_EQ(phase.net_messages, 2);
  EXPECT_EQ(phase.net_bytes, 500);
  EXPECT_DOUBLE_EQ(phase.cpu_ops, 123);
  // Phase usage resets; total keeps accumulating.
  EXPECT_EQ(clock.phase_usage().disk_bytes_read, 0);
  clock.ChargeDiskWrite(700, 2);
  clock.EndPhase();
  ResourceUsage total = clock.total_usage();
  EXPECT_EQ(total.disk_bytes_read, 1000);
  EXPECT_EQ(total.disk_bytes_written, 700);
  EXPECT_EQ(total.disk_seeks, 3);
  clock.Reset();
  EXPECT_EQ(clock.total_usage().disk_seeks, 0);
}

TEST(NodeClockTest, ThreadSafeCharging) {
  NodeClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 10000; ++i) clock.ChargeCpu(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(clock.phase_usage().cpu_ops, 40000);
}

}  // namespace
}  // namespace paradise::sim
