#include <gtest/gtest.h>

#include "catalog/aggregate_registry.h"
#include "common/rng.h"
#include "exec/aggregate.h"

namespace paradise::exec {
namespace {

using geom::Point;
using geom::Polyline;

ExecContext NullCtx() { return ExecContext{}; }

TupleVec MakeGroups(Rng* rng, int n, int64_t groups) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Tuple({Value(rng->NextInt(0, groups - 1)),
                         Value(rng->NextDouble(0, 100))}));
  }
  return out;
}

TEST(AggregateTest, CountSumAvgMinMax) {
  ExecContext ctx = NullCtx();
  TupleVec in;
  for (int i = 1; i <= 10; ++i) {
    in.push_back(Tuple({Value(int64_t{0}), Value(static_cast<double>(i))}));
  }
  std::vector<AggregatePtr> aggs = {MakeCount(), MakeSum(Col(1)),
                                    MakeAvg(Col(1)), MakeMin(Col(1)),
                                    MakeMax(Col(1))};
  auto partials = AggregateLocal(in, {0}, aggs, ctx);
  ASSERT_TRUE(partials.ok());
  auto result = AggregateGlobal(*partials, 1, aggs, ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  const Tuple& t = (*result)[0];
  EXPECT_EQ(t.at(1).AsInt(), 10);          // count
  EXPECT_DOUBLE_EQ(t.at(2).AsDouble(), 55);  // sum
  EXPECT_DOUBLE_EQ(t.at(3).AsDouble(), 5.5); // avg
  EXPECT_DOUBLE_EQ(t.at(4).AsDouble(), 1);   // min
  EXPECT_DOUBLE_EQ(t.at(5).AsDouble(), 10);  // max
}

TEST(AggregateTest, TwoPhaseEqualsSinglePhase) {
  // The defining property of local/global decomposition: partitioning the
  // input arbitrarily and merging partials gives the same answer as one
  // big local pass.
  ExecContext ctx = NullCtx();
  Rng rng(17);
  TupleVec in = MakeGroups(&rng, 2000, 7);
  std::vector<AggregatePtr> aggs = {MakeCount(), MakeSum(Col(1)),
                                    MakeAvg(Col(1)), MakeMin(Col(1)),
                                    MakeMax(Col(1))};
  // Single "node".
  auto p_all = AggregateLocal(in, {0}, aggs, ctx);
  ASSERT_TRUE(p_all.ok());
  auto single = AggregateGlobal(*p_all, 1, aggs, ctx);
  ASSERT_TRUE(single.ok());
  // Split across 5 "nodes".
  std::vector<TupleVec> parts(5);
  for (size_t i = 0; i < in.size(); ++i) parts[i % 5].push_back(in[i]);
  TupleVec partials;
  for (const TupleVec& part : parts) {
    auto p = AggregateLocal(part, {0}, aggs, ctx);
    ASSERT_TRUE(p.ok());
    partials.insert(partials.end(), p->begin(), p->end());
  }
  auto merged = AggregateGlobal(partials, 1, aggs, ctx);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), single->size());
  for (size_t i = 0; i < merged->size(); ++i) {
    for (size_t c = 0; c < (*merged)[i].size(); ++c) {
      const Value& a = (*merged)[i].at(c);
      const Value& b = (*single)[i].at(c);
      if (a.type() == ValueType::kDouble) {
        EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-9);
      } else {
        EXPECT_TRUE(a.Equals(b));
      }
    }
  }
}

TEST(AggregateTest, ClosestFindsMinimumDistance) {
  ExecContext ctx = NullCtx();
  Point q{0, 0};
  TupleVec in;
  in.push_back(Tuple({Value(int64_t{0}), Value(Polyline({{10, 0}, {10, 10}}))}));
  in.push_back(Tuple({Value(int64_t{0}), Value(Polyline({{3, 4}, {5, 8}}))}));
  in.push_back(Tuple({Value(int64_t{0}), Value(Polyline({{-7, 0}, {-7, 2}}))}));
  std::vector<AggregatePtr> aggs = {MakeClosest(Col(1), q)};
  auto partials = AggregateLocal(in, {0}, aggs, ctx);
  ASSERT_TRUE(partials.ok());
  auto result = AggregateGlobal(*partials, 1, aggs, ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  // Columns: [group, shape, distance]; the (3,4) chain is at distance 5.
  EXPECT_DOUBLE_EQ((*result)[0].at(2).AsDouble(), 5.0);
}

TEST(AggregateTest, ClosestStateSurvivesMarshalling) {
  // Closest partials are shipped between nodes as plain values; exercise
  // the save/load path against brute force.
  ExecContext ctx = NullCtx();
  Rng rng(5);
  Point q{0, 0};
  TupleVec in;
  double best = 1e300;
  for (int i = 0; i < 300; ++i) {
    Point a{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)};
    Point b{a.x + rng.NextDouble(-5, 5), a.y + rng.NextDouble(-5, 5)};
    Polyline line({a, b});
    best = std::min(best, line.DistanceTo(q));
    in.push_back(Tuple({Value(int64_t{i % 4}), Value(std::move(line))}));
  }
  std::vector<AggregatePtr> aggs = {MakeClosest(Col(1), q)};
  std::vector<TupleVec> parts(3);
  for (size_t i = 0; i < in.size(); ++i) parts[i % 3].push_back(in[i]);
  TupleVec partials;
  for (const TupleVec& p : parts) {
    auto r = AggregateLocal(p, {0}, aggs, ctx);
    ASSERT_TRUE(r.ok());
    partials.insert(partials.end(), r->begin(), r->end());
  }
  auto result = AggregateGlobal(partials, 1, aggs, ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 4u);  // one row per type group
  double min_over_groups = 1e300;
  for (const Tuple& t : *result) {
    min_over_groups = std::min(min_over_groups, t.at(2).AsDouble());
  }
  EXPECT_DOUBLE_EQ(min_over_groups, best);
}

TEST(AggregateTest, EmptyInputProducesNoGroups) {
  ExecContext ctx = NullCtx();
  std::vector<AggregatePtr> aggs = {MakeCount()};
  auto partials = AggregateLocal({}, {0}, aggs, ctx);
  ASSERT_TRUE(partials.ok());
  EXPECT_TRUE(partials->empty());
  auto result = AggregateGlobal(*partials, 1, aggs, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(AggregateTest, GroupByPointKeys) {
  // Query 12 groups by city location (a point).
  ExecContext ctx = NullCtx();
  TupleVec in;
  in.push_back(Tuple({Value(Point{1, 1}), Value(1.0)}));
  in.push_back(Tuple({Value(Point{1, 1}), Value(3.0)}));
  in.push_back(Tuple({Value(Point{2, 2}), Value(5.0)}));
  std::vector<AggregatePtr> aggs = {MakeMin(Col(1))};
  auto partials = AggregateLocal(in, {0}, aggs, ctx);
  ASSERT_TRUE(partials.ok());
  auto result = AggregateGlobal(*partials, 1, aggs, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(RegistryTest, BuiltinsAndExtensibility) {
  catalog::AggregateRegistry reg = catalog::AggregateRegistry::WithBuiltins();
  EXPECT_TRUE(reg.Has("count"));
  EXPECT_TRUE(reg.Has("closest"));
  EXPECT_FALSE(reg.Has("median"));

  // Creating from the registry works like direct construction.
  auto agg = reg.Create("avg", {Col(1)});
  ASSERT_TRUE(agg.ok());
  ExecContext ctx = NullCtx();
  TupleVec in = {Tuple({Value(int64_t{0}), Value(2.0)}),
                 Tuple({Value(int64_t{0}), Value(4.0)})};
  auto partials = AggregateLocal(in, {0}, {*agg}, ctx);
  ASSERT_TRUE(partials.ok());
  auto result = AggregateGlobal(*partials, 1, {*agg}, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)[0].at(1).AsDouble(), 3.0);

  // closest requires a point parameter.
  EXPECT_FALSE(reg.Create("closest", {Col(1)}, {}).ok());
  EXPECT_TRUE(reg.Create("closest", {Col(1)}, {Value(Point{0, 0})}).ok());

  // Registering a brand-new aggregate (the extensibility story of
  // Section 2.4): a "spread" = max - min.
  ASSERT_TRUE(reg.Register(
                     "spread",
                     [](const std::vector<ExprPtr>& args,
                        const std::vector<Value>&) -> StatusOr<AggregatePtr> {
                       if (args.size() != 1) {
                         return Status::InvalidArgument("spread(x)");
                       }
                       return MakeMax(args[0]);  // stand-in implementation
                     })
                  .ok());
  EXPECT_TRUE(reg.Has("spread"));
  EXPECT_FALSE(reg.Register("spread", nullptr).ok());  // duplicate
}

}  // namespace
}  // namespace paradise::exec
