#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/recovery.h"
#include "storage/transaction.h"
#include "storage/wal.h"

namespace paradise::storage {
namespace {

ByteBuffer Rec(const std::string& s) { return ByteBuffer(s.begin(), s.end()); }

std::string Str(const ByteBuffer& b) { return std::string(b.begin(), b.end()); }

/// A node's durable state: volume + log survive; buffer pool does not.
class WalTest : public ::testing::Test {
 protected:
  WalTest()
      : vol_(0, nullptr),
        pool_(64),
        log_(nullptr),
        txns_(&log_),
        file_(1, &pool_, 0, &log_) {
    pool_.AttachVolume(&vol_);
    txns_.RegisterFile(&file_);
  }

  void Crash() {
    pool_.DiscardAll();
    log_.CrashTruncate();
  }

  Status Recover() {
    RecoveryManager recovery(&txns_);
    return recovery.Recover();
  }

  DiskVolume vol_;
  BufferPool pool_;
  LogManager log_;
  TransactionManager txns_;
  HeapFile file_;
};

TEST_F(WalTest, CommittedInsertSurvivesCrash) {
  auto txn = txns_.Begin();
  auto oid = file_.Insert(txn.get(), Rec("persist-me"));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(txns_.Commit(txn.get()).ok());
  Crash();  // nothing was flushed: redo must reconstruct the page
  ASSERT_TRUE(Recover().ok());
  auto rec = file_.Get(*oid);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(Str(*rec), "persist-me");
}

TEST_F(WalTest, UncommittedInsertRolledBackOnRecovery) {
  auto txn = txns_.Begin();
  auto oid = file_.Insert(txn.get(), Rec("ghost"));
  ASSERT_TRUE(oid.ok());
  // Force the log so the insert is durable but the txn never committed.
  log_.Force(log_.last_lsn());
  Crash();
  ASSERT_TRUE(Recover().ok());
  EXPECT_FALSE(file_.Get(*oid).ok());  // undone
}

TEST_F(WalTest, UnforcedUncommittedWorkSimplyVanishes) {
  auto txn = txns_.Begin();
  auto oid = file_.Insert(txn.get(), Rec("never-forced"));
  ASSERT_TRUE(oid.ok());
  Crash();  // log records were never forced
  ASSERT_TRUE(Recover().ok());
  EXPECT_FALSE(file_.Get(*oid).ok());
}

TEST_F(WalTest, CommittedDeleteSurvives) {
  auto t1 = txns_.Begin();
  auto oid = file_.Insert(t1.get(), Rec("to-delete"));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(txns_.Commit(t1.get()).ok());
  auto t2 = txns_.Begin();
  ASSERT_TRUE(file_.Delete(t2.get(), *oid).ok());
  ASSERT_TRUE(txns_.Commit(t2.get()).ok());
  Crash();
  ASSERT_TRUE(Recover().ok());
  EXPECT_FALSE(file_.Get(*oid).ok());
}

TEST_F(WalTest, UncommittedDeleteRestored) {
  auto t1 = txns_.Begin();
  auto oid = file_.Insert(t1.get(), Rec("keep-me"));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(txns_.Commit(t1.get()).ok());
  ASSERT_TRUE(pool_.FlushAll().ok());  // delete will hit disk state
  auto t2 = txns_.Begin();
  ASSERT_TRUE(file_.Delete(t2.get(), *oid).ok());
  log_.Force(log_.last_lsn());
  ASSERT_TRUE(pool_.FlushAll().ok());  // deleted state reached disk too
  Crash();
  ASSERT_TRUE(Recover().ok());
  auto rec = file_.Get(*oid);
  ASSERT_TRUE(rec.ok());  // undo re-inserted it
  EXPECT_EQ(Str(*rec), "keep-me");
}

TEST_F(WalTest, UpdateRedoAndUndo) {
  auto t1 = txns_.Begin();
  auto oid = file_.Insert(t1.get(), Rec("vvvv1"));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(txns_.Commit(t1.get()).ok());
  // Committed update, unflushed: redo must reapply.
  auto t2 = txns_.Begin();
  ASSERT_TRUE(file_.Update(t2.get(), *oid, Rec("vvvv2")).ok());
  ASSERT_TRUE(txns_.Commit(t2.get()).ok());
  Crash();
  ASSERT_TRUE(Recover().ok());
  EXPECT_EQ(Str(*file_.Get(*oid)), "vvvv2");
  // Uncommitted update, forced: undo must restore.
  auto t3 = txns_.Begin();
  ASSERT_TRUE(file_.Update(t3.get(), *oid, Rec("vvvv3")).ok());
  log_.Force(log_.last_lsn());
  Crash();
  ASSERT_TRUE(Recover().ok());
  EXPECT_EQ(Str(*file_.Get(*oid)), "vvvv2");
}

TEST_F(WalTest, ExplicitAbortUndoesImmediately) {
  auto t1 = txns_.Begin();
  auto keep = file_.Insert(t1.get(), Rec("committed"));
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(txns_.Commit(t1.get()).ok());

  auto t2 = txns_.Begin();
  auto gone = file_.Insert(t2.get(), Rec("aborted"));
  ASSERT_TRUE(gone.ok());
  ASSERT_TRUE(file_.Delete(t2.get(), *keep).ok());
  ASSERT_TRUE(txns_.Abort(t2.get()).ok());

  EXPECT_FALSE(file_.Get(*gone).ok());
  EXPECT_EQ(Str(*file_.Get(*keep)), "committed");
  EXPECT_EQ(t2->state(), TxnState::kAborted);
}

TEST_F(WalTest, AbortedTxnStaysAbortedAfterCrash) {
  auto t1 = txns_.Begin();
  auto oid = file_.Insert(t1.get(), Rec("flip-flop"));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(txns_.Abort(t1.get()).ok());  // forces CLRs + abort record
  Crash();
  ASSERT_TRUE(Recover().ok());
  EXPECT_FALSE(file_.Get(*oid).ok());
}

TEST_F(WalTest, InterleavedWinnersAndLosers) {
  auto winner = txns_.Begin();
  auto loser = txns_.Begin();
  auto w1 = file_.Insert(winner.get(), Rec("w1"));
  auto l1 = file_.Insert(loser.get(), Rec("l1"));
  auto w2 = file_.Insert(winner.get(), Rec("w2"));
  auto l2 = file_.Insert(loser.get(), Rec("l2"));
  ASSERT_TRUE(w1.ok() && l1.ok() && w2.ok() && l2.ok());
  ASSERT_TRUE(txns_.Commit(winner.get()).ok());
  // Loser's records are durable in the log (commit forced past them).
  Crash();
  ASSERT_TRUE(Recover().ok());
  EXPECT_EQ(Str(*file_.Get(*w1)), "w1");
  EXPECT_EQ(Str(*file_.Get(*w2)), "w2");
  EXPECT_FALSE(file_.Get(*l1).ok());
  EXPECT_FALSE(file_.Get(*l2).ok());
}

TEST_F(WalTest, RecoveryIsIdempotent) {
  auto txn = txns_.Begin();
  auto oid = file_.Insert(txn.get(), Rec("idempotent"));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(txns_.Commit(txn.get()).ok());
  Crash();
  ASSERT_TRUE(Recover().ok());
  ASSERT_TRUE(pool_.FlushAll().ok());
  // Crash again right after recovery, recover again.
  Crash();
  ASSERT_TRUE(Recover().ok());
  EXPECT_EQ(Str(*file_.Get(*oid)), "idempotent");
  EXPECT_EQ(file_.num_records(), 1);
}

TEST_F(WalTest, ManyTransactionsTornAtCrash) {
  std::vector<Oid> committed, uncommitted;
  for (int i = 0; i < 50; ++i) {
    auto txn = txns_.Begin();
    auto oid = file_.Insert(txn.get(), Rec("batch-" + std::to_string(i)));
    ASSERT_TRUE(oid.ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(txns_.Commit(txn.get()).ok());
      committed.push_back(*oid);
    } else {
      uncommitted.push_back(*oid);
    }
  }
  log_.Force(log_.last_lsn());
  Crash();
  ASSERT_TRUE(Recover().ok());
  for (const Oid& oid : committed) EXPECT_TRUE(file_.Get(oid).ok());
  for (const Oid& oid : uncommitted) EXPECT_FALSE(file_.Get(oid).ok());
}

TEST(LogManagerTest, ForceAndTruncate) {
  LogManager log(nullptr);
  LogRecord r;
  r.type = LogRecordType::kBegin;
  r.txn = 1;
  Lsn l1 = log.Append(r);
  Lsn l2 = log.Append(r);
  EXPECT_EQ(l1, 1u);
  EXPECT_EQ(l2, 2u);
  log.Force(l1);
  EXPECT_EQ(log.durable_lsn(), 1u);
  log.CrashTruncate();
  EXPECT_EQ(log.last_lsn(), 1u);
  EXPECT_EQ(log.DurableRecords().size(), 1u);
}

}  // namespace
}  // namespace paradise::storage
