#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/cluster.h"
#include "core/coordinator.h"
#include "core/parallel_ops.h"
#include "core/pull.h"
#include "core/spatial_grid.h"
#include "core/table.h"
#include "datagen/datagen.h"
#include "exec/spatial_join.h"

namespace paradise::core {
namespace {

using catalog::PartitioningKind;
using catalog::TableDef;
using exec::CompareOp;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;
using geom::Box;
using geom::Point;
using geom::Polygon;
using geom::Polyline;

// ---------- SpatialGrid ----------

TEST(SpatialGridTest, TileNumberingRowMajorFromUpperLeft) {
  SpatialGrid grid(Box(0, 0, 100, 100), 10, 4);
  // Upper-left corner -> tile 0.
  EXPECT_EQ(grid.TileOfPoint(Point{0.5, 99.5}), 0u);
  EXPECT_EQ(grid.TileOfPoint(Point{99.5, 99.5}), 9u);
  EXPECT_EQ(grid.TileOfPoint(Point{0.5, 0.5}), 90u);
  EXPECT_EQ(grid.TileOfPoint(Point{99.5, 0.5}), 99u);
}

TEST(SpatialGridTest, TileBoxRoundTrips) {
  SpatialGrid grid(Box(-50, -20, 70, 40), 16, 4);
  for (uint32_t t = 0; t < grid.num_tiles(); ++t) {
    Box b = grid.TileBox(t);
    EXPECT_EQ(grid.TileOfPoint(b.Center()), t);
  }
}

TEST(SpatialGridTest, TilesOfBoxCoversAndOnlyOverlaps) {
  SpatialGrid grid(Box(0, 0, 100, 100), 10, 4);
  Box q(15, 25, 38, 47);
  std::vector<uint32_t> tiles = grid.TilesOfBox(q);
  std::set<uint32_t> got(tiles.begin(), tiles.end());
  for (uint32_t t = 0; t < grid.num_tiles(); ++t) {
    bool overlaps = grid.TileBox(t).Intersects(q);
    EXPECT_EQ(got.contains(t), overlaps) << "tile " << t;
  }
}

TEST(SpatialGridTest, NodeMappingCoversAllNodes) {
  SpatialGrid grid(Box(0, 0, 1, 1), 100, 16);
  std::set<uint32_t> nodes;
  for (uint32_t t = 0; t < grid.num_tiles(); ++t) nodes.insert(grid.NodeOfTile(t));
  EXPECT_EQ(nodes.size(), 16u);
}

TEST(SpatialGridTest, PrimaryNodeIsAmongDestinations) {
  Rng rng(8);
  SpatialGrid grid(Box(-100, -100, 100, 100), 50, 8);
  for (int i = 0; i < 200; ++i) {
    double x = rng.NextDouble(-120, 120);  // may poke outside the universe
    double y = rng.NextDouble(-120, 120);
    Box b(x, y, x + rng.NextDouble(0, 30), y + rng.NextDouble(0, 30));
    std::vector<uint32_t> nodes = grid.NodesOfBox(b);
    ASSERT_FALSE(nodes.empty());
    uint32_t primary = grid.PrimaryNode(b);
    EXPECT_NE(std::find(nodes.begin(), nodes.end(), primary), nodes.end());
  }
}

// ---------- Cluster / table loading ----------

Cluster::Options SmallClusterOptions() {
  Cluster::Options o;
  o.buffer_pool_frames = 512;
  return o;
}

TableDef PolyTableDef(const std::string& name, PartitioningKind part,
                      const Box& universe) {
  TableDef def;
  def.name = name;
  def.schema = exec::Schema(
      {{"id", ValueType::kInt}, {"shape", ValueType::kPolygon}});
  def.partitioning = part;
  def.partition_column = 1;
  def.universe = universe;
  return def;
}

TupleVec RandomPolyTuples(Rng* rng, int n, double extent, double radius) {
  TupleVec out;
  for (int i = 0; i < n; ++i) {
    double cx = rng->NextDouble(-extent, extent);
    double cy = rng->NextDouble(-extent, extent);
    std::vector<Point> ring;
    for (int k = 0; k < 6; ++k) {
      double angle = 2 * M_PI * k / 6;
      double r = radius * (0.5 + 0.5 * rng->NextDouble());
      ring.push_back(Point{cx + r * std::cos(angle), cy + r * std::sin(angle)});
    }
    out.push_back(Tuple({Value(int64_t{i}), Value(Polygon(std::move(ring)))}));
  }
  return out;
}

std::multiset<int64_t> Ids(const TupleVec& rows, size_t col = 0) {
  std::multiset<int64_t> out;
  for (const Tuple& t : rows) out.insert(t.at(col).AsInt());
  return out;
}

TEST(ParallelTableTest, RoundRobinLoadAndScan) {
  Cluster cluster(4, SmallClusterOptions());
  Rng rng(1);
  TupleVec rows = RandomPolyTuples(&rng, 100, 50, 3);
  TableDef def = PolyTableDef("t", PartitioningKind::kRoundRobin, Box());
  auto table = ParallelTable::Load(&cluster, def, rows);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 100);
  EXPECT_EQ((*table)->num_stored(), 100);  // no replication
  // Fragments are balanced.
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ((*table)->fragment(n).num_rows(), 25);
  }
  // Scanning all fragments returns every tuple exactly once.
  std::multiset<int64_t> seen;
  for (int n = 0; n < 4; ++n) {
    auto frag = (*table)->ScanFragment(&cluster, n, true);
    ASSERT_TRUE(frag.ok());
    for (const Tuple& t : *frag) seen.insert(t.at(0).AsInt());
  }
  EXPECT_EQ(seen, Ids(rows));
}

TEST(ParallelTableTest, SpatialLoadReplicatesSpanningTuples) {
  Cluster cluster(4, SmallClusterOptions());
  Rng rng(2);
  Box universe(-60, -60, 60, 60);
  TupleVec rows = RandomPolyTuples(&rng, 200, 50, 8);  // big: spans tiles
  TableDef def = PolyTableDef("t", PartitioningKind::kSpatial, universe);
  auto table = ParallelTable::Load(&cluster, def, rows, /*tiles_per_axis=*/20);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 200);       // primaries
  EXPECT_GT((*table)->num_stored(), 200);     // replicas exist
  // Primary-only scan sees each tuple exactly once.
  std::multiset<int64_t> seen;
  for (int n = 0; n < 4; ++n) {
    auto frag = (*table)->ScanFragment(&cluster, n, true);
    ASSERT_TRUE(frag.ok());
    for (const Tuple& t : *frag) seen.insert(t.at(0).AsInt());
  }
  EXPECT_EQ(seen, Ids(rows));
}

TEST(ParallelTableTest, ScanChargesDiskOnce) {
  Cluster cluster(2, SmallClusterOptions());
  Rng rng(3);
  TupleVec rows = RandomPolyTuples(&rng, 500, 50, 2);
  TableDef def = PolyTableDef("t", PartitioningKind::kRoundRobin, Box());
  auto table = ParallelTable::Load(&cluster, def, rows);
  ASSERT_TRUE(table.ok());
  cluster.ResetForQuery();
  auto frag = (*table)->ScanFragment(&cluster, 0, true);
  ASSERT_TRUE(frag.ok());
  sim::ResourceUsage u = cluster.node(0).clock()->EndPhase();
  EXPECT_GT(u.disk_bytes_read, 0);
  EXPECT_GT(u.cpu_ops, 0);
}

// ---------- Parallel operators: the result-preserving invariant ----------

/// Runs the same logical operation on a 1-node and an N-node cluster; the
/// results must be identical. This is the core correctness claim of
/// declustering + replication + duplicate elimination.
class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalenceTest, SpatialSelectMatchesSerial) {
  int N = GetParam();
  Rng rng(42);
  Box universe(-60, -60, 60, 60);
  TupleVec rows = RandomPolyTuples(&rng, 300, 50, 6);
  Polygon query({Point{-20, -20}, Point{25, -20}, Point{25, 25},
                 Point{-20, 25}});
  exec::ExprPtr exact =
      exec::Overlaps(exec::Col(1), exec::Lit(Value(query)));

  auto run = [&](int nodes) -> std::multiset<int64_t> {
    Cluster cluster(nodes, SmallClusterOptions());
    TableDef def = PolyTableDef("t", PartitioningKind::kSpatial, universe);
    def.indexes = {catalog::IndexDef{"shape_idx", 1, true}};
    auto table = ParallelTable::Load(&cluster, def, rows, 20);
    EXPECT_TRUE(table.ok());
    QueryCoordinator coord(&cluster);
    EXPECT_TRUE(coord.BeginQuery().ok());
    auto per = ParallelSpatialIndexSelect(&coord, **table, query.Mbr(), exact);
    EXPECT_TRUE(per.ok());
    auto gathered = Gather(&coord, *per);
    EXPECT_TRUE(gathered.ok());
    EXPECT_GT(coord.query_seconds(), 0.0);
    return Ids(*gathered);
  };
  EXPECT_EQ(run(1), run(N));
}

TEST_P(ParallelEquivalenceTest, SpatialJoinMatchesSerialNestedLoops) {
  int N = GetParam();
  Rng rng(7);
  Box universe(-40, -40, 40, 40);
  TupleVec left = RandomPolyTuples(&rng, 120, 35, 4);
  TupleVec right = RandomPolyTuples(&rng, 100, 35, 4);

  // Serial reference.
  exec::ExecContext null_ctx;
  auto nl = exec::NestedLoopsJoin(left, right,
                                  exec::Overlaps(exec::Col(1), exec::Col(3)),
                                  null_ctx);
  ASSERT_TRUE(nl.ok());
  std::set<std::pair<int64_t, int64_t>> expected;
  for (const Tuple& t : *nl) {
    expected.emplace(t.at(0).AsInt(), t.at(2).AsInt());
  }

  Cluster cluster(N, SmallClusterOptions());
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  // Inputs start round-robin placed (arbitrary initial placement).
  PerNode lper(N), rper(N);
  for (size_t i = 0; i < left.size(); ++i) lper[i % N].push_back(left[i]);
  for (size_t i = 0; i < right.size(); ++i) rper[i % N].push_back(right[i]);
  ParallelSpatialJoinOptions opts;
  opts.tiles_per_axis = 25;
  auto joined = ParallelSpatialJoin(&coord, lper, 1, rper, 1, universe, opts);
  ASSERT_TRUE(joined.ok());
  std::set<std::pair<int64_t, int64_t>> got;
  for (const TupleVec& v : *joined) {
    for (const Tuple& t : v) {
      auto ins = got.emplace(t.at(0).AsInt(), t.at(2).AsInt());
      EXPECT_TRUE(ins.second) << "cross-node duplicate";
    }
  }
  EXPECT_EQ(got, expected);
}

TEST_P(ParallelEquivalenceTest, AggregateMatchesSerial) {
  int N = GetParam();
  Rng rng(11);
  TupleVec rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back(Tuple({Value(rng.NextInt(0, 9)),
                          Value(rng.NextDouble(0, 1000))}));
  }
  auto run = [&](int nodes) {
    Cluster cluster(nodes, SmallClusterOptions());
    QueryCoordinator coord(&cluster);
    EXPECT_TRUE(coord.BeginQuery().ok());
    PerNode per(nodes);
    for (size_t i = 0; i < rows.size(); ++i) {
      per[i % static_cast<size_t>(nodes)].push_back(rows[i]);
    }
    std::vector<exec::AggregatePtr> aggs = {exec::MakeCount(),
                                            exec::MakeAvg(exec::Col(1))};
    auto result = ParallelAggregate(&coord, per, {0}, aggs);
    EXPECT_TRUE(result.ok());
    return *result;
  };
  TupleVec serial = run(1);
  TupleVec parallel = run(N);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].at(0).AsInt(), parallel[i].at(0).AsInt());
    EXPECT_EQ(serial[i].at(1).AsInt(), parallel[i].at(1).AsInt());
    EXPECT_NEAR(serial[i].at(2).AsDouble(), parallel[i].at(2).AsDouble(),
                1e-9);
  }
}

TEST_P(ParallelEquivalenceTest, ClosestJoinMatchesBruteForce) {
  int N = GetParam();
  Rng rng(13);
  Box universe(-50, -50, 50, 50);
  // Points and polyline features.
  TupleVec points;
  for (int i = 0; i < 40; ++i) {
    points.push_back(Tuple({Value(int64_t{i}),
                            Value(Point{rng.NextDouble(-48, 48),
                                        rng.NextDouble(-48, 48)})}));
  }
  TupleVec features;
  for (int i = 0; i < 150; ++i) {
    double x = rng.NextDouble(-48, 48), y = rng.NextDouble(-48, 48);
    features.push_back(
        Tuple({Value(int64_t{i}),
               Value(Polyline({{x, y},
                               {x + rng.NextDouble(-3, 3),
                                y + rng.NextDouble(-3, 3)}}))}));
  }

  Cluster cluster(N, SmallClusterOptions());
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  PerNode pper(N), fper(N);
  for (size_t i = 0; i < points.size(); ++i) pper[i % N].push_back(points[i]);
  for (size_t i = 0; i < features.size(); ++i) {
    fper[i % N].push_back(features[i]);
  }
  ClosestJoinStats stats;
  auto result = SpatialJoinWithClosest(&coord, pper, 1, fper, 1, universe,
                                       /*tiles_per_axis=*/10, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), points.size());
  EXPECT_EQ(stats.local_points + stats.replicated_points,
            static_cast<int64_t>(points.size()));

  // Brute-force reference: min distance per point.
  std::map<std::pair<double, double>, double> expected;
  for (const Tuple& pt : points) {
    const Point& p = pt.at(1).AsPoint();
    double best = 1e300;
    for (const Tuple& ft : features) {
      best = std::min(best, ft.at(1).AsPolyline()->DistanceTo(p));
    }
    expected[{p.x, p.y}] = best;
  }
  for (const Tuple& t : *result) {
    const Point& p = t.at(0).AsPoint();
    auto it = expected.find({p.x, p.y});
    ASSERT_TRUE(it != expected.end());
    EXPECT_NEAR(t.at(2).AsDouble(), it->second, 1e-9);
  }
}

TEST_P(ParallelEquivalenceTest, TwoLayerJoinMatchesLegacyWithZeroDedup) {
  int N = GetParam();
  Rng rng(19);
  Box universe(-40, -40, 40, 40);
  TupleVec left = RandomPolyTuples(&rng, 120, 35, 4);
  TupleVec right = RandomPolyTuples(&rng, 100, 35, 4);

  auto run = [&](bool two_layer, exec::PbsmJoinStats* stats) {
    Cluster cluster(N, SmallClusterOptions());
    QueryCoordinator coord(&cluster);
    EXPECT_TRUE(coord.BeginQuery().ok());
    PerNode lper(N), rper(N);
    for (size_t i = 0; i < left.size(); ++i) lper[i % N].push_back(left[i]);
    for (size_t i = 0; i < right.size(); ++i) rper[i % N].push_back(right[i]);
    ParallelSpatialJoinOptions opts;
    opts.tiles_per_axis = 16;
    opts.two_layer = two_layer;
    auto joined = ParallelSpatialJoin(&coord, lper, 1, rper, 1, universe, opts);
    EXPECT_TRUE(joined.ok());
    std::set<std::pair<int64_t, int64_t>> got;
    for (const TupleVec& v : *joined) {
      for (const Tuple& t : v) {
        auto ins = got.emplace(t.at(0).AsInt(), t.at(2).AsInt());
        EXPECT_TRUE(ins.second) << "cross-node duplicate";
      }
    }
    *stats = coord.pbsm_stats();
    return got;
  };

  exec::PbsmJoinStats legacy_stats, two_stats;
  auto legacy = run(false, &legacy_stats);
  auto twol = run(true, &two_stats);
  EXPECT_EQ(twol, legacy);
  EXPECT_FALSE(twol.empty());
  // The legacy path tests every joined tuple against the reference point;
  // the class plan never runs that branch.
  EXPECT_GT(legacy_stats.dedup_tests, 0);
  EXPECT_EQ(two_stats.dedup_tests, 0);
  EXPECT_EQ(two_stats.dedup_dropped, 0);
  EXPECT_GT(two_stats.class_a_items, 0);
}

TEST(TwoLayerTableTest, LoadClassifiesRowsAndValidates) {
  Cluster cluster(4, SmallClusterOptions());
  Rng rng(23);
  Box universe(-60, -60, 60, 60);
  TupleVec rows = RandomPolyTuples(&rng, 200, 50, 8);  // big: spans tiles
  TableDef def = PolyTableDef("t2l", PartitioningKind::kTwoLayer, universe);
  auto table = ParallelTable::Load(&cluster, def, rows, /*tiles_per_axis=*/20);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 200);
  EXPECT_GT((*table)->num_stored(), 200);  // spill copies exist

  // Class census: the A copies are exactly the primaries; every stored
  // copy carries a class.
  std::array<int64_t, 4> counts = (*table)->ClassCounts();
  EXPECT_EQ(counts[0], (*table)->num_rows());
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3],
            (*table)->num_stored());
  EXPECT_GT(counts[1] + counts[2] + counts[3], 0);

  // The flag audit checks class-vs-grid and class-A-iff-primary sync.
  Status audit = (*table)->ValidateOwnership(&cluster);
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  // Primary-only scan still sees each row exactly once.
  std::multiset<int64_t> seen;
  for (int n = 0; n < 4; ++n) {
    auto frag = (*table)->ScanFragment(&cluster, n, true);
    ASSERT_TRUE(frag.ok());
    for (const Tuple& t : *frag) seen.insert(t.at(0).AsInt());
  }
  EXPECT_EQ(seen, Ids(rows));
}

/// One run of the predeclustered two-layer self-join: sorted result keys,
/// modeled seconds, and the aggregated join stats.
struct TwoLayerRunDigest {
  std::set<std::pair<int64_t, int64_t>> keys;
  double seconds = 0.0;
  exec::PbsmJoinStats stats;
};

TwoLayerRunDigest RunTwoLayerTableJoin(int num_threads, bool faulted) {
  Cluster cluster(4, SmallClusterOptions());
  cluster.SetNumThreads(num_threads);
  Rng rng(29);
  Box universe(-50, -50, 50, 50);
  TupleVec lrows = RandomPolyTuples(&rng, 150, 45, 6);
  TupleVec rrows = RandomPolyTuples(&rng, 130, 45, 6);
  TableDef ldef = PolyTableDef("L", PartitioningKind::kTwoLayer, universe);
  TableDef rdef = PolyTableDef("R", PartitioningKind::kTwoLayer, universe);
  auto lt = ParallelTable::Load(&cluster, ldef, lrows, /*tiles_per_axis=*/10);
  auto rt = ParallelTable::Load(&cluster, rdef, rrows, /*tiles_per_axis=*/10);
  EXPECT_TRUE(lt.ok() && rt.ok());
  if (faulted) {
    cluster.MarkNodeDead(2);
    EXPECT_TRUE((*lt)->RedeclusterAfterLoss(&cluster, 2).ok());
    EXPECT_TRUE((*rt)->RedeclusterAfterLoss(&cluster, 2).ok());
    EXPECT_TRUE((*lt)->ValidateOwnership(&cluster).ok());
    EXPECT_TRUE((*rt)->ValidateOwnership(&cluster).ok());
  }
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  auto lper = ParallelScanAll(&coord, **lt, nullptr);
  auto rper = ParallelScanAll(&coord, **rt, nullptr);
  EXPECT_TRUE(lper.ok() && rper.ok());
  ParallelSpatialJoinOptions opts;
  opts.two_layer = true;
  opts.left_predeclustered = true;
  opts.right_predeclustered = true;
  opts.routing_grid = &(*lt)->grid();
  opts.tiles_per_axis = (*lt)->grid().tiles_per_axis();
  auto joined =
      ParallelSpatialJoin(&coord, *lper, 1, *rper, 1, universe, opts);
  EXPECT_TRUE(joined.ok()) << joined.status().ToString();
  TwoLayerRunDigest d;
  for (const TupleVec& v : *joined) {
    for (const Tuple& t : v) {
      auto ins = d.keys.emplace(t.at(0).AsInt(), t.at(2).AsInt());
      EXPECT_TRUE(ins.second) << "duplicate pair across nodes";
    }
  }
  coord.EndQuery();
  d.seconds = coord.query_seconds();
  d.stats = coord.pbsm_stats();
  return d;
}

TEST(TwoLayerTableTest, PredeclusteredJoinBitIdenticalCleanAndFaulted) {
  // parallel_tasks is `pooled ? ran : 0` — the one stats field that is
  // allowed to differ between a 1-thread (inline) and an 8-thread run.
  auto normalized = [](const TwoLayerRunDigest& d) {
    exec::PbsmJoinStats s = d.stats;
    s.parallel_tasks = 0;
    return s;
  };
  const TwoLayerRunDigest clean1 = RunTwoLayerTableJoin(1, false);
  const TwoLayerRunDigest clean8 = RunTwoLayerTableJoin(8, false);
  EXPECT_EQ(clean1.keys, clean8.keys);
  EXPECT_EQ(clean1.seconds, clean8.seconds);  // bit-identical modeled time
  EXPECT_EQ(normalized(clean1), normalized(clean8));
  EXPECT_EQ(clean1.stats.dedup_tests, 0);
  EXPECT_EQ(clean1.stats.dedup_dropped, 0);
  EXPECT_FALSE(clean1.keys.empty());

  const TwoLayerRunDigest fault1 = RunTwoLayerTableJoin(1, true);
  const TwoLayerRunDigest fault8 = RunTwoLayerTableJoin(8, true);
  // Same answer as the clean run on the degraded layout, still
  // deterministic, still no dedup branch.
  EXPECT_EQ(fault1.keys, clean1.keys);
  EXPECT_EQ(fault1.keys, fault8.keys);
  EXPECT_EQ(fault1.seconds, fault8.seconds);
  EXPECT_EQ(normalized(fault1), normalized(fault8));
  EXPECT_EQ(fault1.stats.dedup_tests, 0);
  EXPECT_EQ(fault1.stats.dedup_dropped, 0);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, ParallelEquivalenceTest,
                         ::testing::Values(2, 3, 4, 8));

// ---------- Redistribution & pull ----------

TEST(RedistributeTest, RoutesAndChargesNetwork) {
  Cluster cluster(4, SmallClusterOptions());
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  PerNode input(4);
  for (int64_t i = 0; i < 100; ++i) {
    input[static_cast<size_t>(i % 4)].push_back(Tuple({Value(i)}));
  }
  auto out = Redistribute(&coord, input,
                          [](const Tuple& t, std::vector<uint32_t>* dests) {
                            dests->push_back(
                                static_cast<uint32_t>(t.at(0).AsInt() % 2));
                          });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].size(), 50u);
  EXPECT_EQ((*out)[1].size(), 50u);
  EXPECT_TRUE((*out)[2].empty());
  EXPECT_TRUE((*out)[3].empty());
  // Network time was charged (most tuples moved across nodes).
  ASSERT_EQ(coord.phases().size(), 1u);
  EXPECT_GT(coord.phases()[0].seconds, 0.0);
}

TEST(PullTest, RemoteTileReadChargesBothEnds) {
  Cluster cluster(2, SmallClusterOptions());
  // Store a large array on node 1.
  Rng rng(5);
  std::vector<uint8_t> data(200 * 200 * 2);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  auto handle = array::StoreArray(data.data(), {200, 200}, 2,
                                  cluster.node(1).lob_store(),
                                  cluster.node(1).clock(), true, 8192,
                                  /*owner_node=*/1);
  ASSERT_TRUE(handle.ok());
  cluster.ResetForQuery();
  // Node 0 pulls the whole thing.
  PullTileSource pull(&cluster, 0);
  auto full = array::ReadFull(*handle, &pull);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, ByteBuffer(data.begin(), data.end()));
  EXPECT_GT(pull.tiles_pulled(), 0);
  sim::ResourceUsage consumer = cluster.node(0).clock()->EndPhase();
  sim::ResourceUsage owner = cluster.node(1).clock()->EndPhase();
  EXPECT_GT(consumer.net_bytes, 0);
  EXPECT_GT(owner.net_bytes, 0);
  EXPECT_GT(owner.disk_bytes_read, 0);   // owner did the disk work
  EXPECT_EQ(consumer.disk_bytes_read, 0);  // consumer read nothing locally
}

TEST(PullTest, LocalReadIsFree) {
  Cluster cluster(2, SmallClusterOptions());
  std::vector<uint8_t> data(100 * 100 * 2, 3);
  auto handle = array::StoreArray(data.data(), {100, 100}, 2,
                                  cluster.node(0).lob_store(),
                                  cluster.node(0).clock(), false, 8192, 0);
  ASSERT_TRUE(handle.ok());
  cluster.ResetForQuery();
  PullTileSource pull(&cluster, 0);
  auto full = array::ReadFull(*handle, &pull);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(pull.tiles_pulled(), 0);  // local fast path
  EXPECT_EQ(cluster.node(0).clock()->EndPhase().net_bytes, 0);
}

// ---------- Coordinator phase accounting ----------

TEST(CoordinatorTest, PhaseTimeIsMaxOverNodes) {
  Cluster cluster(4, SmallClusterOptions());
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  ASSERT_TRUE(coord.RunPhase("skewed", [&](int n) -> Status {
                     // Node 3 does 4x the work of the others.
                     double ops = (n == 3) ? 4e6 : 1e6;
                     cluster.node(n).clock()->ChargeCpu(ops);
                     return Status::OK();
                   })
                  .ok());
  const auto& phase = coord.phases()[0];
  double expected_max = 4e6 / cluster.cost_model().cpu_ops_per_second;
  EXPECT_NEAR(phase.seconds, expected_max, 1e-12);
  EXPECT_NEAR(phase.total_node_seconds,
              7e6 / cluster.cost_model().cpu_ops_per_second, 1e-12);
}

TEST(CoordinatorTest, SequentialAddsFully) {
  Cluster cluster(4, SmallClusterOptions());
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  ASSERT_TRUE(coord.RunSequential("seq", [&]() -> Status {
                     cluster.coordinator_clock()->ChargeCpu(9e6);
                     return Status::OK();
                   })
                  .ok());
  EXPECT_NEAR(coord.query_seconds(),
              9e6 / cluster.cost_model().cpu_ops_per_second, 1e-12);
}

// ---------- StoreResult (copy-on-insert) ----------

TEST(StoreResultTest, CopiesTuplesIntoNewTable) {
  Cluster cluster(3, SmallClusterOptions());
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  PerNode input(3);
  Rng rng(19);
  TupleVec rows = RandomPolyTuples(&rng, 30, 20, 2);
  for (size_t i = 0; i < rows.size(); ++i) input[i % 3].push_back(rows[i]);
  TableDef def = PolyTableDef("result", PartitioningKind::kRoundRobin, Box());
  auto stored = StoreResult(&coord, input, def);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ((*stored)->num_rows(), 30);
  std::multiset<int64_t> seen;
  for (int n = 0; n < 3; ++n) {
    auto frag = (*stored)->ScanFragment(&cluster, n, true);
    ASSERT_TRUE(frag.ok());
    for (const Tuple& t : *frag) seen.insert(t.at(0).AsInt());
  }
  EXPECT_EQ(seen, Ids(rows));
}

TEST(StoreResultTest, DeepCopiesRasterToDestination) {
  Cluster cluster(2, SmallClusterOptions());
  // A raster owned by node 1.
  std::vector<uint16_t> px(128 * 128, 1234);
  auto raster = array::MakeRaster(px, 128, 128, Box(0, 0, 1, 1),
                                  cluster.node(1).lob_store(),
                                  cluster.node(1).clock(), 8192, 1);
  ASSERT_TRUE(raster.ok());
  QueryCoordinator coord(&cluster);
  EXPECT_TRUE(coord.BeginQuery().ok());
  PerNode input(2);
  input[0].push_back(Tuple({Value(*raster)}));
  TableDef def;
  def.name = "r";
  def.schema = exec::Schema({{"data", ValueType::kRaster}});
  auto stored = StoreResult(&coord, input, def);
  ASSERT_TRUE(stored.ok());
  // The stored raster's handle must be owned by its destination node and
  // readable there.
  auto frag0 = (*stored)->ScanFragment(&cluster, 0, true);
  ASSERT_TRUE(frag0.ok());
  ASSERT_EQ(frag0->size(), 1u);
  const array::Raster& copy = *(*frag0)[0].at(0).AsRaster();
  EXPECT_EQ(copy.handle.owner_node, 0u);
  PullTileSource pull(&cluster, 0);
  auto bytes = array::ReadFull(copy.handle, &pull);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(pull.tiles_pulled(), 0);  // all tiles local after the copy
}

}  // namespace
}  // namespace paradise::core
