#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "index/b_plus_tree.h"
#include "index/r_star_tree.h"

namespace paradise::index {
namespace {

using geom::Box;
using geom::Circle;
using geom::Point;

// ---------- B+-tree ----------

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree<int64_t> tree;
  for (int64_t i = 0; i < 1000; ++i) tree.Insert(i * 2, static_cast<uint64_t>(i));
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Find(10).size(), 1u);
  EXPECT_EQ(tree.Find(10)[0], 5u);
  EXPECT_TRUE(tree.Find(11).empty());
  EXPECT_GT(tree.height(), 1u);
}

TEST(BPlusTreeTest, Duplicates) {
  BPlusTree<std::string> tree;
  for (uint64_t i = 0; i < 500; ++i) tree.Insert("dup", i);
  tree.Insert("other", 1);
  EXPECT_EQ(tree.Find("dup").size(), 500u);
  EXPECT_TRUE(tree.CheckInvariants());
  // All values present exactly once.
  std::set<uint64_t> vals;
  for (uint64_t v : tree.Find("dup")) vals.insert(v);
  EXPECT_EQ(vals.size(), 500u);
}

TEST(BPlusTreeTest, RangeScanOrdered) {
  BPlusTree<int64_t> tree;
  Rng rng(5);
  std::multimap<int64_t, uint64_t> reference;
  for (uint64_t i = 0; i < 3000; ++i) {
    int64_t key = rng.NextInt(0, 500);
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  // Compare full scans.
  std::vector<int64_t> tree_keys;
  tree.ScanAll([&](const int64_t& k, const uint64_t&) {
    tree_keys.push_back(k);
    return true;
  });
  ASSERT_EQ(tree_keys.size(), reference.size());
  EXPECT_TRUE(std::is_sorted(tree_keys.begin(), tree_keys.end()));
  // Range [100, 200].
  size_t expected = 0;
  for (auto& [k, v] : reference) {
    if (k >= 100 && k <= 200) ++expected;
  }
  size_t got = 0;
  tree.RangeScan(100, 200, [&](const int64_t& k, const uint64_t&) {
    EXPECT_GE(k, 100);
    EXPECT_LE(k, 200);
    ++got;
    return true;
  });
  EXPECT_EQ(got, expected);
}

TEST(BPlusTreeTest, EraseSpecificValues) {
  BPlusTree<int64_t> tree;
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(7, i);
  }
  EXPECT_TRUE(tree.Erase(7, 31));
  EXPECT_FALSE(tree.Erase(7, 31));  // already gone
  EXPECT_FALSE(tree.Erase(8, 0));   // never existed
  auto vals = tree.Find(7);
  EXPECT_EQ(vals.size(), 99u);
  EXPECT_EQ(std::count(vals.begin(), vals.end(), 31u), 0);
}

TEST(BPlusTreeTest, RandomInsertEraseMatchesMultimap) {
  BPlusTree<int64_t> tree;
  std::multimap<int64_t, uint64_t> reference;
  Rng rng(77);
  for (int step = 0; step < 8000; ++step) {
    if (reference.empty() || rng.NextBool(0.6)) {
      int64_t key = rng.NextInt(-200, 200);
      uint64_t val = rng.Next() % 100000;
      tree.Insert(key, val);
      reference.emplace(key, val);
    } else {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.NextUint(reference.size())));
      EXPECT_TRUE(tree.Erase(it->first, it->second));
      reference.erase(it);
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<std::pair<int64_t, uint64_t>> tree_all, ref_all;
  tree.ScanAll([&](const int64_t& k, const uint64_t& v) {
    tree_all.emplace_back(k, v);
    return true;
  });
  for (auto& [k, v] : reference) ref_all.emplace_back(k, v);
  std::sort(tree_all.begin(), tree_all.end());
  std::sort(ref_all.begin(), ref_all.end());
  EXPECT_EQ(tree_all, ref_all);
}

TEST(BPlusTreeTest, EarlyStopScan) {
  BPlusTree<int64_t> tree;
  for (int64_t i = 0; i < 100; ++i) tree.Insert(i, static_cast<uint64_t>(i));
  int count = 0;
  tree.ScanAll([&](const int64_t&, const uint64_t&) {
    return ++count < 10;
  });
  EXPECT_EQ(count, 10);
}

// ---------- R*-tree ----------

Box RandomBox(Rng* rng, double extent, double max_side) {
  double x = rng->NextDouble(-extent, extent);
  double y = rng->NextDouble(-extent, extent);
  return Box(x, y, x + rng->NextDouble(0.01, max_side),
             y + rng->NextDouble(0.01, max_side));
}

TEST(RStarTreeTest, InsertSearchSmall) {
  RStarTree tree;
  tree.Insert(Box(0, 0, 1, 1), 1);
  tree.Insert(Box(5, 5, 6, 6), 2);
  tree.Insert(Box(0.5, 0.5, 5.5, 5.5), 3);
  std::set<uint64_t> hits;
  tree.SearchOverlap(Box(0.9, 0.9, 1.1, 1.1), [&](const Box&, uint64_t id) {
    hits.insert(id);
    return true;
  });
  EXPECT_EQ(hits, (std::set<uint64_t>{1, 3}));
}

class RStarPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RStarPropertyTest, SearchMatchesLinearScan) {
  Rng rng(GetParam());
  RStarTree tree;
  std::vector<std::pair<Box, uint64_t>> all;
  int n = 500 + GetParam() * 700;
  for (int i = 0; i < n; ++i) {
    Box b = RandomBox(&rng, 100, 10);
    tree.Insert(b, static_cast<uint64_t>(i));
    all.emplace_back(b, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  EXPECT_TRUE(tree.CheckInvariants());
  for (int q = 0; q < 30; ++q) {
    Box query = RandomBox(&rng, 100, 40);
    std::set<uint64_t> expected;
    for (auto& [b, id] : all) {
      if (b.Intersects(query)) expected.insert(id);
    }
    std::set<uint64_t> got;
    tree.SearchOverlap(query, [&](const Box&, uint64_t id) {
      got.insert(id);
      return true;
    });
    EXPECT_EQ(got, expected);
  }
}

TEST_P(RStarPropertyTest, CircleSearchIsSuperset) {
  Rng rng(GetParam() * 13 + 1);
  RStarTree tree;
  std::vector<std::pair<Box, uint64_t>> all;
  for (int i = 0; i < 800; ++i) {
    Box b = RandomBox(&rng, 50, 5);
    tree.Insert(b, static_cast<uint64_t>(i));
    all.emplace_back(b, static_cast<uint64_t>(i));
  }
  for (int q = 0; q < 20; ++q) {
    Circle c(Point{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)},
             rng.NextDouble(1, 20));
    std::set<uint64_t> expected;
    for (auto& [b, id] : all) {
      if (b.DistanceTo(c.center) <= c.radius) expected.insert(id);
    }
    std::set<uint64_t> got;
    tree.SearchCircle(c, [&](const Box&, uint64_t id) {
      got.insert(id);
      return true;
    });
    EXPECT_EQ(got, expected);
  }
}

TEST_P(RStarPropertyTest, NearestMatchesBruteForce) {
  Rng rng(GetParam() * 101 + 7);
  RStarTree tree;
  std::vector<std::pair<Box, uint64_t>> all;
  for (int i = 0; i < 600; ++i) {
    Box b = RandomBox(&rng, 50, 3);
    tree.Insert(b, static_cast<uint64_t>(i));
    all.emplace_back(b, static_cast<uint64_t>(i));
  }
  for (int q = 0; q < 25; ++q) {
    Point p{rng.NextDouble(-60, 60), rng.NextDouble(-60, 60)};
    double best = std::numeric_limits<double>::infinity();
    for (auto& [b, id] : all) best = std::min(best, b.DistanceTo(p));
    RStarTree::NearestResult r = tree.Nearest(p);
    ASSERT_TRUE(r.found);
    EXPECT_NEAR(r.distance, best, 1e-9);
  }
}

TEST_P(RStarPropertyTest, EraseMaintainsInvariantsAndResults) {
  Rng rng(GetParam() * 997 + 3);
  RStarTree tree;
  std::vector<std::pair<Box, uint64_t>> alive;
  for (int i = 0; i < 800; ++i) {
    Box b = RandomBox(&rng, 30, 4);
    tree.Insert(b, static_cast<uint64_t>(i));
    alive.emplace_back(b, static_cast<uint64_t>(i));
  }
  // Delete a random half.
  for (int i = 0; i < 400; ++i) {
    size_t pick = rng.NextUint(alive.size());
    EXPECT_TRUE(tree.Erase(alive[pick].first, alive[pick].second));
    alive.erase(alive.begin() + static_cast<long>(pick));
  }
  EXPECT_EQ(tree.size(), alive.size());
  EXPECT_TRUE(tree.CheckInvariants());
  Box query(-10, -10, 10, 10);
  std::set<uint64_t> expected;
  for (auto& [b, id] : alive) {
    if (b.Intersects(query)) expected.insert(id);
  }
  std::set<uint64_t> got;
  tree.SearchOverlap(query, [&](const Box&, uint64_t id) {
    got.insert(id);
    return true;
  });
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RStarPropertyTest, ::testing::Values(1, 2, 3));

TEST(RStarTreeTest, EraseMissingReturnsFalse) {
  RStarTree tree;
  tree.Insert(Box(0, 0, 1, 1), 1);
  EXPECT_FALSE(tree.Erase(Box(0, 0, 1, 1), 2));
  EXPECT_FALSE(tree.Erase(Box(5, 5, 6, 6), 1));
  EXPECT_TRUE(tree.Erase(Box(0, 0, 1, 1), 1));
  EXPECT_EQ(tree.size(), 0u);
}

TEST(RStarTreeTest, BulkLoadMatchesDynamic) {
  Rng rng(31);
  std::vector<std::pair<Box, uint64_t>> entries;
  RStarTree dynamic;
  for (int i = 0; i < 5000; ++i) {
    Box b = RandomBox(&rng, 200, 8);
    entries.emplace_back(b, static_cast<uint64_t>(i));
    dynamic.Insert(b, static_cast<uint64_t>(i));
  }
  std::unique_ptr<RStarTree> packed = RStarTree::BulkLoadStr(entries);
  EXPECT_EQ(packed->size(), 5000u);
  EXPECT_TRUE(packed->CheckInvariants());
  // Packed trees should not be taller than dynamically built ones.
  EXPECT_LE(packed->height(), dynamic.height());
  for (int q = 0; q < 20; ++q) {
    Box query = RandomBox(&rng, 200, 50);
    std::set<uint64_t> a, b;
    packed->SearchOverlap(query, [&](const Box&, uint64_t id) {
      a.insert(id);
      return true;
    });
    dynamic.SearchOverlap(query, [&](const Box&, uint64_t id) {
      b.insert(id);
      return true;
    });
    EXPECT_EQ(a, b);
  }
  // A packed probe should touch no more nodes than a dynamic one, on
  // average over queries.
  int64_t packed_nodes = 0, dynamic_nodes = 0;
  for (int q = 0; q < 50; ++q) {
    Box query = RandomBox(&rng, 200, 10);
    packed->SearchOverlap(query, [](const Box&, uint64_t) { return true; },
                          &packed_nodes);
    dynamic.SearchOverlap(query, [](const Box&, uint64_t) { return true; },
                          &dynamic_nodes);
  }
  EXPECT_LE(packed_nodes, dynamic_nodes * 2);
}

TEST(RStarTreeTest, BulkLoadEmptyAndTiny) {
  std::unique_ptr<RStarTree> empty = RStarTree::BulkLoadStr({});
  EXPECT_EQ(empty->size(), 0u);
  std::unique_ptr<RStarTree> one =
      RStarTree::BulkLoadStr({{Box(0, 0, 1, 1), 9}});
  EXPECT_EQ(one->size(), 1u);
  int found = 0;
  one->SearchOverlap(Box(0, 0, 2, 2), [&](const Box&, uint64_t id) {
    EXPECT_EQ(id, 9u);
    ++found;
    return true;
  });
  EXPECT_EQ(found, 1);
}

TEST(RStarTreeTest, EarlyTermination) {
  RStarTree tree;
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Box(0, 0, 1, 1), static_cast<uint64_t>(i));
  }
  int visits = 0;
  tree.SearchOverlap(Box(0, 0, 1, 1), [&](const Box&, uint64_t) {
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

}  // namespace
}  // namespace paradise::index
