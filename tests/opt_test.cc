// The adaptive optimizer: partition-tuner load bounds on adversarial
// clustered inputs, result equivalence of the tuned cell map, the
// cost-feedback join advisor (cold-start fallback and learning), the
// adaptive parallel join's determinism contract, and the coordinator's
// PbsmJoinStats aggregation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cluster.h"
#include "core/coordinator.h"
#include "core/parallel_ops.h"
#include "datagen/datagen.h"
#include "exec/spatial_join.h"
#include "geom/box.h"
#include "opt/join_advisor.h"
#include "opt/partition_tuner.h"
#include "opt/stats.h"

namespace paradise {
namespace {

using core::AdaptiveJoinReport;
using core::Cluster;
using core::ParallelSpatialJoin;
using core::ParallelSpatialJoinOptions;
using core::PerNode;
using core::QueryCoordinator;
using exec::ExecContext;
using exec::PbsmJoinStats;
using exec::PbsmOptions;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using geom::Box;
using opt::HistogramStats;
using opt::JoinAdvisor;
using opt::JoinDecision;
using opt::JoinFeatures;
using opt::JoinMethod;
using opt::JoinObservation;
using opt::PartitionTunerOptions;
using opt::TunedPartitioning;
using opt::TunePartitions;

#define ASSERT_OK(expr)                    \
  do {                                     \
    Status _s = (expr);                    \
    ASSERT_TRUE(_s.ok()) << _s.ToString(); \
  } while (0)

Cluster::Options SmallClusterOptions() {
  Cluster::Options o;
  o.buffer_pool_frames = 512;
  return o;
}

/// Urban point clusters and coastline-road corridor boxes — the clustered
/// workload the tuner exists for. Corridors are road MBRs so the exact
/// box-contains-point predicate has real hits.
struct ClusteredJoinInput {
  TupleVec points;     // PlacesSchema; shape at col kPlaceLocation
  TupleVec corridors;  // (id, type, box); shape at col 2
  Box universe = Box::Empty();
};

ClusteredJoinInput MakeClusteredInput(uint64_t seed, int64_t count) {
  datagen::ClusteredDataOptions copt;
  copt.seed = seed;
  copt.count = count;
  copt.num_clusters = 4;
  copt.skew = 0.95;
  ClusteredJoinInput in;
  in.points = datagen::GenerateUrbanPoints(copt);
  for (const Tuple& t : datagen::GenerateCoastlineRoads(copt)) {
    in.corridors.push_back(
        Tuple({t.at(datagen::col::kLineId), t.at(datagen::col::kLineType),
               Value(t.at(datagen::col::kLineShape).Mbr())}));
  }
  for (const Tuple& t : in.points) {
    in.universe =
        in.universe.Union(t.at(datagen::col::kPlaceLocation).Mbr());
  }
  for (const Tuple& t : in.corridors) {
    in.universe = in.universe.Union(t.at(2).Mbr());
  }
  return in;
}

HistogramStats HistogramOf(const std::string& name, const TupleVec& rows,
                           size_t col, const Box& universe, uint64_t seed) {
  opt::SpatialSampler sampler(seed, /*salt=*/0, /*capacity=*/4096);
  for (size_t i = 0; i < rows.size(); ++i) {
    sampler.Add(i, rows[i].at(col).Mbr());
  }
  opt::BuildHistogramOptions hopt;
  hopt.tiles_per_axis = 128;
  return opt::BuildHistogram(name, universe, sampler.Samples(),
                             static_cast<int64_t>(rows.size()), hopt);
}

// ---------- Partition tuner ----------

TEST(PartitionTunerTest, BoundsPredictedLoadOnAdversarialClusters) {
  for (uint64_t seed : {7u, 29u, 101u}) {
    ClusteredJoinInput in = MakeClusteredInput(seed, 8000);
    HistogramStats lhist = HistogramOf("points", in.points,
                                       datagen::col::kPlaceLocation,
                                       in.universe, seed);
    HistogramStats rhist =
        HistogramOf("corridors", in.corridors, 2, in.universe, seed + 1);
    PartitionTunerOptions topt;
    topt.num_partitions = 64;
    topt.skew_target = 1.25;
    TunedPartitioning tuned = TunePartitions(lhist, &rhist, topt);

    ASSERT_TRUE(tuned.grid.Valid(64)) << "seed " << seed;
    EXPECT_LE(tuned.predicted_skew, topt.skew_target) << "seed " << seed;
    // Edges strictly increase (no degenerate sliver cells) and every cell
    // maps to a real partition.
    for (size_t i = 0; i + 1 < tuned.grid.x_edges.size(); ++i) {
      EXPECT_LT(tuned.grid.x_edges[i], tuned.grid.x_edges[i + 1]);
    }
    for (size_t i = 0; i + 1 < tuned.grid.y_edges.size(); ++i) {
      EXPECT_LT(tuned.grid.y_edges[i], tuned.grid.y_edges[i + 1]);
    }
    EXPECT_EQ(tuned.grid.cell_part.size(),
              tuned.grid.cells_x() * tuned.grid.cells_y());
    for (uint32_t p : tuned.grid.cell_part) EXPECT_LT(p, 64u);
  }
}

TEST(PartitionTunerTest, PathologicalSingleHotBinMergesInsteadOfSlivers) {
  // Every sample at one point: all quantiles coincide; the tuner must
  // merge them into fewer, wider cells, never emit zero-width ones.
  std::vector<Box> samples(500, Box(10, 10, 10.001, 10.001));
  HistogramStats h =
      opt::BuildHistogram("hot", Box(0, 0, 100, 100), samples, 500);
  PartitionTunerOptions topt;
  topt.num_partitions = 16;
  TunedPartitioning tuned = TunePartitions(h, nullptr, topt);
  ASSERT_TRUE(tuned.grid.Valid(16));
  for (size_t i = 0; i + 1 < tuned.grid.x_edges.size(); ++i) {
    EXPECT_LT(tuned.grid.x_edges[i], tuned.grid.x_edges[i + 1]);
  }
  for (size_t i = 0; i + 1 < tuned.grid.y_edges.size(); ++i) {
    EXPECT_LT(tuned.grid.y_edges[i], tuned.grid.y_edges[i + 1]);
  }
}

TEST(PartitionTunerTest, EmptyStatsYieldInvalidGrid) {
  HistogramStats empty;
  TunedPartitioning tuned = TunePartitions(empty, nullptr, {});
  EXPECT_FALSE(tuned.grid.Valid(32));
}

// ---------- Adaptive cell map in the executor ----------

std::vector<std::string> RenderJoin(const TupleVec& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      s += t.at(i).ToString();
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AdaptiveCellMapTest, MatchesBlockHashResultsAndCutsPartitionSkew) {
  ClusteredJoinInput in = MakeClusteredInput(29, 6000);
  HistogramStats lhist = HistogramOf("points", in.points,
                                     datagen::col::kPlaceLocation,
                                     in.universe, 29);
  HistogramStats rhist =
      HistogramOf("corridors", in.corridors, 2, in.universe, 31);
  PartitionTunerOptions topt;
  topt.num_partitions = 64;
  topt.skew_target = 1.25;
  TunedPartitioning tuned = TunePartitions(lhist, &rhist, topt);
  ASSERT_TRUE(tuned.grid.Valid(64));

  auto run = [&](PbsmOptions::CellMap map, PbsmJoinStats* stats) {
    PbsmOptions popts;
    popts.num_partitions = 64;
    popts.cells_per_axis = 32;
    popts.cell_map = map;
    if (map == PbsmOptions::CellMap::kAdaptive) popts.adaptive = &tuned.grid;
    ExecContext ctx;
    ctx.pbsm_stats = stats;
    auto r = exec::PbsmSpatialJoin(in.points, datagen::col::kPlaceLocation,
                                   in.corridors, 2, ctx, popts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return RenderJoin(*r);
  };

  PbsmJoinStats block_stats, adaptive_stats;
  std::vector<std::string> block =
      run(PbsmOptions::CellMap::kBlockHash, &block_stats);
  std::vector<std::string> adaptive =
      run(PbsmOptions::CellMap::kAdaptive, &adaptive_stats);

  EXPECT_FALSE(block.empty());
  EXPECT_EQ(adaptive, block) << "the cell map must never change the result";

  double block_skew = static_cast<double>(block_stats.max_partition_items) /
                      block_stats.mean_partition_items;
  double adaptive_skew =
      static_cast<double>(adaptive_stats.max_partition_items) /
      adaptive_stats.mean_partition_items;
  EXPECT_LT(adaptive_skew, block_skew)
      << "tuned cells should balance the clustered load";
}

// ---------- Join advisor ----------

JoinFeatures SomeFeatures() {
  JoinFeatures f;
  f.left_rows = 10'000;
  f.right_rows = 12'000;
  f.left_skew = 4.0;
  f.right_skew = 2.5;
  return f;
}

TEST(JoinAdvisorTest, ColdStartFallsBackToFixedHeuristic) {
  JoinAdvisor advisor;
  JoinDecision d = advisor.Choose(SomeFeatures());
  EXPECT_EQ(d.method, JoinMethod::kPbsm);
  EXPECT_EQ(d.cells_per_axis, 0u) << "cold start uses the executor's auto rule";
  EXPECT_FALSE(d.from_feedback);
  EXPECT_EQ(d.predicted_seconds, 0.0);
}

TEST(JoinAdvisorTest, LearnsTheCheaperMethodFromFeedback) {
  opt::JoinAdvisorOptions aopt;
  aopt.k = 1;  // single nearest neighbour: predictions are exact echoes
  JoinAdvisor advisor(aopt);
  JoinFeatures f = SomeFeatures();
  JoinObservation pbsm;
  pbsm.features = f;
  pbsm.method = JoinMethod::kPbsm;
  pbsm.cells_per_axis = 32;
  pbsm.modeled_seconds = 2.0;
  JoinObservation inl;
  inl.features = f;
  inl.method = JoinMethod::kIndexNestedLoops;
  inl.modeled_seconds = 0.5;
  advisor.Record(pbsm);
  advisor.Record(inl);

  JoinDecision d = advisor.Choose(f);
  EXPECT_TRUE(d.from_feedback);
  EXPECT_EQ(d.method, JoinMethod::kIndexNestedLoops);
  EXPECT_NEAR(d.predicted_seconds, 0.5, 1e-9);

  // A cheaper PBSM observation at nearby features flips the choice for
  // queries nearest to it and carries its resolution along. (Same-feature
  // ties break to the older observation, so nudge the features.)
  JoinFeatures g = f;
  g.left_rows *= 1.2;
  JoinObservation fast_pbsm = pbsm;
  fast_pbsm.features = g;
  fast_pbsm.cells_per_axis = 64;
  fast_pbsm.modeled_seconds = 0.1;
  advisor.Record(fast_pbsm);
  d = advisor.Choose(g);
  EXPECT_TRUE(d.from_feedback);
  EXPECT_EQ(d.method, JoinMethod::kPbsm);
  EXPECT_EQ(d.cells_per_axis, 64u);
  EXPECT_NEAR(d.predicted_seconds, 0.1, 1e-9);
}

TEST(JoinAdvisorTest, FarAwayObservationsDoNotCount) {
  JoinAdvisor advisor;
  JoinObservation pbsm;
  pbsm.features = SomeFeatures();
  pbsm.method = JoinMethod::kPbsm;
  pbsm.modeled_seconds = 2.0;
  JoinObservation inl = pbsm;
  inl.method = JoinMethod::kIndexNestedLoops;
  inl.modeled_seconds = 0.5;
  advisor.Record(pbsm);
  advisor.Record(inl);

  JoinFeatures far;
  far.left_rows = 10.0;  // orders of magnitude off in log-feature space
  far.right_rows = 20.0;
  far.left_skew = 1.0;
  far.right_skew = 1.0;
  JoinDecision d = advisor.Choose(far);
  EXPECT_FALSE(d.from_feedback);
  EXPECT_EQ(d.method, JoinMethod::kPbsm);
}

TEST(JoinAdvisorTest, StoreIsBoundedByCapacity) {
  opt::JoinAdvisorOptions aopt;
  aopt.capacity = 4;
  JoinAdvisor advisor(aopt);
  for (int i = 0; i < 10; ++i) {
    JoinObservation obs;
    obs.features = SomeFeatures();
    obs.modeled_seconds = 1.0 + i;
    advisor.Record(obs);
  }
  EXPECT_EQ(advisor.observations(), 4u);
}

// ---------- Adaptive ParallelSpatialJoin ----------

/// One full adaptive run: forced PBSM and forced index-NL seed the
/// feedback store, then the advisor chooses. Everything observable is
/// captured for bit-identity comparison across thread counts.
struct AdaptiveRun {
  std::vector<std::string> rows;         // advisor-chosen run's result
  std::vector<double> phase_seconds;     // all three queries, in order
  std::vector<double> recorded_seconds;  // advisor store after the runs
  PbsmJoinStats last_stats;
  AdaptiveJoinReport report;             // of the advisor-chosen run
};

AdaptiveRun RunAdaptive(int num_threads) {
  constexpr int kNodes = 4;
  ClusteredJoinInput in = MakeClusteredInput(29, 3000);
  AdaptiveRun out;

  Cluster cluster(kNodes, SmallClusterOptions());
  cluster.SetNumThreads(num_threads);
  cluster.catalog()->PutTableStats(HistogramOf(
      "points", in.points, datagen::col::kPlaceLocation, in.universe, 29));
  cluster.catalog()->PutTableStats(
      HistogramOf("corridors", in.corridors, 2, in.universe, 31));

  PerNode lper(kNodes), rper(kNodes);
  for (size_t i = 0; i < in.points.size(); ++i) {
    lper[i % kNodes].push_back(in.points[i]);
  }
  for (size_t i = 0; i < in.corridors.size(); ++i) {
    rper[i % kNodes].push_back(in.corridors[i]);
  }

  JoinDecision force_pbsm;
  force_pbsm.method = JoinMethod::kPbsm;
  JoinDecision force_inl;
  force_inl.method = JoinMethod::kIndexNestedLoops;
  const JoinDecision* forces[] = {&force_pbsm, &force_inl, nullptr};
  for (const JoinDecision* force : forces) {
    QueryCoordinator coord(&cluster);
    EXPECT_TRUE(coord.BeginQuery().ok());
    ParallelSpatialJoinOptions opts;
    opts.adaptive = true;
    opts.left_stats_table = "points";
    opts.right_stats_table = "corridors";
    opts.pbsm.num_partitions = 64;
    opts.override_decision = force;
    AdaptiveJoinReport rep;
    opts.report = &rep;
    auto r = ParallelSpatialJoin(&coord, lper, datagen::col::kPlaceLocation,
                                 rper, 2, in.universe, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    out.phase_seconds.push_back(coord.query_seconds());
    if (force == nullptr) {
      TupleVec flat;
      for (TupleVec& v : *r) {
        for (Tuple& t : v) flat.push_back(std::move(t));
      }
      out.rows = RenderJoin(flat);
      out.last_stats = coord.pbsm_stats();
      out.report = rep;
    }
  }
  for (const JoinObservation& obs : cluster.join_advisor()->store()) {
    out.recorded_seconds.push_back(obs.modeled_seconds);
  }
  return out;
}

TEST(AdaptiveParallelJoinTest, BitIdenticalAcrossThreadCounts) {
  AdaptiveRun one = RunAdaptive(1);
  AdaptiveRun eight = RunAdaptive(8);

  EXPECT_FALSE(one.rows.empty());
  EXPECT_EQ(one.rows, eight.rows);
  EXPECT_EQ(one.phase_seconds, eight.phase_seconds);
  EXPECT_EQ(one.recorded_seconds, eight.recorded_seconds);
  // parallel_tasks counts pool submissions, which legitimately change
  // with the thread count (0 when partitions run inline); every other
  // field is part of the determinism contract.
  PbsmJoinStats a = one.last_stats, b = eight.last_stats;
  a.parallel_tasks = 0;
  b.parallel_tasks = 0;
  EXPECT_EQ(a, b);
  EXPECT_EQ(one.report.decision.method, eight.report.decision.method);
  EXPECT_EQ(one.report.decision.predicted_seconds,
            eight.report.decision.predicted_seconds);
  EXPECT_EQ(one.report.observed_seconds, eight.report.observed_seconds);
}

TEST(AdaptiveParallelJoinTest, AdvisorPicksTheObservedCheaperMethod) {
  AdaptiveRun run = RunAdaptive(1);
  ASSERT_EQ(run.recorded_seconds.size(), 3u);
  // Seeds: PBSM then index-NL; the advisor's pick must match whichever
  // observed method was cheaper and predict its cost exactly (same
  // features, k=1 effective).
  const double pbsm_s = run.recorded_seconds[0];
  const double inl_s = run.recorded_seconds[1];
  EXPECT_TRUE(run.report.decision.from_feedback);
  EXPECT_EQ(run.report.decision.method,
            pbsm_s <= inl_s ? JoinMethod::kPbsm
                            : JoinMethod::kIndexNestedLoops);
  EXPECT_NEAR(run.report.decision.predicted_seconds,
              std::min(pbsm_s, inl_s), 1e-12);
  EXPECT_EQ(run.report.observed_seconds, run.recorded_seconds[2]);
  EXPECT_TRUE(run.report.used_tuned_grid ||
              run.report.decision.method == JoinMethod::kIndexNestedLoops);
}

TEST(AdaptiveParallelJoinTest, MatchesNonAdaptiveResults) {
  constexpr int kNodes = 3;
  ClusteredJoinInput in = MakeClusteredInput(11, 2000);
  auto run = [&](bool adaptive) {
    Cluster cluster(kNodes, SmallClusterOptions());
    cluster.SetNumThreads(1);
    if (adaptive) {
      cluster.catalog()->PutTableStats(
          HistogramOf("points", in.points, datagen::col::kPlaceLocation,
                      in.universe, 11));
      cluster.catalog()->PutTableStats(
          HistogramOf("corridors", in.corridors, 2, in.universe, 12));
    }
    PerNode lper(kNodes), rper(kNodes);
    for (size_t i = 0; i < in.points.size(); ++i) {
      lper[i % kNodes].push_back(in.points[i]);
    }
    for (size_t i = 0; i < in.corridors.size(); ++i) {
      rper[i % kNodes].push_back(in.corridors[i]);
    }
    QueryCoordinator coord(&cluster);
    EXPECT_TRUE(coord.BeginQuery().ok());
    ParallelSpatialJoinOptions opts;
    opts.adaptive = adaptive;
    if (adaptive) {
      opts.left_stats_table = "points";
      opts.right_stats_table = "corridors";
    }
    auto r = ParallelSpatialJoin(&coord, lper, datagen::col::kPlaceLocation,
                                 rper, 2, in.universe, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    TupleVec flat;
    for (TupleVec& v : *r) {
      for (Tuple& t : v) flat.push_back(std::move(t));
    }
    return RenderJoin(flat);
  };
  std::vector<std::string> fixed = run(false);
  std::vector<std::string> adaptive = run(true);
  EXPECT_FALSE(fixed.empty());
  EXPECT_EQ(adaptive, fixed)
      << "adaptive mode may change the plan, never the answer";
}

// ---------- PbsmJoinStats population regressions ----------

TEST(PbsmStatsRegressionTest, EmptyInputClearsAReusedSink) {
  ClusteredJoinInput in = MakeClusteredInput(3, 500);
  ExecContext ctx;
  PbsmJoinStats stats;
  ctx.pbsm_stats = &stats;
  auto r1 = exec::PbsmSpatialJoin(in.points, datagen::col::kPlaceLocation,
                                  in.corridors, 2, ctx, {});
  ASSERT_TRUE(r1.ok());
  ASSERT_GT(stats.left_items, 0);
  ASSERT_GT(stats.mean_partition_items, 0.0);

  // The next query's empty input must not leak the previous join's
  // partition/replication/sweep counters into its report.
  auto r2 = exec::PbsmSpatialJoin(TupleVec{}, 0, in.corridors, 2, ctx, {});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->empty());
  EXPECT_EQ(stats, PbsmJoinStats{});
}

TEST(PbsmStatsRegressionTest, SinglePartitionJoinPopulatesLoadStats) {
  ClusteredJoinInput in = MakeClusteredInput(3, 500);
  ExecContext ctx;
  PbsmJoinStats stats;
  ctx.pbsm_stats = &stats;
  exec::PbsmOptions popts;
  popts.num_partitions = 1;
  popts.cells_per_axis = 1;
  auto r = exec::PbsmSpatialJoin(in.points, datagen::col::kPlaceLocation,
                                 in.corridors, 2, ctx, popts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.partitions, 1u);
  EXPECT_EQ(stats.nonempty_partitions, 1);
  EXPECT_EQ(stats.left_items, static_cast<int64_t>(in.points.size()));
  EXPECT_EQ(stats.right_items, static_cast<int64_t>(in.corridors.size()));
  EXPECT_EQ(stats.max_partition_items, stats.left_items + stats.right_items);
  EXPECT_DOUBLE_EQ(stats.mean_partition_items,
                   static_cast<double>(stats.max_partition_items));
}

// ---------- Coordinator PbsmJoinStats aggregation ----------

TEST(PbsmStatsAggregationTest, CoordinatorAggregatesAllNodeSinks) {
  constexpr int kNodes = 3;
  ClusteredJoinInput in = MakeClusteredInput(5, 2000);
  Cluster cluster(kNodes, SmallClusterOptions());
  cluster.SetNumThreads(1);
  PerNode lper(kNodes), rper(kNodes);
  for (size_t i = 0; i < in.points.size(); ++i) {
    lper[i % kNodes].push_back(in.points[i]);
  }
  for (size_t i = 0; i < in.corridors.size(); ++i) {
    rper[i % kNodes].push_back(in.corridors[i]);
  }
  QueryCoordinator coord(&cluster);
  ASSERT_OK(coord.BeginQuery());
  ParallelSpatialJoinOptions opts;
  auto r = ParallelSpatialJoin(&coord, lper, datagen::col::kPlaceLocation,
                               rper, 2, in.universe, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Regression for the aggregation defect: the report must fold every
  // node's sink — sums over nodes for cardinalities, max for the
  // partition peak, and the mean recomputed over non-empty partitions
  // (not copied from one node, not divided by total P).
  PbsmJoinStats agg = coord.pbsm_stats();
  int64_t left_items = 0, right_items = 0, nonempty = 0, max_items = 0;
  int nodes_with_work = 0;
  for (int n = 0; n < kNodes; ++n) {
    const PbsmJoinStats& s = *coord.node_pbsm_stats(n);
    if (s.partitions > 0) ++nodes_with_work;
    left_items += s.left_items;
    right_items += s.right_items;
    nonempty += s.nonempty_partitions;
    max_items = std::max(max_items, s.max_partition_items);
  }
  EXPECT_GT(nodes_with_work, 1) << "join should have run on several nodes";
  EXPECT_EQ(agg.left_items, left_items);
  EXPECT_EQ(agg.right_items, right_items);
  EXPECT_EQ(agg.nonempty_partitions, nonempty);
  EXPECT_EQ(agg.max_partition_items, max_items);
  ASSERT_GT(nonempty, 0);
  EXPECT_DOUBLE_EQ(agg.mean_partition_items,
                   static_cast<double>(left_items + right_items) /
                       static_cast<double>(nonempty));
}

}  // namespace
}  // namespace paradise
