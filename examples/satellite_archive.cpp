// Satellite archive: the EOSDIS-style workload from the paper's
// introduction. Loads a year of synthetic global composites into the
// cluster, then (1) clips every image by a study region — reading only
// the tiles the region overlaps, pulling across the network when the
// image lives elsewhere — and (2) screens images by a computed property
// (mean brightness over the region), the paper's Query-10 pattern.

#include <cstdio>

#include "benchmark/database.h"
#include "core/parallel_ops.h"
#include "datagen/datagen.h"

using namespace paradise;

int main() {
  core::Cluster cluster(4);

  // A year of composites: 36 dates x 4 channels, 256x256 16-bit images,
  // tiled and LZW-compressed on their owning nodes.
  datagen::DataSetOptions gen;
  gen.num_dates = 36;
  gen.base_raster_size = 256;
  gen.size_fraction = 1.0 / 2048;  // vector tables stay tiny
  datagen::GlobalDataSet ds = datagen::GenerateGlobalDataSet(gen);

  auto db = benchmark::BenchmarkDatabase::Load(&cluster, ds);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  int64_t raw = ds.RasterBytes();
  std::printf("archive loaded: %zu images, %.1f MB of pixels\n",
              ds.rasters.size(), static_cast<double>(raw) / 1e6);

  // Compression report: how LZW did, per-tile flags included.
  int64_t stored = 0, raw_tile_bytes = 0, tiles = 0, compressed_tiles = 0;
  {
    auto frag0 = (*db)->raster().ScanFragment(&cluster, 0, true);
    if (frag0.ok()) {
      for (const exec::Tuple& t : *frag0) {
        for (const array::TileRef& ref :
             t.at(datagen::col::kRasterData).AsRaster()->handle.tiles) {
          ++tiles;
          stored += ref.lob.length;
          raw_tile_bytes += ref.raw_bytes;
          if (ref.compressed) ++compressed_tiles;
        }
      }
    }
  }
  std::printf(
      "node 0 holds %lld tiles (%lld LZW-compressed); stored/raw ratio "
      "%.2f\n\n",
      static_cast<long long>(tiles), static_cast<long long>(compressed_tiles),
      raw_tile_bytes ? static_cast<double>(stored) /
                           static_cast<double>(raw_tile_bytes)
                     : 0.0);

  // ---- clip every channel-5 image by the study region ----
  core::QueryCoordinator coord(&cluster);
  if (!coord.BeginQuery().ok()) return 1;
  exec::PolygonPtr region = (*db)->constants().clip_polygon;
  exec::ExprPtr channel5 =
      exec::Cmp(exec::CompareOp::kEq, exec::Col(datagen::col::kRasterChannel),
                exec::Lit(exec::Value(int64_t{5})));
  std::vector<exec::ExprPtr> proj = {
      exec::Col(datagen::col::kRasterDate),
      exec::RasterClip(exec::Col(datagen::col::kRasterData), region)};
  auto clipped = core::ParallelScan(&coord, (*db)->raster(), channel5, proj);
  if (!clipped.ok()) return 1;
  auto rows = core::Gather(&coord, *clipped);
  if (!rows.ok()) return 1;
  std::printf("clipped %zu channel-5 images by the study region "
              "(modeled %.3f s on 4 nodes)\n",
              rows->size(), coord.query_seconds());
  const array::Raster& sample = *(*rows)[0].at(1).AsRaster();
  std::printf("  each clip is %ux%u px vs the full %ux%u image\n",
              sample.height(), sample.width(), ds.rasters[0].height,
              ds.rasters[0].width);

  // ---- content-based screening: bright scenes over the region ----
  if (!coord.BeginQuery().ok()) return 1;
  exec::ExprPtr bright = exec::Cmp(
      exec::CompareOp::kGt,
      exec::RasterAverageOf(
          exec::RasterClip(exec::Col(datagen::col::kRasterData), region)),
      exec::Lit(exec::Value(1300.0)));
  auto screened =
      core::ParallelScan(&coord, (*db)->raster(),
                         exec::And(channel5, bright),
                         {exec::Col(datagen::col::kRasterDate)});
  if (!screened.ok()) return 1;
  auto hits = core::Gather(&coord, *screened);
  if (!hits.ok()) return 1;
  std::printf(
      "\n%zu of %zu scenes exceed the 1300 mean-brightness threshold over the region "
      "(modeled %.3f s)\n",
      hits->size(), rows->size(), coord.query_seconds());
  for (size_t i = 0; i < hits->size() && i < 4; ++i) {
    std::printf("  %s\n", (*hits)[i].at(0).AsDate().ToString().c_str());
  }
  return 0;
}
