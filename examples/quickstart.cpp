// Quickstart: stand up a simulated Paradise cluster, decluster a spatial
// table across it, and run an indexed spatial selection plus a parallel
// aggregate — the minimal end-to-end tour of the public API.

#include <cstdio>

#include "core/cluster.h"
#include "core/coordinator.h"
#include "core/parallel_ops.h"
#include "core/table.h"
#include "sql/engine.h"

using namespace paradise;  // example code; real clients should qualify

int main() {
  // A 4-node shared-nothing cluster (each node: disks, buffer pool,
  // virtual clock). On this machine the cluster is simulated; modeled
  // time comes from a 1997-calibrated cost model.
  core::Cluster cluster(4);

  // ---- define a table: city parks with polygon shapes ----
  catalog::TableDef def;
  def.name = "parks";
  def.schema = exec::Schema({{"id", exec::ValueType::kInt},
                             {"name", exec::ValueType::kString},
                             {"shape", exec::ValueType::kPolygon}});
  def.partitioning = catalog::PartitioningKind::kSpatial;
  def.partition_column = 2;
  def.universe = geom::Box(0, 0, 100, 100);
  def.indexes = {catalog::IndexDef{"parks_shape", 2, /*spatial=*/true}};

  // ---- make some data: a grid of square parks ----
  std::vector<exec::Tuple> rows;
  int64_t id = 0;
  for (double x = 2; x < 100; x += 7) {
    for (double y = 2; y < 100; y += 7) {
      geom::Polygon square({{x, y}, {x + 3, y}, {x + 3, y + 3}, {x, y + 3}});
      rows.push_back(exec::Tuple({exec::Value(id),
                                  exec::Value("park-" + std::to_string(id)),
                                  exec::Value(std::move(square))}));
      ++id;
    }
  }

  // ---- load: tuples are spatially declustered over a grid of tiles;
  // parks spanning tiles on several nodes are replicated ----
  auto table = core::ParallelTable::Load(&cluster, def, rows);
  if (!table.ok()) {
    std::fprintf(stderr, "load failed: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld parks (%lld stored copies after replication)\n",
              static_cast<long long>((*table)->num_rows()),
              static_cast<long long>((*table)->num_stored()));

  // ---- query 1: which parks overlap this neighborhood? ----
  core::QueryCoordinator coord(&cluster);
  if (!coord.BeginQuery().ok()) return 1;
  geom::Polygon neighborhood({{40, 40}, {60, 40}, {60, 60}, {40, 60}});
  exec::ExprPtr exact =
      exec::Overlaps(exec::Col(2), exec::Lit(exec::Value(neighborhood)));
  auto selected = core::ParallelSpatialIndexSelect(&coord, **table,
                                                   neighborhood.Mbr(), exact);
  if (!selected.ok()) return 1;
  auto gathered = core::Gather(&coord, *selected);
  if (!gathered.ok()) return 1;
  std::printf("\nparks overlapping the neighborhood (%zu):\n",
              gathered->size());
  for (size_t i = 0; i < gathered->size() && i < 5; ++i) {
    std::printf("  %s\n", (*gathered)[i].at(1).AsString().c_str());
  }
  if (gathered->size() > 5) std::printf("  ...\n");
  std::printf("modeled query time: %.4f s (parallel index probes on %d nodes)\n",
              coord.query_seconds(), cluster.num_nodes());

  // ---- query 2: total park area, two-phase parallel aggregation ----
  if (!coord.BeginQuery().ok()) return 1;
  auto scanned = core::ParallelScan(&coord, **table, nullptr, {});
  if (!scanned.ok()) return 1;
  std::vector<exec::AggregatePtr> aggs = {exec::MakeCount(),
                                          exec::MakeSum(exec::AreaOf(exec::Col(2)))};
  auto totals = core::ParallelAggregate(&coord, *scanned, {}, aggs);
  if (!totals.ok()) return 1;
  std::printf(
      "\ntotal: %lld parks covering %.1f area units (modeled %.4f s)\n",
      static_cast<long long>((*totals)[0].at(0).AsInt()),
      (*totals)[0].at(1).AsDouble(), coord.query_seconds());

  // ---- the same, through the extended-SQL front end ----
  sql::SqlEngine engine;
  engine.Register(table->get());
  const char* statement =
      "SELECT name, area(shape) FROM parks "
      "WHERE shape OVERLAPS POLYGON((40 40, 60 40, 60 60, 40 60)) "
      "ORDER BY name";
  auto plan = engine.Explain(statement);
  if (plan.ok()) std::printf("\nSQL: %s\n%s", statement, plan->c_str());
  if (!coord.BeginQuery().ok()) return 1;
  auto sql_rows = engine.Execute(statement, &coord);
  if (sql_rows.ok()) {
    std::printf("SQL result: %zu rows, first = %s (%.1f area units)\n",
                sql_rows->size(), (*sql_rows)[0].at(0).AsString().c_str(),
                (*sql_rows)[0].at(1).AsDouble());
  }
  return 0;
}
