// Map overlay: join two large spatial relations — which rivers cross
// which roads (the paper's Query 13 / Wisconsin-river-vs-US-90 example,
// Section 2.7.2). Demonstrates the full parallel spatial join: spatial
// redeclustering with replication, per-node PBSM, and reference-point
// duplicate elimination (the Wisconsin river and U.S. 90 cross twice but
// must be reported once... per crossing pair, not per partition).

#include <cstdio>
#include <set>

#include "common/rng.h"
#include "core/cluster.h"
#include "core/parallel_ops.h"

using namespace paradise;

namespace {

exec::TupleVec MakeChains(Rng* rng, int n, const char* prefix, double step) {
  exec::TupleVec out;
  for (int i = 0; i < n; ++i) {
    std::vector<geom::Point> pts;
    geom::Point cur{rng->NextDouble(0, 1000), rng->NextDouble(0, 1000)};
    double heading = rng->NextDouble(0, 6.28);
    for (int k = 0; k < 12; ++k) {
      pts.push_back(cur);
      heading += rng->NextDouble(-0.4, 0.4);
      cur.x += step * std::cos(heading);
      cur.y += step * std::sin(heading);
    }
    out.push_back(
        exec::Tuple({exec::Value(std::string(prefix) + std::to_string(i)),
                     exec::Value(geom::Polyline(std::move(pts)))}));
  }
  return out;
}

}  // namespace

int main() {
  core::Cluster cluster(8);
  core::QueryCoordinator coord(&cluster);
  Rng rng(7);

  exec::TupleVec rivers = MakeChains(&rng, 4000, "river-", 12.0);
  exec::TupleVec roads = MakeChains(&rng, 3000, "road-", 15.0);
  geom::Box universe(0, 0, 1200, 1200);

  int N = cluster.num_nodes();
  core::PerNode river_per(N), road_per(N);
  for (size_t i = 0; i < rivers.size(); ++i) {
    river_per[i % N].push_back(rivers[i]);
  }
  for (size_t i = 0; i < roads.size(); ++i) {
    road_per[i % N].push_back(roads[i]);
  }

  if (!coord.BeginQuery().ok()) return 1;
  core::ParallelSpatialJoinOptions opts;
  opts.tiles_per_axis = 40;
  auto joined = core::ParallelSpatialJoin(&coord, river_per, 1, road_per, 1,
                                          universe, opts);
  if (!joined.ok()) {
    std::fprintf(stderr, "%s\n", joined.status().ToString().c_str());
    return 1;
  }
  auto rows = core::Gather(&coord, *joined);
  if (!rows.ok()) return 1;

  std::printf("%zu river/road crossings found (modeled %.3f s on %d nodes)\n",
              rows->size(), coord.query_seconds(), N);
  for (size_t i = 0; i < rows->size() && i < 6; ++i) {
    std::printf("  %-12s crosses %s\n", (*rows)[i].at(0).AsString().c_str(),
                (*rows)[i].at(2).AsString().c_str());
  }
  std::printf("  ...\n\nphases:\n");
  for (const auto& p : coord.phases()) {
    std::printf("  %-14s %s %.4f s (work across nodes: %.4f s)\n",
                p.name.c_str(), p.sequential ? "[seq]" : "     ", p.seconds,
                p.total_node_seconds);
  }

  // Sanity: no duplicate pairs despite replication.
  std::set<std::pair<std::string, std::string>> unique_pairs;
  for (const exec::Tuple& t : *rows) {
    if (!unique_pairs.emplace(t.at(0).AsString(), t.at(2).AsString()).second) {
      std::printf("DUPLICATE pair found — dedup bug!\n");
      return 1;
    }
  }
  std::printf("\nno duplicates: reference-point elimination held.\n");
  return 0;
}
