// Closest-facility analysis: "find the closest toxic waste dump to every
// city" — the paper's motivating example for spatial aggregates
// (Section 1, point 3; executed like Query 12). Shows the spatial
// semi-join deciding per city whether its nearest facility is provably
// local, and the join-with-aggregate expanding-circle probes for the rest.

#include <cstdio>

#include "common/rng.h"
#include "core/cluster.h"
#include "core/parallel_ops.h"

using namespace paradise;

int main() {
  core::Cluster cluster(8);
  core::QueryCoordinator coord(&cluster);
  Rng rng(2024);
  geom::Box universe(0, 0, 1000, 1000);

  // Cities: clustered (as real cities are).
  exec::TupleVec cities;
  for (int c = 0; c < 6; ++c) {
    geom::Point center{rng.NextDouble(100, 900), rng.NextDouble(100, 900)};
    for (int i = 0; i < 5; ++i) {
      cities.push_back(exec::Tuple(
          {exec::Value("city-" + std::to_string(c * 5 + i)),
           exec::Value(geom::Point{center.x + rng.NextGaussian() * 30,
                                   center.y + rng.NextGaussian() * 30})}));
    }
  }

  // Facilities: polygonal sites scattered over the map.
  exec::TupleVec facilities;
  for (int i = 0; i < 400; ++i) {
    double x = rng.NextDouble(0, 990);
    double y = rng.NextDouble(0, 990);
    facilities.push_back(exec::Tuple(
        {exec::Value("site-" + std::to_string(i)),
         exec::Value(geom::Polygon(
             {{x, y}, {x + 8, y}, {x + 8, y + 8}, {x, y + 8}}))}));
  }

  // Start round-robin placed (as if freshly scanned from two tables).
  int N = cluster.num_nodes();
  core::PerNode city_per(N), fac_per(N);
  for (size_t i = 0; i < cities.size(); ++i) {
    city_per[i % N].push_back(cities[i]);
  }
  for (size_t i = 0; i < facilities.size(); ++i) {
    fac_per[i % N].push_back(facilities[i]);
  }

  if (!coord.BeginQuery().ok()) return 1;
  core::ClosestJoinStats stats;
  auto result = core::SpatialJoinWithClosest(&coord, city_per, 1, fac_per, 1,
                                             universe, /*tiles_per_axis=*/8,
                                             &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("closest facility per city (%zu cities):\n", result->size());
  for (size_t i = 0; i < result->size() && i < 8; ++i) {
    const exec::Tuple& t = (*result)[i];
    std::printf("  city at %-22s -> facility at %-18s distance %.1f\n",
                t.at(0).AsPoint().ToString().c_str(),
                t.at(1).AsPolygon()->Mbr().Center().ToString().c_str(),
                t.at(2).AsDouble());
  }
  std::printf("  ...\n\n");
  std::printf(
      "spatial semi-join resolved %lld cities locally; %lld needed "
      "replication to all %d nodes\n",
      static_cast<long long>(stats.local_points),
      static_cast<long long>(stats.replicated_points), N);
  std::printf("modeled query time: %.4f s", coord.query_seconds());
  for (const auto& p : coord.phases()) {
    if (p.name == "global aggregate") {
      std::printf(" (of which the sequential global aggregate: %.4f s)",
                  p.seconds);
    }
  }
  std::printf("\n");
  return 0;
}
