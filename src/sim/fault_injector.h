#ifndef PARADISE_SIM_FAULT_INJECTOR_H_
#define PARADISE_SIM_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace paradise::sim {

/// Bounded-retry policy for transient faults. Backoff and timeouts are
/// *modeled* time charged to the virtual clocks (NodeClock::ChargeIdle),
/// never host sleeps, so a faulted run's query_seconds() is bit-identical
/// across executor thread counts.
struct RetryPolicy {
  int max_attempts = 4;                   // total tries, including the first
  double initial_backoff_seconds = 0.002; // wait before the first retry
  double backoff_multiplier = 2.0;        // exponential growth per retry
  double detect_timeout_seconds = 0.25;   // missed-heartbeat crash detection

  /// Modeled wait before retry number `retry` (0-based).
  double BackoffSeconds(int retry) const {
    double b = initial_backoff_seconds;
    for (int i = 0; i < retry; ++i) b *= backoff_multiplier;
    return b;
  }
};

/// What an injected disk-read fault does.
enum class DiskFaultKind : uint8_t {
  kNone = 0,
  kTransientError,  // read fails with kUnavailable; a retry succeeds
  kTornRead,        // read "succeeds" but returns corrupted page bytes
};

/// Outcome of the transfer-fault hook for one network batch.
struct TransferFault {
  int dropped = 0;         // times the batch was lost and retransmitted
  bool duplicated = false; // receiver got a spurious second copy
};

/// A node-crash event, fired at a phase barrier by the coordinator.
struct CrashEvent {
  uint32_t node = 0;
  bool permanent = false;  // false: recover via WAL; true: mark dead
};

/// A crash fired mid-tile-migration by the TopologyManager: either side
/// of the transfer dies after the tile's runs landed but before cutover.
struct MigrationCrashEvent {
  bool target_side = false;  // false: the migration source crashes
  bool permanent = false;    // false: recover via WAL; true: mark dead
};

/// Seeded, deterministic fault source for the simulated cluster.
///
/// Determinism contract: probabilistic decisions are pure hashes of
/// (seed, fault kind, stable keys) where the keys are maintained under the
/// same locks that already serialize the faulted resource (a volume's
/// per-page read ordinal, a link pair's batch ordinal). The *multiset* of
/// decisions in a phase is therefore independent of thread schedule, and
/// because every fault's cost is charged to per-node virtual clocks, the
/// modeled time it induces is bit-identical for any executor thread count.
///
/// Configure (rates, schedules) before wiring into a Cluster; the hook
/// methods are then safe to call concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // -- Configuration (call before the run) --------------------------------

  void set_transient_read_rate(double p) { transient_read_rate_ = p; }
  void set_torn_read_rate(double p) { torn_read_rate_ = p; }
  void set_transfer_drop_rate(double p) { transfer_drop_rate_ = p; }
  void set_transfer_duplicate_rate(double p) { transfer_duplicate_rate_ = p; }
  /// Modeled sender wait before retransmitting a dropped batch.
  void set_drop_timeout_seconds(double s) { drop_timeout_seconds_ = s; }
  double drop_timeout_seconds() const { return drop_timeout_seconds_; }

  /// Schedules a fault on the `ordinal`-th read (0-based) of page `page`
  /// of volume `volume` on node `node`.
  void InjectDiskFault(uint32_t node, uint32_t volume, uint32_t page,
                       int64_t ordinal, DiskFaultKind kind) {
    scheduled_disk_[DiskKey{node, volume, page, ordinal}] = kind;
  }

  /// Schedules a node crash to fire at phase barrier `barrier` (0 = query
  /// start, k = after the k-th phase of the query).
  void ScheduleCrash(int barrier, uint32_t node, bool permanent) {
    scheduled_crashes_.emplace(barrier, CrashEvent{node, permanent});
  }

  /// Schedules a crash during the `ordinal`-th executed tile/stripe
  /// migration (0-based, global across streams — the TopologyManager
  /// maintains the counter single-threaded under migration pumping).
  void ScheduleMigrationCrash(int64_t ordinal, bool target_side,
                              bool permanent) {
    scheduled_migration_[ordinal] =
        MigrationCrashEvent{target_side, permanent};
  }

  /// Probabilistic chaos mode: each executed migration move crashes with
  /// probability `p` (side and permanence drawn from independent hash
  /// bits of the move ordinal). Used by the nightly churn/chaos harness.
  void set_migration_crash_rate(double p) { migration_crash_rate_ = p; }

  // -- Hooks (called by the wired components) -----------------------------

  /// Decides the fate of one disk read. `ordinal` is the per-page read
  /// count maintained by the volume under its own mutex.
  DiskFaultKind OnDiskRead(uint32_t node, uint32_t volume, uint32_t page,
                           int64_t ordinal) {
    if (!scheduled_disk_.empty()) {
      auto it = scheduled_disk_.find(DiskKey{node, volume, page, ordinal});
      if (it != scheduled_disk_.end() && it->second != DiskFaultKind::kNone) {
        Count(it->second);
        return it->second;
      }
    }
    if (transient_read_rate_ > 0.0 &&
        UnitUniform(0x7261'6e64, node, volume, page, ordinal) <
            transient_read_rate_) {
      Count(DiskFaultKind::kTransientError);
      return DiskFaultKind::kTransientError;
    }
    if (torn_read_rate_ > 0.0 &&
        UnitUniform(0x746f'726e, node, volume, page, ordinal) <
            torn_read_rate_) {
      Count(DiskFaultKind::kTornRead);
      return DiskFaultKind::kTornRead;
    }
    return DiskFaultKind::kNone;
  }

  /// Decides the fate of one network batch on the (from, to) link.
  /// `ordinal` is the per-link batch count maintained by the cluster.
  TransferFault OnTransfer(uint32_t from, uint32_t to, int64_t ordinal) {
    TransferFault f;
    if (transfer_drop_rate_ > 0.0 &&
        UnitUniform(0x6472'6f70, from, to, 0, ordinal) < transfer_drop_rate_) {
      f.dropped = 1;
      dropped_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    if (transfer_duplicate_rate_ > 0.0 &&
        UnitUniform(0x6475'7065, from, to, 0, ordinal) <
            transfer_duplicate_rate_) {
      f.duplicated = true;
      duplicated_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    return f;
  }

  /// Consumes a crash scheduled (or chaos-drawn) for the `ordinal`-th
  /// migration move. Called single-threaded by the TopologyManager.
  std::optional<MigrationCrashEvent> TakeMigrationCrash(int64_t ordinal) {
    auto it = scheduled_migration_.find(ordinal);
    if (it != scheduled_migration_.end()) {
      MigrationCrashEvent ev = it->second;
      scheduled_migration_.erase(it);
      migration_crashes_.fetch_add(1, std::memory_order_relaxed);
      return ev;
    }
    if (migration_crash_rate_ > 0.0 &&
        UnitUniform(0x6d69'6772, 0, 0, 0, ordinal) < migration_crash_rate_) {
      MigrationCrashEvent ev;
      ev.target_side = UnitUniform(0x6d69'6772, 1, 0, 0, ordinal) < 0.5;
      ev.permanent = UnitUniform(0x6d69'6772, 2, 0, 0, ordinal) < 0.5;
      migration_crashes_.fetch_add(1, std::memory_order_relaxed);
      return ev;
    }
    return std::nullopt;
  }

  /// Consumes (at most one per call) a crash scheduled for `barrier`.
  /// Called single-threaded by the coordinator at phase barriers.
  std::optional<CrashEvent> TakeCrashAtBarrier(int barrier) {
    auto it = scheduled_crashes_.find(barrier);
    if (it == scheduled_crashes_.end()) return std::nullopt;
    CrashEvent ev = it->second;
    scheduled_crashes_.erase(it);
    crashes_.fetch_add(1, std::memory_order_relaxed);
    return ev;
  }

  // -- Observability ------------------------------------------------------

  struct Stats {
    int64_t transient_read_faults = 0;
    int64_t torn_read_faults = 0;
    int64_t dropped_batches = 0;
    int64_t duplicated_batches = 0;
    int64_t crashes = 0;
    int64_t migration_crashes = 0;
  };
  Stats stats() const {
    Stats s;
    s.transient_read_faults =
        transient_read_faults_.load(std::memory_order_relaxed);
    s.torn_read_faults = torn_read_faults_.load(std::memory_order_relaxed);
    s.dropped_batches = dropped_batches_.load(std::memory_order_relaxed);
    s.duplicated_batches = duplicated_batches_.load(std::memory_order_relaxed);
    s.crashes = crashes_.load(std::memory_order_relaxed);
    s.migration_crashes =
        migration_crashes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct DiskKey {
    uint32_t node, volume, page;
    int64_t ordinal;
    friend auto operator<=>(const DiskKey&, const DiskKey&) = default;
  };

  void Count(DiskFaultKind kind) {
    if (kind == DiskFaultKind::kTransientError) {
      transient_read_faults_.fetch_add(1, std::memory_order_relaxed);
    } else if (kind == DiskFaultKind::kTornRead) {
      torn_read_faults_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // splitmix64 finalizer: the avalanche stage used to derive independent
  // streams from the seed and the decision keys.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Deterministic uniform draw in [0, 1) keyed by (seed, salt, a, b, c, d).
  double UnitUniform(uint64_t salt, uint64_t a, uint64_t b, uint64_t c,
                     uint64_t d) const {
    uint64_t h = Mix(seed_ ^ Mix(salt));
    h = Mix(h ^ Mix(a));
    h = Mix(h ^ Mix(b));
    h = Mix(h ^ Mix(c));
    h = Mix(h ^ Mix(d));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  const uint64_t seed_;
  double transient_read_rate_ = 0.0;
  double torn_read_rate_ = 0.0;
  double transfer_drop_rate_ = 0.0;
  double transfer_duplicate_rate_ = 0.0;
  double migration_crash_rate_ = 0.0;
  double drop_timeout_seconds_ = 0.02;

  std::map<DiskKey, DiskFaultKind> scheduled_disk_;
  std::multimap<int, CrashEvent> scheduled_crashes_;
  std::map<int64_t, MigrationCrashEvent> scheduled_migration_;

  std::atomic<int64_t> transient_read_faults_{0};
  std::atomic<int64_t> torn_read_faults_{0};
  std::atomic<int64_t> dropped_batches_{0};
  std::atomic<int64_t> duplicated_batches_{0};
  std::atomic<int64_t> crashes_{0};
  std::atomic<int64_t> migration_crashes_{0};
};

}  // namespace paradise::sim

#endif  // PARADISE_SIM_FAULT_INJECTOR_H_
