#ifndef PARADISE_SIM_COST_MODEL_H_
#define PARADISE_SIM_COST_MODEL_H_

#include <cstdint>

namespace paradise::sim {

/// Counters for the physical resources a node consumes. The executor runs
/// the real algorithms on real bytes; these counters are the *only* source
/// of reported time, which is what makes speedup/scaleup experiments
/// deterministic and runnable on a single-core host.
struct ResourceUsage {
  int64_t disk_seeks = 0;          // random positioning operations
  int64_t disk_bytes_read = 0;     // bytes transferred from disk
  int64_t disk_bytes_written = 0;  // bytes transferred to disk
  int64_t net_messages = 0;        // point-to-point messages
  int64_t net_bytes = 0;           // bytes sent on this node's link
  double cpu_ops = 0.0;            // elementary CPU operations
  double idle_seconds = 0.0;       // modeled waiting: backoff, timeouts

  void Add(const ResourceUsage& other) {
    disk_seeks += other.disk_seeks;
    disk_bytes_read += other.disk_bytes_read;
    disk_bytes_written += other.disk_bytes_written;
    net_messages += other.net_messages;
    net_bytes += other.net_bytes;
    cpu_ops += other.cpu_ops;
    idle_seconds += other.idle_seconds;
  }

  void Clear() { *this = ResourceUsage(); }
};

/// Converts resource counters to seconds. Defaults are calibrated to the
/// paper's testbed (Section 3.2): dual 133 MHz Pentiums, Seagate Barracuda
/// 2.1 GB SCSI disks, 100 Mbit switched Ethernet.
///
/// Disk and network on a node overlap poorly in 1997-era systems (blocking
/// UNIX I/O through a separate I/O process, single link), so a node's time
/// is modeled additively: disk + net + cpu.
struct CostModel {
  /// Average positioning time (seek + rotational latency) per random access.
  double disk_seek_seconds = 0.011;
  /// Sustained media transfer rate (the Barracuda family did ~6-9 MB/s).
  double disk_bytes_per_second = 8.0e6;
  /// Per-message software + switch latency.
  double net_message_latency_seconds = 0.0006;
  /// Per-node link bandwidth: 100 Mbit/s full duplex ~ 12.5 MB/s.
  double net_bytes_per_second = 12.5e6;
  /// Useful work rate of one node on database code. Two 133 MHz CPUs
  /// sustaining well under 1 op/cycle on pointer-chasing DB code.
  double cpu_ops_per_second = 90.0e6;

  /// Cost of one batched read of `pages` consecutive pages of `page_bytes`
  /// each: one positioning operation, then pure media transfer. This is
  /// the charge DiskVolume::ReadRun makes for a readahead window and what
  /// the buffer pool's batched miss path saves over per-page random reads
  /// (which would pay disk_seek_seconds per page).
  double SequentialRunSeconds(int64_t pages, int64_t page_bytes) const {
    return disk_seek_seconds +
           static_cast<double>(pages * page_bytes) / disk_bytes_per_second;
  }

  /// Component costs, exposed separately so a contention model can scale
  /// the shared resources (disk arms, the node's link) without touching
  /// CPU or modeled idle time. Seconds() is exactly their sum.
  double DiskSeconds(const ResourceUsage& u) const {
    return static_cast<double>(u.disk_seeks) * disk_seek_seconds +
           static_cast<double>(u.disk_bytes_read + u.disk_bytes_written) /
               disk_bytes_per_second;
  }
  double NetSeconds(const ResourceUsage& u) const {
    return static_cast<double>(u.net_messages) * net_message_latency_seconds +
           static_cast<double>(u.net_bytes) / net_bytes_per_second;
  }
  double CpuSeconds(const ResourceUsage& u) const {
    return u.cpu_ops / cpu_ops_per_second;
  }

  double Seconds(const ResourceUsage& u) const {
    return DiskSeconds(u) + NetSeconds(u) + CpuSeconds(u) + u.idle_seconds;
  }
};

/// Conventional CPU charges, in elementary operations. Operators use these
/// so that CPU-heavy geo-spatial work (distance tests, compression, pixel
/// math) dominates where the paper says it does (e.g. Query 11).
namespace cpu_cost {
inline constexpr double kTupleOverhead = 250;      // per tuple through an operator
inline constexpr double kCompare = 12;             // scalar compare
inline constexpr double kHash = 40;                // hash a key
inline constexpr double kPerByteCopied = 0.6;      // memcpy-style movement
inline constexpr double kPerByteCompressed = 24;   // LZW encode
inline constexpr double kPerByteDecompressed = 10; // LZW decode
inline constexpr double kPerPixel = 5;             // raster pixel op (clip/avg)
inline constexpr double kPerSegmentTest = 60;      // segment intersection test
inline constexpr double kPerPointDistance = 45;    // point-segment distance
inline constexpr double kIndexProbe = 900;         // descend one index level set
inline constexpr double kIndexNodeVisit = 500;     // touch one memory-resident index node
}  // namespace cpu_cost

}  // namespace paradise::sim

#endif  // PARADISE_SIM_COST_MODEL_H_
