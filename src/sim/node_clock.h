#ifndef PARADISE_SIM_NODE_CLOCK_H_
#define PARADISE_SIM_NODE_CLOCK_H_

#include <mutex>

#include "sim/cost_model.h"

namespace paradise::sim {

/// Per-node virtual clock. Accumulates resource usage for the current
/// pipeline phase and for the whole query/run. Thread-safe: a node's work
/// may be charged from the worker thread executing its operators and from
/// remote pull requests landing on it.
class NodeClock {
 public:
  NodeClock() = default;

  NodeClock(const NodeClock&) = delete;
  NodeClock& operator=(const NodeClock&) = delete;

  void ChargeDiskSeek(int64_t seeks = 1) {
    std::lock_guard<std::mutex> g(mu_);
    phase_.disk_seeks += seeks;
  }
  void ChargeDiskRead(int64_t bytes, int64_t seeks) {
    std::lock_guard<std::mutex> g(mu_);
    phase_.disk_bytes_read += bytes;
    phase_.disk_seeks += seeks;
  }
  void ChargeDiskWrite(int64_t bytes, int64_t seeks) {
    std::lock_guard<std::mutex> g(mu_);
    phase_.disk_bytes_written += bytes;
    phase_.disk_seeks += seeks;
  }
  void ChargeNet(int64_t messages, int64_t bytes) {
    std::lock_guard<std::mutex> g(mu_);
    phase_.net_messages += messages;
    phase_.net_bytes += bytes;
  }
  void ChargeCpu(double ops) {
    std::lock_guard<std::mutex> g(mu_);
    phase_.cpu_ops += ops;
  }
  /// Modeled wall-clock waiting with no resource consumption: retry
  /// backoff, retransmit timeouts, failure-detection timeouts.
  void ChargeIdle(double seconds) {
    std::lock_guard<std::mutex> g(mu_);
    phase_.idle_seconds += seconds;
  }
  /// Folds a task-local accumulator into this clock in one locked step.
  /// Intra-node parallel operators give each task its own NodeClock and
  /// merge the per-task usage here in task order after the barrier, so the
  /// addition order (and thus the floating-point CPU total) is a function
  /// of the task decomposition alone, never of the thread schedule.
  void ChargeUsage(const ResourceUsage& usage) {
    std::lock_guard<std::mutex> g(mu_);
    phase_.Add(usage);
  }

  /// Ends the current phase: folds phase usage into the total and returns
  /// the phase usage (the coordinator takes max-over-nodes of its seconds).
  ResourceUsage EndPhase() {
    std::lock_guard<std::mutex> g(mu_);
    ResourceUsage phase = phase_;
    total_.Add(phase_);
    phase_.Clear();
    return phase;
  }

  /// Drops whatever sits in the open phase *without* folding it into the
  /// total. This is the end-of-query unwind for a query abandoned
  /// mid-phase: its half-accumulated charges must not be attributed to the
  /// next query sharing this clock.
  void DiscardPhase() {
    std::lock_guard<std::mutex> g(mu_);
    phase_.Clear();
  }

  ResourceUsage phase_usage() const {
    std::lock_guard<std::mutex> g(mu_);
    return phase_;
  }
  ResourceUsage total_usage() const {
    std::lock_guard<std::mutex> g(mu_);
    return total_;
  }

  void Reset() {
    std::lock_guard<std::mutex> g(mu_);
    phase_.Clear();
    total_.Clear();
  }

 private:
  mutable std::mutex mu_;
  ResourceUsage phase_;
  ResourceUsage total_;
};

}  // namespace paradise::sim

#endif  // PARADISE_SIM_NODE_CLOCK_H_
