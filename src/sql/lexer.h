#ifndef PARADISE_SQL_LEXER_H_
#define PARADISE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace paradise::sql {

enum class TokenType {
  kIdentifier,   // table, column, function names (case-insensitive keywords)
  kInteger,
  kFloat,
  kString,       // 'single quoted'
  kComma,
  kLParen,
  kRParen,
  kStar,
  kDot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // identifier / string payload (identifiers lowercased)
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;   // byte offset, for error messages
};

/// Tokenizes the SQL dialect used by the benchmark queries. Keywords are
/// returned as identifiers; the parser matches them case-insensitively.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace paradise::sql

#endif  // PARADISE_SQL_LEXER_H_
