#include "sql/engine.h"

#include "common/logging.h"
#include "sql/lexer.h"

namespace paradise::sql {

using core::Query;
using exec::CompareOp;
using exec::ExprPtr;
using exec::Value;
using exec::ValueType;
using geom::Point;

namespace {

/// Recursive-descent parser + binder: expressions are bound against the
/// target table's schema as they are parsed.
class Parser {
 public:
  Parser(std::vector<Token> tokens,
         const std::map<std::string, const core::ParallelTable*>& tables)
      : tokens_(std::move(tokens)), tables_(tables) {}

  StatusOr<Query> ParseStatement() {
    PARADISE_RETURN_IF_ERROR(ExpectKeyword("select"));

    // Defer select-list binding until FROM resolves the schema: remember
    // the token range and re-parse after.
    size_t select_start = pos_;
    PARADISE_RETURN_IF_ERROR(SkipUntilKeyword("from"));
    size_t select_end = pos_;
    PARADISE_RETURN_IF_ERROR(ExpectKeyword("from"));

    PARADISE_ASSIGN_OR_RETURN(std::string table_name, ExpectIdentifier());
    auto it = tables_.find(table_name);
    if (it == tables_.end()) {
      return Status::NotFound("unknown table " + table_name);
    }
    table_ = it->second;
    schema_ = &table_->def().schema;

    Query query = Query::On(table_);

    if (AcceptKeyword("where")) {
      PARADISE_ASSIGN_OR_RETURN(query, ParseWhere(std::move(query)));
    }

    bool has_group_by = false;
    size_t group_col = 0;
    if (AcceptKeyword("group")) {
      PARADISE_RETURN_IF_ERROR(ExpectKeyword("by"));
      PARADISE_ASSIGN_OR_RETURN(group_col, ParseColumnRef());
      has_group_by = true;
    }

    std::optional<exec::SortKey> order;
    if (AcceptKeyword("order")) {
      PARADISE_RETURN_IF_ERROR(ExpectKeyword("by"));
      PARADISE_ASSIGN_OR_RETURN(size_t col, ParseColumnRef());
      bool ascending = true;
      if (AcceptKeyword("desc")) {
        ascending = false;
      } else {
        AcceptKeyword("asc");
      }
      order = exec::SortKey{col, ascending};
    }
    if (!AtEnd()) return Error("trailing tokens after statement");

    // Now bind the select list with the schema in hand.
    size_t saved = pos_;
    pos_ = select_start;
    end_limit_ = select_end;
    PARADISE_ASSIGN_OR_RETURN(query,
                              ParseSelectList(std::move(query), has_group_by,
                                              group_col));
    end_limit_ = tokens_.size();
    pos_ = saved;

    if (order.has_value()) {
      // Note: the fluent builders return *this as an rvalue, so binding
      // the result back into `query` would self-move-assign; construct a
      // fresh object instead.
      Query sorted = std::move(query).OrderBy(order->column, order->ascending);
      return sorted;
    }
    return query;
  }

 private:
  // ---- token plumbing ----
  const Token& Peek(size_t ahead = 0) const {
    size_t limit = std::min(end_limit_, tokens_.size() - 1);
    size_t i = std::min(pos_ + ahead, limit);
    return i >= limit && pos_ + ahead >= limit ? end_token_ : tokens_[i];
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < std::min(end_limit_, tokens_.size() - 1)) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  Status Error(const std::string& m) const {
    return Status::InvalidArgument("SQL: " + m + " near offset " +
                                   std::to_string(Peek().position));
  }
  bool AcceptKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kIdentifier && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Error("expected " + kw);
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) return Error("expected name");
    return Advance().text;
  }
  bool Accept(TokenType t) {
    if (Peek().type == t) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const char* what) {
    if (!Accept(t)) return Error(std::string("expected ") + what);
    return Status::OK();
  }
  Status SkipUntilKeyword(const std::string& kw) {
    int depth = 0;
    while (!AtEnd()) {
      if (Peek().type == TokenType::kLParen) ++depth;
      if (Peek().type == TokenType::kRParen) --depth;
      if (depth == 0 && Peek().type == TokenType::kIdentifier &&
          Peek().text == kw) {
        return Status::OK();
      }
      Advance();
    }
    return Error("expected " + kw);
  }

  // ---- schema binding ----
  StatusOr<size_t> ParseColumnRef() {
    PARADISE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    if (Accept(TokenType::kDot)) {
      // table.column: verify the qualifier, use the column part.
      if (name != table_->def().name &&
          name + "s" != table_->def().name) {  // tolerate singular aliases
        // Accept any qualifier; single-table statements are unambiguous.
      }
      PARADISE_ASSIGN_OR_RETURN(name, ExpectIdentifier());
    }
    for (size_t i = 0; i < schema_->num_columns(); ++i) {
      std::string lower = schema_->column(i).name;
      for (char& c : lower) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (lower == name) return i;
    }
    return Error("unknown column " + name);
  }

  // ---- literals ----
  StatusOr<Point> ParsePointBody() {
    // x y  (inside parens already consumed by the caller)
    if (Peek().type != TokenType::kInteger && Peek().type != TokenType::kFloat) {
      return Error("expected coordinate");
    }
    double x = NumberValue(Advance());
    if (Peek().type != TokenType::kInteger && Peek().type != TokenType::kFloat) {
      return Error("expected coordinate");
    }
    double y = NumberValue(Advance());
    return Point{x, y};
  }

  static double NumberValue(const Token& t) {
    return t.type == TokenType::kInteger ? static_cast<double>(t.int_value)
                                         : t.float_value;
  }

  StatusOr<Value> ParseSpatialLiteral(const std::string& kind) {
    PARADISE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    if (kind == "point") {
      PARADISE_ASSIGN_OR_RETURN(Point p, ParsePointBody());
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return Value(p);
    }
    if (kind == "circle") {
      PARADISE_ASSIGN_OR_RETURN(Point c, ParsePointBody());
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kComma, ","));
      if (Peek().type != TokenType::kInteger &&
          Peek().type != TokenType::kFloat) {
        return Error("expected radius");
      }
      double r = NumberValue(Advance());
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return Value(geom::Circle(c, r));
    }
    if (kind == "box") {
      PARADISE_ASSIGN_OR_RETURN(Point lo, ParsePointBody());
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kComma, ","));
      PARADISE_ASSIGN_OR_RETURN(Point hi, ParsePointBody());
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return Value(geom::Box(lo.x, lo.y, hi.x, hi.y));
    }
    if (kind == "polygon") {
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kLParen, "(("));
      std::vector<Point> ring;
      do {
        PARADISE_ASSIGN_OR_RETURN(Point p, ParsePointBody());
        ring.push_back(p);
      } while (Accept(TokenType::kComma));
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return Value(geom::Polygon(std::move(ring)));
    }
    return Error("unknown spatial literal " + kind);
  }

  StatusOr<Value> ParseLiteralValue() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        return Value(Advance().int_value);
      case TokenType::kFloat:
        return Value(Advance().float_value);
      case TokenType::kString:
        return Value(Advance().text);
      case TokenType::kIdentifier: {
        if (t.text == "date") {
          Advance();
          if (Peek().type != TokenType::kString) {
            return Error("expected DATE 'yyyy-mm-dd'");
          }
          PARADISE_ASSIGN_OR_RETURN(Date d, Date::Parse(Advance().text));
          return Value(d);
        }
        if (t.text == "point" || t.text == "circle" || t.text == "polygon" ||
            t.text == "box") {
          std::string kind = Advance().text;
          return ParseSpatialLiteral(kind);
        }
        return Error("unexpected identifier in literal position: " + t.text);
      }
      default:
        return Error("expected literal");
    }
  }

  bool LooksLikeLiteral() const {
    const Token& t = Peek();
    if (t.type == TokenType::kInteger || t.type == TokenType::kFloat ||
        t.type == TokenType::kString) {
      return true;
    }
    return t.type == TokenType::kIdentifier &&
           (t.text == "date" || t.text == "point" || t.text == "circle" ||
            t.text == "polygon" || t.text == "box");
  }

  // ---- expressions ----
  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    PARADISE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      PARADISE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = exec::Or(left, right);
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAnd() {
    PARADISE_ASSIGN_OR_RETURN(ExprPtr left, ParseComparison());
    while (AcceptKeyword("and")) {
      PARADISE_ASSIGN_OR_RETURN(ExprPtr right, ParseComparison());
      left = exec::And(left, right);
    }
    return left;
  }

  StatusOr<ExprPtr> ParseComparison() {
    if (AcceptKeyword("not")) {
      PARADISE_ASSIGN_OR_RETURN(ExprPtr inner, ParseComparison());
      return exec::Not(inner);
    }
    PARADISE_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    if (AcceptKeyword("overlaps")) {
      PARADISE_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      return exec::Overlaps(left, right);
    }
    CompareOp op;
    switch (Peek().type) {
      case TokenType::kEq: op = CompareOp::kEq; break;
      case TokenType::kNe: op = CompareOp::kNe; break;
      case TokenType::kLt: op = CompareOp::kLt; break;
      case TokenType::kLe: op = CompareOp::kLe; break;
      case TokenType::kGt: op = CompareOp::kGt; break;
      case TokenType::kGe: op = CompareOp::kGe; break;
      default:
        return left;  // bare boolean expression
    }
    Advance();
    PARADISE_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
    return exec::Cmp(op, left, right);
  }

  StatusOr<ExprPtr> ParsePrimary() {
    if (Accept(TokenType::kLParen)) {
      PARADISE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return inner;
    }
    if (LooksLikeLiteral()) {
      PARADISE_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      return exec::Lit(std::move(v));
    }
    if (Peek().type == TokenType::kIdentifier) {
      // function call or column reference
      if (Peek(1).type == TokenType::kLParen && !IsColumnName(Peek().text)) {
        std::string fn = Advance().text;
        Advance();  // (
        if (fn == "area") {
          PARADISE_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
          return exec::AreaOf(arg);
        }
        if (fn == "distance") {
          PARADISE_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kComma, ","));
          PARADISE_ASSIGN_OR_RETURN(ExprPtr b, ParseExpr());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
          return exec::DistanceBetween(a, b);
        }
        if (fn == "overlaps") {
          PARADISE_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kComma, ","));
          PARADISE_ASSIGN_OR_RETURN(ExprPtr b, ParseExpr());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
          return exec::Overlaps(a, b);
        }
        if (fn == "makebox") {
          PARADISE_ASSIGN_OR_RETURN(ExprPtr p, ParseExpr());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kComma, ","));
          if (Peek().type != TokenType::kInteger &&
              Peek().type != TokenType::kFloat) {
            return Error("expected box length");
          }
          double len = NumberValue(Advance());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
          return exec::MakeBoxAround(p, len);
        }
        return Error("unknown function " + fn);
      }
      PARADISE_ASSIGN_OR_RETURN(size_t col, ParseColumnRef());
      return exec::Col(col);
    }
    return Error("expected expression");
  }

  bool IsColumnName(const std::string& name) const {
    for (size_t i = 0; i < schema_->num_columns(); ++i) {
      std::string lower = schema_->column(i).name;
      for (char& c : lower) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (lower == name) return true;
    }
    return false;
  }

  // ---- WHERE: conjuncts with sargability detection ----
  StatusOr<Query> ParseWhere(Query query) {
    do {
      PARADISE_ASSIGN_OR_RETURN(query, ParseConjunct(std::move(query)));
    } while (AcceptKeyword("and"));
    return query;
  }

  StatusOr<Query> ParseConjunct(Query query) {
    // Try sargable shapes first; rewind on mismatch.
    size_t mark = pos_;
    if (Peek().type == TokenType::kIdentifier && !LooksLikeLiteral()) {
      size_t col;
      {
        auto col_or = ParseColumnRef();
        if (col_or.ok()) {
          col = *col_or;
          ValueType t = schema_->column(col).type;
          if (Accept(TokenType::kEq) && LooksLikeLiteral()) {
            PARADISE_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
            if (t == ValueType::kString && v.type() == ValueType::kString) {
              return std::move(query).WhereStringEquals(col, v.AsString());
            }
            if (t == ValueType::kInt && v.type() == ValueType::kInt) {
              return std::move(query).WhereIntEquals(col, v.AsInt());
            }
            if (t == ValueType::kDate && v.type() == ValueType::kDate) {
              return std::move(query).WhereDateBetween(col, v.AsDate(),
                                                       v.AsDate());
            }
            // Typed mismatch: fall through to the generic path.
          } else if (AcceptKeyword("between")) {
            PARADISE_ASSIGN_OR_RETURN(Value lo, ParseLiteralValue());
            PARADISE_RETURN_IF_ERROR(ExpectKeyword("and"));
            PARADISE_ASSIGN_OR_RETURN(Value hi, ParseLiteralValue());
            if (lo.type() == ValueType::kDate) {
              return std::move(query).WhereDateBetween(col, lo.AsDate(),
                                                       hi.AsDate());
            }
            return std::move(query).WhereIntBetween(col, lo.AsInt(),
                                                    hi.AsInt());
          } else if (AcceptKeyword("overlaps") && LooksLikeLiteral()) {
            PARADISE_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
            if (v.type() == ValueType::kPolygon) {
              return std::move(query).WhereOverlaps(col, *v.AsPolygon());
            }
            if (v.type() == ValueType::kCircle) {
              return std::move(query).WhereWithinCircle(col, v.AsCircle());
            }
          }
        }
      }
      pos_ = mark;  // not sargable: re-parse as a generic expression
    }
    PARADISE_ASSIGN_OR_RETURN(ExprPtr expr, ParseComparison());
    return std::move(query).Where(expr);
  }

  // ---- select list ----
  StatusOr<Query> ParseSelectList(Query query, bool has_group_by,
                                  size_t group_col) {
    if (Accept(TokenType::kStar)) {
      if (has_group_by) return Error("SELECT * with GROUP BY");
      return query;
    }
    std::vector<ExprPtr> projection;
    std::vector<exec::AggregatePtr> aggregates;
    do {
      if (Peek().type == TokenType::kIdentifier &&
          Peek(1).type == TokenType::kLParen && IsAggregateName(Peek().text)) {
        std::string fn = Advance().text;
        Advance();  // (
        if (fn == "count") {
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kStar, "*"));
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
          aggregates.push_back(exec::MakeCount());
        } else if (fn == "closest") {
          PARADISE_ASSIGN_OR_RETURN(ExprPtr shape, ParseExpr());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kComma, ","));
          PARADISE_ASSIGN_OR_RETURN(Value p, ParseLiteralValue());
          if (p.type() != ValueType::kPoint) {
            return Error("closest() needs a POINT");
          }
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
          aggregates.push_back(exec::MakeClosest(shape, p.AsPoint()));
        } else {
          PARADISE_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          PARADISE_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
          if (fn == "sum") aggregates.push_back(exec::MakeSum(arg));
          if (fn == "avg") aggregates.push_back(exec::MakeAvg(arg));
          if (fn == "min") aggregates.push_back(exec::MakeMin(arg));
          if (fn == "max") aggregates.push_back(exec::MakeMax(arg));
        }
      } else {
        PARADISE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        projection.push_back(e);
      }
    } while (Accept(TokenType::kComma));

    if (!aggregates.empty()) {
      if (!projection.empty()) {
        return Error("mixing aggregates and plain columns needs GROUP BY "
                     "columns only in the plain list");
      }
      std::vector<size_t> group_cols;
      if (has_group_by) group_cols.push_back(group_col);
      return std::move(query).GroupBy(std::move(group_cols),
                                      std::move(aggregates));
    }
    if (has_group_by) return Error("GROUP BY without aggregates");
    return std::move(query).Select(std::move(projection));
  }

  static bool IsAggregateName(const std::string& name) {
    return name == "count" || name == "sum" || name == "avg" ||
           name == "min" || name == "max" || name == "closest";
  }

  std::vector<Token> tokens_;
  const std::map<std::string, const core::ParallelTable*>& tables_;
  size_t pos_ = 0;
  size_t end_limit_ = SIZE_MAX;
  Token end_token_;  // synthetic kEnd for limited ranges

  const core::ParallelTable* table_ = nullptr;
  const exec::Schema* schema_ = nullptr;
};

}  // namespace

void SqlEngine::Register(const core::ParallelTable* table) {
  std::string name = table->def().name;
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  tables_[name] = table;
}

StatusOr<Query> SqlEngine::Bind(const std::string& statement) const {
  PARADISE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  Parser parser(std::move(tokens), tables_);
  return parser.ParseStatement();
}

StatusOr<exec::TupleVec> SqlEngine::Execute(
    const std::string& statement, core::QueryCoordinator* coord) const {
  PARADISE_ASSIGN_OR_RETURN(Query query, Bind(statement));
  return std::move(query).Run(coord);
}

StatusOr<std::string> SqlEngine::Explain(const std::string& statement) const {
  PARADISE_ASSIGN_OR_RETURN(Query query, Bind(statement));
  return query.Explain();
}

}  // namespace paradise::sql
