#ifndef PARADISE_SQL_ENGINE_H_
#define PARADISE_SQL_ENGINE_H_

#include <map>
#include <string>

#include "core/query_builder.h"

namespace paradise::sql {

/// The extended-SQL front end (Section 2.1: "the spatial data types
/// provide a rich set of spatial operators that can be accessed from an
/// extended version of SQL"). Supports the dialect the benchmark queries
/// are written in:
///
///   SELECT <exprs | aggregates> FROM <table>
///     [WHERE <conjunctions>] [GROUP BY <column>]
///     [ORDER BY <column> [ASC|DESC]]
///
/// with spatial literals POINT(x y), POLYGON((x y, x y, ...)),
/// CIRCLE(x y, r), BOX(x0 y0, x1 y1), DATE 'yyyy-mm-dd'; spatial
/// operators `a OVERLAPS b`, functions area(s), distance(a, b),
/// makebox(p, len); and aggregates count(*), sum/avg/min/max(e),
/// closest(shape, POINT(x y)).
///
/// Statements are bound against the registered tables, handed to the
/// cost-based optimizer (core::Query), and executed on the cluster.
class SqlEngine {
 public:
  /// Registers a table under its catalog name.
  void Register(const core::ParallelTable* table);

  /// Parses, optimizes, and runs a statement.
  StatusOr<exec::TupleVec> Execute(const std::string& statement,
                                   core::QueryCoordinator* coord) const;

  /// The physical plan the optimizer would choose.
  StatusOr<std::string> Explain(const std::string& statement) const;

 private:
  StatusOr<core::Query> Bind(const std::string& statement) const;

  std::map<std::string, const core::ParallelTable*> tables_;
};

}  // namespace paradise::sql

#endif  // PARADISE_SQL_ENGINE_H_
