#include "sql/lexer.h"

#include <cctype>

namespace paradise::sql {

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  auto error = [&](const std::string& message) {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(i));
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
      }
      t.type = TokenType::kIdentifier;
      t.text = input.substr(start, i - start);
      for (char& ch : t.text) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
          input[i + 1] == '.'))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.')) {
        if (input[i] == '.') is_float = true;
        ++i;
      }
      std::string num = input.substr(start, i - start);
      if (is_float) {
        t.type = TokenType::kFloat;
        t.float_value = std::stod(num);
      } else {
        t.type = TokenType::kInteger;
        t.int_value = std::stoll(num);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      while (i < input.size() && input[i] != '\'') ++i;
      if (i >= input.size()) return error("unterminated string literal");
      t.type = TokenType::kString;
      t.text = input.substr(start, i - start);
      ++i;  // closing quote
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case ',': t.type = TokenType::kComma; ++i; break;
      case '(': t.type = TokenType::kLParen; ++i; break;
      case ')': t.type = TokenType::kRParen; ++i; break;
      case '*': t.type = TokenType::kStar; ++i; break;
      case '.': t.type = TokenType::kDot; ++i; break;
      case '=': t.type = TokenType::kEq; ++i; break;
      case '<':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          t.type = TokenType::kLe;
          i += 2;
        } else if (i + 1 < input.size() && input[i + 1] == '>') {
          t.type = TokenType::kNe;
          i += 2;
        } else {
          t.type = TokenType::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          t.type = TokenType::kGe;
          i += 2;
        } else {
          t.type = TokenType::kGt;
          ++i;
        }
        break;
      case '!':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          t.type = TokenType::kNe;
          i += 2;
          break;
        }
        return error("unexpected '!'");
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    out.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = input.size();
  out.push_back(end);
  return out;
}

}  // namespace paradise::sql
