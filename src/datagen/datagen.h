#ifndef PARADISE_DATAGEN_DATAGEN_H_
#define PARADISE_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/rng.h"
#include "exec/tuple.h"
#include "geom/box.h"

namespace paradise::datagen {

/// Feature-type constants mirroring the benchmark schema (Section 3.1.1).
inline constexpr int64_t kNumLandCoverTypes = 16;
inline constexpr int64_t kOilFieldType = 7;       // landCover LCPYTYPE
inline constexpr int64_t kNumRoadTypes = 8;
inline constexpr int64_t kNumDrainageTypes = 21;
inline constexpr int64_t kNumPlaceTypes = 6;
inline constexpr int64_t kLargeCityType = 5;      // populatedPlaces type

/// Column indexes, fixed by the schemas below.
namespace col {
// populatedPlaces(id, containing_face, type, location, name)
inline constexpr size_t kPlaceId = 0, kPlaceFace = 1, kPlaceType = 2,
                        kPlaceLocation = 3, kPlaceName = 4;
// roads/drainage(id, type, shape)
inline constexpr size_t kLineId = 0, kLineType = 1, kLineShape = 2;
// landCover(id, type, shape)
inline constexpr size_t kLcId = 0, kLcType = 1, kLcShape = 2;
// raster(date, channel, data)
inline constexpr size_t kRasterDate = 0, kRasterChannel = 1, kRasterData = 2;
}  // namespace col

/// Sizing of the synthetic global data set. Defaults approximate the
/// paper's 4-node base data set (Table 3.1) shrunk ~64x so a full bench
/// run fits one machine; `scale` applies the paper's *resolution scaleup*
/// (Section 3.1.3) exactly as specified.
struct DataSetOptions {
  uint64_t seed = 42;
  /// Resolution scaleup factor S: 1 for the 4-node data set, 2 for 8
  /// nodes, 4 for 16 nodes.
  int scale = 1;
  /// Linear shrink applied to base tuple counts (1.0 = the paper's
  /// 250k/700k/1.74M/570k tuples — do not try that on a laptop).
  double size_fraction = 1.0 / 64;

  // Base (fraction=1, scale=1) cardinalities from Table 3.1.
  int64_t base_places = 250'000;
  int64_t base_roads = 700'000;
  int64_t base_drainage = 1'740'000;
  int64_t base_land_cover = 570'000;

  /// 360 dates x 4 channels = 1440 rasters, as in the paper. Shrinking
  /// the raster set reduces dates, keeping 4 channels.
  int num_dates = 360;
  int num_channels = 4;
  /// Base image resolution (paper: ~20 MB/image; here ~253 KB).
  uint32_t base_raster_size = 360;

  /// Number of population centers (skew generators).
  int num_centers = 24;
};

/// One synthetic satellite image (pixels are generated, then the loader
/// stores/tiles/compresses them onto a node).
struct RasterSpec {
  Date date;
  int64_t channel = 0;
  uint32_t height = 0;
  uint32_t width = 0;
  std::vector<uint16_t> pixels;
  geom::Box geo;
};

/// The synthetic global geo-spatial data set.
struct GlobalDataSet {
  geom::Box universe;  // lon/lat world box
  std::vector<exec::Tuple> populated_places;
  std::vector<exec::Tuple> roads;
  std::vector<exec::Tuple> drainage;
  std::vector<exec::Tuple> land_cover;
  std::vector<RasterSpec> rasters;

  int64_t VectorBytes() const;
  int64_t RasterBytes() const;
};

exec::Schema PlacesSchema();
exec::Schema RoadsSchema();
exec::Schema DrainageSchema();
exec::Schema LandCoverSchema();
exec::Schema RasterSchema();

/// Generates the data set; deterministic in `options.seed`.
GlobalDataSet GenerateGlobalDataSet(const DataSetOptions& options);

/// Adversarially clustered workloads for the adaptive-partitioning
/// ablation (skew studies, not paper reproduction): nearly all features
/// concentrate in a few hotspots, so uniform PBSM cell maps overload the
/// partitions that happen to own them.
struct ClusteredDataOptions {
  uint64_t seed = 7;
  /// Feature count before any polyline splitting.
  int64_t count = 10'000;
  /// Number of hotspots (coastline arcs / urban centers).
  int num_clusters = 6;
  /// Fraction of features drawn from hotspots instead of the uniform
  /// background: 0 = uniform data, 1 = fully clustered.
  double skew = 0.9;
  geom::Box universe = geom::Box(-180.0, -90.0, 180.0, 90.0);
};

/// Coastline-hugging polylines: roads follow a handful of long synthetic
/// coastline arcs with small lateral jitter. RoadsSchema-compatible
/// tuples (id, type, shape); deterministic in `options.seed`.
std::vector<exec::Tuple> GenerateCoastlineRoads(
    const ClusteredDataOptions& options);

/// Gaussian urban point clusters with Zipf-weighted center choice.
/// PlacesSchema-compatible tuples (id, face, type, location, name);
/// deterministic in `options.seed`.
std::vector<exec::Tuple> GenerateUrbanPoints(
    const ClusteredDataOptions& options);

/// The paper's resolution-scaleup primitives (exposed for tests):
/// scale a polygon S times: the original gains N*(S-1)/S points by edge
/// splitting, and S-1 regular "satellite" polygons (each with N*(S-1)/S
/// points, bounding box 1/10 the size) appear nearby.
std::vector<geom::Polygon> ScalePolygon(const geom::Polygon& polygon, int s,
                                        Rng* rng);
std::vector<geom::Polyline> ScalePolyline(const geom::Polyline& line, int s,
                                          Rng* rng);
std::vector<geom::Point> ScalePoint(const geom::Point& point, int s, Rng* rng);

}  // namespace paradise::datagen

#endif  // PARADISE_DATAGEN_DATAGEN_H_
