#include "datagen/datagen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace paradise::datagen {

using exec::Schema;
using exec::Tuple;
using exec::Value;
using exec::ValueType;
using geom::Box;
using geom::Point;
using geom::Polygon;
using geom::Polyline;

namespace {

constexpr double kWorldXMin = -180.0, kWorldXMax = 180.0;
constexpr double kWorldYMin = -90.0, kWorldYMax = 90.0;

/// Skewed placement: most features cluster around population centers
/// (the paper's Madison/Milwaukee vs Rhinelander skew), some are uniform.
struct Centers {
  std::vector<Point> points;
  std::vector<double> spread;

  Point Sample(Rng* rng) const {
    if (rng->NextBool(0.15)) {  // background: uniform over the world
      return Point{rng->NextDouble(kWorldXMin, kWorldXMax),
                   rng->NextDouble(kWorldYMin, kWorldYMax)};
    }
    size_t c = rng->NextUint(points.size());
    // Zipf-ish: low-index centers draw more features.
    while (c > 0 && rng->NextBool(0.35)) c /= 2;
    Point p{points[c].x + rng->NextGaussian() * spread[c],
            points[c].y + rng->NextGaussian() * spread[c]};
    p.x = std::clamp(p.x, kWorldXMin, kWorldXMax);
    p.y = std::clamp(p.y, kWorldYMin, kWorldYMax);
    return p;
  }
};

Centers MakeCenters(int n, Rng* rng) {
  Centers c;
  for (int i = 0; i < n; ++i) {
    // Keep centers off the poles (land bias).
    c.points.push_back(Point{rng->NextDouble(kWorldXMin + 10, kWorldXMax - 10),
                             rng->NextDouble(-55.0, 65.0)});
    c.spread.push_back(rng->NextDouble(2.0, 8.0));
  }
  return c;
}

Polygon RandomPolygon(const Point& center, double radius, int points,
                      Rng* rng) {
  std::vector<Point> ring;
  ring.reserve(points);
  for (int i = 0; i < points; ++i) {
    double angle = 2.0 * M_PI * i / points;
    double r = radius * (0.6 + 0.4 * rng->NextDouble());
    ring.push_back(
        Point{center.x + r * std::cos(angle), center.y + r * std::sin(angle)});
  }
  return Polygon(std::move(ring));
}

Polyline RandomPolyline(const Point& start, double step, int points,
                        Rng* rng) {
  std::vector<Point> pts;
  pts.reserve(points);
  Point cur = start;
  double heading = rng->NextDouble(0, 2.0 * M_PI);
  for (int i = 0; i < points; ++i) {
    pts.push_back(cur);
    heading += rng->NextDouble(-0.6, 0.6);  // meander
    cur.x += step * std::cos(heading);
    cur.y += step * std::sin(heading);
  }
  return Polyline(std::move(pts));
}

}  // namespace

std::vector<Polygon> ScalePolygon(const Polygon& polygon, int s, Rng* rng) {
  std::vector<Polygon> out;
  if (s <= 1) {
    out.push_back(polygon);
    return out;
  }
  size_t n = polygon.num_points();
  size_t extra = n * static_cast<size_t>(s - 1) / static_cast<size_t>(s);

  // Add detail to the original: break `extra` randomly chosen edges.
  std::vector<Point> ring = polygon.ring();
  for (size_t k = 0; k < extra; ++k) {
    size_t e = rng->NextUint(ring.size());
    const Point& a = ring[e];
    const Point& b = ring[(e + 1) % ring.size()];
    Point mid{(a.x + b.x) / 2, (a.y + b.y) / 2};
    // Slight perturbation: higher resolution reveals more detail.
    double jitter = geom::Distance(a, b) * 0.1;
    mid.x += rng->NextDouble(-jitter, jitter);
    mid.y += rng->NextDouble(-jitter, jitter);
    ring.insert(ring.begin() + static_cast<ptrdiff_t>(e) + 1, mid);
  }
  out.push_back(Polygon(std::move(ring)));

  // S-1 satellites: regular polygons inscribed in a bounding box one
  // tenth the size, placed randomly near the original.
  Box mbr = polygon.Mbr();
  double sat_radius = std::max(mbr.Width(), mbr.Height()) / 20.0;
  if (sat_radius <= 0) sat_radius = 1e-3;
  int sat_points = std::max<int>(3, static_cast<int>(extra));
  for (int k = 0; k < s - 1; ++k) {
    Point c{mbr.xmin + rng->NextDouble(-0.5, 1.5) * mbr.Width(),
            mbr.ymin + rng->NextDouble(-0.5, 1.5) * mbr.Height()};
    std::vector<Point> ring2;
    ring2.reserve(static_cast<size_t>(sat_points));
    for (int i = 0; i < sat_points; ++i) {
      double angle = 2.0 * M_PI * i / sat_points;
      ring2.push_back(Point{c.x + sat_radius * std::cos(angle),
                            c.y + sat_radius * std::sin(angle)});
    }
    out.push_back(Polygon(std::move(ring2)));
  }
  return out;
}

std::vector<Polyline> ScalePolyline(const Polyline& line, int s, Rng* rng) {
  std::vector<Polyline> out;
  if (s <= 1) {
    out.push_back(line);
    return out;
  }
  size_t n = line.num_points();
  size_t extra = n * static_cast<size_t>(s - 1) / static_cast<size_t>(s);

  std::vector<Point> pts = line.points();
  for (size_t k = 0; k < extra && pts.size() >= 2; ++k) {
    size_t e = rng->NextUint(pts.size() - 1);
    const Point& a = pts[e];
    const Point& b = pts[e + 1];
    Point mid{(a.x + b.x) / 2, (a.y + b.y) / 2};
    double jitter = geom::Distance(a, b) * 0.1;
    mid.x += rng->NextDouble(-jitter, jitter);
    mid.y += rng->NextDouble(-jitter, jitter);
    pts.insert(pts.begin() + static_cast<ptrdiff_t>(e) + 1, mid);
  }
  out.push_back(Polyline(std::move(pts)));

  // S-1 "tributaries" near the original.
  Box mbr = line.Mbr();
  double step = std::max(mbr.Width(), mbr.Height()) / 20.0;
  if (step <= 0) step = 1e-3;
  int sat_points = std::max<int>(2, static_cast<int>(extra));
  for (int k = 0; k < s - 1; ++k) {
    Point start{mbr.xmin + rng->NextDouble(0, 1) * mbr.Width(),
                mbr.ymin + rng->NextDouble(0, 1) * mbr.Height()};
    out.push_back(RandomPolyline(start, step, sat_points, rng));
  }
  return out;
}

std::vector<Point> ScalePoint(const Point& point, int s, Rng* rng) {
  std::vector<Point> out{point};
  for (int k = 0; k < s - 1; ++k) {
    out.push_back(Point{point.x + rng->NextGaussian() * 0.05,
                        point.y + rng->NextGaussian() * 0.05});
  }
  return out;
}

Schema PlacesSchema() {
  return Schema({{"id", ValueType::kString},
                 {"containing_face", ValueType::kString},
                 {"type", ValueType::kInt},
                 {"location", ValueType::kPoint},
                 {"name", ValueType::kString}});
}
Schema RoadsSchema() {
  return Schema({{"id", ValueType::kString},
                 {"type", ValueType::kInt},
                 {"shape", ValueType::kPolyline}});
}
Schema DrainageSchema() {
  return Schema({{"id", ValueType::kString},
                 {"type", ValueType::kInt},
                 {"shape", ValueType::kPolyline}});
}
Schema LandCoverSchema() {
  return Schema({{"id", ValueType::kString},
                 {"type", ValueType::kInt},
                 {"shape", ValueType::kPolygon}});
}
Schema RasterSchema() {
  return Schema({{"date", ValueType::kDate},
                 {"channel", ValueType::kInt},
                 {"data", ValueType::kRaster}});
}

int64_t GlobalDataSet::VectorBytes() const {
  int64_t n = 0;
  auto add = [&n](const std::vector<Tuple>& rows) {
    for (const Tuple& t : rows) {
      for (const Value& v : t.values) {
        n += static_cast<int64_t>(v.StorageBytes(/*deep=*/true));
      }
    }
  };
  add(populated_places);
  add(roads);
  add(drainage);
  add(land_cover);
  return n;
}

int64_t GlobalDataSet::RasterBytes() const {
  int64_t n = 0;
  for (const RasterSpec& r : rasters) {
    n += static_cast<int64_t>(r.pixels.size()) * 2;
  }
  return n;
}

GlobalDataSet GenerateGlobalDataSet(const DataSetOptions& options) {
  PARADISE_CHECK(options.scale >= 1);
  Rng rng(options.seed);
  GlobalDataSet ds;
  ds.universe = Box(kWorldXMin, kWorldYMin, kWorldXMax, kWorldYMax);
  Centers centers = MakeCenters(options.num_centers, &rng);
  const int s = options.scale;

  auto scaled_count = [&](int64_t base) {
    return static_cast<int64_t>(
        std::llround(static_cast<double>(base) * options.size_fraction));
  };

  // ---- populatedPlaces ----
  int64_t n_places = scaled_count(options.base_places);
  int64_t id = 0;
  for (int64_t i = 0; i < n_places; ++i) {
    Point base = centers.Sample(&rng);
    int64_t type = rng.NextBool(0.02) ? kLargeCityType
                                      : rng.NextInt(0, kNumPlaceTypes - 2);
    std::vector<Point> scaled = ScalePoint(base, s, &rng);
    for (size_t k = 0; k < scaled.size(); ++k) {
      const Point& p = scaled[k];
      std::string name;
      // A few well-known names so Query 5/8 select something. Only the
      // *original* point of each base location is named; resolution
      // scaleup satellites get fresh names, so the selectivity of the
      // name lookups stays constant across scales (as in the paper,
      // where Queries 5 and 8 stay flat under scaleup).
      if (k != 0) {
        name = "place-" + std::to_string(id);
      } else if (i == 17) {
        name = "Phoenix";
      } else if (i % 97 == 41) {
        name = "Louisville";
      } else {
        name = "place-" + std::to_string(id);
      }
      ds.populated_places.push_back(
          Tuple({Value("P" + std::to_string(id)),
                 Value("F" + std::to_string(id / 16)), Value(type), Value(p),
                 Value(std::move(name))}));
      ++id;
    }
  }

  // ---- roads ----
  int64_t n_roads = scaled_count(options.base_roads);
  id = 0;
  for (int64_t i = 0; i < n_roads; ++i) {
    Point start = centers.Sample(&rng);
    int points = static_cast<int>(rng.NextInt(6, 24));
    Polyline base = RandomPolyline(start, rng.NextDouble(0.05, 0.4), points,
                                   &rng);
    int64_t type = rng.NextInt(0, kNumRoadTypes - 1);
    for (Polyline& line : ScalePolyline(base, s, &rng)) {
      ds.roads.push_back(Tuple({Value("R" + std::to_string(id++)), Value(type),
                                Value(std::move(line))}));
    }
  }

  // ---- drainage ----
  int64_t n_drainage = scaled_count(options.base_drainage);
  id = 0;
  for (int64_t i = 0; i < n_drainage; ++i) {
    Point start = centers.Sample(&rng);
    int points = static_cast<int>(rng.NextInt(4, 16));
    Polyline base = RandomPolyline(start, rng.NextDouble(0.03, 0.25), points,
                                   &rng);
    int64_t type = rng.NextInt(0, kNumDrainageTypes - 1);
    for (Polyline& line : ScalePolyline(base, s, &rng)) {
      ds.drainage.push_back(Tuple({Value("D" + std::to_string(id++)),
                                   Value(type), Value(std::move(line))}));
    }
  }

  // ---- landCover ----
  int64_t n_lc = scaled_count(options.base_land_cover);
  id = 0;
  for (int64_t i = 0; i < n_lc; ++i) {
    Point center = centers.Sample(&rng);
    int points = static_cast<int>(rng.NextInt(8, 40));
    Polygon base =
        RandomPolygon(center, rng.NextDouble(0.05, 0.8), points, &rng);
    int64_t type = rng.NextInt(0, kNumLandCoverTypes - 1);
    for (Polygon& poly : ScalePolygon(base, s, &rng)) {
      ds.land_cover.push_back(Tuple({Value("L" + std::to_string(id++)),
                                     Value(type), Value(std::move(poly))}));
    }
  }

  // ---- rasters ----
  // Resolution scaleup multiplies the pixel count by S: columns double
  // first, then rows (exact byte doubling, as in Table 3.1).
  uint32_t h = options.base_raster_size;
  uint32_t w = options.base_raster_size;
  {
    int remaining = s;
    bool widen = true;
    while (remaining > 1) {
      PARADISE_CHECK_MSG(remaining % 2 == 0, "scale must be a power of two");
      if (widen) {
        w *= 2;
      } else {
        h *= 2;
      }
      widen = !widen;
      remaining /= 2;
    }
  }
  Date start_date = Date::FromYmd(1986, 1, 6);
  std::vector<int64_t> channels = {2, 3, 4, 5};
  PARADISE_CHECK(options.num_channels <= static_cast<int>(channels.size()));
  for (int d = 0; d < options.num_dates; ++d) {
    Date date = start_date.AddDays(d * 10);  // ~10-day composites, 10 years
    for (int c = 0; c < options.num_channels; ++c) {
      RasterSpec spec;
      spec.date = date;
      spec.channel = channels[static_cast<size_t>(c)];
      spec.height = h;
      spec.width = w;
      spec.geo = ds.universe;
      spec.pixels.resize(static_cast<size_t>(h) * w);
      // Smooth synthetic "climate" field, quantized so LZW compresses
      // realistically (real composites have large near-uniform regions).
      // Resolution scaleup over-samples the base grid; over-sampled
      // pixels are perturbed slightly so compression ratios do not become
      // artificially high (Section 3.1.3).
      uint32_t sx = w / options.base_raster_size;  // oversampling factors
      uint32_t sy = h / options.base_raster_size;
      double phase = 0.25 * d + 11.0 * c;
      for (uint32_t r = 0; r < h; ++r) {
        double lat = 1.0 - 2.0 * ((r / sy) + 0.5) / options.base_raster_size;
        for (uint32_t cc = 0; cc < w; ++cc) {
          double lon =
              2.0 * ((cc / sx) + 0.5) / options.base_raster_size - 1.0;
          double v = 2000.0 +
                     1500.0 * std::cos(3.0 * lat * M_PI) +
                     700.0 * std::sin(4.0 * lon * M_PI + phase) +
                     400.0 * std::sin(9.0 * (lat + lon) * M_PI - phase);
          uint16_t q = static_cast<uint16_t>(std::clamp(v, 0.0, 65000.0));
          q &= static_cast<uint16_t>(~0x3f);  // 64-level quantization
          if (r % sy != 0 || cc % sx != 0) {
            q = static_cast<uint16_t>(q + ((rng.Next() & 0x7) << 2));
          }
          spec.pixels[static_cast<size_t>(r) * w + cc] = q;
        }
      }
      ds.rasters.push_back(std::move(spec));
    }
  }
  return ds;
}

namespace {

/// Hotspot anchors for the clustered generators: cluster k gets a
/// deterministic position/extent inside `universe`, and a Zipf-ish weight
/// (low-index clusters draw more features) so even the clustered mass is
/// itself unevenly split.
struct Hotspot {
  Point center;
  double extent = 0.0;   // Gaussian sigma / coastline amplitude
  double heading = 0.0;  // coastline arc direction
};

std::vector<Hotspot> MakeHotspots(const Box& universe, int n, Rng* rng) {
  std::vector<Hotspot> out;
  double span = std::min(universe.Width(), universe.Height());
  for (int i = 0; i < n; ++i) {
    Hotspot h;
    h.center = Point{rng->NextDouble(universe.xmin, universe.xmax),
                     rng->NextDouble(universe.ymin, universe.ymax)};
    // Later clusters are tighter: the first hotspot is a metro sprawl,
    // the tail are pinpoints — the adversarial shape for uniform grids.
    h.extent = span * 0.02 / (1.0 + i);
    h.heading = rng->NextDouble(0, 2.0 * M_PI);
    out.push_back(h);
  }
  return out;
}

size_t PickHotspot(size_t n, Rng* rng) {
  size_t c = rng->NextUint(n);
  while (c > 0 && rng->NextBool(0.5)) c /= 2;  // Zipf-ish preference
  return c;
}

Point ClampTo(const Box& u, Point p) {
  p.x = std::clamp(p.x, u.xmin, u.xmax);
  p.y = std::clamp(p.y, u.ymin, u.ymax);
  return p;
}

}  // namespace

std::vector<Tuple> GenerateCoastlineRoads(const ClusteredDataOptions& options) {
  Rng rng(options.seed);
  const Box& u = options.universe;
  std::vector<Hotspot> coasts =
      MakeHotspots(u, std::max(1, options.num_clusters), &rng);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(options.count));
  for (int64_t i = 0; i < options.count; ++i) {
    int points = static_cast<int>(rng.NextInt(6, 24));
    Polyline line;
    if (rng.NextBool(options.skew)) {
      // Hug a coastline arc: walk along a gentle circular curve through
      // the hotspot, with lateral jitter a small fraction of the arc
      // amplitude — a dense 1-D filament in 2-D space.
      const Hotspot& c = coasts[PickHotspot(coasts.size(), &rng)];
      double radius = c.extent * 40.0;
      double arc0 = rng.NextDouble(0, 2.0 * M_PI);
      double arc_step = rng.NextDouble(0.002, 0.01);
      std::vector<Point> pts;
      pts.reserve(static_cast<size_t>(points));
      for (int k = 0; k < points; ++k) {
        double a = arc0 + k * arc_step;
        double jitter = c.extent * 0.1;
        pts.push_back(ClampTo(
            u, Point{c.center.x + radius * std::cos(c.heading + a) +
                         rng.NextGaussian() * jitter,
                     c.center.y + radius * std::sin(c.heading + a) +
                         rng.NextGaussian() * jitter}));
      }
      line = Polyline(std::move(pts));
    } else {
      Point start{rng.NextDouble(u.xmin, u.xmax),
                  rng.NextDouble(u.ymin, u.ymax)};
      line = RandomPolyline(start, rng.NextDouble(0.05, 0.4), points, &rng);
    }
    int64_t type = rng.NextInt(0, kNumRoadTypes - 1);
    out.push_back(Tuple({Value("CR" + std::to_string(i)), Value(type),
                         Value(std::move(line))}));
  }
  return out;
}

std::vector<Tuple> GenerateUrbanPoints(const ClusteredDataOptions& options) {
  Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  const Box& u = options.universe;
  std::vector<Hotspot> cities =
      MakeHotspots(u, std::max(1, options.num_clusters), &rng);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(options.count));
  for (int64_t i = 0; i < options.count; ++i) {
    Point p;
    if (rng.NextBool(options.skew)) {
      const Hotspot& c = cities[PickHotspot(cities.size(), &rng)];
      p = ClampTo(u, Point{c.center.x + rng.NextGaussian() * c.extent,
                           c.center.y + rng.NextGaussian() * c.extent});
    } else {
      p = Point{rng.NextDouble(u.xmin, u.xmax),
                rng.NextDouble(u.ymin, u.ymax)};
    }
    int64_t type = rng.NextBool(0.02) ? kLargeCityType
                                      : rng.NextInt(0, kNumPlaceTypes - 2);
    out.push_back(Tuple({Value("UP" + std::to_string(i)),
                         Value("UF" + std::to_string(i / 16)), Value(type),
                         Value(p), Value("urban-" + std::to_string(i))}));
  }
  return out;
}

}  // namespace paradise::datagen
