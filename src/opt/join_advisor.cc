#include "opt/join_advisor.h"

#include <algorithm>
#include <cmath>

namespace paradise::opt {

namespace {

double LogScale(double v) { return std::log2(v + 1.0); }

}  // namespace

JoinAdvisor::JoinAdvisor(const JoinAdvisorOptions& options)
    : options_(options) {}

double JoinAdvisor::Distance(const JoinFeatures& a, const JoinFeatures& b) {
  // Cardinalities dominate join cost, so they enter at full weight;
  // skew matters mostly for PBSM balance, half weight.
  double d = 0;
  double dr = LogScale(a.left_rows) - LogScale(b.left_rows);
  d += dr * dr;
  dr = LogScale(a.right_rows) - LogScale(b.right_rows);
  d += dr * dr;
  dr = 0.5 * (LogScale(a.left_skew) - LogScale(b.left_skew));
  d += dr * dr;
  dr = 0.5 * (LogScale(a.right_skew) - LogScale(b.right_skew));
  d += dr * dr;
  return std::sqrt(d);
}

bool JoinAdvisor::Predict(const JoinFeatures& f, JoinMethod method,
                          bool two_layer, double* seconds,
                          size_t* cells) const {
  // Relevant observations of this method, nearest first. Ties break on
  // insertion order (older first) so the prediction is a pure function of
  // the Record() sequence.
  struct Scored {
    double dist;
    size_t idx;
  };
  std::vector<Scored> near;
  for (size_t i = 0; i < store_.size(); ++i) {
    const JoinObservation& o = store_[i];
    if (o.method != method || o.two_layer != two_layer) continue;
    double d = Distance(f, o.features);
    if (d > options_.max_distance) continue;
    near.push_back({d, i});
  }
  if (near.size() < options_.min_observations) return false;
  std::sort(near.begin(), near.end(), [](const Scored& a, const Scored& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.idx < b.idx;
  });
  if (near.size() > options_.k) near.resize(options_.k);

  // Inverse-distance weighted mean of the neighbours' modeled seconds;
  // the resolution comes from the single nearest neighbour (resolution is
  // categorical — averaging two good grids can give a bad one).
  double wsum = 0, acc = 0;
  for (const Scored& s : near) {
    double w = 1.0 / (s.dist + 1e-6);
    wsum += w;
    acc += w * store_[s.idx].modeled_seconds;
  }
  *seconds = acc / wsum;
  *cells = store_[near.front().idx].cells_per_axis;
  return true;
}

JoinDecision JoinAdvisor::Choose(const JoinFeatures& f,
                                 bool two_layer) const {
  double pbsm_s = 0, inl_s = 0;
  size_t pbsm_cells = 0, inl_cells = 0;
  bool have_pbsm =
      Predict(f, JoinMethod::kPbsm, two_layer, &pbsm_s, &pbsm_cells);
  bool have_inl = Predict(f, JoinMethod::kIndexNestedLoops, two_layer,
                          &inl_s, &inl_cells);

  JoinDecision d;
  if (!have_pbsm && !have_inl) {
    // Cold start: today's fixed heuristic — PBSM, executor-default grid.
    return d;
  }
  if (have_pbsm && (!have_inl || pbsm_s <= inl_s)) {
    d.method = JoinMethod::kPbsm;
    d.cells_per_axis = pbsm_cells;
    d.predicted_seconds = pbsm_s;
  } else {
    d.method = JoinMethod::kIndexNestedLoops;
    d.predicted_seconds = inl_s;
  }
  d.from_feedback = true;
  return d;
}

void JoinAdvisor::Record(const JoinObservation& obs) {
  store_.push_back(obs);
  while (store_.size() > options_.capacity) store_.pop_front();
}

}  // namespace paradise::opt
