#ifndef PARADISE_OPT_PARTITION_TUNER_H_
#define PARADISE_OPT_PARTITION_TUNER_H_

#include <cstddef>

#include "exec/spatial_join.h"
#include "opt/stats.h"

namespace paradise::opt {

struct PartitionTunerOptions {
  /// Join partitions the tuned map targets (PbsmOptions::num_partitions).
  size_t num_partitions = 32;
  /// Stop refining once predicted max/mean partition load is below this.
  double skew_target = 1.5;
  /// Starting grid resolution; 0 = the PBSM auto rule (~16 cells per
  /// partition), same as PbsmOptions::cells_per_axis == 0.
  size_t min_cells_per_axis = 0;
  /// Refinement cap: resolution doubles until the skew target is met or
  /// this bound is hit (then the best grid found is returned).
  size_t max_cells_per_axis = 256;
};

/// A tuned PBSM partitioning plus the tuner's own prediction of how well
/// it balances — comparable against the observed PbsmJoinStats
/// max/mean to judge histogram quality.
struct TunedPartitioning {
  exec::AdaptiveCellGrid grid;
  /// Predicted max/mean partition load of `grid` under the input
  /// histograms (1.0 = perfectly even).
  double predicted_skew = 0.0;
  /// Estimated rows the prediction is based on (left + right).
  double predicted_rows = 0.0;
};

/// SATO-style partition tuning: derives non-uniform PBSM cell boundaries
/// and a density-aware cell→partition map from sampled density
/// histograms.
///
///  1. Both inputs' histograms are projected onto marginal density
///     profiles over the combined universe.
///  2. Cell edges per axis are recursive weighted-median (equi-depth)
///     splits of the marginals, so each grid column/row carries roughly
///     equal estimated load — hot regions get narrow cells, empty ones
///     wide cells.
///  3. Cells are packed into partitions by longest-processing-time
///     greedy assignment on their estimated loads (heaviest cell to the
///     least-loaded partition, deterministic tie-breaks).
///  4. If the predicted max/mean load still exceeds `skew_target`, the
///     resolution doubles and the tuner retries up to
///     `max_cells_per_axis`, returning the best grid seen.
///
/// Pure function of its inputs — bit-identical at any thread count.
/// `right` may be null (single-input tuning). Returns an empty grid
/// (Valid() == false) when both histograms are empty.
TunedPartitioning TunePartitions(const HistogramStats& left,
                                 const HistogramStats* right,
                                 const PartitionTunerOptions& options = {});

/// LPT packing of two-layer tiles into sweep-task groups: heaviest tile
/// into the least-loaded group, ties to the lowest tile / lowest group
/// index — the same deterministic bin packing TunePartitions uses for its
/// cell→partition map, exposed for
/// exec::TwoLayerOptions::group_packer. `loads[i]` is the combined
/// left+right entry count of (dense) tile i; returns one group id in
/// [0, num_groups) per tile. Pure function of its arguments.
std::vector<uint32_t> PackTileGroups(const std::vector<int64_t>& loads,
                                     size_t num_groups);

}  // namespace paradise::opt

#endif  // PARADISE_OPT_PARTITION_TUNER_H_
