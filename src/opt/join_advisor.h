#ifndef PARADISE_OPT_JOIN_ADVISOR_H_
#define PARADISE_OPT_JOIN_ADVISOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "exec/exec_context.h"

namespace paradise::opt {

enum class JoinMethod {
  kPbsm,              // partition based spatial-merge
  kIndexNestedLoops,  // R*-tree probe per outer tuple
};

/// Plan-time features of a spatial join, derived from table statistics
/// (HistogramStats) — never from the data itself, so computing them is
/// free at query time.
struct JoinFeatures {
  double left_rows = 0.0;
  double right_rows = 0.0;
  double left_skew = 1.0;   // HistogramStats::DensitySkew()
  double right_skew = 1.0;
  friend bool operator==(const JoinFeatures&, const JoinFeatures&) = default;
};

/// One completed join's feedback: what ran and what it cost in modeled
/// seconds (the virtual-clock phase time — deterministic, so learning
/// from it cannot perturb reproducibility).
struct JoinObservation {
  JoinFeatures features;
  JoinMethod method = JoinMethod::kPbsm;
  size_t cells_per_axis = 0;
  double modeled_seconds = 0.0;
  /// True when the join ran the two-layer class mini-join plan
  /// (catalog::PartitioningKind::kTwoLayer tables). Kept out of
  /// JoinFeatures: it is a hard plan-compatibility bit, not a distance
  /// dimension — Choose/Predict filter on it instead of blending costs
  /// across plans with different dedup work.
  bool two_layer = false;
  exec::PbsmJoinStats stats;  // zeroed for index nested loops
};

/// What the advisor picked for a query.
struct JoinDecision {
  JoinMethod method = JoinMethod::kPbsm;
  /// Grid resolution to use for PBSM; 0 = the executor's auto rule.
  size_t cells_per_axis = 0;
  /// True when the decision came from feedback; false = cold-start
  /// fallback to the fixed heuristic.
  bool from_feedback = false;
  /// Modeled seconds the feedback predicts for the chosen method
  /// (0 when cold).
  double predicted_seconds = 0.0;
};

struct JoinAdvisorOptions {
  /// Bounded feedback store: oldest observations are evicted first.
  size_t capacity = 64;
  /// Neighbours per method used for the cost prediction.
  size_t k = 3;
  /// A method is only predictable once it has this many observations
  /// within `max_distance` of the query point; otherwise the advisor
  /// falls back to the fixed heuristic for that comparison.
  size_t min_observations = 1;
  /// Feature-space radius (normalized log-domain distance) beyond which
  /// observations are considered irrelevant to a query.
  double max_distance = 2.0;
};

/// SOLAR-style cost-feedback join chooser: a bounded store of
/// (features → method, resolution, modeled seconds) observations, queried
/// by k-nearest-neighbour distance in normalized log-feature space. Cold
/// (no relevant evidence for both methods) it falls back to today's fixed
/// heuristic: PBSM at the executor's default resolution. All decisions
/// are pure functions of (store contents, features) and the store's
/// content is a pure function of the Record() sequence — callers must
/// Record() at a deterministic point (the coordinator's merge) to keep
/// advice bit-identical at any PARADISE_THREADS.
///
/// Not internally synchronized: owned and driven by the coordinator
/// thread, like the catalog.
class JoinAdvisor {
 public:
  explicit JoinAdvisor(const JoinAdvisorOptions& options = {});

  /// Picks the method + resolution for a join with features `f`.
  /// `two_layer` restricts the evidence to observations of that decluster
  /// mode — legacy and two-layer joins do different dedup work, so their
  /// modeled costs are not comparable.
  JoinDecision Choose(const JoinFeatures& f, bool two_layer = false) const;

  /// Feeds one completed join back into the store.
  void Record(const JoinObservation& obs);

  /// Drops all feedback (e.g. after a cost-model change).
  void Clear() { store_.clear(); }

  size_t observations() const { return store_.size(); }
  const std::deque<JoinObservation>& store() const { return store_; }

  /// Normalized log-domain feature distance (exposed for tests).
  static double Distance(const JoinFeatures& a, const JoinFeatures& b);

 private:
  /// kNN cost prediction for `method` among `two_layer`-mode
  /// observations; false when the store holds fewer than min_observations
  /// relevant points for it.
  bool Predict(const JoinFeatures& f, JoinMethod method, bool two_layer,
               double* seconds, size_t* cells) const;

  JoinAdvisorOptions options_;
  std::deque<JoinObservation> store_;
};

}  // namespace paradise::opt

#endif  // PARADISE_OPT_JOIN_ADVISOR_H_
