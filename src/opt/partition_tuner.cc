#include "opt/partition_tuner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace paradise::opt {

namespace {

/// Fine 1-D resolution the histogram marginals are rasterized onto before
/// quantile extraction. Finer than any tuned grid the tuner can emit, so
/// edge placement is never limited by this intermediate step.
constexpr size_t kMarginalBins = 1024;

/// Spreads one histogram's tile masses onto fine marginal bins over
/// `lo..hi` (the combined universe's extent on this axis), proportionally
/// to span overlap. Iteration order is fixed, so the result is a pure
/// function of the histogram.
void AccumulateMarginal(const HistogramStats& h, bool x_axis, double lo,
                        double hi, std::vector<double>* bins) {
  if (h.empty() || hi <= lo) return;
  const double inv_span = static_cast<double>(bins->size()) / (hi - lo);
  const size_t n_axis = x_axis ? h.nx : h.ny;
  const double axis_lo = x_axis ? h.universe.xmin : h.universe.ymin;
  const double step = (x_axis ? h.universe.Width() : h.universe.Height()) /
                      static_cast<double>(n_axis);
  for (size_t i = 0; i < n_axis; ++i) {
    double mass = 0;
    if (x_axis) {
      for (size_t y = 0; y < h.ny; ++y) mass += h.tile_at(i, y);
    } else {
      for (size_t x = 0; x < h.nx; ++x) mass += h.tile_at(x, i);
    }
    if (mass <= 0) continue;
    double t0 = axis_lo + static_cast<double>(i) * step;
    double t1 = t0 + step;
    double b0 = std::clamp((t0 - lo) * inv_span, 0.0,
                           static_cast<double>(bins->size()));
    double b1 = std::clamp((t1 - lo) * inv_span, 0.0,
                           static_cast<double>(bins->size()));
    if (b1 <= b0) {
      size_t b = std::min(static_cast<size_t>(b0), bins->size() - 1);
      (*bins)[b] += mass;
      continue;
    }
    double per_unit = mass / (b1 - b0);
    size_t first = static_cast<size_t>(b0);
    size_t last = std::min(static_cast<size_t>(std::ceil(b1)), bins->size());
    for (size_t b = first; b < last; ++b) {
      double cover = std::min(b1, static_cast<double>(b + 1)) -
                     std::max(b0, static_cast<double>(b));
      if (cover > 0) (*bins)[b] += per_unit * cover;
    }
  }
}

/// Recursive weighted-median split of the marginal's bin range into
/// `cells` equal-mass spans; emits interior edge positions (interpolated
/// inside the bin the split lands in). `cells` is a power of two.
void MedianSplit(const std::vector<double>& bins, size_t bin_lo,
                 size_t bin_hi, double mass, size_t cells, double lo,
                 double bin_width, std::vector<double>* edges) {
  if (cells <= 1 || bin_hi <= bin_lo) return;
  double half = mass / 2.0;
  double acc = 0;
  size_t b = bin_lo;
  double cut = static_cast<double>(bin_lo);
  for (; b < bin_hi; ++b) {
    if (acc + bins[b] >= half) {
      double need = half - acc;
      double frac = bins[b] > 0 ? need / bins[b] : 0.0;
      cut = static_cast<double>(b) + frac;
      break;
    }
    acc += bins[b];
  }
  if (b == bin_hi) {  // degenerate: all mass below; cut at range midpoint
    cut = (static_cast<double>(bin_lo) + static_cast<double>(bin_hi)) / 2.0;
    b = (bin_lo + bin_hi) / 2;
    acc = half;
  }
  size_t mid = std::clamp<size_t>(static_cast<size_t>(std::ceil(cut)),
                                  bin_lo + 1, bin_hi - (bin_hi > bin_lo + 1));
  // Mass actually left of the bin boundary `mid` (recursion uses whole
  // bins; the emitted edge keeps the fractional position).
  double left_mass = 0;
  for (size_t i = bin_lo; i < mid; ++i) left_mass += bins[i];
  MedianSplit(bins, bin_lo, mid, left_mass, cells / 2, lo, bin_width, edges);
  edges->push_back(lo + cut * bin_width);
  MedianSplit(bins, mid, bin_hi, mass - left_mass, cells / 2, lo, bin_width,
              edges);
}

/// Equi-depth edges over [lo, hi]: strictly increasing values with lo/hi
/// endpoints, at most `cells+1` of them. Falls back to uniform spacing on
/// zero mass; coincident quantiles (hot single bins) are merged away
/// rather than nudged, so a pathological marginal yields fewer, wider
/// cells instead of degenerate slivers.
std::vector<double> EquiDepthEdges(const std::vector<double>& bins,
                                   double lo, double hi, size_t cells) {
  std::vector<double> edges;
  edges.reserve(cells + 1);
  edges.push_back(lo);
  double mass = std::accumulate(bins.begin(), bins.end(), 0.0);
  double bin_width = (hi - lo) / static_cast<double>(bins.size());
  if (mass > 0) {
    MedianSplit(bins, 0, bins.size(), mass, cells, lo, bin_width, &edges);
  } else {
    for (size_t i = 1; i < cells; ++i) {
      edges.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(cells));
    }
  }
  edges.push_back(hi);
  double min_w = (hi - lo) * 1e-9;
  std::vector<double> kept;
  kept.reserve(edges.size());
  kept.push_back(edges.front());
  for (size_t i = 1; i + 1 < edges.size(); ++i) {
    if (edges[i] >= kept.back() + min_w && edges[i] + min_w <= hi) {
      kept.push_back(edges[i]);
    }
  }
  kept.push_back(hi);
  return kept;
}

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

TunedPartitioning TunePartitions(const HistogramStats& left,
                                 const HistogramStats* right,
                                 const PartitionTunerOptions& options) {
  TunedPartitioning best;
  geom::Box uni = left.universe;
  double rows = static_cast<double>(left.total_rows);
  if (right != nullptr) {
    uni.ExpandToInclude(right->universe);
    rows += static_cast<double>(right->total_rows);
  }
  if (uni.IsEmpty() || uni.Width() <= 0 || uni.Height() <= 0 || rows <= 0) {
    return best;
  }
  const size_t P = std::max<size_t>(1, options.num_partitions);

  std::vector<double> mx(kMarginalBins, 0.0), my(kMarginalBins, 0.0);
  AccumulateMarginal(left, /*x_axis=*/true, uni.xmin, uni.xmax, &mx);
  AccumulateMarginal(left, /*x_axis=*/false, uni.ymin, uni.ymax, &my);
  if (right != nullptr) {
    AccumulateMarginal(*right, true, uni.xmin, uni.xmax, &mx);
    AccumulateMarginal(*right, false, uni.ymin, uni.ymax, &my);
  }

  size_t cells = options.min_cells_per_axis;
  if (cells == 0) {
    // Start coarser than the uniform grid's 16-cells-per-partition rule:
    // equi-depth cells carry near-equal mass, so ~4 per partition already
    // balance, and wider cells replicate fewer spanning features. The
    // loop below doubles the resolution whenever the target is missed.
    cells = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(std::sqrt(4.0 * P))));
  }
  cells = NextPow2(cells);  // the median splitter halves recursively
  const size_t max_cells = std::max(cells, options.max_cells_per_axis);

  for (;; cells *= 2) {
    exec::AdaptiveCellGrid grid;
    grid.x_edges = EquiDepthEdges(mx, uni.xmin, uni.xmax, cells);
    grid.y_edges = EquiDepthEdges(my, uni.ymin, uni.ymax, cells);
    const size_t cx = grid.cells_x();
    const size_t cy = grid.cells_y();

    // Estimated load per tuned cell (both inputs), then LPT bin packing:
    // heaviest cell first into the least-loaded partition. Ties break on
    // lowest cell index / lowest partition index, so the map is a pure
    // function of the histograms.
    std::vector<double> load(cx * cy, 0.0);
    for (size_t y = 0; y < cy; ++y) {
      for (size_t x = 0; x < cx; ++x) {
        geom::Box cell = geom::Box(grid.x_edges[x], grid.y_edges[y],
                                       grid.x_edges[x + 1],
                                       grid.y_edges[y + 1]);
        double l = left.EstimateRows(cell);
        if (right != nullptr) l += right->EstimateRows(cell);
        load[y * cx + x] = l;
      }
    }
    std::vector<uint32_t> order(load.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&load](uint32_t a, uint32_t b) {
      if (load[a] != load[b]) return load[a] > load[b];
      return a < b;
    });
    grid.cell_part.assign(load.size(), 0);
    std::vector<double> part_load(P, 0.0);
    for (uint32_t c : order) {
      size_t target = 0;
      for (size_t p = 1; p < P; ++p) {
        if (part_load[p] < part_load[target]) target = p;
      }
      grid.cell_part[c] = static_cast<uint32_t>(target);
      part_load[target] += load[c];
    }

    double max_load = 0, sum_load = 0;
    size_t nonempty = 0;
    for (double l : part_load) {
      if (l <= 0) continue;
      ++nonempty;
      sum_load += l;
      max_load = std::max(max_load, l);
    }
    double skew = nonempty == 0
                      ? 1.0
                      : max_load / (sum_load / static_cast<double>(nonempty));

    if (best.grid.cell_part.empty() || skew < best.predicted_skew) {
      best.grid = std::move(grid);
      best.predicted_skew = skew;
      best.predicted_rows = sum_load;
    }
    if (skew <= options.skew_target || cells >= max_cells) break;
  }
  return best;
}

std::vector<uint32_t> PackTileGroups(const std::vector<int64_t>& loads,
                                     size_t num_groups) {
  std::vector<uint32_t> group(loads.size(), 0);
  if (num_groups <= 1 || loads.empty()) return group;
  std::vector<uint32_t> order(loads.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&loads](uint32_t a, uint32_t b) {
    if (loads[a] != loads[b]) return loads[a] > loads[b];
    return a < b;
  });
  std::vector<int64_t> group_load(num_groups, 0);
  for (uint32_t t : order) {
    size_t target = 0;
    for (size_t g = 1; g < num_groups; ++g) {
      if (group_load[g] < group_load[target]) target = g;
    }
    group[t] = static_cast<uint32_t>(target);
    group_load[target] += loads[t];
  }
  return group;
}

}  // namespace paradise::opt
