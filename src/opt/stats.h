#ifndef PARADISE_OPT_STATS_H_
#define PARADISE_OPT_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/box.h"

namespace paradise::opt {

/// Pure 64-bit mixer (SplitMix64 finalizer) — the same keyed-hash
/// determinism scheme sim::FaultInjector uses: every sampling decision is
/// a pure function of (seed, stable key), never of thread schedule, so
/// statistics are bit-identical at any PARADISE_THREADS setting.
uint64_t StatsHash(uint64_t seed, uint64_t key);

/// Deterministic uniform reservoir sample of spatial MBRs, implemented as
/// a bottom-k sketch: every row's priority is StatsHash(seed, ordinal) and
/// the reservoir keeps the `capacity` rows with the smallest priorities.
/// Unlike Algorithm R the result is independent of insertion order and two
/// reservoirs merge losslessly (bottom-k of a union = bottom-k of the
/// merged bottom-k sets), which is what lets per-fragment samplers built
/// in any order agree bit-for-bit with a single-pass global sampler.
class SpatialSampler {
 public:
  /// `salt` distinguishes streams (e.g. per fragment); rows are keyed by
  /// the ordinal passed to Add, so the caller controls the sampling frame.
  SpatialSampler(uint64_t seed, uint64_t salt, size_t capacity);

  /// Offers row `ordinal`'s MBR to the reservoir.
  void Add(uint64_t ordinal, const geom::Box& mbr);

  /// Folds `other`'s reservoir into this one (ordinals must be from
  /// disjoint frames or identical streams; priorities keep them fair).
  void Merge(const SpatialSampler& other);

  /// Rows offered so far (the population size the sample represents).
  int64_t seen() const { return seen_; }

  /// The sampled MBRs, in ascending priority order (deterministic).
  std::vector<geom::Box> Samples() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t priority;
    uint64_t ordinal;
    geom::Box mbr;
  };
  void Trim();

  uint64_t seed_;
  size_t capacity_;
  int64_t seen_ = 0;
  std::vector<Entry> entries_;  // kept <= 2*capacity, trimmed to capacity
};

/// Per-table optimizer statistics: a 2-D density histogram over the
/// table's universe plus per-tile (histogram-cell) MBR/cardinality
/// summaries, built from a SpatialSampler reservoir and scaled back to
/// the true cardinality. Persisted in the catalog; invalidated whenever
/// the table mutates, redeclusters, or a migration epoch bump changes
/// its physical layout.
struct HistogramStats {
  /// Tight bounds and estimated rows for one histogram tile.
  struct TileSummary {
    geom::Box mbr;           // union of sampled MBRs referenced here
    double est_rows = 0.0;   // sample count scaled to the table
    friend bool operator==(const TileSummary&, const TileSummary&) = default;
  };

  std::string table;
  geom::Box universe;        // histogram domain
  size_t nx = 0, ny = 0;     // tiles per axis
  int64_t total_rows = 0;    // table cardinality when built
  int64_t sampled_rows = 0;  // reservoir size used
  double avg_width = 0.0;    // mean sampled-MBR extents
  double avg_height = 0.0;
  uint64_t version = 0;      // bumped by the catalog on every rebuild
  /// Estimated rows per tile, row-major (y * nx + x); rows land in the
  /// tile containing their reference point (the MBR's clamped lower-left
  /// corner — the same rule that picks a feature's primary copy).
  std::vector<double> tile_rows;
  std::vector<TileSummary> tiles;

  bool empty() const { return nx == 0 || ny == 0; }
  double tile_at(size_t x, size_t y) const { return tile_rows[y * nx + x]; }

  /// max/mean estimated rows over non-empty tiles (the density-skew
  /// feature the advisor keys on; 1.0 = perfectly even).
  double DensitySkew() const;

  /// Estimated rows whose reference point falls inside `b` (tiles are
  /// counted by area overlap; a crude but monotone selectivity estimate).
  double EstimateRows(const geom::Box& b) const;

  friend bool operator==(const HistogramStats&, const HistogramStats&) =
      default;
};

struct BuildHistogramOptions {
  size_t tiles_per_axis = 64;
};

/// Builds the histogram from a reservoir: `samples` drawn from a table of
/// `total_rows` rows over `universe`. Deterministic in its inputs.
HistogramStats BuildHistogram(const std::string& table,
                              const geom::Box& universe,
                              const std::vector<geom::Box>& samples,
                              int64_t total_rows,
                              const BuildHistogramOptions& options = {});

}  // namespace paradise::opt

#endif  // PARADISE_OPT_STATS_H_
