#include "opt/stats.h"

#include <algorithm>
#include <cmath>

namespace paradise::opt {

uint64_t StatsHash(uint64_t seed, uint64_t key) {
  // SplitMix64 finalizer over the (seed, key) pair; same construction as
  // the fault injector's decision hashes.
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (key + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

SpatialSampler::SpatialSampler(uint64_t seed, uint64_t salt, size_t capacity)
    : seed_(StatsHash(seed, 0x5a17'0000 ^ salt)), capacity_(capacity) {
  entries_.reserve(capacity_ + capacity_ / 2 + 1);
}

void SpatialSampler::Add(uint64_t ordinal, const geom::Box& mbr) {
  ++seen_;
  entries_.push_back(Entry{StatsHash(seed_, ordinal), ordinal, mbr});
  if (entries_.size() >= 2 * capacity_ + 2) Trim();
}

void SpatialSampler::Merge(const SpatialSampler& other) {
  seen_ += other.seen_;
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
  Trim();
}

void SpatialSampler::Trim() {
  if (entries_.size() <= capacity_) return;
  auto less = [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.ordinal < b.ordinal;
  };
  std::nth_element(entries_.begin(), entries_.begin() + capacity_ - 1,
                   entries_.end(), less);
  entries_.resize(capacity_);
}

std::vector<geom::Box> SpatialSampler::Samples() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.ordinal < b.ordinal;
  });
  if (sorted.size() > capacity_) sorted.resize(capacity_);
  std::vector<geom::Box> out;
  out.reserve(sorted.size());
  for (const Entry& e : sorted) out.push_back(e.mbr);
  return out;
}

namespace {

// Clamped tile coordinate of v along [lo, lo + n*step).
size_t TileCoord(double v, double lo, double inv_step, size_t n) {
  double t = (v - lo) * inv_step;
  if (!(t > 0)) return 0;
  size_t i = static_cast<size_t>(t);
  return i >= n ? n - 1 : i;
}

}  // namespace

double HistogramStats::DensitySkew() const {
  double max = 0, sum = 0;
  int64_t nonempty = 0;
  for (double r : tile_rows) {
    if (r <= 0) continue;
    ++nonempty;
    sum += r;
    if (r > max) max = r;
  }
  if (nonempty == 0) return 1.0;
  return max / (sum / static_cast<double>(nonempty));
}

double HistogramStats::EstimateRows(const geom::Box& b) const {
  if (empty() || b.IsEmpty()) return 0.0;
  double step_x = universe.Width() / static_cast<double>(nx);
  double step_y = universe.Height() / static_cast<double>(ny);
  if (step_x <= 0 || step_y <= 0) return 0.0;
  size_t x0 = TileCoord(b.xmin, universe.xmin, 1.0 / step_x, nx);
  size_t x1 = TileCoord(b.xmax, universe.xmin, 1.0 / step_x, nx);
  size_t y0 = TileCoord(b.ymin, universe.ymin, 1.0 / step_y, ny);
  size_t y1 = TileCoord(b.ymax, universe.ymin, 1.0 / step_y, ny);
  double est = 0.0;
  for (size_t y = y0; y <= y1; ++y) {
    for (size_t x = x0; x <= x1; ++x) {
      double rows = tile_at(x, y);
      if (rows <= 0) continue;
      geom::Box tile = geom::Box(
          universe.xmin + static_cast<double>(x) * step_x,
          universe.ymin + static_cast<double>(y) * step_y,
          universe.xmin + static_cast<double>(x + 1) * step_x,
          universe.ymin + static_cast<double>(y + 1) * step_y);
      geom::Box overlap = tile.Intersection(b);
      if (overlap.IsEmpty()) continue;
      double frac = overlap.Area() / tile.Area();
      est += rows * (frac > 1.0 ? 1.0 : frac);
    }
  }
  return est;
}

HistogramStats BuildHistogram(const std::string& table,
                              const geom::Box& universe,
                              const std::vector<geom::Box>& samples,
                              int64_t total_rows,
                              const BuildHistogramOptions& options) {
  HistogramStats h;
  h.table = table;
  h.universe = universe;
  h.total_rows = total_rows;
  h.sampled_rows = static_cast<int64_t>(samples.size());
  if (options.tiles_per_axis == 0 || universe.IsEmpty() ||
      universe.Width() <= 0 || universe.Height() <= 0) {
    return h;
  }
  h.nx = options.tiles_per_axis;
  h.ny = options.tiles_per_axis;
  h.tile_rows.assign(h.nx * h.ny, 0.0);
  h.tiles.assign(h.nx * h.ny, HistogramStats::TileSummary{});
  if (samples.empty()) return h;

  double inv_step_x = static_cast<double>(h.nx) / universe.Width();
  double inv_step_y = static_cast<double>(h.ny) / universe.Height();
  double scale = static_cast<double>(total_rows) /
                 static_cast<double>(samples.size());
  double sum_w = 0, sum_h = 0;
  for (const geom::Box& mbr : samples) {
    sum_w += mbr.Width();
    sum_h += mbr.Height();
    // Reference point: the MBR's lower-left corner clamped into the
    // universe — matches SpatialGrid's primary-copy rule so histogram
    // density tracks where features are actually homed.
    double rx = std::clamp(mbr.xmin, universe.xmin, universe.xmax);
    double ry = std::clamp(mbr.ymin, universe.ymin, universe.ymax);
    size_t cell = TileCoord(ry, universe.ymin, inv_step_y, h.ny) * h.nx +
                  TileCoord(rx, universe.xmin, inv_step_x, h.nx);
    h.tile_rows[cell] += scale;
    HistogramStats::TileSummary& t = h.tiles[cell];
    t.mbr.ExpandToInclude(mbr);
    t.est_rows += scale;
  }
  h.avg_width = sum_w / static_cast<double>(samples.size());
  h.avg_height = sum_h / static_cast<double>(samples.size());
  return h;
}

}  // namespace paradise::opt
