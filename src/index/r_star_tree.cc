#include "index/r_star_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace paradise::index {

using geom::Box;
using geom::Circle;
using geom::Point;

RStarTree::RStarTree() : root_(std::make_unique<Node>(0)) {}
RStarTree::~RStarTree() = default;

RStarTree::Node* RStarTree::ChooseSubtree(Node* node, const Box& box,
                                          int target_level,
                                          std::vector<Node*>* path) {
  while (node->level > target_level) {
    path->push_back(node);
    size_t best = 0;
    if (node->level == target_level + 1) {
      // Children are at the target level: minimize overlap enlargement
      // (the R* leaf-level rule), ties by area enlargement.
      double best_overlap_inc = 0.0, best_area_inc = 0.0;
      bool first = true;
      for (size_t i = 0; i < node->entries.size(); ++i) {
        Box enlarged = node->entries[i].box.Union(box);
        double overlap_before = 0.0, overlap_after = 0.0;
        for (size_t j = 0; j < node->entries.size(); ++j) {
          if (j == i) continue;
          overlap_before +=
              node->entries[i].box.Intersection(node->entries[j].box).Area();
          overlap_after +=
              enlarged.Intersection(node->entries[j].box).Area();
        }
        double overlap_inc = overlap_after - overlap_before;
        double area_inc = enlarged.Area() - node->entries[i].box.Area();
        if (first || overlap_inc < best_overlap_inc ||
            (overlap_inc == best_overlap_inc && area_inc < best_area_inc)) {
          first = false;
          best = i;
          best_overlap_inc = overlap_inc;
          best_area_inc = area_inc;
        }
      }
    } else {
      // Minimize area enlargement, ties by area.
      double best_area_inc = 0.0, best_area = 0.0;
      bool first = true;
      for (size_t i = 0; i < node->entries.size(); ++i) {
        double area = node->entries[i].box.Area();
        double area_inc = node->entries[i].box.Union(box).Area() - area;
        if (first || area_inc < best_area_inc ||
            (area_inc == best_area_inc && area < best_area)) {
          first = false;
          best = i;
          best_area_inc = area_inc;
          best_area = area;
        }
      }
    }
    node = node->entries[best].child.get();
  }
  path->push_back(node);
  return node;
}

std::pair<std::vector<RStarTree::Entry>, std::vector<RStarTree::Entry>>
RStarTree::SplitEntries(std::vector<Entry> entries) {
  // R* split: pick the axis with the least margin sum over candidate
  // distributions, then the distribution with least overlap (ties: area).
  const size_t total = entries.size();
  const size_t min_k = kMinEntries;
  const size_t max_k = total - kMinEntries;

  auto margin_sum_for_axis = [&](bool by_x, std::vector<Entry>* sorted) {
    std::sort(sorted->begin(), sorted->end(),
              [&](const Entry& a, const Entry& b) {
                double alo = by_x ? a.box.xmin : a.box.ymin;
                double blo = by_x ? b.box.xmin : b.box.ymin;
                if (alo != blo) return alo < blo;
                double ahi = by_x ? a.box.xmax : a.box.ymax;
                double bhi = by_x ? b.box.xmax : b.box.ymax;
                return ahi < bhi;
              });
    // Prefix/suffix MBRs.
    std::vector<Box> prefix(total), suffix(total);
    Box b;
    for (size_t i = 0; i < total; ++i) {
      b.ExpandToInclude((*sorted)[i].box);
      prefix[i] = b;
    }
    b = Box();
    for (size_t i = total; i-- > 0;) {
      b.ExpandToInclude((*sorted)[i].box);
      suffix[i] = b;
    }
    double margin = 0.0;
    for (size_t k = min_k; k <= max_k; ++k) {
      margin += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    return std::make_tuple(margin, prefix, suffix);
  };

  // Child pointers make entries move-only, so evaluate both axes by
  // sorting the one real vector twice.
  std::vector<Entry> work = std::move(entries);
  auto [margin_x, prefix_x, suffix_x] = margin_sum_for_axis(true, &work);
  auto [margin_y, prefix_y, suffix_y] = margin_sum_for_axis(false, &work);

  bool use_x = margin_x <= margin_y;
  if (use_x) {
    // Re-sort back to x order.
    auto [m, p, s] = margin_sum_for_axis(true, &work);
    prefix_x = std::move(p);
    suffix_x = std::move(s);
    (void)m;
  }
  const std::vector<Box>& prefix = use_x ? prefix_x : prefix_y;
  const std::vector<Box>& suffix = use_x ? suffix_x : suffix_y;

  size_t best_k = min_k;
  double best_overlap = 0.0, best_area = 0.0;
  bool first = true;
  for (size_t k = min_k; k <= max_k; ++k) {
    double overlap = prefix[k - 1].Intersection(suffix[k]).Area();
    double area = prefix[k - 1].Area() + suffix[k].Area();
    if (first || overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      first = false;
      best_k = k;
      best_overlap = overlap;
      best_area = area;
    }
  }

  std::vector<Entry> left, right;
  left.reserve(best_k);
  right.reserve(total - best_k);
  for (size_t i = 0; i < total; ++i) {
    if (i < best_k) {
      left.push_back(std::move(work[i]));
    } else {
      right.push_back(std::move(work[i]));
    }
  }
  return {std::move(left), std::move(right)};
}

void RStarTree::InsertEntry(Entry entry, int target_level,
                            bool allow_reinsert) {
  std::vector<Node*> path;
  Node* node = ChooseSubtree(root_.get(), entry.box, target_level, &path);
  node->entries.push_back(std::move(entry));

  std::vector<Entry> reinserts;
  int reinsert_level = -1;

  // Walk back up handling overflows.
  for (size_t i = path.size(); i-- > 0;) {
    Node* cur = path[i];
    if (cur->entries.size() <= kMaxEntries) continue;

    bool is_root = (i == 0);
    if (!is_root && allow_reinsert && reinserts.empty()) {
      // Forced reinsert: remove the kReinsertCount entries whose centers
      // are farthest from the node MBR center.
      Box mbr = cur->Mbr();
      Point center = mbr.Center();
      std::vector<size_t> order(cur->entries.size());
      for (size_t j = 0; j < order.size(); ++j) order[j] = j;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return geom::DistanceSquared(cur->entries[a].box.Center(), center) >
               geom::DistanceSquared(cur->entries[b].box.Center(), center);
      });
      std::vector<bool> remove(cur->entries.size(), false);
      for (size_t j = 0; j < kReinsertCount; ++j) remove[order[j]] = true;
      std::vector<Entry> kept;
      kept.reserve(cur->entries.size() - kReinsertCount);
      for (size_t j = 0; j < cur->entries.size(); ++j) {
        if (remove[j]) {
          reinserts.push_back(std::move(cur->entries[j]));
        } else {
          kept.push_back(std::move(cur->entries[j]));
        }
      }
      cur->entries = std::move(kept);
      reinsert_level = cur->level;
      continue;
    }

    // Split.
    auto [left_entries, right_entries] = SplitEntries(std::move(cur->entries));
    cur->entries = std::move(left_entries);
    auto sibling = std::make_unique<Node>(cur->level);
    sibling->entries = std::move(right_entries);

    Entry sibling_entry;
    sibling_entry.box = sibling->Mbr();
    sibling_entry.child = std::move(sibling);

    if (is_root) {
      auto new_root = std::make_unique<Node>(cur->level + 1);
      Entry old_root_entry;
      old_root_entry.box = root_->Mbr();
      old_root_entry.child = std::move(root_);
      new_root->entries.push_back(std::move(old_root_entry));
      new_root->entries.push_back(std::move(sibling_entry));
      root_ = std::move(new_root);
      ++height_;
    } else {
      path[i - 1]->entries.push_back(std::move(sibling_entry));
    }
  }

  // Refresh MBRs along the path (cheap: recompute child entry boxes).
  for (size_t i = path.size(); i-- > 1;) {
    Node* parent = path[i - 1];
    for (Entry& e : parent->entries) {
      if (e.child.get() == path[i]) {
        e.box = path[i]->Mbr();
        break;
      }
    }
  }
  // The split may have replaced root_; also refresh the top-level boxes.
  if (!root_->entries.empty() && root_->level > 0) {
    for (Entry& e : root_->entries) {
      if (e.child != nullptr) e.box = e.child->Mbr();
    }
  }

  for (Entry& r : reinserts) {
    InsertEntry(std::move(r), reinsert_level, /*allow_reinsert=*/false);
  }
}

void RStarTree::Insert(const Box& box, RowId id) {
  Entry e;
  e.box = box;
  e.id = id;
  InsertEntry(std::move(e), /*target_level=*/0, /*allow_reinsert=*/true);
  ++size_;
}

bool RStarTree::EraseRec(Node* node, const Box& box, RowId id,
                         std::vector<Entry>* orphans) {
  if (node->level == 0) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == id && node->entries[i].box == box) {
        node->entries.erase(node->entries.begin() + i);
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    Entry& e = node->entries[i];
    if (!e.box.Intersects(box)) continue;
    if (!EraseRec(e.child.get(), box, id, orphans)) continue;
    if (e.child->entries.size() < kMinEntries) {
      // Condense: orphan the whole underfull child for reinsertion.
      std::unique_ptr<Node> child = std::move(e.child);
      node->entries.erase(node->entries.begin() + i);
      for (Entry& oe : child->entries) {
        // Tag orphan entries with their level via the child node level.
        if (child->level == 0) {
          orphans->push_back(std::move(oe));
        } else {
          // Internal orphan: reinsert the subtree entry at its level. We
          // encode the level through the child pointer's node level.
          orphans->push_back(std::move(oe));
        }
      }
    } else {
      e.box = e.child->Mbr();
    }
    return true;
  }
  return false;
}

bool RStarTree::Erase(const Box& box, RowId id) {
  std::vector<Entry> orphans;
  if (!EraseRec(root_.get(), box, id, &orphans)) return false;
  --size_;
  // Shrink the root if it became a unary internal node.
  while (root_->level > 0 && root_->entries.size() == 1) {
    root_ = std::move(root_->entries[0].child);
    --height_;
  }
  if (root_->level > 0 && root_->entries.empty()) {
    root_ = std::make_unique<Node>(0);
    height_ = 1;
  }
  for (Entry& o : orphans) {
    int level = o.child == nullptr ? 0 : o.child->level + 1;
    // Condensing removes at most one tree level per erase, so orphan
    // subtrees always fit under the (possibly shrunk) root.
    PARADISE_CHECK(level <= root_->level);
    InsertEntry(std::move(o), level, /*allow_reinsert=*/false);
  }
  return true;
}

void RStarTree::SearchOverlap(
    const Box& query, const std::function<bool(const Box&, RowId)>& fn,
    int64_t* nodes_visited) const {
  ForEachOverlap(query, fn, nodes_visited);
}

RStarTree::FlatView::FlatView(const RStarTree& tree) {
  // BFS numbering: children get their id when their parent's entries are
  // emitted. Ids only choose memory layout — the probe pushes children in
  // entry order off its own stack, so traversal matches the node tree's.
  std::vector<const Node*> nodes{tree.root_.get()};
  node_begin_.push_back(0);
  for (size_t n = 0; n < nodes.size(); ++n) {
    const Node* node = nodes[n];
    leaf_.push_back(node->level == 0 ? 1 : 0);
    for (const Entry& e : node->entries) {
      mbr_.push_back(e.box.xmin);
      mbr_.push_back(e.box.xmax);
      mbr_.push_back(e.box.ymin);
      mbr_.push_back(e.box.ymax);
      if (node->level == 0) {
        payload_.push_back(e.id);
      } else {
        payload_.push_back(nodes.size());
        nodes.push_back(e.child.get());
      }
    }
    node_begin_.push_back(static_cast<uint32_t>(payload_.size()));
  }
}

void RStarTree::SearchCircle(
    const Circle& circle, const std::function<bool(const Box&, RowId)>& fn,
    int64_t* nodes_visited) const {
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (nodes_visited != nullptr) ++*nodes_visited;
    for (const Entry& e : node->entries) {
      if (e.box.DistanceTo(circle.center) > circle.radius) continue;
      if (node->level == 0) {
        if (!fn(e.box, e.id)) return;
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
}

RStarTree::NearestResult RStarTree::Nearest(const Point& p,
                                            int64_t* nodes_visited) const {
  struct QueueItem {
    double dist;
    const Node* node;
    bool operator>(const QueueItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue;
  queue.push({0.0, root_.get()});
  NearestResult best;
  double best_dist = std::numeric_limits<double>::infinity();
  while (!queue.empty()) {
    QueueItem item = queue.top();
    queue.pop();
    if (item.dist >= best_dist) break;
    if (nodes_visited != nullptr) ++*nodes_visited;
    for (const Entry& e : item.node->entries) {
      double d = e.box.DistanceTo(p);
      if (d >= best_dist) continue;
      if (item.node->level == 0) {
        best.found = true;
        best.box = e.box;
        best.id = e.id;
        best.distance = d;
        best_dist = d;
      } else {
        queue.push({d, e.child.get()});
      }
    }
  }
  return best;
}

size_t RStarTree::CountNodes(const Node* node) const {
  size_t n = 1;
  if (node->level > 0) {
    for (const Entry& e : node->entries) n += CountNodes(e.child.get());
  }
  return n;
}

size_t RStarTree::num_nodes() const { return CountNodes(root_.get()); }

Box RStarTree::bounds() const { return root_->Mbr(); }

bool RStarTree::CheckNode(const Node* node, int expected_leaf_level,
                          bool is_root) const {
  if (!is_root) {
    if (node->entries.size() < kMinEntries ||
        node->entries.size() > kMaxEntries) {
      return false;
    }
  } else if (node->entries.size() > kMaxEntries) {
    return false;
  }
  if (node->level == 0) return node->level == expected_leaf_level;
  for (const Entry& e : node->entries) {
    if (e.child == nullptr) return false;
    if (e.child->level != node->level - 1) return false;
    if (!e.box.Contains(e.child->Mbr())) return false;
    if (!CheckNode(e.child.get(), expected_leaf_level, false)) return false;
  }
  return true;
}

bool RStarTree::CheckInvariants() const {
  if (static_cast<int>(height_) != root_->level + 1) return false;
  return CheckNode(root_.get(), 0, true);
}

std::unique_ptr<RStarTree> RStarTree::BulkLoadStr(
    std::vector<std::pair<Box, RowId>> entries) {
  auto tree = std::make_unique<RStarTree>();
  if (entries.empty()) return tree;

  // Sort-Tile-Recursive: sort by x-center, cut into vertical slabs of
  // ~sqrt(P) pages each, sort each slab by y-center, pack runs of
  // kMaxEntries into leaves; then build upper levels the same way over
  // node MBR centers.
  struct Item {
    Box box;
    Entry entry;
  };
  std::vector<Item> items;
  items.reserve(entries.size());
  for (auto& [box, id] : entries) {
    Item it;
    it.box = box;
    it.entry.box = box;
    it.entry.id = id;
    items.push_back(std::move(it));
  }

  int level = 0;
  while (items.size() > kMaxEntries) {
    size_t pages = (items.size() + kMaxEntries - 1) / kMaxEntries;
    size_t slabs = static_cast<size_t>(std::ceil(std::sqrt(
        static_cast<double>(pages))));
    size_t per_slab = (items.size() + slabs - 1) / slabs;

    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      return a.box.Center().x < b.box.Center().x;
    });
    std::vector<Item> next;
    for (size_t s = 0; s * per_slab < items.size(); ++s) {
      size_t lo = s * per_slab;
      size_t hi = std::min(items.size(), lo + per_slab);
      std::sort(items.begin() + lo, items.begin() + hi,
                [](const Item& a, const Item& b) {
                  return a.box.Center().y < b.box.Center().y;
                });
      for (size_t i = lo; i < hi; i += kMaxEntries) {
        size_t end = std::min(hi, i + kMaxEntries);
        auto node = std::make_unique<Node>(level);
        for (size_t j = i; j < end; ++j) {
          node->entries.push_back(std::move(items[j].entry));
        }
        Item parent_item;
        parent_item.box = node->Mbr();
        parent_item.entry.box = parent_item.box;
        parent_item.entry.child = std::move(node);
        next.push_back(std::move(parent_item));
      }
    }
    items = std::move(next);
    ++level;
  }

  auto root = std::make_unique<Node>(level);
  for (Item& it : items) root->entries.push_back(std::move(it.entry));
  tree->root_ = std::move(root);
  tree->height_ = static_cast<size_t>(level) + 1;
  tree->size_ = entries.size();
  return tree;
}

}  // namespace paradise::index
