#ifndef PARADISE_INDEX_R_STAR_TREE_H_
#define PARADISE_INDEX_R_STAR_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/box.h"
#include "geom/circle.h"
#include "geom/point.h"

namespace paradise::index {

/// R*-tree [Beck90] over (MBR, row-id) entries — the spatial access method
/// SHORE provides to Paradise. Supports dynamic insertion with forced
/// reinsertion, R* splits, deletion with reinsert-on-underflow, overlap and
/// circle queries, and branch-and-bound nearest neighbour.
///
/// Like the B+-tree, nodes are memory resident and sized to a page; probe
/// cost is charged by the executor per level / per node visited, using the
/// `nodes_visited` out-parameters.
class RStarTree {
 private:
  struct Node;  // fwd: ProbeScratch stores (opaque) node pointers

 public:
  using RowId = uint64_t;

  /// ~Page-sized nodes: an entry is an MBR (32 B) plus a pointer/id.
  static constexpr size_t kMaxEntries = 64;
  static constexpr size_t kMinEntries = kMaxEntries * 4 / 10;  // 40% (R*)
  static constexpr size_t kReinsertCount = kMaxEntries * 3 / 10;  // 30% (R*)

  RStarTree();
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  void Insert(const geom::Box& box, RowId id);

  /// Removes one (box, id) entry; returns false if absent.
  bool Erase(const geom::Box& box, RowId id);

  /// Calls `fn(box, id)` for every entry whose MBR intersects `query`.
  /// Return false from `fn` to stop. `nodes_visited`, when non-null, is
  /// incremented per tree node touched (the probe's I/O footprint).
  void SearchOverlap(const geom::Box& query,
                     const std::function<bool(const geom::Box&, RowId)>& fn,
                     int64_t* nodes_visited = nullptr) const;

  /// Caller-owned traversal stack for batched probes: reusing one across
  /// a probe loop makes each ForEachOverlap allocation-free.
  struct ProbeScratch {
    std::vector<const Node*> stack;
  };

  /// SearchOverlap with the callback as a template parameter (inlined, no
  /// std::function dispatch) and an optional reusable stack — the hot
  /// probe path of the index spatial join. Traversal order and
  /// `nodes_visited` counting are identical to SearchOverlap. Entry boxes
  /// are tested with raw min/max compares, skipping Box::Intersects'
  /// IsEmpty checks: stored boxes are either well-formed or the ±inf
  /// empty default, and both an empty entry box and an empty query fail
  /// the raw compares just as Intersects reports.
  template <typename Fn>
  void ForEachOverlap(const geom::Box& query, Fn&& fn,
                      int64_t* nodes_visited = nullptr,
                      ProbeScratch* scratch = nullptr) const {
    ProbeScratch local;
    ProbeScratch& s = scratch != nullptr ? *scratch : local;
    s.stack.clear();
    s.stack.push_back(root_.get());
    const double qxmin = query.xmin, qymin = query.ymin;
    const double qxmax = query.xmax, qymax = query.ymax;
    while (!s.stack.empty()) {
      const Node* node = s.stack.back();
      s.stack.pop_back();
      if (nodes_visited != nullptr) ++*nodes_visited;
      for (const Entry& e : node->entries) {
        if (e.box.xmin > qxmax || qxmin > e.box.xmax || e.box.ymin > qymax ||
            qymin > e.box.ymax) {
          continue;
        }
        if (node->level == 0) {
          if (!fn(e.box, e.id)) return;
        } else {
          s.stack.push_back(e.child.get());
        }
      }
    }
  }

  /// Immutable struct-of-arrays snapshot of the tree for batched probes:
  /// every entry MBR flattened into contiguous coordinate arrays, CSR by
  /// node id (root = 0). A probe loop over thousands of query boxes scans
  /// flat doubles instead of pointer-chasing 48-byte Entry records.
  /// Traversal order, callback order, and node-visit counts are identical
  /// to ForEachOverlap, so modeled probe charges are unchanged. The view
  /// is valid until the tree is modified, and is safe to share read-only
  /// across threads.
  class FlatView {
   public:
    explicit FlatView(const RStarTree& tree);

    /// Reusable traversal stack (node ids) for allocation-free probes.
    using ProbeStack = std::vector<uint32_t>;

    template <typename Fn>
    void ForEachOverlap(const geom::Box& query, Fn&& fn,
                        int64_t* nodes_visited, ProbeStack* stack) const {
      stack->clear();
      stack->push_back(0);
      const double qxmin = query.xmin, qymin = query.ymin;
      const double qxmax = query.xmax, qymax = query.ymax;
      uint32_t hits[kMaxEntries];
      while (!stack->empty()) {
        const uint32_t n = stack->back();
        stack->pop_back();
        if (nodes_visited != nullptr) ++*nodes_visited;
        const uint32_t s = node_begin_[n];
        const uint32_t cnt = node_begin_[n + 1] - s;
        // Branchless overlap scan over the node's interleaved MBR block
        // (one contiguous stream, 32 B per entry), compress-storing the
        // matching slots; the hit list keeps entry order, so traversal
        // matches the branchy per-entry form exactly.
        const double* m = &mbr_[static_cast<size_t>(s) * 4];
        uint32_t nh = 0;
        for (uint32_t k = 0; k < cnt; ++k) {
          const bool hit = (m[k * 4] <= qxmax) & (qxmin <= m[k * 4 + 1]) &
                           (m[k * 4 + 2] <= qymax) & (qymin <= m[k * 4 + 3]);
          hits[nh] = s + k;
          nh += hit;
        }
        if (leaf_[n] != 0) {
          for (uint32_t h = 0; h < nh; ++h) {
            const uint32_t k = hits[h];
            const double* e = &mbr_[static_cast<size_t>(k) * 4];
            if (!fn(geom::Box(e[0], e[2], e[1], e[3]), payload_[k])) return;
          }
        } else {
          for (uint32_t h = 0; h < nh; ++h) {
            stack->push_back(static_cast<uint32_t>(payload_[hits[h]]));
          }
        }
      }
    }

   private:
    std::vector<double> mbr_;  // 4 doubles/entry: xlo, xhi, ylo, yhi
    std::vector<uint64_t> payload_;   // child node id (internal) or row id
    std::vector<uint32_t> node_begin_;  // node id -> first entry; sentinel
    std::vector<uint8_t> leaf_;         // node id -> is a leaf
  };

  /// Entries whose MBR lies within `circle`'s reach (MBR min-distance to
  /// the center <= radius). The exact geometry test is the caller's.
  void SearchCircle(const geom::Circle& circle,
                    const std::function<bool(const geom::Box&, RowId)>& fn,
                    int64_t* nodes_visited = nullptr) const;

  struct NearestResult {
    bool found = false;
    geom::Box box;
    RowId id = 0;
    double distance = 0.0;  // MBR min-distance to the query point
  };
  /// Branch-and-bound nearest entry by MBR distance [Rous95].
  NearestResult Nearest(const geom::Point& p,
                        int64_t* nodes_visited = nullptr) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t height() const { return height_; }
  size_t num_nodes() const;
  geom::Box bounds() const;

  /// Structural invariants for property tests: parent MBRs cover children,
  /// occupancy bounds, uniform leaf depth.
  bool CheckInvariants() const;

  /// Sort-Tile-Recursive bulk load — the packed build used when loading
  /// the benchmark database (Query 1, [DeWi94]-style packing).
  static std::unique_ptr<RStarTree> BulkLoadStr(
      std::vector<std::pair<geom::Box, RowId>> entries);

 private:
  struct Node;
  struct Entry {
    geom::Box box;
    RowId id = 0;                  // leaf payload
    std::unique_ptr<Node> child;   // internal payload
  };
  struct Node {
    explicit Node(int lvl) : level(lvl) {}
    int level;  // 0 = leaf
    std::vector<Entry> entries;
    geom::Box Mbr() const {
      geom::Box b;
      for (const Entry& e : entries) b.ExpandToInclude(e.box);
      return b;
    }
  };

  void InsertEntry(Entry entry, int target_level, bool allow_reinsert);
  Node* ChooseSubtree(Node* node, const geom::Box& box, int target_level,
                      std::vector<Node*>* path);
  void HandleOverflow(std::vector<Node*>& path, size_t node_index,
                      bool allow_reinsert, std::vector<Entry>* reinserts);
  static std::pair<std::vector<Entry>, std::vector<Entry>> SplitEntries(
      std::vector<Entry> entries);
  bool EraseRec(Node* node, const geom::Box& box, RowId id,
                std::vector<Entry>* orphans);
  size_t CountNodes(const Node* node) const;
  bool CheckNode(const Node* node, int expected_leaf_level,
                 bool is_root) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace paradise::index

#endif  // PARADISE_INDEX_R_STAR_TREE_H_
