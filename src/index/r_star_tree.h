#ifndef PARADISE_INDEX_R_STAR_TREE_H_
#define PARADISE_INDEX_R_STAR_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/box.h"
#include "geom/circle.h"
#include "geom/point.h"

namespace paradise::index {

/// R*-tree [Beck90] over (MBR, row-id) entries — the spatial access method
/// SHORE provides to Paradise. Supports dynamic insertion with forced
/// reinsertion, R* splits, deletion with reinsert-on-underflow, overlap and
/// circle queries, and branch-and-bound nearest neighbour.
///
/// Like the B+-tree, nodes are memory resident and sized to a page; probe
/// cost is charged by the executor per level / per node visited, using the
/// `nodes_visited` out-parameters.
class RStarTree {
 public:
  using RowId = uint64_t;

  /// ~Page-sized nodes: an entry is an MBR (32 B) plus a pointer/id.
  static constexpr size_t kMaxEntries = 64;
  static constexpr size_t kMinEntries = kMaxEntries * 4 / 10;  // 40% (R*)
  static constexpr size_t kReinsertCount = kMaxEntries * 3 / 10;  // 30% (R*)

  RStarTree();
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  void Insert(const geom::Box& box, RowId id);

  /// Removes one (box, id) entry; returns false if absent.
  bool Erase(const geom::Box& box, RowId id);

  /// Calls `fn(box, id)` for every entry whose MBR intersects `query`.
  /// Return false from `fn` to stop. `nodes_visited`, when non-null, is
  /// incremented per tree node touched (the probe's I/O footprint).
  void SearchOverlap(const geom::Box& query,
                     const std::function<bool(const geom::Box&, RowId)>& fn,
                     int64_t* nodes_visited = nullptr) const;

  /// Entries whose MBR lies within `circle`'s reach (MBR min-distance to
  /// the center <= radius). The exact geometry test is the caller's.
  void SearchCircle(const geom::Circle& circle,
                    const std::function<bool(const geom::Box&, RowId)>& fn,
                    int64_t* nodes_visited = nullptr) const;

  struct NearestResult {
    bool found = false;
    geom::Box box;
    RowId id = 0;
    double distance = 0.0;  // MBR min-distance to the query point
  };
  /// Branch-and-bound nearest entry by MBR distance [Rous95].
  NearestResult Nearest(const geom::Point& p,
                        int64_t* nodes_visited = nullptr) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t height() const { return height_; }
  size_t num_nodes() const;
  geom::Box bounds() const;

  /// Structural invariants for property tests: parent MBRs cover children,
  /// occupancy bounds, uniform leaf depth.
  bool CheckInvariants() const;

  /// Sort-Tile-Recursive bulk load — the packed build used when loading
  /// the benchmark database (Query 1, [DeWi94]-style packing).
  static std::unique_ptr<RStarTree> BulkLoadStr(
      std::vector<std::pair<geom::Box, RowId>> entries);

 private:
  struct Node;
  struct Entry {
    geom::Box box;
    RowId id = 0;                  // leaf payload
    std::unique_ptr<Node> child;   // internal payload
  };
  struct Node {
    explicit Node(int lvl) : level(lvl) {}
    int level;  // 0 = leaf
    std::vector<Entry> entries;
    geom::Box Mbr() const {
      geom::Box b;
      for (const Entry& e : entries) b.ExpandToInclude(e.box);
      return b;
    }
  };

  void InsertEntry(Entry entry, int target_level, bool allow_reinsert);
  Node* ChooseSubtree(Node* node, const geom::Box& box, int target_level,
                      std::vector<Node*>* path);
  void HandleOverflow(std::vector<Node*>& path, size_t node_index,
                      bool allow_reinsert, std::vector<Entry>* reinserts);
  static std::pair<std::vector<Entry>, std::vector<Entry>> SplitEntries(
      std::vector<Entry> entries);
  bool EraseRec(Node* node, const geom::Box& box, RowId id,
                std::vector<Entry>* orphans);
  size_t CountNodes(const Node* node) const;
  bool CheckNode(const Node* node, int expected_leaf_level,
                 bool is_root) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace paradise::index

#endif  // PARADISE_INDEX_R_STAR_TREE_H_
