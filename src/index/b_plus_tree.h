#ifndef PARADISE_INDEX_B_PLUS_TREE_H_
#define PARADISE_INDEX_B_PLUS_TREE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"

namespace paradise::index {

/// In-memory B+-tree with page-sized nodes, supporting duplicate keys,
/// deletion with rebalancing, and ordered range scans. Non-spatial indexed
/// selections (Queries 5, 8's outer probe) run through this.
///
/// The tree is the memory-resident image of a SHORE B+-tree; the executor
/// charges one random page I/O per level for cold probes (see
/// exec/cost_charges.h) so index cost scales with height() exactly as the
/// paper discusses ("the index size decreases at a logarithmic rate").
///
/// Duplicate keys are handled by ordering entries on (key, value).
template <typename K, typename V = uint64_t, typename Less = std::less<K>>
class BPlusTree {
 public:
  /// Fanout chosen so a node is roughly one 8 KB page.
  static constexpr size_t kMaxEntries = 128;
  static constexpr size_t kMinEntries = kMaxEntries / 4;

  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  void Insert(const K& key, const V& value) {
    SplitResult split = InsertInto(root_.get(), key, value);
    if (split.happened) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(split.separator);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split.right));
      root_ = std::move(new_root);
      ++height_;
    }
    ++size_;
  }

  /// Removes one (key, value) entry; returns false if absent.
  bool Erase(const K& key, const V& value) {
    if (!EraseFrom(root_.get(), key, value)) return false;
    if (!root_->leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children[0]);
      --height_;
    }
    --size_;
    return true;
  }

  /// All values stored under `key`.
  std::vector<V> Find(const K& key) const {
    std::vector<V> out;
    RangeScan(key, key, [&](const K&, const V& v) {
      out.push_back(v);
      return true;
    });
    return out;
  }

  bool Contains(const K& key) const { return !Find(key).empty(); }

  /// Visits entries with lo <= key <= hi in key order; the callback
  /// returns false to stop early.
  void RangeScan(const K& lo, const K& hi,
                 const std::function<bool(const K&, const V&)>& fn) const {
    // Descend to the leftmost leaf that could hold `lo`: duplicates equal
    // to a separator may live in the child left of it, so use a strict
    // lower bound here (inserts send equal keys right of the separator).
    const Node* node = root_.get();
    while (!node->leaf) {
      size_t i = 0;
      while (i < node->keys.size() && less_(node->keys[i], lo)) ++i;
      node = node->children[i].get();
    }
    // Iterate within this leaf, then continue through the leaf chain.
    while (node != nullptr) {
      for (size_t i = 0; i < node->keys.size(); ++i) {
        if (less_(node->keys[i], lo)) continue;
        if (less_(hi, node->keys[i])) return;
        if (!fn(node->keys[i], node->values[i])) return;
      }
      node = node->next_leaf;
    }
  }

  /// Visits every entry in key order.
  void ScanAll(const std::function<bool(const K&, const V&)>& fn) const {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children[0].get();
    while (node != nullptr) {
      for (size_t i = 0; i < node->keys.size(); ++i) {
        if (!fn(node->keys[i], node->values[i])) return;
      }
      node = node->next_leaf;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of levels (1 = just a leaf). The executor charges one page
  /// read per level on a cold probe.
  size_t height() const { return height_; }

  /// Structural invariants, for property tests: ordering within nodes,
  /// separator correctness, and occupancy bounds.
  bool CheckInvariants() const { return CheckNode(root_.get(), true); }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<K> keys;
    // Leaf payload:
    std::vector<V> values;
    Node* next_leaf = nullptr;
    Node* prev_leaf = nullptr;
    // Internal payload: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
  };

  struct SplitResult {
    bool happened = false;
    K separator{};
    std::unique_ptr<Node> right;
  };

  bool KeyValueLess(const K& a, const V& va, const K& b, const V& vb) const {
    if (less_(a, b)) return true;
    if (less_(b, a)) return false;
    return va < vb;
  }

  // Child index to descend into for `key` (first child whose range may
  // contain it).
  size_t UpperBoundChild(const Node* node, const K& key) const {
    size_t i = 0;
    while (i < node->keys.size() && !less_(key, node->keys[i])) ++i;
    return i;
  }

  SplitResult InsertInto(Node* node, const K& key, const V& value) {
    if (node->leaf) {
      size_t pos = 0;
      while (pos < node->keys.size() &&
             KeyValueLess(node->keys[pos], node->values[pos], key, value)) {
        ++pos;
      }
      node->keys.insert(node->keys.begin() + pos, key);
      node->values.insert(node->values.begin() + pos, value);
      if (node->keys.size() <= kMaxEntries) return {};
      return SplitLeaf(node);
    }
    size_t i = UpperBoundChild(node, key);
    SplitResult child_split = InsertInto(node->children[i].get(), key, value);
    if (!child_split.happened) return {};
    node->keys.insert(node->keys.begin() + i, child_split.separator);
    node->children.insert(node->children.begin() + i + 1,
                          std::move(child_split.right));
    if (node->children.size() <= kMaxEntries) return {};
    return SplitInternal(node);
  }

  SplitResult SplitLeaf(Node* node) {
    auto right = std::make_unique<Node>(/*leaf=*/true);
    size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(node->values.begin() + mid, node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next_leaf = node->next_leaf;
    if (right->next_leaf != nullptr) right->next_leaf->prev_leaf = right.get();
    right->prev_leaf = node;
    node->next_leaf = right.get();
    SplitResult r;
    r.happened = true;
    r.separator = right->keys.front();
    r.right = std::move(right);
    return r;
  }

  SplitResult SplitInternal(Node* node) {
    auto right = std::make_unique<Node>(/*leaf=*/false);
    size_t mid = node->keys.size() / 2;
    K separator = node->keys[mid];
    right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    for (size_t i = mid + 1; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    SplitResult r;
    r.happened = true;
    r.separator = separator;
    r.right = std::move(right);
    return r;
  }

  bool EraseFrom(Node* node, const K& key, const V& value) {
    if (node->leaf) {
      for (size_t i = 0; i < node->keys.size(); ++i) {
        if (!less_(node->keys[i], key) && !less_(key, node->keys[i]) &&
            node->values[i] == value) {
          node->keys.erase(node->keys.begin() + i);
          node->values.erase(node->values.begin() + i);
          return true;
        }
      }
      return false;
    }
    size_t i = UpperBoundChild(node, key);
    // Duplicates of `key` may straddle child boundaries; probe leftward
    // siblings while the separator equals the key.
    while (true) {
      if (EraseFrom(node->children[i].get(), key, value)) {
        RebalanceChild(node, i);
        return true;
      }
      if (i > 0 && !less_(node->keys[i - 1], key) &&
          !less_(key, node->keys[i - 1])) {
        --i;
        continue;
      }
      return false;
    }
  }

  void RebalanceChild(Node* parent, size_t i) {
    Node* child = parent->children[i].get();
    size_t entries = child->leaf ? child->keys.size() : child->children.size();
    if (entries >= kMinEntries) return;

    Node* left = i > 0 ? parent->children[i - 1].get() : nullptr;
    Node* right =
        i + 1 < parent->children.size() ? parent->children[i + 1].get() : nullptr;

    auto left_size = [&](Node* n) {
      return n == nullptr ? 0 : (n->leaf ? n->keys.size() : n->children.size());
    };

    // Borrow from a sibling with spare entries; otherwise merge.
    if (left != nullptr && left_size(left) > kMinEntries) {
      if (child->leaf) {
        child->keys.insert(child->keys.begin(), left->keys.back());
        child->values.insert(child->values.begin(), left->values.back());
        left->keys.pop_back();
        left->values.pop_back();
        parent->keys[i - 1] = child->keys.front();
      } else {
        child->keys.insert(child->keys.begin(), parent->keys[i - 1]);
        parent->keys[i - 1] = left->keys.back();
        left->keys.pop_back();
        child->children.insert(child->children.begin(),
                               std::move(left->children.back()));
        left->children.pop_back();
      }
      return;
    }
    if (right != nullptr && left_size(right) > kMinEntries) {
      if (child->leaf) {
        child->keys.push_back(right->keys.front());
        child->values.push_back(right->values.front());
        right->keys.erase(right->keys.begin());
        right->values.erase(right->values.begin());
        parent->keys[i] = right->keys.front();
      } else {
        child->keys.push_back(parent->keys[i]);
        parent->keys[i] = right->keys.front();
        right->keys.erase(right->keys.begin());
        child->children.push_back(std::move(right->children.front()));
        right->children.erase(right->children.begin());
      }
      return;
    }
    // Merge with a sibling.
    size_t li = (left != nullptr) ? i - 1 : i;  // merge children[li], children[li+1]
    Node* a = parent->children[li].get();
    Node* b = parent->children[li + 1].get();
    if (a->leaf) {
      a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
      a->values.insert(a->values.end(), b->values.begin(), b->values.end());
      a->next_leaf = b->next_leaf;
      if (b->next_leaf != nullptr) b->next_leaf->prev_leaf = a;
    } else {
      a->keys.push_back(parent->keys[li]);
      a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
      for (auto& c : b->children) a->children.push_back(std::move(c));
    }
    parent->keys.erase(parent->keys.begin() + li);
    parent->children.erase(parent->children.begin() + li + 1);
  }

  bool CheckNode(const Node* node, bool is_root) const {
    if (node->leaf) {
      if (!is_root && node->keys.size() < 1) return false;
      for (size_t i = 1; i < node->keys.size(); ++i) {
        if (less_(node->keys[i], node->keys[i - 1])) return false;
      }
      return node->keys.size() == node->values.size();
    }
    if (node->children.size() != node->keys.size() + 1) return false;
    if (!is_root && node->children.size() < 2) return false;
    for (size_t i = 1; i < node->keys.size(); ++i) {
      if (less_(node->keys[i], node->keys[i - 1])) return false;
    }
    for (const auto& c : node->children) {
      if (!CheckNode(c.get(), false)) return false;
    }
    return true;
  }

  Less less_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace paradise::index

#endif  // PARADISE_INDEX_B_PLUS_TREE_H_
