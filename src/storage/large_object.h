#ifndef PARADISE_STORAGE_LARGE_OBJECT_H_
#define PARADISE_STORAGE_LARGE_OBJECT_H_

#include <cstdint>
#include <mutex>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace paradise::storage {

/// Handle to a large object: a run of physically consecutive pages on one
/// volume. Tiles of chunked arrays are stored this way (Section 2.5.1), so
/// reading a whole tile is one seek plus sequential transfer.
struct LobId {
  uint32_t volume = 0;
  PageNo first_page = kInvalidPageNo;
  uint32_t num_pages = 0;
  uint32_t length = 0;  // payload bytes

  bool valid() const { return first_page != kInvalidPageNo; }
  friend bool operator==(const LobId&, const LobId&) = default;
};

/// Stores byte blobs larger than a record across dedicated page runs.
/// SHORE's "objects can be arbitrarily large" facility.
class LargeObjectStore {
 public:
  LargeObjectStore(BufferPool* pool, DiskVolume* volume)
      : pool_(pool), volume_(volume) {}

  LargeObjectStore(const LargeObjectStore&) = delete;
  LargeObjectStore& operator=(const LargeObjectStore&) = delete;

  StatusOr<LobId> Write(const uint8_t* data, size_t size);
  StatusOr<LobId> Write(const ByteBuffer& data) {
    return Write(data.data(), data.size());
  }

  StatusOr<ByteBuffer> Read(const LobId& id) const;

  /// Reads only `[offset, offset+length)`, touching only the pages that
  /// range covers — the "fetch only the needed subarray" behaviour. Pages
  /// are pinned in batched windows (BufferPool::PinRange), so a cold read
  /// of a run costs one positioning charge plus sequential transfers.
  StatusOr<ByteBuffer> ReadRange(const LobId& id, size_t offset,
                                 size_t length) const;

  /// Advisory readahead of the object's whole page run into the pool.
  void Prefetch(const LobId& id) const {
    pool_->Prefetch(PageId{id.volume, id.first_page}, id.num_pages);
  }

  void Free(const LobId& id);

  uint32_t volume_id() const { return volume_->volume_id(); }
  size_t pool_capacity() const { return pool_->capacity(); }

 private:
  static constexpr size_t kBytesPerPage = Page::kPayloadSize;
  /// Pages pinned at once by ReadRange; bounds pin pressure on small pools
  /// while still batching two shard-run groups per window.
  static constexpr uint32_t kPinWindowPages = 32;

  BufferPool* const pool_;
  DiskVolume* const volume_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_LARGE_OBJECT_H_
