#ifndef PARADISE_STORAGE_SLOTTED_PAGE_H_
#define PARADISE_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <cstring>

#include "common/logging.h"
#include "storage/page.h"

namespace paradise::storage {

/// View over a Page's payload interpreted as a slotted record page.
///
/// Layout (within Page::payload()):
///   [0..2)  u16 slot_count
///   [2..4)  u16 data_tail   -- records occupy [data_tail, kPayloadSize)
///   [4..4+4*slot_count) slot directory: {u16 offset, u16 length}
///                        offset == 0 marks an empty slot
/// Records are appended downward from the end; deletes leave holes that
/// Compact() squeezes out when needed.
class SlottedPage {
 public:
  explicit SlottedPage(Page* page) : page_(page) {}

  static constexpr uint16_t kSlotDirStart = 4;
  static constexpr uint16_t kEmptyOffset = 0;

  void Init() {
    SetSlotCount(0);
    SetDataTail(static_cast<uint16_t>(Page::kPayloadSize));
  }

  /// True if the page header looks uninitialized (fresh from allocation).
  bool NeedsInit() const { return DataTail() == 0; }

  uint16_t SlotCount() const { return GetU16(0); }
  uint16_t DataTail() const { return GetU16(2); }

  bool SlotInUse(uint16_t slot) const {
    return slot < SlotCount() && SlotOffset(slot) != kEmptyOffset;
  }

  uint16_t SlotOffset(uint16_t slot) const {
    return GetU16(kSlotDirStart + 4 * slot);
  }
  uint16_t SlotLength(uint16_t slot) const {
    return GetU16(kSlotDirStart + 4 * slot + 2);
  }

  const uint8_t* RecordData(uint16_t slot) const {
    return page_->payload() + SlotOffset(slot);
  }

  /// Contiguous free bytes available for a new record, assuming it may
  /// need a fresh slot directory entry.
  size_t ContiguousFree() const {
    size_t dir_end = kSlotDirStart + 4 * static_cast<size_t>(SlotCount());
    size_t tail = DataTail();
    return tail > dir_end + 4 ? tail - dir_end - 4 : 0;
  }

  /// Free bytes recoverable by compaction (holes + contiguous).
  size_t TotalFree() const {
    size_t used = 0;
    for (uint16_t s = 0; s < SlotCount(); ++s) {
      if (SlotInUse(s)) used += SlotLength(s);
    }
    size_t dir_end = kSlotDirStart + 4 * static_cast<size_t>(SlotCount());
    size_t avail = Page::kPayloadSize - dir_end - used;
    return avail > 4 ? avail - 4 : 0;
  }

  /// Inserts a record, compacting if necessary. Returns the slot, or -1 if
  /// the page genuinely cannot hold it.
  int InsertRecord(const uint8_t* data, uint16_t len) {
    // Reuse an empty slot if present (no directory growth needed then).
    int free_slot = -1;
    for (uint16_t s = 0; s < SlotCount(); ++s) {
      if (!SlotInUse(s)) {
        free_slot = s;
        break;
      }
    }
    size_t needed = len + (free_slot < 0 ? 4u : 0u);
    size_t dir_end = kSlotDirStart + 4 * static_cast<size_t>(SlotCount());
    size_t contiguous = DataTail() > dir_end ? DataTail() - dir_end : 0;
    if (contiguous < needed) {
      Compact();
      dir_end = kSlotDirStart + 4 * static_cast<size_t>(SlotCount());
      contiguous = DataTail() > dir_end ? DataTail() - dir_end : 0;
      if (contiguous < needed) return -1;
    }
    uint16_t slot;
    if (free_slot >= 0) {
      slot = static_cast<uint16_t>(free_slot);
    } else {
      slot = SlotCount();
      SetSlotCount(slot + 1);
    }
    uint16_t off = static_cast<uint16_t>(DataTail() - len);
    std::memcpy(page_->payload() + off, data, len);
    SetDataTail(off);
    SetSlot(slot, off, len);
    return slot;
  }

  /// Inserts at a specific slot (redo path). The slot must be empty.
  bool InsertRecordAt(uint16_t slot, const uint8_t* data, uint16_t len) {
    if (slot < SlotCount() && SlotInUse(slot)) return false;
    uint16_t old_count = SlotCount();
    uint16_t new_count = std::max<uint16_t>(old_count, slot + 1);
    size_t dir_end = kSlotDirStart + 4 * static_cast<size_t>(new_count);
    size_t contiguous = DataTail() > dir_end ? DataTail() - dir_end : 0;
    if (contiguous < len) {
      Compact();
      contiguous = DataTail() > dir_end ? DataTail() - dir_end : 0;
      if (contiguous < len) return false;
    }
    if (new_count > old_count) {
      SetSlotCount(new_count);
      for (uint16_t s = old_count; s < new_count; ++s) {
        SetSlot(s, kEmptyOffset, 0);
      }
    }
    uint16_t off = static_cast<uint16_t>(DataTail() - len);
    std::memcpy(page_->payload() + off, data, len);
    SetDataTail(off);
    SetSlot(slot, off, len);
    return true;
  }

  void DeleteRecord(uint16_t slot) {
    PARADISE_CHECK(SlotInUse(slot));
    SetSlot(slot, kEmptyOffset, 0);
    // Shrink the directory if trailing slots are empty.
    uint16_t count = SlotCount();
    while (count > 0 && SlotOffset(count - 1) == kEmptyOffset) --count;
    SetSlotCount(count);
  }

  /// In-place overwrite; requires the same length.
  bool UpdateRecord(uint16_t slot, const uint8_t* data, uint16_t len) {
    if (!SlotInUse(slot) || SlotLength(slot) != len) return false;
    std::memcpy(page_->payload() + SlotOffset(slot), data, len);
    return true;
  }

  int64_t LiveRecords() const {
    int64_t n = 0;
    for (uint16_t s = 0; s < SlotCount(); ++s) {
      if (SlotInUse(s)) ++n;
    }
    return n;
  }

  /// Squeezes deleted-record holes out of the data area.
  void Compact() {
    uint8_t tmp[Page::kPayloadSize];
    uint16_t tail = static_cast<uint16_t>(Page::kPayloadSize);
    for (uint16_t s = 0; s < SlotCount(); ++s) {
      if (!SlotInUse(s)) continue;
      uint16_t len = SlotLength(s);
      tail = static_cast<uint16_t>(tail - len);
      std::memcpy(tmp + tail, page_->payload() + SlotOffset(s), len);
      SetSlot(s, tail, len);
    }
    std::memcpy(page_->payload() + tail, tmp + tail, Page::kPayloadSize - tail);
    SetDataTail(tail);
  }

 private:
  uint16_t GetU16(size_t at) const {
    uint16_t v;
    std::memcpy(&v, page_->payload() + at, 2);
    return v;
  }
  void SetU16(size_t at, uint16_t v) {
    std::memcpy(page_->payload() + at, &v, 2);
  }
  void SetSlotCount(uint16_t v) { SetU16(0, v); }
  void SetDataTail(uint16_t v) { SetU16(2, v); }
  void SetSlot(uint16_t slot, uint16_t off, uint16_t len) {
    SetU16(kSlotDirStart + 4 * slot, off);
    SetU16(kSlotDirStart + 4 * slot + 2, len);
  }

  Page* page_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_SLOTTED_PAGE_H_
