#ifndef PARADISE_STORAGE_WAL_H_
#define PARADISE_STORAGE_WAL_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sim/node_clock.h"
#include "storage/page.h"

namespace paradise::storage {

using TxnId = uint64_t;
using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

/// Record identifier within a heap file: page + slot.
struct Oid {
  PageNo page = kInvalidPageNo;
  uint16_t slot = 0;

  friend bool operator==(const Oid&, const Oid&) = default;
};

enum class LogRecordType : uint8_t {
  kBegin,
  kCommit,
  kAbort,       // txn finished rolling back
  kInsert,
  kDelete,
  kUpdate,
  kClr,         // compensation record written during undo
  kCheckpoint,
};

/// Write-ahead log record (ARIES-style: redo information in `after`, undo
/// information in `before`, per-transaction backward chain in `prev_lsn`).
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  TxnId txn = 0;
  LogRecordType type = LogRecordType::kBegin;
  Lsn prev_lsn = kInvalidLsn;

  // Data-record fields (kInsert/kDelete/kUpdate/kClr).
  uint32_t file_id = 0;
  Oid oid;
  ByteBuffer before;  // pre-image (kDelete/kUpdate)
  ByteBuffer after;   // post-image (kInsert/kUpdate)

  // For kClr: the next record of this txn still to undo.
  Lsn undo_next_lsn = kInvalidLsn;
  // For kClr: which operation this compensates.
  LogRecordType compensated = LogRecordType::kInsert;
};

/// In-memory stand-in for the log disk. Appended records become durable
/// when Force()d (commit forces; the paper's testbed dedicated one disk per
/// node to the log — forcing charges that disk's clock sequentially).
/// A simulated crash discards every record after `durable_lsn`.
class LogManager {
 public:
  explicit LogManager(sim::NodeClock* clock = nullptr) : clock_(clock) {}

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends and returns the assigned LSN (1-based; 0 is invalid).
  Lsn Append(LogRecord record);

  /// Makes all records up to `lsn` durable.
  void Force(Lsn lsn);

  Lsn durable_lsn() const;
  Lsn last_lsn() const;

  /// Simulated crash: drop un-forced records.
  void CrashTruncate();

  /// Durable prefix of the log, for recovery.
  std::vector<LogRecord> DurableRecords() const;

  const LogRecord& RecordAt(Lsn lsn) const;

 private:
  sim::NodeClock* const clock_;
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  Lsn durable_lsn_ = kInvalidLsn;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_WAL_H_
