#ifndef PARADISE_STORAGE_BUFFER_POOL_H_
#define PARADISE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/fault_injector.h"
#include "storage/disk_volume.h"
#include "storage/page.h"

namespace paradise::storage {

class BufferPool;

/// RAII pin on a buffered page. Unpins on destruction; call MarkDirty()
/// after modifying the frame.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame, Page* page, PageId id)
      : pool_(pool), frame_(frame), page_(page), id_(id) {}

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return page_ != nullptr; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }
  PageId id() const { return id_; }
  void MarkDirty();
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  Page* page_ = nullptr;
  PageId id_;
};

/// LRU buffer pool over a set of volumes, one per node (Paradise used a
/// 32 MB pool per node; the pool size here is in frames). The pool is the
/// volatile layer: a simulated crash is DiscardAll() without FlushAll().
class BufferPool {
 public:
  explicit BufferPool(size_t capacity_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  void AttachVolume(DiskVolume* volume);

  /// Retry policy for transient read errors and checksum mismatches on the
  /// miss path. Each retry charges exponential backoff to the volume's
  /// clock as modeled idle time.
  void set_retry_policy(const sim::RetryPolicy& policy) {
    std::lock_guard<std::mutex> g(mu_);
    retry_policy_ = policy;
  }

  /// Pins the page, reading it from its volume on a miss. Every fetched
  /// page's checksum is verified; a mismatch is retried (torn transfer)
  /// and, if it persists, surfaces as kCorruption rather than a silent
  /// wrong answer.
  StatusOr<PageGuard> Pin(PageId id);

  /// Allocates a fresh page on `volume` and pins it (no disk read).
  StatusOr<PageGuard> NewPage(uint32_t volume);

  Status FlushAll();
  Status FlushPage(PageId id);

  /// Simulated crash: every unflushed frame is lost.
  void DiscardAll();

  /// Drops a page from the pool without writing it back (used when the
  /// page is being freed). The page must be unpinned.
  void Invalidate(PageId id);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t dirty_writebacks = 0;
    int64_t read_retries = 0;       // re-reads after a transient error
    int64_t checksum_failures = 0;  // fetches that failed verification
  };
  Stats stats() const;

  size_t capacity() const { return capacity_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId id;
    Page page;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    std::list<size_t>::iterator lru_it;  // valid only when unpinned
    bool in_lru = false;
  };

  void Unpin(size_t frame_index);
  void MarkDirtyFrame(size_t frame_index);

  // All three require mu_ held.
  StatusOr<size_t> FindVictimLocked();
  Status EvictLocked(size_t frame_index);
  Status ReadPageVerifiedLocked(DiskVolume* volume, PageNo page_no,
                                Page* out);

  const size_t capacity_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<size_t> free_frames_;  // allocated but not holding a page
  std::unordered_map<PageId, size_t, PageIdHash> table_;
  std::list<size_t> lru_;  // front = least recently used
  std::unordered_map<uint32_t, DiskVolume*> volumes_;
  Stats stats_;
  sim::RetryPolicy retry_policy_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_BUFFER_POOL_H_
