#ifndef PARADISE_STORAGE_BUFFER_POOL_H_
#define PARADISE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/fault_injector.h"
#include "storage/disk_volume.h"
#include "storage/page.h"

namespace paradise::storage {

class BufferPool;

namespace internal {

/// One buffer frame. Owned by a shard; the pointer is stable for the
/// frame's lifetime (frames are heap-allocated), so PageGuard can hold it
/// across shard-table rehashes.
struct Frame {
  PageId id;
  Page page;
  int pin_count = 0;
  bool dirty = false;
  bool in_use = false;
  bool hot = false;         // segment flag: promoted on re-reference
  bool referenced = false;  // false until the first Pin (readahead lands
                            // unreferenced so first use does not promote)
  uint32_t shard = 0;       // owning shard index
  std::list<Frame*>::iterator lru_it;  // position in cold/hot list
  bool in_lru = false;
};

}  // namespace internal

/// RAII pin on a buffered page. Unpins on destruction; call MarkDirty()
/// after modifying the frame.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, internal::Frame* frame, Page* page, PageId id)
      : pool_(pool), frame_(frame), page_(page), id_(id) {}

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard();

  bool valid() const { return page_ != nullptr; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }
  PageId id() const { return id_; }
  void MarkDirty();
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  internal::Frame* frame_ = nullptr;
  Page* page_ = nullptr;
  PageId id_;
};

/// Scan-sharing gate, armed on a node's pool for the duration of one scan
/// phase. While armed, a deterministic fraction (`free_eighths`/8) of the
/// readahead windows Prefetch issues are *attached* to another query's
/// in-flight scan of the same pages: the pages are still read from the
/// volume (faults fire, bytes land), but the disk transfer is not charged
/// — that query already paid for it. Selection is by window ordinal, not
/// by thread schedule, so which windows ride free is bit-identical at any
/// thread count.
///
/// Single-writer contract: arm a gate only for phases whose readahead on
/// this pool is issued by one thread (a node's own scan closure). The
/// counters are unsynchronized by design — that is what keeps the ordinal
/// sequence deterministic.
struct ScanShareGate {
  int free_eighths = 0;          // windows riding free, in eighths
  int64_t ordinal = 0;           // windows issued while armed
  int64_t attached_windows = 0;  // windows that rode free
  int64_t attached_pages = 0;    // pages those windows carried
};

/// Buffer pool over a set of volumes, one per node (Paradise used a 32 MB
/// pool per node; the pool size here is in frames). The pool is the
/// volatile layer: a simulated crash is DiscardAll() without FlushAll().
///
/// The pool is sharded: page ids hash to shards, each with its own mutex,
/// hash table and eviction state, so concurrent executor threads (and
/// remote pulls landing on this node) do not serialize on one lock.
/// Consecutive page numbers within a kRunPages-aligned group map to the
/// same shard, so a readahead window is served under a single shard lock.
///
/// Eviction is scan-resistant: a two-segment LRU with midpoint insertion
/// (à la InnoDB). A page's first touch lands in the cold segment; only a
/// re-reference promotes it to hot. Victims come from the cold segment
/// first, so a one-pass table scan can evict at most the cold segment and
/// never flushes hot index or mapping pages.
class BufferPool {
 public:
  /// Consecutive pages within an aligned group of this size share a shard;
  /// this is also the natural readahead window (16 pages = 128 KB).
  static constexpr uint32_t kRunPages = 16;

  /// Hot segment target, in eighths of a shard's capacity (5/8 hot, 3/8
  /// cold — InnoDB's default midpoint).
  static constexpr size_t kHotEighths = 5;

  /// Auto-sharding keeps at least this many frames per shard so tiny test
  /// pools degenerate to one shard with exact single-LRU semantics.
  static constexpr size_t kMinFramesPerShard = 64;

  /// `num_shards` == 0 picks the default: PARADISE_POOL_SHARDS if set,
  /// else 2 x hardware_concurrency, rounded up to a power of two and
  /// clamped so every shard has >= kMinFramesPerShard frames. An explicit
  /// positive value is rounded up to a power of two and clamped only so
  /// every shard has >= 1 frame (tests use this to force small sharded
  /// pools).
  explicit BufferPool(size_t capacity_frames, int num_shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  void AttachVolume(DiskVolume* volume);

  /// Retry policy for transient read errors and checksum mismatches on the
  /// miss path. Each retry charges exponential backoff to the volume's
  /// clock as modeled idle time.
  void set_retry_policy(const sim::RetryPolicy& policy) {
    std::lock_guard<std::mutex> g(config_mu_);
    retry_policy_ = policy;
  }

  /// Pins the page, reading it from its volume on a miss. Every fetched
  /// page's checksum is verified; a mismatch is retried (torn transfer)
  /// and, if it persists, surfaces as kCorruption rather than a silent
  /// wrong answer.
  StatusOr<PageGuard> Pin(PageId id);

  /// Allocates a fresh page on `volume` and pins it (no disk read).
  StatusOr<PageGuard> NewPage(uint32_t volume);

  /// Advisory readahead: loads `[first, first+count)` into the pool
  /// without pinning. Pages already resident are skipped; the misses are
  /// grouped into maximal consecutive runs and fetched from the volume in
  /// one ReadRun each — charged as one positioning cost plus N sequential
  /// transfers. Loaded pages land unpinned in the cold segment, so
  /// readahead can never push hot pages out. Failures are retried under
  /// the retry policy and then dropped (the later Pin surfaces the error);
  /// fault ordinals stay per-page, consulted in page order.
  void Prefetch(PageId first, uint32_t count);

  /// Pins the consecutive range `[first, first+count)`, using Prefetch to
  /// batch the misses. Guards are returned in page order.
  StatusOr<std::vector<PageGuard>> PinRange(PageId first, uint32_t count);

  /// Arms (or, with nullptr, disarms) a scan-sharing gate consulted by
  /// Prefetch. See ScanShareGate for the protocol and the single-writer
  /// contract. The caller keeps ownership and must disarm before the gate
  /// goes out of scope.
  void ArmScanShareGate(ScanShareGate* gate) { scan_gate_ = gate; }

  /// Writes every dirty frame back, grouped per volume into maximal runs
  /// of consecutive page numbers: one WriteRun (one positioning cost plus
  /// sequential transfers) per run instead of one random write per page.
  /// All shards are locked for the duration so the dirty set is a single
  /// consistent snapshot and runs may span shard boundaries.
  Status FlushAll();
  Status FlushPage(PageId id);

  /// Simulated crash: every unflushed frame is lost.
  void DiscardAll();

  /// Drops a page from the pool without writing it back (used when the
  /// page is being freed). The page must be unpinned.
  void Invalidate(PageId id);

  struct Stats {
    int64_t hits = 0;    // includes pins served from readahead
    int64_t misses = 0;  // demand fetches only (readahead loads excluded)
    int64_t evictions = 0;
    int64_t dirty_writebacks = 0;
    int64_t read_retries = 0;        // re-reads after a transient error
    int64_t checksum_failures = 0;   // fetches that failed verification
    int64_t readahead_batches = 0;   // charged ReadRun calls by Prefetch
    int64_t readahead_pages = 0;     // pages those charged runs loaded
    int64_t scan_shared_windows = 0; // readahead runs attached to another
                                     // query's in-flight scan (uncharged)
    int64_t scan_shared_pages = 0;   // pages those attached runs carried
    int64_t promotions = 0;          // cold -> hot on re-reference
    int64_t writeback_runs = 0;      // WriteRun calls (flush + eviction)
    int64_t writeback_pages = 0;     // dirty pages those runs carried

    double hit_rate() const {
      int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
    void Add(const Stats& o) {
      hits += o.hits;
      misses += o.misses;
      evictions += o.evictions;
      dirty_writebacks += o.dirty_writebacks;
      read_retries += o.read_retries;
      checksum_failures += o.checksum_failures;
      readahead_batches += o.readahead_batches;
      readahead_pages += o.readahead_pages;
      scan_shared_windows += o.scan_shared_windows;
      scan_shared_pages += o.scan_shared_pages;
      promotions += o.promotions;
      writeback_runs += o.writeback_runs;
      writeback_pages += o.writeback_pages;
    }
  };
  /// Aggregated over all shards, as one consistent snapshot: every shard
  /// mutex is held simultaneously (index order, as in FlushAll) while the
  /// counters are summed, so a snapshot taken while another query runs
  /// can never tear across shards — e.g. observe a writeback run on one
  /// shard but not the pages it carried on another.
  Stats stats() const;

  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  friend class PageGuard;

  struct Shard {
    mutable std::mutex mu;
    uint32_t index = 0;
    size_t capacity = 0;
    std::vector<std::unique_ptr<internal::Frame>> frames;
    std::vector<internal::Frame*> free_frames;
    std::unordered_map<PageId, internal::Frame*, PageIdHash> table;
    // Two-segment LRU; front = next eviction candidate. Lists hold only
    // unpinned in-use frames.
    std::list<internal::Frame*> cold;
    std::list<internal::Frame*> hot;
    Stats stats;
  };

  Shard& shard_for(PageId id) {
    PageId group{id.volume, id.page_no / kRunPages};
    return *shards_[PageIdHash()(group) & shard_mask_];
  }

  void Unpin(internal::Frame* frame);
  void MarkDirtyFrame(internal::Frame* frame);

  /// Copies the volume pointer and retry policy under config_mu_. Returns
  /// null if the volume is unknown.
  DiskVolume* LookupVolume(uint32_t volume, sim::RetryPolicy* policy) const;

  /// Writes the dirty frames in `frames` (all on `volume`, caller holds
  /// their shards' mutexes) as maximal consecutive WriteRuns and clears
  /// their dirty flags. Run stats land on the shard of each run's first
  /// frame. Sorts `frames` by page number in place.
  Status WriteClusteredLocked(DiskVolume* volume,
                              std::vector<internal::Frame*>& frames);

  // All of the below require the shard's mutex.
  StatusOr<internal::Frame*> FindVictimLocked(Shard& s);
  Status EvictLocked(Shard& s, internal::Frame* f);
  void RemoveFromListLocked(Shard& s, internal::Frame* f);
  /// Pushes an unpinned frame onto its segment's MRU end and rebalances
  /// the hot segment toward its kHotEighths/8 target.
  void PushUnpinnedLocked(Shard& s, internal::Frame* f);
  /// Verified read with bounded retries. `first_attempt` > 0 resumes the
  /// retry budget after an attempt already made elsewhere (the readahead
  /// batch); `last` carries that attempt's failure.
  Status ReadPageVerifiedLocked(Shard& s, DiskVolume* volume,
                                const sim::RetryPolicy& policy,
                                PageNo page_no, Page* out, int first_attempt,
                                Status last);
  /// One readahead window, entirely within shard `s` (the caller aligns
  /// windows to kRunPages groups). Takes the shard mutex itself.
  void PrefetchWindow(Shard& s, DiskVolume* volume,
                      const sim::RetryPolicy& policy, PageId first,
                      uint32_t count);

  const size_t capacity_;
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Scan-sharing gate, or null when disarmed. Written only between phase
  // barriers (no Prefetch in flight); readers are the phase's own scan
  // thread, ordered by the thread pool's batch handoff.
  ScanShareGate* scan_gate_ = nullptr;

  // Guards volume registration and the retry policy; always taken either
  // standalone or nested inside a shard mutex, never the other way.
  mutable std::mutex config_mu_;
  std::unordered_map<uint32_t, DiskVolume*> volumes_;
  sim::RetryPolicy retry_policy_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_BUFFER_POOL_H_
