#ifndef PARADISE_STORAGE_TRANSACTION_H_
#define PARADISE_STORAGE_TRANSACTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "storage/wal.h"

namespace paradise::storage {

class HeapFile;

enum class TxnState { kActive, kCommitted, kAborted };

/// A transaction handle: identity plus the backward log-record chain used
/// for rollback.
class Transaction {
 public:
  Transaction(TxnId id, Lsn begin_lsn)
      : id_(id), last_lsn_(begin_lsn), state_(TxnState::kActive) {}

  TxnId id() const { return id_; }
  Lsn last_lsn() const { return last_lsn_; }
  void set_last_lsn(Lsn lsn) { last_lsn_ = lsn; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

 private:
  const TxnId id_;
  Lsn last_lsn_;
  TxnState state_;
};

/// Creates, commits, and aborts transactions against a LogManager, and
/// resolves file ids to HeapFiles during rollback/recovery.
class TransactionManager {
 public:
  explicit TransactionManager(LogManager* log) : log_(log) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  void RegisterFile(HeapFile* file);

  std::unique_ptr<Transaction> Begin();

  /// Commit = force the log through the txn's last record (WAL rule).
  Status Commit(Transaction* txn);

  /// Abort = undo the txn's changes via its log chain (writing CLRs), then
  /// log the abort record.
  Status Abort(Transaction* txn);

  HeapFile* FileById(uint32_t file_id) const;
  std::vector<HeapFile*> AllFiles() const;
  LogManager* log() const { return log_; }

  /// Rolls a txn's chain back starting at `from_lsn`, writing CLRs.
  /// Shared by Abort and crash recovery's undo pass.
  Status Rollback(TxnId txn_id, Lsn from_lsn);

 private:
  LogManager* const log_;
  mutable std::mutex mu_;
  TxnId next_txn_id_ = 1;
  std::unordered_map<uint32_t, HeapFile*> files_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_TRANSACTION_H_
