#include "storage/wal.h"

#include "common/logging.h"

namespace paradise::storage {

Lsn LogManager::Append(LogRecord record) {
  std::lock_guard<std::mutex> g(mu_);
  record.lsn = records_.size() + 1;
  records_.push_back(std::move(record));
  return records_.back().lsn;
}

void LogManager::Force(Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  if (lsn <= durable_lsn_) return;
  Lsn target = std::min<Lsn>(lsn, records_.size());
  if (clock_ != nullptr) {
    // Log writes are sequential appends to the dedicated log disk: charge
    // the byte volume of the newly forced records plus one positioning op.
    int64_t bytes = 0;
    for (Lsn l = durable_lsn_ + 1; l <= target; ++l) {
      const LogRecord& r = records_[l - 1];
      bytes += 64 + static_cast<int64_t>(r.before.size() + r.after.size());
    }
    clock_->ChargeDiskWrite(bytes, /*seeks=*/1);
  }
  durable_lsn_ = target;
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return durable_lsn_;
}

Lsn LogManager::last_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return records_.size();
}

void LogManager::CrashTruncate() {
  std::lock_guard<std::mutex> g(mu_);
  records_.resize(durable_lsn_);
}

std::vector<LogRecord> LogManager::DurableRecords() const {
  std::lock_guard<std::mutex> g(mu_);
  return std::vector<LogRecord>(records_.begin(),
                                records_.begin() + durable_lsn_);
}

const LogRecord& LogManager::RecordAt(Lsn lsn) const {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_CHECK(lsn >= 1 && lsn <= records_.size());
  return records_[lsn - 1];
}

}  // namespace paradise::storage
