#include "storage/heap_file.h"

#include "common/logging.h"
#include "storage/slotted_page.h"
#include "storage/transaction.h"

namespace paradise::storage {

namespace {

/// Logs a data record (if logging is enabled) and threads it onto the
/// transaction's undo chain. Returns the assigned LSN (kInvalidLsn when
/// unlogged).
Lsn LogDataRecord(LogManager* log, Transaction* txn, LogRecordType type,
                  uint32_t file_id, const Oid& oid, ByteBuffer before,
                  ByteBuffer after) {
  if (log == nullptr || txn == nullptr) return kInvalidLsn;
  LogRecord rec;
  rec.txn = txn->id();
  rec.type = type;
  rec.prev_lsn = txn->last_lsn();
  rec.file_id = file_id;
  rec.oid = oid;
  rec.before = std::move(before);
  rec.after = std::move(after);
  Lsn lsn = log->Append(std::move(rec));
  txn->set_last_lsn(lsn);
  return lsn;
}

}  // namespace

HeapFile::HeapFile(uint32_t file_id, BufferPool* pool, uint32_t volume_id,
                   LogManager* log)
    : file_id_(file_id), pool_(pool), volume_id_(volume_id), log_(log) {}

size_t HeapFile::MaxRecordSize() {
  return Page::kPayloadSize - SlottedPage::kSlotDirStart - 4;
}

StatusOr<Oid> HeapFile::Insert(Transaction* txn, const ByteBuffer& record) {
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument("record too large for slotted page");
  }
  std::lock_guard<std::mutex> g(mu_);

  // Find a page with room: the last page, else a fresh one.
  PageGuard guard;
  if (!pages_.empty()) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard last,
                              pool_->Pin(PageId{volume_id_, pages_.back()}));
    SlottedPage sp(last.page());
    if (sp.NeedsInit()) {
      sp.Init();
      last.MarkDirty();
    }
    if (sp.TotalFree() >= record.size()) guard = std::move(last);
  }
  if (!guard.valid()) {
    PARADISE_ASSIGN_OR_RETURN(guard, pool_->NewPage(volume_id_));
    SlottedPage sp(guard.page());
    sp.Init();
    guard.MarkDirty();
    pages_.push_back(guard.id().page_no);
  }

  SlottedPage sp(guard.page());
  int slot = sp.InsertRecord(record.data(), static_cast<uint16_t>(record.size()));
  PARADISE_CHECK_MSG(slot >= 0, "page chosen for insert had no room");
  Oid oid{guard.id().page_no, static_cast<uint16_t>(slot)};

  Lsn lsn = LogDataRecord(log_, txn, LogRecordType::kInsert, file_id_, oid,
                          /*before=*/{}, /*after=*/record);
  if (lsn != kInvalidLsn) guard.page()->set_lsn(lsn);
  guard.MarkDirty();
  ++num_records_;
  return oid;
}

StatusOr<ByteBuffer> HeapFile::Get(const Oid& oid) const {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_ASSIGN_OR_RETURN(PageGuard guard,
                            pool_->Pin(PageId{volume_id_, oid.page}));
  SlottedPage sp(guard.page());
  if (!sp.SlotInUse(oid.slot)) {
    return Status::NotFound("no record at oid");
  }
  const uint8_t* data = sp.RecordData(oid.slot);
  return ByteBuffer(data, data + sp.SlotLength(oid.slot));
}

Status HeapFile::Delete(Transaction* txn, const Oid& oid) {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_ASSIGN_OR_RETURN(PageGuard guard,
                            pool_->Pin(PageId{volume_id_, oid.page}));
  SlottedPage sp(guard.page());
  if (!sp.SlotInUse(oid.slot)) {
    return Status::NotFound("no record at oid");
  }
  const uint8_t* data = sp.RecordData(oid.slot);
  ByteBuffer before(data, data + sp.SlotLength(oid.slot));
  sp.DeleteRecord(oid.slot);

  Lsn lsn = LogDataRecord(log_, txn, LogRecordType::kDelete, file_id_, oid,
                          std::move(before), /*after=*/{});
  if (lsn != kInvalidLsn) guard.page()->set_lsn(lsn);
  guard.MarkDirty();
  --num_records_;
  return Status::OK();
}

Status HeapFile::Update(Transaction* txn, const Oid& oid,
                        const ByteBuffer& record) {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_ASSIGN_OR_RETURN(PageGuard guard,
                            pool_->Pin(PageId{volume_id_, oid.page}));
  SlottedPage sp(guard.page());
  if (!sp.SlotInUse(oid.slot)) {
    return Status::NotFound("no record at oid");
  }
  if (sp.SlotLength(oid.slot) != record.size()) {
    return Status::InvalidArgument(
        "in-place update requires equal size; delete+insert instead");
  }
  const uint8_t* data = sp.RecordData(oid.slot);
  ByteBuffer before(data, data + sp.SlotLength(oid.slot));
  PARADISE_CHECK(sp.UpdateRecord(oid.slot, record.data(),
                                 static_cast<uint16_t>(record.size())));

  Lsn lsn = LogDataRecord(log_, txn, LogRecordType::kUpdate, file_id_, oid,
                          std::move(before), record);
  if (lsn != kInvalidLsn) guard.page()->set_lsn(lsn);
  guard.MarkDirty();
  return Status::OK();
}

StatusOr<Lsn> HeapFile::PageLsn(PageNo page_no) const {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_ASSIGN_OR_RETURN(PageGuard guard,
                            pool_->Pin(PageId{volume_id_, page_no}));
  return guard.page()->lsn();
}

Status HeapFile::ApplyInsert(const Oid& oid, const ByteBuffer& record,
                             Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_ASSIGN_OR_RETURN(PageGuard guard,
                            pool_->Pin(PageId{volume_id_, oid.page}));
  SlottedPage sp(guard.page());
  if (sp.NeedsInit()) sp.Init();
  if (!sp.InsertRecordAt(oid.slot, record.data(),
                         static_cast<uint16_t>(record.size()))) {
    return Status::Corruption("redo insert: slot unavailable");
  }
  guard.page()->set_lsn(lsn);
  guard.MarkDirty();
  ++num_records_;
  return Status::OK();
}

Status HeapFile::ApplyDelete(const Oid& oid, Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_ASSIGN_OR_RETURN(PageGuard guard,
                            pool_->Pin(PageId{volume_id_, oid.page}));
  SlottedPage sp(guard.page());
  if (!sp.SlotInUse(oid.slot)) {
    return Status::Corruption("redo delete: slot empty");
  }
  sp.DeleteRecord(oid.slot);
  guard.page()->set_lsn(lsn);
  guard.MarkDirty();
  --num_records_;
  return Status::OK();
}

Status HeapFile::ApplyUpdate(const Oid& oid, const ByteBuffer& record,
                             Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_ASSIGN_OR_RETURN(PageGuard guard,
                            pool_->Pin(PageId{volume_id_, oid.page}));
  SlottedPage sp(guard.page());
  if (!sp.UpdateRecord(oid.slot, record.data(),
                       static_cast<uint16_t>(record.size()))) {
    return Status::Corruption("redo update: slot mismatch");
  }
  guard.page()->set_lsn(lsn);
  guard.MarkDirty();
  return Status::OK();
}

bool HeapFile::Iterator::Next(Oid* oid, ByteBuffer* record) {
  std::lock_guard<std::mutex> g(file_->mu_);
  while (page_index_ < file_->pages_.size()) {
    PageNo page_no = file_->pages_[page_index_];
    if (guard_index_ != page_index_ || !guard_.valid()) {
      // Batched readahead for the upcoming window: group the page numbers
      // into maximal consecutive runs so each run is one positioning cost
      // plus sequential transfers (and one shard visit) in the pool.
      if (page_index_ >= prefetched_until_) {
        size_t end = std::min(file_->pages_.size(),
                              page_index_ + kReadaheadPages);
        size_t i = page_index_;
        while (i < end) {
          PageNo run_first = file_->pages_[i];
          uint32_t run_len = 1;
          while (i + run_len < end &&
                 file_->pages_[i + run_len] == run_first + run_len) {
            ++run_len;
          }
          file_->pool_->Prefetch(PageId{file_->volume_id_, run_first},
                                 run_len);
          i += run_len;
        }
        prefetched_until_ = end;
      }
      auto guard_or = file_->pool_->Pin(PageId{file_->volume_id_, page_no});
      PARADISE_CHECK_MSG(guard_or.ok(), guard_or.status().ToString().c_str());
      guard_ = std::move(guard_or).value();
      guard_index_ = page_index_;
    }
    SlottedPage sp(guard_.page());
    if (sp.NeedsInit()) {
      ++page_index_;
      slot_ = 0;
      guard_.Release();
      continue;
    }
    while (slot_ < sp.SlotCount()) {
      uint16_t s = slot_++;
      if (!sp.SlotInUse(s)) continue;
      *oid = Oid{page_no, s};
      const uint8_t* data = sp.RecordData(s);
      record->assign(data, data + sp.SlotLength(s));
      return true;
    }
    ++page_index_;
    slot_ = 0;
    guard_.Release();
  }
  guard_.Release();
  return false;
}

Status HeapFile::RecountRecords() {
  std::lock_guard<std::mutex> g(mu_);
  int64_t n = 0;
  for (PageNo p : pages_) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard guard, pool_->Pin(PageId{volume_id_, p}));
    SlottedPage sp(guard.page());
    if (!sp.NeedsInit()) n += sp.LiveRecords();
  }
  num_records_ = n;
  return Status::OK();
}

int64_t HeapFile::num_records() const {
  std::lock_guard<std::mutex> g(mu_);
  return num_records_;
}

size_t HeapFile::num_pages() const {
  std::lock_guard<std::mutex> g(mu_);
  return pages_.size();
}

void HeapFile::Destroy(DiskVolume* volume) {
  std::lock_guard<std::mutex> g(mu_);
  for (PageNo p : pages_) {
    pool_->Invalidate(PageId{volume_id_, p});
    volume->FreePage(p);
  }
  pages_.clear();
  num_records_ = 0;
}

}  // namespace paradise::storage
