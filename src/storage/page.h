#ifndef PARADISE_STORAGE_PAGE_H_
#define PARADISE_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>

namespace paradise::storage {

/// Fixed page size, matching SHORE-era systems.
inline constexpr size_t kPageSize = 8192;

/// Pages are allocated in fixed-size extents (Section 2.2).
inline constexpr uint32_t kPagesPerExtent = 8;

using PageNo = uint32_t;
inline constexpr PageNo kInvalidPageNo = 0xffffffff;

/// Identifies a page within one node's set of volumes.
struct PageId {
  uint32_t volume = 0;
  PageNo page_no = kInvalidPageNo;

  friend bool operator==(const PageId&, const PageId&) = default;
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(id.volume) << 32) | id.page_no);
  }
};

/// Raw page frame. Interpretation (slotted page, index node, LOB data) is
/// up to the layer using it; the first 8 bytes are reserved for the page
/// LSN used by recovery.
class Page {
 public:
  Page() { data_.fill(0); }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  uint64_t lsn() const {
    uint64_t v;
    std::memcpy(&v, data_.data(), sizeof(v));
    return v;
  }
  void set_lsn(uint64_t lsn) { std::memcpy(data_.data(), &lsn, sizeof(lsn)); }

  /// Payload area after the LSN word.
  static constexpr size_t kHeaderSize = 8;
  static constexpr size_t kPayloadSize = kPageSize - kHeaderSize;
  uint8_t* payload() { return data_.data() + kHeaderSize; }
  const uint8_t* payload() const { return data_.data() + kHeaderSize; }

 private:
  std::array<uint8_t, kPageSize> data_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_PAGE_H_
