#ifndef PARADISE_STORAGE_PAGE_H_
#define PARADISE_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>

namespace paradise::storage {

/// Fixed page size, matching SHORE-era systems.
inline constexpr size_t kPageSize = 8192;

/// Pages are allocated in fixed-size extents (Section 2.2).
inline constexpr uint32_t kPagesPerExtent = 8;

using PageNo = uint32_t;
inline constexpr PageNo kInvalidPageNo = 0xffffffff;

/// Identifies a page within one node's set of volumes.
struct PageId {
  uint32_t volume = 0;
  PageNo page_no = kInvalidPageNo;

  friend bool operator==(const PageId&, const PageId&) = default;
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(id.volume) << 32) | id.page_no);
  }
};

/// Raw page frame. Interpretation (slotted page, index node, LOB data) is
/// up to the layer using it. Header layout: bytes [0, 8) hold the page LSN
/// used by recovery, bytes [8, 12) a checksum stamped by the volume on
/// write and verified by the buffer pool on fetch, bytes [12, 16) pad the
/// payload to 8-byte alignment. A stored checksum of 0 means "never
/// stamped" (a fresh page), so reads of unwritten pages always verify.
class Page {
 public:
  Page() { data_.fill(0); }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  uint64_t lsn() const {
    uint64_t v;
    std::memcpy(&v, data_.data(), sizeof(v));
    return v;
  }
  void set_lsn(uint64_t lsn) { std::memcpy(data_.data(), &lsn, sizeof(lsn)); }

  uint32_t stored_checksum() const {
    uint32_t v;
    std::memcpy(&v, data_.data() + kChecksumOffset, sizeof(v));
    return v;
  }
  void set_stored_checksum(uint32_t sum) {
    std::memcpy(data_.data() + kChecksumOffset, &sum, sizeof(sum));
  }

  /// FNV-1a over the LSN and payload (the checksum word and pad are
  /// excluded). Never returns 0: the computed value 0 maps to 1 so that 0
  /// stays reserved for "never stamped".
  uint32_t ComputeChecksum() const {
    uint32_t h = 2166136261u;
    auto fold = [&h](const uint8_t* p, size_t n) {
      for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 16777619u;
    };
    fold(data_.data(), kChecksumOffset);
    fold(data_.data() + kHeaderSize, kPayloadSize);
    return h == 0 ? 1 : h;
  }

  void StampChecksum() { set_stored_checksum(ComputeChecksum()); }

  /// True iff the page was never stamped or its contents match the stamp.
  bool VerifyChecksum() const {
    uint32_t stored = stored_checksum();
    return stored == 0 || stored == ComputeChecksum();
  }

  /// Payload area after the header (LSN + checksum + pad).
  static constexpr size_t kChecksumOffset = 8;
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kPayloadSize = kPageSize - kHeaderSize;
  uint8_t* payload() { return data_.data() + kHeaderSize; }
  const uint8_t* payload() const { return data_.data() + kHeaderSize; }

 private:
  std::array<uint8_t, kPageSize> data_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_PAGE_H_
