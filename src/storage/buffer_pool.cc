#include "storage/buffer_pool.h"

#include "common/logging.h"

namespace paradise::storage {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  PARADISE_CHECK(valid());
  pool_->MarkDirtyFrame(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  page_ = nullptr;
}

BufferPool::BufferPool(size_t capacity_frames) : capacity_(capacity_frames) {
  PARADISE_CHECK(capacity_frames > 0);
  frames_.reserve(capacity_frames);
}

void BufferPool::AttachVolume(DiskVolume* volume) {
  std::lock_guard<std::mutex> g(mu_);
  volumes_[volume->volume_id()] = volume;
}

StatusOr<size_t> BufferPool::FindVictimLocked() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (frames_.size() < capacity_) {
    frames_.push_back(std::make_unique<Frame>());
    return frames_.size() - 1;
  }
  if (lru_.empty()) {
    int64_t pinned = 0, unused = 0, in_use = 0;
    for (const auto& f : frames_) {
      if (!f->in_use) {
        ++unused;
      } else if (f->pin_count > 0) {
        ++pinned;
      } else {
        ++in_use;
      }
    }
    return Status::ResourceExhausted(
        "buffer pool: no evictable frame (pinned=" + std::to_string(pinned) +
        " unpinned-in-use=" + std::to_string(in_use) +
        " unused=" + std::to_string(unused) + ")");
  }
  size_t victim = lru_.front();
  PARADISE_RETURN_IF_ERROR(EvictLocked(victim));
  return victim;
}

Status BufferPool::EvictLocked(size_t frame_index) {
  Frame& f = *frames_[frame_index];
  PARADISE_CHECK(f.pin_count == 0 && f.in_use);
  if (f.dirty) {
    auto it = volumes_.find(f.id.volume);
    PARADISE_CHECK_MSG(it != volumes_.end(), "evicting page of unknown volume");
    PARADISE_RETURN_IF_ERROR(it->second->WritePage(f.id.page_no, f.page));
    ++stats_.dirty_writebacks;
  }
  table_.erase(f.id);
  if (f.in_lru) {
    lru_.erase(f.lru_it);
    f.in_lru = false;
  }
  f.in_use = false;
  f.dirty = false;
  ++stats_.evictions;
  return Status::OK();
}

StatusOr<PageGuard> BufferPool::Pin(PageId id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = table_.find(id);
  if (it != table_.end()) {
    size_t idx = it->second;
    Frame& f = *frames_[idx];
    if (f.pin_count == 0 && f.in_lru) {
      lru_.erase(f.lru_it);
      f.in_lru = false;
    }
    ++f.pin_count;
    ++stats_.hits;
    return PageGuard(this, idx, &f.page, id);
  }
  ++stats_.misses;
  auto volume_it = volumes_.find(id.volume);
  if (volume_it == volumes_.end()) {
    return Status::NotFound("unknown volume");
  }
  PARADISE_ASSIGN_OR_RETURN(size_t idx, FindVictimLocked());
  Frame& f = *frames_[idx];
  PARADISE_RETURN_IF_ERROR(
      ReadPageVerifiedLocked(volume_it->second, id.page_no, &f.page));
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_use = true;
  f.in_lru = false;
  table_[id] = idx;
  return PageGuard(this, idx, &f.page, id);
}

Status BufferPool::ReadPageVerifiedLocked(DiskVolume* volume, PageNo page_no,
                                          Page* out) {
  Status last = Status::OK();
  for (int attempt = 0; attempt < retry_policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff before each retry, as modeled time on the
      // volume's clock — never a host sleep, so faulted runs stay
      // deterministic across thread counts.
      if (volume->clock() != nullptr) {
        volume->clock()->ChargeIdle(retry_policy_.BackoffSeconds(attempt - 1));
      }
      ++stats_.read_retries;
    }
    Status st = volume->ReadPage(page_no, out);
    if (st.ok()) {
      if (out->VerifyChecksum()) return Status::OK();
      ++stats_.checksum_failures;
      last = Status::Corruption("page checksum mismatch on volume " +
                                std::to_string(volume->volume_id()) +
                                " page " + std::to_string(page_no));
      continue;  // torn transfer: the durable copy may still be good
    }
    if (st.code() != StatusCode::kUnavailable) return st;  // not transient
    last = std::move(st);
  }
  return last;
}

StatusOr<PageGuard> BufferPool::NewPage(uint32_t volume) {
  std::lock_guard<std::mutex> g(mu_);
  auto volume_it = volumes_.find(volume);
  if (volume_it == volumes_.end()) {
    return Status::NotFound("unknown volume");
  }
  PageNo page_no = volume_it->second->AllocatePage();
  PARADISE_ASSIGN_OR_RETURN(size_t idx, FindVictimLocked());
  Frame& f = *frames_[idx];
  f.page = Page();
  f.id = PageId{volume, page_no};
  f.pin_count = 1;
  f.dirty = true;  // fresh pages must reach disk eventually
  f.in_use = true;
  f.in_lru = false;
  table_[f.id] = idx;
  return PageGuard(this, idx, &f.page, f.id);
}

void BufferPool::Unpin(size_t frame_index) {
  std::lock_guard<std::mutex> g(mu_);
  Frame& f = *frames_[frame_index];
  PARADISE_CHECK(f.pin_count > 0);
  if (--f.pin_count == 0) {
    lru_.push_back(frame_index);
    f.lru_it = std::prev(lru_.end());
    f.in_lru = true;
  }
}

void BufferPool::MarkDirtyFrame(size_t frame_index) {
  std::lock_guard<std::mutex> g(mu_);
  frames_[frame_index]->dirty = true;
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& frame : frames_) {
    Frame& f = *frame;
    if (f.in_use && f.dirty) {
      auto it = volumes_.find(f.id.volume);
      PARADISE_CHECK(it != volumes_.end());
      PARADISE_RETURN_IF_ERROR(it->second->WritePage(f.id.page_no, f.page));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return Status::OK();  // not cached: already on disk
  Frame& f = *frames_[it->second];
  if (f.dirty) {
    auto vit = volumes_.find(id.volume);
    PARADISE_CHECK(vit != volumes_.end());
    PARADISE_RETURN_IF_ERROR(vit->second->WritePage(id.page_no, f.page));
    f.dirty = false;
  }
  return Status::OK();
}

void BufferPool::DiscardAll() {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_CHECK_MSG(
      [&] {
        for (auto& f : frames_) {
          if (f->in_use && f->pin_count > 0) return false;
        }
        return true;
      }(),
      "DiscardAll with pinned pages");
  table_.clear();
  lru_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = *frames_[i];
    f.in_use = false;
    f.dirty = false;
    f.in_lru = false;
    f.pin_count = 0;
    free_frames_.push_back(i);
  }
}

void BufferPool::Invalidate(PageId id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return;
  size_t index = it->second;
  Frame& f = *frames_[index];
  PARADISE_CHECK_MSG(f.pin_count == 0, "invalidating a pinned page");
  if (f.in_lru) {
    lru_.erase(f.lru_it);
    f.in_lru = false;
  }
  f.in_use = false;
  f.dirty = false;
  table_.erase(it);
  free_frames_.push_back(index);
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace paradise::storage
