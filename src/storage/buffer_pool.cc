#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/logging.h"

namespace paradise::storage {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

int DefaultPoolShards() {
  if (const char* env = std::getenv("PARADISE_POOL_SHARDS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<int>(2 * hw);
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.frame_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::MarkDirty() {
  PARADISE_CHECK(valid());
  pool_->MarkDirtyFrame(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(frame_);
  }
  pool_ = nullptr;
  frame_ = nullptr;
  page_ = nullptr;
}

BufferPool::BufferPool(size_t capacity_frames, int num_shards)
    : capacity_(capacity_frames) {
  PARADISE_CHECK(capacity_frames > 0);
  bool auto_shards = num_shards <= 0;
  size_t n =
      RoundUpPow2(static_cast<size_t>(auto_shards ? DefaultPoolShards()
                                                  : num_shards));
  size_t min_per_shard = auto_shards ? kMinFramesPerShard : 1;
  while (n > 1 && capacity_frames / n < min_per_shard) n >>= 1;
  shard_mask_ = n - 1;
  shards_.reserve(n);
  size_t base = capacity_frames / n;
  size_t rem = capacity_frames % n;
  for (size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->index = static_cast<uint32_t>(i);
    s->capacity = base + (i < rem ? 1 : 0);
    s->frames.reserve(s->capacity);
    shards_.push_back(std::move(s));
  }
}

void BufferPool::AttachVolume(DiskVolume* volume) {
  std::lock_guard<std::mutex> g(config_mu_);
  volumes_[volume->volume_id()] = volume;
}

DiskVolume* BufferPool::LookupVolume(uint32_t volume,
                                     sim::RetryPolicy* policy) const {
  std::lock_guard<std::mutex> g(config_mu_);
  if (policy != nullptr) *policy = retry_policy_;
  auto it = volumes_.find(volume);
  return it == volumes_.end() ? nullptr : it->second;
}

void BufferPool::RemoveFromListLocked(Shard& s, internal::Frame* f) {
  if (!f->in_lru) return;
  (f->hot ? s.hot : s.cold).erase(f->lru_it);
  f->in_lru = false;
}

void BufferPool::PushUnpinnedLocked(Shard& s, internal::Frame* f) {
  auto& list = f->hot ? s.hot : s.cold;
  list.push_back(f);
  f->lru_it = std::prev(list.end());
  f->in_lru = true;
  // Keep the hot segment at its midpoint target; the demoted LRU end of
  // hot re-enters cold at the MRU end, so it still outlives scan pages.
  size_t hot_target = s.capacity * kHotEighths / 8;
  while (s.hot.size() > hot_target) {
    internal::Frame* d = s.hot.front();
    s.hot.pop_front();
    d->hot = false;
    s.cold.push_back(d);
    d->lru_it = std::prev(s.cold.end());
  }
}

StatusOr<internal::Frame*> BufferPool::FindVictimLocked(Shard& s) {
  if (!s.free_frames.empty()) {
    internal::Frame* f = s.free_frames.back();
    s.free_frames.pop_back();
    return f;
  }
  if (s.frames.size() < s.capacity) {
    s.frames.push_back(std::make_unique<internal::Frame>());
    internal::Frame* f = s.frames.back().get();
    f->shard = s.index;
    return f;
  }
  internal::Frame* victim = nullptr;
  if (!s.cold.empty()) {
    victim = s.cold.front();
  } else if (!s.hot.empty()) {
    victim = s.hot.front();
  }
  if (victim == nullptr) {
    int64_t pinned = 0, unused = 0, in_use = 0;
    for (const auto& f : s.frames) {
      if (!f->in_use) {
        ++unused;
      } else if (f->pin_count > 0) {
        ++pinned;
      } else {
        ++in_use;
      }
    }
    return Status::ResourceExhausted(
        "buffer pool: no evictable frame in shard " + std::to_string(s.index) +
        " (pinned=" + std::to_string(pinned) +
        " unpinned-in-use=" + std::to_string(in_use) +
        " unused=" + std::to_string(unused) + ")");
  }
  PARADISE_RETURN_IF_ERROR(EvictLocked(s, victim));
  return victim;
}

Status BufferPool::WriteClusteredLocked(
    DiskVolume* volume, std::vector<internal::Frame*>& frames) {
  std::sort(frames.begin(), frames.end(),
            [](const internal::Frame* a, const internal::Frame* b) {
              return a->id.page_no < b->id.page_no;
            });
  size_t i = 0;
  while (i < frames.size()) {
    size_t j = i + 1;
    while (j < frames.size() &&
           frames[j]->id.page_no == frames[j - 1]->id.page_no + 1) {
      ++j;
    }
    std::vector<const Page*> pages;
    pages.reserve(j - i);
    for (size_t k = i; k < j; ++k) pages.push_back(&frames[k]->page);
    PARADISE_RETURN_IF_ERROR(volume->WriteRun(
        frames[i]->id.page_no, static_cast<uint32_t>(j - i), pages.data()));
    for (size_t k = i; k < j; ++k) frames[k]->dirty = false;
    Shard& s = *shards_[frames[i]->shard];
    ++s.stats.writeback_runs;
    s.stats.writeback_pages += static_cast<int64_t>(j - i);
    i = j;
  }
  return Status::OK();
}

Status BufferPool::EvictLocked(Shard& s, internal::Frame* f) {
  PARADISE_CHECK(f->pin_count == 0 && f->in_use);
  if (f->dirty) {
    DiskVolume* volume = LookupVolume(f->id.volume, nullptr);
    PARADISE_CHECK_MSG(volume != nullptr, "evicting page of unknown volume");
    // Write-clustering: every other dirty unpinned frame of the victim's
    // kRunPages-aligned group (all in this shard by construction) rides
    // the same positioning. Those neighbours stay resident, just clean —
    // their own later eviction becomes write-free.
    std::vector<internal::Frame*> cluster;
    for (auto& frame : s.frames) {
      internal::Frame& g = *frame;
      if (g.in_use && g.dirty && g.pin_count == 0 &&
          g.id.volume == f->id.volume &&
          g.id.page_no / kRunPages == f->id.page_no / kRunPages) {
        cluster.push_back(&g);
      }
    }
    s.stats.dirty_writebacks += static_cast<int64_t>(cluster.size());
    PARADISE_RETURN_IF_ERROR(WriteClusteredLocked(volume, cluster));
  }
  s.table.erase(f->id);
  RemoveFromListLocked(s, f);
  f->in_use = false;
  f->dirty = false;
  f->hot = false;
  f->referenced = false;
  ++s.stats.evictions;
  return Status::OK();
}

StatusOr<PageGuard> BufferPool::Pin(PageId id) {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.table.find(id);
  if (it != s.table.end()) {
    internal::Frame* f = it->second;
    RemoveFromListLocked(s, f);
    if (!f->referenced) {
      // First real use of a readahead page: stays in the cold segment.
      f->referenced = true;
    } else if (!f->hot) {
      // Re-reference: midpoint promotion into the hot segment.
      f->hot = true;
      ++s.stats.promotions;
    }
    ++f->pin_count;
    ++s.stats.hits;
    return PageGuard(this, f, &f->page, id);
  }
  ++s.stats.misses;
  sim::RetryPolicy policy;
  DiskVolume* volume = LookupVolume(id.volume, &policy);
  if (volume == nullptr) {
    return Status::NotFound("unknown volume");
  }
  PARADISE_ASSIGN_OR_RETURN(internal::Frame * f, FindVictimLocked(s));
  Status st = ReadPageVerifiedLocked(s, volume, policy, id.page_no, &f->page,
                                     /*first_attempt=*/0, Status::OK());
  if (!st.ok()) {
    s.free_frames.push_back(f);
    return st;
  }
  f->id = id;
  f->pin_count = 1;
  f->dirty = false;
  f->in_use = true;
  f->hot = false;
  f->referenced = true;
  f->in_lru = false;
  s.table[id] = f;
  return PageGuard(this, f, &f->page, id);
}

Status BufferPool::ReadPageVerifiedLocked(Shard& s, DiskVolume* volume,
                                          const sim::RetryPolicy& policy,
                                          PageNo page_no, Page* out,
                                          int first_attempt, Status last) {
  for (int attempt = first_attempt; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff before each retry, as modeled time on the
      // volume's clock — never a host sleep, so faulted runs stay
      // deterministic across thread counts.
      if (volume->clock() != nullptr) {
        volume->clock()->ChargeIdle(policy.BackoffSeconds(attempt - 1));
      }
      ++s.stats.read_retries;
    }
    Status st = volume->ReadPage(page_no, out);
    if (st.ok()) {
      if (out->VerifyChecksum()) return Status::OK();
      ++s.stats.checksum_failures;
      last = Status::Corruption("page checksum mismatch on volume " +
                                std::to_string(volume->volume_id()) +
                                " page " + std::to_string(page_no));
      continue;  // torn transfer: the durable copy may still be good
    }
    if (st.code() != StatusCode::kUnavailable) return st;  // not transient
    last = std::move(st);
  }
  return last;
}

StatusOr<PageGuard> BufferPool::NewPage(uint32_t volume) {
  DiskVolume* vol = LookupVolume(volume, nullptr);
  if (vol == nullptr) {
    return Status::NotFound("unknown volume");
  }
  PageNo page_no = vol->AllocatePage();
  PageId id{volume, page_no};
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> g(s.mu);
  PARADISE_ASSIGN_OR_RETURN(internal::Frame * f, FindVictimLocked(s));
  f->page = Page();
  f->id = id;
  f->pin_count = 1;
  f->dirty = true;  // fresh pages must reach disk eventually
  f->in_use = true;
  f->hot = false;
  f->referenced = true;
  f->in_lru = false;
  s.table[id] = f;
  return PageGuard(this, f, &f->page, id);
}

void BufferPool::Prefetch(PageId first, uint32_t count) {
  if (count == 0 || first.page_no == kInvalidPageNo) return;
  sim::RetryPolicy policy;
  DiskVolume* volume = LookupVolume(first.volume, &policy);
  if (volume == nullptr) return;
  uint32_t done = 0;
  while (done < count) {
    PageNo p = first.page_no + done;
    // Windows are aligned to kRunPages groups so each stays in one shard.
    uint32_t group_end = (p / kRunPages + 1) * kRunPages;
    uint32_t window = std::min(count - done, group_end - p);
    PageId window_first{first.volume, p};
    PrefetchWindow(shard_for(window_first), volume, policy, window_first,
                   window);
    done += window;
  }
}

void BufferPool::PrefetchWindow(Shard& s, DiskVolume* volume,
                                const sim::RetryPolicy& policy, PageId first,
                                uint32_t count) {
  std::lock_guard<std::mutex> g(s.mu);
  // A window that cannot fit alongside the pages it serves would evict
  // itself out of a tiny shard; skip and let demand reads handle it.
  if (count > s.capacity / 2) return;
  uint32_t i = 0;
  while (i < count) {
    if (s.table.count(PageId{first.volume, first.page_no + i}) != 0) {
      ++i;
      continue;
    }
    // Maximal run of uncached pages starting at i.
    uint32_t j = i + 1;
    while (j < count &&
           s.table.count(PageId{first.volume, first.page_no + j}) == 0) {
      ++j;
    }
    uint32_t run_len = j - i;
    PageNo run_first = first.page_no + i;

    std::vector<internal::Frame*> frames;
    frames.reserve(run_len);
    for (uint32_t k = 0; k < run_len; ++k) {
      auto victim_or = FindVictimLocked(s);
      if (!victim_or.ok()) break;  // advisory: stop if nothing evictable
      frames.push_back(victim_or.value());
    }
    if (frames.size() < run_len) {
      for (internal::Frame* f : frames) s.free_frames.push_back(f);
      return;
    }
    std::vector<Page*> pages(run_len);
    for (uint32_t k = 0; k < run_len; ++k) pages[k] = &frames[k]->page;
    std::vector<Status> statuses(run_len, Status::OK());
    // Scan sharing: while a gate is armed, every free_eighths-th-of-8
    // window (by issue ordinal — a pure function of the access sequence,
    // never of the thread schedule) attaches to the concurrent scan that
    // is already streaming these pages and rides its transfer uncharged.
    bool attached = false;
    if (scan_gate_ != nullptr && scan_gate_->free_eighths > 0) {
      attached = (scan_gate_->ordinal++ & 7) <
                 static_cast<int64_t>(scan_gate_->free_eighths);
    }
    Status run_st = volume->ReadRun(run_first, run_len, pages.data(),
                                    statuses.data(), /*charge=*/!attached);
    if (!run_st.ok()) {
      for (internal::Frame* f : frames) s.free_frames.push_back(f);
      return;
    }
    if (attached) {
      ++s.stats.scan_shared_windows;
      ++scan_gate_->attached_windows;
    } else {
      ++s.stats.readahead_batches;
    }
    for (uint32_t k = 0; k < run_len; ++k) {
      internal::Frame* f = frames[k];
      PageNo page_no = run_first + k;
      Status st = statuses[k];
      if (st.ok() && !f->page.VerifyChecksum()) {
        ++s.stats.checksum_failures;
        st = Status::Corruption("page checksum mismatch on volume " +
                                std::to_string(volume->volume_id()) +
                                " page " + std::to_string(page_no));
      }
      if (!st.ok() && (st.code() == StatusCode::kUnavailable ||
                       st.code() == StatusCode::kCorruption)) {
        // The batch consumed the first attempt; resume the retry budget.
        st = ReadPageVerifiedLocked(s, volume, policy, page_no, &f->page,
                                    /*first_attempt=*/1, st);
      }
      if (!st.ok()) {
        // Advisory: drop the page; the demand Pin will surface the error.
        s.free_frames.push_back(f);
        continue;
      }
      f->id = PageId{first.volume, page_no};
      f->pin_count = 0;
      f->dirty = false;
      f->in_use = true;
      f->hot = false;
      f->referenced = false;  // first Pin counts as the first touch
      s.table[f->id] = f;
      s.cold.push_back(f);
      f->lru_it = std::prev(s.cold.end());
      f->in_lru = true;
      if (attached) {
        ++s.stats.scan_shared_pages;
        ++scan_gate_->attached_pages;
      } else {
        ++s.stats.readahead_pages;
      }
    }
    i = j;
  }
}

StatusOr<std::vector<PageGuard>> BufferPool::PinRange(PageId first,
                                                      uint32_t count) {
  Prefetch(first, count);
  std::vector<PageGuard> guards;
  guards.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard guard,
                              Pin(PageId{first.volume, first.page_no + i}));
    guards.push_back(std::move(guard));
  }
  return guards;
}

void BufferPool::Unpin(internal::Frame* frame) {
  Shard& s = *shards_[frame->shard];
  std::lock_guard<std::mutex> g(s.mu);
  PARADISE_CHECK(frame->pin_count > 0);
  if (--frame->pin_count == 0) {
    PushUnpinnedLocked(s, frame);
  }
}

void BufferPool::MarkDirtyFrame(internal::Frame* frame) {
  Shard& s = *shards_[frame->shard];
  std::lock_guard<std::mutex> g(s.mu);
  frame->dirty = true;
}

Status BufferPool::FlushAll() {
  // Lock every shard (index order, the only multi-shard acquisition in the
  // pool) so the dirty set is one consistent snapshot; consecutive
  // kRunPages groups hash to different shards, so maximal runs need the
  // cross-shard view.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);

  std::map<uint32_t, std::vector<internal::Frame*>> dirty_by_volume;
  for (auto& shard : shards_) {
    for (auto& frame : shard->frames) {
      internal::Frame& f = *frame;
      if (f.in_use && f.dirty) dirty_by_volume[f.id.volume].push_back(&f);
    }
  }
  for (auto& [volume_id, frames] : dirty_by_volume) {
    DiskVolume* volume = LookupVolume(volume_id, nullptr);
    PARADISE_CHECK(volume != nullptr);
    PARADISE_RETURN_IF_ERROR(WriteClusteredLocked(volume, frames));
  }
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id) {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.table.find(id);
  if (it == s.table.end()) return Status::OK();  // not cached: already on disk
  internal::Frame* f = it->second;
  if (f->dirty) {
    DiskVolume* volume = LookupVolume(id.volume, nullptr);
    PARADISE_CHECK(volume != nullptr);
    PARADISE_RETURN_IF_ERROR(volume->WritePage(id.page_no, f->page));
    f->dirty = false;
  }
  return Status::OK();
}

void BufferPool::DiscardAll() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::lock_guard<std::mutex> g(s.mu);
    PARADISE_CHECK_MSG(
        [&] {
          for (auto& f : s.frames) {
            if (f->in_use && f->pin_count > 0) return false;
          }
          return true;
        }(),
        "DiscardAll with pinned pages");
    s.table.clear();
    s.cold.clear();
    s.hot.clear();
    s.free_frames.clear();
    for (auto& frame : s.frames) {
      internal::Frame& f = *frame;
      f.in_use = false;
      f.dirty = false;
      f.hot = false;
      f.referenced = false;
      f.in_lru = false;
      f.pin_count = 0;
      s.free_frames.push_back(&f);
    }
  }
}

void BufferPool::Invalidate(PageId id) {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> g(s.mu);
  auto it = s.table.find(id);
  if (it == s.table.end()) return;
  internal::Frame* f = it->second;
  PARADISE_CHECK_MSG(f->pin_count == 0, "invalidating a pinned page");
  RemoveFromListLocked(s, f);
  f->in_use = false;
  f->dirty = false;
  f->hot = false;
  f->referenced = false;
  s.table.erase(it);
  s.free_frames.push_back(f);
}

BufferPool::Stats BufferPool::stats() const {
  // Lock every shard (index order, matching FlushAll's multi-shard
  // acquisition) before reading any counter, so the aggregate is one
  // consistent cross-shard snapshot. Locking shards one at a time would
  // let a concurrent writeback or scan land half in the sum and half out
  // of it — e.g. a cross-shard WriteRun's run counted on the first
  // frame's shard while the pages it carried on a later shard are missed.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  Stats total;
  for (const auto& shard : shards_) {
    total.Add(shard->stats);
  }
  return total;
}

}  // namespace paradise::storage
