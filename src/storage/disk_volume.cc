#include "storage/disk_volume.h"

#include "common/logging.h"

namespace paradise::storage {

PageNo DiskVolume::AllocatePage() {
  std::lock_guard<std::mutex> g(mu_);
  if (!free_list_.empty()) {
    PageNo p = free_list_.back();
    free_list_.pop_back();
    --freed_count_;
    return p;
  }
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageNo>(pages_.size() - 1);
}

PageNo DiskVolume::AllocateRun(uint32_t count) {
  PARADISE_CHECK(count > 0);
  std::lock_guard<std::mutex> g(mu_);
  PageNo first = static_cast<PageNo>(pages_.size());
  for (uint32_t i = 0; i < count; ++i) {
    pages_.push_back(std::make_unique<Page>());
  }
  return first;
}

void DiskVolume::FreePage(PageNo page_no) {
  std::lock_guard<std::mutex> g(mu_);
  PARADISE_CHECK(page_no < pages_.size());
  free_list_.push_back(page_no);
  ++freed_count_;
}

void DiskVolume::ChargeAccess(PageNo page_no, bool is_write) {
  if (clock_ == nullptr) return;
  // Sequential if this access continues where the previous one ended.
  bool sequential = (last_accessed_ != kInvalidPageNo &&
                     page_no == last_accessed_ + 1);
  int64_t seeks = sequential ? 0 : 1;
  if (is_write) {
    clock_->ChargeDiskWrite(static_cast<int64_t>(kPageSize), seeks);
  } else {
    clock_->ChargeDiskRead(static_cast<int64_t>(kPageSize), seeks);
  }
  last_accessed_ = page_no;
}

Status DiskVolume::ReadPageLocked(PageNo page_no, Page* out) {
  sim::DiskFaultKind fault = sim::DiskFaultKind::kNone;
  if (fault_injector_ != nullptr) {
    fault = fault_injector_->OnDiskRead(fault_node_id_, volume_id_, page_no,
                                        read_ordinals_[page_no]++);
  }
  if (fault == sim::DiskFaultKind::kTransientError) {
    // The arm charged for the access but the controller reported failure.
    return Status::Unavailable("injected transient disk read error");
  }
  *out = *pages_[page_no];
  if (fault == sim::DiskFaultKind::kTornRead) {
    // Corrupt only the returned copy: flip a payload run and garble the
    // checksum word so verification cannot pass even on a fresh page.
    // The durable medium stays intact, so a retried read succeeds.
    for (size_t i = Page::kHeaderSize; i < Page::kHeaderSize + 64; ++i) {
      out->data()[i] ^= 0xff;
    }
    out->set_stored_checksum(out->stored_checksum() ^ 0xdeadbeefu);
    if (out->stored_checksum() == 0) out->set_stored_checksum(0xdeadbeefu);
  }
  return Status::OK();
}

Status DiskVolume::ReadPage(PageNo page_no, Page* out) {
  std::lock_guard<std::mutex> g(mu_);
  if (page_no >= pages_.size()) {
    return Status::OutOfRange("read past end of volume");
  }
  ChargeAccess(page_no, /*is_write=*/false);
  return ReadPageLocked(page_no, out);
}

Status DiskVolume::ReadRun(PageNo first, uint32_t count, Page* const* outs,
                           Status* statuses, bool charge) {
  if (count == 0) return Status::OK();
  std::lock_guard<std::mutex> g(mu_);
  if (first + static_cast<uint64_t>(count) > pages_.size()) {
    return Status::OutOfRange("run read past end of volume");
  }
  if (clock_ != nullptr && charge) {
    // One positioning cost for the whole run (zero when it continues the
    // previous access), then every page is a sequential transfer.
    bool sequential =
        (last_accessed_ != kInvalidPageNo && first == last_accessed_ + 1);
    clock_->ChargeDiskRead(static_cast<int64_t>(count) *
                               static_cast<int64_t>(kPageSize),
                           sequential ? 0 : 1);
  }
  // Head position advances whether or not the transfer was charged, so a
  // shared (uncharged) window leaves the arm exactly where a paid one
  // would.
  last_accessed_ = first + count - 1;
  for (uint32_t i = 0; i < count; ++i) {
    statuses[i] = ReadPageLocked(first + i, outs[i]);
  }
  return Status::OK();
}

Status DiskVolume::WritePage(PageNo page_no, const Page& page) {
  std::lock_guard<std::mutex> g(mu_);
  if (page_no >= pages_.size()) {
    return Status::OutOfRange("write past end of volume");
  }
  ChargeAccess(page_no, /*is_write=*/true);
  *pages_[page_no] = page;
  pages_[page_no]->StampChecksum();
  return Status::OK();
}

Status DiskVolume::WriteRun(PageNo first, uint32_t count,
                            const Page* const* pages) {
  if (count == 0) return Status::OK();
  std::lock_guard<std::mutex> g(mu_);
  if (first + static_cast<uint64_t>(count) > pages_.size()) {
    return Status::OutOfRange("run write past end of volume");
  }
  if (clock_ != nullptr) {
    // One positioning cost for the whole run (zero when it continues the
    // previous access), then every page is a sequential transfer.
    bool sequential =
        (last_accessed_ != kInvalidPageNo && first == last_accessed_ + 1);
    clock_->ChargeDiskWrite(static_cast<int64_t>(count) *
                                static_cast<int64_t>(kPageSize),
                            sequential ? 0 : 1);
    last_accessed_ = first + count - 1;
  }
  for (uint32_t i = 0; i < count; ++i) {
    *pages_[first + i] = *pages[i];
    pages_[first + i]->StampChecksum();
  }
  return Status::OK();
}

void DiskVolume::SetFaultInjector(sim::FaultInjector* injector,
                                  uint32_t node_id) {
  std::lock_guard<std::mutex> g(mu_);
  fault_injector_ = injector;
  fault_node_id_ = node_id;
  read_ordinals_.clear();
}

uint32_t DiskVolume::num_pages() const {
  std::lock_guard<std::mutex> g(mu_);
  return static_cast<uint32_t>(pages_.size());
}

uint32_t DiskVolume::allocated_pages() const {
  std::lock_guard<std::mutex> g(mu_);
  return static_cast<uint32_t>(pages_.size()) -
         static_cast<uint32_t>(freed_count_);
}

}  // namespace paradise::storage
