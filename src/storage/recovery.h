#ifndef PARADISE_STORAGE_RECOVERY_H_
#define PARADISE_STORAGE_RECOVERY_H_

#include "common/status.h"
#include "storage/transaction.h"

namespace paradise::storage {

/// ARIES-style crash recovery over the durable log prefix:
///   1. Analysis: find loser transactions (active at crash).
///   2. Redo: repeat history — every durable data record whose page LSN
///      shows the change did not reach disk is reapplied.
///   3. Undo: roll losers back via their log chains, writing CLRs, then
///      log their abort records.
///
/// Call after a simulated crash (BufferPool::DiscardAll +
/// LogManager::CrashTruncate).
class RecoveryManager {
 public:
  explicit RecoveryManager(TransactionManager* txn_manager)
      : txn_manager_(txn_manager) {}

  Status Recover();

  struct RecoveryStats {
    int64_t records_analyzed = 0;
    int64_t records_redone = 0;
    int64_t loser_txns = 0;
  };
  const RecoveryStats& stats() const { return stats_; }

 private:
  TransactionManager* const txn_manager_;
  RecoveryStats stats_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_RECOVERY_H_
