#ifndef PARADISE_STORAGE_LOCK_MANAGER_H_
#define PARADISE_STORAGE_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace paradise::storage {

/// Lock modes for multi-granularity locking (Section 2.2: "Locking can be
/// done at multiple granularities (e.g. object, page, or file) with
/// optional lock escalation").
enum class LockMode : uint8_t { kIS, kIX, kS, kSIX, kX };

/// Granularity levels form a hierarchy: file > page > record.
enum class LockLevel : uint8_t { kFile = 0, kPage = 1, kRecord = 2 };

/// Names a lockable resource.
struct LockName {
  uint32_t file = 0;
  PageNo page = kInvalidPageNo;
  uint16_t slot = 0;
  LockLevel level = LockLevel::kFile;

  static LockName File(uint32_t f) { return {f, kInvalidPageNo, 0, LockLevel::kFile}; }
  static LockName Page(uint32_t f, PageNo p) { return {f, p, 0, LockLevel::kPage}; }
  static LockName Record(uint32_t f, const Oid& oid) {
    return {f, oid.page, oid.slot, LockLevel::kRecord};
  }

  friend bool operator==(const LockName&, const LockName&) = default;
};

struct LockNameHash {
  size_t operator()(const LockName& n) const {
    uint64_t h = (static_cast<uint64_t>(n.file) << 34) ^
                 (static_cast<uint64_t>(n.page) << 10) ^
                 (static_cast<uint64_t>(n.slot) << 2) ^
                 static_cast<uint64_t>(n.level);
    return std::hash<uint64_t>()(h);
  }
};

bool LockModesCompatible(LockMode held, LockMode requested);

/// True if `held` already covers `requested` (e.g. X covers S).
bool LockModeCovers(LockMode held, LockMode requested);

/// The mode that grants both (lattice join), e.g. S + IX = SIX.
LockMode LockModeJoin(LockMode a, LockMode b);

/// Blocking multi-granularity lock manager with waits-for-graph deadlock
/// detection (the requester that would close a cycle is aborted) and
/// record-to-file lock escalation past a per-(txn, file) threshold.
class LockManager {
 public:
  explicit LockManager(size_t escalation_threshold = 64)
      : escalation_threshold_(escalation_threshold) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) `mode` on `name`. Blocks until granted.
  /// Returns kAborted if waiting would create a deadlock.
  ///
  /// Callers follow the usual protocol: intention locks on ancestors
  /// before locking descendants. Acquire() checks this in debug builds.
  Status Acquire(TxnId txn, const LockName& name, LockMode mode);

  /// Releases everything `txn` holds (strict two-phase: locks are held to
  /// commit/abort).
  void ReleaseAll(TxnId txn);

  /// True if `txn` holds a lock on `name` covering `mode`.
  bool Holds(TxnId txn, const LockName& name, LockMode mode) const;

  /// Number of distinct resources currently locked by `txn`.
  size_t HeldCount(TxnId txn) const;

  struct Stats {
    int64_t acquired = 0;
    int64_t waits = 0;
    int64_t deadlocks = 0;
    int64_t escalations = 0;
  };
  Stats stats() const;

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool granted = false;
  };
  struct LockEntry {
    std::vector<Holder> holders;
    std::list<Waiter*> waiters;
  };

  // All require mu_ held.
  bool GrantableLocked(const LockEntry& entry, TxnId txn, LockMode mode) const;
  bool WouldDeadlockLocked(TxnId requester, const LockName& name,
                           LockMode mode) const;
  void GrantWaitersLocked(LockEntry* entry);
  Status EscalateLocked(std::unique_lock<std::mutex>* lk, TxnId txn,
                        uint32_t file, LockMode record_mode);
  Status AcquireLocked(std::unique_lock<std::mutex>* lk, TxnId txn,
                       const LockName& name, LockMode mode);

  const size_t escalation_threshold_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<LockName, LockEntry, LockNameHash> table_;
  // txn -> resources it holds (for ReleaseAll / escalation counting).
  std::unordered_map<TxnId, std::vector<LockName>> held_;
  Stats stats_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_LOCK_MANAGER_H_
