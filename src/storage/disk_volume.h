#ifndef PARADISE_STORAGE_DISK_VOLUME_H_
#define PARADISE_STORAGE_DISK_VOLUME_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/fault_injector.h"
#include "sim/node_clock.h"
#include "storage/page.h"

namespace paradise::storage {

/// A simulated raw disk: an in-memory array of pages standing in for one of
/// the node's SCSI drives. Every physical read/write charges the owning
/// node's clock; consecutive page numbers are charged as sequential
/// transfer (no seek), anything else pays a positioning cost. The memory
/// behind a volume is the *durable* medium for recovery tests — the buffer
/// pool above it is the volatile part.
class DiskVolume {
 public:
  /// `clock` may be null (cost-free volume, used by unit tests).
  DiskVolume(uint32_t volume_id, sim::NodeClock* clock)
      : volume_id_(volume_id), clock_(clock) {}

  DiskVolume(const DiskVolume&) = delete;
  DiskVolume& operator=(const DiskVolume&) = delete;

  uint32_t volume_id() const { return volume_id_; }

  /// Allocates one page; pages within an extent are physically contiguous.
  PageNo AllocatePage();

  /// Allocates `count` physically consecutive pages and returns the first.
  PageNo AllocateRun(uint32_t count);

  void FreePage(PageNo page_no);

  /// Reads a page. With a fault injector wired, the read may fail with
  /// kUnavailable (transient error — charged, retryable) or return torn
  /// bytes (corruption confined to `out`; the durable medium is intact, so
  /// a retry after checksum detection succeeds).
  Status ReadPage(PageNo page_no, Page* out);

  /// Batched read of `count` consecutive pages starting at `first` into
  /// `outs[0..count)`. Charged atomically as one positioning cost (zero if
  /// the run continues the previous access) plus `count` sequential
  /// transfers — the readahead path's whole point. Fault injection is
  /// consulted once per page in page order with the page's own read
  /// ordinal, so a batch fetch makes exactly the fault decisions the same
  /// pages would see read one at a time; per-page outcomes land in
  /// `statuses[0..count)`. Returns non-OK only for a bad range.
  ///
  /// `charge == false` suppresses the clock charges only — the run rides a
  /// transfer another query already paid for (scan sharing). Fault
  /// ordinals and the head-position continuity (`last_accessed_`) advance
  /// exactly as for a charged read, so sharing never changes which faults
  /// fire or how the next access is charged.
  Status ReadRun(PageNo first, uint32_t count, Page* const* outs,
                 Status* statuses, bool charge = true);

  /// Writes a page, stamping the durable copy's checksum.
  Status WritePage(PageNo page_no, const Page& page);

  /// Batched write of `count` consecutive pages starting at `first` from
  /// `pages[0..count)`. Mirrors ReadRun's charging: one positioning cost
  /// (zero if the run continues the previous access) plus `count`
  /// sequential transfers — what the writeback batcher buys over `count`
  /// WritePage calls. Writes have no fault-injection hook, so batching
  /// changes no fault ordinals. Returns non-OK only for a bad range.
  Status WriteRun(PageNo first, uint32_t count, const Page* const* pages);

  uint32_t num_pages() const;

  /// Number of allocated (non-freed) pages.
  uint32_t allocated_pages() const;

  sim::NodeClock* clock() const { return clock_; }

  /// Wires a fault injector; `node_id` keys this volume's fault decisions.
  /// Pass nullptr to unwire.
  void SetFaultInjector(sim::FaultInjector* injector, uint32_t node_id);

 private:
  void ChargeAccess(PageNo page_no, bool is_write);

  /// Copies the durable page into `out`, applying any injected fault for
  /// this page's next read ordinal. Requires mu_ held; does not charge.
  Status ReadPageLocked(PageNo page_no, Page* out);

  const uint32_t volume_id_;
  sim::NodeClock* const clock_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageNo> free_list_;
  PageNo last_accessed_ = kInvalidPageNo;
  int64_t freed_count_ = 0;

  // Fault injection state (all under mu_). The per-page read ordinal makes
  // fault decisions a pure function of access history, not thread schedule.
  sim::FaultInjector* fault_injector_ = nullptr;
  uint32_t fault_node_id_ = 0;
  std::unordered_map<PageNo, int64_t> read_ordinals_;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_DISK_VOLUME_H_
