#include "storage/lock_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace paradise::storage {

bool LockModesCompatible(LockMode held, LockMode requested) {
  // Standard multi-granularity compatibility matrix.
  auto idx = [](LockMode m) { return static_cast<int>(m); };
  //                IS     IX     S      SIX    X
  static const bool kCompat[5][5] = {
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kCompat[idx(held)][idx(requested)];
}

bool LockModeCovers(LockMode held, LockMode requested) {
  if (held == requested) return true;
  switch (held) {
    case LockMode::kX:
      return true;
    case LockMode::kSIX:
      return requested == LockMode::kS || requested == LockMode::kIX ||
             requested == LockMode::kIS;
    case LockMode::kS:
      return requested == LockMode::kIS;
    case LockMode::kIX:
      return requested == LockMode::kIS;
    case LockMode::kIS:
      return false;
  }
  return false;
}

LockMode LockModeJoin(LockMode a, LockMode b) {
  if (LockModeCovers(a, b)) return a;
  if (LockModeCovers(b, a)) return b;
  // The interesting joins: S+IX = SIX, IS+anything stronger = stronger.
  auto is_one = [&](LockMode x, LockMode y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  if (is_one(LockMode::kS, LockMode::kIX)) return LockMode::kSIX;
  if (is_one(LockMode::kS, LockMode::kSIX)) return LockMode::kSIX;
  if (is_one(LockMode::kIX, LockMode::kSIX)) return LockMode::kSIX;
  return LockMode::kX;
}

bool LockManager::GrantableLocked(const LockEntry& entry, TxnId txn,
                                  LockMode mode) const {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;  // self-conflicts handled by upgrade join
    if (!LockModesCompatible(h.mode, mode)) return false;
  }
  return true;
}

bool LockManager::WouldDeadlockLocked(TxnId requester, const LockName& name,
                                      LockMode mode) const {
  // Build the waits-for edge set on the fly and DFS from every transaction
  // the requester would wait on, looking for a path back to the requester.
  //
  // Edges: waiter -> each incompatible holder of the resource it waits on.
  auto blockers = [&](TxnId txn, const LockName& n,
                      LockMode m) -> std::vector<TxnId> {
    std::vector<TxnId> out;
    auto it = table_.find(n);
    if (it == table_.end()) return out;
    for (const Holder& h : it->second.holders) {
      if (h.txn != txn && !LockModesCompatible(h.mode, m)) out.push_back(h.txn);
    }
    return out;
  };

  // What is every other waiter currently waiting on?
  struct Wait {
    TxnId txn;
    LockName name;
    LockMode mode;
  };
  std::vector<Wait> waits;
  for (const auto& [n, entry] : table_) {
    for (const Waiter* w : entry.waiters) {
      if (!w->granted) waits.push_back(Wait{w->txn, n, w->mode});
    }
  }

  std::vector<TxnId> stack = blockers(requester, name, mode);
  std::vector<TxnId> visited;
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == requester) return true;
    if (std::find(visited.begin(), visited.end(), cur) != visited.end()) {
      continue;
    }
    visited.push_back(cur);
    for (const Wait& w : waits) {
      if (w.txn != cur) continue;
      for (TxnId b : blockers(cur, w.name, w.mode)) stack.push_back(b);
    }
  }
  return false;
}

void LockManager::GrantWaitersLocked(LockEntry* entry) {
  for (Waiter* w : entry->waiters) {
    if (w->granted) continue;
    if (GrantableLocked(*entry, w->txn, w->mode)) {
      w->granted = true;
      // Holder entry is added by the waiting thread when it wakes.
    }
  }
}

Status LockManager::EscalateLocked(std::unique_lock<std::mutex>* lk, TxnId txn,
                                   uint32_t file, LockMode record_mode) {
  // Escalate the txn's record locks in `file` to a single file-level lock:
  // S if it only reads, X if it writes.
  LockMode file_mode =
      (record_mode == LockMode::kS) ? LockMode::kS : LockMode::kX;
  ++stats_.escalations;
  PARADISE_RETURN_IF_ERROR(
      AcquireLocked(lk, txn, LockName::File(file), file_mode));
  // Drop the now-subsumed record/page locks.
  auto held_it = held_.find(txn);
  if (held_it != held_.end()) {
    std::vector<LockName> keep;
    for (const LockName& n : held_it->second) {
      if (n.file == file && n.level != LockLevel::kFile) {
        auto it = table_.find(n);
        if (it != table_.end()) {
          auto& holders = it->second.holders;
          holders.erase(std::remove_if(holders.begin(), holders.end(),
                                       [&](const Holder& h) {
                                         return h.txn == txn;
                                       }),
                        holders.end());
          GrantWaitersLocked(&it->second);
          if (it->second.holders.empty() && it->second.waiters.empty()) {
            table_.erase(it);
          }
        }
      } else {
        keep.push_back(n);
      }
    }
    held_it->second = std::move(keep);
  }
  cv_.notify_all();
  return Status::OK();
}

Status LockManager::AcquireLocked(std::unique_lock<std::mutex>* lk, TxnId txn,
                                  const LockName& name, LockMode mode) {
  LockEntry& entry = table_[name];

  // Upgrade path: if the txn already holds this resource, join the modes.
  for (Holder& h : entry.holders) {
    if (h.txn != txn) continue;
    if (LockModeCovers(h.mode, mode)) return Status::OK();
    LockMode joined = LockModeJoin(h.mode, mode);
    // Wait until the joined mode is compatible with the other holders.
    while (!GrantableLocked(entry, txn, joined)) {
      if (WouldDeadlockLocked(txn, name, joined)) {
        ++stats_.deadlocks;
        return Status::Aborted("deadlock on lock upgrade");
      }
      ++stats_.waits;
      Waiter w{txn, joined, false};
      entry.waiters.push_back(&w);
      cv_.wait(*lk, [&] { return w.granted || GrantableLocked(entry, txn, joined); });
      entry.waiters.remove(&w);
    }
    h.mode = joined;
    ++stats_.acquired;
    return Status::OK();
  }

  while (!GrantableLocked(entry, txn, mode)) {
    if (WouldDeadlockLocked(txn, name, mode)) {
      ++stats_.deadlocks;
      return Status::Aborted("deadlock detected");
    }
    ++stats_.waits;
    Waiter w{txn, mode, false};
    entry.waiters.push_back(&w);
    cv_.wait(*lk, [&] { return w.granted || GrantableLocked(entry, txn, mode); });
    entry.waiters.remove(&w);
  }
  entry.holders.push_back(Holder{txn, mode});
  held_[txn].push_back(name);
  ++stats_.acquired;
  return Status::OK();
}

Status LockManager::Acquire(TxnId txn, const LockName& name, LockMode mode) {
  std::unique_lock<std::mutex> lk(mu_);

  // Escalation check: too many record-level locks in one file?
  if (name.level == LockLevel::kRecord) {
    auto held_it = held_.find(txn);
    if (held_it != held_.end()) {
      size_t in_file = 0;
      for (const LockName& n : held_it->second) {
        if (n.file == name.file && n.level == LockLevel::kRecord) ++in_file;
      }
      if (in_file >= escalation_threshold_) {
        return EscalateLocked(&lk, txn, name.file, mode);
      }
      // If we already escalated to a covering file lock, we are done.
      auto file_it = table_.find(LockName::File(name.file));
      if (file_it != table_.end()) {
        for (const Holder& h : file_it->second.holders) {
          if (h.txn == txn &&
              LockModeCovers(h.mode, mode)) {
            return Status::OK();
          }
        }
      }
    }
  }
  return AcquireLocked(&lk, txn, name, mode);
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> g(mu_);
  auto held_it = held_.find(txn);
  if (held_it == held_.end()) return;
  for (const LockName& n : held_it->second) {
    auto it = table_.find(n);
    if (it == table_.end()) continue;
    auto& holders = it->second.holders;
    holders.erase(std::remove_if(
                      holders.begin(), holders.end(),
                      [&](const Holder& h) { return h.txn == txn; }),
                  holders.end());
    GrantWaitersLocked(&it->second);
    if (it->second.holders.empty() && it->second.waiters.empty()) {
      table_.erase(it);
    }
  }
  held_.erase(held_it);
  cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, const LockName& name, LockMode mode) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = table_.find(name);
  if (it == table_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn && LockModeCovers(h.mode, mode)) return true;
  }
  return false;
}

size_t LockManager::HeldCount(TxnId txn) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

LockManager::Stats LockManager::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace paradise::storage
