#include "storage/large_object.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace paradise::storage {

StatusOr<LobId> LargeObjectStore::Write(const uint8_t* data, size_t size) {
  uint32_t pages =
      std::max<uint32_t>(1, static_cast<uint32_t>(
                                (size + kBytesPerPage - 1) / kBytesPerPage));
  PageNo first = volume_->AllocateRun(pages);
  size_t written = 0;
  for (uint32_t i = 0; i < pages; ++i) {
    PARADISE_ASSIGN_OR_RETURN(
        PageGuard guard,
        pool_->Pin(PageId{volume_->volume_id(), first + i}));
    size_t n = std::min(kBytesPerPage, size - written);
    std::memcpy(guard.page()->payload(), data + written, n);
    written += n;
    guard.MarkDirty();
  }
  return LobId{volume_->volume_id(), first, pages, static_cast<uint32_t>(size)};
}

StatusOr<ByteBuffer> LargeObjectStore::Read(const LobId& id) const {
  return ReadRange(id, 0, id.length);
}

StatusOr<ByteBuffer> LargeObjectStore::ReadRange(const LobId& id,
                                                 size_t offset,
                                                 size_t length) const {
  if (offset + length > id.length) {
    return Status::OutOfRange("LOB range read past end");
  }
  ByteBuffer out(length);
  if (length == 0) return out;
  uint32_t first_index = static_cast<uint32_t>(offset / kBytesPerPage);
  uint32_t last_index =
      static_cast<uint32_t>((offset + length - 1) / kBytesPerPage);
  size_t read = 0;
  // Pin the covered pages in batched windows: each window is one
  // positioning cost plus sequential transfers on a cold read. The window
  // is clamped against the pool so tiny pools never see more pins at once
  // than they can hold.
  uint32_t window_pages = std::min<uint32_t>(
      kPinWindowPages,
      std::max<uint32_t>(1, static_cast<uint32_t>(pool_->capacity() / 4)));
  for (uint32_t window = first_index; window <= last_index;
       window += window_pages) {
    uint32_t count =
        std::min<uint32_t>(window_pages, last_index - window + 1);
    PARADISE_ASSIGN_OR_RETURN(
        std::vector<PageGuard> guards,
        pool_->PinRange(PageId{id.volume, id.first_page + window}, count));
    for (uint32_t k = 0; k < count; ++k) {
      size_t page_start = static_cast<size_t>(window + k) * kBytesPerPage;
      size_t in_page = offset + read > page_start ? offset + read - page_start
                                                  : 0;
      size_t n = std::min(kBytesPerPage - in_page, length - read);
      std::memcpy(out.data() + read, guards[k].page()->payload() + in_page, n);
      read += n;
    }
  }
  PARADISE_CHECK(read == length);
  return out;
}

void LargeObjectStore::Free(const LobId& id) {
  for (uint32_t i = 0; i < id.num_pages; ++i) {
    pool_->Invalidate(PageId{id.volume, id.first_page + i});
    volume_->FreePage(id.first_page + i);
  }
}

}  // namespace paradise::storage
