#include "storage/large_object.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace paradise::storage {

StatusOr<LobId> LargeObjectStore::Write(const uint8_t* data, size_t size) {
  uint32_t pages =
      std::max<uint32_t>(1, static_cast<uint32_t>(
                                (size + kBytesPerPage - 1) / kBytesPerPage));
  PageNo first = volume_->AllocateRun(pages);
  size_t written = 0;
  for (uint32_t i = 0; i < pages; ++i) {
    PARADISE_ASSIGN_OR_RETURN(
        PageGuard guard,
        pool_->Pin(PageId{volume_->volume_id(), first + i}));
    size_t n = std::min(kBytesPerPage, size - written);
    std::memcpy(guard.page()->payload(), data + written, n);
    written += n;
    guard.MarkDirty();
  }
  return LobId{volume_->volume_id(), first, pages, static_cast<uint32_t>(size)};
}

StatusOr<ByteBuffer> LargeObjectStore::Read(const LobId& id) const {
  return ReadRange(id, 0, id.length);
}

StatusOr<ByteBuffer> LargeObjectStore::ReadRange(const LobId& id,
                                                 size_t offset,
                                                 size_t length) const {
  if (offset + length > id.length) {
    return Status::OutOfRange("LOB range read past end");
  }
  ByteBuffer out(length);
  size_t read = 0;
  while (read < length) {
    size_t at = offset + read;
    uint32_t page_index = static_cast<uint32_t>(at / kBytesPerPage);
    size_t in_page = at % kBytesPerPage;
    PARADISE_ASSIGN_OR_RETURN(
        PageGuard guard,
        pool_->Pin(PageId{id.volume, id.first_page + page_index}));
    size_t n = std::min(kBytesPerPage - in_page, length - read);
    std::memcpy(out.data() + read, guard.page()->payload() + in_page, n);
    read += n;
  }
  return out;
}

void LargeObjectStore::Free(const LobId& id) {
  for (uint32_t i = 0; i < id.num_pages; ++i) {
    pool_->Invalidate(PageId{id.volume, id.first_page + i});
    volume_->FreePage(id.first_page + i);
  }
}

}  // namespace paradise::storage
