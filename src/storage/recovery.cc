#include "storage/recovery.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "storage/heap_file.h"
#include "storage/wal.h"

namespace paradise::storage {

Status RecoveryManager::Recover() {
  LogManager* log = txn_manager_->log();
  std::vector<LogRecord> records = log->DurableRecords();

  // ---- Analysis: which transactions were active at the crash? ----
  std::unordered_map<TxnId, Lsn> last_lsn;   // per-txn newest record
  std::unordered_set<TxnId> finished;        // committed or fully aborted
  for (const LogRecord& rec : records) {
    ++stats_.records_analyzed;
    last_lsn[rec.txn] = rec.lsn;
    if (rec.type == LogRecordType::kCommit ||
        rec.type == LogRecordType::kAbort) {
      finished.insert(rec.txn);
    }
  }

  // ---- Redo: repeat history for every data record not on disk. ----
  for (const LogRecord& rec : records) {
    bool is_data = rec.type == LogRecordType::kInsert ||
                   rec.type == LogRecordType::kDelete ||
                   rec.type == LogRecordType::kUpdate ||
                   rec.type == LogRecordType::kClr;
    if (!is_data) continue;
    HeapFile* file = txn_manager_->FileById(rec.file_id);
    if (file == nullptr) {
      return Status::Corruption("redo references unknown file");
    }
    PARADISE_ASSIGN_OR_RETURN(Lsn page_lsn, file->PageLsn(rec.oid.page));
    if (page_lsn >= rec.lsn) continue;  // change already reached disk

    LogRecordType effective = rec.type;
    if (rec.type == LogRecordType::kClr) {
      // A CLR redoes the *inverse* of what it compensates.
      switch (rec.compensated) {
        case LogRecordType::kInsert: effective = LogRecordType::kDelete; break;
        case LogRecordType::kDelete: effective = LogRecordType::kInsert; break;
        case LogRecordType::kUpdate: effective = LogRecordType::kUpdate; break;
        default:
          return Status::Corruption("CLR compensates non-data record");
      }
    }
    switch (effective) {
      case LogRecordType::kInsert:
        PARADISE_RETURN_IF_ERROR(file->ApplyInsert(rec.oid, rec.after, rec.lsn));
        break;
      case LogRecordType::kDelete:
        PARADISE_RETURN_IF_ERROR(file->ApplyDelete(rec.oid, rec.lsn));
        break;
      case LogRecordType::kUpdate:
        PARADISE_RETURN_IF_ERROR(file->ApplyUpdate(rec.oid, rec.after, rec.lsn));
        break;
      default:
        break;
    }
    ++stats_.records_redone;
  }

  // ---- Undo: roll back losers (newest first is not required since the
  // chains are independent per transaction). ----
  for (const auto& [txn_id, lsn] : last_lsn) {
    if (finished.contains(txn_id)) continue;
    ++stats_.loser_txns;
    PARADISE_RETURN_IF_ERROR(txn_manager_->Rollback(txn_id, lsn));
    LogRecord abort;
    abort.txn = txn_id;
    abort.type = LogRecordType::kAbort;
    abort.prev_lsn = lsn;
    Lsn abort_lsn = log->Append(std::move(abort));
    log->Force(abort_lsn);
  }

  // In-memory record counters are not crash-consistent; rebuild them.
  for (HeapFile* file : txn_manager_->AllFiles()) {
    PARADISE_RETURN_IF_ERROR(file->RecountRecords());
  }
  return Status::OK();
}

}  // namespace paradise::storage
