#ifndef PARADISE_STORAGE_HEAP_FILE_H_
#define PARADISE_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"

namespace paradise::storage {

class Transaction;

/// A file of untyped records over slotted pages — SHORE's "file of objects".
/// Records are identified by a stable Oid (page, slot). All mutations are
/// write-ahead logged when a LogManager is attached; pages carry LSNs so
/// recovery can decide whether a change reached disk.
///
/// Concurrency: guarded by a single mutex per file. Parallelism in Paradise
/// comes from partitioning *across* files/nodes, not from concurrent
/// writers inside one fragment.
class HeapFile {
 public:
  /// `log` may be null (unlogged file, e.g. query temporaries — matching
  /// the paper's per-operator temporary files, Section 2.5.2).
  HeapFile(uint32_t file_id, BufferPool* pool, uint32_t volume_id,
           LogManager* log);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  uint32_t file_id() const { return file_id_; }

  /// Largest record a slotted page can hold; bigger payloads belong in the
  /// LargeObjectStore (cf. the 70%-of-a-page rule, Section 2.5.1).
  static size_t MaxRecordSize();

  StatusOr<Oid> Insert(Transaction* txn, const ByteBuffer& record);
  StatusOr<ByteBuffer> Get(const Oid& oid) const;
  Status Delete(Transaction* txn, const Oid& oid);
  Status Update(Transaction* txn, const Oid& oid, const ByteBuffer& record);

  /// Current LSN stamped on a page (recovery's redo test).
  StatusOr<Lsn> PageLsn(PageNo page_no) const;

  /// Physical reapplication used by redo/undo; bypasses logging and stamps
  /// the page with `lsn`.
  Status ApplyInsert(const Oid& oid, const ByteBuffer& record, Lsn lsn);
  Status ApplyDelete(const Oid& oid, Lsn lsn);
  Status ApplyUpdate(const Oid& oid, const ByteBuffer& record, Lsn lsn);

  /// Sequential scan. Visits records in (page, slot) order. The iterator
  /// keeps the current page pinned between Next() calls (one pool pin per
  /// page instead of one per record) and issues batched readahead for the
  /// upcoming window of pages, so a scan is charged one positioning cost
  /// plus sequential transfers per consecutive run. Move-only; destroy the
  /// iterator before Destroy()ing the file.
  class Iterator {
   public:
    explicit Iterator(const HeapFile* file) : file_(file) {}
    Iterator(Iterator&&) = default;
    Iterator& operator=(Iterator&&) = default;
    /// Returns false at end of file.
    bool Next(Oid* oid, ByteBuffer* record);

   private:
    /// Pages of upcoming readahead per batch; kept at the pool's shard-run
    /// granularity so each window is served under one shard lock.
    static constexpr size_t kReadaheadPages = 16;

    const HeapFile* file_;
    size_t page_index_ = 0;
    uint16_t slot_ = 0;
    PageGuard guard_;                // pin on pages_[guard_index_]
    size_t guard_index_ = SIZE_MAX;  // which page the guard covers
    size_t prefetched_until_ = 0;    // pages_[0..this) already prefetched
  };
  Iterator NewIterator() const { return Iterator(this); }

  int64_t num_records() const;

  /// Recomputes the record count from the pages (the in-memory counter is
  /// not crash-consistent; recovery calls this after redo/undo).
  Status RecountRecords();
  size_t num_pages() const;
  const std::vector<PageNo>& pages() const { return pages_; }

  /// Drops every page back to the volume free list (temporary tables and
  /// per-operator files are deleted this way, Section 2.5.2).
  void Destroy(DiskVolume* volume);

 private:
  friend class Iterator;

  StatusOr<Oid> FindSpaceLocked(size_t record_size);

  const uint32_t file_id_;
  BufferPool* const pool_;
  const uint32_t volume_id_;
  LogManager* const log_;

  mutable std::mutex mu_;
  std::vector<PageNo> pages_;
  int64_t num_records_ = 0;
};

}  // namespace paradise::storage

#endif  // PARADISE_STORAGE_HEAP_FILE_H_
