#include "storage/transaction.h"

#include "common/logging.h"
#include "storage/heap_file.h"

namespace paradise::storage {

void TransactionManager::RegisterFile(HeapFile* file) {
  std::lock_guard<std::mutex> g(mu_);
  files_[file->file_id()] = file;
}

HeapFile* TransactionManager::FileById(uint32_t file_id) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(file_id);
  return it == files_.end() ? nullptr : it->second;
}

std::vector<HeapFile*> TransactionManager::AllFiles() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<HeapFile*> out;
  out.reserve(files_.size());
  for (const auto& [id, file] : files_) out.push_back(file);
  return out;
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  TxnId id;
  {
    std::lock_guard<std::mutex> g(mu_);
    id = next_txn_id_++;
  }
  LogRecord rec;
  rec.txn = id;
  rec.type = LogRecordType::kBegin;
  Lsn lsn = log_->Append(std::move(rec));
  return std::make_unique<Transaction>(id, lsn);
}

Status TransactionManager::Commit(Transaction* txn) {
  PARADISE_CHECK(txn->state() == TxnState::kActive);
  LogRecord rec;
  rec.txn = txn->id();
  rec.type = LogRecordType::kCommit;
  rec.prev_lsn = txn->last_lsn();
  Lsn lsn = log_->Append(std::move(rec));
  log_->Force(lsn);  // WAL commit rule
  txn->set_last_lsn(lsn);
  txn->set_state(TxnState::kCommitted);
  return Status::OK();
}

Status TransactionManager::Rollback(TxnId txn_id, Lsn from_lsn) {
  Lsn cur = from_lsn;
  while (cur != kInvalidLsn) {
    LogRecord rec = log_->RecordAt(cur);
    if (rec.txn != txn_id) {
      return Status::Corruption("undo chain crossed transactions");
    }
    switch (rec.type) {
      case LogRecordType::kBegin:
        cur = kInvalidLsn;
        break;
      case LogRecordType::kClr:
        // Already-undone region: skip to what remains.
        cur = rec.undo_next_lsn;
        break;
      case LogRecordType::kInsert:
      case LogRecordType::kDelete:
      case LogRecordType::kUpdate: {
        HeapFile* file = FileById(rec.file_id);
        if (file == nullptr) {
          return Status::Corruption("undo references unknown file");
        }
        // Write the CLR first (its LSN stamps the page), then compensate.
        LogRecord clr;
        clr.txn = txn_id;
        clr.type = LogRecordType::kClr;
        clr.prev_lsn = cur;
        clr.file_id = rec.file_id;
        clr.oid = rec.oid;
        clr.undo_next_lsn = rec.prev_lsn;
        clr.compensated = rec.type;
        // The CLR's redo information is the inverse operation's post-state.
        if (rec.type == LogRecordType::kDelete ||
            rec.type == LogRecordType::kUpdate) {
          clr.after = rec.before;
        }
        Lsn clr_lsn = log_->Append(std::move(clr));
        switch (rec.type) {
          case LogRecordType::kInsert:
            PARADISE_RETURN_IF_ERROR(file->ApplyDelete(rec.oid, clr_lsn));
            break;
          case LogRecordType::kDelete:
            PARADISE_RETURN_IF_ERROR(
                file->ApplyInsert(rec.oid, rec.before, clr_lsn));
            break;
          case LogRecordType::kUpdate:
            PARADISE_RETURN_IF_ERROR(
                file->ApplyUpdate(rec.oid, rec.before, clr_lsn));
            break;
          default:
            break;
        }
        cur = rec.prev_lsn;
        break;
      }
      default:
        cur = rec.prev_lsn;
        break;
    }
  }
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  PARADISE_CHECK(txn->state() == TxnState::kActive);
  PARADISE_RETURN_IF_ERROR(Rollback(txn->id(), txn->last_lsn()));
  LogRecord rec;
  rec.txn = txn->id();
  rec.type = LogRecordType::kAbort;
  rec.prev_lsn = txn->last_lsn();
  Lsn lsn = log_->Append(std::move(rec));
  log_->Force(lsn);
  txn->set_last_lsn(lsn);
  txn->set_state(TxnState::kAborted);
  return Status::OK();
}

}  // namespace paradise::storage
