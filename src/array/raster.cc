#include "array/raster.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "sim/cost_model.h"

namespace paradise::array {

using geom::Box;
using geom::Point;
using geom::Polygon;

Raster::PixelRegion Raster::RegionForBox(const Box& box) const {
  PixelRegion r;
  Box overlap = geo.Intersection(box);
  if (overlap.IsEmpty()) return r;
  double pw = PixelWidth();
  double ph = PixelHeight();
  // Columns increase with x; rows increase as y decreases.
  r.col_lo = static_cast<uint32_t>(
      std::clamp(std::floor((overlap.xmin - geo.xmin) / pw), 0.0,
                 static_cast<double>(width())));
  r.col_hi = static_cast<uint32_t>(
      std::clamp(std::ceil((overlap.xmax - geo.xmin) / pw), 0.0,
                 static_cast<double>(width())));
  r.row_lo = static_cast<uint32_t>(
      std::clamp(std::floor((geo.ymax - overlap.ymax) / ph), 0.0,
                 static_cast<double>(height())));
  r.row_hi = static_cast<uint32_t>(
      std::clamp(std::ceil((geo.ymax - overlap.ymin) / ph), 0.0,
                 static_cast<double>(height())));
  return r;
}

void Raster::Serialize(ByteWriter* w) const {
  handle.Serialize(w);
  w->PutDouble(geo.xmin);
  w->PutDouble(geo.ymin);
  w->PutDouble(geo.xmax);
  w->PutDouble(geo.ymax);
}

Raster Raster::Deserialize(ByteReader* r) {
  Raster out;
  out.handle = ArrayHandle::Deserialize(r);
  out.geo.xmin = r->GetDouble();
  out.geo.ymin = r->GetDouble();
  out.geo.xmax = r->GetDouble();
  out.geo.ymax = r->GetDouble();
  return out;
}

StatusOr<Raster> MakeRaster(const std::vector<uint16_t>& pixels,
                            uint32_t height, uint32_t width, const Box& geo,
                            storage::LargeObjectStore* store,
                            sim::NodeClock* clock, size_t tile_bytes,
                            uint32_t owner_node) {
  PARADISE_CHECK(pixels.size() == static_cast<size_t>(height) * width);
  Raster r;
  r.geo = geo;
  PARADISE_ASSIGN_OR_RETURN(
      r.handle,
      StoreArray(reinterpret_cast<const uint8_t*>(pixels.data()),
                 {height, width}, /*elem_size=*/2, store, clock,
                 /*compress=*/true, tile_bytes, owner_node));
  return r;
}

namespace {

/// Geo extent of a pixel region within `raster`.
Box GeoForRegion(const Raster& raster, const Raster::PixelRegion& region) {
  double pw = raster.PixelWidth();
  double ph = raster.PixelHeight();
  return Box(raster.geo.xmin + region.col_lo * pw,
             raster.geo.ymax - region.row_hi * ph,
             raster.geo.xmin + region.col_hi * pw,
             raster.geo.ymax - region.row_lo * ph);
}

StatusOr<std::vector<uint16_t>> ReadPixelRegion(
    const Raster& raster, const Raster::PixelRegion& region,
    TileSource* source) {
  PARADISE_ASSIGN_OR_RETURN(
      ByteBuffer bytes,
      ReadRegion(raster.handle, source, {region.row_lo, region.col_lo},
                 {region.row_hi, region.col_hi}));
  std::vector<uint16_t> pixels(bytes.size() / 2);
  std::memcpy(pixels.data(), bytes.data(), bytes.size());
  return pixels;
}

}  // namespace

StatusOr<Raster> ClipRaster(const Raster& raster, const Polygon& polygon,
                            TileSource* source,
                            storage::LargeObjectStore* out_store,
                            sim::NodeClock* clock, uint32_t owner_node) {
  Raster::PixelRegion region = raster.RegionForBox(polygon.Mbr());
  if (region.empty()) {
    return Status::NotFound("polygon does not overlap raster");
  }
  PARADISE_ASSIGN_OR_RETURN(std::vector<uint16_t> pixels,
                            ReadPixelRegion(raster, region, source));
  uint32_t rows = region.row_hi - region.row_lo;
  uint32_t cols = region.col_hi - region.col_lo;
  // Mask pixels whose centers fall outside the polygon.
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      Point center =
          raster.PixelCenter(region.row_lo + r, region.col_lo + c);
      if (!polygon.Contains(center)) {
        pixels[static_cast<size_t>(r) * cols + c] = Raster::kNoData;
      }
    }
  }
  if (clock != nullptr) {
    // Pixel masking plus a point-in-polygon test per pixel.
    clock->ChargeCpu(static_cast<double>(pixels.size()) *
                     (sim::cpu_cost::kPerPixel +
                      sim::cpu_cost::kPerPointDistance));
  }
  Raster out;
  out.geo = GeoForRegion(raster, region);
  PARADISE_ASSIGN_OR_RETURN(
      out.handle,
      StoreArray(reinterpret_cast<const uint8_t*>(pixels.data()),
                 {rows, cols}, 2, out_store, clock, /*compress=*/true,
                 kDefaultTileBytes, owner_node));
  return out;
}

StatusOr<Raster> LowerRes(const Raster& raster, uint32_t factor,
                          TileSource* source,
                          storage::LargeObjectStore* out_store,
                          sim::NodeClock* clock, uint32_t owner_node) {
  PARADISE_CHECK(factor >= 1);
  Raster::PixelRegion all{0, raster.height(), 0, raster.width()};
  PARADISE_ASSIGN_OR_RETURN(std::vector<uint16_t> pixels,
                            ReadPixelRegion(raster, all, source));
  uint32_t out_h = std::max<uint32_t>(1, raster.height() / factor);
  uint32_t out_w = std::max<uint32_t>(1, raster.width() / factor);
  std::vector<uint16_t> out_pixels(static_cast<size_t>(out_h) * out_w);
  for (uint32_t r = 0; r < out_h; ++r) {
    for (uint32_t c = 0; c < out_w; ++c) {
      uint64_t sum = 0;
      uint32_t count = 0;
      for (uint32_t dr = 0; dr < factor; ++dr) {
        for (uint32_t dc = 0; dc < factor; ++dc) {
          uint32_t rr = r * factor + dr;
          uint32_t cc = c * factor + dc;
          if (rr >= raster.height() || cc >= raster.width()) continue;
          uint16_t v = pixels[static_cast<size_t>(rr) * raster.width() + cc];
          if (v == Raster::kNoData) continue;
          sum += v;
          ++count;
        }
      }
      out_pixels[static_cast<size_t>(r) * out_w + c] =
          count == 0 ? Raster::kNoData : static_cast<uint16_t>(sum / count);
    }
  }
  if (clock != nullptr) {
    clock->ChargeCpu(static_cast<double>(pixels.size()) *
                     sim::cpu_cost::kPerPixel);
  }
  Raster out;
  out.geo = raster.geo;
  PARADISE_ASSIGN_OR_RETURN(
      out.handle,
      StoreArray(reinterpret_cast<const uint8_t*>(out_pixels.data()),
                 {out_h, out_w}, 2, out_store, clock, /*compress=*/true,
                 kDefaultTileBytes, owner_node));
  return out;
}

StatusOr<double> RasterAverage(const Raster& raster, TileSource* source,
                               sim::NodeClock* clock) {
  Raster::PixelRegion all{0, raster.height(), 0, raster.width()};
  PARADISE_ASSIGN_OR_RETURN(std::vector<uint16_t> pixels,
                            ReadPixelRegion(raster, all, source));
  uint64_t sum = 0;
  uint64_t count = 0;
  for (uint16_t v : pixels) {
    if (v == Raster::kNoData) continue;
    sum += v;
    ++count;
  }
  if (clock != nullptr) {
    clock->ChargeCpu(static_cast<double>(pixels.size()) *
                     sim::cpu_cost::kPerPixel);
  }
  if (count == 0) return Status::NotFound("raster has no valid pixels");
  return static_cast<double>(sum) / static_cast<double>(count);
}

StatusOr<Raster> PixelAverage(const std::vector<Raster>& rasters,
                              const std::vector<TileSource*>& sources,
                              storage::LargeObjectStore* out_store,
                              sim::NodeClock* clock, uint32_t owner_node) {
  PARADISE_CHECK(!rasters.empty() && rasters.size() == sources.size());
  uint32_t h = rasters[0].height();
  uint32_t w = rasters[0].width();
  std::vector<uint64_t> sum(static_cast<size_t>(h) * w, 0);
  std::vector<uint32_t> count(static_cast<size_t>(h) * w, 0);
  for (size_t i = 0; i < rasters.size(); ++i) {
    if (rasters[i].height() != h || rasters[i].width() != w) {
      return Status::InvalidArgument("PixelAverage: shape mismatch");
    }
    Raster::PixelRegion all{0, h, 0, w};
    PARADISE_ASSIGN_OR_RETURN(std::vector<uint16_t> pixels,
                              ReadPixelRegion(rasters[i], all, sources[i]));
    for (size_t p = 0; p < pixels.size(); ++p) {
      if (pixels[p] == Raster::kNoData) continue;
      sum[p] += pixels[p];
      ++count[p];
    }
    if (clock != nullptr) {
      clock->ChargeCpu(static_cast<double>(pixels.size()) *
                       sim::cpu_cost::kPerPixel);
    }
  }
  std::vector<uint16_t> out_pixels(sum.size());
  for (size_t p = 0; p < sum.size(); ++p) {
    out_pixels[p] = count[p] == 0
                        ? Raster::kNoData
                        : static_cast<uint16_t>(sum[p] / count[p]);
  }
  Raster out;
  out.geo = rasters[0].geo;
  PARADISE_ASSIGN_OR_RETURN(
      out.handle,
      StoreArray(reinterpret_cast<const uint8_t*>(out_pixels.data()), {h, w},
                 2, out_store, clock, /*compress=*/true, kDefaultTileBytes,
                 owner_node));
  return out;
}

}  // namespace paradise::array
