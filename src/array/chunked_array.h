#ifndef PARADISE_ARRAY_CHUNKED_ARRAY_H_
#define PARADISE_ARRAY_CHUNKED_ARRAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "array/array_handle.h"
#include "common/status.h"
#include "sim/node_clock.h"
#include "storage/large_object.h"
#include "storage/page.h"

namespace paradise::array {

/// Arrays whose serialized size is below this fraction of a page are
/// inlined into the tuple (Section 2.5.1: "currently set at 70%").
inline constexpr double kInlineFraction = 0.70;
inline size_t InlineThresholdBytes() {
  return static_cast<size_t>(kInlineFraction * storage::kPageSize);
}

/// Target tile size. The paper used ~128 KB against a 120 GB data set; the
/// bundled synthetic data set is ~64x smaller, so the default keeps the
/// tile:image ratio comparable. Override per-store if needed.
inline constexpr size_t kDefaultTileBytes = 32 * 1024;

/// Abstracts where tile bytes come from: the local LargeObjectStore, or a
/// remote node via the pull protocol (core/pull.h). Implementations return
/// *decompressed* tile contents and charge their own costs.
class TileSource {
 public:
  virtual ~TileSource() = default;
  virtual StatusOr<ByteBuffer> ReadTile(const ArrayHandle& handle,
                                        uint32_t tile_index) = 0;

  /// Advisory readahead for a batch of tiles about to be read. The default
  /// is a no-op (remote pulls ship tiles individually); the local source
  /// pushes each tile's page run into the buffer pool in one batched read.
  virtual void PrefetchTiles(const ArrayHandle& handle,
                             const std::vector<uint32_t>& tile_indices) {
    (void)handle;
    (void)tile_indices;
  }
};

/// Reads tiles from the node-local store, decompressing as needed and
/// charging decompression CPU to `clock` (may be null).
class LocalTileSource : public TileSource {
 public:
  LocalTileSource(storage::LargeObjectStore* store, sim::NodeClock* clock)
      : store_(store), clock_(clock) {}

  StatusOr<ByteBuffer> ReadTile(const ArrayHandle& handle,
                                uint32_t tile_index) override;

  void PrefetchTiles(const ArrayHandle& handle,
                     const std::vector<uint32_t>& tile_indices) override;

 private:
  storage::LargeObjectStore* const store_;
  sim::NodeClock* const clock_;
};

/// Chunks `data` (row-major, `dims` extents, `elem_size`-byte elements)
/// into tiles of roughly `tile_bytes`, compresses each tile with LZW when
/// that shrinks it (per-tile flag), stores tiles in `store`, and returns
/// the handle. Arrays under the inline threshold are inlined instead and
/// `store` is not touched. Compression CPU is charged to `clock`.
StatusOr<ArrayHandle> StoreArray(const uint8_t* data,
                                 std::vector<uint32_t> dims,
                                 uint32_t elem_size,
                                 storage::LargeObjectStore* store,
                                 sim::NodeClock* clock,
                                 bool compress = true,
                                 size_t tile_bytes = kDefaultTileBytes,
                                 uint32_t owner_node = 0);

/// Where one tile should be stored — used to decluster a single array's
/// tiles across nodes (Section 2.6).
struct TilePlacement {
  storage::LargeObjectStore* store = nullptr;
  sim::NodeClock* clock = nullptr;  // charged for compression CPU
  int32_t owner_node = -1;          // -1 inherits the handle owner
};

/// As StoreArray, but asks `placement(tile_index, tile_lo)` where to put
/// each tile (`tile_lo` is the tile's origin in element coordinates).
StatusOr<ArrayHandle> StoreArrayWithPlacement(
    const uint8_t* data, std::vector<uint32_t> dims, uint32_t elem_size,
    const std::function<TilePlacement(uint32_t tile_index,
                                      const std::vector<uint32_t>& tile_lo)>&
        placement,
    bool compress = true, size_t tile_bytes = kDefaultTileBytes,
    uint32_t owner_node = 0);

/// Tile extents proportional to the array extents with a product of about
/// `tile_bytes` ([Suni94]'s proportional chunking).
std::vector<uint32_t> ChooseTileDims(const std::vector<uint32_t>& dims,
                                     uint32_t elem_size, size_t tile_bytes);

/// Row-major tile indices whose extent intersects [lo, hi) per dimension.
std::vector<uint32_t> TilesForRegion(const ArrayHandle& handle,
                                     const std::vector<uint32_t>& lo,
                                     const std::vector<uint32_t>& hi);

/// Reads the subarray [lo, hi) into a dense row-major buffer, fetching
/// only the tiles the region overlaps.
StatusOr<ByteBuffer> ReadRegion(const ArrayHandle& handle, TileSource* source,
                                const std::vector<uint32_t>& lo,
                                const std::vector<uint32_t>& hi);

/// Reads the whole array.
StatusOr<ByteBuffer> ReadFull(const ArrayHandle& handle, TileSource* source);

/// Releases the tiles of a non-inlined array.
void FreeArray(const ArrayHandle& handle, storage::LargeObjectStore* store);

}  // namespace paradise::array

#endif  // PARADISE_ARRAY_CHUNKED_ARRAY_H_
