#ifndef PARADISE_ARRAY_RASTER_H_
#define PARADISE_ARRAY_RASTER_H_

#include <cstdint>
#include <vector>

#include "array/chunked_array.h"
#include "common/status.h"
#include "geom/box.h"
#include "geom/polygon.h"

namespace paradise::array {

/// A 2-D geo-located raster image (the benchmark's Raster16), derived from
/// the array ADT: dims = {height, width}, row 0 at the top (max y).
/// Pixels hold 16-bit samples; kNoData marks pixels masked out by a clip.
struct Raster {
  static constexpr uint16_t kNoData = 0xffff;

  ArrayHandle handle;  // elem_size == 2
  geom::Box geo;       // georeferenced extent

  uint32_t height() const { return handle.dims[0]; }
  uint32_t width() const { return handle.dims[1]; }

  double PixelWidth() const { return geo.Width() / width(); }
  double PixelHeight() const { return geo.Height() / height(); }

  /// Geo-coordinates of the center of pixel (row, col).
  geom::Point PixelCenter(uint32_t row, uint32_t col) const {
    return geom::Point{geo.xmin + (col + 0.5) * PixelWidth(),
                       geo.ymax - (row + 0.5) * PixelHeight()};
  }

  /// Pixel rows [row_lo, row_hi) and cols [col_lo, col_hi) covering the
  /// intersection of `box` with the raster extent; empty() if disjoint.
  struct PixelRegion {
    uint32_t row_lo = 0, row_hi = 0, col_lo = 0, col_hi = 0;
    bool empty() const { return row_lo >= row_hi || col_lo >= col_hi; }
    uint64_t num_pixels() const {
      return empty() ? 0
                     : static_cast<uint64_t>(row_hi - row_lo) *
                           (col_hi - col_lo);
    }
  };
  PixelRegion RegionForBox(const geom::Box& box) const;

  void Serialize(ByteWriter* w) const;
  static Raster Deserialize(ByteReader* r);
};

/// Builds a raster from dense row-major 16-bit samples, tiling/compressing
/// through StoreArray.
StatusOr<Raster> MakeRaster(const std::vector<uint16_t>& pixels,
                            uint32_t height, uint32_t width,
                            const geom::Box& geo,
                            storage::LargeObjectStore* store,
                            sim::NodeClock* clock,
                            size_t tile_bytes = kDefaultTileBytes,
                            uint32_t owner_node = 0);

/// Clips `raster` by `polygon`: the result covers the polygon's bounding
/// box intersected with the raster, with pixels whose centers fall outside
/// the polygon set to kNoData. Only tiles overlapping the clip region are
/// read — the paper's headline large-object optimisation. The result is
/// stored in `out_store` (or inlined if small). Returns NotFound when the
/// polygon misses the raster entirely.
StatusOr<Raster> ClipRaster(const Raster& raster, const geom::Polygon& polygon,
                            TileSource* source,
                            storage::LargeObjectStore* out_store,
                            sim::NodeClock* clock, uint32_t owner_node = 0);

/// Box-filter downsample by an integer factor (Query 4's lower_res(8)).
StatusOr<Raster> LowerRes(const Raster& raster, uint32_t factor,
                          TileSource* source,
                          storage::LargeObjectStore* out_store,
                          sim::NodeClock* clock, uint32_t owner_node = 0);

/// Mean sample value, ignoring kNoData pixels (Query 10's predicate).
StatusOr<double> RasterAverage(const Raster& raster, TileSource* source,
                               sim::NodeClock* clock);

/// Pixel-by-pixel average of same-shaped rasters (Query 3); source[i]
/// reads raster[i]'s tiles (they may live on different nodes).
StatusOr<Raster> PixelAverage(const std::vector<Raster>& rasters,
                              const std::vector<TileSource*>& sources,
                              storage::LargeObjectStore* out_store,
                              sim::NodeClock* clock, uint32_t owner_node = 0);

}  // namespace paradise::array

#endif  // PARADISE_ARRAY_RASTER_H_
