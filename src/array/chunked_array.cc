#include "array/chunked_array.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "codec/lzw.h"
#include "common/logging.h"
#include "sim/cost_model.h"

namespace paradise::array {

void ArrayHandle::Serialize(ByteWriter* w) const {
  w->PutU32(static_cast<uint32_t>(dims.size()));
  for (uint32_t d : dims) w->PutU32(d);
  w->PutU32(elem_size);
  for (uint32_t d : tile_dims) w->PutU32(d);
  w->PutU32(owner_node);
  w->PutBytes(inline_data.data(), inline_data.size());
  w->PutU32(static_cast<uint32_t>(tiles.size()));
  for (const TileRef& t : tiles) {
    w->PutU32(t.lob.volume);
    w->PutU32(t.lob.first_page);
    w->PutU32(t.lob.num_pages);
    w->PutU32(t.lob.length);
    w->PutU8(t.compressed ? 1 : 0);
    w->PutU32(t.raw_bytes);
    w->PutI32(t.owner_node);
  }
}

ArrayHandle ArrayHandle::Deserialize(ByteReader* r) {
  ArrayHandle h;
  uint32_t ndims = r->GetU32();
  h.dims.resize(ndims);
  for (uint32_t& d : h.dims) d = r->GetU32();
  h.elem_size = r->GetU32();
  h.tile_dims.resize(ndims);
  for (uint32_t& d : h.tile_dims) d = r->GetU32();
  h.owner_node = r->GetU32();
  h.inline_data = r->GetBlob();
  uint32_t ntiles = r->GetU32();
  h.tiles.resize(ntiles);
  for (TileRef& t : h.tiles) {
    t.lob.volume = r->GetU32();
    t.lob.first_page = r->GetU32();
    t.lob.num_pages = r->GetU32();
    t.lob.length = r->GetU32();
    t.compressed = r->GetU8() != 0;
    t.raw_bytes = r->GetU32();
    t.owner_node = r->GetI32();
  }
  return h;
}

std::vector<uint32_t> ChooseTileDims(const std::vector<uint32_t>& dims,
                                     uint32_t elem_size, size_t tile_bytes) {
  // Proportional chunking: tile_dims[i] = dims[i] * f with
  // prod(tile_dims) * elem_size ~= tile_bytes.
  double total = 1.0;
  for (uint32_t d : dims) total *= static_cast<double>(d);
  double target_elems = static_cast<double>(tile_bytes) / elem_size;
  double f = std::pow(target_elems / total, 1.0 / dims.size());
  f = std::min(f, 1.0);
  std::vector<uint32_t> tile_dims(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    tile_dims[i] = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::lround(dims[i] * f)));
    tile_dims[i] = std::min(tile_dims[i], dims[i]);
  }
  return tile_dims;
}

namespace {

/// Copies the overlap of tile `tile_coord` with region [lo, hi) between a
/// tile-local buffer and a region-local buffer. Handles any number of
/// dimensions by iterating row-major over all but the innermost dimension.
/// `to_region` selects direction: tile buffer -> region buffer.
void CopyTileRegion(const ArrayHandle& h,
                    const std::vector<uint32_t>& tile_coord,
                    const std::vector<uint32_t>& lo,
                    const std::vector<uint32_t>& hi, uint8_t* tile_buf,
                    uint8_t* region_buf, bool to_region) {
  size_t ndims = h.dims.size();
  // Tile extent (edge tiles may be smaller).
  std::vector<uint32_t> tile_lo(ndims), tile_hi(ndims), tile_ext(ndims);
  for (size_t i = 0; i < ndims; ++i) {
    tile_lo[i] = tile_coord[i] * h.tile_dims[i];
    tile_hi[i] = std::min(h.dims[i], tile_lo[i] + h.tile_dims[i]);
    tile_ext[i] = tile_hi[i] - tile_lo[i];
  }
  // Overlap of tile with region, in global coordinates.
  std::vector<uint32_t> olo(ndims), ohi(ndims);
  for (size_t i = 0; i < ndims; ++i) {
    olo[i] = std::max(lo[i], tile_lo[i]);
    ohi[i] = std::min(hi[i], tile_hi[i]);
    if (olo[i] >= ohi[i]) return;  // empty overlap
  }
  std::vector<uint32_t> region_ext(ndims);
  for (size_t i = 0; i < ndims; ++i) region_ext[i] = hi[i] - lo[i];

  // Iterate over all coordinates of the overlap except the last dimension,
  // copying contiguous runs along the last dimension.
  size_t run_elems = ohi[ndims - 1] - olo[ndims - 1];
  size_t run_bytes = run_elems * h.elem_size;
  std::vector<uint32_t> cur(olo.begin(), olo.end());
  while (true) {
    // Compute flat offsets for `cur` in tile and region buffers.
    size_t tile_off = 0, region_off = 0;
    for (size_t i = 0; i < ndims; ++i) {
      tile_off = tile_off * tile_ext[i] + (cur[i] - tile_lo[i]);
      region_off = region_off * region_ext[i] + (cur[i] - lo[i]);
    }
    tile_off *= h.elem_size;
    region_off *= h.elem_size;
    if (to_region) {
      std::memcpy(region_buf + region_off, tile_buf + tile_off, run_bytes);
    } else {
      std::memcpy(tile_buf + tile_off, region_buf + region_off, run_bytes);
    }
    // Advance `cur` over dimensions [0, ndims-1), odometer style.
    if (ndims == 1) break;
    size_t d = ndims - 2;
    while (true) {
      if (++cur[d] < ohi[d]) break;
      cur[d] = olo[d];
      if (d == 0) return;
      --d;
    }
  }
}

std::vector<uint32_t> TileCoordFromIndex(const ArrayHandle& h,
                                         uint32_t tile_index) {
  size_t ndims = h.dims.size();
  std::vector<uint32_t> coord(ndims);
  for (size_t i = ndims; i-- > 0;) {
    uint32_t n = h.tiles_in_dim(i);
    coord[i] = tile_index % n;
    tile_index /= n;
  }
  return coord;
}

}  // namespace

StatusOr<ByteBuffer> LocalTileSource::ReadTile(const ArrayHandle& handle,
                                               uint32_t tile_index) {
  const TileRef& ref = handle.tiles[tile_index];
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer stored, store_->Read(ref.lob));
  if (!ref.compressed) return stored;
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer raw, codec::LzwDecompress(stored));
  if (clock_ != nullptr) {
    clock_->ChargeCpu(sim::cpu_cost::kPerByteDecompressed *
                      static_cast<double>(raw.size()));
  }
  if (raw.size() != ref.raw_bytes) {
    return Status::Corruption("tile decompressed to unexpected size");
  }
  return raw;
}

void LocalTileSource::PrefetchTiles(const ArrayHandle& handle,
                                    const std::vector<uint32_t>& tile_indices) {
  // Readahead at most half the pool: prefetching a region larger than the
  // pool would evict its own tiles before they are read.
  size_t budget_pages = store_->pool_capacity() / 2;
  size_t used = 0;
  for (uint32_t t : tile_indices) {
    const storage::LobId& lob = handle.tiles[t].lob;
    if (used + lob.num_pages > budget_pages) break;
    store_->Prefetch(lob);
    used += lob.num_pages;
  }
}

StatusOr<ArrayHandle> StoreArrayWithPlacement(
    const uint8_t* data, std::vector<uint32_t> dims, uint32_t elem_size,
    const std::function<TilePlacement(uint32_t,
                                      const std::vector<uint32_t>&)>&
        placement,
    bool compress, size_t tile_bytes, uint32_t owner_node) {
  PARADISE_CHECK(!dims.empty() && elem_size > 0);
  ArrayHandle h;
  h.dims = std::move(dims);
  h.elem_size = elem_size;
  h.owner_node = owner_node;
  h.tile_dims = ChooseTileDims(h.dims, elem_size, tile_bytes);

  if (h.total_bytes() <= InlineThresholdBytes()) {
    h.inline_data.assign(data, data + h.total_bytes());
    return h;
  }

  uint32_t ntiles = h.num_tiles();
  h.tiles.reserve(ntiles);
  size_t ndims = h.dims.size();
  for (uint32_t t = 0; t < ntiles; ++t) {
    std::vector<uint32_t> coord = TileCoordFromIndex(h, t);
    // Materialize the tile into a dense buffer.
    std::vector<uint32_t> tlo(ndims), thi(ndims);
    uint64_t tile_elems = 1;
    for (size_t i = 0; i < ndims; ++i) {
      tlo[i] = coord[i] * h.tile_dims[i];
      thi[i] = std::min(h.dims[i], tlo[i] + h.tile_dims[i]);
      tile_elems *= thi[i] - tlo[i];
    }
    ByteBuffer tile(tile_elems * elem_size);
    // The "region" is the whole array [0, dims); copy the tile's overlap
    // with it (i.e. the whole tile) out of the dense source buffer.
    std::vector<uint32_t> zero(ndims, 0);
    CopyTileRegion(h, coord, zero, h.dims, tile.data(),
                   const_cast<uint8_t*>(data), /*to_region=*/false);

    TilePlacement place = placement(t, tlo);
    PARADISE_CHECK_MSG(place.store != nullptr, "large array requires a store");
    TileRef ref;
    ref.raw_bytes = static_cast<uint32_t>(tile.size());
    ref.owner_node = place.owner_node;
    if (compress) {
      std::vector<uint8_t> packed = codec::LzwCompress(tile);
      if (place.clock != nullptr) {
        place.clock->ChargeCpu(sim::cpu_cost::kPerByteCompressed *
                               static_cast<double>(tile.size()));
      }
      // Keep the compressed form only if it meaningfully shrinks the tile
      // (the per-tile flag of Section 2.5.1).
      if (packed.size() < tile.size() * 9 / 10) {
        ref.compressed = true;
        PARADISE_ASSIGN_OR_RETURN(ref.lob, place.store->Write(packed));
      }
    }
    if (!ref.compressed) {
      PARADISE_ASSIGN_OR_RETURN(ref.lob, place.store->Write(tile));
    }
    h.tiles.push_back(ref);
  }
  return h;
}

StatusOr<ArrayHandle> StoreArray(const uint8_t* data,
                                 std::vector<uint32_t> dims,
                                 uint32_t elem_size,
                                 storage::LargeObjectStore* store,
                                 sim::NodeClock* clock, bool compress,
                                 size_t tile_bytes, uint32_t owner_node) {
  return StoreArrayWithPlacement(
      data, std::move(dims), elem_size,
      [&](uint32_t, const std::vector<uint32_t>&) {
        return TilePlacement{store, clock, -1};
      },
      compress, tile_bytes, owner_node);
}

std::vector<uint32_t> TilesForRegion(const ArrayHandle& handle,
                                     const std::vector<uint32_t>& lo,
                                     const std::vector<uint32_t>& hi) {
  size_t ndims = handle.dims.size();
  std::vector<uint32_t> tlo(ndims), thi(ndims);
  for (size_t i = 0; i < ndims; ++i) {
    PARADISE_CHECK(lo[i] < hi[i] && hi[i] <= handle.dims[i]);
    tlo[i] = lo[i] / handle.tile_dims[i];
    thi[i] = (hi[i] - 1) / handle.tile_dims[i];
  }
  std::vector<uint32_t> out;
  std::vector<uint32_t> cur = tlo;
  while (true) {
    uint32_t index = 0;
    for (size_t i = 0; i < ndims; ++i) {
      index = index * handle.tiles_in_dim(i) + cur[i];
    }
    out.push_back(index);
    size_t d = ndims - 1;
    while (true) {
      if (++cur[d] <= thi[d]) break;
      cur[d] = tlo[d];
      if (d == 0) return out;
      --d;
    }
  }
}

StatusOr<ByteBuffer> ReadRegion(const ArrayHandle& handle, TileSource* source,
                                const std::vector<uint32_t>& lo,
                                const std::vector<uint32_t>& hi) {
  size_t ndims = handle.dims.size();
  uint64_t region_elems = 1;
  for (size_t i = 0; i < ndims; ++i) {
    PARADISE_CHECK(lo[i] < hi[i] && hi[i] <= handle.dims[i]);
    region_elems *= hi[i] - lo[i];
  }
  ByteBuffer out(region_elems * handle.elem_size);

  if (handle.inlined()) {
    // One "tile" covering the whole array.
    ArrayHandle whole = handle;
    whole.tile_dims = whole.dims;
    std::vector<uint32_t> zero(ndims, 0);
    CopyTileRegion(whole, zero, lo, hi,
                   const_cast<uint8_t*>(handle.inline_data.data()), out.data(),
                   /*to_region=*/true);
    return out;
  }

  std::vector<uint32_t> tiles = TilesForRegion(handle, lo, hi);
  source->PrefetchTiles(handle, tiles);
  for (uint32_t t : tiles) {
    PARADISE_ASSIGN_OR_RETURN(ByteBuffer tile, source->ReadTile(handle, t));
    std::vector<uint32_t> coord = TileCoordFromIndex(handle, t);
    CopyTileRegion(handle, coord, lo, hi, tile.data(), out.data(),
                   /*to_region=*/true);
  }
  return out;
}

StatusOr<ByteBuffer> ReadFull(const ArrayHandle& handle, TileSource* source) {
  if (handle.inlined()) return handle.inline_data;
  std::vector<uint32_t> lo(handle.dims.size(), 0);
  return ReadRegion(handle, source, lo, handle.dims);
}

void FreeArray(const ArrayHandle& handle, storage::LargeObjectStore* store) {
  for (const TileRef& t : handle.tiles) store->Free(t.lob);
}

}  // namespace paradise::array
