#ifndef PARADISE_ARRAY_ARRAY_HANDLE_H_
#define PARADISE_ARRAY_ARRAY_HANDLE_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/bytes.h"
#include "storage/large_object.h"

namespace paradise::array {

/// Reference to one stored tile of a chunked array.
struct TileRef {
  storage::LobId lob;
  bool compressed = false;  // LZW helped; otherwise stored raw
  uint32_t raw_bytes = 0;   // decompressed size
  /// Node holding this tile; -1 inherits the handle's owner_node. Set per
  /// tile only for *declustered* rasters (Section 2.6), whose tiles are
  /// spread across nodes.
  int32_t owner_node = -1;
};

/// The in-tuple representation of an array attribute (Section 2.5.1):
/// metadata stays inline; small arrays keep their data inline too, large
/// ones leave only tile references (the "mapping table") behind.
///
/// `owner_node` records which node's storage holds the tiles, so an
/// operator running elsewhere knows where to *pull* from (Section 2.5.2).
struct ArrayHandle {
  std::vector<uint32_t> dims;       // extent of each dimension
  uint32_t elem_size = 1;           // bytes per element
  std::vector<uint32_t> tile_dims;  // tile extent per dimension
  uint32_t owner_node = 0;

  ByteBuffer inline_data;       // non-empty iff the array is inlined
  std::vector<TileRef> tiles;   // row-major tile order; empty iff inlined

  bool inlined() const { return tiles.empty(); }

  /// Node holding tile `i`.
  uint32_t TileOwner(uint32_t i) const {
    return tiles[i].owner_node >= 0 ? static_cast<uint32_t>(tiles[i].owner_node)
                                    : owner_node;
  }

  /// True if any tile lives on a different node than the handle's owner.
  bool declustered() const {
    for (const TileRef& t : tiles) {
      if (t.owner_node >= 0 && static_cast<uint32_t>(t.owner_node) != owner_node) {
        return true;
      }
    }
    return false;
  }

  uint64_t num_elements() const {
    uint64_t n = 1;
    for (uint32_t d : dims) n *= d;
    return n;
  }
  uint64_t total_bytes() const { return num_elements() * elem_size; }

  /// Number of tiles along dimension `i`.
  uint32_t tiles_in_dim(size_t i) const {
    return (dims[i] + tile_dims[i] - 1) / tile_dims[i];
  }
  uint32_t num_tiles() const {
    uint32_t n = 1;
    for (size_t i = 0; i < dims.size(); ++i) n *= tiles_in_dim(i);
    return n;
  }

  /// Bytes the handle itself occupies inside a tuple.
  size_t StorageBytes() const {
    return 32 + 8 * dims.size() + inline_data.size() + 24 * tiles.size();
  }

  void Serialize(ByteWriter* w) const;
  static ArrayHandle Deserialize(ByteReader* r);
};

}  // namespace paradise::array

#endif  // PARADISE_ARRAY_ARRAY_HANDLE_H_
