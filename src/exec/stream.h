#ifndef PARADISE_EXEC_STREAM_H_
#define PARADISE_EXEC_STREAM_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "exec/tuple.h"

namespace paradise::exec {

/// Bounded tuple queue connecting operators — Paradise's stream
/// abstraction (Section 2.3). The bound is the flow-control mechanism that
/// "regulates the execution rates of the different operators": a fast
/// producer blocks until the consumer catches up.
///
/// Multi-producer (each producer holds one writer handle), single- or
/// multi-consumer.
class TupleStream {
 public:
  explicit TupleStream(size_t capacity = 4096) : capacity_(capacity) {}

  TupleStream(const TupleStream&) = delete;
  TupleStream& operator=(const TupleStream&) = delete;

  /// Registers a producer. Call before any thread pushes.
  void AddWriter() {
    std::lock_guard<std::mutex> g(mu_);
    ++writers_;
  }

  /// Blocks while the stream is full (flow control).
  void Push(Tuple tuple) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(tuple));
    not_empty_.notify_one();
  }

  /// Producer is done; the stream ends when all writers closed and the
  /// queue drains.
  void CloseWriter() {
    std::lock_guard<std::mutex> g(mu_);
    PARADISE_CHECK(writers_ > 0);
    --writers_;
    if (writers_ == 0) not_empty_.notify_all();
  }

  /// Blocks for the next tuple; returns false at end of stream.
  bool Pop(Tuple* out) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return !queue_.empty() || writers_ == 0; });
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Drains the entire stream (blocks until all writers close).
  std::vector<Tuple> DrainAll() {
    std::vector<Tuple> out;
    Tuple t;
    while (Pop(&t)) out.push_back(std::move(t));
    return out;
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Tuple> queue_;
  int writers_ = 0;
};

/// Demultiplexes one logical output onto N streams using a routing
/// function — the split stream that parallelizes queries (Section 2.3).
/// The route function may name several destinations (replication of
/// spanning spatial features, Section 2.7.1).
class SplitStream {
 public:
  using RouteFn =
      std::function<void(const Tuple&, std::vector<uint32_t>* destinations)>;

  SplitStream(std::vector<TupleStream*> outputs, RouteFn route)
      : outputs_(std::move(outputs)), route_(std::move(route)) {
    for (TupleStream* s : outputs_) s->AddWriter();
  }

  ~SplitStream() { Close(); }

  SplitStream(const SplitStream&) = delete;
  SplitStream& operator=(const SplitStream&) = delete;

  void Push(const Tuple& tuple) {
    destinations_.clear();
    route_(tuple, &destinations_);
    for (uint32_t d : destinations_) {
      PARADISE_DCHECK(d < outputs_.size());
      outputs_[d]->Push(tuple);
    }
  }

  void Close() {
    if (closed_) return;
    closed_ = true;
    for (TupleStream* s : outputs_) s->CloseWriter();
  }

  size_t num_outputs() const { return outputs_.size(); }

 private:
  std::vector<TupleStream*> outputs_;
  RouteFn route_;
  std::vector<uint32_t> destinations_;
  bool closed_ = false;
};

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_STREAM_H_
