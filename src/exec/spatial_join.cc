#include "exec/spatial_join.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "exec/join_kernel.h"
#include "sim/cost_model.h"
#include "storage/page.h"

namespace paradise::exec {

namespace {

using geom::Box;
using geom::Circle;
using geom::Point;

/// SplitMix64 finalizer: decorrelates block coordinates so neighbouring
/// blocks start their round-robin at unrelated partitions.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Cells per block side for CellMap::kBlockHash. Small enough that one
/// clustered query region still spans several blocks, large enough that
/// the round-robin inside a block covers many partitions.
constexpr size_t kCellBlock = 4;

/// Cell→partition map. Must be a pure function of (cell, P) — the
/// distribute phase and the reference-point duplicate-elimination rule
/// both evaluate it and must agree.
size_t PartitionOfCell(size_t cell, size_t cells_axis, size_t P,
                       PbsmOptions::CellMap map) {
  if (map == PbsmOptions::CellMap::kModulo) return cell % P;
  size_t cx = cell % cells_axis;
  size_t cy = cell / cells_axis;
  uint64_t block =
      static_cast<uint64_t>(cy / kCellBlock) * 0x1000193u + (cx / kCellBlock);
  size_t within = (cy % kCellBlock) * kCellBlock + (cx % kCellBlock);
  return static_cast<size_t>((Mix64(block) + within) % P);
}

/// Runs every index of [0, count) through `fn`, on the pool when it has
/// real workers and the fan-out is non-trivial, inline otherwise. Caller
/// guarantees fn(i) touches only slot-i state, so the modeled outcome is
/// identical either way; only wall-clock changes.
void ForEachTask(common::ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 1 && count > 1) {
    pool->ParallelFor(static_cast<int>(count),
                      [&fn](int i) { fn(static_cast<size_t>(i)); });
  } else {
    for (size_t i = 0; i < count; ++i) fn(i);
  }
}

/// A task-local execution context: same node services, but charges land on
/// `task_clock` and nested operators never re-enter the pool.
ExecContext TaskContext(const ExecContext& ctx, sim::NodeClock* task_clock) {
  ExecContext task = ctx;
  task.clock = task_clock;
  task.pool = nullptr;
  task.pbsm_stats = nullptr;
  return task;
}

/// Maps a point to its grid cell (clamped to the grid). The extent→cell
/// scale is precomputed once, so mapping a coordinate is one multiply
/// instead of a divide; CellOf and CellRange use the same scale, so the
/// reference-point rule ("the cell containing the intersection's lower-left
/// corner is within the overlap cell range of both MBRs") keeps holding.
/// Clamping happens in double before the integer cast, so out-of-universe
/// and ±inf (empty-box) coordinates clamp instead of invoking UB; an empty
/// box yields an inverted (hi < lo) cell range, i.e. no cells.
struct Grid {
  double xmin;
  double ymin;
  double x_scale;  // cells per unit of width
  double y_scale;  // cells per unit of height
  size_t cells_x;
  size_t cells_y;

  Grid(const Box& universe, size_t cx, size_t cy)
      : xmin(universe.xmin),
        ymin(universe.ymin),
        x_scale(static_cast<double>(cx) / universe.Width()),
        y_scale(static_cast<double>(cy) / universe.Height()),
        cells_x(cx),
        cells_y(cy) {}

  size_t CellX(double x) const {
    double f = std::max(0.0, (x - xmin) * x_scale);
    return static_cast<size_t>(std::min(f, static_cast<double>(cells_x - 1)));
  }
  size_t CellY(double y) const {
    double f = std::max(0.0, (y - ymin) * y_scale);
    return static_cast<size_t>(std::min(f, static_cast<double>(cells_y - 1)));
  }

  size_t CellOf(double x, double y) const {
    return CellY(y) * cells_x + CellX(x);
  }

  /// Cell index range [cx0,cx1]x[cy0,cy1] overlapped by an MBR.
  void CellRange(double bxlo, double bylo, double bxhi, double byhi,
                 size_t* cx0, size_t* cy0, size_t* cx1, size_t* cy1) const {
    *cx0 = CellX(bxlo);
    *cy0 = CellY(bylo);
    *cx1 = CellX(bxhi);
    *cy1 = CellY(byhi);
  }
};

/// Non-uniform grid over tuned cell boundaries (CellMap::kAdaptive).
/// Same contract as Grid — CellOf and CellRange agree, out-of-range and
/// ±inf coordinates clamp to the edge cells (an empty box still yields an
/// inverted, i.e. empty, cell range) — but cell lookup is a binary search
/// over the tuned edges instead of one multiply.
struct NonUniformGrid {
  const std::vector<double>& x_edges;
  const std::vector<double>& y_edges;
  size_t cells_x;
  size_t cells_y;

  explicit NonUniformGrid(const AdaptiveCellGrid& g)
      : x_edges(g.x_edges),
        y_edges(g.y_edges),
        cells_x(g.cells_x()),
        cells_y(g.cells_y()) {}

  static size_t CellOnAxis(const std::vector<double>& edges, size_t cells,
                           double v) {
    size_t i = static_cast<size_t>(
        std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
    if (i == 0) return 0;
    --i;
    return i >= cells ? cells - 1 : i;
  }

  size_t CellX(double x) const { return CellOnAxis(x_edges, cells_x, x); }
  size_t CellY(double y) const { return CellOnAxis(y_edges, cells_y, y); }

  size_t CellOf(double x, double y) const {
    return CellY(y) * cells_x + CellX(x);
  }

  void CellRange(double bxlo, double bylo, double bxhi, double byhi,
                 size_t* cx0, size_t* cy0, size_t* cx1, size_t* cy1) const {
    *cx0 = CellX(bxlo);
    *cy0 = CellY(bylo);
    *cx1 = CellX(bxhi);
    *cy1 = CellY(byhi);
  }
};

/// One side's partition assignment in CSR form: `rows` holds tuple
/// ordinals grouped by partition (replicas included), `offsets[p] ..
/// offsets[p+1]` delimits partition p. Built by a stable counting sort
/// over a side argsorted by (xlo, ordinal), so each partition's rows are
/// already in sweep order.
struct SideParts {
  std::vector<uint32_t> rows;
  std::vector<size_t> offsets;

  size_t begin(size_t p) const { return offsets[p]; }
  size_t count(size_t p) const { return offsets[p + 1] - offsets[p]; }
};

/// Per-thread sweep buffers, reused across the partitions a worker runs:
/// every field is fully rewritten before use, so reuse affects only
/// allocation traffic, never results or charges.
struct SweepScratch {
  join_kernel::SweepSide ls, rs;
  std::vector<join_kernel::AosItem> l_items, r_items;
  std::vector<join_kernel::OrdinalPair> survivors;
};
thread_local SweepScratch t_sweep_scratch;

/// The grid-parametric join body: everything after universe/grid setup.
/// `GridT` is Grid (uniform) or NonUniformGrid (tuned boundaries); both
/// expose the same CellOf/CellRange contract, so the distribute phase and
/// the reference-point duplicate-elimination rule stay in agreement.
/// `cells_axis_stat` is only reported in stats.
template <typename GridT, typename PartFn>
StatusOr<TupleVec> PbsmJoinBody(const TupleVec& left, size_t left_col,
                                const TupleVec& right, size_t right_col,
                                const ExecContext& ctx,
                                const PbsmOptions& options,
                                const join_kernel::MbrColumns& left_cols,
                                const join_kernel::MbrColumns& right_cols,
                                size_t P, size_t cells_axis_stat,
                                const GridT& grid,
                                const PartFn& partition_of_cell) {
  TupleVec out;
  // Each side's ordinals argsorted by (xlo, ordinal), once, globally. The
  // distribute below walks rows in this order and its counting sort is
  // stable, so every partition's row list comes out already in sweep
  // order — the per-partition sorts the sweep would otherwise run are
  // replaced by two sorts of the whole side. The modeled sort charge is
  // unchanged: it is computed per partition from the partition sizes, not
  // from how the host happens to sort.
  const std::vector<uint32_t> left_order =
      join_kernel::ArgsortByXlo(left_cols);
  const std::vector<uint32_t> right_order =
      join_kernel::ArgsortByXlo(right_cols);

  // Phase 1: replicate each tuple's ordinal into every partition whose
  // cells its MBR overlaps, in CSR form (counting sort — no per-partition
  // vector growth). Runs on the calling thread; the per-tuple overhead is
  // replayed as one batched charge, identical to the per-tuple sequence
  // because kTupleOverhead is integer-valued. The duplicate guard is an
  // epoch-stamped array: bumping the epoch retires every stamp at once,
  // instead of an O(P) refill per tuple — and only runs for the rare MBR
  // spanning more than one cell; a single-cell MBR maps to exactly one
  // partition.
  auto distribute = [&](const join_kernel::MbrColumns& cols,
                        const std::vector<uint32_t>& order,
                        SideParts* parts) {
    const size_t n = cols.size();
    ctx.ChargeCpuOps(static_cast<int64_t>(n), sim::cpu_cost::kTupleOverhead);
    std::vector<uint32_t> entry_part, entry_row;
    entry_part.reserve(n + n / 4);
    entry_row.reserve(n + n / 4);
    std::vector<size_t> counts(P, 0);
    std::vector<uint32_t> seen_epoch(P, 0);
    uint32_t epoch = 0;
    for (size_t r = 0; r < n; ++r) {
      const uint32_t i = order[r];
      size_t cx0, cy0, cx1, cy1;
      grid.CellRange(cols.xlo[i], cols.ylo[i], cols.xhi[i], cols.yhi[i],
                     &cx0, &cy0, &cx1, &cy1);
      if (cx0 == cx1 && cy0 == cy1) {
        size_t p = partition_of_cell(cy0 * grid.cells_x + cx0);
        entry_part.push_back(static_cast<uint32_t>(p));
        entry_row.push_back(i);
        ++counts[p];
        continue;
      }
      ++epoch;
      for (size_t cy = cy0; cy <= cy1; ++cy) {
        for (size_t cx = cx0; cx <= cx1; ++cx) {
          size_t p = partition_of_cell(cy * grid.cells_x + cx);
          if (seen_epoch[p] != epoch) {
            seen_epoch[p] = epoch;
            entry_part.push_back(static_cast<uint32_t>(p));
            entry_row.push_back(i);
            ++counts[p];
          }
        }
      }
    }
    parts->offsets.assign(P + 1, 0);
    for (size_t p = 0; p < P; ++p) {
      parts->offsets[p + 1] = parts->offsets[p] + counts[p];
    }
    parts->rows.resize(entry_row.size());
    std::vector<size_t> cursor(parts->offsets.begin(),
                               parts->offsets.end() - 1);
    for (size_t e = 0; e < entry_row.size(); ++e) {
      parts->rows[cursor[entry_part[e]]++] = entry_row[e];
    }
  };
  SideParts left_parts, right_parts;
  distribute(left_cols, left_order, &left_parts);
  distribute(right_cols, right_order, &right_parts);

  if (ctx.pbsm_stats != nullptr) {
    PbsmJoinStats& st = *ctx.pbsm_stats;
    st.partitions = P;
    st.cells_per_axis = cells_axis_stat;
    st.left_tuples = static_cast<int64_t>(left.size());
    st.right_tuples = static_cast<int64_t>(right.size());
    st.left_items = st.right_items = st.max_partition_items = 0;
    st.mean_partition_items = 0.0;
    st.nonempty_partitions = 0;
    st.parallel_tasks = 0;
    size_t nonempty = 0;
    for (size_t p = 0; p < P; ++p) {
      int64_t l = static_cast<int64_t>(left_parts.count(p));
      int64_t r = static_cast<int64_t>(right_parts.count(p));
      st.left_items += l;
      st.right_items += r;
      st.max_partition_items = std::max(st.max_partition_items, l + r);
      if (l + r > 0) ++nonempty;
    }
    st.nonempty_partitions = static_cast<int64_t>(nonempty);
    if (nonempty > 0) {
      st.mean_partition_items =
          static_cast<double>(st.left_items + st.right_items) /
          static_cast<double>(nonempty);
    }
    st.replicated_entry_bytes =
        (st.left_items - st.left_tuples + st.right_items - st.right_tuples) *
        static_cast<int64_t>(4 * sizeof(double) + sizeof(uint32_t));
  }

  // Phase 2: per partition, forward plane sweep on xmin for candidate
  // pairs — through the SoA kernel by default, the AoS layout for
  // ablation. Partition-to-threads: every partition is one task with its
  // own clock and output vector, merged in partition order after the
  // barrier — so the charge totals and the result order depend only on
  // the partition decomposition, never on which thread ran which
  // partition when. Within a task the charge sequence is: sort, then the
  // exact-test charges batch by batch as candidates flush, then the
  // sweep's pair compares as one batched charge — a fixed sequence whose
  // total equals the old interleaved per-encounter charging (all
  // per-item constants are integer-valued).
  struct PartitionTask {
    Status status = Status::OK();
    TupleVec out;
    sim::ResourceUsage usage;
    int64_t compares = 0;
    int64_t candidates = 0;
    int64_t exact_tests = 0;
    int64_t dedup_dropped = 0;
  };
  std::vector<PartitionTask> tasks(P);
  const bool use_soa =
      options.sweep_kernel == PbsmOptions::SweepKernel::kSoa;
  auto sweep_partition = [&](size_t p) {
    PartitionTask& task = tasks[p];
    const size_t ln = left_parts.count(p);
    const size_t rn = right_parts.count(p);
    if (ln == 0 || rn == 0) return;
    sim::NodeClock task_clock;
    ExecContext task_ctx = TaskContext(ctx, &task_clock);
    const double sort_charge =
        (static_cast<double>(ln) * std::log2(static_cast<double>(ln) + 1) +
         static_cast<double>(rn) * std::log2(static_cast<double>(rn) + 1)) *
        sim::cpu_cost::kCompare;

    // Shared flush: reference-point duplicate elimination over a batch of
    // MBR-overlapping candidates, then the batched exact-geometry pass.
    // The accessors map a sweep position to that side's MBR lower-left
    // corner and source ordinal, so both kernels share one code path.
    SweepScratch& scratch = t_sweep_scratch;
    std::vector<join_kernel::OrdinalPair>& survivors = scratch.survivors;
    auto make_flush = [&](auto lxlo_at, auto lylo_at, auto lord_at,
                          auto rxlo_at, auto rylo_at, auto rord_at) {
      return [&, lxlo_at, lylo_at, lord_at, rxlo_at, rylo_at,
              rord_at](const join_kernel::Candidate* cands, size_t n) {
        task.candidates += static_cast<int64_t>(n);
        survivors.clear();
        for (size_t t = 0; t < n; ++t) {
          const uint32_t lp = cands[t].left_pos;
          const uint32_t rp = cands[t].right_pos;
          // Only the partition owning the cell that contains the
          // intersection's lower-left corner reports the pair.
          double rx = std::max(lxlo_at(lp), rxlo_at(rp));
          double ry = std::max(lylo_at(lp), rylo_at(rp));
          if (partition_of_cell(grid.CellOf(rx, ry)) != p) continue;
          survivors.push_back({lord_at(lp), rord_at(rp)});
        }
        task.dedup_dropped +=
            static_cast<int64_t>(n) - static_cast<int64_t>(survivors.size());
        task.exact_tests += static_cast<int64_t>(survivors.size());
        if (!task.status.ok() || survivors.empty()) return;
        task.status = join_kernel::ExactJoinBatch(
            left, left_col, right, right_col, survivors.data(),
            survivors.size(), task_ctx, &task.out);
      };
    };

    if (use_soa) {
      join_kernel::SweepSide& ls = scratch.ls;
      join_kernel::SweepSide& rs = scratch.rs;
      ls.GatherPresorted(left_cols, &left_parts.rows[left_parts.begin(p)],
                         ln);
      rs.GatherPresorted(right_cols, &right_parts.rows[right_parts.begin(p)],
                         rn);
      task_ctx.ChargeCpu(sort_charge);
      join_kernel::CandidateBatch batch(
          join_kernel::kCandidateBatchSize,
          make_flush([&](uint32_t i) { return ls.xlo()[i]; },
                     [&](uint32_t i) { return ls.ylo()[i]; },
                     [&](uint32_t i) { return ls.ordinal(i); },
                     [&](uint32_t i) { return rs.xlo()[i]; },
                     [&](uint32_t i) { return rs.ylo()[i]; },
                     [&](uint32_t i) { return rs.ordinal(i); }));
      task.compares = join_kernel::SweepForCandidates(ls, rs, &batch);
      batch.Flush();
    } else {
      auto gather_aos = [](const join_kernel::MbrColumns& cols,
                           const uint32_t* rows, size_t n,
                           std::vector<join_kernel::AosItem>* items) {
        items->resize(n);
        for (size_t i = 0; i < n; ++i) {
          (*items)[i] = {cols.BoxAt(rows[i]), rows[i]};
        }
        join_kernel::SortAosByXmin(items);
      };
      std::vector<join_kernel::AosItem>& L = scratch.l_items;
      std::vector<join_kernel::AosItem>& R = scratch.r_items;
      gather_aos(left_cols, &left_parts.rows[left_parts.begin(p)], ln, &L);
      gather_aos(right_cols, &right_parts.rows[right_parts.begin(p)], rn, &R);
      task_ctx.ChargeCpu(sort_charge);
      join_kernel::CandidateBatch batch(
          join_kernel::kCandidateBatchSize,
          make_flush([&](uint32_t i) { return L[i].box.xmin; },
                     [&](uint32_t i) { return L[i].box.ymin; },
                     [&](uint32_t i) { return L[i].ordinal; },
                     [&](uint32_t i) { return R[i].box.xmin; },
                     [&](uint32_t i) { return R[i].box.ymin; },
                     [&](uint32_t i) { return R[i].ordinal; }));
      task.compares = join_kernel::SweepForCandidatesAos(L, R, &batch);
      batch.Flush();
    }
    task_ctx.ChargeCpuOps(task.compares, sim::cpu_cost::kCompare);
    task.usage = task_clock.EndPhase();
  };
  const bool pooled = ctx.pool != nullptr && ctx.pool->num_threads() > 1;
  ForEachTask(ctx.pool, P, sweep_partition);

  // Deterministic merge, in partition order: first failure wins, charges
  // fold into the node clock in one fixed sequence, outputs concatenate.
  int64_t ran = 0;
  for (size_t p = 0; p < P; ++p) {
    PARADISE_RETURN_IF_ERROR(std::move(tasks[p].status));
  }
  for (size_t p = 0; p < P; ++p) {
    PartitionTask& task = tasks[p];
    if (left_parts.count(p) > 0 && right_parts.count(p) > 0) ++ran;
    ctx.ChargeUsage(task.usage);
    if (ctx.pbsm_stats != nullptr) {
      ctx.pbsm_stats->sweep_pair_compares += task.compares;
      ctx.pbsm_stats->sweep_candidates += task.candidates;
      ctx.pbsm_stats->exact_tests += task.exact_tests;
      // Every candidate runs the reference-point test in this mode.
      ctx.pbsm_stats->dedup_tests += task.candidates;
      ctx.pbsm_stats->dedup_dropped += task.dedup_dropped;
    }
    for (Tuple& t : task.out) out.push_back(std::move(t));
  }
  if (ctx.pbsm_stats != nullptr) {
    ctx.pbsm_stats->parallel_tasks = pooled ? ran : 0;
  }
  return out;
}

}  // namespace

bool AdaptiveCellGrid::Valid(size_t num_partitions) const {
  if (x_edges.size() < 2 || y_edges.size() < 2) return false;
  for (size_t i = 1; i < x_edges.size(); ++i) {
    if (!(x_edges[i] > x_edges[i - 1])) return false;
  }
  for (size_t i = 1; i < y_edges.size(); ++i) {
    if (!(y_edges[i] > y_edges[i - 1])) return false;
  }
  if (cell_part.size() != cells_x() * cells_y()) return false;
  for (uint32_t p : cell_part) {
    if (p >= num_partitions) return false;
  }
  return true;
}

StatusOr<TupleVec> PbsmSpatialJoin(const TupleVec& left, size_t left_col,
                                   const TupleVec& right, size_t right_col,
                                   const ExecContext& ctx,
                                   const PbsmOptions& options) {
  // Reset the stats sink up front: a sink reused across queries must
  // describe *this* join, even when an empty input short-circuits below —
  // otherwise the previous query's partition/replication stats leak into
  // this one's report.
  if (ctx.pbsm_stats != nullptr) ctx.pbsm_stats->Clear();

  TupleVec out;
  if (left.empty() || right.empty()) return out;

  // Universe = union of both inputs' extents. The same pass gathers every
  // tuple's MBR into column-major buffers (exec/join_kernel.h), so
  // `Tuple::at(col).Mbr()` runs once per tuple here and never again inside
  // the hot phases.
  join_kernel::MbrColumns left_cols, right_cols;
  Box universe;
  auto gather_mbrs = [&universe](const TupleVec& tuples, size_t col,
                                 join_kernel::MbrColumns* cols) {
    const size_t n = tuples.size();
    cols->Resize(n);
    for (size_t i = 0; i < n; ++i) {
      // The tuple array is walked in order but each tuple's values live
      // behind a heap pointer the hardware prefetcher can't follow; stage
      // the next few rows' value arrays in ahead of the Mbr() call.
      if (i + 8 < n) __builtin_prefetch(tuples[i + 8].values.data());
      Box b = tuples[i].at(col).Mbr();
      cols->Set(i, b);
      universe.ExpandToInclude(b);
    }
  };
  gather_mbrs(left, left_col, &left_cols);
  gather_mbrs(right, right_col, &right_cols);
  if (universe.Width() <= 0 || universe.Height() <= 0) {
    universe = universe.Inflate(1.0);
  }

  const size_t P = std::max<size_t>(1, options.num_partitions);

  if (options.cell_map == PbsmOptions::CellMap::kAdaptive) {
    const AdaptiveCellGrid* tuned = options.adaptive;
    if (tuned == nullptr || !tuned->Valid(P)) {
      return Status::InvalidArgument(
          "PbsmSpatialJoin: CellMap::kAdaptive needs a valid "
          "PbsmOptions::adaptive grid");
    }
    NonUniformGrid grid(*tuned);
    auto partition_of_cell = [tuned](size_t c) -> size_t {
      return tuned->cell_part[c];
    };
    return PbsmJoinBody(left, left_col, right, right_col, ctx, options,
                        left_cols, right_cols, P,
                        std::max(grid.cells_x, grid.cells_y), grid,
                        partition_of_cell);
  }

  size_t cells_axis = options.cells_per_axis;
  if (cells_axis == 0) {
    cells_axis = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(std::sqrt(16.0 * P))));
  }
  Grid grid(universe, cells_axis, cells_axis);
  // Small grids get the cell->partition map precomputed: the distribute
  // loop and the reference-point filter call it per cell visit, and a
  // table lookup beats re-running the block hash every time. Same pure
  // function either way.
  std::vector<uint32_t> cell_part;
  if (cells_axis * cells_axis <= (1u << 16)) {
    cell_part.resize(cells_axis * cells_axis);
    for (size_t c = 0; c < cell_part.size(); ++c) {
      cell_part[c] =
          static_cast<uint32_t>(PartitionOfCell(c, cells_axis, P,
                                                options.cell_map));
    }
  }
  auto partition_of_cell = [&cell_part, cells_axis, P,
                            map = options.cell_map](size_t c) -> size_t {
    if (!cell_part.empty()) return cell_part[c];
    return PartitionOfCell(c, cells_axis, P, map);
  };
  return PbsmJoinBody(left, left_col, right, right_col, ctx, options,
                      left_cols, right_cols, P, cells_axis, grid,
                      partition_of_cell);
}

namespace {

/// Uniform tile grid with core::SpatialGrid's exact arithmetic: tiles are
/// numbered row-major from the upper-left corner and rows grow *downward*
/// (cy = CoordToCell(ymax - y)), so an MBR's begin tile — the one holding
/// its reference point (xmin, ymin) — is (cx0, cy1) of its cell range.
/// The arithmetic must stay bit-identical to SpatialGrid::TilesOfBox, or
/// a parallel two-layer join could emit a pair at a node the decluster
/// pass never shipped the copies to (core_test pins the agreement).
struct TileGrid {
  double xmin, ymax;
  double width, height;
  uint32_t tiles;

  TileGrid(const Box& universe, uint32_t tiles_per_axis)
      : xmin(universe.xmin),
        ymax(universe.ymax),
        width(universe.Width()),
        height(universe.Height()),
        tiles(tiles_per_axis) {}

  uint32_t CoordToCell(double offset, double extent) const {
    double f = offset / extent * tiles;
    if (f < 0) f = 0;
    uint32_t c = static_cast<uint32_t>(f);
    return std::min(c, tiles - 1);
  }

  /// Columns [cx0, cx1], rows [cy0, cy1]; begin tile = (cx0, cy1).
  void Range(double bxlo, double bylo, double bxhi, double byhi,
             uint32_t* cx0, uint32_t* cy0, uint32_t* cx1,
             uint32_t* cy1) const {
    *cx0 = CoordToCell(bxlo - xmin, width);
    *cx1 = CoordToCell(bxhi - xmin, width);
    *cy0 = CoordToCell(ymax - byhi, height);
    *cy1 = CoordToCell(ymax - bylo, height);
  }
};

/// The nine class pairs whose mini-joins cover every pair exactly once: at
/// the tile holding the intersection's reference point, neither side can
/// be x-spilled on both ends (the intersection's xmin is one side's xmin)
/// nor y-spilled on both ends — which excludes exactly the seven
/// combinations with B/D on the left and B/D's x-spill or C/D's y-spill
/// repeated on the right. Note B×C and C×B are required: a wide-flat MBR
/// crossing a tall-thin one meets it at a tile where neither is class A.
constexpr struct {
  TileClass l, r;
} kMiniJoins[] = {
    {TileClass::kA, TileClass::kA}, {TileClass::kA, TileClass::kB},
    {TileClass::kA, TileClass::kC}, {TileClass::kA, TileClass::kD},
    {TileClass::kB, TileClass::kA}, {TileClass::kC, TileClass::kA},
    {TileClass::kD, TileClass::kA}, {TileClass::kB, TileClass::kC},
    {TileClass::kC, TileClass::kB}};

}  // namespace

StatusOr<TupleVec> TwoLayerSpatialJoin(const TupleVec& left, size_t left_col,
                                       const TupleVec& right, size_t right_col,
                                       const ExecContext& ctx,
                                       const TwoLayerOptions& options) {
  if (ctx.pbsm_stats != nullptr) ctx.pbsm_stats->Clear();
  PARADISE_CHECK(options.tiles_per_axis > 0);
  const uint32_t T = options.tiles_per_axis;
  const size_t num_tiles = static_cast<size_t>(T) * T;
  PARADISE_CHECK(options.owned == nullptr ||
                 options.owned->size() == num_tiles);

  TupleVec out;
  if (left.empty() || right.empty()) return out;

  join_kernel::MbrColumns left_cols, right_cols;
  Box universe = options.universe;
  const bool auto_universe = universe.IsEmpty();
  auto gather_mbrs = [&universe, auto_universe](const TupleVec& tuples,
                                                size_t col,
                                                join_kernel::MbrColumns* cols) {
    const size_t n = tuples.size();
    cols->Resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (i + 8 < n) __builtin_prefetch(tuples[i + 8].values.data());
      Box b = tuples[i].at(col).Mbr();
      cols->Set(i, b);
      if (auto_universe) universe.ExpandToInclude(b);
    }
  };
  gather_mbrs(left, left_col, &left_cols);
  gather_mbrs(right, right_col, &right_cols);
  if (universe.Width() <= 0 || universe.Height() <= 0) {
    universe = universe.Inflate(1.0);
  }
  const TileGrid grid(universe, T);

  // Dense ids for the owned tiles; everything downstream is keyed by
  // dense_tile * 4 + class, so unowned tiles cost nothing.
  std::vector<int32_t> tile_dense(num_tiles, -1);
  size_t num_dense = 0;
  for (size_t t = 0; t < num_tiles; ++t) {
    if (options.owned == nullptr || (*options.owned)[t] != 0) {
      tile_dense[t] = static_cast<int32_t>(num_dense++);
    }
  }
  if (num_dense == 0) return out;
  const size_t K = num_dense * 4;  // (tile, class) buckets

  // Distribute: each side's ordinals, walked in global (xlo, ordinal)
  // order, are counting-sorted into per-(owned tile, class) CSR lists —
  // stable, so every list arrives presorted for the sweeps. Unlike PBSM's
  // cell→partition map there is no duplicate guard: a tile is visited at
  // most once per MBR by construction.
  const std::vector<uint32_t> left_order = join_kernel::ArgsortByXlo(left_cols);
  const std::vector<uint32_t> right_order =
      join_kernel::ArgsortByXlo(right_cols);
  auto distribute = [&](const join_kernel::MbrColumns& cols,
                        const std::vector<uint32_t>& order, SideParts* parts) {
    const size_t n = cols.size();
    ctx.ChargeCpuOps(static_cast<int64_t>(n), sim::cpu_cost::kTupleOverhead);
    std::vector<uint32_t> entry_key, entry_row;
    entry_key.reserve(n + n / 4);
    entry_row.reserve(n + n / 4);
    std::vector<size_t> counts(K, 0);
    for (size_t r = 0; r < n; ++r) {
      const uint32_t i = order[r];
      uint32_t cx0, cy0, cx1, cy1;
      grid.Range(cols.xlo[i], cols.ylo[i], cols.xhi[i], cols.yhi[i], &cx0,
                 &cy0, &cx1, &cy1);
      for (uint32_t cy = cy0; cy <= cy1; ++cy) {
        for (uint32_t cx = cx0; cx <= cx1; ++cx) {
          const int32_t dense = tile_dense[static_cast<size_t>(cy) * T + cx];
          if (dense < 0) continue;
          const uint32_t cls =
              (cx != cx0 ? 1u : 0u) | (cy != cy1 ? 2u : 0u);
          const uint32_t key = static_cast<uint32_t>(dense) * 4 + cls;
          entry_key.push_back(key);
          entry_row.push_back(i);
          ++counts[key];
        }
      }
    }
    parts->offsets.assign(K + 1, 0);
    for (size_t k = 0; k < K; ++k) {
      parts->offsets[k + 1] = parts->offsets[k] + counts[k];
    }
    parts->rows.resize(entry_row.size());
    std::vector<size_t> cursor(parts->offsets.begin(),
                               parts->offsets.end() - 1);
    for (size_t e = 0; e < entry_row.size(); ++e) {
      parts->rows[cursor[entry_key[e]]++] = entry_row[e];
    }
  };
  SideParts left_parts, right_parts;
  distribute(left_cols, left_order, &left_parts);
  distribute(right_cols, right_order, &right_parts);

  // Pack owned tiles into sweep-task groups by combined entry load. The
  // group count and assignment are pure functions of the data and the
  // options — never of the thread count.
  std::vector<int64_t> tile_loads(num_dense, 0);
  int64_t total_entries = 0;
  for (size_t d = 0; d < num_dense; ++d) {
    for (size_t c = 0; c < 4; ++c) {
      tile_loads[d] +=
          static_cast<int64_t>(left_parts.count(d * 4 + c)) +
          static_cast<int64_t>(right_parts.count(d * 4 + c));
    }
    total_entries += tile_loads[d];
  }
  const size_t G =
      std::max<size_t>(1, std::min(options.num_tasks, num_dense));
  std::vector<uint32_t> tile_group;
  if (options.group_packer != nullptr) {
    tile_group = options.group_packer(tile_loads, G);
    PARADISE_CHECK(tile_group.size() == num_dense);
  } else {
    // Contiguous prefix packing: close a group once it reaches its equal
    // share of the total load.
    tile_group.resize(num_dense);
    const int64_t share = (total_entries + static_cast<int64_t>(G) - 1) /
                          static_cast<int64_t>(G);
    size_t g = 0;
    int64_t acc = 0;
    for (size_t d = 0; d < num_dense; ++d) {
      tile_group[d] = static_cast<uint32_t>(g);
      acc += tile_loads[d];
      if (acc >= share && g + 1 < G) {
        ++g;
        acc = 0;
      }
    }
  }
  std::vector<std::vector<uint32_t>> group_tiles(G);
  for (size_t d = 0; d < num_dense; ++d) {
    PARADISE_CHECK(tile_group[d] < G);
    group_tiles[tile_group[d]].push_back(static_cast<uint32_t>(d));
  }

  if (ctx.pbsm_stats != nullptr) {
    PbsmJoinStats& st = *ctx.pbsm_stats;
    st.partitions = G;
    st.cells_per_axis = T;
    st.left_tuples = static_cast<int64_t>(left.size());
    st.right_tuples = static_cast<int64_t>(right.size());
    st.left_items = static_cast<int64_t>(left_parts.rows.size());
    st.right_items = static_cast<int64_t>(right_parts.rows.size());
    int64_t* census[4] = {&st.class_a_items, &st.class_b_items,
                          &st.class_c_items, &st.class_d_items};
    for (size_t d = 0; d < num_dense; ++d) {
      for (size_t c = 0; c < 4; ++c) {
        *census[c] += static_cast<int64_t>(left_parts.count(d * 4 + c)) +
                      static_cast<int64_t>(right_parts.count(d * 4 + c));
      }
    }
    size_t nonempty = 0;
    for (size_t g = 0; g < G; ++g) {
      int64_t items = 0;
      for (uint32_t d : group_tiles[g]) items += tile_loads[d];
      st.max_partition_items = std::max(st.max_partition_items, items);
      if (items > 0) ++nonempty;
    }
    st.nonempty_partitions = static_cast<int64_t>(nonempty);
    if (nonempty > 0) {
      st.mean_partition_items =
          static_cast<double>(total_entries) / static_cast<double>(nonempty);
    }
    st.replicated_entry_bytes =
        (st.left_items - st.left_tuples + st.right_items - st.right_tuples) *
        static_cast<int64_t>(4 * sizeof(double) + sizeof(uint32_t));
    // The whole point of the class plan: these stay zero.
    st.dedup_tests = 0;
    st.dedup_dropped = 0;
  }

  // Sweep phase: per group task, each owned tile runs its nine class-pair
  // mini-joins as separate sweeps over the class-contiguous presorted
  // lists. Every MBR-overlapping candidate goes straight to the exact
  // pass — no reference-point filter, no hit-bit bookkeeping. Charges:
  // one sort charge per non-empty class list of a productive tile, exact
  // tests batch by batch, then the group's pair compares as one batched
  // charge — all on a task-local clock merged in group order.
  struct GroupTask {
    Status status = Status::OK();
    TupleVec out;
    sim::ResourceUsage usage;
    int64_t compares = 0;
    int64_t candidates = 0;
    int64_t exact_tests = 0;
  };
  std::vector<GroupTask> tasks(G);
  auto sweep_group = [&](size_t g) {
    GroupTask& task = tasks[g];
    sim::NodeClock task_clock;
    ExecContext task_ctx = TaskContext(ctx, &task_clock);
    SweepScratch& scratch = t_sweep_scratch;
    for (uint32_t d : group_tiles[g]) {
      size_t l_total = 0, r_total = 0;
      for (size_t c = 0; c < 4; ++c) {
        l_total += left_parts.count(d * 4 + c);
        r_total += right_parts.count(d * 4 + c);
      }
      if (l_total == 0 || r_total == 0) continue;
      double sort_charge = 0.0;
      for (size_t c = 0; c < 4; ++c) {
        for (const SideParts* side : {&left_parts, &right_parts}) {
          const double n = static_cast<double>(side->count(d * 4 + c));
          if (n > 0) sort_charge += n * std::log2(n + 1);
        }
      }
      task_ctx.ChargeCpu(sort_charge * sim::cpu_cost::kCompare);
      for (const auto& mj : kMiniJoins) {
        const size_t lk = d * 4 + static_cast<size_t>(mj.l);
        const size_t rk = d * 4 + static_cast<size_t>(mj.r);
        const size_t ln = left_parts.count(lk);
        const size_t rn = right_parts.count(rk);
        if (ln == 0 || rn == 0) continue;
        join_kernel::SweepSide& ls = scratch.ls;
        join_kernel::SweepSide& rs = scratch.rs;
        ls.GatherPresorted(left_cols, &left_parts.rows[left_parts.begin(lk)],
                           ln);
        rs.GatherPresorted(right_cols,
                           &right_parts.rows[right_parts.begin(rk)], rn);
        std::vector<join_kernel::OrdinalPair>& pairs = scratch.survivors;
        join_kernel::CandidateBatch batch(
            join_kernel::kCandidateBatchSize,
            [&](const join_kernel::Candidate* cands, size_t n) {
              task.candidates += static_cast<int64_t>(n);
              task.exact_tests += static_cast<int64_t>(n);
              if (!task.status.ok() || n == 0) return;
              pairs.clear();
              for (size_t t = 0; t < n; ++t) {
                pairs.push_back({ls.ordinal(cands[t].left_pos),
                                 rs.ordinal(cands[t].right_pos)});
              }
              task.status = join_kernel::ExactJoinBatch(
                  left, left_col, right, right_col, pairs.data(), n, task_ctx,
                  &task.out);
            });
        task.compares += join_kernel::SweepForCandidates(ls, rs, &batch);
        batch.Flush();
      }
    }
    task_ctx.ChargeCpuOps(task.compares, sim::cpu_cost::kCompare);
    task.usage = task_clock.EndPhase();
  };
  const bool pooled = ctx.pool != nullptr && ctx.pool->num_threads() > 1;
  ForEachTask(ctx.pool, G, sweep_group);

  int64_t ran = 0;
  for (size_t g = 0; g < G; ++g) {
    PARADISE_RETURN_IF_ERROR(std::move(tasks[g].status));
  }
  for (size_t g = 0; g < G; ++g) {
    GroupTask& task = tasks[g];
    bool productive = false;
    for (uint32_t d : group_tiles[g]) {
      if (tile_loads[d] > 0) productive = true;
    }
    if (productive) ++ran;
    ctx.ChargeUsage(task.usage);
    if (ctx.pbsm_stats != nullptr) {
      ctx.pbsm_stats->sweep_pair_compares += task.compares;
      ctx.pbsm_stats->sweep_candidates += task.candidates;
      ctx.pbsm_stats->exact_tests += task.exact_tests;
    }
    for (Tuple& t : task.out) out.push_back(std::move(t));
  }
  if (ctx.pbsm_stats != nullptr) {
    ctx.pbsm_stats->parallel_tasks = pooled ? ran : 0;
  }
  return out;
}

void IndexProbeCharger::ChargeVisits(int64_t visited) {
  int64_t cold = std::min(visited, cold_remaining_);
  cold_remaining_ -= cold;
  if (ctx_.clock != nullptr && cold > 0) {
    ctx_.clock->ChargeDiskRead(cold * storage::kPageSize, cold);
  }
  ctx_.ChargeCpu(static_cast<double>(visited - cold) *
                 sim::cpu_cost::kIndexNodeVisit);
}

StatusOr<TupleVec> IndexSpatialJoin(const TupleVec& outer, size_t outer_col,
                                    const TupleVec& inner, size_t inner_col,
                                    const index::RStarTree& inner_index,
                                    const ExecContext& ctx) {
  TupleVec out;
  if (outer.empty()) return out;

  // Fixed chunk size: the decomposition (and with it every charge
  // boundary) must not depend on how many threads happen to exist.
  constexpr size_t kChunk = 256;
  const size_t num_chunks = (outer.size() + kChunk - 1) / kChunk;

  // Each chunk probes the (read-only) tree independently: probe CPU and
  // exact-test charges land on a task-local clock, while the number of
  // index nodes each probe visited is recorded for later. The stateful
  // cold-page accounting (IndexProbeCharger) cannot run concurrently
  // without making the cold/warm split schedule-dependent, so it is
  // replayed sequentially, in chunk order, at the merge below.
  struct ChunkTask {
    Status status = Status::OK();
    TupleVec out;
    sim::ResourceUsage usage;
    std::vector<int64_t> probe_visits;  // index nodes seen, per outer tuple
  };
  // One SoA snapshot of the (immutable during the join) tree, shared
  // read-only by every chunk: probes scan flat coordinate arrays instead
  // of pointer-chasing Entry records. Same traversal, same visit counts.
  index::RStarTree::FlatView flat_index(inner_index);

  std::vector<ChunkTask> tasks(num_chunks);
  auto probe_chunk = [&](size_t c) {
    ChunkTask& task = tasks[c];
    sim::NodeClock task_clock;
    ExecContext task_ctx = TaskContext(ctx, &task_clock);
    const size_t lo = c * kChunk;
    const size_t hi = std::min(outer.size(), lo + kChunk);
    task.probe_visits.reserve(hi - lo);
    // Per-tuple probe overhead for the whole chunk as one batched charge
    // (both constants are integer-valued, so the total is bit-identical
    // to the per-tuple sequence).
    task_ctx.ChargeCpuOps(
        static_cast<int64_t>(hi - lo),
        sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kIndexProbe);
    index::RStarTree::FlatView::ProbeStack stack;
    std::vector<join_kernel::OrdinalPair> candidates;
    for (size_t i = lo; i < hi; ++i) {
      Box probe = outer[i].at(outer_col).Mbr();
      int64_t nodes = 0;
      flat_index.ForEachOverlap(
          probe,
          [&candidates, i](const Box&, uint64_t row) {
            // Tree ids are row indices into `inner` (< 2^32 rows).
            candidates.push_back({static_cast<uint32_t>(i),
                                  static_cast<uint32_t>(row)});
            return true;
          },
          &nodes, &stack);
      task.probe_visits.push_back(nodes);
    }
    // Batched exact pass over the chunk's candidates, in probe order —
    // the same pair order and charge order the interleaved loop had.
    task.status = join_kernel::ExactJoinBatch(outer, outer_col, inner,
                                              inner_col, candidates.data(),
                                              candidates.size(), task_ctx,
                                              &task.out);
    task.usage = task_clock.EndPhase();
  };
  ForEachTask(ctx.pool, num_chunks, probe_chunk);

  // Deterministic merge in chunk order: fold task charges, replay the
  // cold/warm index charging over the recorded visit counts (identical to
  // the serial probe sequence), concatenate outputs.
  for (size_t c = 0; c < num_chunks; ++c) {
    PARADISE_RETURN_IF_ERROR(std::move(tasks[c].status));
  }
  IndexProbeCharger charger(ctx, inner_index.num_nodes());
  for (size_t c = 0; c < num_chunks; ++c) {
    ChunkTask& task = tasks[c];
    ctx.ChargeUsage(task.usage);
    for (int64_t visited : task.probe_visits) charger.ChargeVisits(visited);
    for (Tuple& t : task.out) out.push_back(std::move(t));
  }
  return out;
}

StatusOr<ClosestMatch> ExpandingCircleClosest(const Point& point,
                                              const TupleVec& targets,
                                              size_t shape_col,
                                              const index::RStarTree& index,
                                              double universe_area,
                                              const ExecContext& ctx) {
  ClosestMatch best;
  if (targets.empty()) return best;

  // Initial circle: one millionth of the universe's area.
  double radius = std::sqrt(universe_area / 1e6 / M_PI);
  double universe_radius = std::sqrt(universe_area);  // generous cover bound
  Value point_value(point);

  while (true) {
    ++best.probes;
    ctx.ChargeCpu(sim::cpu_cost::kIndexProbe);
    int64_t nodes = 0;
    double best_d = std::numeric_limits<double>::infinity();
    size_t best_row = 0;
    index.SearchCircle(
        Circle(point, radius),
        [&](const Box&, uint64_t row) {
          const Tuple& t = targets[row];
          auto d_or = SpatialDistance(point_value, t.at(shape_col), ctx);
          if (d_or.ok() && *d_or < best_d) {
            best_d = *d_or;
            best_row = row;
          }
          return true;
        },
        &nodes);
    // The tree is memory resident (built on the fly from redistributed
    // tuples), so probing costs CPU, not I/O.
    ctx.ChargeCpu(static_cast<double>(nodes) * sim::cpu_cost::kIndexNodeVisit);
    if (best_d <= radius) {
      best.found = true;
      best.row = best_row;
      best.distance = best_d;
      return best;
    }
    if (radius > universe_radius) break;
    radius *= std::sqrt(2.0);  // double the circle's area
  }

  // Fall back to a full scan (the circle escaped the universe).
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < targets.size(); ++i) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead);
    PARADISE_ASSIGN_OR_RETURN(
        double d, SpatialDistance(point_value, targets[i].at(shape_col), ctx));
    if (d < best_d) {
      best_d = d;
      best.row = i;
      best.found = true;
    }
  }
  best.distance = best_d;
  return best;
}

std::unique_ptr<index::RStarTree> BuildRTreeOnColumn(const TupleVec& tuples,
                                                     size_t shape_col,
                                                     const ExecContext& ctx,
                                                     bool bulk_load) {
  ctx.ChargeCpu(static_cast<double>(tuples.size()) *
                (sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kHash));
  if (bulk_load) {
    std::vector<std::pair<Box, uint64_t>> entries;
    entries.reserve(tuples.size());
    for (uint64_t i = 0; i < tuples.size(); ++i) {
      entries.emplace_back(tuples[i].at(shape_col).Mbr(), i);
    }
    if (ctx.clock != nullptr && !tuples.empty()) {
      double n = static_cast<double>(tuples.size());
      ctx.clock->ChargeCpu(n * std::log2(n + 1) * sim::cpu_cost::kCompare);
    }
    return index::RStarTree::BulkLoadStr(std::move(entries));
  }
  auto tree = std::make_unique<index::RStarTree>();
  for (uint64_t i = 0; i < tuples.size(); ++i) {
    tree->Insert(tuples[i].at(shape_col).Mbr(), i);
  }
  return tree;
}

}  // namespace paradise::exec
