#include "exec/spatial_join.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "sim/cost_model.h"
#include "storage/page.h"

namespace paradise::exec {

namespace {

using geom::Box;
using geom::Circle;
using geom::Point;

struct Item {
  Box box;
  uint32_t row;
};

/// SplitMix64 finalizer: decorrelates block coordinates so neighbouring
/// blocks start their round-robin at unrelated partitions.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Cells per block side for CellMap::kBlockHash. Small enough that one
/// clustered query region still spans several blocks, large enough that
/// the round-robin inside a block covers many partitions.
constexpr size_t kCellBlock = 4;

/// Cell→partition map. Must be a pure function of (cell, P) — the
/// distribute phase and the reference-point duplicate-elimination rule
/// both evaluate it and must agree.
size_t PartitionOfCell(size_t cell, size_t cells_axis, size_t P,
                       PbsmOptions::CellMap map) {
  if (map == PbsmOptions::CellMap::kModulo) return cell % P;
  size_t cx = cell % cells_axis;
  size_t cy = cell / cells_axis;
  uint64_t block =
      static_cast<uint64_t>(cy / kCellBlock) * 0x1000193u + (cx / kCellBlock);
  size_t within = (cy % kCellBlock) * kCellBlock + (cx % kCellBlock);
  return static_cast<size_t>((Mix64(block) + within) % P);
}

/// Runs every index of [0, count) through `fn`, on the pool when it has
/// real workers and the fan-out is non-trivial, inline otherwise. Caller
/// guarantees fn(i) touches only slot-i state, so the modeled outcome is
/// identical either way; only wall-clock changes.
void ForEachTask(common::ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->num_threads() > 1 && count > 1) {
    pool->ParallelFor(static_cast<int>(count),
                      [&fn](int i) { fn(static_cast<size_t>(i)); });
  } else {
    for (size_t i = 0; i < count; ++i) fn(i);
  }
}

/// A task-local execution context: same node services, but charges land on
/// `task_clock` and nested operators never re-enter the pool.
ExecContext TaskContext(const ExecContext& ctx, sim::NodeClock* task_clock) {
  ExecContext task = ctx;
  task.clock = task_clock;
  task.pool = nullptr;
  task.pbsm_stats = nullptr;
  return task;
}

/// Maps a point to its grid cell (clamped to the grid).
struct Grid {
  Box universe;
  size_t cells_x;
  size_t cells_y;

  size_t CellOf(double x, double y) const {
    double fx = (x - universe.xmin) / universe.Width();
    double fy = (y - universe.ymin) / universe.Height();
    size_t cx = std::min(cells_x - 1,
                         static_cast<size_t>(std::max(0.0, fx * cells_x)));
    size_t cy = std::min(cells_y - 1,
                         static_cast<size_t>(std::max(0.0, fy * cells_y)));
    return cy * cells_x + cx;
  }

  /// Cell index range [cx0,cx1]x[cy0,cy1] overlapped by a box.
  void CellRange(const Box& b, size_t* cx0, size_t* cy0, size_t* cx1,
                 size_t* cy1) const {
    *cx0 = std::min(cells_x - 1,
                    static_cast<size_t>(std::max(
                        0.0, (b.xmin - universe.xmin) / universe.Width() *
                                 cells_x)));
    *cy0 = std::min(cells_y - 1,
                    static_cast<size_t>(std::max(
                        0.0, (b.ymin - universe.ymin) / universe.Height() *
                                 cells_y)));
    *cx1 = std::min(cells_x - 1,
                    static_cast<size_t>(std::max(
                        0.0, (b.xmax - universe.xmin) / universe.Width() *
                                 cells_x)));
    *cy1 = std::min(cells_y - 1,
                    static_cast<size_t>(std::max(
                        0.0, (b.ymax - universe.ymin) / universe.Height() *
                                 cells_y)));
  }
};

Tuple ConcatTuples(const Tuple& l, const Tuple& r) {
  Tuple joined;
  joined.values = l.values;
  joined.values.insert(joined.values.end(), r.values.begin(), r.values.end());
  return joined;
}

}  // namespace

StatusOr<TupleVec> PbsmSpatialJoin(const TupleVec& left, size_t left_col,
                                   const TupleVec& right, size_t right_col,
                                   const ExecContext& ctx,
                                   const PbsmOptions& options) {
  // Reset the stats sink up front: a sink reused across queries must
  // describe *this* join, even when an empty input short-circuits below —
  // otherwise the previous query's partition/replication stats leak into
  // this one's report.
  if (ctx.pbsm_stats != nullptr) ctx.pbsm_stats->Clear();

  TupleVec out;
  if (left.empty() || right.empty()) return out;

  // Universe = union of both inputs' extents.
  Box universe;
  for (const Tuple& t : left) universe.ExpandToInclude(t.at(left_col).Mbr());
  for (const Tuple& t : right) universe.ExpandToInclude(t.at(right_col).Mbr());
  if (universe.Width() <= 0 || universe.Height() <= 0) {
    universe = universe.Inflate(1.0);
  }

  const size_t P = std::max<size_t>(1, options.num_partitions);
  size_t cells_axis = options.cells_per_axis;
  if (cells_axis == 0) {
    cells_axis = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(std::sqrt(16.0 * P))));
  }
  Grid grid{universe, cells_axis, cells_axis};
  auto partition_of_cell = [cells_axis, P, map = options.cell_map](size_t c) {
    return PartitionOfCell(c, cells_axis, P, map);
  };

  // Phase 1: replicate each tuple's (MBR, row) into every partition whose
  // cells its MBR overlaps. Runs on the calling thread, charging the node
  // clock directly — one fixed charge order at any thread count. The
  // duplicate guard is an epoch-stamped array: bumping the epoch retires
  // every stamp at once, instead of an O(P) refill per tuple.
  auto distribute = [&](const TupleVec& tuples, size_t col,
                        std::vector<std::vector<Item>>* parts) {
    parts->assign(P, {});
    std::vector<uint32_t> seen_epoch(P, 0);
    uint32_t epoch = 0;
    for (uint32_t i = 0; i < tuples.size(); ++i) {
      ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead);
      Box b = tuples[i].at(col).Mbr();
      size_t cx0, cy0, cx1, cy1;
      grid.CellRange(b, &cx0, &cy0, &cx1, &cy1);
      ++epoch;
      for (size_t cy = cy0; cy <= cy1; ++cy) {
        for (size_t cx = cx0; cx <= cx1; ++cx) {
          size_t p = partition_of_cell(cy * cells_axis + cx);
          if (seen_epoch[p] != epoch) {
            seen_epoch[p] = epoch;
            (*parts)[p].push_back(Item{b, i});
          }
        }
      }
    }
  };
  std::vector<std::vector<Item>> left_parts, right_parts;
  distribute(left, left_col, &left_parts);
  distribute(right, right_col, &right_parts);

  if (ctx.pbsm_stats != nullptr) {
    PbsmJoinStats& st = *ctx.pbsm_stats;
    st.partitions = P;
    st.cells_per_axis = cells_axis;
    st.left_tuples = static_cast<int64_t>(left.size());
    st.right_tuples = static_cast<int64_t>(right.size());
    st.left_items = st.right_items = st.max_partition_items = 0;
    st.mean_partition_items = 0.0;
    st.parallel_tasks = 0;
    size_t nonempty = 0;
    for (size_t p = 0; p < P; ++p) {
      int64_t l = static_cast<int64_t>(left_parts[p].size());
      int64_t r = static_cast<int64_t>(right_parts[p].size());
      st.left_items += l;
      st.right_items += r;
      st.max_partition_items = std::max(st.max_partition_items, l + r);
      if (l + r > 0) ++nonempty;
    }
    if (nonempty > 0) {
      st.mean_partition_items =
          static_cast<double>(st.left_items + st.right_items) /
          static_cast<double>(nonempty);
    }
  }

  // Phase 2: per partition, plane sweep on xmin for candidate pairs.
  // Partition-to-threads: every partition is one task with its own clock
  // and output vector, merged in partition order after the barrier — so
  // the charge totals and the result order depend only on the partition
  // decomposition, never on which thread ran which partition when.
  struct PartitionTask {
    Status status = Status::OK();
    TupleVec out;
    sim::ResourceUsage usage;
  };
  std::vector<PartitionTask> tasks(P);
  auto sweep_partition = [&](size_t p) {
    PartitionTask& task = tasks[p];
    std::vector<Item>& L = left_parts[p];
    std::vector<Item>& R = right_parts[p];
    if (L.empty() || R.empty()) return;
    sim::NodeClock task_clock;
    ExecContext task_ctx = TaskContext(ctx, &task_clock);

    auto by_xmin = [](const Item& a, const Item& b) {
      return a.box.xmin < b.box.xmin;
    };
    std::sort(L.begin(), L.end(), by_xmin);
    std::sort(R.begin(), R.end(), by_xmin);
    double nl = static_cast<double>(L.size());
    double nr = static_cast<double>(R.size());
    task_ctx.ChargeCpu((nl * std::log2(nl + 1) + nr * std::log2(nr + 1)) *
                       sim::cpu_cost::kCompare);

    auto sweep_pair = [&](const Item& a, const Item& b,
                          bool a_is_left) -> Status {
      task_ctx.ChargeCpu(sim::cpu_cost::kCompare);
      if (!a.box.Intersects(b.box)) return Status::OK();
      const Item& li = a_is_left ? a : b;
      const Item& ri = a_is_left ? b : a;
      // Reference-point duplicate elimination: only the partition owning
      // the cell that contains the intersection's lower-left corner
      // reports the pair.
      double rx = std::max(li.box.xmin, ri.box.xmin);
      double ry = std::max(li.box.ymin, ri.box.ymin);
      if (partition_of_cell(grid.CellOf(rx, ry)) != p) return Status::OK();
      const Tuple& lt = left[li.row];
      const Tuple& rt = right[ri.row];
      PARADISE_ASSIGN_OR_RETURN(
          bool hit,
          SpatialIntersects(lt.at(left_col), rt.at(right_col), task_ctx));
      if (hit) task.out.push_back(ConcatTuples(lt, rt));
      return Status::OK();
    };

    // Forward plane sweep over both sorted lists.
    auto sweep = [&]() -> Status {
      size_t i = 0, j = 0;
      while (i < L.size() && j < R.size()) {
        if (L[i].box.xmin <= R[j].box.xmin) {
          for (size_t k = j; k < R.size() && R[k].box.xmin <= L[i].box.xmax;
               ++k) {
            PARADISE_RETURN_IF_ERROR(sweep_pair(L[i], R[k], true));
          }
          ++i;
        } else {
          for (size_t k = i; k < L.size() && L[k].box.xmin <= R[j].box.xmax;
               ++k) {
            PARADISE_RETURN_IF_ERROR(sweep_pair(R[j], L[k], false));
          }
          ++j;
        }
      }
      return Status::OK();
    };
    task.status = sweep();
    task.usage = task_clock.EndPhase();
  };
  const bool pooled = ctx.pool != nullptr && ctx.pool->num_threads() > 1;
  ForEachTask(ctx.pool, P, sweep_partition);

  // Deterministic merge, in partition order: first failure wins, charges
  // fold into the node clock in one fixed sequence, outputs concatenate.
  int64_t ran = 0;
  for (size_t p = 0; p < P; ++p) {
    PARADISE_RETURN_IF_ERROR(std::move(tasks[p].status));
  }
  for (size_t p = 0; p < P; ++p) {
    PartitionTask& task = tasks[p];
    if (!left_parts[p].empty() && !right_parts[p].empty()) ++ran;
    ctx.ChargeUsage(task.usage);
    for (Tuple& t : task.out) out.push_back(std::move(t));
  }
  if (ctx.pbsm_stats != nullptr) {
    ctx.pbsm_stats->parallel_tasks = pooled ? ran : 0;
  }
  return out;
}

void IndexProbeCharger::ChargeVisits(int64_t visited) {
  int64_t cold = std::min(visited, cold_remaining_);
  cold_remaining_ -= cold;
  if (ctx_.clock != nullptr && cold > 0) {
    ctx_.clock->ChargeDiskRead(cold * storage::kPageSize, cold);
  }
  ctx_.ChargeCpu(static_cast<double>(visited - cold) *
                 sim::cpu_cost::kIndexNodeVisit);
}

StatusOr<TupleVec> IndexSpatialJoin(const TupleVec& outer, size_t outer_col,
                                    const TupleVec& inner, size_t inner_col,
                                    const index::RStarTree& inner_index,
                                    const ExecContext& ctx) {
  TupleVec out;
  if (outer.empty()) return out;

  // Fixed chunk size: the decomposition (and with it every charge
  // boundary) must not depend on how many threads happen to exist.
  constexpr size_t kChunk = 256;
  const size_t num_chunks = (outer.size() + kChunk - 1) / kChunk;

  // Each chunk probes the (read-only) tree independently: probe CPU and
  // exact-test charges land on a task-local clock, while the number of
  // index nodes each probe visited is recorded for later. The stateful
  // cold-page accounting (IndexProbeCharger) cannot run concurrently
  // without making the cold/warm split schedule-dependent, so it is
  // replayed sequentially, in chunk order, at the merge below.
  struct ChunkTask {
    Status status = Status::OK();
    TupleVec out;
    sim::ResourceUsage usage;
    std::vector<int64_t> probe_visits;  // index nodes seen, per outer tuple
  };
  std::vector<ChunkTask> tasks(num_chunks);
  auto probe_chunk = [&](size_t c) {
    ChunkTask& task = tasks[c];
    sim::NodeClock task_clock;
    ExecContext task_ctx = TaskContext(ctx, &task_clock);
    const size_t lo = c * kChunk;
    const size_t hi = std::min(outer.size(), lo + kChunk);
    task.probe_visits.reserve(hi - lo);
    auto run = [&]() -> Status {
      for (size_t i = lo; i < hi; ++i) {
        const Tuple& o = outer[i];
        task_ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead +
                           sim::cpu_cost::kIndexProbe);
        Box probe = o.at(outer_col).Mbr();
        int64_t nodes = 0;
        std::vector<uint64_t> candidates;
        inner_index.SearchOverlap(
            probe,
            [&](const Box&, uint64_t row) {
              candidates.push_back(row);
              return true;
            },
            &nodes);
        task.probe_visits.push_back(nodes);
        for (uint64_t row : candidates) {
          const Tuple& it = inner[row];
          PARADISE_ASSIGN_OR_RETURN(
              bool hit,
              SpatialIntersects(o.at(outer_col), it.at(inner_col), task_ctx));
          if (hit) task.out.push_back(ConcatTuples(o, it));
        }
      }
      return Status::OK();
    };
    task.status = run();
    task.usage = task_clock.EndPhase();
  };
  ForEachTask(ctx.pool, num_chunks, probe_chunk);

  // Deterministic merge in chunk order: fold task charges, replay the
  // cold/warm index charging over the recorded visit counts (identical to
  // the serial probe sequence), concatenate outputs.
  for (size_t c = 0; c < num_chunks; ++c) {
    PARADISE_RETURN_IF_ERROR(std::move(tasks[c].status));
  }
  IndexProbeCharger charger(ctx, inner_index.num_nodes());
  for (size_t c = 0; c < num_chunks; ++c) {
    ChunkTask& task = tasks[c];
    ctx.ChargeUsage(task.usage);
    for (int64_t visited : task.probe_visits) charger.ChargeVisits(visited);
    for (Tuple& t : task.out) out.push_back(std::move(t));
  }
  return out;
}

StatusOr<ClosestMatch> ExpandingCircleClosest(const Point& point,
                                              const TupleVec& targets,
                                              size_t shape_col,
                                              const index::RStarTree& index,
                                              double universe_area,
                                              const ExecContext& ctx) {
  ClosestMatch best;
  if (targets.empty()) return best;

  // Initial circle: one millionth of the universe's area.
  double radius = std::sqrt(universe_area / 1e6 / M_PI);
  double universe_radius = std::sqrt(universe_area);  // generous cover bound
  Value point_value(point);

  while (true) {
    ++best.probes;
    ctx.ChargeCpu(sim::cpu_cost::kIndexProbe);
    int64_t nodes = 0;
    double best_d = std::numeric_limits<double>::infinity();
    size_t best_row = 0;
    index.SearchCircle(
        Circle(point, radius),
        [&](const Box&, uint64_t row) {
          const Tuple& t = targets[row];
          auto d_or = SpatialDistance(point_value, t.at(shape_col), ctx);
          if (d_or.ok() && *d_or < best_d) {
            best_d = *d_or;
            best_row = row;
          }
          return true;
        },
        &nodes);
    // The tree is memory resident (built on the fly from redistributed
    // tuples), so probing costs CPU, not I/O.
    ctx.ChargeCpu(static_cast<double>(nodes) * sim::cpu_cost::kIndexNodeVisit);
    if (best_d <= radius) {
      best.found = true;
      best.row = best_row;
      best.distance = best_d;
      return best;
    }
    if (radius > universe_radius) break;
    radius *= std::sqrt(2.0);  // double the circle's area
  }

  // Fall back to a full scan (the circle escaped the universe).
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < targets.size(); ++i) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead);
    PARADISE_ASSIGN_OR_RETURN(
        double d, SpatialDistance(point_value, targets[i].at(shape_col), ctx));
    if (d < best_d) {
      best_d = d;
      best.row = i;
      best.found = true;
    }
  }
  best.distance = best_d;
  return best;
}

std::unique_ptr<index::RStarTree> BuildRTreeOnColumn(const TupleVec& tuples,
                                                     size_t shape_col,
                                                     const ExecContext& ctx,
                                                     bool bulk_load) {
  ctx.ChargeCpu(static_cast<double>(tuples.size()) *
                (sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kHash));
  if (bulk_load) {
    std::vector<std::pair<Box, uint64_t>> entries;
    entries.reserve(tuples.size());
    for (uint64_t i = 0; i < tuples.size(); ++i) {
      entries.emplace_back(tuples[i].at(shape_col).Mbr(), i);
    }
    if (ctx.clock != nullptr && !tuples.empty()) {
      double n = static_cast<double>(tuples.size());
      ctx.clock->ChargeCpu(n * std::log2(n + 1) * sim::cpu_cost::kCompare);
    }
    return index::RStarTree::BulkLoadStr(std::move(entries));
  }
  auto tree = std::make_unique<index::RStarTree>();
  for (uint64_t i = 0; i < tuples.size(); ++i) {
    tree->Insert(tuples[i].at(shape_col).Mbr(), i);
  }
  return tree;
}

}  // namespace paradise::exec
