#include "exec/spatial_join.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/cost_model.h"
#include "storage/page.h"

namespace paradise::exec {

namespace {

using geom::Box;
using geom::Circle;
using geom::Point;

struct Item {
  Box box;
  uint32_t row;
};

/// Maps a point to its grid cell (clamped to the grid).
struct Grid {
  Box universe;
  size_t cells_x;
  size_t cells_y;

  size_t CellOf(double x, double y) const {
    double fx = (x - universe.xmin) / universe.Width();
    double fy = (y - universe.ymin) / universe.Height();
    size_t cx = std::min(cells_x - 1,
                         static_cast<size_t>(std::max(0.0, fx * cells_x)));
    size_t cy = std::min(cells_y - 1,
                         static_cast<size_t>(std::max(0.0, fy * cells_y)));
    return cy * cells_x + cx;
  }

  /// Cell index range [cx0,cx1]x[cy0,cy1] overlapped by a box.
  void CellRange(const Box& b, size_t* cx0, size_t* cy0, size_t* cx1,
                 size_t* cy1) const {
    *cx0 = std::min(cells_x - 1,
                    static_cast<size_t>(std::max(
                        0.0, (b.xmin - universe.xmin) / universe.Width() *
                                 cells_x)));
    *cy0 = std::min(cells_y - 1,
                    static_cast<size_t>(std::max(
                        0.0, (b.ymin - universe.ymin) / universe.Height() *
                                 cells_y)));
    *cx1 = std::min(cells_x - 1,
                    static_cast<size_t>(std::max(
                        0.0, (b.xmax - universe.xmin) / universe.Width() *
                                 cells_x)));
    *cy1 = std::min(cells_y - 1,
                    static_cast<size_t>(std::max(
                        0.0, (b.ymax - universe.ymin) / universe.Height() *
                                 cells_y)));
  }
};

Tuple ConcatTuples(const Tuple& l, const Tuple& r) {
  Tuple joined;
  joined.values = l.values;
  joined.values.insert(joined.values.end(), r.values.begin(), r.values.end());
  return joined;
}

}  // namespace

StatusOr<TupleVec> PbsmSpatialJoin(const TupleVec& left, size_t left_col,
                                   const TupleVec& right, size_t right_col,
                                   const ExecContext& ctx,
                                   const PbsmOptions& options) {
  TupleVec out;
  if (left.empty() || right.empty()) return out;

  // Universe = union of both inputs' extents.
  Box universe;
  for (const Tuple& t : left) universe.ExpandToInclude(t.at(left_col).Mbr());
  for (const Tuple& t : right) universe.ExpandToInclude(t.at(right_col).Mbr());
  if (universe.Width() <= 0 || universe.Height() <= 0) {
    universe = universe.Inflate(1.0);
  }

  size_t P = std::max<size_t>(1, options.num_partitions);
  size_t cells_axis = options.cells_per_axis;
  if (cells_axis == 0) {
    cells_axis = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(std::sqrt(16.0 * P))));
  }
  Grid grid{universe, cells_axis, cells_axis};
  size_t num_cells = cells_axis * cells_axis;
  auto partition_of_cell = [&](size_t cell) { return cell % P; };

  // Phase 1: replicate each tuple's (MBR, row) into every partition whose
  // cells its MBR overlaps.
  auto distribute = [&](const TupleVec& tuples, size_t col,
                        std::vector<std::vector<Item>>* parts) {
    parts->assign(P, {});
    std::vector<uint8_t> seen(P, 0);
    for (uint32_t i = 0; i < tuples.size(); ++i) {
      ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead);
      Box b = tuples[i].at(col).Mbr();
      size_t cx0, cy0, cx1, cy1;
      grid.CellRange(b, &cx0, &cy0, &cx1, &cy1);
      std::fill(seen.begin(), seen.end(), 0);
      for (size_t cy = cy0; cy <= cy1; ++cy) {
        for (size_t cx = cx0; cx <= cx1; ++cx) {
          size_t p = partition_of_cell(cy * cells_axis + cx);
          if (!seen[p]) {
            seen[p] = 1;
            (*parts)[p].push_back(Item{b, i});
          }
        }
      }
    }
  };
  std::vector<std::vector<Item>> left_parts, right_parts;
  distribute(left, left_col, &left_parts);
  distribute(right, right_col, &right_parts);
  (void)num_cells;

  // Phase 2: per partition, plane sweep on xmin for candidate pairs.
  for (size_t p = 0; p < P; ++p) {
    std::vector<Item>& L = left_parts[p];
    std::vector<Item>& R = right_parts[p];
    if (L.empty() || R.empty()) continue;
    auto by_xmin = [](const Item& a, const Item& b) {
      return a.box.xmin < b.box.xmin;
    };
    std::sort(L.begin(), L.end(), by_xmin);
    std::sort(R.begin(), R.end(), by_xmin);
    double nl = static_cast<double>(L.size());
    double nr = static_cast<double>(R.size());
    ctx.ChargeCpu((nl * std::log2(nl + 1) + nr * std::log2(nr + 1)) *
                  sim::cpu_cost::kCompare);

    auto sweep_pair = [&](const Item& a, const Item& b,
                          bool a_is_left) -> Status {
      ctx.ChargeCpu(sim::cpu_cost::kCompare);
      if (!a.box.Intersects(b.box)) return Status::OK();
      const Item& li = a_is_left ? a : b;
      const Item& ri = a_is_left ? b : a;
      // Reference-point duplicate elimination: only the partition owning
      // the cell that contains the intersection's lower-left corner
      // reports the pair.
      double rx = std::max(li.box.xmin, ri.box.xmin);
      double ry = std::max(li.box.ymin, ri.box.ymin);
      if (partition_of_cell(grid.CellOf(rx, ry)) != p) return Status::OK();
      const Tuple& lt = left[li.row];
      const Tuple& rt = right[ri.row];
      PARADISE_ASSIGN_OR_RETURN(
          bool hit,
          SpatialIntersects(lt.at(left_col), rt.at(right_col), ctx));
      if (hit) out.push_back(ConcatTuples(lt, rt));
      return Status::OK();
    };

    // Forward plane sweep over both sorted lists.
    size_t i = 0, j = 0;
    while (i < L.size() && j < R.size()) {
      if (L[i].box.xmin <= R[j].box.xmin) {
        for (size_t k = j; k < R.size() && R[k].box.xmin <= L[i].box.xmax;
             ++k) {
          PARADISE_RETURN_IF_ERROR(sweep_pair(L[i], R[k], true));
        }
        ++i;
      } else {
        for (size_t k = i; k < L.size() && L[k].box.xmin <= R[j].box.xmax;
             ++k) {
          PARADISE_RETURN_IF_ERROR(sweep_pair(R[j], L[k], false));
        }
        ++j;
      }
    }
  }
  return out;
}

void IndexProbeCharger::ChargeVisits(int64_t visited) {
  int64_t cold = std::min(visited, cold_remaining_);
  cold_remaining_ -= cold;
  if (ctx_.clock != nullptr && cold > 0) {
    ctx_.clock->ChargeDiskRead(cold * storage::kPageSize, cold);
  }
  ctx_.ChargeCpu(static_cast<double>(visited - cold) *
                 sim::cpu_cost::kIndexNodeVisit);
}

StatusOr<TupleVec> IndexSpatialJoin(const TupleVec& outer, size_t outer_col,
                                    const TupleVec& inner, size_t inner_col,
                                    const index::RStarTree& inner_index,
                                    const ExecContext& ctx) {
  TupleVec out;
  IndexProbeCharger charger(ctx, inner_index.num_nodes());
  for (const Tuple& o : outer) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kIndexProbe);
    Box probe = o.at(outer_col).Mbr();
    int64_t nodes = 0;
    std::vector<uint64_t> candidates;
    inner_index.SearchOverlap(
        probe,
        [&](const Box&, uint64_t row) {
          candidates.push_back(row);
          return true;
        },
        &nodes);
    charger.ChargeVisits(nodes);
    for (uint64_t row : candidates) {
      const Tuple& it = inner[row];
      PARADISE_ASSIGN_OR_RETURN(
          bool hit, SpatialIntersects(o.at(outer_col), it.at(inner_col), ctx));
      if (hit) out.push_back(ConcatTuples(o, it));
    }
  }
  return out;
}

StatusOr<ClosestMatch> ExpandingCircleClosest(const Point& point,
                                              const TupleVec& targets,
                                              size_t shape_col,
                                              const index::RStarTree& index,
                                              double universe_area,
                                              const ExecContext& ctx) {
  ClosestMatch best;
  if (targets.empty()) return best;

  // Initial circle: one millionth of the universe's area.
  double radius = std::sqrt(universe_area / 1e6 / M_PI);
  double universe_radius = std::sqrt(universe_area);  // generous cover bound
  Value point_value(point);

  while (true) {
    ++best.probes;
    ctx.ChargeCpu(sim::cpu_cost::kIndexProbe);
    int64_t nodes = 0;
    double best_d = std::numeric_limits<double>::infinity();
    size_t best_row = 0;
    index.SearchCircle(
        Circle(point, radius),
        [&](const Box&, uint64_t row) {
          const Tuple& t = targets[row];
          auto d_or = SpatialDistance(point_value, t.at(shape_col), ctx);
          if (d_or.ok() && *d_or < best_d) {
            best_d = *d_or;
            best_row = row;
          }
          return true;
        },
        &nodes);
    // The tree is memory resident (built on the fly from redistributed
    // tuples), so probing costs CPU, not I/O.
    ctx.ChargeCpu(static_cast<double>(nodes) * sim::cpu_cost::kIndexNodeVisit);
    if (best_d <= radius) {
      best.found = true;
      best.row = best_row;
      best.distance = best_d;
      return best;
    }
    if (radius > universe_radius) break;
    radius *= std::sqrt(2.0);  // double the circle's area
  }

  // Fall back to a full scan (the circle escaped the universe).
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < targets.size(); ++i) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead);
    PARADISE_ASSIGN_OR_RETURN(
        double d, SpatialDistance(point_value, targets[i].at(shape_col), ctx));
    if (d < best_d) {
      best_d = d;
      best.row = i;
      best.found = true;
    }
  }
  best.distance = best_d;
  return best;
}

std::unique_ptr<index::RStarTree> BuildRTreeOnColumn(const TupleVec& tuples,
                                                     size_t shape_col,
                                                     const ExecContext& ctx,
                                                     bool bulk_load) {
  ctx.ChargeCpu(static_cast<double>(tuples.size()) *
                (sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kHash));
  if (bulk_load) {
    std::vector<std::pair<Box, uint64_t>> entries;
    entries.reserve(tuples.size());
    for (uint64_t i = 0; i < tuples.size(); ++i) {
      entries.emplace_back(tuples[i].at(shape_col).Mbr(), i);
    }
    if (ctx.clock != nullptr && !tuples.empty()) {
      double n = static_cast<double>(tuples.size());
      ctx.clock->ChargeCpu(n * std::log2(n + 1) * sim::cpu_cost::kCompare);
    }
    return index::RStarTree::BulkLoadStr(std::move(entries));
  }
  auto tree = std::make_unique<index::RStarTree>();
  for (uint64_t i = 0; i < tuples.size(); ++i) {
    tree->Insert(tuples[i].at(shape_col).Mbr(), i);
  }
  return tree;
}

}  // namespace paradise::exec
