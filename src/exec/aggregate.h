#ifndef PARADISE_EXEC_AGGREGATE_H_
#define PARADISE_EXEC_AGGREGATE_H_

#include <any>
#include <memory>
#include <vector>

#include "exec/exec_context.h"
#include "exec/expr.h"
#include "exec/tuple.h"

namespace paradise::exec {

/// Extensible aggregate defined by a *local* and a *global* function
/// (Section 2.4): the local function folds tuples into a partial state on
/// each node during phase one; the global function merges partial states
/// during phase two. New ADTs register new aggregates (e.g. `closest`)
/// without touching the scheduler or execution engine — see
/// catalog::AggregateRegistry.
///
/// Partial states must cross node boundaries, so every aggregate can
/// round-trip its state through plain Values (SaveState/LoadState).
class Aggregate {
 public:
  virtual ~Aggregate() = default;

  virtual std::any Init() const = 0;

  /// Phase 1: fold one input tuple into the state.
  virtual Status Local(std::any* state, const Tuple& tuple,
                       const ExecContext& ctx) const = 0;

  /// Phase 2: merge another partial state into `acc`.
  virtual Status Global(std::any* acc, const std::any& partial) const = 0;

  /// Final result columns this aggregate contributes.
  virtual StatusOr<std::vector<Value>> Final(const std::any& state) const = 0;
  virtual size_t FinalWidth() const { return 1; }

  /// State (de)marshalling for shipping partials between nodes.
  virtual std::vector<Value> SaveState(const std::any& state) const = 0;
  virtual std::any LoadState(const std::vector<Value>& values,
                             size_t* cursor) const = 0;
  virtual size_t StateWidth() const = 0;
};

using AggregatePtr = std::shared_ptr<const Aggregate>;

// ---- The standard SQL aggregates ----

AggregatePtr MakeCount();
AggregatePtr MakeSum(ExprPtr input);
AggregatePtr MakeAvg(ExprPtr input);
AggregatePtr MakeMin(ExprPtr input);
AggregatePtr MakeMax(ExprPtr input);

/// The spatial aggregate `closest(shape, POINT)` (Queries 11-12): keeps
/// the input tuple's shape with the minimum distance to `point`. Final()
/// yields [shape, distance].
AggregatePtr MakeClosest(ExprPtr shape, geom::Point point);

// ---- The two-phase (partitioned) aggregation operators ----

/// Phase 1 on one node: groups `input` by `group_cols` and folds every
/// aggregate. Output tuples: [group values..., agg states...] — suitable
/// for redistribution by group key.
StatusOr<std::vector<Tuple>> AggregateLocal(
    const std::vector<Tuple>& input, const std::vector<size_t>& group_cols,
    const std::vector<AggregatePtr>& aggs, const ExecContext& ctx);

/// Phase 2: merges partial tuples produced by AggregateLocal (possibly
/// from many nodes). Output tuples: [group values..., final values...].
StatusOr<std::vector<Tuple>> AggregateGlobal(
    const std::vector<Tuple>& partials, size_t num_group_cols,
    const std::vector<AggregatePtr>& aggs, const ExecContext& ctx);

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_AGGREGATE_H_
