#include "exec/aggregate.h"

#include <limits>
#include <map>

#include "common/logging.h"
#include "sim/cost_model.h"

namespace paradise::exec {

namespace {

// ---- count ----

class CountAggregate : public Aggregate {
 public:
  std::any Init() const override { return int64_t{0}; }
  Status Local(std::any* state, const Tuple&,
               const ExecContext& ctx) const override {
    ctx.ChargeCpu(sim::cpu_cost::kCompare);
    *state = std::any_cast<int64_t>(*state) + 1;
    return Status::OK();
  }
  Status Global(std::any* acc, const std::any& partial) const override {
    *acc = std::any_cast<int64_t>(*acc) + std::any_cast<int64_t>(partial);
    return Status::OK();
  }
  StatusOr<std::vector<Value>> Final(const std::any& state) const override {
    return std::vector<Value>{Value(std::any_cast<int64_t>(state))};
  }
  std::vector<Value> SaveState(const std::any& state) const override {
    return {Value(std::any_cast<int64_t>(state))};
  }
  std::any LoadState(const std::vector<Value>& values,
                     size_t* cursor) const override {
    return values[(*cursor)++].AsInt();
  }
  size_t StateWidth() const override { return 1; }
};

// ---- sum / avg ----

struct SumState {
  double sum = 0;
  int64_t count = 0;
};

class SumAggregate : public Aggregate {
 public:
  SumAggregate(ExprPtr input, bool average)
      : input_(std::move(input)), average_(average) {}

  std::any Init() const override { return SumState{}; }
  Status Local(std::any* state, const Tuple& tuple,
               const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value v, input_->Eval(tuple, ctx));
    ctx.ChargeCpu(sim::cpu_cost::kCompare);
    SumState s = std::any_cast<SumState>(*state);
    s.sum += v.AsNumber();
    s.count += 1;
    *state = s;
    return Status::OK();
  }
  Status Global(std::any* acc, const std::any& partial) const override {
    SumState a = std::any_cast<SumState>(*acc);
    SumState p = std::any_cast<SumState>(partial);
    a.sum += p.sum;
    a.count += p.count;
    *acc = a;
    return Status::OK();
  }
  StatusOr<std::vector<Value>> Final(const std::any& state) const override {
    SumState s = std::any_cast<SumState>(state);
    if (average_) {
      if (s.count == 0) return std::vector<Value>{Value()};
      return std::vector<Value>{Value(s.sum / s.count)};
    }
    return std::vector<Value>{Value(s.sum)};
  }
  std::vector<Value> SaveState(const std::any& state) const override {
    SumState s = std::any_cast<SumState>(state);
    return {Value(s.sum), Value(s.count)};
  }
  std::any LoadState(const std::vector<Value>& values,
                     size_t* cursor) const override {
    SumState s;
    s.sum = values[(*cursor)++].AsDouble();
    s.count = values[(*cursor)++].AsInt();
    return s;
  }
  size_t StateWidth() const override { return 2; }

 private:
  ExprPtr input_;
  bool average_;
};

// ---- min / max ----

class MinMaxAggregate : public Aggregate {
 public:
  MinMaxAggregate(ExprPtr input, bool is_min)
      : input_(std::move(input)), is_min_(is_min) {}

  std::any Init() const override { return Value(); }  // null = empty
  Status Local(std::any* state, const Tuple& tuple,
               const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value v, input_->Eval(tuple, ctx));
    ctx.ChargeCpu(sim::cpu_cost::kCompare);
    Value cur = std::any_cast<Value>(*state);
    if (cur.is_null() || (is_min_ ? v.Compare(cur) < 0 : v.Compare(cur) > 0)) {
      *state = v;
    }
    return Status::OK();
  }
  Status Global(std::any* acc, const std::any& partial) const override {
    Value p = std::any_cast<Value>(partial);
    if (p.is_null()) return Status::OK();
    Value cur = std::any_cast<Value>(*acc);
    if (cur.is_null() || (is_min_ ? p.Compare(cur) < 0 : p.Compare(cur) > 0)) {
      *acc = p;
    }
    return Status::OK();
  }
  StatusOr<std::vector<Value>> Final(const std::any& state) const override {
    return std::vector<Value>{std::any_cast<Value>(state)};
  }
  std::vector<Value> SaveState(const std::any& state) const override {
    return {std::any_cast<Value>(state)};
  }
  std::any LoadState(const std::vector<Value>& values,
                     size_t* cursor) const override {
    return values[(*cursor)++];
  }
  size_t StateWidth() const override { return 1; }

 private:
  ExprPtr input_;
  bool is_min_;
};

// ---- closest (the spatial aggregate, Section 2.7.3) ----

struct ClosestState {
  Value shape;  // null = nothing seen yet
  double distance = std::numeric_limits<double>::infinity();
};

class ClosestAggregate : public Aggregate {
 public:
  ClosestAggregate(ExprPtr shape, geom::Point point)
      : shape_(std::move(shape)), point_(point) {}

  std::any Init() const override { return ClosestState{}; }
  Status Local(std::any* state, const Tuple& tuple,
               const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value shape, shape_->Eval(tuple, ctx));
    PARADISE_ASSIGN_OR_RETURN(double d,
                              SpatialDistance(Value(point_), shape, ctx));
    ClosestState s = std::any_cast<ClosestState>(*state);
    if (d < s.distance) {
      s.distance = d;
      s.shape = shape;
    }
    *state = s;
    return Status::OK();
  }
  Status Global(std::any* acc, const std::any& partial) const override {
    ClosestState a = std::any_cast<ClosestState>(*acc);
    ClosestState p = std::any_cast<ClosestState>(partial);
    if (p.distance < a.distance) a = p;
    *acc = a;
    return Status::OK();
  }
  StatusOr<std::vector<Value>> Final(const std::any& state) const override {
    ClosestState s = std::any_cast<ClosestState>(state);
    return std::vector<Value>{
        s.shape, s.shape.is_null() ? Value() : Value(s.distance)};
  }
  size_t FinalWidth() const override { return 2; }
  std::vector<Value> SaveState(const std::any& state) const override {
    ClosestState s = std::any_cast<ClosestState>(state);
    return {s.shape, Value(s.distance)};
  }
  std::any LoadState(const std::vector<Value>& values,
                     size_t* cursor) const override {
    ClosestState s;
    s.shape = values[(*cursor)++];
    s.distance = values[(*cursor)++].AsDouble();
    return s;
  }
  size_t StateWidth() const override { return 2; }

 private:
  ExprPtr shape_;
  geom::Point point_;
};

/// Group key wrapper so Values can key a std::map.
struct GroupKey {
  std::vector<Value> values;
  bool operator<(const GroupKey& o) const {
    for (size_t i = 0; i < values.size(); ++i) {
      int c = values[i].Compare(o.values[i]);
      if (c != 0) return c < 0;
    }
    return false;
  }
};

}  // namespace

AggregatePtr MakeCount() { return std::make_shared<CountAggregate>(); }
AggregatePtr MakeSum(ExprPtr input) {
  return std::make_shared<SumAggregate>(std::move(input), false);
}
AggregatePtr MakeAvg(ExprPtr input) {
  return std::make_shared<SumAggregate>(std::move(input), true);
}
AggregatePtr MakeMin(ExprPtr input) {
  return std::make_shared<MinMaxAggregate>(std::move(input), true);
}
AggregatePtr MakeMax(ExprPtr input) {
  return std::make_shared<MinMaxAggregate>(std::move(input), false);
}
AggregatePtr MakeClosest(ExprPtr shape, geom::Point point) {
  return std::make_shared<ClosestAggregate>(std::move(shape), point);
}

StatusOr<std::vector<Tuple>> AggregateLocal(
    const std::vector<Tuple>& input, const std::vector<size_t>& group_cols,
    const std::vector<AggregatePtr>& aggs, const ExecContext& ctx) {
  std::map<GroupKey, std::vector<std::any>> groups;
  for (const Tuple& t : input) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kHash);
    GroupKey key;
    key.values.reserve(group_cols.size());
    for (size_t c : group_cols) key.values.push_back(t.at(c));
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) {
      for (const AggregatePtr& a : aggs) it->second.push_back(a->Init());
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      PARADISE_RETURN_IF_ERROR(aggs[i]->Local(&it->second[i], t, ctx));
    }
  }
  std::vector<Tuple> out;
  out.reserve(groups.size());
  for (auto& [key, states] : groups) {
    Tuple t;
    t.values = key.values;
    for (size_t i = 0; i < aggs.size(); ++i) {
      for (Value& v : aggs[i]->SaveState(states[i])) {
        t.values.push_back(std::move(v));
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

StatusOr<std::vector<Tuple>> AggregateGlobal(
    const std::vector<Tuple>& partials, size_t num_group_cols,
    const std::vector<AggregatePtr>& aggs, const ExecContext& ctx) {
  std::map<GroupKey, std::vector<std::any>> groups;
  for (const Tuple& t : partials) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kHash);
    GroupKey key;
    key.values.assign(t.values.begin(), t.values.begin() + num_group_cols);
    // Unmarshal this partial's states.
    std::vector<Value> state_values(t.values.begin() + num_group_cols,
                                    t.values.end());
    size_t cursor = 0;
    std::vector<std::any> states;
    states.reserve(aggs.size());
    for (const AggregatePtr& a : aggs) {
      states.push_back(a->LoadState(state_values, &cursor));
    }
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) {
      it->second = std::move(states);
    } else {
      for (size_t i = 0; i < aggs.size(); ++i) {
        PARADISE_RETURN_IF_ERROR(aggs[i]->Global(&it->second[i], states[i]));
      }
    }
  }
  std::vector<Tuple> out;
  out.reserve(groups.size());
  for (auto& [key, states] : groups) {
    Tuple t;
    t.values = key.values;
    for (size_t i = 0; i < aggs.size(); ++i) {
      PARADISE_ASSIGN_OR_RETURN(std::vector<Value> finals,
                                aggs[i]->Final(states[i]));
      for (Value& v : finals) t.values.push_back(std::move(v));
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace paradise::exec
