#ifndef PARADISE_EXEC_OPERATORS_H_
#define PARADISE_EXEC_OPERATORS_H_

#include <vector>

#include "exec/exec_context.h"
#include "exec/expr.h"
#include "exec/tuple.h"
#include "index/b_plus_tree.h"

namespace paradise::exec {

/// Keeps tuples satisfying `predicate`.
StatusOr<TupleVec> Filter(const TupleVec& input, const ExprPtr& predicate,
                          const ExecContext& ctx);

/// Evaluates one expression per output column.
StatusOr<TupleVec> Project(const TupleVec& input,
                           const std::vector<ExprPtr>& exprs,
                           const ExecContext& ctx);

struct SortKey {
  size_t column = 0;
  bool ascending = true;
};

/// In-memory sort; charges n log n comparisons.
void SortTuples(TupleVec* tuples, const std::vector<SortKey>& keys,
                const ExecContext& ctx);

/// Tuple-at-a-time nested loops join with an arbitrary predicate over the
/// concatenated tuple.
StatusOr<TupleVec> NestedLoopsJoin(const TupleVec& left, const TupleVec& right,
                                   const ExprPtr& predicate,
                                   const ExecContext& ctx);

struct HashJoinOptions {
  /// Bytes of build-side memory before Grace partitioning spills to disk
  /// (charged, not physically spilled).
  size_t memory_budget = 4 << 20;
  size_t num_partitions = 16;
};

/// Dynamic-memory Grace hash join [Kits89] on scalar key equality.
/// When the build side exceeds the budget, both inputs are charged the
/// partition write+read I/O of the Grace algorithm.
StatusOr<TupleVec> GraceHashJoin(const TupleVec& left, size_t left_key,
                                 const TupleVec& right, size_t right_key,
                                 const ExecContext& ctx,
                                 const HashJoinOptions& options = {});

/// Index nested loops over a B+-tree keyed on the right input's `right_key`
/// column values -> right row index.
StatusOr<TupleVec> IndexNestedLoopsJoin(
    const TupleVec& left, size_t left_key, const TupleVec& right,
    const index::BPlusTree<std::string>& right_index, const ExecContext& ctx);

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_OPERATORS_H_
