#include "exec/join_kernel.h"

#include "common/logging.h"
#include "exec/expr.h"
#include "sim/cost_model.h"

namespace paradise::exec::join_kernel {

namespace {

/// Order-preserving bit image of a double: negatives reverse (flip all
/// bits), non-negatives shift above them (set the sign bit). The +0.0
/// turns -0.0 into +0.0 first, so the two zeros share one image and their
/// tie falls to the ordinal, exactly as comparing the doubles would.
uint64_t OrderedBits(double d) {
  d += 0.0;
  uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  __builtin_memcpy(&u, &d, sizeof(u));
  return (u >> 63) ? ~u : (u | 0x8000000000000000ull);
}

}  // namespace

std::vector<uint32_t> ArgsortByXlo(const MbrColumns& cols) {
  const size_t n = cols.size();
  std::vector<uint32_t> order(n);
  if (n == 0) return order;
  // Radix passes run on the high 32 bits only — that is sign, exponent,
  // and the top 20 mantissa bits, which already orders any two keys that
  // are not nearly identical. Runs of equal high words (rare for real
  // coordinates, common for degenerate all-equal inputs) are finished
  // with a comparison sort on the full key below.
  struct Item {
    uint32_t key_hi;
    uint32_t ord;
  };
  std::vector<Item> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = {static_cast<uint32_t>(OrderedBits(cols.xlo[i]) >> 32),
            static_cast<uint32_t>(i)};
  }
  Item* src = a.data();
  Item* dst = b.data();
  for (int shift = 0; shift < 32; shift += 8) {
    uint32_t hist[256] = {0};
    for (size_t i = 0; i < n; ++i) ++hist[(src[i].key_hi >> shift) & 0xff];
    if (hist[(src[0].key_hi >> shift) & 0xff] == n) continue;  // constant
    uint32_t sum = 0;
    for (uint32_t& h : hist) {
      uint32_t c = h;
      h = sum;
      sum += c;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[hist[(src[i].key_hi >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  // LSD radix is stable and the input was in ordinal order, so inside an
  // equal-high-word run the full (key, ordinal) sort below starts from
  // ordinal order and only reorders when low mantissa bits differ.
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && src[j].key_hi == src[i].key_hi) ++j;
    if (j - i > 1) {
      std::sort(src + i, src + j, [&cols](const Item& x, const Item& y) {
        const uint64_t kx = OrderedBits(cols.xlo[x.ord]);
        const uint64_t ky = OrderedBits(cols.xlo[y.ord]);
        if (kx != ky) return kx < ky;
        return x.ord < y.ord;
      });
    }
    i = j;
  }
  for (size_t i = 0; i < n; ++i) order[i] = src[i].ord;
  return order;
}

void SweepSide::GatherSorted(const MbrColumns& cols, const uint32_t* rows,
                             size_t n) {
  sort_scratch_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    sort_scratch_[i] = {cols.xlo[rows[i]], rows[i]};
  }
  // (xlo, ordinal) pairs: operator< on std::pair gives the tie-break.
  std::sort(sort_scratch_.begin(), sort_scratch_.end());

  xlo_.resize(n + 1);
  xhi_.resize(n);
  ylo_.resize(n);
  yhi_.resize(n);
  ord_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = sort_scratch_[i].second;
    xlo_[i] = sort_scratch_[i].first;
    xhi_[i] = cols.xhi[row];
    ylo_[i] = cols.ylo[row];
    yhi_[i] = cols.yhi[row];
    ord_[i] = row;
  }
  xlo_[n] = std::numeric_limits<double>::infinity();  // scan sentinel
}

void SweepSide::GatherPresorted(const MbrColumns& cols, const uint32_t* rows,
                                size_t n) {
  xlo_.resize(n + 1);
  xhi_.resize(n);
  ylo_.resize(n);
  yhi_.resize(n);
  ord_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = rows[i];
    xlo_[i] = cols.xlo[row];
    xhi_[i] = cols.xhi[row];
    ylo_[i] = cols.ylo[row];
    yhi_[i] = cols.yhi[row];
    ord_[i] = row;
  }
  xlo_[n] = std::numeric_limits<double>::infinity();  // scan sentinel
}

int64_t SweepForCandidates(const SweepSide& left, const SweepSide& right,
                           CandidateBatch* batch) {
  const size_t nl = left.size();
  const size_t nr = right.size();
  if (nl == 0 || nr == 0) return 0;
  const double* lxlo = left.xlo();
  const double* lxhi = left.xhi();
  const double* lylo = left.ylo();
  const double* lyhi = left.yhi();
  const double* rxlo = right.xlo();
  const double* rxhi = right.xhi();
  const double* rylo = right.ylo();
  const double* ryhi = right.yhi();

  int64_t compares = 0;
  size_t i = 0, j = 0;
  while (i < nl && j < nr) {
    if (lxlo[i] <= rxlo[j]) {
      // Scan right items starting at j while their xlo is under left[i]'s
      // xhi. Every pair visited x-overlaps by construction, so the hit
      // test is y-only — two flat compares over contiguous arrays.
      const double xhi = lxhi[i];
      const double ylo = lylo[i];
      const double yhi = lyhi[i];
      const uint32_t lpos = static_cast<uint32_t>(i);
      size_t k = j;
      for (; rxlo[k] <= xhi; ++k) {
        const bool hit = (rylo[k] <= yhi) & (ylo <= ryhi[k]);
        batch->Push(lpos, static_cast<uint32_t>(k), hit);
      }
      compares += static_cast<int64_t>(k - j);
      ++i;
    } else {
      const double xhi = rxhi[j];
      const double ylo = rylo[j];
      const double yhi = ryhi[j];
      const uint32_t rpos = static_cast<uint32_t>(j);
      size_t k = i;
      for (; lxlo[k] <= xhi; ++k) {
        const bool hit = (lylo[k] <= yhi) & (ylo <= lyhi[k]);
        batch->Push(static_cast<uint32_t>(k), rpos, hit);
      }
      compares += static_cast<int64_t>(k - i);
      ++j;
    }
  }
  return compares;
}

void SortAosByXmin(std::vector<AosItem>* items) {
  std::sort(items->begin(), items->end(),
            [](const AosItem& a, const AosItem& b) {
              if (a.box.xmin != b.box.xmin) return a.box.xmin < b.box.xmin;
              return a.ordinal < b.ordinal;
            });
}

int64_t SweepForCandidatesAos(const std::vector<AosItem>& left,
                              const std::vector<AosItem>& right,
                              CandidateBatch* batch) {
  int64_t compares = 0;
  size_t i = 0, j = 0;
  while (i < left.size() && j < right.size()) {
    if (left[i].box.xmin <= right[j].box.xmin) {
      for (size_t k = j;
           k < right.size() && right[k].box.xmin <= left[i].box.xmax; ++k) {
        ++compares;
        batch->Push(static_cast<uint32_t>(i), static_cast<uint32_t>(k),
                    left[i].box.Intersects(right[k].box));
      }
      ++i;
    } else {
      for (size_t k = i;
           k < left.size() && left[k].box.xmin <= right[j].box.xmax; ++k) {
        ++compares;
        batch->Push(static_cast<uint32_t>(k), static_cast<uint32_t>(j),
                    left[k].box.Intersects(right[j].box));
      }
      ++j;
    }
  }
  return compares;
}

Status ExactJoinBatch(const TupleVec& left, size_t left_col,
                      const TupleVec& right, size_t right_col,
                      const OrdinalPair* pairs, size_t count,
                      const ExecContext& ctx, TupleVec* out) {
  // The batch's per-segment test CPU lands as one charge after the loop:
  // kPerSegmentTest is integer-valued, so the sum over the batch is
  // exactly the per-pair charge sequence's total (see
  // ExecContext::ChargeCpuOps), and a clock only ever reports totals.
  // The candidate list makes upcoming accesses known ahead of time, so the
  // pointer chains (tuple -> values -> shared geometry -> point array) are
  // staged into cache before the test needs them. Pure prefetch: no
  // observable effect beyond wall clock.
  const auto prefetch_tuples = [&](size_t idx) {
    __builtin_prefetch(left[pairs[idx].left_row].values.data());
    __builtin_prefetch(right[pairs[idx].right_row].values.data());
  };
  const auto prefetch_geoms = [&](size_t idx) {
    const Value& lv = left[pairs[idx].left_row].at(left_col);
    const Value& rv = right[pairs[idx].right_row].at(right_col);
    if (lv.type() == ValueType::kPolyline) {
      __builtin_prefetch(lv.AsPolyline().get());
    }
    if (rv.type() == ValueType::kPolyline) {
      __builtin_prefetch(rv.AsPolyline().get());
    }
  };
  const auto prefetch_points = [&](size_t idx) {
    const Value& lv = left[pairs[idx].left_row].at(left_col);
    const Value& rv = right[pairs[idx].right_row].at(right_col);
    if (lv.type() == ValueType::kPolyline) {
      __builtin_prefetch(lv.AsPolyline()->points().data());
    }
    if (rv.type() == ValueType::kPolyline) {
      __builtin_prefetch(rv.AsPolyline()->points().data());
    }
  };
  constexpr size_t kTupleDist = 8, kGeomDist = 4, kPointsDist = 2;
  for (size_t idx = 0; idx < std::min(count, kTupleDist); ++idx) {
    prefetch_tuples(idx);
    if (idx < kGeomDist) prefetch_geoms(idx);
  }
  int64_t total_segments = 0;
  for (size_t idx = 0; idx < count; ++idx) {
    if (idx + kTupleDist < count) prefetch_tuples(idx + kTupleDist);
    if (idx + kGeomDist < count) prefetch_geoms(idx + kGeomDist);
    if (idx + kPointsDist < count) prefetch_points(idx + kPointsDist);
    const Tuple& lt = left[pairs[idx].left_row];
    const Tuple& rt = right[pairs[idx].right_row];
    const Value& lv = lt.at(left_col);
    const Value& rv = rt.at(right_col);
    total_segments += static_cast<int64_t>(SpatialSegmentCount(lv) +
                                           SpatialSegmentCount(rv));
    PARADISE_ASSIGN_OR_RETURN(bool hit, SpatialIntersectsExact(lv, rv, ctx));
    if (!hit) continue;
    Tuple joined;
    joined.values.reserve(lt.values.size() + rt.values.size());
    joined.values.insert(joined.values.end(), lt.values.begin(),
                         lt.values.end());
    joined.values.insert(joined.values.end(), rt.values.begin(),
                         rt.values.end());
    out->push_back(std::move(joined));
  }
  ctx.ChargeCpuOps(total_segments, sim::cpu_cost::kPerSegmentTest);
  return Status::OK();
}

}  // namespace paradise::exec::join_kernel
