#ifndef PARADISE_EXEC_TUPLE_H_
#define PARADISE_EXEC_TUPLE_H_

#include <string>
#include <vector>

#include "common/logging.h"
#include "exec/value.h"

namespace paradise::exec {

/// A row. Cheap to copy (large attributes are shared by reference).
struct Tuple {
  std::vector<Value> values;

  Tuple() = default;
  explicit Tuple(std::vector<Value> v) : values(std::move(v)) {}

  const Value& at(size_t i) const {
    PARADISE_DCHECK(i < values.size());
    return values[i];
  }
  size_t size() const { return values.size(); }

  /// Bytes moved when this tuple crosses a network/disk boundary. Shallow:
  /// shared large attributes contribute only their handle (the pull model
  /// moves tile bytes separately, and only when needed).
  size_t WireBytes() const {
    size_t n = 4;
    for (const Value& v : values) n += v.StorageBytes(/*deep=*/false);
    return n;
  }

  void Serialize(ByteWriter* w) const {
    w->PutU32(static_cast<uint32_t>(values.size()));
    for (const Value& v : values) v.Serialize(w);
  }
  static Tuple Deserialize(ByteReader* r) {
    Tuple t;
    uint32_t n = r->GetU32();
    t.values.reserve(n);
    for (uint32_t i = 0; i < n; ++i) t.values.push_back(Value::Deserialize(r));
    return t;
  }

  std::string ToString() const {
    std::string out = "(";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      out += values[i].ToString();
    }
    out += ")";
    return out;
  }
};

using TupleVec = std::vector<Tuple>;

struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered column list describing tuples of one table or operator output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of a named column; aborts if absent (schema bugs are programmer
  /// errors).
  size_t IndexOf(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return i;
    }
    PARADISE_CHECK_MSG(false, ("no column " + name).c_str());
    return 0;
  }

  bool Has(const std::string& name) const {
    for (const Column& c : columns_) {
      if (c.name == name) return true;
    }
    return false;
  }

  /// Concatenation, used by joins (right columns prefixed on collision).
  static Schema Join(const Schema& left, const Schema& right) {
    std::vector<Column> cols = left.columns_;
    for (const Column& c : right.columns_) {
      Column copy = c;
      if (left.Has(c.name)) copy.name = "r." + c.name;
      cols.push_back(copy);
    }
    return Schema(std::move(cols));
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_TUPLE_H_
