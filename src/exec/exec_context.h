#ifndef PARADISE_EXEC_EXEC_CONTEXT_H_
#define PARADISE_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>

#include "array/chunked_array.h"
#include "sim/node_clock.h"
#include "storage/large_object.h"

namespace paradise::common {
class ThreadPool;
}  // namespace paradise::common

namespace paradise::exec {

/// Partition-shape counters the PBSM join reports when the context carries
/// a stats sink: how evenly the cell→partition map spread the inputs and
/// how much boundary replication it caused. `max/mean partition items` are
/// over the combined left+right entry counts of non-empty partitions; a
/// map that clusters adjacent hot cells into one partition shows up as
/// max >> mean.
struct PbsmJoinStats {
  size_t partitions = 0;          // P actually used
  size_t cells_per_axis = 0;      // grid resolution
  int64_t left_tuples = 0;        // input cardinalities
  int64_t right_tuples = 0;
  int64_t left_items = 0;         // partition entries, replicas included
  int64_t right_items = 0;
  int64_t max_partition_items = 0;
  double mean_partition_items = 0.0;
  int64_t nonempty_partitions = 0;  // partitions with at least one item
  int64_t parallel_tasks = 0;     // partition sweeps run as pool tasks

  // Sweep-kernel counters (summed over partitions, in partition order):
  // pair compares the sweeps performed, MBR-overlapping candidates they
  // emitted, and candidates that survived reference-point dedup into the
  // exact-geometry pass. Identical for the SoA and AoS kernels.
  int64_t sweep_pair_compares = 0;
  int64_t sweep_candidates = 0;
  int64_t exact_tests = 0;

  // Duplicate-elimination counters. Legacy replicate-and-dedup joins test
  // every candidate (and every cross-node joined tuple) against the
  // reference-point rule and drop the losers; the two-layer class plan
  // never runs the test, so both counters are exactly 0 there — the
  // observable form of its exactly-once guarantee.
  int64_t dedup_tests = 0;    // reference-point tests executed
  int64_t dedup_dropped = 0;  // candidates/results discarded by them

  // Two-layer class census: partition entries per begin class, left and
  // right combined (all-A means nothing spans a tile boundary). Zero in
  // legacy mode.
  int64_t class_a_items = 0;
  int64_t class_b_items = 0;
  int64_t class_c_items = 0;
  int64_t class_d_items = 0;
  /// Partition-entry bytes beyond one entry per input tuple (the
  /// boundary-replication cost of the grid, in SoA entry bytes).
  int64_t replicated_entry_bytes = 0;

  /// Replication factor: partition entries per input tuple (1.0 = none).
  double replication() const {
    int64_t tuples = left_tuples + right_tuples;
    return tuples == 0 ? 0.0
                       : static_cast<double>(left_items + right_items) /
                             static_cast<double>(tuples);
  }

  void Clear() { *this = PbsmJoinStats(); }

  friend bool operator==(const PbsmJoinStats&, const PbsmJoinStats&) = default;
};

/// Everything an operator needs from the node it runs on: the node's
/// virtual clock for cost charging, a store for large attributes created
/// mid-query (Section 2.5.2's per-operator files), a way to read tiles
/// of rasters owned by *any* node — the local store directly, or the pull
/// protocol for remote owners — and the worker pool for intra-node
/// parallelism (partition-to-threads joins).
struct ExecContext {
  uint32_t node_id = 0;
  sim::NodeClock* clock = nullptr;                 // may be null in tests
  storage::LargeObjectStore* temp_store = nullptr; // for created large attrs

  /// Worker pool for intra-operator parallelism; null (or 1 thread) runs
  /// the operator's tasks inline. Operators must keep their modeled
  /// charges and output order independent of this setting: tasks
  /// accumulate onto task-local clocks and are merged in task order.
  common::ThreadPool* pool = nullptr;

  /// Optional stats sink filled by PbsmSpatialJoin (skew / replication of
  /// the cell→partition map). Not owned; may be null.
  PbsmJoinStats* pbsm_stats = nullptr;

  /// Returns a TileSource able to read tiles of arrays owned by
  /// `owner_node`. The returned pointer stays valid for the query.
  std::function<array::TileSource*(uint32_t owner_node)> tile_source;

  void ChargeCpu(double ops) const {
    if (clock != nullptr) clock->ChargeCpu(ops);
  }

  /// Batched replay of `count` identical per-item charges as one clock op.
  /// Every per-item cpu_cost constant is integer-valued, so the doubles
  /// sum exactly (well below 2^53): `count * per_op` is bit-identical to
  /// `count` sequential ChargeCpu(per_op) calls in any interleaving —
  /// which is what lets the join kernel hoist charges out of hot loops
  /// without perturbing modeled time.
  void ChargeCpuOps(int64_t count, double per_op) const {
    if (clock != nullptr && count > 0) {
      clock->ChargeCpu(static_cast<double>(count) * per_op);
    }
  }

  void ChargeUsage(const sim::ResourceUsage& usage) const {
    if (clock != nullptr) clock->ChargeUsage(usage);
  }

  array::TileSource* SourceFor(uint32_t owner_node) const {
    return tile_source ? tile_source(owner_node) : nullptr;
  }
};

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_EXEC_CONTEXT_H_
