#ifndef PARADISE_EXEC_EXEC_CONTEXT_H_
#define PARADISE_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <functional>

#include "array/chunked_array.h"
#include "sim/node_clock.h"
#include "storage/large_object.h"

namespace paradise::exec {

/// Everything an operator needs from the node it runs on: the node's
/// virtual clock for cost charging, a store for large attributes created
/// mid-query (Section 2.5.2's per-operator files), and a way to read tiles
/// of rasters owned by *any* node — the local store directly, or the pull
/// protocol for remote owners.
struct ExecContext {
  uint32_t node_id = 0;
  sim::NodeClock* clock = nullptr;                 // may be null in tests
  storage::LargeObjectStore* temp_store = nullptr; // for created large attrs

  /// Returns a TileSource able to read tiles of arrays owned by
  /// `owner_node`. The returned pointer stays valid for the query.
  std::function<array::TileSource*(uint32_t owner_node)> tile_source;

  void ChargeCpu(double ops) const {
    if (clock != nullptr) clock->ChargeCpu(ops);
  }

  array::TileSource* SourceFor(uint32_t owner_node) const {
    return tile_source ? tile_source(owner_node) : nullptr;
  }
};

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_EXEC_CONTEXT_H_
