#ifndef PARADISE_EXEC_VALUE_H_
#define PARADISE_EXEC_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "array/raster.h"
#include "common/bytes.h"
#include "common/date.h"
#include "common/status.h"
#include "geom/box.h"
#include "geom/circle.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/polyline.h"

namespace paradise::exec {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt,
  kDouble,
  kString,
  kDate,
  kPoint,
  kBox,
  kCircle,
  kPolygon,
  kPolyline,
  kSwissCheese,
  kRaster,
};

const char* ValueTypeName(ValueType t);

/// Large spatial attributes are shared by reference between tuples: a
/// projection or join output aliases the same geometry/raster the input
/// held, and only inserting into a permanent table deep-copies
/// (Section 2.5.2's copy-on-insert).
using PolygonPtr = std::shared_ptr<const geom::Polygon>;
using PolylinePtr = std::shared_ptr<const geom::Polyline>;
using SwissCheesePtr = std::shared_ptr<const geom::SwissCheesePolygon>;
using RasterPtr = std::shared_ptr<const array::Raster>;

/// A single attribute value. Cheap to copy: geometry and raster payloads
/// are shared_ptr-backed.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(Date v) : rep_(v) {}
  explicit Value(geom::Point v) : rep_(v) {}
  explicit Value(geom::Box v) : rep_(v) {}
  explicit Value(geom::Circle v) : rep_(v) {}
  explicit Value(PolygonPtr v) : rep_(std::move(v)) {}
  explicit Value(PolylinePtr v) : rep_(std::move(v)) {}
  explicit Value(SwissCheesePtr v) : rep_(std::move(v)) {}
  explicit Value(RasterPtr v) : rep_(std::move(v)) {}
  explicit Value(geom::Polygon v)
      : rep_(std::make_shared<const geom::Polygon>(std::move(v))) {}
  explicit Value(geom::Polyline v)
      : rep_(std::make_shared<const geom::Polyline>(std::move(v))) {}
  explicit Value(geom::SwissCheesePolygon v)
      : rep_(std::make_shared<const geom::SwissCheesePolygon>(std::move(v))) {}
  explicit Value(array::Raster v)
      : rep_(std::make_shared<const array::Raster>(std::move(v))) {}

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  Date AsDate() const { return std::get<Date>(rep_); }
  const geom::Point& AsPoint() const { return std::get<geom::Point>(rep_); }
  const geom::Box& AsBox() const { return std::get<geom::Box>(rep_); }
  const geom::Circle& AsCircle() const { return std::get<geom::Circle>(rep_); }
  const PolygonPtr& AsPolygon() const { return std::get<PolygonPtr>(rep_); }
  const PolylinePtr& AsPolyline() const { return std::get<PolylinePtr>(rep_); }
  const SwissCheesePtr& AsSwissCheese() const {
    return std::get<SwissCheesePtr>(rep_);
  }
  const RasterPtr& AsRaster() const { return std::get<RasterPtr>(rep_); }

  /// Numeric view of kInt/kDouble, for arithmetic-agnostic comparisons.
  double AsNumber() const;

  /// The MBR of any spatial value (point, box, circle, polygon, polyline,
  /// swiss-cheese, raster geo-extent). Aborts on non-spatial values.
  geom::Box Mbr() const;

  /// Total order within one type (scalars only: int, double, string,
  /// date). Used by sort and B+-tree keys.
  int Compare(const Value& other) const;

  uint64_t Hash() const;

  bool Equals(const Value& other) const;

  /// Bytes this value contributes to a tuple. When `deep` is false, large
  /// shared attributes count only their in-tuple reference/handle size —
  /// matching how temporary tables share large attributes by reference.
  size_t StorageBytes(bool deep) const;

  void Serialize(ByteWriter* w) const;
  static Value Deserialize(ByteReader* r);

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, Date,
               geom::Point, geom::Box, geom::Circle, PolygonPtr, PolylinePtr,
               SwissCheesePtr, RasterPtr>
      rep_;
};

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_VALUE_H_
