#include "exec/operators.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "sim/cost_model.h"
#include "storage/page.h"

namespace paradise::exec {

StatusOr<TupleVec> Filter(const TupleVec& input, const ExprPtr& predicate,
                          const ExecContext& ctx) {
  TupleVec out;
  for (const Tuple& t : input) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead);
    PARADISE_ASSIGN_OR_RETURN(bool keep, EvalPredicate(predicate, t, ctx));
    if (keep) out.push_back(t);
  }
  return out;
}

StatusOr<TupleVec> Project(const TupleVec& input,
                           const std::vector<ExprPtr>& exprs,
                           const ExecContext& ctx) {
  TupleVec out;
  out.reserve(input.size());
  for (const Tuple& t : input) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead);
    Tuple o;
    o.values.reserve(exprs.size());
    for (const ExprPtr& e : exprs) {
      PARADISE_ASSIGN_OR_RETURN(Value v, e->Eval(t, ctx));
      o.values.push_back(std::move(v));
    }
    out.push_back(std::move(o));
  }
  return out;
}

void SortTuples(TupleVec* tuples, const std::vector<SortKey>& keys,
                const ExecContext& ctx) {
  if (tuples->size() > 1) {
    double n = static_cast<double>(tuples->size());
    ctx.ChargeCpu(n * std::log2(n) * sim::cpu_cost::kCompare *
                  static_cast<double>(keys.size()));
  }
  std::stable_sort(tuples->begin(), tuples->end(),
                   [&](const Tuple& a, const Tuple& b) {
                     for (const SortKey& k : keys) {
                       int c = a.at(k.column).Compare(b.at(k.column));
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
}

StatusOr<TupleVec> NestedLoopsJoin(const TupleVec& left, const TupleVec& right,
                                   const ExprPtr& predicate,
                                   const ExecContext& ctx) {
  TupleVec out;
  for (const Tuple& l : left) {
    for (const Tuple& r : right) {
      ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead);
      Tuple joined;
      joined.values = l.values;
      joined.values.insert(joined.values.end(), r.values.begin(),
                           r.values.end());
      PARADISE_ASSIGN_OR_RETURN(bool keep,
                                EvalPredicate(predicate, joined, ctx));
      if (keep) out.push_back(std::move(joined));
    }
  }
  return out;
}

StatusOr<TupleVec> GraceHashJoin(const TupleVec& left, size_t left_key,
                                 const TupleVec& right, size_t right_key,
                                 const ExecContext& ctx,
                                 const HashJoinOptions& options) {
  // Build side = the smaller input.
  const bool build_left = left.size() <= right.size();
  const TupleVec& build = build_left ? left : right;
  const TupleVec& probe = build_left ? right : left;
  const size_t build_key = build_left ? left_key : right_key;
  const size_t probe_key = build_left ? right_key : left_key;

  // Grace spill accounting: if the build side exceeds memory, both inputs
  // are written out into partitions and read back (one sequential pass
  // each way).
  size_t build_bytes = 0;
  for (const Tuple& t : build) build_bytes += t.WireBytes();
  if (build_bytes > options.memory_budget && ctx.clock != nullptr) {
    size_t probe_bytes = 0;
    for (const Tuple& t : probe) probe_bytes += t.WireBytes();
    int64_t total = static_cast<int64_t>(build_bytes + probe_bytes);
    int64_t seeks = static_cast<int64_t>(2 * options.num_partitions);
    ctx.clock->ChargeDiskWrite(total, seeks);
    ctx.clock->ChargeDiskRead(total, seeks);
  }

  std::unordered_multimap<uint64_t, size_t> table;
  table.reserve(build.size());
  for (size_t i = 0; i < build.size(); ++i) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kHash);
    table.emplace(build[i].at(build_key).Hash(), i);
  }
  TupleVec out;
  for (const Tuple& p : probe) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kHash);
    auto [lo, hi] = table.equal_range(p.at(probe_key).Hash());
    for (auto it = lo; it != hi; ++it) {
      const Tuple& b = build[it->second];
      ctx.ChargeCpu(sim::cpu_cost::kCompare);
      if (!b.at(build_key).Equals(p.at(probe_key))) continue;
      Tuple joined;
      const Tuple& l = build_left ? b : p;
      const Tuple& r = build_left ? p : b;
      joined.values = l.values;
      joined.values.insert(joined.values.end(), r.values.begin(),
                           r.values.end());
      out.push_back(std::move(joined));
    }
  }
  return out;
}

StatusOr<TupleVec> IndexNestedLoopsJoin(
    const TupleVec& left, size_t left_key, const TupleVec& right,
    const index::BPlusTree<std::string>& right_index, const ExecContext& ctx) {
  TupleVec out;
  for (const Tuple& l : left) {
    ctx.ChargeCpu(sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kIndexProbe);
    if (ctx.clock != nullptr) {
      // Cold index probe: one random page per level.
      ctx.clock->ChargeDiskRead(
          static_cast<int64_t>(right_index.height() * storage::kPageSize),
          static_cast<int64_t>(right_index.height()));
    }
    for (uint64_t row : right_index.Find(l.at(left_key).AsString())) {
      const Tuple& r = right[row];
      Tuple joined;
      joined.values = l.values;
      joined.values.insert(joined.values.end(), r.values.begin(),
                           r.values.end());
      out.push_back(std::move(joined));
    }
  }
  return out;
}

}  // namespace paradise::exec
