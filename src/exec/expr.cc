#include "exec/expr.h"

#include <cmath>

#include "array/raster.h"
#include "common/logging.h"
#include "geom/algorithms.h"
#include "sim/cost_model.h"

namespace paradise::exec {

namespace {

using geom::Box;
using geom::Circle;
using geom::Point;

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(size_t index) : index_(index) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext&) const override {
    if (index_ >= t.size()) return Status::OutOfRange("column index");
    return t.at(index_);
  }

 private:
  size_t index_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  StatusOr<Value> Eval(const Tuple&, const ExecContext&) const override {
    return value_;
  }

 private:
  Value value_;
};

class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value va, a_->Eval(t, ctx));
    PARADISE_ASSIGN_OR_RETURN(Value vb, b_->Eval(t, ctx));
    ctx.ChargeCpu(sim::cpu_cost::kCompare);
    int c;
    if ((va.type() == ValueType::kInt || va.type() == ValueType::kDouble) &&
        (vb.type() == ValueType::kInt || vb.type() == ValueType::kDouble)) {
      double x = va.AsNumber(), y = vb.AsNumber();
      c = x < y ? -1 : (y < x ? 1 : 0);
    } else {
      c = va.Compare(vb);
    }
    bool r = false;
    switch (op_) {
      case CompareOp::kEq: r = c == 0; break;
      case CompareOp::kNe: r = c != 0; break;
      case CompareOp::kLt: r = c < 0; break;
      case CompareOp::kLe: r = c <= 0; break;
      case CompareOp::kGt: r = c > 0; break;
      case CompareOp::kGe: r = c >= 0; break;
    }
    return Value(static_cast<int64_t>(r ? 1 : 0));
  }

 private:
  CompareOp op_;
  ExprPtr a_, b_;
};

class AndExpr : public Expr {
 public:
  AndExpr(ExprPtr a, ExprPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value va, a_->Eval(t, ctx));
    if (va.AsInt() == 0) return Value(static_cast<int64_t>(0));
    return b_->Eval(t, ctx);
  }

 private:
  ExprPtr a_, b_;
};

class OrExpr : public Expr {
 public:
  OrExpr(ExprPtr a, ExprPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value va, a_->Eval(t, ctx));
    if (va.AsInt() != 0) return Value(static_cast<int64_t>(1));
    return b_->Eval(t, ctx);
  }

 private:
  ExprPtr a_, b_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr a) : a_(std::move(a)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value va, a_->Eval(t, ctx));
    return Value(static_cast<int64_t>(va.AsInt() == 0 ? 1 : 0));
  }

 private:
  ExprPtr a_;
};

class OverlapsExpr : public Expr {
 public:
  OverlapsExpr(ExprPtr a, ExprPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value va, a_->Eval(t, ctx));
    PARADISE_ASSIGN_OR_RETURN(Value vb, b_->Eval(t, ctx));
    PARADISE_ASSIGN_OR_RETURN(bool hit, SpatialIntersects(va, vb, ctx));
    return Value(static_cast<int64_t>(hit ? 1 : 0));
  }

 private:
  ExprPtr a_, b_;
};

class WithinCircleExpr : public Expr {
 public:
  WithinCircleExpr(ExprPtr shape, Circle circle)
      : shape_(std::move(shape)), circle_(circle) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value vs, shape_->Eval(t, ctx));
    Value center(circle_.center);
    PARADISE_ASSIGN_OR_RETURN(double d, SpatialDistance(center, vs, ctx));
    return Value(static_cast<int64_t>(d <= circle_.radius ? 1 : 0));
  }

 private:
  ExprPtr shape_;
  Circle circle_;
};

class AreaExpr : public Expr {
 public:
  explicit AreaExpr(ExprPtr shape) : shape_(std::move(shape)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value vs, shape_->Eval(t, ctx));
    ctx.ChargeCpu(sim::cpu_cost::kCompare * SpatialSegmentCount(vs));
    switch (vs.type()) {
      case ValueType::kPolygon: return Value(vs.AsPolygon()->Area());
      case ValueType::kSwissCheese: return Value(vs.AsSwissCheese()->Area());
      case ValueType::kBox: return Value(vs.AsBox().Area());
      case ValueType::kCircle: return Value(vs.AsCircle().Area());
      case ValueType::kPolyline: return Value(vs.AsPolyline()->Length());
      default:
        return Status::InvalidArgument("area() on non-areal value");
    }
  }

 private:
  ExprPtr shape_;
};

class DistanceExpr : public Expr {
 public:
  DistanceExpr(ExprPtr a, ExprPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value va, a_->Eval(t, ctx));
    PARADISE_ASSIGN_OR_RETURN(Value vb, b_->Eval(t, ctx));
    PARADISE_ASSIGN_OR_RETURN(double d, SpatialDistance(va, vb, ctx));
    return Value(d);
  }

 private:
  ExprPtr a_, b_;
};

class MakeBoxExpr : public Expr {
 public:
  MakeBoxExpr(ExprPtr point, double length)
      : point_(std::move(point)), length_(length) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value vp, point_->Eval(t, ctx));
    if (vp.type() != ValueType::kPoint) {
      return Status::InvalidArgument("makeBox on non-point");
    }
    return Value(Box::MakeBox(vp.AsPoint(), length_));
  }

 private:
  ExprPtr point_;
  double length_;
};

class RasterClipExpr : public Expr {
 public:
  RasterClipExpr(ExprPtr raster, PolygonPtr polygon)
      : raster_(std::move(raster)), polygon_(std::move(polygon)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value vr, raster_->Eval(t, ctx));
    if (vr.type() != ValueType::kRaster) {
      return Status::InvalidArgument("clip on non-raster");
    }
    const array::Raster& raster = *vr.AsRaster();
    array::TileSource* source = ctx.SourceFor(raster.handle.owner_node);
    if (source == nullptr) return Status::Internal("no tile source");
    PARADISE_ASSIGN_OR_RETURN(
        array::Raster clipped,
        array::ClipRaster(raster, *polygon_, source, ctx.temp_store,
                          ctx.clock, ctx.node_id));
    return Value(std::move(clipped));
  }

 private:
  ExprPtr raster_;
  PolygonPtr polygon_;
};

class RasterAverageExpr : public Expr {
 public:
  explicit RasterAverageExpr(ExprPtr raster) : raster_(std::move(raster)) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value vr, raster_->Eval(t, ctx));
    if (vr.type() != ValueType::kRaster) {
      return Status::InvalidArgument("average on non-raster");
    }
    const array::Raster& raster = *vr.AsRaster();
    array::TileSource* source = ctx.SourceFor(raster.handle.owner_node);
    if (source == nullptr) return Status::Internal("no tile source");
    PARADISE_ASSIGN_OR_RETURN(double avg,
                              array::RasterAverage(raster, source, ctx.clock));
    return Value(avg);
  }

 private:
  ExprPtr raster_;
};

class RasterLowerResExpr : public Expr {
 public:
  RasterLowerResExpr(ExprPtr raster, uint32_t factor)
      : raster_(std::move(raster)), factor_(factor) {}
  StatusOr<Value> Eval(const Tuple& t, const ExecContext& ctx) const override {
    PARADISE_ASSIGN_OR_RETURN(Value vr, raster_->Eval(t, ctx));
    if (vr.type() != ValueType::kRaster) {
      return Status::InvalidArgument("lower_res on non-raster");
    }
    const array::Raster& raster = *vr.AsRaster();
    array::TileSource* source = ctx.SourceFor(raster.handle.owner_node);
    if (source == nullptr) return Status::Internal("no tile source");
    PARADISE_ASSIGN_OR_RETURN(
        array::Raster out,
        array::LowerRes(raster, factor_, source, ctx.temp_store, ctx.clock,
                        ctx.node_id));
    return Value(std::move(out));
  }

 private:
  ExprPtr raster_;
  uint32_t factor_;
};

}  // namespace

StatusOr<bool> EvalPredicate(const ExprPtr& expr, const Tuple& tuple,
                             const ExecContext& ctx) {
  PARADISE_ASSIGN_OR_RETURN(Value v, expr->Eval(tuple, ctx));
  if (v.type() != ValueType::kInt) {
    return Status::InvalidArgument("predicate did not yield boolean");
  }
  return v.AsInt() != 0;
}

ExprPtr Col(size_t index) { return std::make_shared<ColumnExpr>(index); }
ExprPtr Lit(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}
ExprPtr Cmp(CompareOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(op, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<AndExpr>(std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<OrExpr>(std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) { return std::make_shared<NotExpr>(std::move(a)); }
ExprPtr Overlaps(ExprPtr a, ExprPtr b) {
  return std::make_shared<OverlapsExpr>(std::move(a), std::move(b));
}
ExprPtr WithinCircle(ExprPtr shape, Circle circle) {
  return std::make_shared<WithinCircleExpr>(std::move(shape), circle);
}
ExprPtr AreaOf(ExprPtr shape) {
  return std::make_shared<AreaExpr>(std::move(shape));
}
ExprPtr DistanceBetween(ExprPtr a, ExprPtr b) {
  return std::make_shared<DistanceExpr>(std::move(a), std::move(b));
}
ExprPtr MakeBoxAround(ExprPtr point, double length) {
  return std::make_shared<MakeBoxExpr>(std::move(point), length);
}
ExprPtr RasterClip(ExprPtr raster, PolygonPtr polygon) {
  return std::make_shared<RasterClipExpr>(std::move(raster),
                                          std::move(polygon));
}
ExprPtr RasterAverageOf(ExprPtr raster) {
  return std::make_shared<RasterAverageExpr>(std::move(raster));
}
ExprPtr RasterLowerResOf(ExprPtr raster, uint32_t factor) {
  return std::make_shared<RasterLowerResExpr>(std::move(raster), factor);
}

size_t SpatialSegmentCount(const Value& v) {
  switch (v.type()) {
    case ValueType::kPolygon: return v.AsPolygon()->num_points();
    case ValueType::kPolyline: return v.AsPolyline()->num_segments();
    case ValueType::kSwissCheese:
      return v.AsSwissCheese()->outer().num_points();
    default: return 1;
  }
}

StatusOr<bool> SpatialIntersects(const Value& a, const Value& b,
                                 const ExecContext& ctx) {
  ctx.ChargeCpu(sim::cpu_cost::kPerSegmentTest *
                static_cast<double>(SpatialSegmentCount(a) +
                                    SpatialSegmentCount(b)));
  // MBR prune first (as the exact-test phase of the join algorithms does).
  if (!a.Mbr().Intersects(b.Mbr())) return false;
  return SpatialIntersectsExact(a, b, ctx);
}

StatusOr<bool> SpatialIntersectsExact(const Value& a, const Value& b,
                                      const ExecContext& ctx) {
  auto type_pair = [&](ValueType x, ValueType y) {
    return a.type() == x && b.type() == y;
  };
  // Polyline-polyline first: it is the hot pair of the spatial-join
  // exact phase (road x hydro workloads).
  if (type_pair(ValueType::kPolyline, ValueType::kPolyline)) {
    return a.AsPolyline()->Intersects(*b.AsPolyline());
  }
  // Symmetric dispatch: normalize so the "bigger" type is first.
  if (type_pair(ValueType::kPolygon, ValueType::kPolygon)) {
    return a.AsPolygon()->Intersects(*b.AsPolygon());
  }
  if (type_pair(ValueType::kPolygon, ValueType::kPolyline)) {
    return a.AsPolygon()->Intersects(*b.AsPolyline());
  }
  if (type_pair(ValueType::kPolyline, ValueType::kPolygon)) {
    return b.AsPolygon()->Intersects(*a.AsPolyline());
  }
  if (type_pair(ValueType::kPolygon, ValueType::kPoint)) {
    return a.AsPolygon()->Contains(b.AsPoint());
  }
  if (type_pair(ValueType::kPoint, ValueType::kPolygon)) {
    return b.AsPolygon()->Contains(a.AsPoint());
  }
  if (type_pair(ValueType::kSwissCheese, ValueType::kPoint)) {
    return a.AsSwissCheese()->Contains(b.AsPoint());
  }
  if (type_pair(ValueType::kPoint, ValueType::kSwissCheese)) {
    return b.AsSwissCheese()->Contains(a.AsPoint());
  }
  if (a.type() == ValueType::kBox) {
    switch (b.type()) {
      case ValueType::kPolygon: return b.AsPolygon()->IntersectsBox(a.AsBox());
      case ValueType::kPolyline:
        return b.AsPolyline()->IntersectsBox(a.AsBox());
      case ValueType::kPoint: return a.AsBox().Contains(b.AsPoint());
      case ValueType::kBox: return a.AsBox().Intersects(b.AsBox());
      case ValueType::kRaster: return a.AsBox().Intersects(b.AsRaster()->geo);
      default: break;
    }
  }
  if (b.type() == ValueType::kBox) {
    return SpatialIntersects(b, a, ctx);
  }
  if (a.type() == ValueType::kRaster || b.type() == ValueType::kRaster) {
    // Raster extent vs anything: MBR semantics.
    return a.Mbr().Intersects(b.Mbr());
  }
  if (type_pair(ValueType::kPoint, ValueType::kPolyline)) {
    return b.AsPolyline()->DistanceTo(a.AsPoint()) == 0.0;
  }
  if (type_pair(ValueType::kPolyline, ValueType::kPoint)) {
    return a.AsPolyline()->DistanceTo(b.AsPoint()) == 0.0;
  }
  if (type_pair(ValueType::kPoint, ValueType::kPoint)) {
    return a.AsPoint() == b.AsPoint();
  }
  if (a.type() == ValueType::kCircle) {
    Value center(a.AsCircle().center);
    PARADISE_ASSIGN_OR_RETURN(double d, SpatialDistance(center, b, ctx));
    return d <= a.AsCircle().radius;
  }
  if (b.type() == ValueType::kCircle) {
    return SpatialIntersects(b, a, ctx);
  }
  return Status::InvalidArgument("unsupported overlaps() type combination");
}

StatusOr<double> SpatialDistance(const Value& point, const Value& shape,
                                 const ExecContext& ctx) {
  if (point.type() != ValueType::kPoint) {
    // Allow swapped arguments.
    if (shape.type() == ValueType::kPoint) {
      return SpatialDistance(shape, point, ctx);
    }
    return Status::InvalidArgument("distance requires a point operand");
  }
  const Point& p = point.AsPoint();
  ctx.ChargeCpu(sim::cpu_cost::kPerPointDistance *
                static_cast<double>(SpatialSegmentCount(shape)));
  switch (shape.type()) {
    case ValueType::kPoint: return geom::Distance(p, shape.AsPoint());
    case ValueType::kBox: return shape.AsBox().DistanceTo(p);
    case ValueType::kCircle: {
      double d = geom::Distance(p, shape.AsCircle().center);
      return std::max(0.0, d - shape.AsCircle().radius);
    }
    case ValueType::kPolygon: return shape.AsPolygon()->DistanceTo(p);
    case ValueType::kPolyline: return shape.AsPolyline()->DistanceTo(p);
    case ValueType::kSwissCheese:
      return shape.AsSwissCheese()->outer().DistanceTo(p);
    case ValueType::kRaster: return shape.AsRaster()->geo.DistanceTo(p);
    default:
      return Status::InvalidArgument("distance to non-spatial value");
  }
}

}  // namespace paradise::exec
