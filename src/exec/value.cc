#include "exec/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "common/logging.h"

namespace paradise::exec {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kDate: return "date";
    case ValueType::kPoint: return "point";
    case ValueType::kBox: return "box";
    case ValueType::kCircle: return "circle";
    case ValueType::kPolygon: return "polygon";
    case ValueType::kPolyline: return "polyline";
    case ValueType::kSwissCheese: return "swisscheese";
    case ValueType::kRaster: return "raster";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(rep_.index());
}

double Value::AsNumber() const {
  if (type() == ValueType::kInt) return static_cast<double>(AsInt());
  return AsDouble();
}

geom::Box Value::Mbr() const {
  switch (type()) {
    case ValueType::kPoint: {
      geom::Box b;
      b.ExpandToInclude(AsPoint());
      return b;
    }
    case ValueType::kBox:
      return AsBox();
    case ValueType::kCircle:
      return AsCircle().Mbr();
    case ValueType::kPolygon:
      return AsPolygon()->Mbr();
    case ValueType::kPolyline:
      return AsPolyline()->Mbr();
    case ValueType::kSwissCheese:
      return AsSwissCheese()->Mbr();
    case ValueType::kRaster:
      return AsRaster()->geo;
    default:
      PARADISE_CHECK_MSG(false, "Mbr() on non-spatial value");
      return geom::Box();
  }
}

int Value::Compare(const Value& other) const {
  PARADISE_CHECK_MSG(type() == other.type(), "comparing mixed types");
  auto cmp3 = [](auto a, auto b) { return a < b ? -1 : (b < a ? 1 : 0); };
  switch (type()) {
    case ValueType::kNull: return 0;
    case ValueType::kInt: return cmp3(AsInt(), other.AsInt());
    case ValueType::kDouble: return cmp3(AsDouble(), other.AsDouble());
    case ValueType::kString: return cmp3(AsString(), other.AsString());
    case ValueType::kDate:
      return cmp3(AsDate().days_since_epoch(),
                  other.AsDate().days_since_epoch());
    case ValueType::kPoint: {
      // Lexicographic; points act as group-by keys (e.g. Query 12).
      int cx = cmp3(AsPoint().x, other.AsPoint().x);
      return cx != 0 ? cx : cmp3(AsPoint().y, other.AsPoint().y);
    }
    default:
      PARADISE_CHECK_MSG(false, "Compare() on non-scalar value");
      return 0;
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull: return 0x9e3779b9;
    case ValueType::kInt: return std::hash<int64_t>()(AsInt());
    case ValueType::kDouble: return std::hash<double>()(AsDouble());
    case ValueType::kString: return std::hash<std::string>()(AsString());
    case ValueType::kDate: return std::hash<int32_t>()(AsDate().days_since_epoch());
    case ValueType::kPoint:
      return std::hash<double>()(AsPoint().x) * 0x9e3779b97f4a7c15ULL +
             std::hash<double>()(AsPoint().y);
    default:
      PARADISE_CHECK_MSG(false, "Hash() on non-scalar value");
      return 0;
  }
}

bool Value::Equals(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt:
    case ValueType::kDouble:
    case ValueType::kString:
    case ValueType::kDate:
      return Compare(other) == 0;
    case ValueType::kPoint:
      return AsPoint() == other.AsPoint();
    case ValueType::kBox:
      return AsBox() == other.AsBox();
    case ValueType::kCircle:
      return AsCircle().center == other.AsCircle().center &&
             AsCircle().radius == other.AsCircle().radius;
    case ValueType::kPolygon:
      return *AsPolygon() == *other.AsPolygon();
    case ValueType::kPolyline:
      return *AsPolyline() == *other.AsPolyline();
    default:
      return false;  // rasters / swiss-cheese compare by identity only
  }
}

size_t Value::StorageBytes(bool deep) const {
  switch (type()) {
    case ValueType::kNull: return 1;
    case ValueType::kInt: return 8;
    case ValueType::kDouble: return 8;
    case ValueType::kString: return 4 + AsString().size();
    case ValueType::kDate: return 4;
    case ValueType::kPoint: return 16;
    case ValueType::kBox: return 32;
    case ValueType::kCircle: return 24;
    case ValueType::kPolygon:
      return deep ? AsPolygon()->StorageBytes() : 16;
    case ValueType::kPolyline:
      return deep ? AsPolyline()->StorageBytes() : 16;
    case ValueType::kSwissCheese:
      return deep ? AsSwissCheese()->outer().StorageBytes() : 16;
    case ValueType::kRaster:
      // The handle (mapping table) is what lives in the tuple; the tiles
      // never do.
      return AsRaster()->handle.StorageBytes();
  }
  return 0;
}

void Value::Serialize(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->PutI64(AsInt());
      break;
    case ValueType::kDouble:
      w->PutDouble(AsDouble());
      break;
    case ValueType::kString:
      w->PutString(AsString());
      break;
    case ValueType::kDate:
      w->PutI32(AsDate().days_since_epoch());
      break;
    case ValueType::kPoint:
      w->PutDouble(AsPoint().x);
      w->PutDouble(AsPoint().y);
      break;
    case ValueType::kBox: {
      const geom::Box& b = AsBox();
      w->PutDouble(b.xmin);
      w->PutDouble(b.ymin);
      w->PutDouble(b.xmax);
      w->PutDouble(b.ymax);
      break;
    }
    case ValueType::kCircle:
      w->PutDouble(AsCircle().center.x);
      w->PutDouble(AsCircle().center.y);
      w->PutDouble(AsCircle().radius);
      break;
    case ValueType::kPolygon:
      AsPolygon()->Serialize(w);
      break;
    case ValueType::kPolyline:
      AsPolyline()->Serialize(w);
      break;
    case ValueType::kSwissCheese:
      AsSwissCheese()->Serialize(w);
      break;
    case ValueType::kRaster:
      AsRaster()->Serialize(w);
      break;
  }
}

Value Value::Deserialize(ByteReader* r) {
  ValueType t = static_cast<ValueType>(r->GetU8());
  switch (t) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt:
      return Value(r->GetI64());
    case ValueType::kDouble:
      return Value(r->GetDouble());
    case ValueType::kString:
      return Value(r->GetString());
    case ValueType::kDate:
      return Value(Date(r->GetI32()));
    case ValueType::kPoint: {
      double x = r->GetDouble();
      double y = r->GetDouble();
      return Value(geom::Point{x, y});
    }
    case ValueType::kBox: {
      double x0 = r->GetDouble();
      double y0 = r->GetDouble();
      double x1 = r->GetDouble();
      double y1 = r->GetDouble();
      return Value(geom::Box(x0, y0, x1, y1));
    }
    case ValueType::kCircle: {
      double x = r->GetDouble();
      double y = r->GetDouble();
      double rad = r->GetDouble();
      return Value(geom::Circle(geom::Point{x, y}, rad));
    }
    case ValueType::kPolygon:
      return Value(geom::Polygon::Deserialize(r));
    case ValueType::kPolyline:
      return Value(geom::Polyline::Deserialize(r));
    case ValueType::kSwissCheese:
      return Value(geom::SwissCheesePolygon::Deserialize(r));
    case ValueType::kRaster:
      return Value(array::Raster::Deserialize(r));
  }
  PARADISE_CHECK_MSG(false, "corrupt value tag");
  return Value();
}

std::string Value::ToString() const {
  char buf[64];
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(AsInt()));
      return buf;
    case ValueType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    case ValueType::kString: return AsString();
    case ValueType::kDate: return AsDate().ToString();
    case ValueType::kPoint: return AsPoint().ToString();
    case ValueType::kBox: return AsBox().ToString();
    case ValueType::kCircle: return AsCircle().ToString();
    case ValueType::kPolygon:
      std::snprintf(buf, sizeof(buf), "POLYGON[%zu pts]",
                    AsPolygon()->num_points());
      return buf;
    case ValueType::kPolyline:
      std::snprintf(buf, sizeof(buf), "POLYLINE[%zu pts]",
                    AsPolyline()->num_points());
      return buf;
    case ValueType::kSwissCheese:
      std::snprintf(buf, sizeof(buf), "SWISSCHEESE[%zu holes]",
                    AsSwissCheese()->holes().size());
      return buf;
    case ValueType::kRaster:
      std::snprintf(buf, sizeof(buf), "RASTER[%ux%u]", AsRaster()->height(),
                    AsRaster()->width());
      return buf;
  }
  return "?";
}

}  // namespace paradise::exec
