#ifndef PARADISE_EXEC_EXPR_H_
#define PARADISE_EXEC_EXPR_H_

#include <memory>
#include <vector>

#include "exec/exec_context.h"
#include "exec/tuple.h"

namespace paradise::exec {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Expression tree evaluated per tuple. Spatial and raster operations
/// charge CPU (and, via the tile source, I/O and network) to the context,
/// so predicate cost shows up in modeled query time exactly where the
/// paper says it does (e.g. Query 10's clip-in-where-clause).
class Expr {
 public:
  virtual ~Expr() = default;
  virtual StatusOr<Value> Eval(const Tuple& tuple,
                               const ExecContext& ctx) const = 0;
};

/// True/false convenience wrapper for predicates.
StatusOr<bool> EvalPredicate(const ExprPtr& expr, const Tuple& tuple,
                             const ExecContext& ctx);

// ---- Factories ----

ExprPtr Col(size_t index);
ExprPtr Lit(Value value);
ExprPtr Cmp(CompareOp op, ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);

/// Exact spatial intersection of two spatial values (any mix of point,
/// box, circle, polygon, polyline) — the `overlaps` operator.
ExprPtr Overlaps(ExprPtr a, ExprPtr b);

/// shape within reach of a circle: min-distance(shape, center) <= radius.
ExprPtr WithinCircle(ExprPtr shape, geom::Circle circle);

/// polygon/polyline area / length / distance helpers.
ExprPtr AreaOf(ExprPtr shape);
ExprPtr DistanceBetween(ExprPtr a, ExprPtr b);

/// Box of side `length` centered on a point value (Query 8's makeBox).
ExprPtr MakeBoxAround(ExprPtr point, double length);

/// raster.clip(polygon): creates a new (shared-by-reference) raster
/// attribute; tiles are read through the context (pulling if remote) and
/// the clipped result is written to the context's temporary store.
ExprPtr RasterClip(ExprPtr raster, PolygonPtr polygon);

/// raster.average() over valid pixels.
ExprPtr RasterAverageOf(ExprPtr raster);

/// raster.lower_res(f).
ExprPtr RasterLowerResOf(ExprPtr raster, uint32_t factor);

// ---- Shared helpers (used by spatial join exact tests too) ----

/// Segment count of a spatial value — the unit the cost model charges
/// spatial predicates by (kPerSegmentTest / kPerPointDistance per segment).
size_t SpatialSegmentCount(const Value& v);

/// Exact intersection test between two spatial values, charging CPU to
/// `ctx` proportional to the segment work.
StatusOr<bool> SpatialIntersects(const Value& a, const Value& b,
                                 const ExecContext& ctx);

/// The exact-geometry dispatch of SpatialIntersects with no up-front
/// charge and no MBR prune. Precondition: the caller has already charged
/// `kPerSegmentTest * (SpatialSegmentCount(a) + SpatialSegmentCount(b))`
/// and knows the MBRs intersect (a join sweep's candidates, say). Nested
/// normalization (box/circle argument swaps) recurses through the charging
/// SpatialIntersects, exactly as the one-call path always has.
StatusOr<bool> SpatialIntersectsExact(const Value& a, const Value& b,
                                      const ExecContext& ctx);

/// Min distance between a point value and a spatial value.
StatusOr<double> SpatialDistance(const Value& point, const Value& shape,
                                 const ExecContext& ctx);

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_EXPR_H_
