#ifndef PARADISE_EXEC_JOIN_KERNEL_H_
#define PARADISE_EXEC_JOIN_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "exec/exec_context.h"
#include "exec/tuple.h"
#include "geom/box.h"

namespace paradise::exec::join_kernel {

/// In-memory MBR join kernel (Tsitsigkos et al., "Parallel In-Memory
/// Evaluation of Spatial Joins"): struct-of-arrays MBR buffers, a
/// branch-light forward sweep that the compiler can vectorize, and batched
/// exact-geometry tests. The kernel is pure data-plane — it never touches
/// `Tuple`/`Value` or the cost model during the sweep; candidate pairs are
/// handed to a flush callback in deterministic order, and the exact tests
/// (with their CPU charges) run once per surviving pair in a second pass.

/// Column-major MBR storage for one join side: four contiguous coordinate
/// arrays plus nothing else, so a sweep touches 32 sequential bytes per
/// item instead of a 40-byte Item record. Coordinates stay `double` — the
/// candidate set and the reference-point duplicate-elimination decisions
/// must match the Box-based path bit-for-bit, so no narrowing to float.
struct MbrColumns {
  std::vector<double> xlo, xhi, ylo, yhi;

  size_t size() const { return xlo.size(); }

  void Resize(size_t n) {
    xlo.resize(n);
    xhi.resize(n);
    ylo.resize(n);
    yhi.resize(n);
  }

  void Set(size_t i, const geom::Box& b) {
    xlo[i] = b.xmin;
    xhi[i] = b.xmax;
    ylo[i] = b.ymin;
    yhi[i] = b.ymax;
  }

  geom::Box BoxAt(size_t i) const {
    return geom::Box(xlo[i], ylo[i], xhi[i], yhi[i]);
  }
};

/// Row ordinals of `cols` argsorted by (xlo, ordinal) — the global sweep
/// order of one side. Runs an LSD radix sort on the order-preserving bit
/// image of the xlo doubles (sign-magnitude flipped to two's-complement
/// order; -0.0 canonicalized to +0.0 so the tie falls to the ordinal, as
/// a `double` comparison sort would tie it); byte positions whose value
/// is constant across the side are skipped. Radix passes are stable and
/// the input order is by ordinal, so equal keys come out ordinal-ordered.
/// Equivalent to std::sort over (xlo, ordinal) pairs, minus the branch
/// mispredicts a comparison sort pays on random coordinates.
std::vector<uint32_t> ArgsortByXlo(const MbrColumns& cols);

/// One sorted sweep input: SoA coordinates in (xlo, ordinal) order plus the
/// ordinal (source row) each position came from. The xlo array carries a
/// trailing +inf sentinel so the inner scan needs no bounds check.
class SweepSide {
 public:
  /// Gathers `rows[0..n)` out of `cols` and sorts by (xlo, ordinal).
  /// The ordinal tie-break makes the sweep's emission order a pure
  /// function of the data — equal xmin values are ordered by source row,
  /// not by whatever std::sort did with them (std::sort is unstable).
  void GatherSorted(const MbrColumns& cols, const uint32_t* rows, size_t n);

  /// GatherSorted minus the sort: `rows` is already in (xlo, ordinal)
  /// order (e.g. a stable counting sort over a globally argsorted side),
  /// so the gather is a straight copy.
  void GatherPresorted(const MbrColumns& cols, const uint32_t* rows,
                       size_t n);

  size_t size() const { return ord_.size(); }
  /// xlo() has size()+1 entries; xlo()[size()] == +inf.
  const double* xlo() const { return xlo_.data(); }
  const double* xhi() const { return xhi_.data(); }
  const double* ylo() const { return ylo_.data(); }
  const double* yhi() const { return yhi_.data(); }
  uint32_t ordinal(size_t pos) const { return ord_[pos]; }

 private:
  std::vector<double> xlo_, xhi_, ylo_, yhi_;
  std::vector<uint32_t> ord_;
  std::vector<std::pair<double, uint32_t>> sort_scratch_;
};

/// A candidate pair, as *positions* into the two sorted sweep sides (the
/// flush callback maps positions back to ordinals / coordinates).
struct Candidate {
  uint32_t left_pos;
  uint32_t right_pos;
};

/// Bounded candidate buffer between the sweep and the exact-test pass.
/// Push is branch-light: it stores unconditionally and bumps the count by
/// `keep`, so the sweep's rarely-taken y-overlap hit costs no branch
/// mispredict. Flushes fire whenever the buffer fills and once more at the
/// caller's final Flush() — the flush boundaries are a pure function of
/// the candidate sequence, so charges replayed inside the callback land in
/// the same order at any thread count.
class CandidateBatch {
 public:
  using FlushFn = std::function<void(const Candidate*, size_t)>;

  CandidateBatch(size_t capacity, FlushFn flush)
      : cap_(capacity == 0 ? 1 : capacity), flush_(std::move(flush)) {
    buf_.resize(cap_);
  }

  void Push(uint32_t left_pos, uint32_t right_pos, bool keep) {
    buf_[n_] = Candidate{left_pos, right_pos};
    n_ += keep;
    if (n_ == cap_) Flush();
  }

  void Flush() {
    if (n_ == 0) return;
    flush_(buf_.data(), n_);
    n_ = 0;
  }

  size_t capacity() const { return cap_; }

 private:
  size_t cap_;
  size_t n_ = 0;
  std::vector<Candidate> buf_;
  FlushFn flush_;
};

/// Default batch size: 4096 pairs = 32 KiB of Candidate — fits L1/L2
/// comfortably while amortizing the flush callback to nothing.
inline constexpr size_t kCandidateBatchSize = 4096;

/// Forward plane sweep over two sorted sides. Emits every pair whose MBRs
/// intersect into `batch` (via Push) and returns the number of x-encounter
/// pair compares performed — exactly the count the AoS sweep charged
/// kCompare for, so the caller can charge `compares * kCompare` in one op.
///
/// The inner scan is y-only flat-array compares: the sweep order already
/// guarantees x-overlap for every pair the scan visits, and the +inf
/// sentinel removes the bounds check, so the loop is a vectorizable
/// compare-and-compress over contiguous doubles. Empty MBRs (+inf lo,
/// -inf hi) fall out naturally: they terminate or never enter scans and
/// fail every y test.
int64_t SweepForCandidates(const SweepSide& left, const SweepSide& right,
                           CandidateBatch* batch);

/// AoS variant kept for ablation (PbsmOptions::SweepKernel::kAos): the
/// pre-kernel Item layout and Box::Intersects per encounter, but the same
/// candidate-batch structure, so its results and charges are bit-identical
/// to the SoA path — only the memory layout differs.
struct AosItem {
  geom::Box box;
  uint32_t ordinal;
};

/// Sorts `items` by (box.xmin, ordinal) — the AoS mirror of GatherSorted.
void SortAosByXmin(std::vector<AosItem>* items);

/// AoS mirror of SweepForCandidates over pre-sorted item vectors.
int64_t SweepForCandidatesAos(const std::vector<AosItem>& left,
                              const std::vector<AosItem>& right,
                              CandidateBatch* batch);

/// A surviving candidate pair, as source-row ordinals.
struct OrdinalPair {
  uint32_t left_row;
  uint32_t right_row;
};

/// Batched exact-geometry pass: for each pair, charges the per-segment
/// test CPU and runs the exact `overlaps` dispatch (the pair's MBRs are
/// already known to intersect — the sweep established that), then
/// materializes hits as left⧺right tuples appended to `out`. Charge
/// sequence and output order are exactly the per-pair interleaved path's.
Status ExactJoinBatch(const TupleVec& left, size_t left_col,
                      const TupleVec& right, size_t right_col,
                      const OrdinalPair* pairs, size_t count,
                      const ExecContext& ctx, TupleVec* out);

}  // namespace paradise::exec::join_kernel

#endif  // PARADISE_EXEC_JOIN_KERNEL_H_
