#ifndef PARADISE_EXEC_SPATIAL_JOIN_H_
#define PARADISE_EXEC_SPATIAL_JOIN_H_

#include <vector>

#include "exec/exec_context.h"
#include "exec/operators.h"
#include "exec/tuple.h"
#include "index/r_star_tree.h"

namespace paradise::exec {

/// Non-uniform PBSM grid produced by the optimizer's partition tuner
/// (opt::PartitionTuner): monotone cell boundaries per axis plus an
/// explicit cell→partition assignment. Defined here (not in opt/) so the
/// executor can consume tuned plans without depending on the optimizer.
struct AdaptiveCellGrid {
  /// Cell boundaries, strictly increasing; cell i spans
  /// [x_edges[i], x_edges[i+1]). Sizes are cells+1.
  std::vector<double> x_edges;
  std::vector<double> y_edges;
  /// Row-major cell→partition map, size (x_edges-1) * (y_edges-1);
  /// entries in [0, num_partitions).
  std::vector<uint32_t> cell_part;

  size_t cells_x() const { return x_edges.empty() ? 0 : x_edges.size() - 1; }
  size_t cells_y() const { return y_edges.empty() ? 0 : y_edges.size() - 1; }
  bool Valid(size_t num_partitions) const;

  friend bool operator==(const AdaptiveCellGrid&,
                         const AdaptiveCellGrid&) = default;
};

struct PbsmOptions {
  /// How grid cells map to join partitions.
  enum class CellMap {
    /// `cell % P` on the row-major cell index. Simple, but whenever P
    /// divides the cell row width the modulus collapses to `cx % P` and
    /// whole grid *columns* land in one partition — a clustered input
    /// then piles into few partitions (the skew that two-layer
    /// space-oriented partitioning warns about).
    kModulo,
    /// Block-interleaved: cells are tiled into small blocks, each block's
    /// coordinates are mixed through a 64-bit finalizer, and the cells
    /// inside a block are assigned round-robin starting at the block's
    /// hash. Adjacent cells always hit distinct partitions and distinct
    /// blocks are decorrelated, so hot regions spread over all P.
    kBlockHash,
    /// Tuned non-uniform grid: cell boundaries and the cell→partition map
    /// come from `PbsmOptions::adaptive` (built by opt::PartitionTuner
    /// from sampled density histograms). Requires `adaptive` to be set
    /// and valid; `cells_per_axis`/auto-sizing are ignored.
    kAdaptive,
  };

  /// Which per-partition sweep kernel runs the candidate generation.
  enum class SweepKernel {
    /// Struct-of-arrays MBR buffers + branch-light forward sweep
    /// (exec/join_kernel.h). The default: same candidates, charges, and
    /// output order as kAos, several times faster on the wall clock.
    kSoa,
    /// Array-of-structs Item records with Box::Intersects per encounter —
    /// the pre-kernel layout, kept for ablation only.
    kAos,
  };

  /// Join partitions per node. [Pate96] uses many more partitions than
  /// would fit-by-size to smooth skew.
  size_t num_partitions = 32;
  /// Grid resolution; 0 = auto (~16 cells per partition).
  size_t cells_per_axis = 0;
  /// Cell→partition map; kModulo is kept for ablation only.
  CellMap cell_map = CellMap::kBlockHash;
  /// Sweep memory layout; kAos is kept for ablation only.
  SweepKernel sweep_kernel = SweepKernel::kSoa;
  /// Tuned grid consumed when `cell_map == kAdaptive`. Not owned; must
  /// outlive the join call.
  const AdaptiveCellGrid* adaptive = nullptr;
};

/// Partition Based Spatial-Merge join [Pate96]: grid-partition both
/// inputs' MBRs with replication, plane-sweep each partition for candidate
/// pairs, drop duplicates by the reference-point rule, and run the exact
/// geometry test on survivors. This is the local (single-node) algorithm
/// used in phase two of the parallel spatial join (Section 2.7.2).
///
/// When `ctx.pool` has more than one thread, the per-partition sweeps run
/// as pool tasks (partition-to-threads, the winning in-memory strategy of
/// Tsitsigkos et al. 2019). Each task charges a task-local clock and
/// collects its own output; tasks are merged in partition order after the
/// barrier, so the result order and the modeled charges are bit-identical
/// for any thread count. `ctx.pbsm_stats`, when set, receives the
/// partition-shape counters of this join.
StatusOr<TupleVec> PbsmSpatialJoin(const TupleVec& left, size_t left_col,
                                   const TupleVec& right, size_t right_col,
                                   const ExecContext& ctx,
                                   const PbsmOptions& options = {});

/// Two-layer begin class of one (MBR, tile) entry, after Tsitsigkos et
/// al.'s space-oriented partitioning. Values match
/// core::SpatialGrid::TileClass: A = the tile contains the MBR's
/// reference point (its begin tile), B = the MBR spilled in along x only,
/// C = along y only, D = along both.
enum class TileClass : uint8_t { kA = 0, kB = 1, kC = 2, kD = 3 };

struct TwoLayerOptions {
  /// Tile grid resolution. The grid arithmetic is bit-identical to
  /// core::SpatialGrid, so a parallel caller can pass its decluster
  /// grid's geometry and the mini-joins line up with the replica
  /// placement exactly.
  uint32_t tiles_per_axis = 32;
  /// Universe the tile grid covers; empty = union of the inputs' MBRs
  /// (inflated when degenerate), like PbsmSpatialJoin's auto-universe.
  geom::Box universe = geom::Box::Empty();
  /// Optional ownership filter, one byte per tile id (row-major from the
  /// upper-left corner, SpatialGrid numbering): only tiles with a nonzero
  /// byte run their mini-joins. Null = every tile. A parallel join passes
  /// the set of tiles this node owns; with each tile owned by exactly one
  /// node, the per-node unions reproduce the global result exactly once.
  const std::vector<uint8_t>* owned = nullptr;
  /// Sweep-task groups the owned tiles are packed into
  /// (partition-to-threads; the group count never depends on the thread
  /// count).
  size_t num_tasks = 32;
  /// Optional load-aware tile→group packer (opt::PackTileGroups): takes
  /// the combined left+right entry count per owned tile and the group
  /// count, returns a group id in [0, num_groups) per tile. Must be a
  /// pure function of its arguments. Null = contiguous equal-load prefix
  /// packing.
  std::vector<uint32_t> (*group_packer)(const std::vector<int64_t>& loads,
                                        size_t num_groups) = nullptr;
};

/// Two-layer class mini-join plan: both inputs are distributed over the
/// tile grid with per-(entry, tile) begin classes, and each owned tile
/// runs the nine class pairs that can contain a pair's intersection
/// reference point — A×{A,B,C,D}, {B,C,D}×A, B×C, C×B — as separate
/// plane sweeps over the class-contiguous sorted lists. Each overlapping
/// pair is emitted exactly once (at the tile holding the intersection's
/// reference point, which is always an overlapped tile of both MBRs), so
/// the reference-point duplicate-elimination branch of PBSM never runs:
/// `PbsmJoinStats::dedup_tests` and `dedup_dropped` are exactly 0.
/// Same determinism contract as PbsmSpatialJoin: results, charges, and
/// stats are bit-identical for any `ctx.pool` thread count.
StatusOr<TupleVec> TwoLayerSpatialJoin(const TupleVec& left, size_t left_col,
                                       const TupleVec& right, size_t right_col,
                                       const ExecContext& ctx,
                                       const TwoLayerOptions& options = {});

/// Charges index-probe I/O with buffer-pool awareness: node visits pay a
/// cold random page read until the cumulative reads cover the whole index
/// once (after which the ~page-sized nodes are pool-resident and visits
/// cost CPU only). Mirrors how a 32 MB pool treats a sub-MB index under a
/// probe-heavy join.
class IndexProbeCharger {
 public:
  IndexProbeCharger(const ExecContext& ctx, size_t index_nodes)
      : ctx_(ctx), cold_remaining_(static_cast<int64_t>(index_nodes)) {}

  void ChargeVisits(int64_t visited);

 private:
  const ExecContext& ctx_;
  int64_t cold_remaining_;
};

/// Index nested loops spatial join: probe an R*-tree on the inner's shape
/// column with each outer MBR, then exact-test candidates. Used when an
/// R-tree exists on the join attribute (Section 2.4).
///
/// With a multi-thread `ctx.pool` the outer is cut into fixed-size chunks
/// probed in parallel; the chunk size never depends on the thread count,
/// probe CPU is charged to task-local clocks, and the stateful cold-page
/// charging (IndexProbeCharger) is replayed sequentially in chunk order at
/// the merge — so results and modeled time stay bit-identical across
/// thread counts.
StatusOr<TupleVec> IndexSpatialJoin(const TupleVec& outer, size_t outer_col,
                                    const TupleVec& inner, size_t inner_col,
                                    const index::RStarTree& inner_index,
                                    const ExecContext& ctx);

/// One step of the `closest` machinery: finds the inner row closest to
/// `point` by expanding-circle index probes (Section 2.7.3 / Query 12's
/// join-with-aggregate operator). The initial circle has one millionth of
/// `universe_area`; each miss doubles the area; past the universe bound it
/// degenerates to a full scan.
struct ClosestMatch {
  bool found = false;
  size_t row = 0;
  double distance = 0.0;
  int probes = 0;  // circle expansions used
};
StatusOr<ClosestMatch> ExpandingCircleClosest(const geom::Point& point,
                                              const TupleVec& targets,
                                              size_t shape_col,
                                              const index::RStarTree& index,
                                              double universe_area,
                                              const ExecContext& ctx);

/// Builds an R*-tree over the MBRs of `tuples[...][shape_col]`, entry id =
/// row index — the "index built on the fly" of Query 12 step 3.
std::unique_ptr<index::RStarTree> BuildRTreeOnColumn(const TupleVec& tuples,
                                                     size_t shape_col,
                                                     const ExecContext& ctx,
                                                     bool bulk_load = true);

}  // namespace paradise::exec

#endif  // PARADISE_EXEC_SPATIAL_JOIN_H_
