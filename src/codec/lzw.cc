#include "codec/lzw.h"

#include <string>
#include <unordered_map>

namespace paradise::codec {

namespace {

constexpr uint32_t kClearCode = 256;
constexpr uint32_t kEndCode = 257;
constexpr uint32_t kFirstCode = 258;
constexpr uint32_t kCodeBits = 12;
constexpr uint32_t kMaxCodes = 1u << kCodeBits;  // 4096

/// Packs fixed-width codes MSB-first into a byte vector.
class BitPacker {
 public:
  explicit BitPacker(std::vector<uint8_t>* out) : out_(out) {}

  void Put(uint32_t code) {
    acc_ = (acc_ << kCodeBits) | code;
    bits_ += kCodeBits;
    while (bits_ >= 8) {
      bits_ -= 8;
      out_->push_back(static_cast<uint8_t>(acc_ >> bits_));
    }
  }

  void Flush() {
    if (bits_ > 0) {
      out_->push_back(static_cast<uint8_t>(acc_ << (8 - bits_)));
      bits_ = 0;
    }
  }

 private:
  std::vector<uint8_t>* out_;
  uint64_t acc_ = 0;
  uint32_t bits_ = 0;
};

/// Unpacks fixed-width codes written by BitPacker.
class BitUnpacker {
 public:
  BitUnpacker(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool Get(uint32_t* code) {
    while (bits_ < kCodeBits) {
      if (pos_ >= size_) return false;
      acc_ = (acc_ << 8) | data_[pos_++];
      bits_ += 8;
    }
    bits_ -= kCodeBits;
    *code = static_cast<uint32_t>((acc_ >> bits_) & (kMaxCodes - 1));
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  uint32_t bits_ = 0;
};

// Dictionary key: (prefix code << 8) | next byte.
inline uint32_t DictKey(uint32_t prefix, uint8_t next) {
  return (prefix << 8) | next;
}

}  // namespace

std::vector<uint8_t> LzwCompress(const uint8_t* data, size_t size) {
  std::vector<uint8_t> out;
  out.reserve(size / 2 + 16);
  BitPacker packer(&out);
  packer.Put(kClearCode);

  std::unordered_map<uint32_t, uint32_t> dict;
  dict.reserve(kMaxCodes * 2);
  uint32_t next_code = kFirstCode;

  if (size == 0) {
    packer.Put(kEndCode);
    packer.Flush();
    return out;
  }

  uint32_t cur = data[0];
  for (size_t i = 1; i < size; ++i) {
    uint8_t c = data[i];
    auto it = dict.find(DictKey(cur, c));
    if (it != dict.end()) {
      cur = it->second;
      continue;
    }
    packer.Put(cur);
    if (next_code < kMaxCodes) {
      dict.emplace(DictKey(cur, c), next_code++);
    } else {
      packer.Put(kClearCode);
      dict.clear();
      next_code = kFirstCode;
    }
    cur = c;
  }
  packer.Put(cur);
  packer.Put(kEndCode);
  packer.Flush();
  return out;
}

StatusOr<std::vector<uint8_t>> LzwDecompress(const uint8_t* data,
                                             size_t size) {
  std::vector<uint8_t> out;
  BitUnpacker unpacker(data, size);

  // Decoder dictionary: code -> (prefix code, first byte, last byte, length).
  struct Entry {
    uint32_t prefix;
    uint8_t first;
    uint8_t last;
  };
  std::vector<Entry> dict(kMaxCodes);
  uint32_t next_code = kFirstCode;

  auto emit = [&](uint32_t code) -> uint8_t {
    // Expands `code` into `out`; returns its first byte.
    size_t start = out.size();
    uint32_t c = code;
    while (c >= kFirstCode) {
      out.push_back(dict[c].last);
      c = dict[c].prefix;
    }
    out.push_back(static_cast<uint8_t>(c));
    // The chain was emitted in reverse; flip it in place.
    for (size_t i = start, j = out.size() - 1; i < j; ++i, --j) {
      std::swap(out[i], out[j]);
    }
    return out[start];
  };

  uint32_t prev = kClearCode;
  uint32_t code;
  while (unpacker.Get(&code)) {
    if (code == kEndCode) return out;
    if (code == kClearCode) {
      next_code = kFirstCode;
      prev = kClearCode;
      continue;
    }
    if (code >= next_code && !(code == next_code && prev != kClearCode)) {
      return Status::Corruption("LZW: code beyond dictionary");
    }
    if (prev == kClearCode) {
      if (code >= 256) return Status::Corruption("LZW: first code not literal");
      out.push_back(static_cast<uint8_t>(code));
      prev = code;
      continue;
    }
    uint8_t first;
    if (code == next_code) {
      // The KwKwK special case: the entry being defined is used immediately.
      uint8_t prev_first =
          prev >= kFirstCode ? dict[prev].first : static_cast<uint8_t>(prev);
      size_t start = out.size();
      emit(prev);
      out.push_back(prev_first);
      first = out[start];
    } else {
      first = emit(code);
    }
    if (next_code < kMaxCodes) {
      uint8_t prev_first =
          prev >= kFirstCode ? dict[prev].first : static_cast<uint8_t>(prev);
      dict[next_code] = Entry{prev, prev_first, first};
      ++next_code;
    }
    prev = code;
  }
  return Status::Corruption("LZW: missing END code");
}

}  // namespace paradise::codec
