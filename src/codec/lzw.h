#ifndef PARADISE_CODEC_LZW_H_
#define PARADISE_CODEC_LZW_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace paradise::codec {

/// Lossless LZW compression [Wel84], as Paradise applies to array tiles
/// before they are written to disk (Section 2.5.1).
///
/// Format: a stream of 12-bit codes, MSB-first bit packing. Codes 0-255 are
/// literals, 256 is CLEAR (dictionary reset), 257 is END, 258+ are dictionary
/// entries. The encoder emits CLEAR whenever the dictionary fills, so inputs
/// of any size compress with bounded memory.
std::vector<uint8_t> LzwCompress(const uint8_t* data, size_t size);

inline std::vector<uint8_t> LzwCompress(const std::vector<uint8_t>& in) {
  return LzwCompress(in.data(), in.size());
}

/// Inverse of LzwCompress. Returns kCorruption on malformed input.
StatusOr<std::vector<uint8_t>> LzwDecompress(const uint8_t* data, size_t size);

inline StatusOr<std::vector<uint8_t>> LzwDecompress(
    const std::vector<uint8_t>& in) {
  return LzwDecompress(in.data(), in.size());
}

}  // namespace paradise::codec

#endif  // PARADISE_CODEC_LZW_H_
