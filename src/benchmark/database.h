#ifndef PARADISE_BENCHMARK_DATABASE_H_
#define PARADISE_BENCHMARK_DATABASE_H_

#include <memory>

#include "core/cluster.h"
#include "core/parallel_ops.h"
#include "core/table.h"
#include "datagen/datagen.h"
#include "geom/polygon.h"

namespace paradise::benchmark {

/// Query constants (Section 3.1.2). The fixed POLYGON is a rectangular
/// region covering ~2% of each raster image, "roughly corresponding to
/// the continental United States".
struct QueryConstants {
  exec::PolygonPtr clip_polygon;       // the "constant POLYGON"
  geom::Point point;                   // the fixed POINT
  double radius = 12.0;                // Query 7's RADIUS (degrees)
  double max_area = 0.4;               // Query 7's area CONSTANT
  double box_length = 1.5;             // Query 8's LENGTH
  double average_threshold = 1300.0;   // Query 10's CONSTANT
  Date q3_date;                        // "1988-04-01"-equivalent date
  Date q14_lo, q14_hi;                 // Query 14's date range
  int64_t channel = 5;
};

struct LoadOptions {
  /// Spread each raster's tiles across all nodes (the Section 2.6 /
  /// Table 3.5 experiment). Default: a raster's tiles stay on one node.
  bool decluster_rasters = false;
  /// Tile size for raster chunking.
  size_t tile_bytes = 8 * 1024;
  uint32_t tiles_per_axis = core::SpatialGrid::kDefaultTilesPerAxis;
  /// Decluster the vector tables with two-layer begin classes instead of
  /// replicate-and-dedup (same tile grid; joins skip the reference-point
  /// dedup branch).
  bool two_layer_vectors = false;
};

/// The loaded benchmark database: the five tables of Section 3.1.1,
/// declustered across the cluster (Query 1 is this load).
class BenchmarkDatabase {
 public:
  /// Loads `ds` into `cluster`: vector tables spatially declustered on
  /// the world grid (places by location, roads/drainage/landCover by
  /// shape), rasters round-robin with their tiles on the owning node.
  static StatusOr<std::unique_ptr<BenchmarkDatabase>> Load(
      core::Cluster* cluster, const datagen::GlobalDataSet& ds,
      const LoadOptions& options = {});

  /// Unregisters the tables from the cluster's TopologyManager.
  ~BenchmarkDatabase();

  core::Cluster* cluster() { return cluster_; }
  core::ParallelTable& places() { return *places_; }
  core::ParallelTable& roads() { return *roads_; }
  core::ParallelTable& drainage() { return *drainage_; }
  core::ParallelTable& land_cover() { return *land_cover_; }
  core::ParallelTable& raster() { return *raster_; }

  const geom::Box& universe() const { return universe_; }
  const QueryConstants& constants() const { return constants_; }

  /// Dataset report for Table 3.1/3.3: per-table tuple counts and bytes.
  struct TableStats {
    std::string name;
    int64_t tuples = 0;
    int64_t stored_copies = 0;
    double bytes = 0.0;
  };
  std::vector<TableStats> Stats() const;

 private:
  BenchmarkDatabase() = default;

  core::Cluster* cluster_ = nullptr;
  geom::Box universe_;
  QueryConstants constants_;
  std::unique_ptr<core::ParallelTable> places_;
  std::unique_ptr<core::ParallelTable> roads_;
  std::unique_ptr<core::ParallelTable> drainage_;
  std::unique_ptr<core::ParallelTable> land_cover_;
  std::unique_ptr<core::ParallelTable> raster_;
};

}  // namespace paradise::benchmark

#endif  // PARADISE_BENCHMARK_DATABASE_H_
