#include "benchmark/workload.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <thread>

#include "common/rng.h"

namespace paradise::benchmark {

namespace {

/// Cache key for queries whose result is a pure function of the database
/// state (point/region selections); "" = not cacheable (scans whose cost
/// is the point, and queries that mutate tables).
std::string CacheKeyForQuery(int query) {
  switch (query) {
    case 5:
      return "q5:phoenix";
    case 7:
      return "q7:circle-area";
    default:
      return "";
  }
}

/// Base tables the cacheable queries read — mutating any of them must
/// invalidate the cached entry.
std::vector<std::string> DepTablesForQuery(int query) {
  switch (query) {
    case 5:
      return {"populatedPlaces"};
    case 7:
      return {"landCover"};
    default:
      return {};
  }
}

void HashMix(uint64_t* h, uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= 0x100000001b3ULL;
  }
}

}  // namespace

double WorkloadReport::LatencyPercentile(double p) const {
  if (samples.empty()) return 0.0;
  std::vector<double> lat;
  lat.reserve(samples.size());
  for (const Sample& s : samples) lat.push_back(s.latency_seconds());
  std::sort(lat.begin(), lat.end());
  double rank = p * static_cast<double>(lat.size());
  size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, lat.size() - 1);
  return lat[idx];
}

uint64_t WorkloadReport::Digest() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Sample& s : samples) {
    HashMix(&h, static_cast<uint64_t>(s.stream));
    HashMix(&h, static_cast<uint64_t>(s.index));
    HashMix(&h, static_cast<uint64_t>(s.query));
    HashMix(&h, std::bit_cast<uint64_t>(s.submit_seconds));
    HashMix(&h, std::bit_cast<uint64_t>(s.admit_seconds));
    HashMix(&h, std::bit_cast<uint64_t>(s.end_seconds));
    HashMix(&h, s.cache_hit ? 1u : 0u);
    HashMix(&h, static_cast<uint64_t>(s.rows));
  }
  HashMix(&h, static_cast<uint64_t>(cache_hits));
  HashMix(&h, static_cast<uint64_t>(cache_misses));
  HashMix(&h, static_cast<uint64_t>(cache_invalidations));
  HashMix(&h, static_cast<uint64_t>(scan_attaches));
  HashMix(&h, static_cast<uint64_t>(readahead_batches));
  HashMix(&h, static_cast<uint64_t>(readahead_pages));
  HashMix(&h, static_cast<uint64_t>(scan_shared_windows));
  HashMix(&h, static_cast<uint64_t>(scan_shared_pages));
  HashMix(&h, static_cast<uint64_t>(pool_hits));
  HashMix(&h, static_cast<uint64_t>(pool_misses));
  return h;
}

StatusOr<WorkloadReport> RunWorkload(BenchmarkDatabase* db,
                                     const WorkloadOptions& options) {
  if (options.num_streams <= 0 || options.mix.empty()) {
    return Status::InvalidArgument("workload needs streams and a query mix");
  }
  core::Cluster* cluster = db->cluster();
  // Cold start once for the whole workload; after this, pools stay warm
  // across queries (the multi-tenant difference from single-query mode).
  cluster->ResetForQuery();
  storage::BufferPool::Stats baseline;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    baseline.Add(cluster->node(n).pool()->stats());
  }

  core::WorkloadSession::Options sopts = options.session;
  sopts.num_streams = options.num_streams;
  core::WorkloadSession session(cluster, sopts);
  cluster->set_workload_session(&session);

  std::vector<std::vector<WorkloadReport::Sample>> samples(
      static_cast<size_t>(options.num_streams));
  std::vector<Status> errors(static_cast<size_t>(options.num_streams),
                             Status::OK());

  auto stream_main = [&](int s) {
    session.BindStream(s);
    Rng rng(options.seed ^
            (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(s + 1)));
    auto think = [&] {
      return options.mean_think_seconds * rng.NextDouble(0.5, 1.5);
    };
    double now = think();
    for (int i = 0; i < options.queries_per_stream; ++i) {
      const int q = options.mix[rng.NextUint(options.mix.size())];
      const std::string key = CacheKeyForQuery(q);
      core::WorkloadSession::Ticket* ticket = session.AwaitAdmission(now);
      double latency = 0.0;
      bool hit = false;
      int64_t rows = 0;
      if (!key.empty()) {
        exec::TupleVec cached;
        double serve = 0.0;
        if (session.LookupCachedResult(key, &cached, &serve)) {
          hit = true;
          latency = serve;
          rows = static_cast<int64_t>(cached.size());
        }
      }
      if (!hit) {
        Status failed = Status::OK();
        try {
          StatusOr<QueryResult> r = RunQueryByNumber(db, q);
          if (r.ok()) {
            latency = r->seconds;
            rows = static_cast<int64_t>(r->rows.size());
            if (!key.empty()) {
              session.PublishResult(key, DepTablesForQuery(q),
                                    std::move(r->rows),
                                    ticket->admit_seconds + latency);
            }
          } else {
            failed = r.status();
          }
        } catch (const std::exception& e) {
          failed = Status::Internal(std::string("query threw: ") + e.what());
        }
        if (!failed.ok()) {
          errors[static_cast<size_t>(s)] = failed;
          session.FinishQuery(0.0);
          break;
        }
      }
      session.FinishQuery(latency);
      WorkloadReport::Sample sample;
      sample.stream = s;
      sample.index = i;
      sample.query = q;
      sample.submit_seconds = now;
      sample.admit_seconds = ticket->admit_seconds;
      sample.end_seconds = ticket->admit_seconds + latency;
      sample.cache_hit = hit;
      sample.rows = rows;
      samples[static_cast<size_t>(s)].push_back(sample);
      now = sample.end_seconds + think();
    }
    session.EndStream();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.num_streams));
  for (int s = 0; s < options.num_streams; ++s) {
    threads.emplace_back(stream_main, s);
  }
  for (std::thread& t : threads) t.join();
  cluster->set_workload_session(nullptr);

  for (const Status& st : errors) {
    PARADISE_RETURN_IF_ERROR(Status(st));
  }

  WorkloadReport report;
  for (const auto& per_stream : samples) {
    for (const WorkloadReport::Sample& s : per_stream) {
      report.samples.push_back(s);
      report.makespan_seconds = std::max(report.makespan_seconds,
                                         s.end_seconds);
    }
  }
  report.cache_hits = session.cache_hits();
  report.cache_misses = session.cache_misses();
  report.cache_invalidations = session.cache_invalidations();
  report.scan_attaches = session.scan_attaches();
  storage::BufferPool::Stats total;
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    total.Add(cluster->node(n).pool()->stats());
  }
  report.readahead_batches = total.readahead_batches - baseline.readahead_batches;
  report.readahead_pages = total.readahead_pages - baseline.readahead_pages;
  report.scan_shared_windows =
      total.scan_shared_windows - baseline.scan_shared_windows;
  report.scan_shared_pages =
      total.scan_shared_pages - baseline.scan_shared_pages;
  report.pool_hits = total.hits - baseline.hits;
  report.pool_misses = total.misses - baseline.misses;
  return report;
}

}  // namespace paradise::benchmark
