#ifndef PARADISE_BENCHMARK_QUERIES_H_
#define PARADISE_BENCHMARK_QUERIES_H_

#include <string>

#include "benchmark/database.h"
#include "core/coordinator.h"

namespace paradise::benchmark {

/// Result of one benchmark query: the rows delivered to the client plus
/// the modeled elapsed time (what Tables 3.2/3.4/3.5 report).
struct QueryResult {
  exec::TupleVec rows;
  double seconds = 0.0;
  /// Per-phase breakdown (for diagnosis and the experiment write-up).
  std::vector<core::QueryCoordinator::PhaseReport> phases;
  /// Aggregated PBSM join shape for this query (zero for join-free
  /// queries) — per-query state, reset by every BeginQuery.
  exec::PbsmJoinStats pbsm;
};

/// Queries 2-14 of Section 3.1.2. Each starts with the cold-buffer-pool
/// protocol (BeginQuery) and implements the plan the paper describes.
/// Query 1 (load + index build) is BenchmarkDatabase::Load.
StatusOr<QueryResult> RunQuery2(BenchmarkDatabase* db);   // clip all ch-5 rasters, sort by date
StatusOr<QueryResult> RunQuery3(BenchmarkDatabase* db);   // average of 4 clipped rasters
StatusOr<QueryResult> RunQuery4(BenchmarkDatabase* db);   // clip + lower_res + insert
StatusOr<QueryResult> RunQuery5(BenchmarkDatabase* db);   // name = "Phoenix"
StatusOr<QueryResult> RunQuery6(BenchmarkDatabase* db);   // spatial selection + insert
StatusOr<QueryResult> RunQuery7(BenchmarkDatabase* db);   // circle + area selection
StatusOr<QueryResult> RunQuery8(BenchmarkDatabase* db);   // Louisville spatial join
StatusOr<QueryResult> RunQuery9(BenchmarkDatabase* db);   // oil fields x 1 raster clip
StatusOr<QueryResult> RunQuery10(BenchmarkDatabase* db);  // clip-in-predicate
StatusOr<QueryResult> RunQuery11(BenchmarkDatabase* db);  // closest road per type
StatusOr<QueryResult> RunQuery12(BenchmarkDatabase* db);  // closest drainage per big city
StatusOr<QueryResult> RunQuery13(BenchmarkDatabase* db);  // drainage x roads overlap
StatusOr<QueryResult> RunQuery14(BenchmarkDatabase* db);  // 1988 ch-5 rasters x oil fields

/// Query 3': Query 3 with the clip region covering the whole raster
/// (the declustered-raster experiment of Section 3.5 / Table 3.5).
StatusOr<QueryResult> RunQuery3Prime(BenchmarkDatabase* db);

/// Runs query `number` (2..14) by name.
StatusOr<QueryResult> RunQueryByNumber(BenchmarkDatabase* db, int number);

}  // namespace paradise::benchmark

#endif  // PARADISE_BENCHMARK_QUERIES_H_
