#include "benchmark/database.h"

#include "array/raster.h"
#include "common/logging.h"
#include "core/topology.h"

namespace paradise::benchmark {

using catalog::IndexDef;
using catalog::PartitioningKind;
using catalog::TableDef;
using core::ParallelTable;
using exec::Tuple;
using exec::Value;
using geom::Box;
using geom::Point;
using geom::Polygon;

namespace {

/// The "constant POLYGON": a rectangle over roughly the continental US
/// (~2% of the world raster's area).
Polygon MakeClipPolygon() {
  // 50 x 14.4 degrees: 720 / 64800 sq-deg ~= 1.1%; widen to ~2%.
  return Polygon({Point{-125, 30}, Point{-67, 30}, Point{-67, 50},
                  Point{-125, 50}});
}

}  // namespace

StatusOr<std::unique_ptr<BenchmarkDatabase>> BenchmarkDatabase::Load(
    core::Cluster* cluster, const datagen::GlobalDataSet& ds,
    const LoadOptions& options) {
  auto db = std::unique_ptr<BenchmarkDatabase>(new BenchmarkDatabase());
  db->cluster_ = cluster;
  db->universe_ = ds.universe;

  db->constants_.clip_polygon =
      std::make_shared<const Polygon>(MakeClipPolygon());
  db->constants_.point = Point{-89.4, 43.07};  // Madison, of course
  db->constants_.q3_date = Date::FromYmd(1988, 4, 4);
  db->constants_.q14_lo = Date::FromYmd(1988, 4, 1);
  db->constants_.q14_hi = Date::FromYmd(1988, 12, 31);

  // Nudge q3_date onto an actual raster date (the generator emits 10-day
  // composites from 1986-01-06).
  if (!ds.rasters.empty()) {
    Date best = ds.rasters[0].date;
    for (const datagen::RasterSpec& r : ds.rasters) {
      if (r.date <= db->constants_.q3_date && r.date > best) best = r.date;
    }
    db->constants_.q3_date = best;
  }

  // ---- vector tables: spatially declustered on the world grid ----
  {
    TableDef def;
    def.name = "populatedPlaces";
    def.schema = datagen::PlacesSchema();
    def.partitioning = options.two_layer_vectors
                           ? PartitioningKind::kTwoLayer
                           : PartitioningKind::kSpatial;
    def.partition_column = datagen::col::kPlaceLocation;
    def.universe = ds.universe;
    def.indexes = {IndexDef{"places_name", datagen::col::kPlaceName, false}};
    PARADISE_ASSIGN_OR_RETURN(
        db->places_, ParallelTable::Load(cluster, std::move(def),
                                         ds.populated_places,
                                         options.tiles_per_axis));
  }
  {
    TableDef def;
    def.name = "roads";
    def.schema = datagen::RoadsSchema();
    def.partitioning = options.two_layer_vectors
                           ? PartitioningKind::kTwoLayer
                           : PartitioningKind::kSpatial;
    def.partition_column = datagen::col::kLineShape;
    def.universe = ds.universe;
    def.indexes = {IndexDef{"roads_shape", datagen::col::kLineShape, true}};
    PARADISE_ASSIGN_OR_RETURN(
        db->roads_, ParallelTable::Load(cluster, std::move(def), ds.roads,
                                        options.tiles_per_axis));
  }
  {
    TableDef def;
    def.name = "drainage";
    def.schema = datagen::DrainageSchema();
    def.partitioning = options.two_layer_vectors
                           ? PartitioningKind::kTwoLayer
                           : PartitioningKind::kSpatial;
    def.partition_column = datagen::col::kLineShape;
    def.universe = ds.universe;
    def.indexes = {IndexDef{"drainage_shape", datagen::col::kLineShape, true}};
    PARADISE_ASSIGN_OR_RETURN(
        db->drainage_, ParallelTable::Load(cluster, std::move(def),
                                           ds.drainage,
                                           options.tiles_per_axis));
  }
  {
    TableDef def;
    def.name = "landCover";
    def.schema = datagen::LandCoverSchema();
    def.partitioning = options.two_layer_vectors
                           ? PartitioningKind::kTwoLayer
                           : PartitioningKind::kSpatial;
    def.partition_column = datagen::col::kLcShape;
    def.universe = ds.universe;
    def.indexes = {IndexDef{"landCover_shape", datagen::col::kLcShape, true}};
    PARADISE_ASSIGN_OR_RETURN(
        db->land_cover_, ParallelTable::Load(cluster, std::move(def),
                                             ds.land_cover,
                                             options.tiles_per_axis));
  }

  // ---- raster table: tuples round-robin; tiles stored on the owning
  // node (or declustered across all nodes for the Section 2.6 study) ----
  {
    int num_nodes = cluster->num_nodes();
    std::vector<Tuple> rows;
    std::vector<uint32_t> owners;
    rows.reserve(ds.rasters.size());
    owners.reserve(ds.rasters.size());
    for (size_t i = 0; i < ds.rasters.size(); ++i) {
      const datagen::RasterSpec& spec = ds.rasters[i];
      // Hash-spread owners: the generator emits channels in an inner
      // loop, so plain round-robin would correlate channel with node
      // (putting, say, every channel-5 raster on one node). The paper's
      // rasters are "more or less uniformly distributed".
      uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL;
      int owner = static_cast<int>((h >> 33) % static_cast<uint64_t>(num_nodes));
      owners.push_back(static_cast<uint32_t>(owner));
      array::Raster raster;
      raster.geo = spec.geo;
      const uint8_t* bytes =
          reinterpret_cast<const uint8_t*>(spec.pixels.data());
      if (options.decluster_rasters) {
        // Spread this image's tiles round-robin over all nodes. Tile t of
        // *every* image lands on the same node, so whole-image operations
        // (Query 3') can combine corresponding tiles without moving data.
        PARADISE_ASSIGN_OR_RETURN(
            raster.handle,
            array::StoreArrayWithPlacement(
                bytes, {spec.height, spec.width}, 2,
                [&](uint32_t tile_index, const std::vector<uint32_t>&) {
                  int node = static_cast<int>(tile_index %
                                              static_cast<uint32_t>(num_nodes));
                  return array::TilePlacement{
                      cluster->node(node).lob_store(),
                      cluster->node(node).clock(), node};
                },
                /*compress=*/true, options.tile_bytes,
                static_cast<uint32_t>(owner)));
      } else {
        core::Node& node = cluster->node(owner);
        PARADISE_ASSIGN_OR_RETURN(
            raster.handle,
            array::StoreArray(bytes, {spec.height, spec.width}, 2,
                              node.lob_store(), node.clock(),
                              /*compress=*/true, options.tile_bytes,
                              static_cast<uint32_t>(owner)));
      }
      rows.push_back(Tuple({Value(spec.date), Value(spec.channel),
                            Value(std::move(raster))}));
    }
    TableDef def;
    def.name = "raster";
    def.schema = datagen::RasterSchema();
    def.partitioning = PartitioningKind::kRoundRobin;
    def.indexes = {IndexDef{"raster_date", datagen::col::kRasterDate, false}};
    PARADISE_ASSIGN_OR_RETURN(
        db->raster_,
        ParallelTable::Load(cluster, std::move(def), rows,
                            core::SpatialGrid::kDefaultTilesPerAxis,
                            &owners));
  }
  // Register with the cluster's topology layer: membership changes
  // (join/drain/remove) and online tile migration now maintain these
  // tables' grids, fragments, and epochs.
  core::TopologyManager* topology = cluster->topology();
  topology->RegisterTable(db->places_.get());
  topology->RegisterTable(db->roads_.get());
  topology->RegisterTable(db->drainage_.get());
  topology->RegisterTable(db->land_cover_.get());
  topology->RegisterTable(db->raster_.get());
  return db;
}

BenchmarkDatabase::~BenchmarkDatabase() {
  // The cluster (and its TopologyManager) outlives this database object;
  // drop the registrations so pending migration state cannot dangle.
  if (cluster_ == nullptr) return;
  core::TopologyManager* topology = cluster_->topology();
  for (core::ParallelTable* t :
       {places_.get(), roads_.get(), drainage_.get(), land_cover_.get(),
        raster_.get()}) {
    if (t != nullptr) topology->UnregisterTable(t);
  }
}

std::vector<BenchmarkDatabase::TableStats> BenchmarkDatabase::Stats() const {
  std::vector<TableStats> out;
  auto add = [&](const char* name, const ParallelTable& t, double bytes) {
    TableStats s;
    s.name = name;
    s.tuples = t.num_rows();
    s.stored_copies = t.num_stored();
    s.bytes = bytes;
    out.push_back(s);
  };
  add("raster", *raster_, 0.0);
  add("populatedPlaces", *places_, 0.0);
  add("roads", *roads_, 0.0);
  add("drainage", *drainage_, 0.0);
  add("landCover", *land_cover_, 0.0);
  return out;
}

}  // namespace paradise::benchmark
