#include "benchmark/queries.h"

#include <algorithm>
#include <map>

#include "array/raster.h"
#include "common/logging.h"
#include "datagen/datagen.h"
#include "sim/cost_model.h"

namespace paradise::benchmark {

using core::MakeCoordinatorContext;
using core::MakeNodeContext;
using core::NodeExecContext;
using core::ParallelTable;
using core::PerNode;
using core::QueryCoordinator;
using exec::CompareOp;
using exec::ExprPtr;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;
using geom::Box;
using geom::Point;
using geom::Polygon;

namespace col = datagen::col;

namespace {

QueryResult Finish(QueryCoordinator& coord, TupleVec rows) {
  QueryResult r;
  r.rows = std::move(rows);
  r.seconds = coord.query_seconds();
  r.phases = coord.phases();
  r.pbsm = coord.pbsm_stats();
  // Close the query's accounting now, not at destructor time: any open
  // phase a failed sub-plan left behind is discarded here, before the
  // next query can charge these clocks.
  coord.EndQuery();
  return r;
}

/// Per-node projection phase.
StatusOr<PerNode> ParallelProject(QueryCoordinator* coord,
                                  const PerNode& input,
                                  const std::vector<ExprPtr>& exprs,
                                  const std::string& name) {
  core::Cluster* cluster = coord->cluster();
  PerNode out(cluster->num_nodes());
  PARADISE_RETURN_IF_ERROR(coord->RunPhase(name, [&](int n) -> Status {
    NodeExecContext nc = MakeNodeContext(cluster, n);
    PARADISE_ASSIGN_OR_RETURN(out[n], exec::Project(input[n], exprs, nc.ctx));
    return Status::OK();
  }));
  return out;
}

/// Raster tuples for one exact date (via the date B+-tree), one channel.
StatusOr<PerNode> SelectRasters(QueryCoordinator* coord, BenchmarkDatabase* db,
                                Date lo, Date hi, int64_t channel) {
  PARADISE_ASSIGN_OR_RETURN(
      PerNode per,
      core::ParallelIndexSelectIntRange(coord, db->raster(), col::kRasterDate,
                                        lo.days_since_epoch(),
                                        hi.days_since_epoch()));
  // Channel filter is cheap and local.
  core::Cluster* cluster = coord->cluster();
  PerNode out(cluster->num_nodes());
  PARADISE_RETURN_IF_ERROR(
      coord->RunPhase("channel filter", [&](int n) -> Status {
        NodeExecContext nc = MakeNodeContext(cluster, n);
        ExprPtr pred = exec::Cmp(CompareOp::kEq, exec::Col(col::kRasterChannel),
                                 exec::Lit(Value(channel)));
        PARADISE_ASSIGN_OR_RETURN(out[n], exec::Filter(per[n], pred, nc.ctx));
        return Status::OK();
      }));
  return out;
}

/// Shared implementation of Queries 3 and 3': average the pixel values of
/// the clipped date-selected rasters into one result image. Uses the
/// sequential pull plan for node-resident rasters and the parallel
/// per-node plan when the rasters' tiles are declustered (Section 3.5).
StatusOr<QueryResult> RunAverageQuery(BenchmarkDatabase* db,
                                      const Polygon& clip) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  // All channels of the Q3 date (4 rasters).
  PARADISE_ASSIGN_OR_RETURN(
      PerNode per, core::ParallelIndexSelectIntRange(
                       &coord, db->raster(), col::kRasterDate,
                       k.q3_date.days_since_epoch(),
                       k.q3_date.days_since_epoch()));

  // Collect the (few) selected raster handles.
  std::vector<array::Raster> rasters;
  for (const TupleVec& v : per) {
    for (const Tuple& t : v) {
      rasters.push_back(*t.at(col::kRasterData).AsRaster());
    }
  }
  if (rasters.empty()) return Status::NotFound("no rasters for Q3 date");

  bool declustered = false;
  for (const array::Raster& r : rasters) {
    if (r.handle.declustered()) declustered = true;
  }

  array::Raster::PixelRegion region = rasters[0].RegionForBox(clip.Mbr());
  if (region.empty()) return Status::NotFound("clip misses rasters");
  std::vector<uint32_t> lo = {region.row_lo, region.col_lo};
  std::vector<uint32_t> hi = {region.row_hi, region.col_hi};
  uint32_t rows_px = region.row_hi - region.row_lo;
  uint32_t cols_px = region.col_hi - region.col_lo;

  TupleVec result;
  if (!declustered) {
    // The paper's "clearly sequential" plan: one average operator pulls
    // the needed tiles of every image and folds them.
    PARADISE_RETURN_IF_ERROR(coord.RunSequential("average", [&]() -> Status {
      NodeExecContext cc = MakeCoordinatorContext(db->cluster());
      std::vector<uint64_t> sum(static_cast<size_t>(rows_px) * cols_px, 0);
      std::vector<uint32_t> count(sum.size(), 0);
      for (const array::Raster& r : rasters) {
        PARADISE_ASSIGN_OR_RETURN(
            ByteBuffer bytes,
            array::ReadRegion(r.handle, cc.ctx.SourceFor(r.handle.owner_node),
                              lo, hi));
        const uint16_t* px = reinterpret_cast<const uint16_t*>(bytes.data());
        for (size_t p = 0; p < sum.size(); ++p) {
          if (px[p] == array::Raster::kNoData) continue;
          sum[p] += px[p];
          ++count[p];
        }
        cc.ctx.ChargeCpu(static_cast<double>(sum.size()) *
                         sim::cpu_cost::kPerPixel);
      }
      std::vector<uint16_t> avg(sum.size());
      for (size_t p = 0; p < sum.size(); ++p) {
        avg[p] = count[p] == 0 ? array::Raster::kNoData
                               : static_cast<uint16_t>(sum[p] / count[p]);
      }
      array::Raster out;
      out.geo = rasters[0].geo;  // region geo box is a sub-extent; fine for
                                 // the benchmark's timing purposes
      PARADISE_ASSIGN_OR_RETURN(
          out.handle, array::StoreArray(
                          reinterpret_cast<const uint8_t*>(avg.data()),
                          {rows_px, cols_px}, 2, cc.ctx.temp_store,
                          cc.ctx.clock, true, array::kDefaultTileBytes, 0));
      result.push_back(Tuple({Value(std::move(out))}));
      return Status::OK();
    }));
  } else {
    // Declustered plan: every node averages the region tiles it owns
    // locally; partial tiles are shipped to the coordinator for assembly.
    core::Cluster* cluster = db->cluster();
    // Node closures run concurrently: each fills only its own map slot;
    // the maps merge after the phase barrier.
    std::vector<std::map<uint32_t, std::vector<uint16_t>>> node_tiles(
        cluster->num_nodes());
    std::map<uint32_t, std::vector<uint16_t>> partial_tiles;
    std::vector<uint32_t> region_tiles =
        array::TilesForRegion(rasters[0].handle, lo, hi);
    PARADISE_RETURN_IF_ERROR(
        coord.RunPhase("local tile average", [&](int n) -> Status {
          NodeExecContext nc = MakeNodeContext(cluster, n);
          for (uint32_t t : region_tiles) {
            if (rasters[0].handle.TileOwner(t) != static_cast<uint32_t>(n)) {
              continue;
            }
            std::vector<uint64_t> sum;
            std::vector<uint32_t> count;
            for (const array::Raster& r : rasters) {
              PARADISE_ASSIGN_OR_RETURN(
                  ByteBuffer bytes,
                  nc.ctx.SourceFor(r.handle.TileOwner(t))
                      ->ReadTile(r.handle, t));
              const uint16_t* px =
                  reinterpret_cast<const uint16_t*>(bytes.data());
              size_t n_px = bytes.size() / 2;
              if (sum.empty()) {
                sum.assign(n_px, 0);
                count.assign(n_px, 0);
              }
              for (size_t p = 0; p < n_px; ++p) {
                if (px[p] == array::Raster::kNoData) continue;
                sum[p] += px[p];
                ++count[p];
              }
              nc.ctx.ChargeCpu(static_cast<double>(n_px) *
                               sim::cpu_cost::kPerPixel);
            }
            std::vector<uint16_t> avg(sum.size());
            for (size_t p = 0; p < sum.size(); ++p) {
              avg[p] = count[p] == 0 ? array::Raster::kNoData
                                     : static_cast<uint16_t>(sum[p] / count[p]);
            }
            node_tiles[n][t] = std::move(avg);
          }
          return Status::OK();
        }));
    for (auto& m : node_tiles) {
      partial_tiles.merge(m);
    }
    PARADISE_RETURN_IF_ERROR(coord.RunSequential("assemble", [&]() -> Status {
      int64_t bytes = 0;
      for (const auto& [t, avg] : partial_tiles) {
        int owner = static_cast<int>(rasters[0].handle.TileOwner(t));
        int64_t b = static_cast<int64_t>(avg.size() * 2);
        cluster->node(owner).clock()->ChargeNet((b + 8191) / 8192, b);
        bytes += b;
      }
      cluster->coordinator_clock()->ChargeNet((bytes + 8191) / 8192, bytes);
      cluster->coordinator_clock()->ChargeCpu(
          sim::cpu_cost::kPerByteCopied * static_cast<double>(bytes));
      result.push_back(
          Tuple({Value(static_cast<int64_t>(partial_tiles.size()))}));
      return Status::OK();
    }));
  }
  return Finish(coord, std::move(result));
}

}  // namespace

StatusOr<QueryResult> RunQuery2(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  ExprPtr pred = exec::Cmp(CompareOp::kEq, exec::Col(col::kRasterChannel),
                           exec::Lit(Value(k.channel)));
  std::vector<ExprPtr> proj = {
      exec::Col(col::kRasterDate),
      exec::RasterClip(exec::Col(col::kRasterData), k.clip_polygon)};
  PARADISE_ASSIGN_OR_RETURN(PerNode per,
                            core::ParallelScan(&coord, db->raster(), pred,
                                               proj));
  PARADISE_ASSIGN_OR_RETURN(TupleVec rows, core::Gather(&coord, per));
  PARADISE_RETURN_IF_ERROR(coord.RunSequential("sort", [&]() -> Status {
    NodeExecContext cc = MakeCoordinatorContext(db->cluster());
    exec::SortTuples(&rows, {exec::SortKey{0, true}}, cc.ctx);
    return Status::OK();
  }));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery3(BenchmarkDatabase* db) {
  return RunAverageQuery(db, *db->constants().clip_polygon);
}

StatusOr<QueryResult> RunQuery3Prime(BenchmarkDatabase* db) {
  // Clip region = the entire raster.
  const Box& u = db->universe();
  Polygon whole({Point{u.xmin, u.ymin}, Point{u.xmax, u.ymin},
                 Point{u.xmax, u.ymax}, Point{u.xmin, u.ymax}});
  return RunAverageQuery(db, whole);
}

StatusOr<QueryResult> RunQuery4(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  PARADISE_ASSIGN_OR_RETURN(
      PerNode selected,
      SelectRasters(&coord, db, k.q3_date, k.q3_date, k.channel));
  std::vector<ExprPtr> proj = {
      exec::Col(col::kRasterDate), exec::Col(col::kRasterChannel),
      exec::RasterLowerResOf(
          exec::RasterClip(exec::Col(col::kRasterData), k.clip_polygon), 8)};
  PARADISE_ASSIGN_OR_RETURN(PerNode projected,
                            ParallelProject(&coord, selected, proj, "clip"));
  catalog::TableDef def;
  def.name = "q4_result";
  def.schema = exec::Schema({{"date", ValueType::kDate},
                             {"channel", ValueType::kInt},
                             {"data", ValueType::kRaster}});
  PARADISE_ASSIGN_OR_RETURN(
      std::unique_ptr<ParallelTable> stored,
      core::StoreResult(&coord, projected, std::move(def)));
  TupleVec rows;
  rows.push_back(Tuple({Value(stored->num_rows())}));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery5(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  PARADISE_ASSIGN_OR_RETURN(
      PerNode per, core::ParallelIndexSelectString(
                       &coord, db->places(), col::kPlaceName, "Phoenix"));
  PARADISE_ASSIGN_OR_RETURN(TupleVec rows, core::Gather(&coord, per));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery6(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  ExprPtr exact =
      exec::Overlaps(exec::Col(col::kLcShape), exec::Lit(Value(k.clip_polygon)));
  PARADISE_ASSIGN_OR_RETURN(
      PerNode per, core::ParallelSpatialIndexSelect(
                       &coord, db->land_cover(), k.clip_polygon->Mbr(), exact));
  catalog::TableDef def;
  def.name = "q6_result";
  def.schema = datagen::LandCoverSchema();
  PARADISE_ASSIGN_OR_RETURN(std::unique_ptr<ParallelTable> stored,
                            core::StoreResult(&coord, per, std::move(def)));
  TupleVec rows;
  rows.push_back(Tuple({Value(stored->num_rows())}));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery7(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  geom::Circle circle(k.point, k.radius);
  ExprPtr exact =
      exec::And(exec::WithinCircle(exec::Col(col::kLcShape), circle),
                exec::Cmp(CompareOp::kLt, exec::AreaOf(exec::Col(col::kLcShape)),
                          exec::Lit(Value(k.max_area))));
  PARADISE_ASSIGN_OR_RETURN(
      PerNode per, core::ParallelSpatialIndexSelect(&coord, db->land_cover(),
                                                    circle.Mbr(), exact));
  std::vector<ExprPtr> proj = {exec::AreaOf(exec::Col(col::kLcShape)),
                               exec::Col(col::kLcType)};
  PARADISE_ASSIGN_OR_RETURN(PerNode projected,
                            ParallelProject(&coord, per, proj, "project"));
  PARADISE_ASSIGN_OR_RETURN(TupleVec rows, core::Gather(&coord, projected));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery8(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  PARADISE_ASSIGN_OR_RETURN(
      PerNode louisville, core::ParallelIndexSelectString(
                              &coord, db->places(), col::kPlaceName,
                              "Louisville"));
  PARADISE_ASSIGN_OR_RETURN(PerNode everywhere,
                            core::Broadcast(&coord, louisville));
  // Index nested loops spatial join against each node's landCover R*-tree.
  core::Cluster* cluster = db->cluster();
  PerNode out(cluster->num_nodes());
  PARADISE_RETURN_IF_ERROR(
      coord.RunPhase("index NL spatial join", [&](int n) -> Status {
        NodeExecContext nc = MakeNodeContext(cluster, n);
        const ParallelTable::Fragment& frag = db->land_cover().fragment(n);
        exec::IndexProbeCharger charger(nc.ctx, frag.rtree->num_nodes());
        for (const Tuple& city : everywhere[n]) {
          Box probe =
              Box::MakeBox(city.at(col::kPlaceLocation).AsPoint(), k.box_length);
          nc.ctx.ChargeCpu(sim::cpu_cost::kIndexProbe);
          int64_t visited = 0;
          std::vector<uint64_t> candidates;
          frag.rtree->SearchOverlap(
              probe,
              [&](const Box&, uint64_t row) {
                candidates.push_back(row);
                return true;
              },
              &visited);
          charger.ChargeVisits(visited);
          for (uint64_t row : candidates) {
            if (!db->land_cover().PrimaryFilter(n, row)) continue;  // dedup
            PARADISE_ASSIGN_OR_RETURN(Tuple lc,
                                      db->land_cover().FetchRow(cluster, n, row));
            PARADISE_ASSIGN_OR_RETURN(
                bool hit, exec::SpatialIntersects(lc.at(col::kLcShape),
                                                  Value(probe), nc.ctx));
            if (hit) {
              out[n].push_back(Tuple(
                  {lc.at(col::kLcShape), lc.at(col::kLcType)}));
            }
          }
        }
        return Status::OK();
      }));
  PARADISE_ASSIGN_OR_RETURN(TupleVec rows, core::Gather(&coord, out));
  return Finish(coord, std::move(rows));
}

namespace {

/// Shared by Queries 9 and 14: clip the date-selected channel-5 rasters by
/// every oil-field polygon.
StatusOr<QueryResult> RunOilFieldClip(BenchmarkDatabase* db, Date lo,
                                      Date hi) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  // Oil-field polygons, selected and sent to all the nodes.
  ExprPtr oil_pred =
      exec::Cmp(CompareOp::kEq, exec::Col(col::kLcType),
                exec::Lit(Value(datagen::kOilFieldType)));
  PARADISE_ASSIGN_OR_RETURN(
      PerNode oil, core::ParallelScan(&coord, db->land_cover(), oil_pred, {}));
  PARADISE_ASSIGN_OR_RETURN(PerNode oil_all, core::Broadcast(&coord, oil));

  PARADISE_ASSIGN_OR_RETURN(PerNode rasters,
                            SelectRasters(&coord, db, lo, hi, k.channel));

  core::Cluster* cluster = db->cluster();
  PerNode out(cluster->num_nodes());
  PARADISE_RETURN_IF_ERROR(coord.RunPhase("clip join", [&](int n) -> Status {
    NodeExecContext nc = MakeNodeContext(cluster, n);
    for (const Tuple& rt : rasters[n]) {
      const array::Raster& raster = *rt.at(col::kRasterData).AsRaster();
      for (const Tuple& of : oil_all[n]) {
        const exec::PolygonPtr& poly = of.at(col::kLcShape).AsPolygon();
        auto clipped_or = array::ClipRaster(
            raster, *poly, nc.ctx.SourceFor(raster.handle.owner_node),
            nc.ctx.temp_store, nc.ctx.clock, static_cast<uint32_t>(n));
        if (!clipped_or.ok()) continue;  // polygon misses the raster
        out[n].push_back(Tuple({of.at(col::kLcShape),
                                Value(std::move(clipped_or).value())}));
      }
    }
    return Status::OK();
  }));
  PARADISE_ASSIGN_OR_RETURN(TupleVec rows, core::Gather(&coord, out));
  return Finish(coord, std::move(rows));
}

}  // namespace

StatusOr<QueryResult> RunQuery9(BenchmarkDatabase* db) {
  const QueryConstants& k = db->constants();
  return RunOilFieldClip(db, k.q3_date, k.q3_date);
}

StatusOr<QueryResult> RunQuery10(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  // clip() evaluated during predicate evaluation (a large attribute
  // created in the where clause), then again in the projection.
  ExprPtr pred = exec::Cmp(
      CompareOp::kGt,
      exec::RasterAverageOf(
          exec::RasterClip(exec::Col(col::kRasterData), k.clip_polygon)),
      exec::Lit(Value(k.average_threshold)));
  std::vector<ExprPtr> proj = {
      exec::Col(col::kRasterDate), exec::Col(col::kRasterChannel),
      exec::RasterClip(exec::Col(col::kRasterData), k.clip_polygon)};
  PARADISE_ASSIGN_OR_RETURN(
      PerNode per, core::ParallelScan(&coord, db->raster(), pred, proj));
  PARADISE_ASSIGN_OR_RETURN(TupleVec rows, core::Gather(&coord, per));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery11(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  const QueryConstants& k = db->constants();
  PARADISE_ASSIGN_OR_RETURN(PerNode roads,
                            core::ParallelScan(&coord, db->roads(), nullptr,
                                               {}));
  std::vector<exec::AggregatePtr> aggs = {
      exec::MakeClosest(exec::Col(col::kLineShape), k.point)};
  PARADISE_ASSIGN_OR_RETURN(
      TupleVec rows,
      core::ParallelAggregate(&coord, roads, {col::kLineType}, aggs));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery12(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  ExprPtr city_pred =
      exec::Cmp(CompareOp::kEq, exec::Col(col::kPlaceType),
                exec::Lit(Value(datagen::kLargeCityType)));
  PARADISE_ASSIGN_OR_RETURN(
      PerNode cities, core::ParallelScan(&coord, db->places(), city_pred, {}));
  PARADISE_ASSIGN_OR_RETURN(
      PerNode features, core::ParallelScan(&coord, db->drainage(), nullptr,
                                           {}));
  // Grid resolution for the semi-join: the paper's 10,000 tiles hold
  // ~170 drainage features per tile (1.74M features). Keep that density —
  // the semi-join only resolves a city locally when its tile plausibly
  // contains its nearest feature — while keeping at least ~4 tiles per
  // node for declustering.
  int64_t features_total = db->drainage().num_rows();
  uint32_t by_density = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(features_total) / 170.0)));
  uint32_t by_nodes = static_cast<uint32_t>(std::ceil(
      std::sqrt(4.0 * db->cluster()->num_nodes())));
  uint32_t tiles_per_axis = std::clamp(
      by_density, by_nodes, core::SpatialGrid::kDefaultTilesPerAxis);
  core::ClosestJoinStats stats;
  PARADISE_ASSIGN_OR_RETURN(
      TupleVec rows,
      core::SpatialJoinWithClosest(&coord, cities, col::kPlaceLocation,
                                   features, col::kLineShape, db->universe(),
                                   tiles_per_axis, &stats));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery13(BenchmarkDatabase* db) {
  QueryCoordinator coord(db->cluster());
  PARADISE_RETURN_IF_ERROR(coord.BeginQuery());
  // Both tables are spatially declustered on the same grid: phase one of
  // the parallel spatial join is already done (Section 2.7.2).
  PARADISE_ASSIGN_OR_RETURN(
      PerNode drainage, core::ParallelScanAll(&coord, db->drainage(), nullptr));
  PARADISE_ASSIGN_OR_RETURN(PerNode roads,
                            core::ParallelScanAll(&coord, db->roads(), nullptr));
  core::ParallelSpatialJoinOptions opts;
  opts.tiles_per_axis = db->drainage().grid().tiles_per_axis();
  opts.left_predeclustered = true;
  opts.right_predeclustered = true;
  // Predeclustered join: route and duplicate-eliminate on the tables'
  // own grid so migration reassignments line up with the data placement.
  opts.routing_grid = &db->drainage().grid();
  PARADISE_ASSIGN_OR_RETURN(
      PerNode joined,
      core::ParallelSpatialJoin(&coord, drainage, col::kLineShape, roads,
                                col::kLineShape, db->universe(), opts));
  PARADISE_ASSIGN_OR_RETURN(TupleVec rows, core::Gather(&coord, joined));
  return Finish(coord, std::move(rows));
}

StatusOr<QueryResult> RunQuery14(BenchmarkDatabase* db) {
  const QueryConstants& k = db->constants();
  return RunOilFieldClip(db, k.q14_lo, k.q14_hi);
}

StatusOr<QueryResult> RunQueryByNumber(BenchmarkDatabase* db, int number) {
  switch (number) {
    case 2: return RunQuery2(db);
    case 3: return RunQuery3(db);
    case 4: return RunQuery4(db);
    case 5: return RunQuery5(db);
    case 6: return RunQuery6(db);
    case 7: return RunQuery7(db);
    case 8: return RunQuery8(db);
    case 9: return RunQuery9(db);
    case 10: return RunQuery10(db);
    case 11: return RunQuery11(db);
    case 12: return RunQuery12(db);
    case 13: return RunQuery13(db);
    case 14: return RunQuery14(db);
    default: return Status::InvalidArgument("no such query");
  }
}

}  // namespace paradise::benchmark
