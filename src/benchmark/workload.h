#ifndef PARADISE_BENCHMARK_WORKLOAD_H_
#define PARADISE_BENCHMARK_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "benchmark/database.h"
#include "benchmark/queries.h"
#include "core/coordinator.h"

namespace paradise::benchmark {

/// A multi-client workload: `num_streams` clients submit queries drawn
/// from `mix` with seeded think times between them, through the admission
/// controller and deterministic scheduler of core::WorkloadSession.
struct WorkloadOptions {
  int num_streams = 4;
  int queries_per_stream = 6;
  /// Query numbers each stream draws from (uniformly, per-stream seeded).
  std::vector<int> mix = {2, 5, 7};
  uint64_t seed = 42;
  /// Mean client think time between a query's completion and the next
  /// submission (uniform in [0.5, 1.5) x mean — modeled seconds).
  double mean_think_seconds = 2.0;
  /// Admission window, scan sharing, result cache, contention charging.
  /// `session.num_streams` is overwritten with `num_streams`.
  core::WorkloadSession::Options session;
};

struct WorkloadReport {
  struct Sample {
    int stream = 0;
    int index = 0;  // position within the stream
    int query = 0;  // query number run
    double submit_seconds = 0.0;
    double admit_seconds = 0.0;
    double end_seconds = 0.0;
    bool cache_hit = false;
    int64_t rows = 0;

    /// Client-observed latency: admission queueing plus execution.
    double latency_seconds() const { return end_seconds - submit_seconds; }

    friend bool operator==(const Sample&, const Sample&) = default;
  };

  std::vector<Sample> samples;  // ordered by (stream, index)
  double makespan_seconds = 0.0;  // latest completion, modeled

  // Session counters.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_invalidations = 0;
  int64_t scan_attaches = 0;  // scan phases that attached to another scan

  // Buffer-pool deltas summed over nodes for this workload run.
  int64_t readahead_batches = 0;   // charged readahead windows issued
  int64_t readahead_pages = 0;
  int64_t scan_shared_windows = 0;  // windows that rode a concurrent scan
  int64_t scan_shared_pages = 0;
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;

  double qps() const {
    return makespan_seconds > 0.0
               ? static_cast<double>(samples.size()) / makespan_seconds
               : 0.0;
  }

  /// Latency percentile over all samples (p in [0, 1], nearest-rank).
  double LatencyPercentile(double p) const;

  /// Order-independent fingerprint of everything modeled: sample times,
  /// row counts, pool and session counters. Two runs are "bit-identical"
  /// iff their digests match.
  uint64_t Digest() const;
};

/// Runs the workload to completion and reports per-query samples plus
/// aggregate counters. Starts from the cold-pool protocol (one global
/// reset), then keeps pools warm across queries — the multi-tenant mode.
/// Returns the first stream error, if any.
StatusOr<WorkloadReport> RunWorkload(BenchmarkDatabase* db,
                                     const WorkloadOptions& options);

}  // namespace paradise::benchmark

#endif  // PARADISE_BENCHMARK_WORKLOAD_H_
