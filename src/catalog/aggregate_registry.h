#ifndef PARADISE_CATALOG_AGGREGATE_REGISTRY_H_
#define PARADISE_CATALOG_AGGREGATE_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exec/aggregate.h"

namespace paradise::catalog {

/// Registry of aggregate operators by name (Section 2.4): "when the system
/// is extended either by adding new ADTs and/or new aggregate operators,
/// the aggregate name along with its local and global functions are
/// registered in the system catalogs. This permits new aggregates to be
/// added without modifying the scheduler or execution engine."
///
/// A factory receives the argument expressions plus constant parameters
/// (e.g. the query point of `closest`).
class AggregateRegistry {
 public:
  using Factory = std::function<StatusOr<exec::AggregatePtr>(
      const std::vector<exec::ExprPtr>& args,
      const std::vector<exec::Value>& params)>;

  Status Register(const std::string& name, Factory factory);

  StatusOr<exec::AggregatePtr> Create(
      const std::string& name, const std::vector<exec::ExprPtr>& args,
      const std::vector<exec::Value>& params = {}) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// A registry pre-loaded with the standard SQL aggregates (count, sum,
  /// avg, min, max) and the spatial aggregate `closest`.
  static AggregateRegistry WithBuiltins();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace paradise::catalog

#endif  // PARADISE_CATALOG_AGGREGATE_REGISTRY_H_
