#include "catalog/aggregate_registry.h"

namespace paradise::catalog {

using exec::AggregatePtr;
using exec::ExprPtr;
using exec::Value;
using exec::ValueType;

Status AggregateRegistry::Register(const std::string& name, Factory factory) {
  if (factories_.contains(name)) {
    return Status::AlreadyExists("aggregate " + name);
  }
  factories_.emplace(name, std::move(factory));
  return Status::OK();
}

StatusOr<AggregatePtr> AggregateRegistry::Create(
    const std::string& name, const std::vector<ExprPtr>& args,
    const std::vector<Value>& params) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return Status::NotFound("aggregate " + name);
  return it->second(args, params);
}

bool AggregateRegistry::Has(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> AggregateRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, f] : factories_) names.push_back(name);
  return names;
}

AggregateRegistry AggregateRegistry::WithBuiltins() {
  AggregateRegistry reg;
  auto expect_args = [](const std::vector<ExprPtr>& args,
                        size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument("wrong aggregate argument count");
    }
    return Status::OK();
  };
  (void)reg.Register("count", [](const std::vector<ExprPtr>&,
                                 const std::vector<Value>&)
                                  -> StatusOr<AggregatePtr> {
    return exec::MakeCount();
  });
  (void)reg.Register(
      "sum", [expect_args](const std::vector<ExprPtr>& args,
                           const std::vector<Value>&) -> StatusOr<AggregatePtr> {
        PARADISE_RETURN_IF_ERROR(expect_args(args, 1));
        return exec::MakeSum(args[0]);
      });
  (void)reg.Register(
      "avg", [expect_args](const std::vector<ExprPtr>& args,
                           const std::vector<Value>&) -> StatusOr<AggregatePtr> {
        PARADISE_RETURN_IF_ERROR(expect_args(args, 1));
        return exec::MakeAvg(args[0]);
      });
  (void)reg.Register(
      "min", [expect_args](const std::vector<ExprPtr>& args,
                           const std::vector<Value>&) -> StatusOr<AggregatePtr> {
        PARADISE_RETURN_IF_ERROR(expect_args(args, 1));
        return exec::MakeMin(args[0]);
      });
  (void)reg.Register(
      "max", [expect_args](const std::vector<ExprPtr>& args,
                           const std::vector<Value>&) -> StatusOr<AggregatePtr> {
        PARADISE_RETURN_IF_ERROR(expect_args(args, 1));
        return exec::MakeMax(args[0]);
      });
  (void)reg.Register(
      "closest",
      [expect_args](const std::vector<ExprPtr>& args,
                    const std::vector<Value>& params)
          -> StatusOr<AggregatePtr> {
        PARADISE_RETURN_IF_ERROR(expect_args(args, 1));
        if (params.size() != 1 || params[0].type() != ValueType::kPoint) {
          return Status::InvalidArgument("closest needs a point parameter");
        }
        return exec::MakeClosest(args[0], params[0].AsPoint());
      });
  return reg;
}

}  // namespace paradise::catalog
