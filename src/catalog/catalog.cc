#include "catalog/catalog.h"

namespace paradise::catalog {

Status Catalog::CreateTable(TableDef def) {
  if (tables_.contains(def.name)) {
    return Status::AlreadyExists("table " + def.name);
  }
  tables_.emplace(def.name, std::move(def));
  return Status::OK();
}

StatusOr<TableDef*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return &it->second;
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("table " + name);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

void Catalog::PutTableStats(opt::HistogramStats stats) {
  stats.version = ++stats_versions_;
  stats_[stats.table] = std::move(stats);
}

const opt::HistogramStats* Catalog::FindTableStats(
    const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

void Catalog::InvalidateTableStats(const std::string& name) {
  stats_.erase(name);
}

}  // namespace paradise::catalog
