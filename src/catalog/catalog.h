#ifndef PARADISE_CATALOG_CATALOG_H_
#define PARADISE_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/tuple.h"
#include "geom/box.h"
#include "opt/stats.h"

namespace paradise::catalog {

/// How a table's tuples are spread across the cluster (Section 2.3 and
/// 2.7.1): round-robin, hash on an attribute, or spatial declustering on a
/// grid of tiles over the universe. kTwoLayer is spatial declustering with
/// the same replication set but a per-(copy, tile) begin class (A/B/C/D,
/// after Tsitsigkos et al.'s two-layer space-oriented partitioning) stored
/// next to the primary flag, which lets joins emit each pair exactly once
/// without any reference-point duplicate elimination.
enum class PartitioningKind { kRoundRobin, kHash, kSpatial, kTwoLayer };

/// Both spatial decluster modes share the grid/replication machinery; use
/// this instead of comparing against kSpatial directly.
inline bool IsSpatialPartitioning(PartitioningKind k) {
  return k == PartitioningKind::kSpatial || k == PartitioningKind::kTwoLayer;
}

struct IndexDef {
  std::string name;
  size_t column = 0;
  bool spatial = false;  // R*-tree vs B+-tree
};

/// Table metadata: schema, declustering, indexes, basic statistics. The
/// optimizer reads the stats; the loader fills them in.
struct TableDef {
  std::string name;
  exec::Schema schema;

  PartitioningKind partitioning = PartitioningKind::kRoundRobin;
  size_t partition_column = 0;     // for kHash / kSpatial
  geom::Box universe;              // for kSpatial: the declustering domain

  std::vector<IndexDef> indexes;

  // Statistics.
  int64_t num_tuples = 0;
  double avg_tuple_bytes = 0.0;

  const IndexDef* FindIndexOn(size_t column, bool spatial) const {
    for (const IndexDef& idx : indexes) {
      if (idx.column == column && idx.spatial == spatial) return &idx;
    }
    return nullptr;
  }
};

/// The system catalog: table name -> definition, plus the optimizer's
/// sampled per-table statistics (opt::HistogramStats).
///
/// Stats lifecycle: the loader (ParallelTable::Load) publishes stats when
/// a table is declustered; anything that changes the table's contents or
/// physical layout — a mutating query (NoteTableMutation), a redecluster
/// after node loss, a tile-migration cutover — invalidates them. A
/// consumer holding no stats (never built, or invalidated) must fall back
/// to fixed heuristics, never to stale estimates.
class Catalog {
 public:
  Status CreateTable(TableDef def);
  StatusOr<TableDef*> GetTable(const std::string& name);
  const TableDef* FindTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  /// Publishes `stats` for `stats.table`, stamping a fresh version
  /// (monotone across all tables, so any rebuild is distinguishable from
  /// what it replaced).
  void PutTableStats(opt::HistogramStats stats);

  /// The current stats for `name`, or null when absent/invalidated.
  const opt::HistogramStats* FindTableStats(const std::string& name) const;

  /// Drops `name`'s stats (table mutated, redeclustered, or migrated).
  /// No-op when none exist.
  void InvalidateTableStats(const std::string& name);

  /// Total stats versions ever published (tests assert rebuild counts).
  uint64_t stats_versions() const { return stats_versions_; }

 private:
  std::map<std::string, TableDef> tables_;
  std::map<std::string, opt::HistogramStats> stats_;
  uint64_t stats_versions_ = 0;
};

}  // namespace paradise::catalog

#endif  // PARADISE_CATALOG_CATALOG_H_
