#include "geom/polyline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/algorithms.h"

namespace paradise::geom {

Polyline::Polyline(std::vector<Point> points) : points_(std::move(points)) {
  for (const Point& p : points_) mbr_.ExpandToInclude(p);
}

double Polyline::Length() const {
  double len = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    len += Distance(points_[i - 1], points_[i]);
  }
  return len;
}

double Polyline::DistanceTo(const Point& p) const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  if (points_.size() == 1) return Distance(p, points_[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < points_.size(); ++i) {
    best = std::min(best, PointSegmentDistance(p, points_[i - 1], points_[i]));
  }
  return best;
}

bool Polyline::Intersects(const Polyline& other) const {
  if (!mbr_.Intersects(other.mbr_)) return false;
  // Slack for the segment-pair interval prune below: comfortably wider
  // than the eps tolerance SegmentsIntersect's orientation/on-segment
  // predicates use (1e-12), so the prune can never skip a pair the exact
  // predicate would accept.
  constexpr double kPruneSlack = 1e-9;
  const Point* a = points_.data();
  const Point* b = other.points_.data();
  const size_t an = points_.size();
  const size_t bn = other.points_.size();

  // Bounding intervals of the other chain's segments, computed once per
  // call instead of once per (i, j) pair. Chains are short (road/river
  // fragments), so a small stack block covers the common case.
  constexpr size_t kStackSegs = 32;
  double stack_buf[kStackSegs * 4];
  std::vector<double> heap_buf;
  double* sb = stack_buf;
  const size_t bsegs = bn > 0 ? bn - 1 : 0;
  if (bsegs > kStackSegs) {
    heap_buf.resize(bsegs * 4);
    sb = heap_buf.data();
  }
  for (size_t j = 0; j < bsegs; ++j) {
    sb[j * 4 + 0] = std::min(b[j].x, b[j + 1].x);
    sb[j * 4 + 1] = std::max(b[j].x, b[j + 1].x);
    sb[j * 4 + 2] = std::min(b[j].y, b[j + 1].y);
    sb[j * 4 + 3] = std::max(b[j].y, b[j + 1].y);
  }

  const double oxlo = other.mbr_.xmin, oxhi = other.mbr_.xmax;
  const double oylo = other.mbr_.ymin, oyhi = other.mbr_.ymax;
  for (size_t i = 1; i < an; ++i) {
    // Per-segment MBR prune against the other chain's MBR.
    const double sxlo = std::min(a[i - 1].x, a[i].x);
    const double sxhi = std::max(a[i - 1].x, a[i].x);
    const double sylo = std::min(a[i - 1].y, a[i].y);
    const double syhi = std::max(a[i - 1].y, a[i].y);
    if (sxhi < oxlo || sxlo > oxhi || syhi < oylo || sylo > oyhi) continue;
    const double axlo = sxlo - kPruneSlack;
    const double axhi = sxhi + kPruneSlack;
    const double aylo = sylo - kPruneSlack;
    const double ayhi = syhi + kPruneSlack;
    // Interval prune per segment pair, branchless: disjoint bounding
    // intervals mean the exact test cannot succeed. Survivor indexes are
    // compress-stored so the orientation tests run in a separate loop —
    // the prune itself never mispredicts.
    size_t j = 0;
    while (j < bsegs) {
      const size_t block = std::min(bsegs - j, kStackSegs);
      uint32_t surv[kStackSegs];
      uint32_t m = 0;
      for (size_t t = 0; t < block; ++t) {
        const double* s = sb + (j + t) * 4;
        const bool keep =
            (s[1] >= axlo) & (s[0] <= axhi) & (s[3] >= aylo) & (s[2] <= ayhi);
        surv[m] = static_cast<uint32_t>(j + t);
        m += keep;
      }
      for (uint32_t t = 0; t < m; ++t) {
        const size_t k = surv[t];
        if (SegmentsIntersect(a[i - 1], a[i], b[k], b[k + 1])) {
          return true;
        }
      }
      j += block;
    }
  }
  return false;
}

bool Polyline::IntersectsBox(const Box& box) const {
  if (!mbr_.Intersects(box)) return false;
  if (points_.size() == 1) return box.Contains(points_[0]);
  for (size_t i = 1; i < points_.size(); ++i) {
    if (SegmentIntersectsBox(points_[i - 1], points_[i], box)) return true;
  }
  return false;
}

void Polyline::Serialize(ByteWriter* w) const {
  w->PutU32(static_cast<uint32_t>(points_.size()));
  for (const Point& p : points_) {
    w->PutDouble(p.x);
    w->PutDouble(p.y);
  }
}

Polyline Polyline::Deserialize(ByteReader* r) {
  uint32_t n = r->GetU32();
  std::vector<Point> pts;
  pts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    double x = r->GetDouble();
    double y = r->GetDouble();
    pts.push_back(Point{x, y});
  }
  return Polyline(std::move(pts));
}

std::string Polyline::ToString() const {
  std::string out = "LINESTRING(";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) out += ", ";
    out += points_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace paradise::geom
