#include "geom/polyline.h"

#include <cmath>
#include <limits>

#include "geom/algorithms.h"

namespace paradise::geom {

Polyline::Polyline(std::vector<Point> points) : points_(std::move(points)) {
  for (const Point& p : points_) mbr_.ExpandToInclude(p);
}

double Polyline::Length() const {
  double len = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    len += Distance(points_[i - 1], points_[i]);
  }
  return len;
}

double Polyline::DistanceTo(const Point& p) const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  if (points_.size() == 1) return Distance(p, points_[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < points_.size(); ++i) {
    best = std::min(best, PointSegmentDistance(p, points_[i - 1], points_[i]));
  }
  return best;
}

bool Polyline::Intersects(const Polyline& other) const {
  if (!mbr_.Intersects(other.mbr_)) return false;
  for (size_t i = 1; i < points_.size(); ++i) {
    // Per-segment MBR prune against the other chain's MBR.
    Box seg_box;
    seg_box.ExpandToInclude(points_[i - 1]);
    seg_box.ExpandToInclude(points_[i]);
    if (!seg_box.Intersects(other.mbr_)) continue;
    for (size_t j = 1; j < other.points_.size(); ++j) {
      if (SegmentsIntersect(points_[i - 1], points_[i], other.points_[j - 1],
                            other.points_[j])) {
        return true;
      }
    }
  }
  return false;
}

bool Polyline::IntersectsBox(const Box& box) const {
  if (!mbr_.Intersects(box)) return false;
  if (points_.size() == 1) return box.Contains(points_[0]);
  for (size_t i = 1; i < points_.size(); ++i) {
    if (SegmentIntersectsBox(points_[i - 1], points_[i], box)) return true;
  }
  return false;
}

void Polyline::Serialize(ByteWriter* w) const {
  w->PutU32(static_cast<uint32_t>(points_.size()));
  for (const Point& p : points_) {
    w->PutDouble(p.x);
    w->PutDouble(p.y);
  }
}

Polyline Polyline::Deserialize(ByteReader* r) {
  uint32_t n = r->GetU32();
  std::vector<Point> pts;
  pts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    double x = r->GetDouble();
    double y = r->GetDouble();
    pts.push_back(Point{x, y});
  }
  return Polyline(std::move(pts));
}

std::string Polyline::ToString() const {
  std::string out = "LINESTRING(";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) out += ", ";
    out += points_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace paradise::geom
