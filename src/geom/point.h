#ifndef PARADISE_GEOM_POINT_H_
#define PARADISE_GEOM_POINT_H_

#include <cmath>
#include <string>

namespace paradise::geom {

/// A 2-D point in the data set's geo-registered coordinate system.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }

  std::string ToString() const;
};

inline double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

}  // namespace paradise::geom

#endif  // PARADISE_GEOM_POINT_H_
