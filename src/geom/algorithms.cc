#include "geom/algorithms.h"

#include <algorithm>
#include <cmath>

namespace paradise::geom {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

int Orientation(const Point& a, const Point& b, const Point& c) {
  double v = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  if (v > kEps) return 1;
  if (v < -kEps) return -1;
  return 0;
}

bool OnSegment(const Point& p, const Point& a, const Point& b) {
  if (Orientation(a, b, p) != 0) return false;
  return p.x >= std::min(a.x, b.x) - kEps && p.x <= std::max(a.x, b.x) + kEps &&
         p.y >= std::min(a.y, b.y) - kEps && p.y <= std::max(a.y, b.y) + kEps;
}

bool SegmentsIntersect(const Point& p1, const Point& p2, const Point& q1,
                       const Point& q2) {
  int o1 = Orientation(p1, p2, q1);
  int o2 = Orientation(p1, p2, q2);
  int o3 = Orientation(q1, q2, p1);
  int o4 = Orientation(q1, q2, p2);

  if (o1 != o2 && o3 != o4) return true;

  // Collinear special cases.
  if (o1 == 0 && OnSegment(q1, p1, p2)) return true;
  if (o2 == 0 && OnSegment(q2, p1, p2)) return true;
  if (o3 == 0 && OnSegment(p1, q1, q2)) return true;
  if (o4 == 0 && OnSegment(p2, q1, q2)) return true;
  return false;
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  double abx = b.x - a.x;
  double aby = b.y - a.y;
  double len2 = abx * abx + aby * aby;
  if (len2 <= kEps) return Distance(p, a);  // degenerate segment
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  Point proj{a.x + t * abx, a.y + t * aby};
  return Distance(p, proj);
}

bool SegmentIntersectsBox(const Point& a, const Point& b, const Box& box) {
  if (box.IsEmpty()) return false;
  if (box.Contains(a) || box.Contains(b)) return true;
  // Trivial reject: both endpoints strictly on one outside side.
  if ((a.x < box.xmin && b.x < box.xmin) ||
      (a.x > box.xmax && b.x > box.xmax) ||
      (a.y < box.ymin && b.y < box.ymin) ||
      (a.y > box.ymax && b.y > box.ymax)) {
    return false;
  }
  // Exact: does the segment cross any box edge?
  Point c1{box.xmin, box.ymin};
  Point c2{box.xmax, box.ymin};
  Point c3{box.xmax, box.ymax};
  Point c4{box.xmin, box.ymax};
  return SegmentsIntersect(a, b, c1, c2) || SegmentsIntersect(a, b, c2, c3) ||
         SegmentsIntersect(a, b, c3, c4) || SegmentsIntersect(a, b, c4, c1);
}

}  // namespace paradise::geom
